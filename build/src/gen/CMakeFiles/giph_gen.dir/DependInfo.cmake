
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/dataset.cpp" "src/gen/CMakeFiles/giph_gen.dir/dataset.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/dataset.cpp.o.d"
  "/root/repo/src/gen/device_network_gen.cpp" "src/gen/CMakeFiles/giph_gen.dir/device_network_gen.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/device_network_gen.cpp.o.d"
  "/root/repo/src/gen/enas_gen.cpp" "src/gen/CMakeFiles/giph_gen.dir/enas_gen.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/enas_gen.cpp.o.d"
  "/root/repo/src/gen/grouping.cpp" "src/gen/CMakeFiles/giph_gen.dir/grouping.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/grouping.cpp.o.d"
  "/root/repo/src/gen/params_io.cpp" "src/gen/CMakeFiles/giph_gen.dir/params_io.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/params_io.cpp.o.d"
  "/root/repo/src/gen/task_graph_gen.cpp" "src/gen/CMakeFiles/giph_gen.dir/task_graph_gen.cpp.o" "gcc" "src/gen/CMakeFiles/giph_gen.dir/task_graph_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/giph_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
