file(REMOVE_RECURSE
  "libgiph_gen.a"
)
