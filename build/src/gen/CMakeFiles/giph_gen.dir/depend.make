# Empty dependencies file for giph_gen.
# This may be replaced when dependencies are built.
