file(REMOVE_RECURSE
  "CMakeFiles/giph_gen.dir/dataset.cpp.o"
  "CMakeFiles/giph_gen.dir/dataset.cpp.o.d"
  "CMakeFiles/giph_gen.dir/device_network_gen.cpp.o"
  "CMakeFiles/giph_gen.dir/device_network_gen.cpp.o.d"
  "CMakeFiles/giph_gen.dir/enas_gen.cpp.o"
  "CMakeFiles/giph_gen.dir/enas_gen.cpp.o.d"
  "CMakeFiles/giph_gen.dir/grouping.cpp.o"
  "CMakeFiles/giph_gen.dir/grouping.cpp.o.d"
  "CMakeFiles/giph_gen.dir/params_io.cpp.o"
  "CMakeFiles/giph_gen.dir/params_io.cpp.o.d"
  "CMakeFiles/giph_gen.dir/task_graph_gen.cpp.o"
  "CMakeFiles/giph_gen.dir/task_graph_gen.cpp.o.d"
  "libgiph_gen.a"
  "libgiph_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
