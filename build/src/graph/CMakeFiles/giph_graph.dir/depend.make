# Empty dependencies file for giph_graph.
# This may be replaced when dependencies are built.
