
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/device_network.cpp" "src/graph/CMakeFiles/giph_graph.dir/device_network.cpp.o" "gcc" "src/graph/CMakeFiles/giph_graph.dir/device_network.cpp.o.d"
  "/root/repo/src/graph/placement.cpp" "src/graph/CMakeFiles/giph_graph.dir/placement.cpp.o" "gcc" "src/graph/CMakeFiles/giph_graph.dir/placement.cpp.o.d"
  "/root/repo/src/graph/serialization.cpp" "src/graph/CMakeFiles/giph_graph.dir/serialization.cpp.o" "gcc" "src/graph/CMakeFiles/giph_graph.dir/serialization.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/giph_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/giph_graph.dir/task_graph.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "src/graph/CMakeFiles/giph_graph.dir/topology.cpp.o" "gcc" "src/graph/CMakeFiles/giph_graph.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
