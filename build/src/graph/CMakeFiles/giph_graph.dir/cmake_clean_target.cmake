file(REMOVE_RECURSE
  "libgiph_graph.a"
)
