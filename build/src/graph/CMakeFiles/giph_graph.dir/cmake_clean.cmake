file(REMOVE_RECURSE
  "CMakeFiles/giph_graph.dir/device_network.cpp.o"
  "CMakeFiles/giph_graph.dir/device_network.cpp.o.d"
  "CMakeFiles/giph_graph.dir/placement.cpp.o"
  "CMakeFiles/giph_graph.dir/placement.cpp.o.d"
  "CMakeFiles/giph_graph.dir/serialization.cpp.o"
  "CMakeFiles/giph_graph.dir/serialization.cpp.o.d"
  "CMakeFiles/giph_graph.dir/task_graph.cpp.o"
  "CMakeFiles/giph_graph.dir/task_graph.cpp.o.d"
  "CMakeFiles/giph_graph.dir/topology.cpp.o"
  "CMakeFiles/giph_graph.dir/topology.cpp.o.d"
  "libgiph_graph.a"
  "libgiph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
