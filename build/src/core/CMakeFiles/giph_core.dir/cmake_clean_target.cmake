file(REMOVE_RECURSE
  "libgiph_core.a"
)
