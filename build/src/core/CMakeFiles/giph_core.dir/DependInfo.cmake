
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/giph_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/features.cpp.o.d"
  "/root/repo/src/core/giph_agent.cpp" "src/core/CMakeFiles/giph_core.dir/giph_agent.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/giph_agent.cpp.o.d"
  "/root/repo/src/core/gnn.cpp" "src/core/CMakeFiles/giph_core.dir/gnn.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/gnn.cpp.o.d"
  "/root/repo/src/core/gpnet.cpp" "src/core/CMakeFiles/giph_core.dir/gpnet.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/gpnet.cpp.o.d"
  "/root/repo/src/core/reinforce.cpp" "src/core/CMakeFiles/giph_core.dir/reinforce.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/reinforce.cpp.o.d"
  "/root/repo/src/core/search_env.cpp" "src/core/CMakeFiles/giph_core.dir/search_env.cpp.o" "gcc" "src/core/CMakeFiles/giph_core.dir/search_env.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/giph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/heft/CMakeFiles/giph_heft.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/giph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/giph_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
