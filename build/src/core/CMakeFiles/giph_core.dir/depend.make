# Empty dependencies file for giph_core.
# This may be replaced when dependencies are built.
