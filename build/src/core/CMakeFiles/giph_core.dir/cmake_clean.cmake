file(REMOVE_RECURSE
  "CMakeFiles/giph_core.dir/features.cpp.o"
  "CMakeFiles/giph_core.dir/features.cpp.o.d"
  "CMakeFiles/giph_core.dir/giph_agent.cpp.o"
  "CMakeFiles/giph_core.dir/giph_agent.cpp.o.d"
  "CMakeFiles/giph_core.dir/gnn.cpp.o"
  "CMakeFiles/giph_core.dir/gnn.cpp.o.d"
  "CMakeFiles/giph_core.dir/gpnet.cpp.o"
  "CMakeFiles/giph_core.dir/gpnet.cpp.o.d"
  "CMakeFiles/giph_core.dir/reinforce.cpp.o"
  "CMakeFiles/giph_core.dir/reinforce.cpp.o.d"
  "CMakeFiles/giph_core.dir/search_env.cpp.o"
  "CMakeFiles/giph_core.dir/search_env.cpp.o.d"
  "libgiph_core.a"
  "libgiph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
