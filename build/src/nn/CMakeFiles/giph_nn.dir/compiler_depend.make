# Empty compiler generated dependencies file for giph_nn.
# This may be replaced when dependencies are built.
