file(REMOVE_RECURSE
  "CMakeFiles/giph_nn.dir/autograd.cpp.o"
  "CMakeFiles/giph_nn.dir/autograd.cpp.o.d"
  "CMakeFiles/giph_nn.dir/layers.cpp.o"
  "CMakeFiles/giph_nn.dir/layers.cpp.o.d"
  "CMakeFiles/giph_nn.dir/matrix.cpp.o"
  "CMakeFiles/giph_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/giph_nn.dir/optimizer.cpp.o"
  "CMakeFiles/giph_nn.dir/optimizer.cpp.o.d"
  "libgiph_nn.a"
  "libgiph_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
