file(REMOVE_RECURSE
  "libgiph_nn.a"
)
