file(REMOVE_RECURSE
  "CMakeFiles/giph_heft.dir/cpop.cpp.o"
  "CMakeFiles/giph_heft.dir/cpop.cpp.o.d"
  "CMakeFiles/giph_heft.dir/heft.cpp.o"
  "CMakeFiles/giph_heft.dir/heft.cpp.o.d"
  "libgiph_heft.a"
  "libgiph_heft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_heft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
