# Empty dependencies file for giph_heft.
# This may be replaced when dependencies are built.
