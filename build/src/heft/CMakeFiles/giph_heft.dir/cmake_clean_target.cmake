file(REMOVE_RECURSE
  "libgiph_heft.a"
)
