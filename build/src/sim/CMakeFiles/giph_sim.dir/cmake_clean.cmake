file(REMOVE_RECURSE
  "CMakeFiles/giph_sim.dir/metrics.cpp.o"
  "CMakeFiles/giph_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/giph_sim.dir/simulator.cpp.o"
  "CMakeFiles/giph_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/giph_sim.dir/trace.cpp.o"
  "CMakeFiles/giph_sim.dir/trace.cpp.o.d"
  "libgiph_sim.a"
  "libgiph_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
