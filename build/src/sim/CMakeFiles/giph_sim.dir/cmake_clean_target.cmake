file(REMOVE_RECURSE
  "libgiph_sim.a"
)
