# Empty compiler generated dependencies file for giph_sim.
# This may be replaced when dependencies are built.
