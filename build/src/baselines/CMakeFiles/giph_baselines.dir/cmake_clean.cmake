file(REMOVE_RECURSE
  "CMakeFiles/giph_baselines.dir/local_search.cpp.o"
  "CMakeFiles/giph_baselines.dir/local_search.cpp.o.d"
  "CMakeFiles/giph_baselines.dir/placeto.cpp.o"
  "CMakeFiles/giph_baselines.dir/placeto.cpp.o.d"
  "CMakeFiles/giph_baselines.dir/random_policies.cpp.o"
  "CMakeFiles/giph_baselines.dir/random_policies.cpp.o.d"
  "CMakeFiles/giph_baselines.dir/rnn_placer.cpp.o"
  "CMakeFiles/giph_baselines.dir/rnn_placer.cpp.o.d"
  "libgiph_baselines.a"
  "libgiph_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
