file(REMOVE_RECURSE
  "libgiph_baselines.a"
)
