# Empty compiler generated dependencies file for giph_baselines.
# This may be replaced when dependencies are built.
