# Empty dependencies file for giph_eval.
# This may be replaced when dependencies are built.
