file(REMOVE_RECURSE
  "libgiph_eval.a"
)
