file(REMOVE_RECURSE
  "CMakeFiles/giph_eval.dir/ascii_chart.cpp.o"
  "CMakeFiles/giph_eval.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/giph_eval.dir/evaluation.cpp.o"
  "CMakeFiles/giph_eval.dir/evaluation.cpp.o.d"
  "libgiph_eval.a"
  "libgiph_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
