file(REMOVE_RECURSE
  "libgiph_casestudy.a"
)
