file(REMOVE_RECURSE
  "CMakeFiles/giph_casestudy.dir/device_profiles.cpp.o"
  "CMakeFiles/giph_casestudy.dir/device_profiles.cpp.o.d"
  "CMakeFiles/giph_casestudy.dir/mobility.cpp.o"
  "CMakeFiles/giph_casestudy.dir/mobility.cpp.o.d"
  "CMakeFiles/giph_casestudy.dir/sensor_fusion.cpp.o"
  "CMakeFiles/giph_casestudy.dir/sensor_fusion.cpp.o.d"
  "libgiph_casestudy.a"
  "libgiph_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
