# Empty compiler generated dependencies file for giph_casestudy.
# This may be replaced when dependencies are built.
