
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casestudy/device_profiles.cpp" "src/casestudy/CMakeFiles/giph_casestudy.dir/device_profiles.cpp.o" "gcc" "src/casestudy/CMakeFiles/giph_casestudy.dir/device_profiles.cpp.o.d"
  "/root/repo/src/casestudy/mobility.cpp" "src/casestudy/CMakeFiles/giph_casestudy.dir/mobility.cpp.o" "gcc" "src/casestudy/CMakeFiles/giph_casestudy.dir/mobility.cpp.o.d"
  "/root/repo/src/casestudy/sensor_fusion.cpp" "src/casestudy/CMakeFiles/giph_casestudy.dir/sensor_fusion.cpp.o" "gcc" "src/casestudy/CMakeFiles/giph_casestudy.dir/sensor_fusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/giph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/giph_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
