# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("graph")
subdirs("sim")
subdirs("gen")
subdirs("heft")
subdirs("nn")
subdirs("core")
subdirs("eval")
subdirs("baselines")
subdirs("casestudy")
