
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd_test.cpp" "tests/CMakeFiles/giph_tests.dir/autograd_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/autograd_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/giph_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/casestudy_test.cpp" "tests/CMakeFiles/giph_tests.dir/casestudy_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/casestudy_test.cpp.o.d"
  "/root/repo/tests/cpop_test.cpp" "tests/CMakeFiles/giph_tests.dir/cpop_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/cpop_test.cpp.o.d"
  "/root/repo/tests/device_network_test.cpp" "tests/CMakeFiles/giph_tests.dir/device_network_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/device_network_test.cpp.o.d"
  "/root/repo/tests/enas_test.cpp" "tests/CMakeFiles/giph_tests.dir/enas_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/enas_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/giph_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/giph_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/generator_test.cpp" "tests/CMakeFiles/giph_tests.dir/generator_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/generator_test.cpp.o.d"
  "/root/repo/tests/gnn_test.cpp" "tests/CMakeFiles/giph_tests.dir/gnn_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/gnn_test.cpp.o.d"
  "/root/repo/tests/gpnet_test.cpp" "tests/CMakeFiles/giph_tests.dir/gpnet_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/gpnet_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/giph_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/grouping_test.cpp" "tests/CMakeFiles/giph_tests.dir/grouping_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/grouping_test.cpp.o.d"
  "/root/repo/tests/heft_test.cpp" "tests/CMakeFiles/giph_tests.dir/heft_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/heft_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/giph_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/layers_test.cpp" "tests/CMakeFiles/giph_tests.dir/layers_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/layers_test.cpp.o.d"
  "/root/repo/tests/local_search_test.cpp" "tests/CMakeFiles/giph_tests.dir/local_search_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/local_search_test.cpp.o.d"
  "/root/repo/tests/matrix_test.cpp" "tests/CMakeFiles/giph_tests.dir/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/matrix_test.cpp.o.d"
  "/root/repo/tests/mdp_property_test.cpp" "tests/CMakeFiles/giph_tests.dir/mdp_property_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/mdp_property_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/giph_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/optimizer_test.cpp" "tests/CMakeFiles/giph_tests.dir/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/optimizer_test.cpp.o.d"
  "/root/repo/tests/params_io_test.cpp" "tests/CMakeFiles/giph_tests.dir/params_io_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/params_io_test.cpp.o.d"
  "/root/repo/tests/placement_test.cpp" "tests/CMakeFiles/giph_tests.dir/placement_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/placement_test.cpp.o.d"
  "/root/repo/tests/reinforce_test.cpp" "tests/CMakeFiles/giph_tests.dir/reinforce_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/reinforce_test.cpp.o.d"
  "/root/repo/tests/search_env_test.cpp" "tests/CMakeFiles/giph_tests.dir/search_env_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/search_env_test.cpp.o.d"
  "/root/repo/tests/serialization_test.cpp" "tests/CMakeFiles/giph_tests.dir/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/serialization_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/giph_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/giph_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/giph_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/trainer_options_test.cpp" "tests/CMakeFiles/giph_tests.dir/trainer_options_test.cpp.o" "gcc" "tests/CMakeFiles/giph_tests.dir/trainer_options_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/giph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/giph_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/giph_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/heft/CMakeFiles/giph_heft.dir/DependInfo.cmake"
  "/root/repo/build/src/casestudy/CMakeFiles/giph_casestudy.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/giph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/giph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/giph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/giph_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
