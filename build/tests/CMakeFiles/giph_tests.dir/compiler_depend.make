# Empty compiler generated dependencies file for giph_tests.
# This may be replaced when dependencies are built.
