# Empty compiler generated dependencies file for dl_placement.
# This may be replaced when dependencies are built.
