file(REMOVE_RECURSE
  "CMakeFiles/dl_placement.dir/dl_placement.cpp.o"
  "CMakeFiles/dl_placement.dir/dl_placement.cpp.o.d"
  "dl_placement"
  "dl_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
