file(REMOVE_RECURSE
  "CMakeFiles/table6_pairwise.dir/table6_pairwise.cpp.o"
  "CMakeFiles/table6_pairwise.dir/table6_pairwise.cpp.o.d"
  "table6_pairwise"
  "table6_pairwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
