# Empty compiler generated dependencies file for table6_pairwise.
# This may be replaced when dependencies are built.
