# Empty dependencies file for fig11_relocation.
# This may be replaced when dependencies are built.
