file(REMOVE_RECURSE
  "CMakeFiles/fig11_relocation.dir/fig11_relocation.cpp.o"
  "CMakeFiles/fig11_relocation.dir/fig11_relocation.cpp.o.d"
  "fig11_relocation"
  "fig11_relocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_relocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
