file(REMOVE_RECURSE
  "CMakeFiles/ext_critic_ablation.dir/ext_critic_ablation.cpp.o"
  "CMakeFiles/ext_critic_ablation.dir/ext_critic_ablation.cpp.o.d"
  "ext_critic_ablation"
  "ext_critic_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_critic_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
