# Empty compiler generated dependencies file for ext_critic_ablation.
# This may be replaced when dependencies are built.
