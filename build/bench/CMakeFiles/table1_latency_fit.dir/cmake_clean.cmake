file(REMOVE_RECURSE
  "CMakeFiles/table1_latency_fit.dir/table1_latency_fit.cpp.o"
  "CMakeFiles/table1_latency_fit.dir/table1_latency_fit.cpp.o.d"
  "table1_latency_fit"
  "table1_latency_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_latency_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
