# Empty compiler generated dependencies file for table1_latency_fit.
# This may be replaced when dependencies are built.
