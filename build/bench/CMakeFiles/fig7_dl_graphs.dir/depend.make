# Empty dependencies file for fig7_dl_graphs.
# This may be replaced when dependencies are built.
