file(REMOVE_RECURSE
  "CMakeFiles/fig7_dl_graphs.dir/fig7_dl_graphs.cpp.o"
  "CMakeFiles/fig7_dl_graphs.dir/fig7_dl_graphs.cpp.o.d"
  "fig7_dl_graphs"
  "fig7_dl_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dl_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
