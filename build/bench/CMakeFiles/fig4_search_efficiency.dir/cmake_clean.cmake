file(REMOVE_RECURSE
  "CMakeFiles/fig4_search_efficiency.dir/fig4_search_efficiency.cpp.o"
  "CMakeFiles/fig4_search_efficiency.dir/fig4_search_efficiency.cpp.o.d"
  "fig4_search_efficiency"
  "fig4_search_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_search_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
