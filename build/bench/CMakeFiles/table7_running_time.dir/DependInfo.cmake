
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table7_running_time.cpp" "bench/CMakeFiles/table7_running_time.dir/table7_running_time.cpp.o" "gcc" "bench/CMakeFiles/table7_running_time.dir/table7_running_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/giph_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/giph_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/giph_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/giph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/giph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/giph_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/heft/CMakeFiles/giph_heft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/giph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/giph_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
