# Empty compiler generated dependencies file for table7_running_time.
# This may be replaced when dependencies are built.
