file(REMOVE_RECURSE
  "CMakeFiles/table7_running_time.dir/table7_running_time.cpp.o"
  "CMakeFiles/table7_running_time.dir/table7_running_time.cpp.o.d"
  "table7_running_time"
  "table7_running_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_running_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
