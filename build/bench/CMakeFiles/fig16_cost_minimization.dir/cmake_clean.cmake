file(REMOVE_RECURSE
  "CMakeFiles/fig16_cost_minimization.dir/fig16_cost_minimization.cpp.o"
  "CMakeFiles/fig16_cost_minimization.dir/fig16_cost_minimization.cpp.o.d"
  "fig16_cost_minimization"
  "fig16_cost_minimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cost_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
