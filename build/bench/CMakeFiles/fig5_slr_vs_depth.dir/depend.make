# Empty dependencies file for fig5_slr_vs_depth.
# This may be replaced when dependencies are built.
