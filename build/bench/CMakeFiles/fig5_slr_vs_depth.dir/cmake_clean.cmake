file(REMOVE_RECURSE
  "CMakeFiles/fig5_slr_vs_depth.dir/fig5_slr_vs_depth.cpp.o"
  "CMakeFiles/fig5_slr_vs_depth.dir/fig5_slr_vs_depth.cpp.o.d"
  "fig5_slr_vs_depth"
  "fig5_slr_vs_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_slr_vs_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
