file(REMOVE_RECURSE
  "CMakeFiles/fig9_case_study.dir/fig9_case_study.cpp.o"
  "CMakeFiles/fig9_case_study.dir/fig9_case_study.cpp.o.d"
  "fig9_case_study"
  "fig9_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
