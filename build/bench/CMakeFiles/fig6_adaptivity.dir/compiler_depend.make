# Empty compiler generated dependencies file for fig6_adaptivity.
# This may be replaced when dependencies are built.
