file(REMOVE_RECURSE
  "CMakeFiles/fig6_adaptivity.dir/fig6_adaptivity.cpp.o"
  "CMakeFiles/fig6_adaptivity.dir/fig6_adaptivity.cpp.o.d"
  "fig6_adaptivity"
  "fig6_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
