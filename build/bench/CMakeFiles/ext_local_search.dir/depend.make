# Empty dependencies file for ext_local_search.
# This may be replaced when dependencies are built.
