file(REMOVE_RECURSE
  "CMakeFiles/ext_local_search.dir/ext_local_search.cpp.o"
  "CMakeFiles/ext_local_search.dir/ext_local_search.cpp.o.d"
  "ext_local_search"
  "ext_local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
