file(REMOVE_RECURSE
  "CMakeFiles/fig12_generator_stats.dir/fig12_generator_stats.cpp.o"
  "CMakeFiles/fig12_generator_stats.dir/fig12_generator_stats.cpp.o.d"
  "fig12_generator_stats"
  "fig12_generator_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_generator_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
