# Empty compiler generated dependencies file for fig12_generator_stats.
# This may be replaced when dependencies are built.
