file(REMOVE_RECURSE
  "CMakeFiles/fig14_convergence.dir/fig14_convergence.cpp.o"
  "CMakeFiles/fig14_convergence.dir/fig14_convergence.cpp.o.d"
  "fig14_convergence"
  "fig14_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
