# Empty compiler generated dependencies file for fig14_convergence.
# This may be replaced when dependencies are built.
