# Empty compiler generated dependencies file for giph_bench_common.
# This may be replaced when dependencies are built.
