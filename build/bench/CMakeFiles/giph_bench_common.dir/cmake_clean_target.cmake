file(REMOVE_RECURSE
  "../lib/libgiph_bench_common.a"
)
