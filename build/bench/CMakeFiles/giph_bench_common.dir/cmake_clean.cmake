file(REMOVE_RECURSE
  "../lib/libgiph_bench_common.a"
  "../lib/libgiph_bench_common.pdb"
  "CMakeFiles/giph_bench_common.dir/common.cpp.o"
  "CMakeFiles/giph_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
