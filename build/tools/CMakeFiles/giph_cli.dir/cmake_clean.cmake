file(REMOVE_RECURSE
  "CMakeFiles/giph_cli.dir/giph_cli.cpp.o"
  "CMakeFiles/giph_cli.dir/giph_cli.cpp.o.d"
  "giph_cli"
  "giph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/giph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
