# Empty dependencies file for giph_cli.
# This may be replaced when dependencies are built.
