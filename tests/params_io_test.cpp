#include "gen/params_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace giph {
namespace {

TEST(ParamsIo, SingleValuesGiveSingleCombination) {
  std::stringstream in(
      "graph.num_tasks = 20\n"
      "graph.alpha = 0.5\n"
      "network.num_devices = 6\n");
  const GeneratorConfig cfg = parse_generator_config(in);
  ASSERT_EQ(cfg.graph_grid.size(), 1u);
  ASSERT_EQ(cfg.network_grid.size(), 1u);
  EXPECT_EQ(cfg.graph_grid[0].num_tasks, 20);
  EXPECT_EQ(cfg.graph_grid[0].alpha, 0.5);
  EXPECT_EQ(cfg.network_grid[0].num_devices, 6);
  // Unlisted keys keep defaults.
  EXPECT_EQ(cfg.graph_grid[0].p_connect, TaskGraphParams{}.p_connect);
}

TEST(ParamsIo, MultiValuesExpandToCartesianGrid) {
  std::stringstream in(
      "graph.num_tasks = 10 20\n"
      "graph.alpha = 0.5 1.0 2.0\n"
      "network.num_devices = 4 8\n");
  const GeneratorConfig cfg = parse_generator_config(in);
  EXPECT_EQ(cfg.graph_grid.size(), 6u);
  EXPECT_EQ(cfg.network_grid.size(), 2u);
  // Every (num_tasks, alpha) combination appears exactly once.
  int seen[2][3] = {};
  for (const TaskGraphParams& p : cfg.graph_grid) {
    const int ti = p.num_tasks == 10 ? 0 : 1;
    const int ai = p.alpha == 0.5 ? 0 : (p.alpha == 1.0 ? 1 : 2);
    ++seen[ti][ai];
  }
  for (auto& row : seen) {
    for (int c : row) EXPECT_EQ(c, 1);
  }
}

TEST(ParamsIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "graph.num_tasks = 7  # trailing comment\n");
  const GeneratorConfig cfg = parse_generator_config(in);
  EXPECT_EQ(cfg.graph_grid[0].num_tasks, 7);
}

TEST(ParamsIo, MalformedLinesThrow) {
  {
    std::stringstream in("graph.num_tasks 20\n");
    EXPECT_THROW(parse_generator_config(in), std::runtime_error);
  }
  {
    std::stringstream in("graph.num_tasks =\n");
    EXPECT_THROW(parse_generator_config(in), std::runtime_error);
  }
  {
    std::stringstream in("graph.bogus = 1\n");
    EXPECT_THROW(parse_generator_config(in), std::runtime_error);
  }
}

TEST(ParamsIo, GridSizeLimitEnforced) {
  std::stringstream in(
      "graph.num_tasks = 1 2 3 4 5 6 7 8 9 10\n"
      "graph.alpha = 1 2 3 4 5 6 7 8 9 10\n");
  EXPECT_THROW(parse_generator_config(in, 50), std::runtime_error);
}

TEST(ParamsIo, WriteReadRoundTrip) {
  TaskGraphParams gp;
  gp.num_tasks = 33;
  gp.mean_bytes = 250.0;
  NetworkParams np;
  np.num_devices = 9;
  np.p_hw_support = 0.75;
  std::stringstream ss;
  write_generator_config(ss, gp, np);
  const GeneratorConfig cfg = parse_generator_config(ss);
  ASSERT_EQ(cfg.graph_grid.size(), 1u);
  EXPECT_EQ(cfg.graph_grid[0].num_tasks, 33);
  EXPECT_EQ(cfg.graph_grid[0].mean_bytes, 250.0);
  EXPECT_EQ(cfg.network_grid[0].num_devices, 9);
  EXPECT_EQ(cfg.network_grid[0].p_hw_support, 0.75);
}

TEST(ParamsIo, RepositoryParameterFilesParse) {
  for (const char* name :
       {"parameters/single_network.txt", "parameters/multi_network.txt",
        "parameters/comm_heavy.txt"}) {
    // Tests run from the build tree; resolve relative to the source dir.
    const std::string path = std::string(GIPH_SOURCE_DIR) + "/" + name;
    EXPECT_NO_THROW({
      const GeneratorConfig cfg = load_generator_config(path);
      EXPECT_FALSE(cfg.graph_grid.empty());
      EXPECT_FALSE(cfg.network_grid.empty());
    }) << name;
  }
}

}  // namespace
}  // namespace giph
