#include "gen/grouping.hpp"

#include <gtest/gtest.h>

#include "gen/enas_gen.hpp"
#include "gen/task_graph_gen.hpp"

namespace giph {
namespace {

TEST(Grouping, ChainCollapsesToTarget) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_task(Task{.compute = 1.0 + i});
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 10.0);
  const GroupedGraph r = group_operators(g, 2);
  EXPECT_EQ(r.graph.num_tasks(), 2);
  // Total compute is conserved.
  EXPECT_DOUBLE_EQ(r.graph.total_compute(), g.total_compute());
  EXPECT_TRUE(r.graph.is_dag());
}

TEST(Grouping, MergesLowestCostInDegreeOneFirst) {
  // 0 -> 1 (cost 5), 0 -> 2 (cost 1): node 2 merges first.
  TaskGraph g;
  g.add_task(Task{.compute = 10.0});
  g.add_task(Task{.compute = 5.0});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  const GroupedGraph r = group_operators(g, 2);
  EXPECT_EQ(r.graph.num_tasks(), 2);
  // Node 2 merged into 0; node 1 survives.
  EXPECT_EQ(r.group_of[2], r.group_of[0]);
  EXPECT_NE(r.group_of[1], r.group_of[0]);
  EXPECT_DOUBLE_EQ(r.graph.task(r.group_of[0]).compute, 11.0);
}

TEST(Grouping, ParallelEdgesAccumulateBytes) {
  // Diamond 0 -> {1, 2} -> 3; merging 1 and 2 into 0 leaves edges 0 -> 3
  // carrying the sum of both branch volumes.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 20.0);
  g.add_edge(1, 3, 30.0);
  g.add_edge(2, 3, 40.0);
  const GroupedGraph r = group_operators(g, 2);
  EXPECT_EQ(r.graph.num_tasks(), 2);
  ASSERT_EQ(r.graph.num_edges(), 1);
  EXPECT_DOUBLE_EQ(r.graph.edge(0).bytes, 70.0);
}

TEST(Grouping, HwRequirementsAreUnioned) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b01});
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b10});
  g.add_edge(0, 1, 1.0);
  const GroupedGraph r = group_operators(g, 1);
  EXPECT_EQ(r.graph.num_tasks(), 1);
  EXPECT_EQ(r.graph.task(0).requires_hw, 0b11u);
}

TEST(Grouping, StopsWhenNothingMergeable) {
  // Two independent roots plus a join: the join has in-degree 2, roots have
  // in-degree 0 -> nothing with in-degree exactly 1 after the first merges.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  const GroupedGraph r = group_operators(g, 1);
  EXPECT_EQ(r.graph.num_tasks(), 3);  // cannot reach 1
}

TEST(Grouping, TargetLargerThanGraphIsIdentity) {
  TaskGraph g;
  g.add_task(Task{.compute = 2.0});
  g.add_task(Task{.compute = 3.0});
  g.add_edge(0, 1, 5.0);
  const GroupedGraph r = group_operators(g, 10);
  EXPECT_EQ(r.graph.num_tasks(), 2);
  EXPECT_EQ(r.graph.num_edges(), 1);
}

TEST(Grouping, InvalidTargetThrows) {
  TaskGraph g;
  g.add_task(Task{});
  EXPECT_THROW(group_operators(g, 0), std::invalid_argument);
}

TEST(Grouping, GroupOfMapsEveryNode) {
  std::mt19937_64 rng(4);
  TaskGraphParams p;
  p.num_tasks = 60;
  const TaskGraph g = generate_task_graph(p, rng);
  const GroupedGraph r = group_operators(g, 12);
  ASSERT_EQ(static_cast<int>(r.group_of.size()), g.num_tasks());
  for (int v = 0; v < g.num_tasks(); ++v) {
    EXPECT_GE(r.group_of[v], 0);
    EXPECT_LT(r.group_of[v], r.graph.num_tasks());
  }
  EXPECT_NEAR(r.graph.total_compute(), g.total_compute(), 1e-6);
  EXPECT_TRUE(r.graph.is_dag());
}

TEST(Grouping, EnasGraphReducesToFortyNodes) {
  std::mt19937_64 rng(8);
  const TaskGraph g = generate_enas_graph(EnasParams{}, rng);
  const GroupedGraph r = group_operators(g, 40);
  EXPECT_LE(r.graph.num_tasks(), 40 + 5);  // a few unmergeable joins may remain
  EXPECT_TRUE(r.graph.is_dag());
}

}  // namespace
}  // namespace giph
