// Differential tests of the reference oracle simulator: oracle_simulate must
// agree bitwise with the production simulate()/simulate_into() on every
// input, while being an independent derivation of the Appendix B.5 model.

#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace giph {
namespace {

using testutil::expect_schedules_bitwise_equal;

const DefaultLatencyModel kLat;

TEST(Oracle, MatchesHandComputedChain) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  const Schedule s = oracle_simulate(g, n, p, kLat);
  // Same derivation as Simulator.ChainAcrossDevicesHandComputed.
  EXPECT_DOUBLE_EQ(s.tasks[0].finish, 2.0);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 7.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 7.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 18.0);
  EXPECT_DOUBLE_EQ(s.makespan, 24.0);
  expect_schedules_bitwise_equal(s, simulate(g, n, p, kLat));
}

TEST(Oracle, MatchesSimulateOnRandomProblems) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto c = testutil::random_case(seed, 4 + static_cast<int>(seed) % 28,
                                         1 + static_cast<int>(seed) % 7);
    const Schedule prod = simulate(c.graph, c.network, c.placement, kLat);
    const Schedule ref = oracle_simulate(c.graph, c.network, c.placement, kLat);
    expect_schedules_bitwise_equal(ref, prod);
  }
}

TEST(Oracle, MatchesSimulateUnderNoiseWithSameDrawSequence) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto c = testutil::random_case(seed * 31, 20, 5);
    std::mt19937_64 rng_prod(seed), rng_ref(seed);
    const Schedule prod =
        simulate(c.graph, c.network, c.placement, kLat, SimOptions{0.3, &rng_prod});
    const Schedule ref =
        oracle_simulate(c.graph, c.network, c.placement, kLat, SimOptions{0.3, &rng_ref});
    expect_schedules_bitwise_equal(ref, prod);
    // Both consumed the same number of draws: engines stay in lockstep.
    EXPECT_EQ(rng_prod(), rng_ref());
  }
}

TEST(Oracle, MatchesSimulateUnderNicContention) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto c = testutil::random_case(seed * 77, 18, 4);
    SimOptions opt;
    opt.serialize_transfers = true;
    expect_schedules_bitwise_equal(
        oracle_simulate(c.graph, c.network, c.placement, kLat, opt),
        simulate(c.graph, c.network, c.placement, kLat, opt));
  }
}

TEST(Oracle, MatchesSimulateOnMultiCoreDevices) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto c = testutil::random_case(seed * 131, 24, 3);
    std::mt19937_64 rng(seed);
    for (int d = 0; d < c.network.num_devices(); ++d) {
      c.network.device(d).cores = 1 + static_cast<int>(rng() % 4);
    }
    expect_schedules_bitwise_equal(
        oracle_simulate(c.graph, c.network, c.placement, kLat),
        simulate(c.graph, c.network, c.placement, kLat));
  }
}

TEST(Oracle, MatchesSimulateIntoWithReusedWorkspace) {
  SimWorkspace ws;
  Schedule out;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto c = testutil::random_case(seed * 7, 6 + static_cast<int>(seed) * 3, 4);
    simulate_into(c.graph, c.network, c.placement, kLat, ws, out);
    expect_schedules_bitwise_equal(
        oracle_simulate(c.graph, c.network, c.placement, kLat), out);
  }
}

TEST(Oracle, EmptyGraphYieldsEmptySchedule) {
  const TaskGraph g;
  const DeviceNetwork n = testutil::two_devices();
  const Schedule s = oracle_simulate(g, n, Placement(0), kLat);
  EXPECT_TRUE(s.tasks.empty());
  EXPECT_EQ(s.makespan, 0.0);
}

TEST(Oracle, ThrowsLikeSimulate) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b1});
  DeviceNetwork n;
  n.add_device(Device{.supports_hw = 0});
  Placement p(1);
  p.set(0, 0);
  EXPECT_THROW(oracle_simulate(g, n, p, kLat), std::invalid_argument);

  TaskGraph cyclic;
  cyclic.add_task(Task{.compute = 1.0});
  cyclic.add_task(Task{.compute = 1.0});
  cyclic.add_edge(0, 1, 1.0);
  cyclic.add_edge(1, 0, 1.0);
  Placement pc(2);
  pc.set(0, 0);
  pc.set(1, 0);
  DeviceNetwork n1;
  n1.add_device(Device{.speed = 1.0});
  EXPECT_THROW(oracle_simulate(cyclic, n1, pc, kLat), std::logic_error);

  TaskGraph ok;
  ok.add_task(Task{.compute = 1.0});
  Placement p1(1);
  p1.set(0, 0);
  EXPECT_THROW(oracle_simulate(ok, n1, p1, kLat, SimOptions{0.5, nullptr}),
               std::invalid_argument);
}

TEST(Oracle, DoesNotCountAsProductionSimulation) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  const std::uint64_t before = simulation_count();
  (void)oracle_simulate(g, n, p, kLat);
  EXPECT_EQ(simulation_count(), before);
}

}  // namespace
}  // namespace giph
