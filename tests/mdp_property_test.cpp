// Property tests for the search-MDP claims of Section 4.1 and the gpNet
// closed forms of Section 4.2.1, swept over randomized problem instances.

#include <gtest/gtest.h>

#include "core/gpnet.hpp"
#include "core/search_env.hpp"
#include "gen/dataset.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct SweepCase {
  int tasks;
  int devices;
  double p_requires;
  std::uint64_t seed;
};

class MdpProperties : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const SweepCase c = GetParam();
    std::mt19937_64 rng(c.seed);
    TaskGraphParams gp;
    gp.num_tasks = c.tasks;
    gp.p_task_requires = c.p_requires;
    NetworkParams np;
    np.num_devices = c.devices;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    feasible = feasible_sets(g, n);
  }
  TaskGraph g;
  DeviceNetwork n;
  std::vector<std::vector<int>> feasible;
};

TEST_P(MdpProperties, ActionSpaceSizeIsSumOfFeasibleSets) {
  // |A_{G,N}| = sum_i |D_i| (Section 4.1); gpNet nodes are exactly the
  // actions, so |V_H| must equal it.
  std::mt19937_64 rng(3);
  const Placement m = random_placement(g, n, rng);
  const GpNet net = build_gpnet(g, n, m, feasible);
  int expected = 0;
  for (const auto& s : feasible) expected += static_cast<int>(s.size());
  EXPECT_EQ(net.num_nodes(), expected);
}

TEST_P(MdpProperties, StateSpaceSizeIsProductOfFeasibleSets) {
  double expected = 1.0;
  for (const auto& s : feasible) expected *= static_cast<double>(s.size());
  EXPECT_DOUBLE_EQ(state_space_size(g, n), expected);
}

TEST_P(MdpProperties, AnyStateReachableInAtMostVMoves) {
  // The MDP diameter is |V|: one move per task transforms any placement into
  // any other (Section 4.1).
  std::mt19937_64 rng(5);
  const Placement from = random_placement(g, n, rng);
  const Placement to = random_placement(g, n, rng);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat), from);
  int moves = 0;
  for (int v = 0; v < g.num_tasks(); ++v) {
    if (env.placement().device_of(v) != to.device_of(v)) {
      env.apply(SearchAction{v, to.device_of(v)});
      ++moves;
    }
  }
  EXPECT_EQ(env.placement(), to);
  EXPECT_LE(moves, g.num_tasks());
}

TEST_P(MdpProperties, RewardsTelescopeToTotalImprovement) {
  // Sum of rewards along any trajectory equals rho(s_0) - rho(s_T).
  std::mt19937_64 rng(7);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                         random_placement(g, n, rng));
  const double initial = env.objective();
  double total = 0.0;
  for (int t = 0; t < 12; ++t) {
    std::uniform_int_distribution<int> pt(0, g.num_tasks() - 1);
    const int v = pt(rng);
    std::uniform_int_distribution<std::size_t> pd(0, feasible[v].size() - 1);
    total += env.apply(SearchAction{v, feasible[v][pd(rng)]});
  }
  EXPECT_NEAR(total, initial - env.objective(), 1e-9);
}

TEST_P(MdpProperties, GpNetEdgeCountFormulaHolds) {
  std::mt19937_64 rng(9);
  const Placement m = random_placement(g, n, rng);
  const GpNet net = build_gpnet(g, n, m, feasible);
  int expected = -g.num_edges();
  for (int v = 0; v < g.num_tasks(); ++v) {
    expected += static_cast<int>(feasible[v].size()) * g.degree(v);
  }
  EXPECT_EQ(net.num_edges(), expected);
}

TEST_P(MdpProperties, GpNetRebuildIsConsistentAfterMoves) {
  std::mt19937_64 rng(11);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                         random_placement(g, n, rng));
  for (int t = 0; t < 5; ++t) {
    std::uniform_int_distribution<int> pt(0, g.num_tasks() - 1);
    const int v = pt(rng);
    std::uniform_int_distribution<std::size_t> pd(0, feasible[v].size() - 1);
    env.apply(SearchAction{v, feasible[v][pd(rng)]});
    const GpNet net = build_gpnet(g, n, env.placement(), feasible);
    for (int task = 0; task < g.num_tasks(); ++task) {
      const int pivot = net.pivot_of_task[task];
      ASSERT_GE(pivot, 0);
      EXPECT_EQ(net.node_device[pivot], env.placement().device_of(task));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MdpProperties,
    ::testing::Values(SweepCase{2, 2, 0.0, 1}, SweepCase{6, 3, 0.5, 2},
                      SweepCase{10, 5, 0.3, 3}, SweepCase{14, 8, 0.7, 4},
                      SweepCase{20, 10, 0.5, 5}, SweepCase{30, 4, 1.0, 6}));

}  // namespace
}  // namespace giph
