#include "core/reinforce.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "baselines/random_policies.hpp"
#include "core/giph_agent.hpp"
#include "gen/dataset.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct TwoTaskInstance {
  // Two tasks, strong locality incentive: the optimal policy co-locates them
  // on the fast device.
  TaskGraph g;
  DeviceNetwork n;
  TwoTaskInstance() {
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, 1, 50.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 4.0});
    n.set_symmetric_link(0, 1, 1.0, 1.0);
  }
};

TEST(Reinforce, GiphLearnsTrivialInstance) {
  TwoTaskInstance inst;
  GiPHOptions o;
  o.seed = 11;
  GiPHAgent agent(o);
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 150;
  topt.seed = 5;
  const TrainStats stats = train_reinforce(agent, kLat, sampler, topt);
  ASSERT_EQ(stats.episode_best.size(), 150u);

  // After training, a greedy search from the worst placement must find the
  // optimum (both tasks on the fast device, SLR-normalized).
  const double denom = slr_denominator(inst.g, inst.n, kLat);
  Placement worst(2);
  worst.set(0, 0);
  worst.set(1, 1);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat), worst, denom);
  std::mt19937_64 rng(3);
  const SearchTrace trace = run_search(agent, env, 4, rng, /*greedy=*/true);
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  const double best_possible = makespan(inst.g, inst.n, opt, kLat) / denom;
  EXPECT_NEAR(trace.best_so_far.back(), best_possible, 1e-9);
}

TEST(Reinforce, StatsTrackEpisodes) {
  TwoTaskInstance inst;
  RandomWalkPolicy policy;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 5;
  const TrainStats stats = train_reinforce(policy, kLat, sampler, topt);
  EXPECT_EQ(stats.episode_initial.size(), 5u);
  EXPECT_EQ(stats.episode_final.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(stats.episode_best[i], stats.episode_initial[i] + 1e-12);
    EXPECT_LE(stats.episode_best[i], stats.episode_final[i] + 1e-12);
  }
}

TEST(Reinforce, OnEpisodeCallbackFires) {
  TwoTaskInstance inst;
  RandomWalkPolicy policy;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 7;
  int fired = 0;
  topt.on_episode = [&](int ep) {
    EXPECT_EQ(ep, fired);
    ++fired;
  };
  train_reinforce(policy, kLat, sampler, topt);
  EXPECT_EQ(fired, 7);
}

TEST(Reinforce, DeterministicGivenSeeds) {
  TwoTaskInstance inst;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 20;
  GiPHOptions o;
  o.seed = 2;
  GiPHAgent a1(o), a2(o);
  const TrainStats s1 = train_reinforce(a1, kLat, sampler, topt);
  const TrainStats s2 = train_reinforce(a2, kLat, sampler, topt);
  EXPECT_EQ(s1.episode_best, s2.episode_best);
  EXPECT_EQ(s1.episode_final, s2.episode_final);
}

TEST(Reinforce, CheckpointResumeReproducesExactTrajectory) {
  TwoTaskInstance inst;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_reinforce_ckpt.txt").string();
  std::filesystem::remove(path);
  constexpr int kCrashAt = 10, kTotal = 20;

  GiPHOptions o;
  o.seed = 4;

  // Reference: an uninterrupted run.
  TrainOptions straight;
  straight.episodes = kTotal;
  GiPHAgent ref(o);
  const TrainStats expected = train_reinforce(ref, kLat, sampler, straight);

  // Crashed run: train kCrashAt episodes with checkpointing, then "crash"
  // (the agent object is simply abandoned).
  TrainOptions part = straight;
  part.episodes = kCrashAt;
  part.checkpoint_every = 5;
  part.checkpoint_path = path;
  {
    GiPHAgent crashed(o);
    train_reinforce(crashed, kLat, sampler, part);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume into a fresh, identically-constructed agent and finish.
  TrainOptions rest = part;
  rest.episodes = kTotal;
  rest.resume = true;
  GiPHAgent resumed(o);
  const TrainStats stats = train_reinforce(resumed, kLat, sampler, rest);

  // Bitwise-identical loss trajectory: the checkpoint captured parameters,
  // optimizer moments, and RNG state exactly.
  EXPECT_EQ(stats.episode_initial, expected.episode_initial);
  EXPECT_EQ(stats.episode_final, expected.episode_final);
  EXPECT_EQ(stats.episode_best, expected.episode_best);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic write cleaned up
  std::filesystem::remove(path);
}

TEST(Reinforce, ResumeWithMissingCheckpointStartsFresh) {
  TwoTaskInstance inst;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 4;
  topt.resume = true;
  topt.checkpoint_path =
      (std::filesystem::temp_directory_path() / "giph_reinforce_ckpt_absent.txt").string();
  std::filesystem::remove(topt.checkpoint_path);
  RandomWalkPolicy policy;
  const TrainStats stats = train_reinforce(policy, kLat, sampler, topt);
  EXPECT_EQ(stats.episode_best.size(), 4u);
}

TEST(Reinforce, CorruptCheckpointIsRejected) {
  TwoTaskInstance inst;
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_reinforce_ckpt_bad.txt").string();
  {
    std::ofstream out(path);
    out << "not a checkpoint\n";
  }
  TrainOptions topt;
  topt.episodes = 2;
  topt.resume = true;
  topt.checkpoint_path = path;
  GiPHOptions o;
  o.seed = 4;
  GiPHAgent agent(o);
  EXPECT_THROW(train_reinforce(agent, kLat, sampler, topt), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(RunSearch, BestSoFarIsMonotone) {
  TwoTaskInstance inst;
  RandomWalkPolicy policy;
  std::mt19937_64 rng(9);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  const SearchTrace trace = run_search(policy, env, 20, rng);
  ASSERT_EQ(trace.best_so_far.size(), 20u);
  for (std::size_t i = 1; i < trace.best_so_far.size(); ++i) {
    EXPECT_LE(trace.best_so_far[i], trace.best_so_far[i - 1] + 1e-12);
  }
  EXPECT_LE(trace.best_so_far.back(), trace.initial + 1e-12);
}

TEST(RunSearch, MoveCountsSumToSteps) {
  TwoTaskInstance inst;
  RandomWalkPolicy policy;
  std::mt19937_64 rng(10);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  const SearchTrace trace = run_search(policy, env, 15, rng);
  int total = 0;
  for (int c : trace.move_counts) total += c;
  EXPECT_EQ(total, 15);
}

TEST(RunSearch, BestPlacementAchievesBestObjective) {
  TwoTaskInstance inst;
  RandomWalkPolicy policy;
  std::mt19937_64 rng(11);
  const double denom = slr_denominator(inst.g, inst.n, kLat);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng), denom);
  const SearchTrace trace = run_search(policy, env, 25, rng);
  EXPECT_NEAR(makespan(inst.g, inst.n, trace.best_placement, kLat) / denom,
              trace.best_so_far.back(), 1e-12);
}

// A policy with a finite episode limit to exercise the restart logic.
class LimitedPolicy final : public SearchPolicy {
 public:
  int restarts = 0;
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng, bool) override {
    std::uniform_int_distribution<int> t(0, env.graph().num_tasks() - 1);
    const int task = t(rng);
    const auto& devs = env.feasible()[task];
    std::uniform_int_distribution<std::size_t> d(0, devs.size() - 1);
    return ActionDecision{SearchAction{task, devs[d(rng)]}, nullptr, std::nullopt};
  }
  void begin_episode() override { ++restarts; }
  int episode_limit(const TaskGraph& g) const override { return g.num_tasks(); }
  std::string name() const override { return "limited"; }
};

TEST(RunSearch, RestartsAtEpisodeLimit) {
  TwoTaskInstance inst;  // |V| = 2 -> restart every 2 steps
  LimitedPolicy policy;
  std::mt19937_64 rng(12);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  run_search(policy, env, 10, rng);
  // begin_episode: once up front + once per restart (after steps 2,4,6,8).
  EXPECT_EQ(policy.restarts, 5);
}

}  // namespace
}  // namespace giph
