#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace giph {
namespace {

TaskGraph diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(Task{.compute = 1.0 + i});
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 20.0);
  g.add_edge(1, 3, 30.0);
  g.add_edge(2, 3, 40.0);
  return g;
}

TEST(TaskGraph, EmptyGraph) {
  TaskGraph g;
  EXPECT_EQ(g.num_tasks(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.depth(), 0);
  EXPECT_TRUE(g.is_dag());
  EXPECT_TRUE(g.entry_tasks().empty());
}

TEST(TaskGraph, AddTaskReturnsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(Task{}), 0);
  EXPECT_EQ(g.add_task(Task{}), 1);
  EXPECT_EQ(g.add_task(Task{}), 2);
  EXPECT_EQ(g.num_tasks(), 3);
}

TEST(TaskGraph, EdgeAccessorsAndAdjacency) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.find_edge(2, 3), 3);
  EXPECT_EQ(g.edge(3).bytes, 40.0);
  EXPECT_EQ(g.parents(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.children(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.in_degree(3), 2);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(TaskGraph, AddEdgeRejectsBadArguments) {
  TaskGraph g = diamond();
  EXPECT_THROW(g.add_edge(0, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(2, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1.0), std::invalid_argument);  // duplicate
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.entry_tasks(), std::vector<int>{0});
  EXPECT_EQ(g.exit_tasks(), std::vector<int>{3});
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto& topo = g.topological_order();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[topo[i]] = i;
  for (const DataLink& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(TaskGraph, LevelsAndDepth) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.levels(), (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(g.depth(), 3);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task(Task{});
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.levels(), std::logic_error);
}

TEST(TaskGraph, CacheInvalidatedByMutation) {
  TaskGraph g;
  g.add_task(Task{});
  g.add_task(Task{});
  EXPECT_EQ(g.depth(), 1);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.depth(), 2);
}

TEST(TaskGraph, CriticalPathCostNodeOnly) {
  const TaskGraph g = diamond();
  // Path 0-2-3 has node costs 1+3+4 = 8 (heavier than 0-1-3 = 7).
  const double cp = g.critical_path_cost([&](int v) { return g.task(v).compute; },
                                         [](int) { return 0.0; });
  EXPECT_DOUBLE_EQ(cp, 8.0);
}

TEST(TaskGraph, CriticalPathCostWithEdges) {
  const TaskGraph g = diamond();
  // Edge costs steer the critical path: 0 -(20)- 2 -(40)- 3: 1+20+3+40+4 = 68.
  const double cp = g.critical_path_cost([&](int v) { return g.task(v).compute; },
                                         [&](int e) { return g.edge(e).bytes; });
  EXPECT_DOUBLE_EQ(cp, 68.0);
}

TEST(TaskGraph, CriticalPathNodes) {
  const TaskGraph g = diamond();
  const auto path = g.critical_path_nodes([&](int v) { return g.task(v).compute; });
  EXPECT_EQ(path, (std::vector<int>{0, 2, 3}));
}

TEST(TaskGraph, CriticalPathSingleNode) {
  TaskGraph g;
  g.add_task(Task{.compute = 5.0});
  EXPECT_DOUBLE_EQ(
      g.critical_path_cost([&](int) { return 5.0; }, [](int) { return 0.0; }), 5.0);
  EXPECT_EQ(g.critical_path_nodes([](int) { return 5.0; }), std::vector<int>{0});
}

TEST(TaskGraph, Totals) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.total_compute(), 1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(g.total_bytes(), 100.0);
}

TEST(TaskGraph, CopyAndMovePreserveStructureAndCache) {
  TaskGraph g = diamond();
  const std::vector<int> topo = g.topological_order();  // warm the cache

  TaskGraph copy = g;
  EXPECT_EQ(copy.num_tasks(), g.num_tasks());
  EXPECT_EQ(copy.num_edges(), g.num_edges());
  EXPECT_EQ(copy.topological_order(), topo);
  copy.add_edge(1, 2, 5.0);  // mutating the copy must not touch the original
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.topological_order(), topo);

  TaskGraph moved = std::move(g);
  EXPECT_EQ(moved.num_tasks(), 4);
  EXPECT_EQ(moved.topological_order(), topo);

  TaskGraph assigned;
  assigned = moved;
  EXPECT_EQ(assigned.topological_order(), topo);
}

// Regression test for the parallel-rollout data race: many threads hit the
// lazy topo/levels cache of a *cold* const graph at once. build_order's
// double-checked lock must let exactly one thread build while the rest see
// either "not ready" (and wait) or the fully published vectors. Run under
// the TSan CI leg, where the pre-fix race is a hard failure.
TEST(TaskGraph, ConcurrentColdCacheReadsAreSafe) {
  for (int round = 0; round < 25; ++round) {
    // A layered random DAG, rebuilt each round so every round starts cold.
    std::mt19937_64 rng(1000 + round);
    TaskGraph g;
    const int n = 40;
    for (int v = 0; v < n; ++v) g.add_task(Task{.compute = 1.0});
    std::uniform_int_distribution<int> src(0, n - 2);
    for (int e = 0; e < 80; ++e) {
      const int u = src(rng);
      std::uniform_int_distribution<int> dst(u + 1, n - 1);
      const int v = dst(rng);
      if (!g.has_edge(u, v)) g.add_edge(u, v, 1.0);
    }
    const TaskGraph& cg = g;
    const std::vector<int> expected_topo = [&] {
      // Reference from an independent warmed copy, not from cg.
      TaskGraph ref = cg;
      return ref.topological_order();
    }();

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        if (cg.topological_order() != expected_topo) mismatches.fetch_add(1);
        if (static_cast<int>(cg.levels().size()) != n) mismatches.fetch_add(1);
        if (!cg.is_dag()) mismatches.fetch_add(1);
      });
    }
    while (ready.load() != kThreads) {
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    ASSERT_EQ(mismatches.load(), 0) << "round " << round;
  }
}

}  // namespace
}  // namespace giph
