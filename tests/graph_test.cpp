#include "graph/task_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace giph {
namespace {

TaskGraph diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(Task{.compute = 1.0 + i});
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 20.0);
  g.add_edge(1, 3, 30.0);
  g.add_edge(2, 3, 40.0);
  return g;
}

TEST(TaskGraph, EmptyGraph) {
  TaskGraph g;
  EXPECT_EQ(g.num_tasks(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.depth(), 0);
  EXPECT_TRUE(g.is_dag());
  EXPECT_TRUE(g.entry_tasks().empty());
}

TEST(TaskGraph, AddTaskReturnsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(Task{}), 0);
  EXPECT_EQ(g.add_task(Task{}), 1);
  EXPECT_EQ(g.add_task(Task{}), 2);
  EXPECT_EQ(g.num_tasks(), 3);
}

TEST(TaskGraph, EdgeAccessorsAndAdjacency) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.find_edge(2, 3), 3);
  EXPECT_EQ(g.edge(3).bytes, 40.0);
  EXPECT_EQ(g.parents(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.children(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(g.in_degree(3), 2);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(TaskGraph, AddEdgeRejectsBadArguments) {
  TaskGraph g = diamond();
  EXPECT_THROW(g.add_edge(0, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(2, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, 1.0), std::invalid_argument);  // duplicate
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.entry_tasks(), std::vector<int>{0});
  EXPECT_EQ(g.exit_tasks(), std::vector<int>{3});
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto& topo = g.topological_order();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[topo[i]] = i;
  for (const DataLink& e : g.edges()) EXPECT_LT(pos[e.src], pos[e.dst]);
}

TEST(TaskGraph, LevelsAndDepth) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.levels(), (std::vector<int>{0, 1, 1, 2}));
  EXPECT_EQ(g.depth(), 3);
}

TEST(TaskGraph, CycleDetection) {
  TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task(Task{});
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.levels(), std::logic_error);
}

TEST(TaskGraph, CacheInvalidatedByMutation) {
  TaskGraph g;
  g.add_task(Task{});
  g.add_task(Task{});
  EXPECT_EQ(g.depth(), 1);
  g.add_edge(0, 1, 1.0);
  EXPECT_EQ(g.depth(), 2);
}

TEST(TaskGraph, CriticalPathCostNodeOnly) {
  const TaskGraph g = diamond();
  // Path 0-2-3 has node costs 1+3+4 = 8 (heavier than 0-1-3 = 7).
  const double cp = g.critical_path_cost([&](int v) { return g.task(v).compute; },
                                         [](int) { return 0.0; });
  EXPECT_DOUBLE_EQ(cp, 8.0);
}

TEST(TaskGraph, CriticalPathCostWithEdges) {
  const TaskGraph g = diamond();
  // Edge costs steer the critical path: 0 -(20)- 2 -(40)- 3: 1+20+3+40+4 = 68.
  const double cp = g.critical_path_cost([&](int v) { return g.task(v).compute; },
                                         [&](int e) { return g.edge(e).bytes; });
  EXPECT_DOUBLE_EQ(cp, 68.0);
}

TEST(TaskGraph, CriticalPathNodes) {
  const TaskGraph g = diamond();
  const auto path = g.critical_path_nodes([&](int v) { return g.task(v).compute; });
  EXPECT_EQ(path, (std::vector<int>{0, 2, 3}));
}

TEST(TaskGraph, CriticalPathSingleNode) {
  TaskGraph g;
  g.add_task(Task{.compute = 5.0});
  EXPECT_DOUBLE_EQ(
      g.critical_path_cost([&](int) { return 5.0; }, [](int) { return 0.0; }), 5.0);
  EXPECT_EQ(g.critical_path_nodes([](int) { return 5.0; }), std::vector<int>{0});
}

TEST(TaskGraph, Totals) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.total_compute(), 1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(g.total_bytes(), 100.0);
}

}  // namespace
}  // namespace giph
