#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/optimizer.hpp"

namespace giph::nn {
namespace {

TEST(ParamRegistry, CreateAndLookup) {
  ParamRegistry reg;
  const Var p = reg.create("w", Matrix(2, 3, 1.0));
  EXPECT_EQ(reg.params().size(), 1u);
  EXPECT_EQ(reg.names()[0], "w");
  EXPECT_EQ(reg.num_scalars(), 6u);
  EXPECT_TRUE(p->requires_grad);
  EXPECT_THROW(reg.create("w", Matrix(1, 1)), std::invalid_argument);
}

TEST(ParamRegistry, ZeroGradClears) {
  ParamRegistry reg;
  const Var p = reg.create("w", Matrix::scalar(1.0));
  backward(scale(p, 3.0));
  EXPECT_EQ(p->grad(0, 0), 3.0);
  reg.zero_grad();
  EXPECT_EQ(p->grad.size(), 0u);
}

TEST(ParamRegistry, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_params_test.txt").string();
  std::mt19937_64 rng(1);
  ParamRegistry a;
  Linear la(a, "lin", 3, 4, rng);
  const Matrix w_before = la.weight()->value;

  a.save(path);

  std::mt19937_64 rng2(99);  // different init
  ParamRegistry b;
  Linear lb(b, "lin", 3, 4, rng2);
  EXPECT_GT(max_abs_diff(lb.weight()->value, w_before), 0.0);
  b.load(path);
  EXPECT_EQ(max_abs_diff(lb.weight()->value, w_before), 0.0);
  std::remove(path.c_str());
}

TEST(ParamRegistry, LoadRejectsMismatch) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_params_test2.txt").string();
  std::mt19937_64 rng(1);
  ParamRegistry a;
  a.create("x", Matrix(2, 2));
  a.save(path);
  ParamRegistry b;
  b.create("y", Matrix(2, 2));
  EXPECT_THROW(b.load(path), std::runtime_error);
  ParamRegistry c;
  c.create("x", Matrix(3, 2));
  EXPECT_THROW(c.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(XavierInit, BoundsAndVariation) {
  std::mt19937_64 rng(2);
  const Matrix m = xavier_uniform(10, 10, rng);
  const double limit = std::sqrt(6.0 / 20.0);
  bool nonzero = false;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_LE(std::abs(m(i, j)), limit);
      if (m(i, j) != 0.0) nonzero = true;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST(Linear, ForwardMatchesManual) {
  std::mt19937_64 rng(3);
  ParamRegistry reg;
  Linear lin(reg, "l", 2, 3, rng);
  const Matrix x = Matrix::from_row({1.0, -2.0});
  const Var out = lin(constant(x));
  const Matrix expected =
      matmul(x, lin.weight()->value) + lin.bias()->value;
  EXPECT_LT(max_abs_diff(out->value, expected), 1e-12);
}

TEST(Linear, BiasStartsAtZero) {
  std::mt19937_64 rng(4);
  ParamRegistry reg;
  Linear lin(reg, "l", 2, 3, rng);
  for (int j = 0; j < 3; ++j) EXPECT_EQ(lin.bias()->value(0, j), 0.0);
}

TEST(MLP, ShapesAndActivation) {
  std::mt19937_64 rng(5);
  ParamRegistry reg;
  const MLP mlp(reg, "m", {4, 8, 1}, rng, Activation::kRelu, Activation::kNone);
  EXPECT_EQ(mlp.output_dim(), 1);
  const Var out = mlp(constant(Matrix(3, 4, 0.5)));
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_EQ(out->value.cols(), 1);
  // 2 layers x (W, b).
  EXPECT_EQ(reg.params().size(), 4u);
}

TEST(MLP, RejectsTooFewDims) {
  std::mt19937_64 rng(6);
  ParamRegistry reg;
  EXPECT_THROW(MLP(reg, "m", {4}, rng), std::invalid_argument);
}

TEST(MLP, GradientsReachAllParameters) {
  std::mt19937_64 rng(7);
  ParamRegistry reg;
  const MLP mlp(reg, "m", {3, 5, 2}, rng, Activation::kTanh, Activation::kNone);
  backward(sum_all(mlp(constant(Matrix(2, 3, 0.7)))));
  for (const Var& p : reg.params()) {
    EXPECT_GT(p->grad.size(), 0u);
  }
}

TEST(ApplyActivation, AllKinds) {
  const Var x = constant(Matrix::from_row({-1.0, 2.0}));
  EXPECT_EQ(apply_activation(x, Activation::kNone).get(), x.get());
  EXPECT_EQ(apply_activation(x, Activation::kRelu)->value(0, 0), 0.0);
  EXPECT_NEAR(apply_activation(x, Activation::kTanh)->value(0, 1), std::tanh(2.0),
              1e-12);
  EXPECT_NEAR(apply_activation(x, Activation::kSigmoid)->value(0, 0),
              1.0 / (1.0 + std::exp(1.0)), 1e-12);
}

TEST(LSTMCell, ShapesAndStateEvolution) {
  std::mt19937_64 rng(8);
  ParamRegistry reg;
  const LSTMCell cell(reg, "lstm", 3, 5, rng);
  EXPECT_EQ(cell.hidden_dim(), 5);
  LSTMCell::State s = cell.initial_state();
  EXPECT_EQ(s.h->value.cols(), 5);
  for (int j = 0; j < 5; ++j) EXPECT_EQ(s.h->value(0, j), 0.0);

  const Var x = constant(Matrix(1, 3, 1.0));
  const LSTMCell::State s1 = cell(x, s);
  EXPECT_EQ(s1.h->value.rows(), 1);
  EXPECT_EQ(s1.h->value.cols(), 5);
  // State actually changed.
  EXPECT_GT(max_abs_diff(s1.h->value, s.h->value), 0.0);
  // Hidden values are bounded by tanh.
  for (int j = 0; j < 5; ++j) EXPECT_LE(std::abs(s1.h->value(0, j)), 1.0);
}

TEST(LSTMCell, GradientsFlowThroughTime) {
  std::mt19937_64 rng(9);
  ParamRegistry reg;
  const LSTMCell cell(reg, "lstm", 2, 4, rng);
  LSTMCell::State s = cell.initial_state();
  for (int t = 0; t < 3; ++t) s = cell(constant(Matrix(1, 2, 0.3 * (t + 1))), s);
  backward(sum_all(s.h));
  for (const Var& p : reg.params()) EXPECT_GT(p->grad.size(), 0u);
}

TEST(LSTMCell, NumericGradientCheckThroughOneStep) {
  std::mt19937_64 rng(11);
  ParamRegistry reg;
  const LSTMCell cell(reg, "lstm", 2, 3, rng);
  const Matrix x_val(1, 2, 0.4);

  auto loss_value = [&]() {
    const LSTMCell::State s = cell(constant(x_val), cell.initial_state());
    return sum_all(mul(s.h, s.h))->value(0, 0);
  };

  // Analytic gradients of sum(h^2) after one LSTM step.
  {
    const LSTMCell::State s = cell(constant(x_val), cell.initial_state());
    backward(sum_all(mul(s.h, s.h)));
  }
  const double h = 1e-6;
  for (const Var& p : reg.params()) {
    ASSERT_GT(p->grad.size(), 0u);
    // Spot-check a few elements per parameter.
    for (int i = 0; i < std::min(2, p->value.rows()); ++i) {
      for (int j = 0; j < std::min(3, p->value.cols()); ++j) {
        const double orig = p->value(i, j);
        p->value(i, j) = orig + h;
        const double up = loss_value();
        p->value(i, j) = orig - h;
        const double down = loss_value();
        p->value(i, j) = orig;
        EXPECT_NEAR(p->grad(i, j), (up - down) / (2 * h), 1e-5);
      }
    }
  }
}

TEST(LSTMCell, ForgetGateBiasInitializedToOne) {
  std::mt19937_64 rng(10);
  ParamRegistry reg;
  const LSTMCell cell(reg, "lstm", 2, 3, rng);
  const Var b = reg.params().back();  // lstm.b registered last
  for (int j = 0; j < 3; ++j) EXPECT_EQ(b->value(0, j), 0.0);        // input gate
  for (int j = 3; j < 6; ++j) EXPECT_EQ(b->value(0, j), 1.0);        // forget gate
  for (int j = 6; j < 12; ++j) EXPECT_EQ(b->value(0, j), 0.0);       // cell/output
}

}  // namespace
}  // namespace giph::nn
