// Tests of the scale tier (DESIGN.md "Hierarchical placement"): the DAG
// partitioner's invariants, expansion, the HierarchicalPlacer's never-worsen
// refinement contract, the sparse gpNet's dense-equivalence at k >= D, and
// the subset EST sweep's bitwise agreement with the full sweep.

#include "core/hierarchical.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/giph_agent.hpp"
#include "core/gpnet.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/grouping.hpp"
#include "gen/task_graph_gen.hpp"
#include "sim/schedule_index.hpp"
#include "sim/simulator.hpp"
#include "util/parallel_for.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph graph;
  DeviceNetwork network;
};

Instance make_instance(int tasks, int devices, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = tasks;
  gp.p_connect = 0.2;
  gp.num_hw_kinds = 3;
  gp.p_task_requires = 0.3;
  NetworkParams np;
  np.num_devices = devices;
  np.num_hw_kinds = 3;
  np.p_hw_support = 0.7;
  Instance in;
  in.graph = generate_task_graph(gp, rng);
  in.network = generate_device_network(np, rng);
  ensure_feasible(in.graph, in.network, rng);
  return in;
}

void expect_valid_partition(const TaskGraph& g, const GraphPartition& part) {
  const int nt = g.num_tasks();
  ASSERT_EQ(static_cast<int>(part.cluster_of.size()), nt);
  ASSERT_EQ(static_cast<int>(part.members.size()), part.num_clusters());
  std::vector<int> seen(nt, 0);
  for (int c = 0; c < part.num_clusters(); ++c) {
    int prev = -1;
    for (int v : part.members[c]) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, nt);
      EXPECT_GT(v, prev) << "member list of cluster " << c << " not ascending";
      prev = v;
      EXPECT_EQ(part.cluster_of[v], c);
      ++seen[v];
    }
  }
  for (int v = 0; v < nt; ++v) {
    EXPECT_EQ(seen[v], 1) << "task " << v << " not in exactly one cluster";
  }
  EXPECT_TRUE(part.coarse.is_dag());
  EXPECT_NEAR(part.coarse.total_compute(), g.total_compute(),
              1e-9 * std::max(1.0, g.total_compute()));
  EXPECT_NEAR(part.coarse.total_bytes() + part.internal_bytes, g.total_bytes(),
              1e-9 * std::max(1.0, g.total_bytes()));
}

TEST(Partition, InvariantsOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance in = make_instance(40, 6, seed);
    PartitionOptions opt;
    opt.num_clusters = 1 + static_cast<int>(seed % 7);
    const GraphPartition part = partition_tasks(in.graph, in.network, opt);
    expect_valid_partition(in.graph, part);
    // The fine instance is feasible, so the coarse one must be too.
    EXPECT_NO_THROW((void)feasible_sets(part.coarse, in.network));
  }
}

TEST(Partition, ChainCutsIntoBalancedIntervals) {
  TaskGraph g;
  for (int i = 0; i < 8; ++i) g.add_task(Task{.compute = 1.0});
  for (int i = 0; i + 1 < 8; ++i) g.add_edge(i, i + 1, 10.0);
  std::mt19937_64 rng(1);
  DeviceNetwork n = generate_device_network(NetworkParams{.num_devices = 3}, rng);
  PartitionOptions opt;
  opt.num_clusters = 4;
  const GraphPartition part = partition_tasks(g, n, opt);
  expect_valid_partition(g, part);
  EXPECT_EQ(part.num_clusters(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(static_cast<int>(part.members[c].size()), 2);
    EXPECT_DOUBLE_EQ(part.coarse.task(c).compute, 2.0);
  }
  // A chain's cross-cluster edges point from cluster c to c + 1.
  for (const auto& e : part.coarse.edges()) EXPECT_EQ(e.dst, e.src + 1);
}

TEST(Partition, ConflictingPinsForceACut) {
  // Two tasks pinned to different devices can never share a cluster, even
  // with num_clusters = 1.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .pinned = 0});
  g.add_task(Task{.compute = 1.0, .pinned = 1});
  g.add_edge(0, 1, 5.0);
  std::mt19937_64 rng(2);
  DeviceNetwork n = generate_device_network(NetworkParams{.num_devices = 2}, rng);
  PartitionOptions opt;
  opt.num_clusters = 1;
  const GraphPartition part = partition_tasks(g, n, opt);
  expect_valid_partition(g, part);
  ASSERT_EQ(part.num_clusters(), 2);
  EXPECT_NE(part.cluster_of[0], part.cluster_of[1]);
  EXPECT_EQ(part.coarse.task(part.cluster_of[0]).pinned, 0);
  EXPECT_EQ(part.coarse.task(part.cluster_of[1]).pinned, 1);
}

TEST(Partition, InfeasibleHwUnionForcesACut) {
  // Device 0 supports kind 0 only, device 1 kind 1 only: a merged cluster
  // requiring both kinds would be unplaceable, so the partitioner must cut.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b01});
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b10});
  g.add_edge(0, 1, 5.0);
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0, .supports_hw = 0b01});
  n.add_device(Device{.speed = 1.0, .supports_hw = 0b10});
  n.set_symmetric_link(0, 1, 10.0, 0.1);
  PartitionOptions opt;
  opt.num_clusters = 1;
  const GraphPartition part = partition_tasks(g, n, opt);
  expect_valid_partition(g, part);
  ASSERT_EQ(part.num_clusters(), 2);
  EXPECT_NO_THROW((void)feasible_sets(part.coarse, n));
}

TEST(Partition, ClusterCountClampedToTasks) {
  const Instance in = make_instance(5, 4, 3);
  PartitionOptions opt;
  opt.num_clusters = 50;
  const GraphPartition part = partition_tasks(in.graph, in.network, opt);
  expect_valid_partition(in.graph, part);
  EXPECT_EQ(part.num_clusters(), 5);
}

TEST(Partition, InvalidOptionsThrow) {
  const Instance in = make_instance(4, 2, 4);
  PartitionOptions opt;
  opt.num_clusters = 0;
  EXPECT_THROW(partition_tasks(in.graph, in.network, opt), std::invalid_argument);
  opt.num_clusters = 2;
  opt.balance = 0.5;
  EXPECT_THROW(partition_tasks(in.graph, in.network, opt), std::invalid_argument);
}

TEST(Partition, DeterministicAcrossRunsAndThreadCounts) {
  const Instance in = make_instance(60, 8, 5);
  PartitionOptions opt;
  opt.num_clusters = 7;
  const GraphPartition ref = partition_tasks(in.graph, in.network, opt);
  // Repeat runs are identical.
  EXPECT_EQ(partition_tasks(in.graph, in.network, opt).cluster_of, ref.cluster_of);
  // And so are concurrent runs at any worker count: the partitioner is a pure
  // function of (g, n, opt) with no hidden global state.
  for (const int threads : {1, 2, 8}) {
    std::vector<GraphPartition> parts(8);
    util::parallel_for(8, threads, [&](int i) {
      parts[i] = partition_tasks(in.graph, in.network, opt);
    });
    for (const auto& p : parts) {
      EXPECT_EQ(p.cluster_of, ref.cluster_of);
      EXPECT_EQ(p.coarse.num_edges(), ref.coarse.num_edges());
    }
  }
}

TEST(Partition, ExpandIsConstantOnClustersAndFeasible) {
  const Instance in = make_instance(30, 5, 6);
  PartitionOptions opt;
  opt.num_clusters = 5;
  const GraphPartition part = partition_tasks(in.graph, in.network, opt);
  std::mt19937_64 rng(7);
  const Placement coarse = random_placement(part.coarse, in.network, rng);
  const Placement fine = expand_placement(part, coarse);
  EXPECT_TRUE(is_feasible(in.graph, in.network, fine));
  for (int v = 0; v < in.graph.num_tasks(); ++v) {
    EXPECT_EQ(fine.device_of(v), coarse.device_of(part.cluster_of[v]));
  }
}

TEST(Partition, PinSnappingExpandRepairsPinIgnoringCoarse) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .pinned = 1});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 5.0);
  std::mt19937_64 rng(8);
  DeviceNetwork n = generate_device_network(NetworkParams{.num_devices = 2}, rng);
  ensure_feasible(g, n, rng);
  PartitionOptions opt;
  opt.num_clusters = 1;
  const GraphPartition part = partition_tasks(g, n, opt);
  // A coarse placement that ignores the coarse pin: the snapping overload
  // still lands the pinned task on its pin.
  Placement coarse(part.num_clusters());
  for (int c = 0; c < part.num_clusters(); ++c) coarse.set(c, 0);
  const Placement fine = expand_placement(part, g, coarse);
  EXPECT_EQ(fine.device_of(0), 1);
  EXPECT_TRUE(is_feasible(g, n, fine));
}

// ---------------------------------------------------------------------------

TEST(Hierarchical, RefinementNeverWorsensAndMatchesFlatSimulation) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance in = make_instance(50, 8, 100 + seed);
    HierarchicalOptions opt;
    opt.partition.num_clusters = 6;
    opt.refine_rounds = 2;
    GiPHOptions aopt;
    aopt.embed_dim = 4;
    GiPHAgent agent(aopt);
    std::mt19937_64 rng(seed);

    HierarchicalPlacer placer(in.graph, in.network, kLat, opt);
    HierarchicalStats stats;
    const Placement fine = placer.place(agent, rng, &stats);

    EXPECT_TRUE(is_feasible(in.graph, in.network, fine));
    EXPECT_LE(stats.refined_objective, stats.expanded_objective)
        << "refinement must never worsen the expanded placement";
    // The reported objective IS the flat simulation of the returned
    // placement, bitwise (delta simulation contract).
    const double norm = placer.fine_normalizer() > 0.0 ? placer.fine_normalizer() : 1.0;
    const double flat = simulate(in.graph, in.network, fine, kLat).makespan / norm;
    EXPECT_EQ(flat, stats.refined_objective);
    EXPECT_EQ(placer.objective_of(fine), stats.refined_objective);
  }
}

TEST(Hierarchical, RefineImprovesAPoorExpansion) {
  // Starting from the worst-EFT-looking placement expansion refinement should
  // find at least one strictly improving move on a sizable instance.
  const Instance in = make_instance(60, 8, 42);
  HierarchicalOptions opt;
  opt.partition.num_clusters = 6;
  opt.coarse_steps_factor = 0;  // keep the HEFT warm start
  opt.refine_rounds = 3;
  GiPHOptions aopt;
  aopt.embed_dim = 4;
  GiPHAgent agent(aopt);
  std::mt19937_64 rng(9);
  HierarchicalPlacer placer(in.graph, in.network, kLat, opt);
  HierarchicalStats stats;
  (void)placer.place(agent, rng, &stats);
  EXPECT_GT(stats.refine_moves_tried, 0);
  EXPECT_LE(stats.refined_objective, stats.expanded_objective);
}

TEST(Hierarchical, RefineDisabledReturnsExpandedObjective) {
  const Instance in = make_instance(20, 4, 11);
  HierarchicalOptions opt;
  opt.partition.num_clusters = 4;
  opt.refine = false;
  GiPHOptions aopt;
  aopt.embed_dim = 4;
  GiPHAgent agent(aopt);
  std::mt19937_64 rng(3);
  HierarchicalPlacer placer(in.graph, in.network, kLat, opt);
  HierarchicalStats stats;
  const Placement fine = placer.place(agent, rng, &stats);
  EXPECT_EQ(stats.refined_objective, stats.expanded_objective);
  EXPECT_EQ(placer.objective_of(fine), stats.expanded_objective);
}

TEST(Hierarchical, InvalidOptionsThrow) {
  const Instance in = make_instance(10, 3, 12);
  HierarchicalOptions opt;
  opt.refine_topk = 0;
  EXPECT_THROW(HierarchicalPlacer(in.graph, in.network, kLat, opt),
               std::invalid_argument);
  opt.refine_topk = 1;
  opt.refine_rounds = -1;
  EXPECT_THROW(HierarchicalPlacer(in.graph, in.network, kLat, opt),
               std::invalid_argument);
  opt.refine_rounds = 0;
  opt.coarse_steps_factor = -1;
  EXPECT_THROW(HierarchicalPlacer(in.graph, in.network, kLat, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(SparseGpNet, TopKAtLeastDeviceCountIsBitwiseDense) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance in = make_instance(30, 6, 200 + seed);
    std::mt19937_64 rng(seed);
    const Placement p = random_placement(in.graph, in.network, rng);
    const auto feasible = feasible_sets(in.graph, in.network);
    const Schedule sched = simulate(in.graph, in.network, p, kLat);
    EstSweepWorkspace ws;
    est_sweep(sched, in.graph, in.network, p, kLat, ws);

    const GpNet dense = build_gpnet(in.graph, in.network, p, feasible);
    for (const int k : {in.network.num_devices(), in.network.num_devices() + 5}) {
      const GpNet sparse = build_gpnet_topk(in.graph, in.network, p, feasible, k, ws.est);
      EXPECT_EQ(sparse.node_task, dense.node_task);
      EXPECT_EQ(sparse.node_device, dense.node_device);
      EXPECT_EQ(sparse.is_pivot, dense.is_pivot);
      EXPECT_EQ(sparse.options, dense.options);
      EXPECT_EQ(sparse.pivot_of_task, dense.pivot_of_task);
      EXPECT_EQ(sparse.edge_task_edge, dense.edge_task_edge);
      EXPECT_EQ(sparse.view.edges, dense.view.edges);
      EXPECT_EQ(sparse.view.topo, dense.view.topo);
    }
  }
}

TEST(SparseGpNet, SmallKBoundsNodesAndKeepsPivots) {
  const Instance in = make_instance(40, 8, 300);
  std::mt19937_64 rng(5);
  const Placement p = random_placement(in.graph, in.network, rng);
  const auto feasible = feasible_sets(in.graph, in.network);
  const Schedule sched = simulate(in.graph, in.network, p, kLat);
  EstSweepWorkspace ws;
  est_sweep(sched, in.graph, in.network, p, kLat, ws);

  const int k = 2;
  const GpNet net = build_gpnet_topk(in.graph, in.network, p, feasible, k, ws.est);
  EXPECT_LE(net.num_nodes(), in.graph.num_tasks() * (k + 1));
  for (int v = 0; v < in.graph.num_tasks(); ++v) {
    ASSERT_GE(net.pivot_of_task[v], 0);
    EXPECT_EQ(net.node_task[net.pivot_of_task[v]], v);
    EXPECT_EQ(net.node_device[net.pivot_of_task[v]], p.device_of(v));
    EXPECT_LE(static_cast<int>(net.options[v].size()), k + 1);
    // Every emitted option is genuinely feasible.
    for (const int node : net.options[v]) {
      EXPECT_TRUE(device_feasible(in.graph, in.network, v, net.node_device[node]));
    }
  }
}

TEST(SparseGpNet, InvalidArgumentsThrow) {
  const Instance in = make_instance(6, 3, 301);
  std::mt19937_64 rng(6);
  const Placement p = random_placement(in.graph, in.network, rng);
  const auto feasible = feasible_sets(in.graph, in.network);
  EXPECT_THROW(build_gpnet_topk(in.graph, in.network, p, feasible, -1,
                                std::vector<double>(6 * 3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(build_gpnet_topk(in.graph, in.network, p, feasible, 2,
                                std::vector<double>(5, 0.0)),
               std::invalid_argument);
}

TEST(SubsetEstSweep, MatchesFullSweepBitwise) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance in = make_instance(40, 7, 400 + seed);
    std::mt19937_64 rng(seed);
    const Placement p = random_placement(in.graph, in.network, rng);
    const Schedule sched = simulate(in.graph, in.network, p, kLat);
    const int nd = in.network.num_devices();

    EstSweepWorkspace full_ws, sub_ws;
    est_sweep(sched, in.graph, in.network, p, kLat, full_ws);

    std::vector<int> subset;
    for (int v = 0; v < in.graph.num_tasks(); ++v) {
      if (v % 3 == static_cast<int>(seed % 3)) subset.push_back(v);
    }
    subset.push_back(subset.front());  // duplicates are allowed
    est_sweep_subset(sched, in.graph, in.network, p, kLat, subset, sub_ws);
    for (const int v : subset) {
      for (int d = 0; d < nd; ++d) {
        const std::size_t at = static_cast<std::size_t>(v) * nd + d;
        EXPECT_EQ(full_ws.est[at], sub_ws.est[at])
            << "task " << v << " device " << d;
      }
    }
  }
}

}  // namespace
}  // namespace giph
