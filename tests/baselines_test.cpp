#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "baselines/rnn_placer.hpp"
#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"
#include "heft/heft.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph g;
  DeviceNetwork n;
  Instance(int tasks = 10, int devices = 5, std::uint64_t seed = 77) {
    std::mt19937_64 rng(seed);
    TaskGraphParams gp;
    gp.num_tasks = tasks;
    NetworkParams np;
    np.num_devices = devices;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
  }
};

TEST(RandomSampling, ProducesFullFeasiblePlacements) {
  Instance inst;
  RandomSamplingPolicy pol;
  std::mt19937_64 rng(1);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  for (int i = 0; i < 5; ++i) {
    const ActionDecision d = pol.decide(env, rng, false);
    ASSERT_TRUE(d.full.has_value());
    EXPECT_TRUE(is_feasible(inst.g, inst.n, *d.full));
    EXPECT_FALSE(d.log_prob);
    env.apply_placement(*d.full);
  }
}

TEST(RandomTaskEft, MovesToEftDevice) {
  Instance inst;
  RandomTaskEftPolicy pol;
  std::mt19937_64 rng(2);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  for (int i = 0; i < 10; ++i) {
    const ActionDecision d = pol.decide(env, rng, false);
    const int expected = eft_select_device(inst.g, inst.n, env.placement(), kLat,
                                           env.schedule(), d.action.task);
    EXPECT_EQ(d.action.device, expected);
    env.apply(d.action);
  }
}

TEST(RandomTaskEft, ImprovesOverRandomWalkOnAverage) {
  Instance inst(12, 6, 5);
  RandomTaskEftPolicy eft;
  RandomWalkPolicy walk;
  std::mt19937_64 rng(3);
  const double denom = slr_denominator(inst.g, inst.n, kLat);
  double eft_total = 0.0, walk_total = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    const Placement init = random_placement(inst.g, inst.n, rng);
    PlacementSearchEnv e1(inst.g, inst.n, kLat, makespan_objective(kLat), init, denom);
    PlacementSearchEnv e2(inst.g, inst.n, kLat, makespan_objective(kLat), init, denom);
    eft_total += run_search(eft, e1, 24, rng).best_so_far.back();
    walk_total += run_search(walk, e2, 24, rng).best_so_far.back();
  }
  EXPECT_LT(eft_total, walk_total);
}

TEST(Placeto, TraversesTopologicalOrderOncePerEpisode) {
  Instance inst;
  PlacetoOptions po;
  po.num_devices = inst.n.num_devices();
  PlacetoPolicy pol(po);
  std::mt19937_64 rng(4);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  pol.begin_episode();
  const auto& topo = inst.g.topological_order();
  for (int i = 0; i < inst.g.num_tasks(); ++i) {
    const ActionDecision d = pol.decide(env, rng, false);
    EXPECT_EQ(d.action.task, topo[i]);
    env.apply(d.action);
  }
  EXPECT_EQ(pol.episode_limit(inst.g), inst.g.num_tasks());
}

TEST(Placeto, ActionsAreFeasibleAndDifferentiable) {
  Instance inst;
  PlacetoOptions po;
  po.num_devices = inst.n.num_devices();
  PlacetoPolicy pol(po);
  std::mt19937_64 rng(5);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  pol.begin_episode();
  const ActionDecision d = pol.decide(env, rng, false);
  ASSERT_TRUE(d.log_prob);
  nn::backward(d.log_prob);
  bool any = false;
  for (const nn::Var& p : pol.parameters()) any = any || p->grad.size() > 0;
  EXPECT_TRUE(any);
  EXPECT_NO_THROW(env.apply(d.action));
}

TEST(Placeto, CannotAddressDevicesBeyondHeadSize) {
  Instance inst;
  PlacetoOptions po;
  po.num_devices = 2;  // head smaller than the network
  PlacetoPolicy pol(po);
  std::mt19937_64 rng(6);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  pol.begin_episode();
  // Learned decisions stay below the head size whenever the task has a
  // feasible device there; fallbacks (no gradient) may exceed it.
  for (int i = 0; i < inst.g.num_tasks(); ++i) {
    const ActionDecision d = pol.decide(env, rng, false);
    if (d.log_prob) EXPECT_LT(d.action.device, 2);
    env.apply(d.action);
  }
}

TEST(Placeto, TrainsWithReinforce) {
  Instance inst;
  PlacetoOptions po;
  po.num_devices = inst.n.num_devices();
  PlacetoPolicy pol(po);
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 10;
  const TrainStats stats = train_reinforce(pol, kLat, sampler, topt);
  EXPECT_EQ(stats.episode_best.size(), 10u);
}

TEST(RnnPlacer, TrainsAndProducesFeasiblePlacement) {
  Instance inst(8, 4, 99);
  RnnPlacerOptions o;
  o.max_updates = 10;
  o.seed = 3;
  RnnPlacer placer(inst.g, inst.n, kLat, o);
  const double best = placer.train();
  EXPECT_TRUE(std::isfinite(best));
  EXPECT_TRUE(is_feasible(inst.g, inst.n, placer.best_placement()));
  EXPECT_FALSE(placer.update_trace().empty());
  // Trace is monotone non-increasing (best so far).
  for (std::size_t i = 1; i < placer.update_trace().size(); ++i) {
    EXPECT_LE(placer.update_trace()[i], placer.update_trace()[i - 1] + 1e-12);
  }
}

TEST(RnnPlacer, RespectsConstraints) {
  Instance inst(8, 4, 100);
  inst.g.task(3).pinned = 2;
  RnnPlacerOptions o;
  o.max_updates = 3;
  RnnPlacer placer(inst.g, inst.n, kLat, o);
  placer.train();
  EXPECT_EQ(placer.best_placement().device_of(3), 2);
}

TEST(GiphTaskEft, DecidesTaskThenEftDevice) {
  Instance inst;
  GiPHOptions o;
  o.use_gpnet = false;
  GiPHAgent agent(o);
  EXPECT_EQ(agent.name(), "GiPH-task-eft");
  std::mt19937_64 rng(7);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  const ActionDecision d = agent.decide(env, rng, false);
  ASSERT_TRUE(d.log_prob);
  const int expected = eft_select_device(inst.g, inst.n, env.placement(), kLat,
                                         env.schedule(), d.action.task);
  EXPECT_EQ(d.action.device, expected);
}

TEST(GiphAgent, VariantNamesAndConstruction) {
  for (auto [kind, name] :
       std::initializer_list<std::pair<GnnKind, std::string>>{
           {GnnKind::kGiPH, "GiPH"},
           {GnnKind::kGiPHNE, "GiPH-NE"},
           {GnnKind::kGraphSAGE, "GraphSAGE-NE"},
           {GnnKind::kNone, "GiPH-NE-Pol"}}) {
    GiPHOptions o;
    o.gnn = kind;
    GiPHAgent agent(o);
    EXPECT_EQ(agent.name(), name);
  }
  GiPHOptions k;
  k.gnn = GnnKind::kGiPHK;
  k.k_steps = 3;
  EXPECT_EQ(GiPHAgent(k).name(), "GiPH-3");
}

TEST(GiphAgent, MasksNoopAndRepeatedTask) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  std::mt19937_64 rng(8);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  for (int i = 0; i < 12; ++i) {
    const ActionDecision d = agent.decide(env, rng, false);
    // Never a no-op...
    EXPECT_NE(env.placement().device_of(d.action.task), d.action.device);
    // ...and never the task moved in the previous step.
    EXPECT_NE(d.action.task, env.last_moved_task());
    env.apply(d.action);
  }
}

TEST(GiphAgent, SaveLoadRoundTripPreservesBehavior) {
  Instance inst;
  GiPHOptions o;
  o.seed = 21;
  GiPHAgent a(o);
  const std::string path = testing::TempDir() + "giph_agent_params.txt";
  a.save(path);
  GiPHOptions o2;
  o2.seed = 22;  // different init
  GiPHAgent b(o2);
  b.load(path);
  std::mt19937_64 r1(5), r2(5);
  PlacementSearchEnv e1(inst.g, inst.n, kLat, makespan_objective(kLat),
                        random_placement(inst.g, inst.n, r1), 1.0);
  std::mt19937_64 r1b(5);
  PlacementSearchEnv e2(inst.g, inst.n, kLat, makespan_objective(kLat),
                        random_placement(inst.g, inst.n, r2), 1.0);
  const ActionDecision d1 = a.decide(e1, r1b, true);
  std::mt19937_64 r2b(5);
  const ActionDecision d2 = b.decide(e2, r2b, true);
  EXPECT_EQ(d1.action.task, d2.action.task);
  EXPECT_EQ(d1.action.device, d2.action.device);
  std::remove(path.c_str());
}

class AllVariantsSmoke : public ::testing::TestWithParam<GnnKind> {};

TEST_P(AllVariantsSmoke, OneTrainingEpisodeRuns) {
  Instance inst;
  GiPHOptions o;
  o.gnn = GetParam();
  GiPHAgent agent(o);
  InstanceSampler sampler = [&](std::mt19937_64&) {
    return ProblemInstance{&inst.g, &inst.n};
  };
  TrainOptions topt;
  topt.episodes = 2;
  EXPECT_NO_THROW(train_reinforce(agent, kLat, sampler, topt));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllVariantsSmoke,
                         ::testing::Values(GnnKind::kGiPH, GnnKind::kGiPHK,
                                           GnnKind::kGiPHNE, GnnKind::kGraphSAGE,
                                           GnnKind::kNone));

}  // namespace
}  // namespace giph
