#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Fixture() {
    g.add_task(Task{.compute = 2.0});
    g.add_task(Task{.compute = 8.0});
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, 1, 10.0);
    g.add_edge(0, 2, 10.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 2.0});
    n.set_symmetric_link(0, 1, 5.0, 0.5);
  }
};

TEST(Metrics, SlrDenominatorUsesMinCostCriticalPath) {
  Fixture f;
  // Min compute costs (on the fastest feasible device, speed 2):
  // t0 = 1, t1 = 4, t2 = 2. Critical path by node cost: 0 -> 1 (cost 5).
  EXPECT_DOUBLE_EQ(slr_denominator(f.g, f.n, kLat), 5.0);
}

TEST(Metrics, SlrDenominatorRespectsConstraints) {
  Fixture f;
  // Pin the heavy task to the slow device: its min cost doubles.
  f.g.task(1).requires_hw = 0b1;
  f.n.device(0).supports_hw = 0b1;
  f.n.device(1).supports_hw = 0;
  EXPECT_DOUBLE_EQ(slr_denominator(f.g, f.n, kLat), 1.0 + 8.0);
}

TEST(Metrics, SlrDivides) {
  EXPECT_DOUBLE_EQ(slr(10.0, 5.0), 2.0);
  EXPECT_THROW(slr(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(slr(10.0, -1.0), std::invalid_argument);
}

TEST(Metrics, TotalCostSumsComputeAndComm) {
  Fixture f;
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);
  // Compute: 2/1 + 8/2 + 4/1 = 10. Comm: edge 0->1 crosses (0.5 + 10/5 =
  // 2.5); edge 0->2 local (0).
  EXPECT_DOUBLE_EQ(total_cost(f.g, f.n, p, kLat), 12.5);
}

TEST(Metrics, MakespanObjectiveMatchesSimulate) {
  Fixture f;
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  const ScheduleObjective obj = makespan_objective(kLat);
  EXPECT_DOUBLE_EQ(evaluate_objective(obj, f.g, f.n, p, kLat),
                   makespan(f.g, f.n, p, kLat));
}

TEST(Metrics, NoisyObjectiveVariesButBounded) {
  Fixture f;
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  std::mt19937_64 rng(11);
  const ScheduleObjective obj = noisy_makespan_objective(kLat, 0.2, rng);
  const double expected = makespan(f.g, f.n, p, kLat);
  const Schedule sched = simulate(f.g, f.n, p, kLat);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 100; ++i) {
    const double m = obj(f.g, f.n, p, sched);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
    EXPECT_GE(m, expected * 0.8 - 1e-9);
    EXPECT_LE(m, expected * 1.2 + 1e-9);
  }
  EXPECT_LT(lo, hi);  // actually stochastic
}

TEST(Metrics, TotalCostObjectiveMatchesTotalCost) {
  Fixture f;
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);
  EXPECT_DOUBLE_EQ(evaluate_objective(total_cost_objective(kLat), f.g, f.n, p, kLat),
                   total_cost(f.g, f.n, p, kLat));
}

}  // namespace
}  // namespace giph
