#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <vector>

#include "core/reinforce.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "serve/serve_faults.hpp"
#include "serve/server.hpp"
#include "sim/metrics.hpp"
#include "util/checked_file.hpp"

namespace giph::serve {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Instance {
  TaskGraph graph;
  DeviceNetwork network;
};

Instance make_instance(std::uint64_t seed, int tasks = 12, int devices = 4) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = tasks;
  NetworkParams np;
  np.num_devices = devices;
  np.num_hw_kinds = gp.num_hw_kinds;
  Instance in;
  in.graph = generate_task_graph(gp, rng);
  in.network = generate_device_network(np, rng);
  ensure_feasible(in.graph, in.network, rng);
  return in;
}

PlacementRequest make_request(const Instance& in, const std::string& id = "r1") {
  PlacementRequest req;
  req.id = id;
  req.graph = in.graph;
  req.network = in.network;
  req.steps = 8;
  req.seed = 21;
  return req;
}

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// --- protocol ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripWithWarmStart) {
  const Instance in = make_instance(1);
  PlacementRequest req = make_request(in);
  req.deadline_ms = 12.5;
  std::mt19937_64 rng(4);
  req.initial = random_placement(in.graph, in.network, rng);

  std::ostringstream os;
  write_request(os, req);
  std::istringstream is(os.str());
  PlacementRequest back;
  ASSERT_TRUE(read_request(is, back));
  EXPECT_EQ(back.id, "r1");
  EXPECT_EQ(back.deadline_ms, 12.5);
  EXPECT_EQ(back.steps, 8);
  EXPECT_EQ(back.seed, 21u);
  ASSERT_TRUE(back.initial.has_value());
  EXPECT_EQ(*back.initial, *req.initial);
  EXPECT_EQ(back.graph.num_tasks(), in.graph.num_tasks());
  EXPECT_EQ(back.network.num_devices(), in.network.num_devices());
}

TEST(ServeProtocol, CleanEofReturnsFalse) {
  std::istringstream empty("   \n  ");
  PlacementRequest req;
  EXPECT_FALSE(read_request(empty, req));
}

TEST(ServeProtocol, MalformedFieldsReportLineAndFieldContext) {
  std::istringstream is("giph-request v1\nid x\ndeadline_ms banana\n");
  PlacementRequest req;
  try {
    read_request(is, req);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), "giph-request");
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("deadline_ms is not a number"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, WarmStartSizeMismatchIsAnError) {
  const Instance in = make_instance(2, /*tasks=*/6);
  PlacementRequest req = make_request(in);
  req.initial = Placement(6);
  for (int v = 0; v < 6; ++v) req.initial->set(v, 0);
  std::ostringstream os;
  write_request(os, req);
  // Corrupt the placement block: claim 5 tasks instead of 6.
  std::string wire = os.str();
  const auto at = wire.find("placement v1\n6");
  ASSERT_NE(at, std::string::npos);
  wire.replace(at, 14, "placement v1\n5");
  std::istringstream is(wire);
  PlacementRequest back;
  EXPECT_THROW(read_request(is, back), ParseError);
}

// --- snapshots --------------------------------------------------------------

TEST(ServeSnapshot, RoundTripPreservesGreedyBehavior) {
  const std::string path = temp_path("giph_snapshot_rt.bin");
  GiPHAgent original(GiPHOptions{.embed_dim = 4, .seed = 17});
  save_policy_snapshot(path, original);

  const auto snap = load_policy_snapshot(path);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->options.embed_dim, 4);
  EXPECT_EQ(snap->source, path);

  // The loaded agent must behave bitwise like the original: greedy search
  // from the same state picks the same placements.
  const Instance in = make_instance(3);
  const DefaultLatencyModel lat;
  std::mt19937_64 prng(9);
  const Placement init = random_placement(in.graph, in.network, prng);

  PlacementSearchEnv e1(in.graph, in.network, lat, makespan_objective(lat), init);
  PlacementSearchEnv e2(in.graph, in.network, lat, makespan_objective(lat), init);
  std::mt19937_64 r1(1), r2(1);
  auto clone = snap->agent->clone_for_rollout();
  ASSERT_NE(clone, nullptr);
  run_search(original, e1, 10, r1, /*greedy=*/true);
  run_search(*clone, e2, 10, r2, /*greedy=*/true);
  EXPECT_EQ(e1.best_placement(), e2.best_placement());
  EXPECT_EQ(e1.best_objective(), e2.best_objective());
  fs::remove(path);
}

TEST(ServeSnapshot, TruncatedSnapshotReportsTornWriteAndKeepsLastGood) {
  const std::string path = temp_path("giph_snapshot_torn.bin");
  GiPHAgent agent(GiPHOptions{.embed_dim = 3, .seed = 5});
  save_policy_snapshot(path, agent);

  SnapshotStore store;
  ASSERT_TRUE(store.load(path));
  const auto good = store.current();
  ASSERT_NE(good, nullptr);

  // Torn write: drop the tail of the file mid-payload.
  const auto size = static_cast<std::size_t>(fs::file_size(path));
  inject_file_fault(path, FileFault::kTruncate, size / 2);
  std::string error;
  EXPECT_FALSE(store.load(path, &error));
  EXPECT_NE(error.find("torn write"), std::string::npos) << error;
  EXPECT_EQ(store.current(), good) << "failed load must keep the last-good snapshot";
  EXPECT_EQ(store.failed_loads(), 1u);
  fs::remove(path);
}

TEST(ServeSnapshot, CorruptPayloadFailsChecksumAndKeepsLastGood) {
  const std::string path = temp_path("giph_snapshot_flip.bin");
  GiPHAgent agent(GiPHOptions{.embed_dim = 3, .seed = 6});
  save_policy_snapshot(path, agent);

  SnapshotStore store;
  ASSERT_TRUE(store.load(path));
  const auto good = store.current();

  const auto size = static_cast<std::size_t>(fs::file_size(path));
  inject_file_fault(path, FileFault::kFlipByte, size - 3);
  std::string error;
  EXPECT_FALSE(store.load(path, &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_EQ(store.current(), good);
  fs::remove(path);
}

TEST(ServeSnapshot, MissingFileFailsWithoutInstallingAnything) {
  SnapshotStore store;
  std::string error;
  EXPECT_FALSE(store.load(temp_path("giph_snapshot_missing.bin"), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store.current(), nullptr);
}

TEST(ServeSnapshot, HotSwapBumpsVersion) {
  const std::string path = temp_path("giph_snapshot_swap.bin");
  GiPHAgent agent(GiPHOptions{.seed = 8});
  save_policy_snapshot(path, agent);
  SnapshotStore store;
  ASSERT_TRUE(store.load(path));
  const std::uint64_t v1 = store.current()->version;
  ASSERT_TRUE(store.load(path));
  EXPECT_GT(store.current()->version, v1);
  EXPECT_EQ(store.swaps(), 2u);
  fs::remove(path);
}

// Torn-write detection for the parameter files behind snapshots: a truncated
// giph-params file must throw, not load garbage.
TEST(ServeSnapshot, TruncatedParamFileThrowsOnLoad) {
  const std::string path = temp_path("giph_params_torn.bin");
  GiPHAgent agent(GiPHOptions{.seed = 4});
  agent.save(path);

  GiPHAgent fresh(GiPHOptions{.seed = 4});
  EXPECT_NO_THROW(fresh.load(path));

  const auto size = static_cast<std::size_t>(fs::file_size(path));
  inject_file_fault(path, FileFault::kTruncate, size / 3);
  EXPECT_THROW(fresh.load(path), std::runtime_error);
  fs::remove(path);
}

// --- server -----------------------------------------------------------------

TEST(ServeServer, DegradedModeServesHeftWithoutSnapshot) {
  SnapshotStore store;  // empty: no snapshot was ever loaded
  PlacementServer server(ServerOptions{}, store);
  const Instance in = make_instance(5);
  const PlacementResponse resp = server.handle(make_request(in));
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_EQ(resp.mode, ServeMode::kHeft);
  EXPECT_EQ(resp.steps, 0);
  ASSERT_TRUE(resp.placement.has_value());
  EXPECT_TRUE(is_feasible(in.graph, in.network, *resp.placement));
  EXPECT_GT(resp.makespan, 0.0);
  EXPECT_EQ(server.stats().served_heft, 1u);
}

TEST(ServeServer, PolicyModeIsDeterministicPerSeed) {
  const std::string path = temp_path("giph_serve_policy.bin");
  GiPHAgent agent(GiPHOptions{.seed = 12});
  save_policy_snapshot(path, agent);
  SnapshotStore store;
  ASSERT_TRUE(store.load(path));

  PlacementServer server(ServerOptions{}, store);
  const Instance in = make_instance(6);
  const PlacementResponse r1 = server.handle(make_request(in));
  const PlacementResponse r2 = server.handle(make_request(in));
  EXPECT_EQ(r1.status, ResponseStatus::kOk);
  EXPECT_EQ(r1.mode, ServeMode::kPolicy);
  EXPECT_EQ(r1.steps, 8);
  ASSERT_TRUE(r1.placement.has_value());
  ASSERT_TRUE(r2.placement.has_value());
  EXPECT_EQ(*r1.placement, *r2.placement);  // same seed, same budget: bitwise
  EXPECT_EQ(r1.makespan, r2.makespan);
  fs::remove(path);
}

TEST(ServeServer, EmptyGraphIsServedTrivially) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  PlacementRequest req;
  req.id = "empty";
  const PlacementResponse resp = server.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_EQ(resp.makespan, 0.0);
  ASSERT_TRUE(resp.placement.has_value());
  EXPECT_EQ(resp.placement->num_tasks(), 0);
}

TEST(ServeServer, InfeasibleInstanceIsAnErrorResponseNotACrash) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  PlacementRequest req;
  req.id = "bad";
  req.graph.add_task(Task{.compute = 1.0, .requires_hw = 0b1});
  req.network.add_device(Device{.speed = 1.0, .supports_hw = 0});  // cannot host
  const PlacementResponse resp = server.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kError);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_FALSE(resp.placement.has_value());
  EXPECT_EQ(server.stats().errors, 1u);
}

TEST(ServeServer, InfeasibleWarmStartIsRejectedExplicitly) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  const Instance in = make_instance(7);
  PlacementRequest req = make_request(in);
  req.initial = Placement(in.graph.num_tasks());  // all tasks unplaced (-1)
  const PlacementResponse resp = server.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kError);
  EXPECT_NE(resp.error.find("initial placement"), std::string::npos) << resp.error;
}

TEST(ServeServer, PreExpiredDeadlineReturnsWarmStartImmediately) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  const Instance in = make_instance(8);
  PlacementRequest req = make_request(in);
  req.deadline_ms = 1e-9;  // expires before any budget is left
  const PlacementResponse resp = server.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_TRUE(resp.deadline_exceeded);
  EXPECT_EQ(resp.steps, 0);
  ASSERT_TRUE(resp.placement.has_value());
  EXPECT_TRUE(is_feasible(in.graph, in.network, *resp.placement));
}

// Deadline storm: every request carries a deadline far below its step budget.
// Each must come back promptly (anytime search), flagged, and still carrying a
// valid best-so-far placement.
TEST(ServeServer, DeadlineStormReturnsBestSoFarPromptly) {
  const std::string path = temp_path("giph_serve_storm.bin");
  GiPHAgent agent(GiPHOptions{.seed = 13});
  save_policy_snapshot(path, agent);
  SnapshotStore store;
  ASSERT_TRUE(store.load(path));

  ServerOptions opt;
  opt.max_steps = 1000000;
  PlacementServer server(opt, store);
  const Instance in = make_instance(9, /*tasks=*/20);
  for (int i = 0; i < 5; ++i) {
    PlacementRequest req = make_request(in, "storm-" + std::to_string(i));
    req.steps = 1000000;     // would run for minutes...
    req.deadline_ms = 50.0;  // ...but must return within the deadline's order
    const Clock::time_point t0 = Clock::now();
    const PlacementResponse resp = server.handle(req);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    EXPECT_EQ(resp.status, ResponseStatus::kOk) << resp.error;
    EXPECT_TRUE(resp.deadline_exceeded);
    EXPECT_LT(resp.steps, 1000000);
    ASSERT_TRUE(resp.placement.has_value());
    EXPECT_TRUE(is_feasible(in.graph, in.network, *resp.placement));
    // Generous bound (sanitizer builds are slow): the point is that an
    // anytime search returns on the deadline's scale, not the budget's.
    EXPECT_LT(elapsed_ms, 5000.0);
  }
  EXPECT_EQ(server.stats().deadline_exceeded, 5u);
  fs::remove(path);
}

TEST(ServeServer, PoisonRequestBecomesErrorResponseAndServingContinues) {
  SnapshotStore store;
  FaultInjector faults;
  faults.poison_request("poison", "injected fault: worker exploded");
  PlacementServer server(ServerOptions{}, store, faults.hooks());
  const Instance in = make_instance(10);

  const PlacementResponse bad = server.handle(make_request(in, "poison"));
  EXPECT_EQ(bad.status, ResponseStatus::kError);
  EXPECT_NE(bad.error.find("worker exploded"), std::string::npos);

  const PlacementResponse good = server.handle(make_request(in, "fine"));
  EXPECT_EQ(good.status, ResponseStatus::kOk);
}

// Overload: a stalled worker pins the pool while submits keep arriving. With
// queue capacity Q and one request in flight, exactly Q - 1 more are admitted
// and the rest shed — an exact, machine-independent count.
TEST(ServeServer, OverloadShedsDeterministicallyAtCapacity) {
  SnapshotStore store;
  FaultInjector faults;
  faults.hold_request("stall");
  ServerOptions opt;
  opt.workers = 2;  // one background worker to park on the stall
  opt.queue_capacity = 4;
  PlacementServer server(opt, store, faults.hooks());
  const Instance in = make_instance(11, /*tasks=*/6);

  std::mutex mu;
  std::vector<PlacementResponse> responses;
  const auto sink = [&](const PlacementResponse& r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(r);
  };

  ASSERT_TRUE(server.submit(make_request(in, "stall"), sink));
  faults.wait_for_awaiting(1);  // the worker is parked inside the stall

  int admitted = 0, shed = 0;
  for (int i = 0; i < 8; ++i) {
    if (server.submit(make_request(in, "q-" + std::to_string(i)), sink)) {
      ++admitted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 3);  // capacity 4 minus the stalled in-flight request
  EXPECT_EQ(shed, 5);

  faults.release_all();
  server.stop_and_drain();
  EXPECT_EQ(responses.size(), 9u);  // 4 ok + 5 shed, each delivered once

  int ok = 0, shed_responses = 0;
  for (const auto& r : responses) {
    if (r.status == ResponseStatus::kOk) ++ok;
    if (r.status == ResponseStatus::kShed) {
      ++shed_responses;
      EXPECT_NE(r.error.find("queue at capacity"), std::string::npos);
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(shed_responses, 5);
  EXPECT_EQ(server.stats().shed, 5u);
}

TEST(ServeServer, SubmitAfterDrainDeliversErrorResponse) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  server.stop_and_drain();
  const Instance in = make_instance(12);
  PlacementResponse got;
  EXPECT_FALSE(server.submit(make_request(in), [&](const PlacementResponse& r) {
    got = r;
  }));
  EXPECT_EQ(got.status, ResponseStatus::kError);
  EXPECT_NE(got.error.find("draining"), std::string::npos);
}

// --- stream loop ------------------------------------------------------------

TEST(ServeStream, PoisonFrameDoesNotKillTheStream) {
  SnapshotStore store;
  PlacementServer server(ServerOptions{}, store);
  const Instance in = make_instance(13);

  std::ostringstream feed;
  write_request(feed, make_request(in, "a"));
  feed << "giph-request v1\nid broken\ndeadline_ms nope\n";  // poison frame
  write_request(feed, make_request(in, "b"));

  std::istringstream is(feed.str());
  std::ostringstream os;
  const std::uint64_t served = serve_stream(is, os, server);
  EXPECT_EQ(served, 2u);

  std::istringstream rs(os.str());
  int ok = 0, errors = 0;
  PlacementResponse resp;
  while (read_response(rs, resp)) {
    if (resp.status == ResponseStatus::kOk) ++ok;
    if (resp.status == ResponseStatus::kError) {
      ++errors;
      EXPECT_NE(resp.error.find("deadline_ms"), std::string::npos) << resp.error;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(errors, 1);
}

TEST(ServeFaults, FileFaultOffsetOutOfRangeThrows) {
  const std::string path = temp_path("giph_fault_range.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "abc";
  }
  EXPECT_THROW(inject_file_fault(path, FileFault::kTruncate, 99), std::runtime_error);
  fs::remove(path);
}

}  // namespace
}  // namespace giph::serve
