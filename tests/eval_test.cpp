#include <gtest/gtest.h>

#include "baselines/random_policies.hpp"
#include "eval/ascii_chart.hpp"
#include "eval/evaluation.hpp"
#include "gen/dataset.hpp"

namespace giph::eval {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  Dataset ds;
  std::vector<Case> cases;
  Fixture() {
    std::mt19937_64 rng(3);
    TaskGraphParams gp;
    gp.num_tasks = 8;
    NetworkParams np;
    np.num_devices = 4;
    ds = generate_dataset({gp}, {np}, 4, 2, rng);
    for (const TaskGraph& g : ds.graphs) {
      cases.push_back(Case{&g, &ds.networks[0]});
    }
  }
};

TEST(Evaluation, CurveFractionsSpanUnitInterval) {
  const auto f = curve_fractions(4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f[0], 0.25);
  EXPECT_DOUBLE_EQ(f[3], 1.0);
}

TEST(Evaluation, PolicyCurveIsMonotoneAndNamed) {
  Fixture f;
  RandomWalkPolicy policy;
  const Curve c = policy_curve(policy, f.cases, kLat, 0.0, 7);
  EXPECT_EQ(c.name, "RandomWalk");
  ASSERT_EQ(c.values.size(), 9u);
  for (std::size_t i = 1; i < c.values.size(); ++i) {
    EXPECT_LE(c.values[i], c.values[i - 1] + 1e-12);  // best-so-far averages
  }
}

TEST(Evaluation, SameSeedSameInitialStatesAcrossPolicies) {
  Fixture f;
  RandomWalkPolicy a;
  RandomSamplingPolicy b;
  // The first sampled point with 1 curve point is the end; compare finals
  // instead: identical per-case rng means policy differences are the only
  // variation, and re-running the same policy is fully reproducible.
  const auto fa1 = policy_finals(a, f.cases, kLat, 0.0, 7);
  const auto fa2 = policy_finals(a, f.cases, kLat, 0.0, 7);
  EXPECT_EQ(fa1, fa2);
  const auto fb = policy_finals(b, f.cases, kLat, 0.0, 7);
  EXPECT_EQ(fb.size(), fa1.size());
}

TEST(Evaluation, HeftFinalsBeatRandomWalkOnAverage) {
  Fixture f;
  RandomWalkPolicy walk;
  const double walk_mean = mean(policy_finals(walk, f.cases, kLat, 0.0, 7));
  const double heft_mean = mean(heft_finals(f.cases, kLat));
  EXPECT_LT(heft_mean, walk_mean);
}

TEST(Stats, MeanStdPercentile) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stdev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stdev({1.0}), 0.0);
}

TEST(Stats, BootstrapCiCoversTheMean) {
  std::vector<double> xs;
  std::mt19937_64 rng(5);
  std::normal_distribution<double> d(10.0, 2.0);
  for (int i = 0; i < 200; ++i) xs.push_back(d(rng));
  const Interval ci = bootstrap_mean_ci(xs, 0.95, 500, 9);
  EXPECT_LT(ci.lo, mean(xs));
  EXPECT_GT(ci.hi, mean(xs));
  EXPECT_LT(ci.hi - ci.lo, 2.0);  // tight for n = 200, sigma = 2
}

TEST(Stats, WinRateCountsCorrectly) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 2.0, 2.0, 2.0};
  const WinRate w = win_rate(a, b);
  EXPECT_DOUBLE_EQ(w.better, 0.25);
  EXPECT_DOUBLE_EQ(w.equal, 0.25);
  EXPECT_DOUBLE_EQ(w.worse, 0.5);
  EXPECT_DOUBLE_EQ(win_rate({}, {}).better, 0.0);
}

TEST(AsciiChart, RendersLegendAndBounds) {
  Series a{"up", {0.0, 1.0, 2.0}, {}};
  Series b{"down", {2.0, 1.0, 0.0}, {}};
  const std::string chart = ascii_chart({a, b}, {.width = 20, .height = 6});
  EXPECT_NE(chart.find("a=up"), std::string::npos);
  EXPECT_NE(chart.find("b=down"), std::string::npos);
  EXPECT_NE(chart.find("2"), std::string::npos);  // y max
  EXPECT_NE(chart.find('a'), std::string::npos);
  EXPECT_NE(chart.find('b'), std::string::npos);
}

TEST(AsciiChart, FlatSeriesAndSinglePointDoNotCrash) {
  EXPECT_NO_THROW(ascii_chart({Series{"flat", {1.0, 1.0, 1.0}, {}}}));
  EXPECT_NO_THROW(ascii_chart({Series{"dot", {5.0}, {}}}));
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(ascii_chart({}), std::invalid_argument);
  EXPECT_THROW(ascii_chart({Series{"e", {}, {}}}), std::invalid_argument);
  EXPECT_THROW(ascii_chart({Series{"m", {1.0, 2.0}, {1.0}}}), std::invalid_argument);
}

}  // namespace
}  // namespace giph::eval
