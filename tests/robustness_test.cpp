#include "eval/robustness_eval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/random_policies.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "sim/faults.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph g;
  DeviceNetwork n;
};

Instance make_instance(unsigned seed, int tasks = 12, int devices = 5) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = tasks;
  NetworkParams np;
  np.num_devices = devices;
  Instance inst{generate_task_graph(gp, rng), generate_device_network(np, rng)};
  ensure_feasible(inst.g, inst.n, rng);
  return inst;
}

TEST(Robustness, HeftRowAlwaysPresentAndDeterministic) {
  const Instance inst = make_instance(3);
  std::mt19937_64 plan_rng(21);
  FaultPlanParams fp;
  fp.horizon = 50.0;
  fp.slowdowns = 1;
  fp.crashes = 0;
  const FaultPlan plan = generate_fault_plan(inst.n, fp, plan_rng);

  RandomTaskEftPolicy policy;
  eval::RobustnessOptions opt;
  opt.seed = 5;
  const eval::RobustnessReport a = eval::evaluate_robustness(
      inst.g, inst.n, kLat, plan, {{policy.name(), &policy}}, opt);
  const eval::RobustnessReport b = eval::evaluate_robustness(
      inst.g, inst.n, kLat, plan, {{policy.name(), &policy}}, opt);

  ASSERT_EQ(a.rows.size(), 2u);  // the policy + the implicit HEFT row
  EXPECT_EQ(a.rows.back().placer, "HEFT");
  // Bitwise-deterministic across calls for a fixed seed.
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].placer, b.rows[i].placer);
    EXPECT_EQ(a.rows[i].recoverable, b.rows[i].recoverable);
    EXPECT_EQ(a.rows[i].fault_free_makespan, b.rows[i].fault_free_makespan);
    EXPECT_EQ(a.rows[i].faulted_makespan, b.rows[i].faulted_makespan);
    EXPECT_EQ(a.rows[i].recovery_makespan, b.rows[i].recovery_makespan);
    EXPECT_EQ(a.rows[i].degradation_ratio, b.rows[i].degradation_ratio);
    EXPECT_EQ(a.rows[i].tasks_moved, b.rows[i].tasks_moved);
    EXPECT_EQ(a.rows[i].repair_steps, b.rows[i].repair_steps);
  }
}

TEST(Robustness, HeftRepairCostIsFullReschedule) {
  const Instance inst = make_instance(4, 10, 4);
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 1.0,
                                   .device = 0});

  const eval::RobustnessReport r =
      eval::evaluate_robustness(inst.g, inst.n, kLat, plan, {}, {});
  ASSERT_EQ(r.rows.size(), 1u);
  const eval::RepairOutcome& heft = r.rows[0];
  EXPECT_EQ(heft.placer, "HEFT");
  ASSERT_TRUE(heft.recoverable);
  EXPECT_EQ(heft.repair_steps, inst.g.num_tasks());
  EXPECT_DOUBLE_EQ(heft.repair_fraction, 1.0);
  EXPECT_GT(heft.fault_free_makespan, 0.0);
  EXPECT_GT(heft.recovery_makespan, 0.0);
  EXPECT_DOUBLE_EQ(heft.degradation_ratio,
                   heft.recovery_makespan / heft.fault_free_makespan);
}

TEST(Robustness, EmptyPlanIsZeroDamage) {
  const Instance inst = make_instance(5);
  RandomTaskEftPolicy policy;
  const eval::RobustnessReport r = eval::evaluate_robustness(
      inst.g, inst.n, kLat, FaultPlan{}, {{policy.name(), &policy}}, {});
  for (const eval::RepairOutcome& row : r.rows) {
    ASSERT_TRUE(row.recoverable) << row.placer;
    // No fault fired: the replayed placement completes with its fault-free
    // makespan and the repair cannot do worse.
    EXPECT_EQ(row.faulted_makespan, row.fault_free_makespan) << row.placer;
    EXPECT_EQ(row.stranded_tasks, 0) << row.placer;
    EXPECT_LE(row.recovery_makespan, row.fault_free_makespan + 1e-12)
        << row.placer;
  }
}

TEST(Robustness, PinnedTaskOnCrashedDeviceIsUnrecoverable) {
  // Two devices; task 1 pinned to device 1, which crashes.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0, .pinned = 1});
  g.add_edge(0, 1, 1.0);
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  n.add_device(Device{.speed = 1.0});
  n.set_symmetric_link(0, 1, 1.0, 0.0);

  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 0.0,
                                   .device = 1});
  const eval::RobustnessReport r =
      eval::evaluate_robustness(g, n, kLat, plan, {}, {});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_FALSE(r.rows[0].recoverable);
  EXPECT_TRUE(std::isinf(r.rows[0].recovery_makespan));
  EXPECT_FALSE(format_report(r).empty());
}

TEST(Robustness, CrashForcesTasksOffFailedDevice) {
  const Instance inst = make_instance(6, 14, 5);
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 0.0,
                                   .device = 2});

  RandomTaskEftPolicy policy;
  eval::RobustnessOptions opt;
  opt.seed = 9;
  const eval::RobustnessReport r = eval::evaluate_robustness(
      inst.g, inst.n, kLat, plan, {{policy.name(), &policy}}, opt);
  for (const eval::RepairOutcome& row : r.rows) {
    ASSERT_TRUE(row.recoverable) << row.placer;
    // The recovered placement lives on the post-fault network, so the
    // recovery makespan is finite and positive.
    EXPECT_TRUE(std::isfinite(row.recovery_makespan)) << row.placer;
    EXPECT_GT(row.recovery_makespan, 0.0) << row.placer;
    EXPECT_GE(row.tasks_moved, 0) << row.placer;
  }
}

}  // namespace
}  // namespace giph
