#include <gtest/gtest.h>

#include "casestudy/device_profiles.hpp"
#include "casestudy/mobility.hpp"
#include "casestudy/sensor_fusion.hpp"
#include "heft/heft.hpp"

namespace giph::casestudy {
namespace {

TEST(DeviceProfiles, Table1ValuesEmbedded) {
  EXPECT_EQ(measured_runtime(FusionTask::kCamera, DeviceType::kTypeA).mean_ms, 53.0);
  EXPECT_EQ(measured_runtime(FusionTask::kCamera, DeviceType::kTypeC).mean_ms, 9.0);
  EXPECT_EQ(measured_runtime(FusionTask::kRsuFusion, DeviceType::kTypeB).mean_ms, 250.0);
  EXPECT_EQ(measured_runtime(FusionTask::kLidar, DeviceType::kTypeB).std_ms, 3.0);
}

TEST(DeviceProfiles, Table2ValuesEmbedded) {
  const RelocationProfile cam = relocation_profile(FusionTask::kCamera);
  EXPECT_EQ(cam.migration_bytes, 11494.0);
  EXPECT_EQ(cam.static_init_kb, 72173.525);
  EXPECT_EQ(cam.startup_ms_type_a, 4273.73);
  EXPECT_EQ(cam.startup_ms_type_c, 794.66);
}

TEST(DeviceProfiles, StartupInterpolatesTypeB) {
  for (int t = 0; t < kNumFusionTasks; ++t) {
    const FusionTask task = static_cast<FusionTask>(t);
    const double a = startup_ms(task, DeviceType::kTypeA);
    const double b = startup_ms(task, DeviceType::kTypeB);
    const double c = startup_ms(task, DeviceType::kTypeC);
    EXPECT_GE(b, std::min(a, c));
    EXPECT_LE(b, std::max(a, c));
  }
}

TEST(DeviceProfiles, RelocationCostDecomposition) {
  const double bw = 1000.0;  // bytes/ms
  const RelocationProfile lidar = relocation_profile(FusionTask::kLidar);
  const double expected =
      (lidar.migration_bytes + lidar.static_init_kb * 1024.0) / bw +
      lidar.startup_ms_type_c;
  EXPECT_DOUBLE_EQ(relocation_cost_ms(FusionTask::kLidar, DeviceType::kTypeC, bw),
                   expected);
  EXPECT_THROW(relocation_cost_ms(FusionTask::kLidar, DeviceType::kTypeC, 0.0),
               std::invalid_argument);
}

TEST(LatencyFit, ReproducesTable1Shape) {
  const LatencyFit fit = fit_latency_model();
  // Type C is by far the fastest: smallest time-per-unit.
  EXPECT_LT(fit.time_per_unit[2], fit.time_per_unit[0]);
  EXPECT_LT(fit.time_per_unit[2], fit.time_per_unit[1]);
  // RSU fusion is the heaviest task.
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(fit.task_compute[i], fit.task_compute[3]);
  }
  // The fit reproduces the big cells reasonably (RMS residual bounded; the
  // affine model cannot be exact for Table 1).
  EXPECT_LT(fit.rms_residual_ms, 60.0);
  // Scale normalization: mean T == 1.
  EXPECT_NEAR((fit.time_per_unit[0] + fit.time_per_unit[1] + fit.time_per_unit[2]) / 3.0,
              1.0, 1e-9);
  // Predictions are positive everywhere.
  for (int i = 0; i < kNumFusionTasks; ++i) {
    for (int j = 0; j < kNumDeviceTypes; ++j) {
      EXPECT_GT(fit.predict_ms(static_cast<FusionTask>(i), static_cast<DeviceType>(j)),
                0.0);
    }
  }
}

TEST(DeviceProfiles, PowerOrdering) {
  EXPECT_LT(device_power_w(DeviceType::kTypeA), device_power_w(DeviceType::kTypeB));
  EXPECT_LT(device_power_w(DeviceType::kTypeB), device_power_w(DeviceType::kTypeC));
}

TEST(Mobility, VehiclesStayOnGridAndMove) {
  MobilityParams p;
  p.num_vehicles = 6;
  p.seed = 4;
  GridMobility m(p);
  const auto before = m.positions();
  m.advance(30.0);
  const auto after = m.positions();
  const double max_x = (p.grid_cols - 1) * p.block_m;
  const double max_y = (p.grid_rows - 1) * p.block_m;
  bool moved = false;
  for (int v = 0; v < p.num_vehicles; ++v) {
    EXPECT_GE(after[v].x, -1e-9);
    EXPECT_LE(after[v].x, max_x + 1e-9);
    EXPECT_GE(after[v].y, -1e-9);
    EXPECT_LE(after[v].y, max_y + 1e-9);
    if (distance_m(before[v], after[v]) > 1.0) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Mobility, SpeedBoundsDisplacement) {
  MobilityParams p;
  p.num_vehicles = 8;
  p.speed_mps = 10.0;
  GridMobility m(p);
  const auto before = m.positions();
  m.advance(5.0);
  const auto after = m.positions();
  for (int v = 0; v < p.num_vehicles; ++v) {
    // Manhattan distance travelled is at most speed * time.
    const double manhattan = std::abs(after[v].x - before[v].x) +
                             std::abs(after[v].y - before[v].y);
    EXPECT_LE(manhattan, 50.0 + 1e-6);
  }
}

TEST(Mobility, DeterministicGivenSeed) {
  MobilityParams p;
  p.seed = 11;
  GridMobility a(p), b(p);
  a.advance(17.0);
  b.advance(17.0);
  for (int v = 0; v < p.num_vehicles; ++v) {
    EXPECT_EQ(a.positions()[v].x, b.positions()[v].x);
    EXPECT_EQ(a.positions()[v].y, b.positions()[v].y);
  }
}

TEST(Mobility, IntersectionIndexing) {
  MobilityParams p;
  GridMobility m(p);
  EXPECT_EQ(m.num_intersections(), 9);
  EXPECT_EQ(m.intersection(4).x, m.intersection(1, 1).x);
  EXPECT_THROW(m.intersection(3, 0), std::out_of_range);
}

SensorFusionCase first_case(SensorFusionWorld& world) {
  for (int i = 0; i < 50; ++i) {
    auto c = world.next_case();
    if (c) return std::move(*c);
  }
  throw std::runtime_error("no case produced in 50 snapshots");
}

TEST(SensorFusionWorld, ProducesValidCases) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  EXPECT_GT(c.graph.num_tasks(), 0);
  EXPECT_TRUE(c.graph.is_dag());
  EXPECT_EQ(static_cast<int>(c.task_kind.size()), c.graph.num_tasks());
  EXPECT_EQ(static_cast<int>(c.device_type.size()), c.network.num_devices());
  // Every task has a feasible device.
  EXPECT_NO_THROW(feasible_sets(c.graph, c.network));
}

TEST(SensorFusionWorld, SourcesArePinnedDetectionNeedsGpu) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  int sources = 0, detects = 0;
  for (int v = 0; v < c.graph.num_tasks(); ++v) {
    if (c.task_kind[v] < 0) {
      EXPECT_GE(c.graph.task(v).pinned, 0);
      ++sources;
    } else if (c.task_kind[v] == static_cast<int>(FusionTask::kCamera) ||
               c.task_kind[v] == static_cast<int>(FusionTask::kLidar)) {
      EXPECT_EQ(c.graph.task(v).requires_hw & kGpuBit, kGpuBit);
      ++detects;
    }
  }
  EXPECT_GT(sources, 0);
  EXPECT_GT(detects, 0);
}

TEST(SensorFusionWorld, LatencyModelMatchesTable1OnNativeDevices) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  const DefaultLatencyModel lat;
  const LatencyFit& fit = world.latency_fit();
  for (int v = 0; v < c.graph.num_tasks(); ++v) {
    if (c.task_kind[v] < 0) continue;
    for (int d = 0; d < c.network.num_devices(); ++d) {
      if (!device_feasible(c.graph, c.network, v, d)) continue;
      const double w = lat.compute_time(c.graph, c.network, v, d);
      const double expected = fit.predict_ms(static_cast<FusionTask>(c.task_kind[v]),
                                             c.device_type[d]);
      EXPECT_NEAR(w, expected, 1e-9);
    }
  }
}

TEST(SensorFusionWorld, CaseIsSchedulable) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  const DefaultLatencyModel lat;
  std::mt19937_64 rng(3);
  const Placement p = random_placement(c.graph, c.network, rng);
  EXPECT_GT(makespan(c.graph, c.network, p, lat), 0.0);
  // HEFT also works on the case.
  const HeftResult h = heft_schedule(c.graph, c.network, lat);
  EXPECT_TRUE(is_feasible(c.graph, c.network, h.placement));
}

TEST(Relocation, NoMoveNoCost) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  std::mt19937_64 rng(4);
  const Placement p = random_placement(c.graph, c.network, rng);
  EXPECT_DOUBLE_EQ(total_relocation_cost_ms(c, p, p), 0.0);
}

TEST(Relocation, MovingAddsPositiveCost) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  std::mt19937_64 rng(5);
  const Placement p = random_placement(c.graph, c.network, rng);
  Placement q = p;
  // Move the first non-source task somewhere else.
  for (int v = 0; v < c.graph.num_tasks(); ++v) {
    if (c.task_kind[v] < 0) continue;
    for (int d : feasible_devices(c.graph, c.network, v)) {
      if (d != p.device_of(v)) {
        q.set(v, d);
        break;
      }
    }
    if (q.device_of(v) != p.device_of(v)) break;
  }
  EXPECT_GT(total_relocation_cost_ms(c, p, q), 0.0);
}

TEST(Relocation, AmortizedObjectivePenalizesMovesLessAtHighFrequency) {
  SensorFusionWorld world(CaseStudyParams{});
  SensorFusionCase c = first_case(world);
  const DefaultLatencyModel lat;
  std::mt19937_64 rng(6);
  const Placement ref = random_placement(c.graph, c.network, rng);
  Placement moved = random_placement(c.graph, c.network, rng);

  c.pipeline_hz = 1.0;
  const double low = evaluate_objective(relocation_aware_objective(c, lat, ref, 10.0),
                                        c.graph, c.network, moved, lat);
  c.pipeline_hz = 100.0;
  const double high = evaluate_objective(relocation_aware_objective(c, lat, ref, 10.0),
                                         c.graph, c.network, moved, lat);
  const double base = makespan(c.graph, c.network, moved, lat);
  EXPECT_GT(low, base);
  EXPECT_GT(high, base);
  EXPECT_LT(high, low);  // relocation amortizes better at high frequency
  // Reference placement itself has no relocation penalty.
  EXPECT_DOUBLE_EQ(evaluate_objective(relocation_aware_objective(c, lat, ref, 10.0),
                                      c.graph, c.network, ref, lat),
                   makespan(c.graph, c.network, ref, lat));
}

TEST(Energy, CheaperOnLowPowerDevices) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  const DefaultLatencyModel lat;
  const ScheduleObjective energy = energy_objective(c, lat);
  std::mt19937_64 rng(7);
  const Placement p = random_placement(c.graph, c.network, rng);
  const double e = evaluate_objective(energy, c.graph, c.network, p, lat);
  EXPECT_GT(e, 0.0);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(Energy, CoLocationRemovesCommEnergy) {
  // Build a tiny synthetic case exercising the energy objective directly.
  SensorFusionCase c;
  c.network.add_device(Device{.speed = 1.0});
  c.network.add_device(Device{.speed = 1.0});
  c.network.set_symmetric_link(0, 1, 10.0, 1.0);
  c.device_type = {DeviceType::kTypeA, DeviceType::kTypeA};
  c.graph.add_task(Task{.compute = 1.0});
  c.graph.add_task(Task{.compute = 1.0});
  c.graph.add_edge(0, 1, 100.0);
  c.task_kind = {0, 0};
  const DefaultLatencyModel lat;
  const ScheduleObjective energy = energy_objective(c, lat);
  Placement together(2), apart(2);
  together.set(0, 0);
  together.set(1, 0);
  apart.set(0, 0);
  apart.set(1, 1);
  EXPECT_LT(evaluate_objective(energy, c.graph, c.network, together, lat),
            evaluate_objective(energy, c.graph, c.network, apart, lat));
}

TEST(SensorFusionWorld, RemoteInfrastructureIsExcluded) {
  // Two far-apart active regions never both fit in one device_radius, so the
  // device set must be smaller than the full infrastructure inventory.
  CaseStudyParams p;
  p.mobility.grid_rows = 4;
  p.mobility.grid_cols = 4;
  p.mobility.block_m = 900.0;  // intersections far apart
  p.mobility.num_vehicles = 2;
  p.device_radius_m = 500.0;
  p.seed = 3;
  SensorFusionWorld world(p);
  const int full_infra = 16 + p.edge_devices_a + p.edge_devices_b + p.edge_devices_c;
  bool saw_filtered = false;
  for (int s = 0; s < 30; ++s) {
    auto c = world.next_case();
    if (!c) continue;
    if (c->network.num_devices() < full_infra) saw_filtered = true;
  }
  EXPECT_TRUE(saw_filtered);
}

TEST(SensorFusionWorld, CisCamerasAreWiredToTheirRsu) {
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  // Find a CIS device (supports nothing) and its RSU (type C, same corner);
  // the wired link must be much faster than the RF floor.
  const CaseStudyParams& p = world.params();
  for (int k = 0; k < c.network.num_devices(); ++k) {
    if (c.network.device(k).supports_hw != 0) continue;  // CIS
    double best_bw = 0.0;
    for (int l = 0; l < c.network.num_devices(); ++l) {
      if (l != k) best_bw = std::max(best_bw, c.network.bandwidth(k, l));
    }
    EXPECT_GE(best_bw, p.wired_bw_mbps * kMbpsToBytesPerMs - 1e-9);
  }
}

TEST(SensorFusionWorld, BandwidthDecaysWithDistanceOnRfLinks) {
  // Two mobile (non-wired) devices: their link follows the exponential decay.
  SensorFusionWorld world(CaseStudyParams{});
  const SensorFusionCase c = first_case(world);
  const CaseStudyParams& p = world.params();
  const double max_rf = p.bw0_mbps * kMbpsToBytesPerMs;
  int rf_links = 0;
  for (int k = 0; k < c.network.num_devices(); ++k) {
    for (int l = k + 1; l < c.network.num_devices(); ++l) {
      const double bw = c.network.bandwidth(k, l);
      if (bw <= max_rf + 1e-9) {
        ++rf_links;
        EXPECT_GE(bw, p.min_bw_mbps * kMbpsToBytesPerMs - 1e-9);
      }
    }
  }
  EXPECT_GT(rf_links, 0);
}

TEST(PaperScaleParams, MatchesPaperCounts) {
  const CaseStudyParams p = paper_scale_params();
  EXPECT_EQ(p.mobility.grid_rows * p.mobility.grid_cols, 36);  // 36 RSUs
  EXPECT_EQ(p.edge_devices_a + p.edge_devices_b + p.edge_devices_c, 40);
  EXPECT_EQ(p.cis_per_rsu, 4);
}

}  // namespace
}  // namespace giph::casestudy
