#include "nn/autograd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>

namespace giph::nn {
namespace {

Matrix random_matrix(int r, int c, std::mt19937_64& rng, double lo = -1.0,
                     double hi = 1.0) {
  std::uniform_real_distribution<double> d(lo, hi);
  Matrix m(r, c);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m(i, j) = d(rng);
  }
  return m;
}

/// Central-difference gradient check: `build` constructs a scalar graph from
/// fresh parameter leaves each call. Verifies every analytic parameter
/// gradient against the numeric estimate.
void grad_check(const std::function<Var(const std::vector<Var>&)>& build,
                std::vector<Matrix> inits, double tol = 1e-6) {
  auto eval = [&](const std::vector<Matrix>& values) {
    std::vector<Var> params;
    params.reserve(values.size());
    for (const Matrix& v : values) params.push_back(parameter(v));
    return build(params);
  };

  // Analytic gradients.
  std::vector<Var> params;
  for (const Matrix& v : inits) params.push_back(parameter(v));
  const Var out = build(params);
  ASSERT_EQ(out->value.rows(), 1);
  ASSERT_EQ(out->value.cols(), 1);
  backward(out);

  const double h = 1e-6;
  for (std::size_t p = 0; p < inits.size(); ++p) {
    for (int i = 0; i < inits[p].rows(); ++i) {
      for (int j = 0; j < inits[p].cols(); ++j) {
        std::vector<Matrix> plus = inits, minus = inits;
        plus[p](i, j) += h;
        minus[p](i, j) -= h;
        const double numeric =
            (eval(plus)->value(0, 0) - eval(minus)->value(0, 0)) / (2 * h);
        const double analytic =
            params[p]->grad.size() > 0 ? params[p]->grad(i, j) : 0.0;
        EXPECT_NEAR(analytic, numeric, tol)
            << "param " << p << " element (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Autograd, MatmulGradient) {
  std::mt19937_64 rng(1);
  grad_check([](const std::vector<Var>& p) { return sum_all(matmul(p[0], p[1])); },
             {random_matrix(2, 3, rng), random_matrix(3, 4, rng)});
}

TEST(Autograd, AddSubMulGradient) {
  std::mt19937_64 rng(2);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(mul(add(p[0], p[1]), sub(p[0], p[2])));
      },
      {random_matrix(2, 2, rng), random_matrix(2, 2, rng), random_matrix(2, 2, rng)});
}

TEST(Autograd, AddRowvecGradient) {
  std::mt19937_64 rng(3);
  grad_check([](const std::vector<Var>& p) { return sum_all(add_rowvec(p[0], p[1])); },
             {random_matrix(3, 2, rng), random_matrix(1, 2, rng)});
}

TEST(Autograd, ScaleGradient) {
  std::mt19937_64 rng(4);
  grad_check([](const std::vector<Var>& p) { return sum_all(scale(p[0], -2.5)); },
             {random_matrix(2, 3, rng)});
}

TEST(Autograd, ReluGradient) {
  std::mt19937_64 rng(5);
  // Keep values away from the kink at 0.
  Matrix m = random_matrix(2, 3, rng);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (std::abs(m(i, j)) < 0.1) m(i, j) = 0.5;
    }
  }
  grad_check([](const std::vector<Var>& p) { return sum_all(relu(p[0])); }, {m});
}

TEST(Autograd, TanhSigmoidGradient) {
  std::mt19937_64 rng(6);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(mul(tanh_act(p[0]), sigmoid_act(p[0])));
      },
      {random_matrix(2, 2, rng)});
}

TEST(Autograd, ConcatColsRowsGradient) {
  std::mt19937_64 rng(7);
  grad_check(
      [](const std::vector<Var>& p) {
        const Var cc = concat_cols({p[0], p[1]});
        const Var rr = concat_rows({cc, cc});
        return sum_all(mul(rr, rr));
      },
      {random_matrix(2, 2, rng), random_matrix(2, 3, rng)});
}

TEST(Autograd, SliceGradient) {
  std::mt19937_64 rng(8);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(mul(slice_cols(p[0], 1, 3), slice_rows(p[1], 0, 1)));
      },
      {random_matrix(1, 4, rng), random_matrix(3, 2, rng)});
}

TEST(Autograd, GatherRowsGradient) {
  std::mt19937_64 rng(9);
  grad_check(
      [](const std::vector<Var>& p) {
        // Repeated index 1 checks gradient accumulation on gathered rows.
        return sum_all(mul(gather_rows(p[0], {1, 1, 2}), gather_rows(p[0], {0, 2, 2})));
      },
      {random_matrix(3, 2, rng)});
}

TEST(Autograd, SumMeanRowsGradient) {
  std::mt19937_64 rng(10);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(mul(sum_rows(p[0]), mean_rows(p[0])));
      },
      {random_matrix(3, 3, rng)});
}

TEST(Autograd, SegmentMeanRowsMatchesPerGroupMeanRows) {
  std::mt19937_64 rng(23);
  const Matrix m = random_matrix(6, 3, rng);
  const Var a = constant(m);
  // Groups of size 2, 0, 1, 3 — covers the empty-group zero row.
  const Var seg = segment_mean_rows(a, {0, 2, 2, 3, 6});
  ASSERT_EQ(seg->value.rows(), 4);
  const Var g0 = mean_rows(slice_rows(a, 0, 2));
  const Var g2 = mean_rows(slice_rows(a, 2, 3));
  const Var g3 = mean_rows(slice_rows(a, 3, 6));
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(seg->value(0, j), g0->value(0, j));
    EXPECT_EQ(seg->value(1, j), 0.0);
    EXPECT_EQ(seg->value(2, j), g2->value(0, j));
    EXPECT_EQ(seg->value(3, j), g3->value(0, j));
  }
}

TEST(Autograd, SegmentMeanRowsIdentitySinglePreservesSignedZero) {
  Matrix m(2, 2);
  m(0, 0) = -0.0;
  m(0, 1) = 1.5;
  m(1, 0) = -0.0;
  m(1, 1) = 2.5;
  const Var a = constant(m);
  // identity_single copies lone rows raw: -0.0 survives, where the
  // accumulate-and-scale path would produce +0.0.
  const Var ident = segment_mean_rows(a, {0, 1, 2}, /*identity_single=*/true);
  const Var meaned = segment_mean_rows(a, {0, 1, 2}, /*identity_single=*/false);
  EXPECT_TRUE(std::signbit(ident->value(0, 0)));
  EXPECT_TRUE(std::signbit(ident->value(1, 0)));
  EXPECT_FALSE(std::signbit(meaned->value(0, 0)));
  EXPECT_EQ(ident->value(0, 1), 1.5);
  EXPECT_EQ(meaned->value(1, 1), 2.5);
}

TEST(Autograd, SegmentMeanRowsGradient) {
  std::mt19937_64 rng(24);
  grad_check(
      [](const std::vector<Var>& p) {
        // Mixed group sizes (2, 1, 3) exercise the per-group 1/k scaling.
        const Var seg = segment_mean_rows(p[0], {0, 2, 3, 6});
        return sum_all(mul(seg, p[1]));
      },
      {random_matrix(6, 2, rng), random_matrix(3, 2, rng)});
}

TEST(Autograd, SegmentMeanRowsIdentitySingleGradient) {
  std::mt19937_64 rng(25);
  grad_check(
      [](const std::vector<Var>& p) {
        // Size-1 groups pass gradients through unscaled under identity_single.
        const Var seg = segment_mean_rows(p[0], {0, 1, 3, 4}, true);
        return sum_all(mul(seg, p[1]));
      },
      {random_matrix(4, 2, rng), random_matrix(3, 2, rng)});
}

TEST(Autograd, SegmentMeanRowsRejectsBadOffsets) {
  const Var a = constant(Matrix(4, 2));
  EXPECT_THROW(segment_mean_rows(a, {0, 2}), std::invalid_argument);       // back != rows
  EXPECT_THROW(segment_mean_rows(a, {1, 4}), std::invalid_argument);      // front != 0
  EXPECT_THROW(segment_mean_rows(a, {0, 3, 2, 4}), std::invalid_argument);  // descending
  EXPECT_THROW(segment_mean_rows(a, {0}), std::invalid_argument);         // too short
}

TEST(Autograd, SoftmaxColGradient) {
  std::mt19937_64 rng(11);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(mul(softmax_col(p[0]), p[1]));
      },
      {random_matrix(4, 1, rng), random_matrix(4, 1, rng)});
}

TEST(Autograd, LogSoftmaxColGradient) {
  std::mt19937_64 rng(12);
  grad_check(
      [](const std::vector<Var>& p) { return pick(log_softmax_col(p[0]), 2, 0); },
      {random_matrix(5, 1, rng, -3.0, 3.0)});
}

TEST(Autograd, TransposeGradient) {
  std::mt19937_64 rng(13);
  grad_check(
      [](const std::vector<Var>& p) {
        return sum_all(matmul(transpose_of(p[0]), p[1]));
      },
      {random_matrix(3, 2, rng), random_matrix(3, 4, rng)});
}

TEST(Autograd, WeightedSumGradient) {
  std::mt19937_64 rng(14);
  grad_check(
      [](const std::vector<Var>& p) {
        const std::vector<Var> scalars = {pick(p[0], 0, 0), pick(p[0], 1, 1),
                                          sum_all(p[0])};
        return weighted_sum(scalars, {0.5, -2.0, 3.0});
      },
      {random_matrix(2, 2, rng)});
}

TEST(Autograd, DeepCompositeGradient) {
  std::mt19937_64 rng(15);
  grad_check(
      [](const std::vector<Var>& p) {
        Var h = tanh_act(matmul(p[0], p[1]));
        h = add_rowvec(h, p[2]);
        h = relu(add(h, scale(h, 0.5)));
        return pick(log_softmax_col(transpose_of(sum_rows(h))), 1, 0);
      },
      {random_matrix(3, 4, rng), random_matrix(4, 3, rng), random_matrix(1, 3, rng)},
      1e-5);
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  const Var c = constant(Matrix::scalar(2.0));
  const Var p = parameter(Matrix::scalar(3.0));
  const Var out = mul(c, p);
  backward(out);
  EXPECT_EQ(c->grad.size(), 0u);
  EXPECT_DOUBLE_EQ(p->grad(0, 0), 2.0);
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls) {
  const Var p = parameter(Matrix::scalar(3.0));
  backward(scale(p, 2.0));
  backward(scale(p, 5.0));
  EXPECT_DOUBLE_EQ(p->grad(0, 0), 7.0);
}

TEST(Autograd, DiamondReuseAccumulates) {
  const Var p = parameter(Matrix::scalar(4.0));
  const Var out = mul(p, p);  // d/dp p^2 = 2p
  backward(out);
  EXPECT_DOUBLE_EQ(p->grad(0, 0), 8.0);
}

TEST(Autograd, BackwardOnConstantGraphIsNoop) {
  const Var c = constant(Matrix::scalar(1.0));
  EXPECT_NO_THROW(backward(scale(c, 2.0)));
}

TEST(Autograd, GraphSizeCountsReachableNodes) {
  const Var a = parameter(Matrix::scalar(1.0));
  const Var b = parameter(Matrix::scalar(2.0));
  const Var out = mul(add(a, b), a);
  EXPECT_EQ(graph_size(out), 4u);  // a, b, add, mul
}

TEST(Autograd, ShapeMismatchThrows) {
  const Var a = parameter(Matrix(2, 2));
  const Var b = parameter(Matrix(2, 3));
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
  EXPECT_THROW(softmax_col(b), std::invalid_argument);
  EXPECT_THROW(slice_cols(a, 1, 4), std::invalid_argument);
  EXPECT_THROW(gather_rows(a, {5}), std::invalid_argument);
  EXPECT_THROW(pick(a, 2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace giph::nn
