#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace giph::nn {
namespace {

TEST(ClipGradNorm, NoClipBelowThreshold) {
  const Var p = parameter(Matrix::scalar(0.0));
  p->grad = Matrix::scalar(3.0);
  const double norm = clip_grad_norm({p}, 10.0);
  EXPECT_DOUBLE_EQ(norm, 3.0);
  EXPECT_DOUBLE_EQ(p->grad(0, 0), 3.0);
}

TEST(ClipGradNorm, ScalesDownAboveThreshold) {
  const Var a = parameter(Matrix::scalar(0.0));
  const Var b = parameter(Matrix::scalar(0.0));
  a->grad = Matrix::scalar(3.0);
  b->grad = Matrix::scalar(4.0);
  const double norm = clip_grad_norm({a, b}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(a->grad(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(b->grad(0, 0), 0.8, 1e-12);
}

TEST(ClipGradNorm, IgnoresUnusedParams) {
  const Var p = parameter(Matrix::scalar(0.0));  // no grad allocated
  EXPECT_DOUBLE_EQ(clip_grad_norm({p}, 1.0), 0.0);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, df/dx = 2(x - 3).
  const Var x = parameter(Matrix::scalar(0.0));
  Adam adam({x}, 0.1);
  for (int i = 0; i < 500; ++i) {
    const Var diff = sub(x, constant(Matrix::scalar(3.0)));
    backward(mul(diff, diff));
    adam.step();
  }
  EXPECT_NEAR(x->value(0, 0), 3.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  const Var x = parameter(Matrix::scalar(1.0));
  Adam adam({x}, 0.01);
  backward(scale(x, 2.0));
  adam.step();
  EXPECT_EQ(x->grad.size(), 0u);
}

TEST(Adam, SkipsParamsWithoutGradients) {
  const Var x = parameter(Matrix::scalar(1.0));
  Adam adam({x}, 0.01);
  adam.step();  // nothing accumulated: value unchanged
  EXPECT_DOUBLE_EQ(x->value(0, 0), 1.0);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  const Var x = parameter(Matrix::scalar(0.0));
  Adam adam({x}, 0.05);
  backward(scale(x, 7.0));  // grad = 7
  adam.step();
  EXPECT_NEAR(x->value(0, 0), -0.05, 1e-6);
}

TEST(Adam, LearningRateAccessors) {
  Adam adam({}, 0.01);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.01);
  adam.set_learning_rate(0.002);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.002);
}

TEST(Adam, MinimizesRosenbrockish2D) {
  // f(x, y) = (1 - x)^2 + 10 (y - x^2)^2 via composed autograd ops.
  const Var x = parameter(Matrix::scalar(-1.0));
  const Var y = parameter(Matrix::scalar(1.0));
  Adam adam({x, y}, 0.02);
  double last = 1e18;
  for (int i = 0; i < 2000; ++i) {
    const Var one = constant(Matrix::scalar(1.0));
    const Var a = sub(one, x);
    const Var b = sub(y, mul(x, x));
    const Var loss = add(mul(a, a), scale(mul(b, b), 10.0));
    last = loss->value(0, 0);
    backward(loss);
    adam.step();
  }
  EXPECT_LT(last, 1e-2);
  EXPECT_NEAR(x->value(0, 0), 1.0, 0.15);
}

}  // namespace
}  // namespace giph::nn
