#include "graph/placement.hpp"

#include <gtest/gtest.h>

namespace giph {
namespace {

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Fixture() {
    g.add_task(Task{.compute = 1.0, .requires_hw = 0b01});
    g.add_task(Task{.compute = 2.0});
    g.add_task(Task{.compute = 3.0, .requires_hw = 0b10});
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    n.add_device(Device{.speed = 1.0, .supports_hw = 0b01});
    n.add_device(Device{.speed = 1.0, .supports_hw = 0b11});
    n.add_device(Device{.speed = 1.0, .supports_hw = 0b10});
  }
};

TEST(Placement, FeasibleDevicesRespectHwMask) {
  Fixture f;
  EXPECT_EQ(feasible_devices(f.g, f.n, 0), (std::vector<int>{0, 1}));
  EXPECT_EQ(feasible_devices(f.g, f.n, 1), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(feasible_devices(f.g, f.n, 2), (std::vector<int>{1, 2}));
}

TEST(Placement, PinnedTaskHasSingletonSet) {
  Fixture f;
  f.g.task(1).pinned = 2;
  EXPECT_EQ(feasible_devices(f.g, f.n, 1), std::vector<int>{2});
  EXPECT_TRUE(device_feasible(f.g, f.n, 1, 2));
  EXPECT_FALSE(device_feasible(f.g, f.n, 1, 0));
}

TEST(Placement, PinnedBeyondNetworkIsEmpty) {
  Fixture f;
  f.g.task(1).pinned = 99;
  EXPECT_TRUE(feasible_devices(f.g, f.n, 1).empty());
  EXPECT_THROW(feasible_sets(f.g, f.n), std::runtime_error);
}

TEST(Placement, IsFeasibleChecksEveryTask) {
  Fixture f;
  Placement p(3);
  p.set(0, 0);
  p.set(1, 2);
  p.set(2, 1);
  EXPECT_TRUE(is_feasible(f.g, f.n, p));
  p.set(0, 2);  // device 2 lacks hw bit 0
  EXPECT_FALSE(is_feasible(f.g, f.n, p));
}

TEST(Placement, IsFeasibleRejectsWrongSizeOrUnplaced) {
  Fixture f;
  EXPECT_FALSE(is_feasible(f.g, f.n, Placement(2)));
  EXPECT_FALSE(is_feasible(f.g, f.n, Placement(3)));  // all -1
}

TEST(Placement, StateSpaceSize) {
  Fixture f;
  EXPECT_DOUBLE_EQ(state_space_size(f.g, f.n), 2.0 * 3.0 * 2.0);
}

TEST(Placement, RandomPlacementIsAlwaysFeasible) {
  Fixture f;
  std::mt19937_64 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(is_feasible(f.g, f.n, random_placement(f.g, f.n, rng)));
  }
}

TEST(Placement, RandomPlacementCoversAllFeasibleDevices) {
  Fixture f;
  std::mt19937_64 rng(2);
  std::vector<std::vector<int>> seen(3, std::vector<int>(3, 0));
  for (int i = 0; i < 300; ++i) {
    const Placement p = random_placement(f.g, f.n, rng);
    for (int v = 0; v < 3; ++v) seen[v][p.device_of(v)]++;
  }
  for (int v = 0; v < 3; ++v) {
    for (int d : feasible_devices(f.g, f.n, v)) EXPECT_GT(seen[v][d], 0);
  }
  EXPECT_EQ(seen[0][2], 0);  // infeasible device never drawn
}

TEST(Placement, EqualityIsValueBased) {
  Placement a(2), b(2);
  a.set(0, 1);
  b.set(0, 1);
  EXPECT_EQ(a, b);
  b.set(1, 0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace giph
