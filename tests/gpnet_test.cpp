#include "core/gpnet.hpp"

#include <gtest/gtest.h>

#include "gen/dataset.hpp"

namespace giph {
namespace {

struct Fig1Fixture {
  // Mirrors the structure of the paper's Fig. 1: 5 tasks, constrained
  // feasible sets, 4 devices.
  TaskGraph g;
  DeviceNetwork n;
  Placement m;
  std::vector<std::vector<int>> feasible;
  Fig1Fixture() : m(5) {
    for (int i = 0; i < 5; ++i) g.add_task(Task{.compute = 1.0 + i});
    // v0 -> v1, v0 -> v2, v1 -> v3, v1 -> v4, v2 -> v3
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 2, 1.0);
    g.add_edge(1, 3, 1.0);
    g.add_edge(1, 4, 1.0);
    g.add_edge(2, 3, 1.0);
    for (int k = 0; k < 4; ++k) {
      n.add_device(Device{.speed = 1.0, .supports_hw = HwMask{1} << k});
    }
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) n.set_symmetric_link(a, b, 1.0, 0.0);
    }
    // Feasible sets via hw requirements: D0 = {d0, d1}, D1 = {d1, d2},
    // D2 = {d3}, D3 = {d2, d3}, D4 = {d0, d1}.
    auto require = [&](int task, std::initializer_list<int> devs) {
      HwMask need = 0;
      (void)task;
      for (int d : devs) need |= HwMask{1} << d;
      return need;
    };
    auto allow = [&](int task, std::initializer_list<int> devs) {
      // A task requiring any listed device: use a dedicated bit scheme where
      // the task requires a fresh bit supported exactly by those devices.
      static int next_bit = 4;
      const HwMask bit = HwMask{1} << next_bit++;
      g.task(task).requires_hw = bit;
      for (int d : devs) n.device(d).supports_hw |= bit;
      (void)require;
    };
    allow(0, {0, 1});
    allow(1, {1, 2});
    allow(2, {3});
    allow(3, {2, 3});
    allow(4, {0, 1});
    m.set(0, 0);
    m.set(1, 2);
    m.set(2, 3);
    m.set(3, 3);
    m.set(4, 1);
    feasible = feasible_sets(g, n);
  }
};

TEST(GpNet, NodeCountMatchesClosedForm) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  int expected = 0;
  for (const auto& s : f.feasible) expected += static_cast<int>(s.size());
  EXPECT_EQ(net.num_nodes(), expected);
  EXPECT_EQ(net.num_nodes(), 2 + 2 + 1 + 2 + 2);
}

TEST(GpNet, EdgeCountMatchesClosedForm) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  // |E_H| = sum_i |D_i| |E_i| - |E|.
  int expected = 0;
  for (int v = 0; v < f.g.num_tasks(); ++v) {
    expected += static_cast<int>(f.feasible[v].size()) * f.g.degree(v);
  }
  expected -= f.g.num_edges();
  EXPECT_EQ(net.num_edges(), expected);
}

TEST(GpNet, ExactlyOnePivotPerTask) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  std::vector<int> pivots(f.g.num_tasks(), 0);
  for (int u = 0; u < net.num_nodes(); ++u) {
    if (net.is_pivot[u]) {
      ++pivots[net.node_task[u]];
      EXPECT_EQ(net.node_device[u], f.m.device_of(net.node_task[u]));
      EXPECT_EQ(net.pivot_of_task[net.node_task[u]], u);
    }
  }
  for (int v = 0; v < f.g.num_tasks(); ++v) EXPECT_EQ(pivots[v], 1);
}

TEST(GpNet, EveryEdgeTouchesAPivot) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  for (const auto& [u1, u2] : net.view.edges) {
    EXPECT_TRUE(net.is_pivot[u1] || net.is_pivot[u2]);
  }
}

TEST(GpNet, EdgesFollowTaskGraphDependencies) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto [u1, u2] = net.view.edges[e];
    const int ge = net.edge_task_edge[e];
    EXPECT_EQ(net.node_task[u1], f.g.edge(ge).src);
    EXPECT_EQ(net.node_task[u2], f.g.edge(ge).dst);
  }
}

TEST(GpNet, NonPivotNodesConnectOnlyToPivotNeighbors) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  for (int u = 0; u < net.num_nodes(); ++u) {
    if (net.is_pivot[u]) continue;
    for (int e : net.view.in_edges[u]) {
      EXPECT_TRUE(net.is_pivot[net.view.edges[e].first]);
    }
    for (int e : net.view.out_edges[u]) {
      EXPECT_TRUE(net.is_pivot[net.view.edges[e].second]);
    }
  }
}

TEST(GpNet, OptionsPartitionNodes) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  int total = 0;
  for (int v = 0; v < f.g.num_tasks(); ++v) {
    for (int u : net.options[v]) EXPECT_EQ(net.node_task[u], v);
    total += static_cast<int>(net.options[v].size());
  }
  EXPECT_EQ(total, net.num_nodes());
}

TEST(GpNet, TopologicalOrderIsValid) {
  Fig1Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  std::vector<int> pos(net.num_nodes());
  for (int i = 0; i < net.num_nodes(); ++i) pos[net.view.topo[i]] = i;
  for (const auto& [u1, u2] : net.view.edges) EXPECT_LT(pos[u1], pos[u2]);
}

TEST(GpNet, InfeasiblePlacementRejected) {
  Fig1Fixture f;
  f.m.set(2, 0);  // v2 only allows d3
  EXPECT_THROW(build_gpnet(f.g, f.n, f.m, f.feasible), std::invalid_argument);
}

TEST(GpNet, CountsHoldOnRandomInstances) {
  std::mt19937_64 rng(31);
  TaskGraphParams gp;
  gp.num_tasks = 18;
  gp.p_task_requires = 0.5;
  NetworkParams np;
  np.num_devices = 7;
  for (int rep = 0; rep < 5; ++rep) {
    const TaskGraph g = generate_task_graph(gp, rng);
    DeviceNetwork n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    const auto feasible = feasible_sets(g, n);
    const Placement m = random_placement(g, n, rng);
    const GpNet net = build_gpnet(g, n, m, feasible);
    int nodes = 0, edges = -g.num_edges();
    for (int v = 0; v < g.num_tasks(); ++v) {
      nodes += static_cast<int>(feasible[v].size());
      edges += static_cast<int>(feasible[v].size()) * g.degree(v);
    }
    EXPECT_EQ(net.num_nodes(), nodes);
    EXPECT_EQ(net.num_edges(), edges);
  }
}

TEST(GraphView, FinalizeDetectsCycle) {
  GraphView v;
  v.add_node();
  v.add_node();
  v.add_edge(0, 1);
  v.add_edge(1, 0);
  EXPECT_THROW(v.finalize(), std::logic_error);
}

TEST(GraphView, GraphViewOfMirrorsTaskGraph) {
  TaskGraph g;
  for (int i = 0; i < 3; ++i) g.add_task(Task{});
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const GraphView v = graph_view_of(g);
  EXPECT_EQ(v.num_nodes, 3);
  EXPECT_EQ(v.edges.size(), 2u);
  EXPECT_EQ(v.topo, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace giph
