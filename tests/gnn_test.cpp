#include "core/gnn.hpp"

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "gen/dataset.hpp"
#include "sim/simulator.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph g;
  DeviceNetwork n;
  Placement m;
  GpNet net;
  GpNetFeatures feats;
  Instance() {
    std::mt19937_64 rng(77);
    TaskGraphParams gp;
    gp.num_tasks = 8;
    NetworkParams np;
    np.num_devices = 4;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    m = random_placement(g, n, rng);
    const auto feasible = feasible_sets(g, n);
    net = build_gpnet(g, n, m, feasible);
    const Schedule sched = simulate(g, n, m, kLat);
    const FeatureScales s = compute_feature_scales(g, n, kLat);
    feats = build_gpnet_features(net, g, n, m, kLat, sched, s);
  }
};

class EncoderKinds : public ::testing::TestWithParam<GnnKind> {};

TEST_P(EncoderKinds, ShapesAndGradients) {
  Instance inst;
  const GnnKind kind = GetParam();
  GnnConfig cfg;
  cfg.kind = kind;
  const bool merged = kind == GnnKind::kGiPHNE || kind == GnnKind::kGraphSAGE ||
                      kind == GnnKind::kNone;
  cfg.node_dim = merged ? 8 : 4;
  cfg.edge_dim = merged ? 0 : 4;

  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);

  nn::Matrix node_feats =
      merged ? append_mean_out_edge_features(inst.net, inst.feats) : inst.feats.node;
  const nn::Var emb = enc.encode(inst.net.view, node_feats,
                                 merged ? nn::Matrix() : inst.feats.edge);
  EXPECT_EQ(emb->value.rows(), inst.net.num_nodes());
  EXPECT_EQ(emb->value.cols(), enc.out_dim());
  for (int i = 0; i < emb->value.rows(); ++i) {
    for (int j = 0; j < emb->value.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(emb->value(i, j)));
    }
  }

  if (kind == GnnKind::kNone) {
    EXPECT_TRUE(reg.params().empty());
    return;
  }
  // Gradients reach every registered parameter.
  nn::backward(nn::sum_all(emb));
  for (const nn::Var& p : reg.params()) {
    EXPECT_GT(p->grad.size(), 0u) << "parameter received no gradient";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EncoderKinds,
                         ::testing::Values(GnnKind::kGiPH, GnnKind::kGiPHK,
                                           GnnKind::kGiPHNE, GnnKind::kGraphSAGE,
                                           GnnKind::kNone));

TEST(GraphEncoder, DeterministicForward) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  const nn::Var a = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  const nn::Var b = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  EXPECT_EQ(nn::max_abs_diff(a->value, b->value), 0.0);
}

TEST(GraphEncoder, EmbeddingDependsOnGraphStructure) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  const nn::Var a = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  // Zeroing an edge feature changes embeddings of connected nodes.
  nn::Matrix edited = inst.feats.edge;
  for (int j = 0; j < edited.cols(); ++j) edited(0, j) += 5.0;
  const nn::Var b = enc.encode(inst.net.view, inst.feats.node, edited);
  EXPECT_GT(nn::max_abs_diff(a->value, b->value), 0.0);
}

TEST(GraphEncoder, OutDimMatchesConfig) {
  std::mt19937_64 rng(5);
  {
    nn::ParamRegistry reg;
    GnnConfig cfg;
    cfg.embed_dim = 7;
    EXPECT_EQ(GraphEncoder(reg, cfg, rng).out_dim(), 14);
  }
  {
    nn::ParamRegistry reg;
    GnnConfig cfg;
    cfg.kind = GnnKind::kNone;
    cfg.node_dim = 8;
    EXPECT_EQ(GraphEncoder(reg, cfg, rng).out_dim(), 8);
  }
}

TEST(GraphEncoder, RejectsShapeMismatch) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  EXPECT_THROW(enc.encode(inst.net.view, nn::Matrix(3, 4), inst.feats.edge),
               std::invalid_argument);
}

TEST(ScorePolicy, SamplesOnlyFromCandidates) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 6, rng);
  const nn::Var emb = nn::constant(nn::Matrix(10, 6, 0.3));
  const std::vector<int> candidates{2, 5, 7};
  std::mt19937_64 sample_rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto s = pol.act(emb, candidates, sample_rng, false);
    EXPECT_TRUE(s.choice == 2 || s.choice == 5 || s.choice == 7);
    EXPECT_GT(s.prob, 0.0);
    EXPECT_LE(s.prob, 1.0);
    EXPECT_NEAR(std::exp(s.log_prob->value(0, 0)), s.prob, 1e-12);
  }
}

TEST(ScorePolicy, GreedyPicksArgmax) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  // Distinct rows produce distinct scores; greedy must be deterministic.
  nn::Matrix m(4, 2);
  for (int i = 0; i < 4; ++i) {
    m(i, 0) = i;
    m(i, 1) = -i;
  }
  const nn::Var emb = nn::constant(m);
  std::mt19937_64 r1(1), r2(2);
  const auto a = pol.act(emb, {0, 1, 2, 3}, r1, true);
  const auto b = pol.act(emb, {0, 1, 2, 3}, r2, true);
  EXPECT_EQ(a.choice, b.choice);
}

TEST(ScorePolicy, EmptyCandidatesThrow) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  const nn::Var emb = nn::constant(nn::Matrix(4, 2));
  EXPECT_THROW(pol.act(emb, {}, rng, false), std::invalid_argument);
}

TEST(ScorePolicy, SamplingFrequenciesMatchProbabilities) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  nn::Matrix m(3, 2);
  m(0, 0) = 1.0;
  m(1, 0) = -1.0;
  m(2, 1) = 2.0;
  const nn::Var emb = nn::constant(m);
  // Reference probabilities from a single act() call.
  std::mt19937_64 r0(1);
  std::vector<double> probs(3, 0.0);
  for (int c = 0; c < 3; ++c) {
    // Greedy act on a singleton candidate set exposes each log-prob = 0, so
    // instead read probabilities through repeated sampling.
    (void)c;
  }
  const int trials = 4000;
  std::vector<int> counts(3, 0);
  std::mt19937_64 sr(77);
  double p_first = 0.0;
  for (int i = 0; i < trials; ++i) {
    const auto s = pol.act(emb, {0, 1, 2}, sr, false);
    ++counts[s.choice];
    if (s.choice == 0) p_first = s.prob;
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(counts[c], 0) << "every candidate sampled eventually";
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, p_first, 0.03);
}

TEST(ScorePolicy, LogProbGradientReachesScoreParams) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 3, rng);
  const nn::Var emb = nn::constant(nn::Matrix(5, 3, 0.5));
  std::mt19937_64 sr(4);
  const auto s = pol.act(emb, {0, 1, 2, 3, 4}, sr, false);
  nn::backward(s.log_prob);
  // At least the first-layer weights must receive gradient. (With identical
  // candidate rows the final-layer weight gradient can cancel exactly.)
  EXPECT_GT(reg.params()[0]->grad.size(), 0u);
}

}  // namespace
}  // namespace giph
