#include "core/gnn.hpp"

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "gen/dataset.hpp"
#include "sim/simulator.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph g;
  DeviceNetwork n;
  Placement m;
  GpNet net;
  GpNetFeatures feats;
  Instance() {
    std::mt19937_64 rng(77);
    TaskGraphParams gp;
    gp.num_tasks = 8;
    NetworkParams np;
    np.num_devices = 4;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    m = random_placement(g, n, rng);
    const auto feasible = feasible_sets(g, n);
    net = build_gpnet(g, n, m, feasible);
    const Schedule sched = simulate(g, n, m, kLat);
    const FeatureScales s = compute_feature_scales(g, n, kLat);
    feats = build_gpnet_features(net, g, n, m, kLat, sched, s);
  }
};

class EncoderKinds : public ::testing::TestWithParam<GnnKind> {};

TEST_P(EncoderKinds, ShapesAndGradients) {
  Instance inst;
  const GnnKind kind = GetParam();
  GnnConfig cfg;
  cfg.kind = kind;
  const bool merged = kind == GnnKind::kGiPHNE || kind == GnnKind::kGraphSAGE ||
                      kind == GnnKind::kNone;
  cfg.node_dim = merged ? 8 : 4;
  cfg.edge_dim = merged ? 0 : 4;

  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);

  nn::Matrix node_feats =
      merged ? append_mean_out_edge_features(inst.net, inst.feats) : inst.feats.node;
  const nn::Var emb = enc.encode(inst.net.view, node_feats,
                                 merged ? nn::Matrix() : inst.feats.edge);
  EXPECT_EQ(emb->value.rows(), inst.net.num_nodes());
  EXPECT_EQ(emb->value.cols(), enc.out_dim());
  for (int i = 0; i < emb->value.rows(); ++i) {
    for (int j = 0; j < emb->value.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(emb->value(i, j)));
    }
  }

  if (kind == GnnKind::kNone) {
    EXPECT_TRUE(reg.params().empty());
    return;
  }
  // Gradients reach every registered parameter.
  nn::backward(nn::sum_all(emb));
  for (const nn::Var& p : reg.params()) {
    EXPECT_GT(p->grad.size(), 0u) << "parameter received no gradient";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EncoderKinds,
                         ::testing::Values(GnnKind::kGiPH, GnnKind::kGiPHK,
                                           GnnKind::kGiPHNE, GnnKind::kGraphSAGE,
                                           GnnKind::kNone));

TEST(GraphEncoder, DeterministicForward) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  const nn::Var a = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  const nn::Var b = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  EXPECT_EQ(nn::max_abs_diff(a->value, b->value), 0.0);
}

TEST(GraphEncoder, EmbeddingDependsOnGraphStructure) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  const nn::Var a = enc.encode(inst.net.view, inst.feats.node, inst.feats.edge);
  // Zeroing an edge feature changes embeddings of connected nodes.
  nn::Matrix edited = inst.feats.edge;
  for (int j = 0; j < edited.cols(); ++j) edited(0, j) += 5.0;
  const nn::Var b = enc.encode(inst.net.view, inst.feats.node, edited);
  EXPECT_GT(nn::max_abs_diff(a->value, b->value), 0.0);
}

TEST(GraphEncoder, OutDimMatchesConfig) {
  std::mt19937_64 rng(5);
  {
    nn::ParamRegistry reg;
    GnnConfig cfg;
    cfg.embed_dim = 7;
    EXPECT_EQ(GraphEncoder(reg, cfg, rng).out_dim(), 14);
  }
  {
    nn::ParamRegistry reg;
    GnnConfig cfg;
    cfg.kind = GnnKind::kNone;
    cfg.node_dim = 8;
    EXPECT_EQ(GraphEncoder(reg, cfg, rng).out_dim(), 8);
  }
}

TEST(GraphEncoder, RejectsShapeMismatch) {
  Instance inst;
  GnnConfig cfg;
  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);
  EXPECT_THROW(enc.encode(inst.net.view, nn::Matrix(3, 4), inst.feats.edge),
               std::invalid_argument);
}

TEST(ScorePolicy, SamplesOnlyFromCandidates) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 6, rng);
  const nn::Var emb = nn::constant(nn::Matrix(10, 6, 0.3));
  const std::vector<int> candidates{2, 5, 7};
  std::mt19937_64 sample_rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto s = pol.act(emb, candidates, sample_rng, false);
    EXPECT_TRUE(s.choice == 2 || s.choice == 5 || s.choice == 7);
    EXPECT_GT(s.prob, 0.0);
    EXPECT_LE(s.prob, 1.0);
    EXPECT_NEAR(std::exp(s.log_prob->value(0, 0)), s.prob, 1e-12);
  }
}

TEST(ScorePolicy, GreedyPicksArgmax) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  // Distinct rows produce distinct scores; greedy must be deterministic.
  nn::Matrix m(4, 2);
  for (int i = 0; i < 4; ++i) {
    m(i, 0) = i;
    m(i, 1) = -i;
  }
  const nn::Var emb = nn::constant(m);
  std::mt19937_64 r1(1), r2(2);
  const auto a = pol.act(emb, {0, 1, 2, 3}, r1, true);
  const auto b = pol.act(emb, {0, 1, 2, 3}, r2, true);
  EXPECT_EQ(a.choice, b.choice);
}

TEST(ScorePolicy, EmptyCandidatesThrow) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  const nn::Var emb = nn::constant(nn::Matrix(4, 2));
  EXPECT_THROW(pol.act(emb, {}, rng, false), std::invalid_argument);
}

TEST(ScorePolicy, SamplingFrequenciesMatchProbabilities) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 2, rng);
  nn::Matrix m(3, 2);
  m(0, 0) = 1.0;
  m(1, 0) = -1.0;
  m(2, 1) = 2.0;
  const nn::Var emb = nn::constant(m);
  // Reference probabilities from a single act() call.
  std::mt19937_64 r0(1);
  std::vector<double> probs(3, 0.0);
  for (int c = 0; c < 3; ++c) {
    // Greedy act on a singleton candidate set exposes each log-prob = 0, so
    // instead read probabilities through repeated sampling.
    (void)c;
  }
  const int trials = 4000;
  std::vector<int> counts(3, 0);
  std::mt19937_64 sr(77);
  double p_first = 0.0;
  for (int i = 0; i < trials; ++i) {
    const auto s = pol.act(emb, {0, 1, 2}, sr, false);
    ++counts[s.choice];
    if (s.choice == 0) p_first = s.prob;
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(counts[c], 0) << "every candidate sampled eventually";
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, p_first, 0.03);
}

// ---- batched vs per-node bitwise equivalence ------------------------------
// The encoder batches each level/step/layer through one matrix-matrix matmul;
// the references below re-implement the per-node matrix-vector passes that the
// batching replaced, straight from the registry parameters, and the test
// demands bitwise-equal embeddings for every GNN kind.

nn::Var ref_param(const nn::ParamRegistry& reg, const std::string& name) {
  const auto& names = reg.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return reg.params()[i];
  }
  throw std::invalid_argument("ref_param: unknown " + name);
}

nn::Var ref_linear(const nn::ParamRegistry& reg, const std::string& base,
                   const nn::Var& x) {
  return nn::add_rowvec(nn::matmul(x, ref_param(reg, base + ".W")),
                        ref_param(reg, base + ".b"));
}

nn::Var ref_pre(const nn::ParamRegistry& reg, const nn::Var& nodes) {
  return ref_linear(reg, "gnn.pre.l1", nn::relu(ref_linear(reg, "gnn.pre.l0", nodes)));
}

std::vector<nn::Var> ref_sequential(const nn::ParamRegistry& reg, const GraphView& view,
                                    const nn::Var& pre, const nn::Var& edges,
                                    bool use_edges, const std::string& base,
                                    bool forward) {
  std::vector<nn::Var> emb(view.num_nodes);
  auto process = [&](int u) {
    const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
    const nn::Var self = nn::row(pre, u);
    if (incoming.empty()) {
      emb[u] = self;
      return;
    }
    std::vector<nn::Var> msgs;
    for (int e : incoming) {
      const int v = forward ? view.edges[e].first : view.edges[e].second;
      msgs.push_back(use_edges ? nn::concat_cols({emb[v], nn::row(edges, e)}) : emb[v]);
    }
    const nn::Var stacked = msgs.size() == 1 ? msgs[0] : nn::concat_rows(msgs);
    const nn::Var agg = nn::mean_rows(nn::relu(ref_linear(reg, base + ".msg", stacked)));
    emb[u] = nn::add(nn::relu(ref_linear(reg, base + ".agg", agg)), self);
  };
  if (forward) {
    for (int u : view.topo) process(u);
  } else {
    for (auto it = view.topo.rbegin(); it != view.topo.rend(); ++it) process(*it);
  }
  return emb;
}

std::vector<nn::Var> ref_k_steps(const nn::ParamRegistry& reg, const GraphView& view,
                                 const nn::Var& pre, const nn::Var& edges,
                                 bool use_edges, const std::string& base, bool forward,
                                 int k_steps) {
  std::vector<nn::Var> emb(view.num_nodes);
  for (int u = 0; u < view.num_nodes; ++u) emb[u] = nn::row(pre, u);
  for (int step = 0; step < k_steps; ++step) {
    std::vector<nn::Var> next(view.num_nodes);
    for (int u = 0; u < view.num_nodes; ++u) {
      const auto& incoming = forward ? view.in_edges[u] : view.out_edges[u];
      const nn::Var self = nn::row(pre, u);
      if (incoming.empty()) {
        next[u] = self;
        continue;
      }
      std::vector<nn::Var> msgs;
      for (int e : incoming) {
        const int v = forward ? view.edges[e].first : view.edges[e].second;
        msgs.push_back(use_edges ? nn::concat_cols({emb[v], nn::row(edges, e)}) : emb[v]);
      }
      const nn::Var stacked = msgs.size() == 1 ? msgs[0] : nn::concat_rows(msgs);
      const nn::Var agg =
          nn::mean_rows(nn::relu(ref_linear(reg, base + ".msg", stacked)));
      next[u] = nn::add(nn::relu(ref_linear(reg, base + ".agg", agg)), self);
    }
    emb = std::move(next);
  }
  return emb;
}

nn::Var ref_sage(const nn::ParamRegistry& reg, const GraphView& view,
                 const nn::Var& nodes, int k_steps) {
  std::vector<nn::Var> emb(view.num_nodes);
  {
    const nn::Var h0 = nn::relu(ref_linear(reg, "gnn.sage.t", nodes));
    for (int u = 0; u < view.num_nodes; ++u) emb[u] = nn::row(h0, u);
  }
  for (int l = 0; l < k_steps; ++l) {
    std::vector<nn::Var> next(view.num_nodes);
    for (int u = 0; u < view.num_nodes; ++u) {
      nn::Var neigh;
      if (view.in_edges[u].empty()) {
        neigh = nn::constant(nn::Matrix::zeros(1, emb[u]->value.cols()));
      } else {
        std::vector<nn::Var> ms;
        for (int e : view.in_edges[u]) ms.push_back(emb[view.edges[e].first]);
        neigh = ms.size() == 1 ? ms[0] : nn::mean_rows(nn::concat_rows(ms));
      }
      next[u] = nn::relu(ref_linear(reg, "gnn.sage.l" + std::to_string(l),
                                    nn::concat_cols({emb[u], neigh})));
    }
    emb = std::move(next);
  }
  return nn::concat_rows(emb);
}

class EncoderBitwise : public ::testing::TestWithParam<GnnKind> {};

TEST_P(EncoderBitwise, BatchedEncodeMatchesPerNodeReference) {
  Instance inst;
  const GnnKind kind = GetParam();
  GnnConfig cfg;
  cfg.kind = kind;
  const bool merged = kind == GnnKind::kGiPHNE || kind == GnnKind::kGraphSAGE;
  cfg.node_dim = merged ? 8 : 4;
  cfg.edge_dim = merged ? 0 : 4;

  std::mt19937_64 rng(5);
  nn::ParamRegistry reg;
  const GraphEncoder enc(reg, cfg, rng);

  const nn::Matrix node_feats =
      merged ? append_mean_out_edge_features(inst.net, inst.feats) : inst.feats.node;
  const nn::Matrix edge_feats = merged ? nn::Matrix() : inst.feats.edge;
  const nn::Var emb = enc.encode(inst.net.view, node_feats, edge_feats);

  const nn::Var nodes = nn::constant(node_feats);
  const nn::Var edges = nn::constant(edge_feats);
  const bool use_edges = !merged;
  nn::Var ref;
  if (kind == GnnKind::kGraphSAGE) {
    ref = ref_sage(reg, inst.net.view, nodes, cfg.k_steps);
  } else {
    const nn::Var pre = ref_pre(reg, nodes);
    std::vector<nn::Var> fwd, bwd;
    if (kind == GnnKind::kGiPHK) {
      fwd = ref_k_steps(reg, inst.net.view, pre, edges, use_edges, "gnn.fwd", true,
                        cfg.k_steps);
      bwd = ref_k_steps(reg, inst.net.view, pre, edges, use_edges, "gnn.bwd", false,
                        cfg.k_steps);
    } else {
      fwd = ref_sequential(reg, inst.net.view, pre, edges, use_edges, "gnn.fwd", true);
      bwd = ref_sequential(reg, inst.net.view, pre, edges, use_edges, "gnn.bwd", false);
    }
    ref = nn::concat_cols({nn::concat_rows(fwd), nn::concat_rows(bwd)});
  }

  ASSERT_EQ(emb->value.rows(), ref->value.rows());
  ASSERT_EQ(emb->value.cols(), ref->value.cols());
  EXPECT_EQ(nn::max_abs_diff(emb->value, ref->value), 0.0)
      << "batched encode must be bitwise-identical to the per-node pass";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EncoderBitwise,
                         ::testing::Values(GnnKind::kGiPH, GnnKind::kGiPHK,
                                           GnnKind::kGiPHNE, GnnKind::kGraphSAGE));

TEST(ScorePolicy, LogProbGradientReachesScoreParams) {
  std::mt19937_64 rng(9);
  nn::ParamRegistry reg;
  const ScorePolicy pol(reg, "p", 3, rng);
  const nn::Var emb = nn::constant(nn::Matrix(5, 3, 0.5));
  std::mt19937_64 sr(4);
  const auto s = pol.act(emb, {0, 1, 2, 3, 4}, sr, false);
  nn::backward(s.log_prob);
  // At least the first-layer weights must receive gradient. (With identical
  // candidate rows the final-layer weight gradient can cancel exactly.)
  EXPECT_GT(reg.params()[0]->grad.size(), 0u);
}

}  // namespace
}  // namespace giph
