#include "graph/device_network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace giph {
namespace {

DeviceNetwork three_devices() {
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0, .supports_hw = 0b01});
  n.add_device(Device{.speed = 2.0, .supports_hw = 0b10});
  n.add_device(Device{.speed = 4.0, .supports_hw = 0b11});
  n.set_symmetric_link(0, 1, 10.0, 1.0);
  n.set_symmetric_link(0, 2, 20.0, 2.0);
  n.set_symmetric_link(1, 2, 40.0, 4.0);
  return n;
}

TEST(DeviceNetwork, SelfLinksAreFree) {
  const DeviceNetwork n = three_devices();
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(std::isinf(n.bandwidth(k, k)));
    EXPECT_EQ(n.delay(k, k), 0.0);
  }
}

TEST(DeviceNetwork, SymmetricLinkSetsBothDirections) {
  const DeviceNetwork n = three_devices();
  EXPECT_EQ(n.bandwidth(0, 1), 10.0);
  EXPECT_EQ(n.bandwidth(1, 0), 10.0);
  EXPECT_EQ(n.delay(2, 1), 4.0);
}

TEST(DeviceNetwork, DirectedLinksCanDiffer) {
  DeviceNetwork n(2);
  n.set_link(0, 1, 5.0, 0.5);
  n.set_link(1, 0, 50.0, 0.1);
  EXPECT_EQ(n.bandwidth(0, 1), 5.0);
  EXPECT_EQ(n.bandwidth(1, 0), 50.0);
}

TEST(DeviceNetwork, SetLinkValidation) {
  DeviceNetwork n(2);
  EXPECT_THROW(n.set_link(0, 0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(n.set_link(0, 1, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(n.set_link(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(n.set_link(0, 2, 1.0, 0.0), std::out_of_range);
}

TEST(DeviceNetwork, AddDevicePreservesLinks) {
  DeviceNetwork n = three_devices();
  const int id = n.add_device(Device{.speed = 8.0});
  EXPECT_EQ(id, 3);
  EXPECT_EQ(n.num_devices(), 4);
  EXPECT_EQ(n.bandwidth(0, 1), 10.0);
  EXPECT_EQ(n.delay(1, 2), 4.0);
  // New links default to bandwidth 1, delay 0 until set.
  EXPECT_EQ(n.bandwidth(0, 3), 1.0);
  EXPECT_EQ(n.delay(0, 3), 0.0);
}

TEST(DeviceNetwork, RemoveDeviceCompacts) {
  DeviceNetwork n = three_devices();
  n.remove_device(1);
  EXPECT_EQ(n.num_devices(), 2);
  EXPECT_EQ(n.device(1).speed, 4.0);  // old device 2
  EXPECT_EQ(n.bandwidth(0, 1), 20.0);  // old (0, 2) link
  EXPECT_EQ(n.delay(0, 1), 2.0);
}

TEST(DeviceNetwork, FeasibleDevicesByMask) {
  const DeviceNetwork n = three_devices();
  EXPECT_EQ(n.feasible_devices(0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(n.feasible_devices(0b01), (std::vector<int>{0, 2}));
  EXPECT_EQ(n.feasible_devices(0b10), (std::vector<int>{1, 2}));
  EXPECT_EQ(n.feasible_devices(0b11), (std::vector<int>{2}));
  EXPECT_TRUE(n.feasible_devices(0b100).empty());
}

TEST(DeviceNetwork, Means) {
  const DeviceNetwork n = three_devices();
  EXPECT_NEAR(n.mean_speed(), (1.0 + 2.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(n.mean_bandwidth(), (10.0 + 20.0 + 40.0) * 2 / 6.0, 1e-12);
  EXPECT_NEAR(n.mean_delay(), (1.0 + 2.0 + 4.0) * 2 / 6.0, 1e-12);
}

TEST(DeviceNetwork, MeansOfSingleton) {
  DeviceNetwork n(1);
  EXPECT_EQ(n.mean_bandwidth(), 0.0);
  EXPECT_EQ(n.mean_delay(), 0.0);
}

}  // namespace
}  // namespace giph
