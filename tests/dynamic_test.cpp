// Dynamic network conditions: trace breakpoints, the loss-aware latency
// model, shared-link contention, their inactive-config bitwise reductions,
// validation errors, and the continuous-churn harness.

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "baselines/random_policies.hpp"
#include "casestudy/churn.hpp"
#include "eval/robustness_eval.hpp"
#include "graph/topology.hpp"
#include "heft/heft.hpp"
#include "sim/latency_model.hpp"
#include "sim/network_trace.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace giph {
namespace {

using testutil::alternating3;
using testutil::chain3;
using testutil::expect_schedules_bitwise_equal;
using testutil::random_case;
using testutil::two_devices;

const DefaultLatencyModel kLat;

// ---------------------------------------------------------------------------
// NetworkTrace semantics

TEST(NetworkTrace, BreakpointRescalesRemainingWireTime) {
  // chain3 / two_devices / alternating3: edge 0 flies 0 -> 1 during [2, 7]
  // with startup 1 (wire phase [3, 7]). Halving the bandwidth at t = 5
  // doubles the remaining 2 units of wire time: arrival 9, t1 runs [9, 11].
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({5.0, 0.5, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &trace;
  const Schedule s = simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 9.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 9.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].finish, 11.0);
}

TEST(NetworkTrace, BreakpointDuringStartupAnchorsAtWireBegin) {
  // Edge 1 flies 1 -> 0 during [9, 18]: startup [9, 10], wire [10, 18].
  // Halving the bandwidth at t = 9.5 (inside the startup window) must anchor
  // at the wire begin: all 8 wire units double, arrival 26.
  NetworkTrace trace;
  trace.link(1, 0).segments.push_back({9.5, 0.5, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &trace;
  const Schedule s = simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  EXPECT_DOUBLE_EQ(s.edge_finish[1], 26.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].finish, 32.0);
}

TEST(NetworkTrace, SegmentActiveAtDispatchSetsDelayAndDrop) {
  // A segment active from t = 0 on 0 -> 1: delay_add 2 raises the startup to
  // 1 + 2 = 3, drop_prob 0.5 doubles the wire time (expected retransmits):
  // edge 0 becomes 3 + 4*2 = 11 long, in flight [2, 13], t1 [13, 15].
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({0.0, 1.0, 2.0, 0.5});
  SimOptions opt;
  opt.trace = &trace;
  const Schedule s = simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  EXPECT_DOUBLE_EQ(s.edge_start[0], 2.0);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 13.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 13.0);
}

TEST(NetworkTrace, OtherDirectionAndOtherLinksUnaffected) {
  // A schedule on 0 -> 1 only: edge 1 (1 -> 0) keeps its nominal [9, 18].
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({0.0, 0.25, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &trace;
  const Schedule s = simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 2.0 + 1.0 + 4.0 * 4.0);  // 0 -> 1 stretched
  EXPECT_DOUBLE_EQ(s.edge_finish[1] - s.edge_start[1], 9.0);  // 1 -> 0 nominal
}

TEST(NetworkTrace, NullAndEmptyTraceReduceBitwise) {
  const auto c = random_case(42);
  const Schedule plain = simulate(c.graph, c.network, c.placement, kLat);

  NetworkTrace empty;
  SimOptions opt;
  opt.trace = &empty;
  expect_schedules_bitwise_equal(
      plain, simulate(c.graph, c.network, c.placement, kLat, opt));

  // A trace whose schedules all have zero segments is empty too.
  NetworkTrace hollow;
  hollow.link(0, 1);
  opt.trace = &hollow;
  expect_schedules_bitwise_equal(
      plain, simulate(c.graph, c.network, c.placement, kLat, opt));
}

TEST(NetworkTrace, ValidationNamesLinkAndField) {
  DeviceNetwork n = two_devices();
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({1.0, -2.0, 0.0, 0.0});
  try {
    validate_network_trace(trace, n);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bandwidth_factor"), std::string::npos) << what;
    EXPECT_NE(what.find("-2"), std::string::npos) << what;
  }

  NetworkTrace unsorted;
  unsorted.link(0, 1).segments.push_back({5.0, 1.0, 0.0, 0.0});
  unsorted.link(0, 1).segments.push_back({3.0, 1.0, 0.0, 0.0});
  EXPECT_THROW(validate_network_trace(unsorted, n),
               std::invalid_argument);

  NetworkTrace self;
  self.link(1, 1).segments.push_back({1.0, 1.0, 0.0, 0.0});
  EXPECT_THROW(validate_network_trace(self, n), std::invalid_argument);

  NetworkTrace full_drop;
  full_drop.link(0, 1).segments.push_back({1.0, 1.0, 0.0, 1.0});
  EXPECT_THROW(validate_network_trace(full_drop, n),
               std::invalid_argument);

  // simulate() validates against its own device count.
  NetworkTrace out_of_range;
  out_of_range.link(0, 7).segments.push_back({1.0, 1.0, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &out_of_range;
  EXPECT_THROW(simulate(chain3(), n, alternating3(), kLat, opt),
               std::invalid_argument);
}

TEST(NetworkTrace, OracleMatchesSimulatorUnderTrace) {
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({3.0, 0.5, 0.5, 0.2});
  trace.link(1, 0).segments.push_back({4.0, 2.0, 0.0, 0.0});
  trace.link(1, 0).segments.push_back({12.0, 0.25, 1.0, 0.4});
  SimOptions opt;
  opt.trace = &trace;
  const Schedule sim = simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  const Schedule ref =
      oracle_simulate(chain3(), two_devices(), alternating3(), kLat, opt);
  expect_schedules_bitwise_equal(sim, ref);
  CheckOptions check;
  check.trace = &trace;
  const InvariantReport r =
      check_schedule(chain3(), two_devices(), alternating3(), kLat, sim, check);
  EXPECT_TRUE(r.ok()) << r.summary();
}

// ---------------------------------------------------------------------------
// Loss-aware latency model

TEST(LossAware, InflatesOnlyWireTime) {
  DeviceNetwork n = two_devices();
  LossAwareLatencyModel loss(kLat, n.num_devices());
  loss.set_drop(0, 1, 0.5);
  const TaskGraph g = chain3();
  // Base comm of edge 0 is 1 + 8/2 = 5 with startup 1; the lossy time is
  // 1 + 4/(1-0.5) = 9.
  EXPECT_DOUBLE_EQ(loss.comm_time(g, n, 0, 0, 1), 9.0);
  // The reverse direction and local transfers are untouched.
  EXPECT_DOUBLE_EQ(loss.comm_time(g, n, 0, 1, 0), kLat.comm_time(g, n, 0, 1, 0));
  EXPECT_DOUBLE_EQ(loss.comm_time(g, n, 0, 0, 0), kLat.comm_time(g, n, 0, 0, 0));
  // Compute times pass through.
  EXPECT_DOUBLE_EQ(loss.compute_time(g, n, 1, 1), kLat.compute_time(g, n, 1, 1));
}

TEST(LossAware, ZeroDropReducesBitwise) {
  const auto c = random_case(43);
  const LossAwareLatencyModel zero(kLat, c.network.num_devices());
  expect_schedules_bitwise_equal(simulate(c.graph, c.network, c.placement, kLat),
                                 simulate(c.graph, c.network, c.placement, zero));
}

TEST(LossAware, SetDropValidates) {
  LossAwareLatencyModel loss(kLat, 2);
  EXPECT_THROW(loss.set_drop(0, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(loss.set_drop(0, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(loss.set_drop(0, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(loss.set_drop(0, 1, -0.1), std::invalid_argument);
  loss.set_drop(0, 1, 0.0);
  loss.set_drop(0, 1, 0.999);
}

// ---------------------------------------------------------------------------
// Shared-link contention

TEST(SharedLinks, RoutesMatchTopologyProjection) {
  // Line d0 - d1 - d2: the 0 <-> 2 route crosses both physical links, in
  // path order, and one-hop routes cross exactly their own link.
  const std::vector<PhysicalLink> links = {{0, 1, 2.0, 1.0, true},
                                           {1, 2, 2.0, 1.0, true}};
  const SharedLinkMap map = build_shared_link_map(3, links);
  EXPECT_EQ(map.num_links, 2);
  EXPECT_EQ(map.links_on(0, 1), (std::vector<int>{0}));
  EXPECT_EQ(map.links_on(0, 2), (std::vector<int>{0, 1}));
  EXPECT_EQ(map.links_on(2, 0), (std::vector<int>{1, 0}));
  EXPECT_TRUE(map.links_on(1, 1).empty());
}

TEST(SharedLinks, ContendingTransfersQueue) {
  // Fork t0 -> {t1, t2} on the line topology (golden case 13): the 0 -> 2
  // transfer queues behind the 0 -> 1 transfer on physical link 0.
  TaskGraph g;
  g.add_task(Task{.compute = 2.0});
  g.add_task(Task{.compute = 4.0});
  g.add_task(Task{.compute = 4.0});
  g.add_edge(0, 1, 8.0);
  g.add_edge(0, 2, 8.0);
  DeviceNetwork n(3);
  const std::vector<PhysicalLink> links = {{0, 1, 2.0, 1.0, true},
                                           {1, 2, 2.0, 1.0, true}};
  apply_topology(n, links);
  const SharedLinkMap map = build_shared_link_map(3, links);
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 2);

  SimOptions opt;
  opt.shared_links = &map;
  const Schedule s = simulate(g, n, p, kLat, opt);
  EXPECT_DOUBLE_EQ(s.edge_start[1], 7.0);  // waits for link 0, free at 7
  EXPECT_DOUBLE_EQ(s.edge_finish[1], 13.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].finish, 17.0);
  // Without contention both transfers start at t = 2.
  const Schedule free = simulate(g, n, p, kLat);
  EXPECT_DOUBLE_EQ(free.edge_start[1], 2.0);

  expect_schedules_bitwise_equal(s, oracle_simulate(g, n, p, kLat, opt));
  CheckOptions check;
  check.shared_links = &map;
  const InvariantReport r = check_schedule(g, n, p, kLat, s, check);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(SharedLinks, EmptyMapReducesBitwiseAndSizeIsChecked) {
  const auto c = random_case(44);
  const SharedLinkMap none = build_shared_link_map(c.network.num_devices(), {});
  SimOptions opt;
  opt.shared_links = &none;
  expect_schedules_bitwise_equal(
      simulate(c.graph, c.network, c.placement, kLat),
      simulate(c.graph, c.network, c.placement, kLat, opt));

  const SharedLinkMap wrong = build_shared_link_map(2, {});
  opt.shared_links = &wrong;
  EXPECT_THROW(simulate(c.graph, c.network, c.placement, kLat, opt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault-path guards

TEST(Faults, RejectsTraceAndSharedLinks) {
  NetworkTrace trace;
  trace.link(0, 1).segments.push_back({1.0, 0.5, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &trace;
  EXPECT_THROW(simulate_with_faults(chain3(), two_devices(), alternating3(), kLat,
                                    FaultPlan{}, opt),
               std::invalid_argument);

  const SharedLinkMap map = build_shared_link_map(2, {{0, 1, 2.0, 1.0, true}});
  SimOptions opt2;
  opt2.shared_links = &map;
  EXPECT_THROW(simulate_with_faults(chain3(), two_devices(), alternating3(), kLat,
                                    FaultPlan{}, opt2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Continuous churn

eval::ChurnScript tiny_script() {
  casestudy::ChurnScriptParams cp;
  cp.mobility.num_vehicles = 4;
  cp.epochs = 6;
  return casestudy::generate_churn_script(cp);
}

TEST(Churn, ScriptGeneratorIsDeterministicAndValid) {
  const eval::ChurnScript a = tiny_script();
  const eval::ChurnScript b = tiny_script();
  validate_churn_script(a);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t t = 0; t < a.epochs.size(); ++t) {
    EXPECT_EQ(a.epochs[t].up, b.epochs[t].up) << "epoch " << t;
    EXPECT_EQ(a.epochs[t].time, b.epochs[t].time) << "epoch " << t;
    for (int k = 0; k < a.epochs[t].network.num_devices(); ++k) {
      for (int l = 0; l < a.epochs[t].network.num_devices(); ++l) {
        EXPECT_EQ(a.epochs[t].network.bandwidth(k, l),
                  b.epochs[t].network.bandwidth(k, l));
      }
    }
  }
  // Base devices are always up; the universe never changes size.
  for (const eval::ChurnEpoch& e : a.epochs) {
    EXPECT_EQ(static_cast<int>(e.up.size()), 3 + 4);
    for (int b2 = 0; b2 < 3; ++b2) EXPECT_TRUE(e.up[b2]);
  }
}

TEST(Churn, ScriptValidationNamesTheEpoch) {
  eval::ChurnScript script;
  EXPECT_THROW(validate_churn_script(script), std::invalid_argument);

  script = tiny_script();
  script.epochs[2].time = script.epochs[1].time - 1.0;
  try {
    validate_churn_script(script);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("epoch 2"), std::string::npos) << e.what();
  }

  script = tiny_script();
  std::fill(script.epochs[3].up.begin(), script.epochs[3].up.end(), char(0));
  EXPECT_THROW(validate_churn_script(script), std::invalid_argument);

  script = tiny_script();
  script.epochs[1].up.pop_back();
  EXPECT_THROW(validate_churn_script(script), std::invalid_argument);
}

eval::ChurnReport run_churn(int threads, std::uint64_t seed = 5) {
  std::mt19937_64 rng(3);
  TaskGraphParams gp;
  gp.num_tasks = 10;
  const TaskGraph g = generate_task_graph(gp, rng);
  const eval::ChurnScript script = tiny_script();
  RandomTaskEftPolicy eft;
  RandomWalkPolicy walk;
  eval::ChurnOptions opt;
  opt.seed = seed;
  opt.threads = threads;
  return eval::evaluate_churn(g, script, kLat,
                              {{eft.name(), &eft}, {walk.name(), &walk}}, opt);
}

void expect_reports_equal(const eval::ChurnReport& a, const eval::ChurnReport& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    EXPECT_EQ(a.rows[r].placer, b.rows[r].placer);
    ASSERT_EQ(a.rows[r].cells.size(), b.rows[r].cells.size());
    for (std::size_t t = 0; t < a.rows[r].cells.size(); ++t) {
      const eval::ChurnCell& x = a.rows[r].cells[t];
      const eval::ChurnCell& y = b.rows[r].cells[t];
      EXPECT_EQ(x.makespan_before, y.makespan_before) << a.rows[r].placer << " " << t;
      EXPECT_EQ(x.makespan_after, y.makespan_after) << a.rows[r].placer << " " << t;
      EXPECT_EQ(x.stranded, y.stranded);
      EXPECT_EQ(x.moved, y.moved);
      EXPECT_EQ(x.repair_steps, y.repair_steps);
      EXPECT_EQ(x.recoverable, y.recoverable);
    }
  }
}

TEST(Churn, ReportIsSeedReproducibleAndThreadCountIndependent) {
  const eval::ChurnReport serial = run_churn(1);
  expect_reports_equal(serial, run_churn(1));
  expect_reports_equal(serial, run_churn(4));
}

TEST(Churn, ReportHasReferenceRowsAndPlausibleShape) {
  const eval::ChurnReport report = run_churn(1);
  ASSERT_EQ(report.rows.size(), 4u);  // 2 policies + static + HEFT
  EXPECT_EQ(report.rows[2].placer, "static");
  EXPECT_EQ(report.rows[3].placer, "HEFT");
  for (const eval::ChurnRow& row : report.rows) {
    ASSERT_EQ(static_cast<int>(row.cells.size()), report.num_epochs);
    for (const eval::ChurnCell& cell : row.cells) {
      if (cell.recoverable && cell.makespan_after < 1e300) {
        EXPECT_GT(cell.makespan_after, 0.0);
      }
    }
  }
  // The static row never spends repair steps after epoch 0.
  for (std::size_t t = 1; t < report.rows[2].cells.size(); ++t) {
    EXPECT_EQ(report.rows[2].cells[t].repair_steps, 0);
  }
  // HEFT reschedules all |V| tasks every recoverable epoch.
  for (const eval::ChurnCell& cell : report.rows[3].cells) {
    if (cell.recoverable) EXPECT_EQ(cell.repair_steps, 10);
  }
  EXPECT_FALSE(eval::format_churn_report(report).empty());
}

TEST(Churn, DifferentSeedsDiffer) {
  // Not a hard guarantee for every pair of seeds, but these do differ - a
  // frozen RNG wiring bug would make them identical.
  const eval::ChurnReport a = run_churn(1, 5);
  const eval::ChurnReport b = run_churn(1, 99);
  bool any_diff = false;
  for (std::size_t t = 0; t < a.rows[0].cells.size(); ++t) {
    any_diff = any_diff || a.rows[0].cells[t].makespan_after !=
                               b.rows[0].cells[t].makespan_after;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace giph
