#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "testutil.hpp"

namespace giph {
namespace {

using testutil::alternating3;
using testutil::chain3;
using testutil::expect_schedules_bitwise_equal;
using testutil::two_devices;

const DefaultLatencyModel kLat;

TEST(Faults, EmptyPlanReducesToSimulateNoiseFree) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  const Schedule expected = simulate(g, n, p, kLat);
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, FaultPlan{});
  ASSERT_TRUE(r.completed());
  expect_schedules_bitwise_equal(r.schedule, expected);
}

TEST(Faults, EmptyPlanReducesToSimulateUnderNoise) {
  const auto [g, n, p] = testutil::random_case(99);

  // Identical noise draws require identical engine states and draw order.
  std::mt19937_64 rng_a(1234), rng_b(1234);
  const Schedule expected = simulate(g, n, p, kLat, SimOptions{0.3, &rng_a});
  const FaultSimResult r =
      simulate_with_faults(g, n, p, kLat, FaultPlan{}, SimOptions{0.3, &rng_b});
  ASSERT_TRUE(r.completed());
  expect_schedules_bitwise_equal(r.schedule, expected);
}

TEST(Faults, DeterministicAcrossRuns) {
  const auto [g, n, p] = testutil::random_case(7, 20, 6);

  std::mt19937_64 plan_rng_a(42), plan_rng_b(42);
  FaultPlanParams fp;
  fp.horizon = 50.0;
  fp.crashes = 1;
  fp.slowdowns = 2;
  fp.link_degrades = 2;
  const FaultPlan plan_a = generate_fault_plan(n, fp, plan_rng_a);
  const FaultPlan plan_b = generate_fault_plan(n, fp, plan_rng_b);
  ASSERT_EQ(plan_a.events.size(), plan_b.events.size());
  for (std::size_t i = 0; i < plan_a.events.size(); ++i) {
    EXPECT_EQ(describe(plan_a.events[i]), describe(plan_b.events[i]));
  }

  // Same seed + same plan: bitwise-identical degraded schedules.
  std::mt19937_64 sim_a(5), sim_b(5);
  const FaultSimResult a =
      simulate_with_faults(g, n, p, kLat, plan_a, SimOptions{0.2, &sim_a});
  const FaultSimResult b =
      simulate_with_faults(g, n, p, kLat, plan_b, SimOptions{0.2, &sim_b});
  EXPECT_EQ(a.stranded, b.stranded);
  EXPECT_EQ(a.failed_devices, b.failed_devices);
  expect_schedules_bitwise_equal(a.schedule, b.schedule);
}

TEST(Faults, CrashStrandsRunningAndDownstreamTasks) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Task 1 runs on device 1 during [7, 9]; crash device 1 at t = 8.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 8.0,
                                   .device = 1});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  EXPECT_FALSE(r.completed());
  EXPECT_EQ(r.stranded, (std::vector<int>{1, 2}));  // task 2 starved of input
  EXPECT_EQ(r.failed_devices, std::vector<int>{1});
  // Task 0 completed before the crash.
  EXPECT_DOUBLE_EQ(r.schedule.tasks[0].finish, 2.0);
  EXPECT_LT(r.schedule.tasks[1].finish, 0.0);
  EXPECT_LT(r.schedule.tasks[2].finish, 0.0);
}

TEST(Faults, TaskFinishingExactlyAtCrashTimeCompletes) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 9.0,
                                   .device = 1});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  // Task 1 finishes exactly at t = 9 and its output is already on the wire;
  // the whole chain completes.
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 24.0);
}

TEST(Faults, GracefulLeaveLetsRunningTaskFinish) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceLeave, .time = 8.0,
                                   .device = 1});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  // Leave at t = 8 while task 1 runs [7, 9]: it finishes and sends its
  // output, so the chain still completes.
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 24.0);
  EXPECT_EQ(r.failed_devices, std::vector<int>{1});
}

TEST(Faults, LeaveStrandsQueuedTasks) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Leave before task 1 starts (it starts at t = 7): stranded.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceLeave, .time = 5.0,
                                   .device = 1});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  EXPECT_EQ(r.stranded, (std::vector<int>{1, 2}));
}

TEST(Faults, PermanentSlowdownStretchesRemainingWork) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Slowdown x3 of device 1 at t = 8: task 1 ran [7, 9], one unit of work
  // remains at t = 8 and now takes 3, so it finishes at 11. Everything
  // downstream shifts by 2: edge arrives 11 + 9 = 20, task 2 runs [20, 26].
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kSlowdown, .time = 8.0,
                                   .device = 1, .factor = 3.0});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.tasks[1].finish, 11.0);
  EXPECT_DOUBLE_EQ(r.schedule.tasks[2].start, 20.0);
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 26.0);
}

TEST(Faults, TransientSlowdownRevertsAtUntil) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Slowdown x3 during [8, 9.5]: at t = 8 one unit of remaining work is
  // stretched to 3 (finish 11); at t = 9.5, 1.5 of stretched work remains,
  // shrinking back to 0.5 - task 1 finishes at 10, a 1-unit total delay.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kSlowdown, .time = 8.0,
                                   .device = 1, .factor = 3.0, .until = 9.5});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.tasks[1].finish, 10.0);
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 25.0);
}

TEST(Faults, LinkDegradeStretchesTransfersOnTheLink) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Degrade link 1 -> 0 by x2 from t = 0: edge 1 (16 bytes, nominal 9) takes
  // 18, so task 2 starts at 9 + 18 = 27. Edge 0 -> 1 is unaffected.
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kLinkDegrade, .time = 0.0,
                                   .link_src = 1, .link_dst = 0, .factor = 2.0});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.tasks[1].start, 7.0);
  EXPECT_DOUBLE_EQ(r.schedule.tasks[2].start, 27.0);
}

TEST(Faults, LinkDegradeRescalesInFlightTransfer) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Edge 1 flies 1 -> 0 during [9, 18]. Degrade x2 at t = 13.5: half the
  // transfer remains (4.5 nominal), stretched to 9 - arrival 22.5, task 2
  // runs [22.5, 28.5].
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kLinkDegrade, .time = 13.5,
                                   .link_src = 1, .link_dst = 0, .factor = 2.0});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.edge_finish[1], 22.5);
  EXPECT_DOUBLE_EQ(r.schedule.tasks[2].finish, 28.5);
}

TEST(Faults, LinkDegradeDuringStartupRescalesOnlyWireTime) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  // Edge 1 (16 bytes) flies 1 -> 0 during [9, 18]: startup delay 1 commits
  // the window [9, 10], the wire phase runs [10, 18]. Degrade x2 at t = 9.5,
  // *inside* the startup window: only the wire time may stretch, so the
  // rescale anchors at the wire begin t = 10 and doubles the full 8 units of
  // wire time - arrival 10 + 16 = 26, task 2 runs [26, 32]. (Anchoring at
  // the event time 9.5 would stretch 8.5 units, a spurious 26.5.)
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kLinkDegrade, .time = 9.5,
                                   .link_src = 1, .link_dst = 0, .factor = 2.0});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_TRUE(r.completed());
  EXPECT_DOUBLE_EQ(r.schedule.edge_finish[1], 26.0);
  EXPECT_DOUBLE_EQ(r.schedule.tasks[2].start, 26.0);
  EXPECT_DOUBLE_EQ(r.schedule.tasks[2].finish, 32.0);
}

TEST(Faults, ValidationErrorsNameTheEventAndField) {
  const DeviceNetwork n = two_devices();
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 1.0,
                                   .device = 9});
  try {
    validate_fault_plan(plan, n);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fault plan event 0"), std::string::npos) << what;
    EXPECT_NE(what.find("9"), std::string::npos) << what;
  }
}

TEST(Faults, ValidationRejectsBadPlans) {
  const DeviceNetwork n = two_devices();
  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 1.0,
                                   .device = 9});
  EXPECT_THROW(validate_fault_plan(plan, n), std::invalid_argument);

  plan.events.clear();
  plan.events.push_back(FaultEvent{.kind = FaultKind::kSlowdown, .time = 1.0,
                                   .device = 0, .factor = -2.0});
  EXPECT_THROW(validate_fault_plan(plan, n), std::invalid_argument);

  plan.events.clear();
  plan.events.push_back(FaultEvent{.kind = FaultKind::kLinkDegrade, .time = 1.0,
                                   .link_src = 0, .link_dst = 0, .factor = 2.0});
  EXPECT_THROW(validate_fault_plan(plan, n), std::invalid_argument);

  plan.events.clear();
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = -1.0,
                                   .device = 0});
  EXPECT_THROW(validate_fault_plan(plan, n), std::invalid_argument);

  // A device joined earlier in time may be referenced by later events.
  plan.events.clear();
  FaultEvent join{.kind = FaultKind::kDeviceJoin, .time = 1.0};
  join.joined.speed = 1.0;
  plan.events.push_back(join);
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 2.0,
                                   .device = 2});
  EXPECT_NO_THROW(validate_fault_plan(plan, n));
}

TEST(Faults, NoiseWithoutRngThrows) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  EXPECT_THROW(
      simulate_with_faults(g, n, alternating3(), kLat, FaultPlan{}, SimOptions{0.5, nullptr}),
      std::invalid_argument);
}

TEST(Faults, ParseFaultPlanRoundTrip) {
  const FaultPlan plan =
      parse_fault_plan("crash:2@30,leave:0@45,slow:1@10x3:60,link:0-3@20x4+5,join@50");
  ASSERT_EQ(plan.events.size(), 5u);
  // Events come back sorted by time.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSlowdown);
  EXPECT_EQ(plan.events[0].device, 1);
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 3.0);
  EXPECT_DOUBLE_EQ(plan.events[0].until, 60.0);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(plan.events[1].link_src, 0);
  EXPECT_EQ(plan.events[1].link_dst, 3);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.events[1].delay_add, 5.0);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kDeviceCrash);
  EXPECT_EQ(plan.events[2].device, 2);
  EXPECT_DOUBLE_EQ(plan.events[2].time, 30.0);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kDeviceLeave);
  EXPECT_EQ(plan.events[4].kind, FaultKind::kDeviceJoin);

  EXPECT_THROW(parse_fault_plan("crash:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:1@5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("explode:1@5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("link:1@5x2"), std::invalid_argument);
}

TEST(Faults, PostFaultNetworkRemovesCrashedAndAddsJoined) {
  DeviceNetwork n = two_devices();
  FaultPlan plan;
  FaultEvent join{.kind = FaultKind::kDeviceJoin, .time = 1.0};
  join.joined.speed = 4.0;
  join.join_bandwidth = 8.0;
  join.join_delay = 0.5;
  plan.events.push_back(join);
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 2.0,
                                   .device = 0});
  plan.events.push_back(FaultEvent{.kind = FaultKind::kSlowdown, .time = 3.0,
                                   .device = 1, .factor = 2.0});  // permanent

  const PostFaultNetwork pf = post_fault_network(n, plan);
  ASSERT_EQ(pf.network.num_devices(), 2);  // device 1 + the joined device
  EXPECT_EQ(pf.old_to_new, (std::vector<int>{-1, 0, 1}));
  EXPECT_EQ(pf.new_to_old, (std::vector<int>{1, 2}));
  // Permanent slowdown halves the surviving device's speed.
  EXPECT_DOUBLE_EQ(pf.network.device(0).speed, 1.0);
  EXPECT_DOUBLE_EQ(pf.network.device(1).speed, 4.0);
  EXPECT_DOUBLE_EQ(pf.network.bandwidth(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(pf.network.delay(0, 1), 0.5);

  Placement p(2);
  p.set(0, 0);
  p.set(1, 1);
  const Placement remapped = remap_placement(p, pf.old_to_new);
  EXPECT_EQ(remapped.device_of(0), -1);  // stranded
  EXPECT_EQ(remapped.device_of(1), 0);
}

TEST(Faults, RemapPinnedLostDeviceBecomesInfeasible) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .pinned = 0});
  g.add_task(Task{.compute = 1.0, .pinned = 1});
  const std::vector<int> old_to_new{-1, 0};
  const TaskGraph out = remap_pinned(g, old_to_new);
  EXPECT_GT(out.task(0).pinned, 1'000'000);  // out of range: no feasible device
  EXPECT_EQ(out.task(1).pinned, 0);

  DeviceNetwork survivor;
  survivor.add_device(Device{.speed = 1.0});
  EXPECT_THROW(feasible_sets(out, survivor), std::runtime_error);
}

TEST(Faults, CrashAtTimeZeroStrandsEverythingOnDevice) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);

  FaultPlan plan;
  plan.events.push_back(FaultEvent{.kind = FaultKind::kDeviceCrash, .time = 0.0,
                                   .device = 0});
  const FaultSimResult r = simulate_with_faults(g, n, p, kLat, plan);
  EXPECT_EQ(r.stranded, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 0.0);
}

TEST(Faults, GeneratedPlanSparesOneDevice) {
  std::mt19937_64 rng(11);
  const NetworkParams np{.num_devices = 3};
  const DeviceNetwork n = generate_device_network(np, rng);
  FaultPlanParams fp;
  fp.horizon = 10.0;
  fp.crashes = 99;  // asks for more than available
  const FaultPlan plan = generate_fault_plan(n, fp, rng);
  int removals = 0;
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::kDeviceCrash || e.kind == FaultKind::kDeviceLeave) {
      ++removals;
    }
  }
  EXPECT_EQ(removals, 2);  // one device always survives
}

}  // namespace
}  // namespace giph
