#include <gtest/gtest.h>

#include "gen/dataset.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/placement.hpp"

namespace giph {
namespace {

// ---- task graph generator: property sweep over the parameter grid ---------

struct GenCase {
  int num_tasks;
  double alpha;
  double het;
  std::uint64_t seed;
};

class TaskGraphGenProperties : public ::testing::TestWithParam<GenCase> {};

TEST_P(TaskGraphGenProperties, StructuralInvariants) {
  const GenCase c = GetParam();
  TaskGraphParams p;
  p.num_tasks = c.num_tasks;
  p.alpha = c.alpha;
  p.het_compute = c.het;
  p.het_bytes = c.het;
  std::mt19937_64 rng(c.seed);
  for (int rep = 0; rep < 10; ++rep) {
    const TaskGraph g = generate_task_graph(p, rng);
    EXPECT_EQ(g.num_tasks(), c.num_tasks);
    EXPECT_TRUE(g.is_dag());
    if (c.num_tasks >= 2) {
      EXPECT_EQ(g.entry_tasks().size(), 1u) << "single entry";
      EXPECT_EQ(g.exit_tasks().size(), 1u) << "single exit";
    }
    for (int v = 0; v < g.num_tasks(); ++v) {
      EXPECT_GE(g.task(v).compute, p.mean_compute * (1 - p.het_compute) - 1e-9);
      EXPECT_LE(g.task(v).compute, p.mean_compute * (1 + p.het_compute) + 1e-9);
    }
    for (const DataLink& e : g.edges()) {
      EXPECT_GE(e.bytes, p.mean_bytes * (1 - p.het_bytes) - 1e-9);
      EXPECT_LE(e.bytes, p.mean_bytes * (1 + p.het_bytes) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaskGraphGenProperties,
    ::testing::Values(GenCase{1, 1.0, 0.5, 1}, GenCase{2, 1.0, 0.5, 2},
                      GenCase{3, 0.5, 0.1, 3}, GenCase{8, 0.5, 0.3, 4},
                      GenCase{8, 2.0, 0.3, 5}, GenCase{20, 1.0, 0.5, 6},
                      GenCase{40, 0.4, 0.9, 7}, GenCase{40, 2.0, 0.0, 8},
                      GenCase{100, 1.0, 0.5, 9}));

TEST(TaskGraphGen, ShapeParameterControlsDepth) {
  TaskGraphParams narrow, wide;
  narrow.num_tasks = wide.num_tasks = 36;
  narrow.alpha = 0.4;  // mean depth = 15
  wide.alpha = 2.0;    // mean depth = 3
  std::mt19937_64 rng(11);
  double narrow_depth = 0.0, wide_depth = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    narrow_depth += generate_task_graph(narrow, rng).depth();
    wide_depth += generate_task_graph(wide, rng).depth();
  }
  EXPECT_GT(narrow_depth / reps, 1.8 * wide_depth / reps);
}

TEST(TaskGraphGen, ConnectionProbabilityAddsEdges) {
  TaskGraphParams sparse, dense;
  sparse.num_tasks = dense.num_tasks = 20;
  sparse.p_connect = 0.0;
  dense.p_connect = 0.8;
  std::mt19937_64 rng(13);
  double se = 0.0, de = 0.0;
  for (int i = 0; i < 20; ++i) {
    se += generate_task_graph(sparse, rng).num_edges();
    de += generate_task_graph(dense, rng).num_edges();
  }
  EXPECT_GT(de, 2.0 * se);
}

TEST(TaskGraphGen, HwRequirementsAreSingleKinds) {
  TaskGraphParams p;
  p.num_tasks = 50;
  p.p_task_requires = 1.0;
  p.num_hw_kinds = 3;
  std::mt19937_64 rng(17);
  const TaskGraph g = generate_task_graph(p, rng);
  for (int v = 0; v < g.num_tasks(); ++v) {
    const HwMask m = g.task(v).requires_hw;
    EXPECT_NE(m, 0u);
    EXPECT_EQ(m & (m - 1), 0u) << "power of two";
    EXPECT_LT(m, HwMask{1} << 3);
  }
}

TEST(TaskGraphGen, InvalidParamsThrow) {
  std::mt19937_64 rng(1);
  TaskGraphParams p;
  p.num_tasks = 0;
  EXPECT_THROW(generate_task_graph(p, rng), std::invalid_argument);
  p.num_tasks = 5;
  p.alpha = 0.0;
  EXPECT_THROW(generate_task_graph(p, rng), std::invalid_argument);
}

TEST(TaskGraphGen, DeterministicGivenSeed) {
  TaskGraphParams p;
  p.num_tasks = 15;
  std::mt19937_64 a(42), b(42);
  const TaskGraph g1 = generate_task_graph(p, a);
  const TaskGraph g2 = generate_task_graph(p, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (int e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).src, g2.edge(e).src);
    EXPECT_EQ(g1.edge(e).dst, g2.edge(e).dst);
    EXPECT_EQ(g1.edge(e).bytes, g2.edge(e).bytes);
  }
}

// ---- device network generator ---------------------------------------------

class NetworkGenProperties : public ::testing::TestWithParam<int> {};

TEST_P(NetworkGenProperties, RangesAndSymmetry) {
  NetworkParams p;
  p.num_devices = GetParam();
  std::mt19937_64 rng(p.num_devices);
  const DeviceNetwork n = generate_device_network(p, rng);
  EXPECT_EQ(n.num_devices(), p.num_devices);
  for (int k = 0; k < n.num_devices(); ++k) {
    EXPECT_GE(n.device(k).speed, p.mean_speed * (1 - p.het_speed) - 1e-9);
    EXPECT_LE(n.device(k).speed, p.mean_speed * (1 + p.het_speed) + 1e-9);
    for (int l = 0; l < n.num_devices(); ++l) {
      if (k == l) continue;
      EXPECT_EQ(n.bandwidth(k, l), n.bandwidth(l, k));
      EXPECT_EQ(n.delay(k, l), n.delay(l, k));
      EXPECT_GE(n.bandwidth(k, l), p.mean_bandwidth * (1 - p.het_bandwidth) - 1e-9);
      EXPECT_LE(n.bandwidth(k, l), p.mean_bandwidth * (1 + p.het_bandwidth) + 1e-9);
      EXPECT_GE(n.delay(k, l), 0.0);
      EXPECT_LE(n.delay(k, l), 2.0 * p.mean_delay + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NetworkGenProperties, ::testing::Values(1, 2, 5, 16));

TEST(NetworkGen, EnsureFeasibleAddsMissingSupport) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b100});
  DeviceNetwork n;
  n.add_device(Device{.supports_hw = 0b011});
  std::mt19937_64 rng(3);
  EXPECT_EQ(ensure_feasible(g, n, rng), 1);
  EXPECT_FALSE(feasible_devices(g, n, 0).empty());
  EXPECT_EQ(ensure_feasible(g, n, rng), 0);  // already feasible
}

TEST(NetworkGen, EnsureAllKindsCoversEveryKind) {
  NetworkParams p;
  p.num_devices = 4;
  p.p_hw_support = 0.0;  // no device supports anything
  std::mt19937_64 rng(5);
  DeviceNetwork n = generate_device_network(p, rng);
  EXPECT_EQ(ensure_all_kinds(n, 4, rng), 4);
  for (int b = 0; b < 4; ++b) {
    EXPECT_FALSE(n.feasible_devices(HwMask{1} << b).empty());
  }
}

TEST(Dataset, GenerateDatasetProducesFeasiblePairs) {
  std::mt19937_64 rng(9);
  const Dataset ds = generate_dataset(default_graph_parameter_grid(),
                                      default_network_parameter_grid(), 12, 6, rng);
  EXPECT_EQ(ds.graphs.size(), 12u);
  EXPECT_EQ(ds.networks.size(), 6u);
  for (const TaskGraph& g : ds.graphs) {
    for (const DeviceNetwork& n : ds.networks) {
      EXPECT_NO_THROW(feasible_sets(g, n));
    }
  }
}

}  // namespace
}  // namespace giph
