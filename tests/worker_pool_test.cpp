#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace giph::util {
namespace {

TEST(WorkerPool, SubmittedTasksAllExecuteExactlyOnce) {
  WorkerPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&executed](int) { executed.fetch_add(1); });
  }
  pool.stop_and_drain();
  EXPECT_EQ(executed.load(), 200);
  EXPECT_EQ(pool.pending_tasks(), 0);
}

TEST(WorkerPool, SingleThreadedPoolRunsSubmitsInlineAsWorkerZero) {
  WorkerPool pool(1);
  std::vector<int> workers;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&workers](int worker) { workers.push_back(worker); });
  }
  // Inline execution: already done before stop_and_drain.
  ASSERT_EQ(workers.size(), 5u);
  for (const int w : workers) EXPECT_EQ(w, 0);
  pool.stop_and_drain();
}

TEST(WorkerPool, StopAndDrainRejectsLateSubmits) {
  WorkerPool pool(2);
  std::atomic<int> executed{0};
  pool.submit([&executed](int) { executed.fetch_add(1); });
  pool.stop_and_drain();
  EXPECT_FALSE(pool.try_submit([&executed](int) { executed.fetch_add(1); }));
  EXPECT_THROW(pool.submit([](int) {}), std::runtime_error);
  EXPECT_EQ(executed.load(), 1);
}

TEST(WorkerPool, StopAndDrainRethrowsFirstTaskExceptionThenRecovers) {
  WorkerPool pool(1);  // inline: deterministic "first"
  pool.submit([](int) { throw std::runtime_error("task failed"); });
  pool.submit([](int) {});  // later tasks still run
  EXPECT_THROW(pool.stop_and_drain(), std::runtime_error);
  EXPECT_NO_THROW(pool.stop_and_drain());  // error cleared; idempotent

  // run() fan-outs remain usable after a drain.
  std::atomic<int> sum{0};
  pool.run(10, [&sum](int index, int) { sum.fetch_add(index); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(WorkerPool, QueuedTasksInterleaveWithRunFanouts) {
  WorkerPool pool(3);
  std::atomic<int> queued{0};
  std::atomic<int> fanned{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) pool.submit([&queued](int) { queued.fetch_add(1); });
    pool.run(8, [&fanned](int, int) { fanned.fetch_add(1); });
  }
  pool.stop_and_drain();
  EXPECT_EQ(queued.load(), 50);
  EXPECT_EQ(fanned.load(), 80);
}

// The shutdown-vs-submit race (run under TSan in the -DGIPH_TSAN tree):
// several threads hammer try_submit while the main thread stops the pool.
// Every accepted task must execute exactly once, every rejected submit must
// fail cleanly, and nothing may race or deadlock.
TEST(WorkerPool, ShutdownVersusSubmitRaceLosesNoTasks) {
  for (int round = 0; round < 20; ++round) {
    WorkerPool pool(3);
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) {
          if (pool.try_submit([&executed](int) { executed.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    go.store(true);
    pool.stop_and_drain();
    for (auto& t : submitters) t.join();
    // Drain after the submitters finish: accepted-after-drain tasks (there
    // are none by contract, but the count must still balance).
    pool.stop_and_drain();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(WorkerPool, DestructorDrainsPendingTasks) {
  std::atomic<int> executed{0};
  {
    WorkerPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&executed](int) { executed.fetch_add(1); });
    }
  }  // ~WorkerPool must run everything accepted
  EXPECT_EQ(executed.load(), 64);
}

}  // namespace
}  // namespace giph::util
