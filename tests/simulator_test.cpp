#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "testutil.hpp"

namespace giph {
namespace {

using testutil::alternating3;
using testutil::chain3;
using testutil::two_devices;

const DefaultLatencyModel kLat;

TEST(Simulator, ChainAcrossDevicesHandComputed) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  const Placement p = alternating3();

  const Schedule s = simulate(g, n, p, kLat);
  // t0: [0, 2] on d0. Edge 0->1: 1 + 8/2 = 5, arrives 7.
  // t1: [7, 9] on d1 (w = 4/2). Edge 1->2: 1 + 16/2 = 9, arrives 18.
  // t2: [18, 24] on d0.
  EXPECT_DOUBLE_EQ(s.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[0].finish, 2.0);
  EXPECT_DOUBLE_EQ(s.edge_start[0], 2.0);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 7.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 7.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].finish, 9.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 18.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].finish, 24.0);
  EXPECT_DOUBLE_EQ(s.makespan, 24.0);
}

TEST(Simulator, LocalCommunicationIsFree) {
  const TaskGraph g = chain3();
  const DeviceNetwork n = two_devices();
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  EXPECT_DOUBLE_EQ(simulate(g, n, p, kLat).makespan, 12.0);
}

TEST(Simulator, FifoQueueRunsInRunnableOrder) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 2.0});
  g.add_task(Task{.compute = 3.0});
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 2, 5.0);
  const DeviceNetwork n = two_devices();
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);

  const Schedule s = simulate(g, n, p, kLat);
  // Both children become runnable at t = 1 (local transfers); edge (0, 1) was
  // created first, so task 1 runs first.
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].finish, 3.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 3.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].finish, 6.0);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
}

TEST(Simulator, ComputationOverlapsCommunication) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 2.0});   // -> d1, behind a slow link
  g.add_task(Task{.compute = 10.0});  // -> d0, should not wait for the transfer
  g.add_edge(0, 1, 6.0);  // comm = 1 + 6/2 = 4
  g.add_edge(0, 2, 6.0);  // local
  const DeviceNetwork n = two_devices();
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);

  const Schedule s = simulate(g, n, p, kLat);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 1.0);  // starts while 0->1 transfer in flight
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 5.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].finish, 6.0);
  EXPECT_DOUBLE_EQ(s.makespan, 11.0);
}

TEST(Simulator, ConcurrentSendsDoNotQueue) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 8.0);
  g.add_edge(0, 2, 8.0);
  DeviceNetwork n;
  for (int i = 0; i < 3; ++i) n.add_device(Device{.speed = 1.0});
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) n.set_symmetric_link(a, b, 2.0, 1.0);
  }
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 2);
  const Schedule s = simulate(g, n, p, kLat);
  // Both transfers start when task 0 finishes and proceed in parallel.
  EXPECT_DOUBLE_EQ(s.edge_start[0], 1.0);
  EXPECT_DOUBLE_EQ(s.edge_start[1], 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 6.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 6.0);
}

TEST(Simulator, SerializedTransfersQueueAtTheNic) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 8.0);
  g.add_edge(0, 2, 8.0);
  DeviceNetwork n;
  for (int i = 0; i < 3; ++i) n.add_device(Device{.speed = 1.0});
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) n.set_symmetric_link(a, b, 2.0, 1.0);
  }
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 2);
  SimOptions opt;
  opt.serialize_transfers = true;
  const Schedule s = simulate(g, n, p, kLat, opt);
  // Each transfer takes 1 + 8/2 = 5; the second waits for the NIC.
  EXPECT_DOUBLE_EQ(s.edge_start[0], 1.0);
  EXPECT_DOUBLE_EQ(s.edge_finish[0], 6.0);
  EXPECT_DOUBLE_EQ(s.edge_start[1], 6.0);
  EXPECT_DOUBLE_EQ(s.edge_finish[1], 11.0);
  EXPECT_DOUBLE_EQ(s.makespan, 12.0);
}

TEST(Simulator, SerializedTransfersDoNotDelayLocalData) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});  // remote child
  g.add_task(Task{.compute = 1.0});  // local child
  g.add_edge(0, 1, 8.0);
  g.add_edge(0, 2, 8.0);
  const DeviceNetwork n = two_devices();
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);
  SimOptions opt;
  opt.serialize_transfers = true;
  const Schedule s = simulate(g, n, p, kLat, opt);
  // The local transfer bypasses the NIC and completes immediately.
  EXPECT_DOUBLE_EQ(s.edge_finish[1], 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 1.0);
}

TEST(Simulator, ContentionNeverBeatsContentionFreeModel) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  for (int i = 1; i <= 4; ++i) {
    g.add_task(Task{.compute = 2.0});
    g.add_edge(0, i, 6.0);
  }
  DeviceNetwork n;
  for (int i = 0; i < 5; ++i) n.add_device(Device{.speed = 1.0});
  for (int a = 0; a < 5; ++a) {
    for (int b = a + 1; b < 5; ++b) n.set_symmetric_link(a, b, 3.0, 0.5);
  }
  Placement p(5);
  for (int i = 0; i < 5; ++i) p.set(i, i);
  SimOptions serialized;
  serialized.serialize_transfers = true;
  EXPECT_GT(simulate(g, n, p, kLat, serialized).makespan,
            simulate(g, n, p, kLat).makespan);
}

TEST(Simulator, MultipleEntryTasksStartInIdOrder) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  const DeviceNetwork n = two_devices();
  Placement p(2);
  p.set(0, 0);
  p.set(1, 0);
  const Schedule s = simulate(g, n, p, kLat);
  EXPECT_DOUBLE_EQ(s.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 1.0);
}

TEST(Simulator, MultiCoreDeviceRunsTasksConcurrently) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 5.0});
  g.add_task(Task{.compute = 5.0});
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0, .cores = 2});
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  const Schedule s = simulate(g, n, p, kLat);
  // Both children start at t = 1 on separate cores.
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 1.0);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
}

TEST(Simulator, CoreLimitStillQueuesExcessTasks) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  for (int i = 1; i <= 3; ++i) {
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, i, 1.0);
  }
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0, .cores = 2});
  Placement p(4);
  for (int v = 0; v < 4; ++v) p.set(v, 0);
  const Schedule s = simulate(g, n, p, kLat);
  // Two children run in parallel [1, 5]; the third waits for a free core.
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[3].start, 5.0);
  EXPECT_DOUBLE_EQ(s.makespan, 9.0);
}

TEST(Simulator, SingleCoreDefaultMatchesPaperModel) {
  // Same workload with the default 1-core device serializes the children.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 5.0});
  g.add_task(Task{.compute = 5.0});
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  EXPECT_DOUBLE_EQ(simulate(g, n, p, kLat).makespan, 11.0);
}

TEST(Simulator, StartupTimeAddsToComputeTime) {
  TaskGraph g;
  g.add_task(Task{.compute = 4.0});
  DeviceNetwork n;
  n.add_device(Device{.speed = 2.0, .startup = 3.0});
  Placement p(1);
  p.set(0, 0);
  EXPECT_DOUBLE_EQ(simulate(g, n, p, kLat).makespan, 4.0 / 2.0 + 3.0);
}

TEST(Simulator, InfeasiblePlacementThrows) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b1});
  DeviceNetwork n;
  n.add_device(Device{.supports_hw = 0});
  Placement p(1);
  p.set(0, 0);
  EXPECT_THROW(simulate(g, n, p, kLat), std::invalid_argument);
}

TEST(Simulator, NoiseRequiresRng) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  DeviceNetwork n(1);
  n.device(0).speed = 1.0;
  Placement p(1);
  p.set(0, 0);
  EXPECT_THROW(simulate(g, n, p, kLat, SimOptions{0.5, nullptr}), std::invalid_argument);
}

TEST(Simulator, NoiseAtLeastOneIsRejectedUpFront) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  DeviceNetwork n(1);
  n.device(0).speed = 1.0;
  Placement p(1);
  p.set(0, 0);
  std::mt19937_64 rng(5);
  // A multiplicative draw from [x(1-noise), x(1+noise)] could go negative.
  EXPECT_THROW(simulate(g, n, p, kLat, SimOptions{1.0, &rng}), std::invalid_argument);
  EXPECT_THROW(simulate(g, n, p, kLat, SimOptions{1.5, &rng}), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(simulate(g, n, p, kLat, SimOptions{nan, &rng}), std::invalid_argument);
  // Just below the boundary is legal.
  EXPECT_NO_THROW(simulate(g, n, p, kLat, SimOptions{0.999, &rng}));
}

TEST(Simulator, NoiseStaysWithinBounds) {
  TaskGraph g;
  g.add_task(Task{.compute = 10.0});
  DeviceNetwork n(1);
  n.device(0).speed = 1.0;
  Placement p(1);
  p.set(0, 0);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const double m = simulate(g, n, p, kLat, SimOptions{0.2, &rng}).makespan;
    EXPECT_GE(m, 8.0 - 1e-12);
    EXPECT_LE(m, 12.0 + 1e-12);
  }
}

TEST(Simulator, NoiseIsSeedDeterministic) {
  TaskGraph g;
  g.add_task(Task{.compute = 5.0});
  g.add_task(Task{.compute = 5.0});
  g.add_edge(0, 1, 4.0);
  const DeviceNetwork n = two_devices();
  Placement p(2);
  p.set(0, 0);
  p.set(1, 1);
  std::mt19937_64 a(7), b(7);
  EXPECT_DOUBLE_EQ(simulate(g, n, p, kLat, SimOptions{0.3, &a}).makespan,
                   simulate(g, n, p, kLat, SimOptions{0.3, &b}).makespan);
}

TEST(Simulator, EarliestStartOnMatchesParentFinishPlusComm) {
  TaskGraph g;
  g.add_task(Task{.compute = 2.0});
  g.add_task(Task{.compute = 2.0});
  g.add_edge(0, 1, 8.0);
  const DeviceNetwork n = two_devices();
  Placement p(2);
  p.set(0, 0);
  p.set(1, 1);
  const Schedule s = simulate(g, n, p, kLat);
  // On d0 (parent-local): est = parent finish = 2; on d1: 2 + 1 + 8/2 = 7.
  EXPECT_DOUBLE_EQ(earliest_start_on(s, g, n, p, kLat, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(earliest_start_on(s, g, n, p, kLat, 1, 1), 7.0);
  EXPECT_DOUBLE_EQ(earliest_start_on(s, g, n, p, kLat, 0, 1), 0.0);  // entry
}

TEST(Simulator, MakespanMatchesCriticalPathWhenNoContention) {
  // One task per device: no queueing, so makespan equals the DAG critical
  // path with exact node/edge costs.
  TaskGraph g;
  g.add_task(Task{.compute = 3.0});
  g.add_task(Task{.compute = 5.0});
  g.add_edge(0, 1, 10.0);
  const DeviceNetwork n = two_devices();
  Placement p(2);
  p.set(0, 0);
  p.set(1, 1);
  const double expected = g.critical_path_cost(
      [&](int v) { return kLat.compute_time(g, n, v, p.device_of(v)); },
      [&](int e) {
        return kLat.comm_time(g, n, e, p.device_of(g.edge(e).src),
                              p.device_of(g.edge(e).dst));
      });
  EXPECT_DOUBLE_EQ(simulate(g, n, p, kLat).makespan, expected);
}

}  // namespace
}  // namespace giph
