// The rollout engine's determinism contract (reinforce.hpp): losses, stats,
// checkpoints, and final parameters are bitwise identical at any
// rollout_workers count, and a mid-batch checkpoint resumed under parallel
// rollouts reproduces the sequential trajectory exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/random_policies.hpp"
#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"
#include "util/parallel_for.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

Dataset small_dataset() {
  std::mt19937_64 rng(321);
  TaskGraphParams gp;
  gp.num_tasks = 6;
  NetworkParams np;
  np.num_devices = 3;
  return generate_dataset({gp}, {np}, 3, 2, rng);
}

InstanceSampler sampler_for(const Dataset& ds) {
  return [&ds](std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> gi(0, ds.graphs.size() - 1);
    std::uniform_int_distribution<std::size_t> ni(0, ds.networks.size() - 1);
    return ProblemInstance{&ds.graphs[gi(rng)], &ds.networks[ni(rng)]};
  };
}

struct TrainResult {
  TrainStats stats;
  std::vector<nn::Matrix> params;
};

TrainResult train_giph(const Dataset& ds, TrainOptions topt, bool critic = false) {
  GiPHOptions o;
  o.seed = 11;
  o.use_critic = critic;
  GiPHAgent agent(o);
  TrainResult r;
  r.stats = train_reinforce(agent, kLat, sampler_for(ds), topt);
  for (const nn::Var& p : agent.parameters()) r.params.push_back(p->value);
  return r;
}

void expect_bitwise_equal(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.stats.episode_initial, b.stats.episode_initial);
  EXPECT_EQ(a.stats.episode_final, b.stats.episode_final);
  EXPECT_EQ(a.stats.episode_best, b.stats.episode_best);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (std::size_t k = 0; k < a.params.size(); ++k) {
    const nn::Matrix& ma = a.params[k];
    const nn::Matrix& mb = b.params[k];
    ASSERT_EQ(ma.rows(), mb.rows());
    ASSERT_EQ(ma.cols(), mb.cols());
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma.data()[i], mb.data()[i]) << "param " << k << " scalar " << i;
    }
  }
}

TEST(RolloutDeterminism, WorkerCountsProduceBitwiseIdenticalTraining) {
  const Dataset ds = small_dataset();
  TrainOptions topt;
  topt.episodes = 12;
  topt.batch_episodes = 4;
  topt.noise = 0.05;  // noisy objective draws from the per-episode RNG
  topt.seed = 71;

  topt.rollout_workers = 1;
  const TrainResult sequential = train_giph(ds, topt);
  for (const int workers : {2, 8}) {
    topt.rollout_workers = workers;
    const TrainResult parallel = train_giph(ds, topt);
    SCOPED_TRACE("rollout_workers = " + std::to_string(workers));
    expect_bitwise_equal(sequential, parallel);
  }
}

TEST(RolloutDeterminism, CriticVariantIsWorkerCountInvariant) {
  const Dataset ds = small_dataset();
  TrainOptions topt;
  topt.episodes = 8;
  topt.batch_episodes = 4;
  topt.seed = 72;

  topt.rollout_workers = 1;
  const TrainResult sequential = train_giph(ds, topt, /*critic=*/true);
  topt.rollout_workers = 8;
  const TrainResult parallel = train_giph(ds, topt, /*critic=*/true);
  expect_bitwise_equal(sequential, parallel);
}

TEST(RolloutDeterminism, PartialFinalBatchIsWorkerCountInvariant) {
  const Dataset ds = small_dataset();
  TrainOptions topt;
  topt.episodes = 10;  // 4 + 4 + a partial batch of 2, which never steps
  topt.batch_episodes = 4;
  topt.seed = 73;

  topt.rollout_workers = 1;
  const TrainResult sequential = train_giph(ds, topt);
  topt.rollout_workers = 8;
  const TrainResult parallel = train_giph(ds, topt);
  expect_bitwise_equal(sequential, parallel);
}

TEST(RolloutDeterminism, ParallelFirstRunOnFreshDatasetIsSafeAndIdentical) {
  // The first thing that ever touches these graphs is the 8-worker batch, so
  // several workers race to build each graph's lazy topo/levels cache —
  // exactly the cold-start path a user hits calling train_reinforce with
  // rollout_workers > 1 on a fresh dataset. The TSan CI leg turns any race
  // here into a failure; the bitwise check below guards the result.
  const Dataset fresh_a = small_dataset();
  TrainOptions topt;
  topt.episodes = 8;
  topt.batch_episodes = 8;  // one big batch: all episodes fan out at once
  topt.seed = 76;
  topt.rollout_workers = 8;
  const TrainResult parallel = train_giph(fresh_a, topt);

  const Dataset fresh_b = small_dataset();  // same seed -> identical dataset
  topt.rollout_workers = 1;
  const TrainResult sequential = train_giph(fresh_b, topt);
  expect_bitwise_equal(sequential, parallel);
}

TEST(RolloutDeterminism, MidBatchResumeUnderParallelRolloutsMatchesSequential) {
  const Dataset ds = small_dataset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_rollout_ckpt.txt").string();
  std::filesystem::remove(path);

  // Reference: uninterrupted sequential run.
  TrainOptions straight;
  straight.episodes = 12;
  straight.batch_episodes = 4;
  straight.seed = 74;
  straight.rollout_workers = 1;
  const TrainResult expected = train_giph(ds, straight);

  // Crash mid-batch: checkpoint_every = 3 is not a multiple of the batch
  // size, so the episode-6 checkpoint carries a half-accumulated gradient.
  TrainOptions part = straight;
  part.episodes = 6;
  part.checkpoint_every = 3;
  part.checkpoint_path = path;
  part.rollout_workers = 8;
  train_giph(ds, part);
  ASSERT_TRUE(std::filesystem::exists(path));

  TrainOptions rest = part;
  rest.episodes = straight.episodes;
  rest.resume = true;
  const TrainResult resumed = train_giph(ds, rest);
  expect_bitwise_equal(expected, resumed);
  std::filesystem::remove(path);
}

TEST(RolloutDeterminism, NonCloneablePolicyTrainsSequentially) {
  // A policy without clone_for_rollout support must still train (and
  // identically) when workers are requested.
  class NonCloneable final : public SearchPolicy {
   public:
    ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                          bool) override {
      std::uniform_int_distribution<int> pick(0, env.graph().num_tasks() - 1);
      const int task = pick(rng);
      const auto& devs = env.feasible()[task];
      std::uniform_int_distribution<int> dpick(0, static_cast<int>(devs.size()) - 1);
      return ActionDecision{SearchAction{task, devs[dpick(rng)]}, nullptr,
                            std::nullopt};
    }
    std::string name() const override { return "noclone"; }
  };

  const Dataset ds = small_dataset();
  TrainOptions topt;
  topt.episodes = 6;
  topt.batch_episodes = 3;
  topt.seed = 75;

  NonCloneable seq_policy;
  topt.rollout_workers = 1;
  const TrainStats s1 = train_reinforce(seq_policy, kLat, sampler_for(ds), topt);
  NonCloneable par_policy;
  topt.rollout_workers = 8;
  const TrainStats s2 = train_reinforce(par_policy, kLat, sampler_for(ds), topt);
  EXPECT_EQ(s1.episode_initial, s2.episode_initial);
  EXPECT_EQ(s1.episode_final, s2.episode_final);
  EXPECT_EQ(s1.episode_best, s2.episode_best);
}

TEST(RolloutDeterminism, ResumeFromV1CheckpointExplainsFormatChange) {
  // v1 checkpoints (pre-parallel-rollout trainer) carried sequential RNG
  // state the v2 trainer cannot honor. Resuming against one must fail with a
  // message that names the format change, not a generic "bad header".
  const std::string path =
      (std::filesystem::temp_directory_path() / "giph_v1_ckpt.txt").string();
  {
    std::ofstream out(path);
    out << "reinforce-checkpoint v1\n0\n";
  }
  const Dataset ds = small_dataset();
  GiPHAgent agent(GiPHOptions{});
  TrainOptions topt;
  topt.episodes = 2;
  topt.resume = true;
  topt.checkpoint_path = path;
  try {
    train_reinforce(agent, kLat, sampler_for(ds), topt);
    FAIL() << "expected a v1-format error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v1 format"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("delete it"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(TrainOptionsValidation, RejectsOutOfRangeValues) {
  TrainOptions opt;
  opt.rollout_workers = 0;
  EXPECT_THROW(validate_train_options(opt), std::invalid_argument);
  opt = TrainOptions{};
  opt.batch_episodes = 0;
  EXPECT_THROW(validate_train_options(opt), std::invalid_argument);
  opt = TrainOptions{};
  opt.checkpoint_every = -1;
  EXPECT_THROW(validate_train_options(opt), std::invalid_argument);
  EXPECT_NO_THROW(validate_train_options(TrainOptions{}));
}

TEST(TrainOptionsValidation, TrainReinforceRejectsBadOptions) {
  const Dataset ds = small_dataset();
  RandomWalkPolicy policy;
  TrainOptions opt;
  opt.rollout_workers = -2;
  EXPECT_THROW(train_reinforce(policy, kLat, sampler_for(ds), opt),
               std::invalid_argument);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  util::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(103);
  pool.run(103, [&](int index, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    hits[index].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, ReusableAcrossRuns) {
  util::WorkerPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out(8, -1);
    pool.run(8, [&](int index, int) { out[index] = index * index; });
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(WorkerPool, SingleThreadRunsInline) {
  util::WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> workers;
  pool.run(5, [&](int, int worker) { workers.push_back(worker); });
  EXPECT_EQ(workers, std::vector<int>(5, 0));
}

TEST(WorkerPool, PropagatesLowestIndexException) {
  util::WorkerPool pool(4);
  try {
    pool.run(32, [](int index, int) {
      if (index % 7 == 3) throw std::runtime_error("boom " + std::to_string(index));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  // The pool survives an exceptional run.
  std::vector<std::atomic<int>> hits(16);
  pool.run(16, [&](int index, int) { hits[index].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, HandlesZeroAndNegativeCounts) {
  util::WorkerPool pool(2);
  int calls = 0;
  pool.run(0, [&](int, int) { ++calls; });
  pool.run(-3, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace giph
