#include "heft/cpop.hpp"

#include <gtest/gtest.h>

#include "gen/dataset.hpp"
#include "sim/metrics.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Fixture() {
    // Chain 0 -> 1 -> 3 plus a light side branch 0 -> 2 -> 3.
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 8.0});
    g.add_task(Task{.compute = 1.0});
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, 1, 8.0);
    g.add_edge(0, 2, 2.0);
    g.add_edge(1, 3, 8.0);
    g.add_edge(2, 3, 2.0);
    n.add_device(Device{.speed = 2.0});
    n.add_device(Device{.speed = 1.0});
    n.set_symmetric_link(0, 1, 2.0, 1.0);
  }
};

TEST(Cpop, DownwardRanksIncreaseAlongPaths) {
  Fixture f;
  const auto down = downward_ranks(f.g, f.n, kLat);
  EXPECT_EQ(down[0], 0.0);  // entry
  for (const DataLink& e : f.g.edges()) EXPECT_GT(down[e.dst], down[e.src]);
}

TEST(Cpop, PriorityIsConstantAlongCriticalPath) {
  Fixture f;
  const CpopResult r = cpop_schedule(f.g, f.n, kLat);
  // The heavy chain 0-1-3 is the critical path.
  EXPECT_EQ(r.critical_path, (std::vector<int>{0, 1, 3}));
  EXPECT_NEAR(r.priority[0], r.priority[1], 1e-9);
  EXPECT_NEAR(r.priority[0], r.priority[3], 1e-9);
  EXPECT_LT(r.priority[2], r.priority[0]);
}

TEST(Cpop, CriticalPathTasksShareTheCpProcessor) {
  Fixture f;
  const CpopResult r = cpop_schedule(f.g, f.n, kLat);
  EXPECT_EQ(r.cp_device, 0);  // fastest device minimizes the CP total
  for (int v : r.critical_path) EXPECT_EQ(r.placement.device_of(v), r.cp_device);
}

TEST(Cpop, ScheduleIsFeasibleAndRespectsPrecedence) {
  Fixture f;
  const CpopResult r = cpop_schedule(f.g, f.n, kLat);
  EXPECT_TRUE(is_feasible(f.g, f.n, r.placement));
  for (const DataLink& e : f.g.edges()) {
    EXPECT_LE(r.timing[e.src].finish, r.timing[e.dst].start + 1e-9);
  }
}

TEST(Cpop, RespectsConstraintsOffCriticalPath) {
  Fixture f;
  f.g.task(2).requires_hw = 0b1;
  f.n.device(1).supports_hw = 0b1;
  f.n.device(0).supports_hw = 0;
  const CpopResult r = cpop_schedule(f.g, f.n, kLat);
  EXPECT_EQ(r.placement.device_of(2), 1);
  EXPECT_TRUE(is_feasible(f.g, f.n, r.placement));
}

TEST(Cpop, FallsBackToEftWhenNoCpProcessorFits) {
  Fixture f;
  // No single device can host the whole critical path.
  f.g.task(0).pinned = 0;
  f.g.task(1).pinned = 1;
  const CpopResult r = cpop_schedule(f.g, f.n, kLat);
  EXPECT_EQ(r.cp_device, -1);
  EXPECT_TRUE(is_feasible(f.g, f.n, r.placement));
}

TEST(Cpop, ComparableToHeftOnRandomInstances) {
  std::mt19937_64 rng(41);
  TaskGraphParams gp;
  gp.num_tasks = 16;
  NetworkParams np;
  np.num_devices = 6;
  double cpop_total = 0.0, random_total = 0.0;
  const int cases = 8;
  for (int i = 0; i < cases; ++i) {
    const TaskGraph g = generate_task_graph(gp, rng);
    DeviceNetwork n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    const double denom = slr_denominator(g, n, kLat);
    cpop_total += makespan(g, n, cpop_schedule(g, n, kLat).placement, kLat) / denom;
    double rnd = 0.0;
    for (int r = 0; r < 5; ++r) {
      rnd += makespan(g, n, random_placement(g, n, rng), kLat) / denom;
    }
    random_total += rnd / 5;
  }
  EXPECT_LT(cpop_total, random_total);  // a real scheduling heuristic
}

TEST(Cpop, SingleTaskGraph) {
  TaskGraph g;
  g.add_task(Task{.compute = 5.0});
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  n.add_device(Device{.speed = 5.0});
  const CpopResult r = cpop_schedule(g, n, kLat);
  EXPECT_EQ(r.placement.device_of(0), 1);
  EXPECT_DOUBLE_EQ(r.cpop_makespan, 1.0);
}

}  // namespace
}  // namespace giph
