// Golden-schedule regression corpus: each tests/data/golden/*.txt file holds
// a hand-checkable (graph, network, placement) triple in the repo's v1 text
// formats plus the exact expected task/edge start/finish times. The simulator
// and the reference oracle must both reproduce every number bitwise; the
// invariant checker must accept the result. A change in any of these numbers
// is a semantic change to the cost model and must be deliberate.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/serialization.hpp"
#include "sim/simulator.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct GoldenCase {
  std::string name;
  TaskGraph graph;
  DeviceNetwork network;
  Placement placement;
  Schedule expected;
};

// '#' lines are comments (the hand derivation); everything else feeds the v1
// parsers followed by an "expected v1" block.
GoldenCase load_golden(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open golden case: " + path.string());
  std::stringstream clean;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line[0] == '#') continue;
    clean << line << '\n';
  }

  GoldenCase c;
  c.name = path.filename().string();
  c.graph = read_task_graph(clean);
  c.network = read_device_network(clean);
  c.placement = read_placement(clean);

  std::string kind, version;
  clean >> kind >> version;
  if (kind != "expected" || version != "v1") {
    throw std::runtime_error(c.name + ": expected 'expected v1' block");
  }
  int nv = 0, ne = 0;
  clean >> nv >> ne;
  if (!clean || nv != c.graph.num_tasks() || ne != c.graph.num_edges()) {
    throw std::runtime_error(c.name + ": expected-block counts disagree with the graph");
  }
  c.expected.tasks.resize(nv);
  for (int v = 0; v < nv; ++v) {
    clean >> c.expected.tasks[v].start >> c.expected.tasks[v].finish;
  }
  c.expected.edge_start.resize(ne);
  c.expected.edge_finish.resize(ne);
  for (int e = 0; e < ne; ++e) {
    clean >> c.expected.edge_start[e] >> c.expected.edge_finish[e];
  }
  clean >> c.expected.makespan;
  if (!clean) throw std::runtime_error(c.name + ": truncated expected block");
  return c;
}

std::vector<std::filesystem::path> golden_files() {
  const std::filesystem::path dir =
      std::filesystem::path(GIPH_SOURCE_DIR) / "tests" / "data" / "golden";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void expect_matches(const GoldenCase& c, const Schedule& got, const char* which) {
  for (int v = 0; v < c.graph.num_tasks(); ++v) {
    EXPECT_EQ(got.tasks[v].start, c.expected.tasks[v].start)
        << c.name << " " << which << " task " << v;
    EXPECT_EQ(got.tasks[v].finish, c.expected.tasks[v].finish)
        << c.name << " " << which << " task " << v;
  }
  for (int e = 0; e < c.graph.num_edges(); ++e) {
    EXPECT_EQ(got.edge_start[e], c.expected.edge_start[e])
        << c.name << " " << which << " edge " << e;
    EXPECT_EQ(got.edge_finish[e], c.expected.edge_finish[e])
        << c.name << " " << which << " edge " << e;
  }
  EXPECT_EQ(got.makespan, c.expected.makespan) << c.name << " " << which << " makespan";
}

TEST(GoldenSchedules, CorpusIsNonTrivial) {
  EXPECT_GE(golden_files().size(), 10u);
}

TEST(GoldenSchedules, SimulatorReproducesEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    expect_matches(c, simulate(c.graph, c.network, c.placement, kLat), "simulate");
  }
}

TEST(GoldenSchedules, OracleReproducesEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    expect_matches(c, oracle_simulate(c.graph, c.network, c.placement, kLat), "oracle");
  }
}

TEST(GoldenSchedules, InvariantCheckerAcceptsEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    const Schedule s = simulate(c.graph, c.network, c.placement, kLat);
    const InvariantReport r = check_schedule(c.graph, c.network, c.placement, kLat, s);
    EXPECT_TRUE(r.ok()) << c.name << ":\n" << r.summary();
  }
}

}  // namespace
}  // namespace giph
