// Golden-schedule regression corpus: each tests/data/golden/*.txt file holds
// a hand-checkable (graph, network, placement) triple in the repo's v1 text
// formats plus the exact expected task/edge start/finish times. The simulator
// and the reference oracle must both reproduce every number bitwise; the
// invariant checker must accept the result. A change in any of these numbers
// is a semantic change to the cost model and must be deliberate.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "graph/serialization.hpp"
#include "graph/topology.hpp"
#include "sim/latency_model.hpp"
#include "sim/network_trace.hpp"
#include "sim/simulator.hpp"
#include "sim/stream.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct GoldenCase {
  std::string name;
  TaskGraph graph;
  DeviceNetwork network;
  Placement placement;
  Schedule expected;
  // Optional dynamic-conditions blocks between "placement v1" and
  // "expected v1" (see load_golden): a network trace, a sparse physical
  // topology (the loader projects it onto the network and builds the
  // shared-link map), and per-link drop probabilities.
  NetworkTrace trace;
  bool has_trace = false;
  SharedLinkMap shared;
  bool has_shared = false;
  std::vector<std::tuple<int, int, double>> drops;
  // Optional "delta-move v1" block: `placement` is the base placement whose
  // full simulation seeds the DeltaSimState, and the expected block holds the
  // schedule AFTER moving delta_task to delta_device. simulate_delta must
  // take the incremental path and reproduce it bitwise.
  bool has_delta_move = false;
  int delta_task = -1;
  int delta_device = -1;
  // Optional "stream v1" block ("frames interval serialize"): the case is a
  // streaming run of `frames` copies of the graph entering every `interval`
  // time units, and the expected block holds the frame-replicated schedule
  // (frames * V tasks, frames * E edges; task f * V + v is frame f's copy).
  bool has_stream = false;
  int stream_frames = 1;
  double stream_interval = 0.0;
  bool stream_serialize = false;

  /// The placement the expected schedule corresponds to (post-move when a
  /// delta-move block is present).
  Placement final_placement() const {
    Placement p = placement;
    if (has_delta_move) p.set(delta_task, delta_device);
    return p;
  }

  SimOptions sim_options() const {
    SimOptions opt;
    if (has_trace) opt.trace = &trace;
    if (has_shared) opt.shared_links = &shared;
    opt.serialize_transfers = stream_serialize;
    return opt;
  }

  StreamOptions stream_options() const {
    StreamOptions opt;
    opt.frames = stream_frames;
    opt.interval = stream_interval;
    opt.sim = sim_options();
    return opt;
  }
  /// The latency model of this case: lossy when a "loss v1" block is present.
  std::unique_ptr<LatencyModel> latency() const {
    auto loss = std::make_unique<LossAwareLatencyModel>(kLat, network.num_devices());
    for (const auto& [src, dst, p] : drops) loss->set_drop(src, dst, p);
    return loss;
  }
};

// '#' lines are comments (the hand derivation); everything else feeds the v1
// parsers, then optional "trace v1" / "shared-links v1" / "loss v1" blocks,
// followed by the mandatory "expected v1" block.
//
//   trace v1         <num schedules>, per schedule "src dst nseg" then nseg
//                    lines of "time bandwidth_factor delay_add drop_prob";
//   shared-links v1  <num links>, per link "a b bandwidth delay bidirectional"
//                    (the loader runs apply_topology + build_shared_link_map,
//                    so the network matrices in the file are overwritten by
//                    the projection);
//   loss v1          <num entries>, per entry "src dst drop_prob";
//   delta-move v1    "task device": the expected block is the post-move
//                    schedule, reached from the base placement incrementally.
GoldenCase load_golden(const std::filesystem::path& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open golden case: " + path.string());
  std::stringstream clean;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty() && line[0] == '#') continue;
    clean << line << '\n';
  }

  GoldenCase c;
  c.name = path.filename().string();
  c.graph = read_task_graph(clean);
  c.network = read_device_network(clean);
  c.placement = read_placement(clean);

  std::string kind, version;
  clean >> kind >> version;
  while (kind != "expected") {
    if (version != "v1") {
      throw std::runtime_error(c.name + ": unknown block '" + kind + " " + version + "'");
    }
    if (kind == "delta-move") {
      c.has_delta_move = true;
      clean >> c.delta_task >> c.delta_device;
      if (!clean) throw std::runtime_error(c.name + ": truncated 'delta-move' block");
      clean >> kind >> version;
      continue;
    }
    if (kind == "stream") {
      c.has_stream = true;
      int serialize = 0;
      clean >> c.stream_frames >> c.stream_interval >> serialize;
      c.stream_serialize = serialize != 0;
      if (!clean) throw std::runtime_error(c.name + ": truncated 'stream' block");
      clean >> kind >> version;
      continue;
    }
    int count = 0;
    clean >> count;
    if (kind == "trace") {
      c.has_trace = true;
      for (int i = 0; i < count; ++i) {
        int src = 0, dst = 0, nseg = 0;
        clean >> src >> dst >> nseg;
        LinkSchedule& ls = c.trace.link(src, dst);
        for (int s = 0; s < nseg; ++s) {
          TraceSegment seg;
          clean >> seg.time >> seg.bandwidth_factor >> seg.delay_add >> seg.drop_prob;
          ls.segments.push_back(seg);
        }
      }
    } else if (kind == "shared-links") {
      c.has_shared = true;
      std::vector<PhysicalLink> links(count);
      for (PhysicalLink& l : links) {
        int bidir = 1;
        clean >> l.a >> l.b >> l.bandwidth >> l.delay >> bidir;
        l.bidirectional = bidir != 0;
      }
      apply_topology(c.network, links);
      c.shared = build_shared_link_map(c.network.num_devices(), links);
    } else if (kind == "loss") {
      for (int i = 0; i < count; ++i) {
        int src = 0, dst = 0;
        double p = 0.0;
        clean >> src >> dst >> p;
        c.drops.emplace_back(src, dst, p);
      }
    } else {
      throw std::runtime_error(c.name + ": unknown block '" + kind + "'");
    }
    if (!clean) throw std::runtime_error(c.name + ": truncated '" + kind + "' block");
    clean >> kind >> version;
  }
  if (kind != "expected" || version != "v1") {
    throw std::runtime_error(c.name + ": expected 'expected v1' block");
  }
  int nv = 0, ne = 0;
  clean >> nv >> ne;
  // Streaming cases carry the frame-replicated schedule.
  if (!clean || nv != c.stream_frames * c.graph.num_tasks() ||
      ne != c.stream_frames * c.graph.num_edges()) {
    throw std::runtime_error(c.name + ": expected-block counts disagree with the graph");
  }
  c.expected.tasks.resize(nv);
  for (int v = 0; v < nv; ++v) {
    clean >> c.expected.tasks[v].start >> c.expected.tasks[v].finish;
  }
  c.expected.edge_start.resize(ne);
  c.expected.edge_finish.resize(ne);
  for (int e = 0; e < ne; ++e) {
    clean >> c.expected.edge_start[e] >> c.expected.edge_finish[e];
  }
  clean >> c.expected.makespan;
  if (!clean) throw std::runtime_error(c.name + ": truncated expected block");
  return c;
}

std::vector<std::filesystem::path> golden_files() {
  const std::filesystem::path dir =
      std::filesystem::path(GIPH_SOURCE_DIR) / "tests" / "data" / "golden";
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void expect_matches(const GoldenCase& c, const Schedule& got, const char* which) {
  ASSERT_EQ(got.tasks.size(), c.expected.tasks.size()) << c.name << " " << which;
  ASSERT_EQ(got.edge_start.size(), c.expected.edge_start.size())
      << c.name << " " << which;
  for (int v = 0; v < static_cast<int>(c.expected.tasks.size()); ++v) {
    EXPECT_EQ(got.tasks[v].start, c.expected.tasks[v].start)
        << c.name << " " << which << " task " << v;
    EXPECT_EQ(got.tasks[v].finish, c.expected.tasks[v].finish)
        << c.name << " " << which << " task " << v;
  }
  for (int e = 0; e < static_cast<int>(c.expected.edge_start.size()); ++e) {
    EXPECT_EQ(got.edge_start[e], c.expected.edge_start[e])
        << c.name << " " << which << " edge " << e;
    EXPECT_EQ(got.edge_finish[e], c.expected.edge_finish[e])
        << c.name << " " << which << " edge " << e;
  }
  EXPECT_EQ(got.makespan, c.expected.makespan) << c.name << " " << which << " makespan";
}

TEST(GoldenSchedules, CorpusIsNonTrivial) {
  EXPECT_GE(golden_files().size(), 18u);
}

TEST(GoldenSchedules, SimulatorReproducesEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    const auto lat = c.latency();
    if (c.has_stream) {
      const StreamResult r = simulate_streaming(c.graph, c.network, c.final_placement(),
                                                *lat, c.stream_options());
      expect_matches(c, r.schedule, "simulate_streaming");
    } else {
      expect_matches(
          c, simulate(c.graph, c.network, c.final_placement(), *lat, c.sim_options()),
          "simulate");
    }
  }
}

TEST(GoldenSchedules, OracleReproducesEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    const auto lat = c.latency();
    if (c.has_stream) {
      const StreamResult r = oracle_simulate_streaming(
          c.graph, c.network, c.final_placement(), *lat, c.stream_options());
      expect_matches(c, r.schedule, "streaming oracle");
    } else {
      expect_matches(
          c,
          oracle_simulate(c.graph, c.network, c.final_placement(), *lat, c.sim_options()),
          "oracle");
    }
  }
}

TEST(GoldenSchedules, InvariantCheckerAcceptsEveryCase) {
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    const auto lat = c.latency();
    const Placement p = c.final_placement();
    if (c.has_stream) {
      const StreamOptions sopt = c.stream_options();
      const StreamResult r = simulate_streaming(c.graph, c.network, p, *lat, sopt);
      const InvariantReport rep =
          check_stream_result(c.graph, c.network, p, *lat, r, sopt);
      EXPECT_TRUE(rep.ok()) << c.name << ":\n" << rep.summary();
      continue;
    }
    const SimOptions opt = c.sim_options();
    const Schedule s = simulate(c.graph, c.network, p, *lat, opt);
    CheckOptions check;
    check.trace = opt.trace;
    check.shared_links = opt.shared_links;
    const InvariantReport r = check_schedule(c.graph, c.network, p, *lat, s, check);
    EXPECT_TRUE(r.ok()) << c.name << ":\n" << r.summary();
  }
}

TEST(GoldenSchedules, StreamingCasesCoverCrossFrameContention) {
  // The corpus must keep its hand-derived streaming cases: a pipeline with
  // cross-frame overlap, a NIC-serialized cross-frame transfer, and
  // shared-link contention spanning a frame boundary.
  int seen = 0, serialized = 0, shared = 0;
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    if (!c.has_stream) continue;
    ++seen;
    serialized += c.stream_serialize ? 1 : 0;
    shared += c.has_shared ? 1 : 0;
    ASSERT_GE(c.stream_frames, 2) << c.name << ": streaming case must pipeline";
    const auto lat = c.latency();
    const StreamOptions sopt = c.stream_options();
    const StreamResult r =
        simulate_streaming(c.graph, c.network, c.final_placement(), *lat, sopt);
    // Pipelining means some frame overlaps its predecessor's work: frame f
    // must start (some task) before frame f-1 completely finished.
    const int nv = c.graph.num_tasks();
    bool overlapped = false;
    for (int f = 1; f < r.frames && !overlapped; ++f) {
      for (int v = 0; v < nv; ++v) {
        if (r.schedule.tasks[f * nv + v].start < r.frame_finish[f - 1]) {
          overlapped = true;
          break;
        }
      }
    }
    EXPECT_TRUE(overlapped) << c.name << ": frames never overlapped";
  }
  EXPECT_GE(seen, 3);
  EXPECT_GE(serialized, 1) << "need a NIC-serialized streaming case";
  EXPECT_GE(shared, 1) << "need a shared-link streaming case";
}

TEST(GoldenSchedules, DeltaMoveCasesReplayIncrementallyAndBitwise) {
  int seen = 0;
  for (const auto& path : golden_files()) {
    const GoldenCase c = load_golden(path);
    if (!c.has_delta_move) continue;
    ++seen;
    const auto lat = c.latency();
    const SimOptions opt = c.sim_options();
    SimWorkspace ws;
    Schedule prev, out;
    DeltaSimState ds;
    simulate_into(c.graph, c.network, c.placement, *lat, ws, prev, opt, &ds);
    const Placement moved = c.final_placement();
    const DeltaSimResult dr = simulate_delta(c.graph, c.network, moved, c.delta_task,
                                             *lat, ws, prev, ds, out, opt);
    EXPECT_TRUE(dr == DeltaSimResult::kReplayed)
        << c.name << ": move was hand-picked to replay, not fall back";
    expect_matches(c, out, "delta");
  }
  EXPECT_GE(seen, 2) << "corpus must keep its hand-derived delta-move cases";
}

}  // namespace
}  // namespace giph
