#include "graph/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/dataset.hpp"

namespace giph {
namespace {

TEST(Serialization, TaskGraphRoundTrip) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.25, .requires_hw = 0b101, .name = "camera detect"});
  g.add_task(Task{.compute = 3.5, .pinned = 2, .name = ""});
  g.add_task(Task{.compute = 0.125});
  g.add_edge(0, 1, 10.5);
  g.add_edge(0, 2, 0.25);

  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph h = read_task_graph(ss);
  ASSERT_EQ(h.num_tasks(), 3);
  ASSERT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.task(0).compute, 1.25);
  EXPECT_EQ(h.task(0).requires_hw, 0b101u);
  EXPECT_EQ(h.task(0).name, "camera_detect");  // spaces normalized
  EXPECT_EQ(h.task(1).pinned, 2);
  EXPECT_EQ(h.task(1).name, "");
  EXPECT_EQ(h.edge(1).bytes, 0.25);
}

TEST(Serialization, TaskGraphRoundTripPreservesRandomGraphsExactly) {
  std::mt19937_64 rng(3);
  TaskGraphParams p;
  p.num_tasks = 25;
  const TaskGraph g = generate_task_graph(p, rng);
  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph h = read_task_graph(ss);
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (int v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(h.task(v).compute, g.task(v).compute);  // bit-exact doubles
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).src, g.edge(e).src);
    EXPECT_EQ(h.edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(h.edge(e).bytes, g.edge(e).bytes);
  }
}

TEST(Serialization, DeviceNetworkRoundTrip) {
  std::mt19937_64 rng(5);
  NetworkParams p;
  p.num_devices = 6;
  const DeviceNetwork n = generate_device_network(p, rng);
  std::stringstream ss;
  write_device_network(ss, n);
  const DeviceNetwork m = read_device_network(ss);
  ASSERT_EQ(m.num_devices(), 6);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(m.device(k).speed, n.device(k).speed);
    EXPECT_EQ(m.device(k).supports_hw, n.device(k).supports_hw);
    for (int l = 0; l < 6; ++l) {
      if (k == l) continue;
      EXPECT_EQ(m.bandwidth(k, l), n.bandwidth(k, l));
      EXPECT_EQ(m.delay(k, l), n.delay(k, l));
    }
  }
}

TEST(Serialization, PlacementRoundTrip) {
  Placement p(4);
  p.set(0, 2);
  p.set(1, 0);
  p.set(2, 1);
  p.set(3, 2);
  std::stringstream ss;
  write_placement(ss, p);
  EXPECT_EQ(read_placement(ss), p);
}

TEST(Serialization, BadHeaderThrows) {
  std::stringstream ss("task-graph v2\n0 0\n");
  EXPECT_THROW(read_task_graph(ss), std::runtime_error);
  std::stringstream ss2("placement v1\n2\n0 1\n");
  EXPECT_THROW(read_task_graph(ss2), std::runtime_error);
}

TEST(Serialization, TruncatedInputThrows) {
  std::stringstream ss("task-graph v1\n2 1\n1.0 0 -1 -\n");
  EXPECT_THROW(read_task_graph(ss), std::runtime_error);
}

TEST(Serialization, FileHelpersRoundTrip) {
  const std::string dir = testing::TempDir();
  std::mt19937_64 rng(7);
  TaskGraphParams gp;
  gp.num_tasks = 8;
  const TaskGraph g = generate_task_graph(gp, rng);
  save_task_graph(dir + "giph_g.txt", g);
  EXPECT_EQ(load_task_graph(dir + "giph_g.txt").num_edges(), g.num_edges());
  NetworkParams np;
  np.num_devices = 3;
  const DeviceNetwork n = generate_device_network(np, rng);
  save_device_network(dir + "giph_n.txt", n);
  EXPECT_EQ(load_device_network(dir + "giph_n.txt").num_devices(), 3);
  EXPECT_THROW(load_task_graph(dir + "does_not_exist.txt"), std::runtime_error);
  std::remove((dir + "giph_g.txt").c_str());
  std::remove((dir + "giph_n.txt").c_str());
}

}  // namespace
}  // namespace giph
