#include "graph/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/dataset.hpp"

namespace giph {
namespace {

TEST(Serialization, TaskGraphRoundTrip) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.25, .requires_hw = 0b101, .name = "camera detect"});
  g.add_task(Task{.compute = 3.5, .pinned = 2, .name = ""});
  g.add_task(Task{.compute = 0.125});
  g.add_edge(0, 1, 10.5);
  g.add_edge(0, 2, 0.25);

  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph h = read_task_graph(ss);
  ASSERT_EQ(h.num_tasks(), 3);
  ASSERT_EQ(h.num_edges(), 2);
  EXPECT_EQ(h.task(0).compute, 1.25);
  EXPECT_EQ(h.task(0).requires_hw, 0b101u);
  EXPECT_EQ(h.task(0).name, "camera_detect");  // spaces normalized
  EXPECT_EQ(h.task(1).pinned, 2);
  EXPECT_EQ(h.task(1).name, "");
  EXPECT_EQ(h.edge(1).bytes, 0.25);
}

TEST(Serialization, TaskGraphRoundTripPreservesRandomGraphsExactly) {
  std::mt19937_64 rng(3);
  TaskGraphParams p;
  p.num_tasks = 25;
  const TaskGraph g = generate_task_graph(p, rng);
  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph h = read_task_graph(ss);
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (int v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(h.task(v).compute, g.task(v).compute);  // bit-exact doubles
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).src, g.edge(e).src);
    EXPECT_EQ(h.edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(h.edge(e).bytes, g.edge(e).bytes);
  }
}

TEST(Serialization, DeviceNetworkRoundTrip) {
  std::mt19937_64 rng(5);
  NetworkParams p;
  p.num_devices = 6;
  const DeviceNetwork n = generate_device_network(p, rng);
  std::stringstream ss;
  write_device_network(ss, n);
  const DeviceNetwork m = read_device_network(ss);
  ASSERT_EQ(m.num_devices(), 6);
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(m.device(k).speed, n.device(k).speed);
    EXPECT_EQ(m.device(k).supports_hw, n.device(k).supports_hw);
    for (int l = 0; l < 6; ++l) {
      if (k == l) continue;
      EXPECT_EQ(m.bandwidth(k, l), n.bandwidth(k, l));
      EXPECT_EQ(m.delay(k, l), n.delay(k, l));
    }
  }
}

TEST(Serialization, PlacementRoundTrip) {
  Placement p(4);
  p.set(0, 2);
  p.set(1, 0);
  p.set(2, 1);
  p.set(3, 2);
  std::stringstream ss;
  write_placement(ss, p);
  EXPECT_EQ(read_placement(ss), p);
}

TEST(Serialization, BadHeaderThrows) {
  std::stringstream ss("task-graph v2\n0 0\n");
  EXPECT_THROW(read_task_graph(ss), std::runtime_error);
  std::stringstream ss2("placement v1\n2\n0 1\n");
  EXPECT_THROW(read_task_graph(ss2), std::runtime_error);
}

TEST(Serialization, TruncatedInputThrows) {
  std::stringstream ss("task-graph v1\n2 1\n1.0 0 -1 -\n");
  EXPECT_THROW(read_task_graph(ss), std::runtime_error);
}

// The readers must reject hand-edited or hostile input with a message naming
// the offending field, instead of letting NaN/Inf/bad indices poison the
// simulator downstream.
void expect_graph_error(const std::string& body, const std::string& needle) {
  std::stringstream ss(body);
  try {
    read_task_graph(ss);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

void expect_network_error(const std::string& body, const std::string& needle) {
  std::stringstream ss(body);
  try {
    read_device_network(ss);
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(Serialization, RejectsNonFiniteTaskValues) {
  expect_graph_error("task-graph v1\n1 0\nnan 0 -1 -\n", "task compute");
  expect_graph_error("task-graph v1\n1 0\ninf 0 -1 -\n", "task compute");
  expect_graph_error("task-graph v1\n1 0\n-2.0 0 -1 -\n", "task compute");
  expect_graph_error("task-graph v1\n2 1\n1 0 -1 -\n1 0 -1 -\n0 1 inf\n",
                     "edge bytes");
  expect_graph_error("task-graph v1\n1 0\n1 0 -5 -\n", "pinned");
}

TEST(Serialization, RejectsBadEdges) {
  expect_graph_error("task-graph v1\n2 1\n1 0 -1 -\n1 0 -1 -\n0 7 1.0\n",
                     "edge endpoint out of range: 0 -> 7");
  expect_graph_error("task-graph v1\n2 1\n1 0 -1 -\n1 0 -1 -\n-1 1 1.0\n",
                     "edge endpoint out of range");
  expect_graph_error("task-graph v1\n2 1\n1 0 -1 -\n1 0 -1 -\n1 1 1.0\n",
                     "self-loop edge at task 1");
  expect_graph_error(
      "task-graph v1\n2 2\n1 0 -1 -\n1 0 -1 -\n0 1 1.0\n0 1 2.0\n",
      "duplicate edge 0 -> 1");
}

TEST(Serialization, RejectsBadDeviceValues) {
  // Device row: speed supports_hw type startup cores name.
  expect_network_error("device-network v1\n1\nnan 0 0 0 1 -\n0\n0\n",
                       "device speed");
  expect_network_error("device-network v1\n1\n0 0 0 0 1 -\n0\n0\n",
                       "device speed");  // zero speed divides by zero
  expect_network_error("device-network v1\n1\n1 0 0 -1 1 -\n0\n0\n",
                       "device startup");
  expect_network_error("device-network v1\n1\n1 0 0 0 0 -\n0\n0\n",
                       "device cores must be >= 1");
  expect_network_error(
      "device-network v1\n2\n1 0 0 0 1 -\n1 0 0 0 1 -\n0 -1\n-1 0\n0 0\n0 0\n",
      "link bandwidth");
  expect_network_error(
      "device-network v1\n2\n1 0 0 0 1 -\n1 0 0 0 1 -\n0 1\n1 0\n0 nan\nnan 0\n",
      "link delay");
}

TEST(Serialization, HardenedReaderStillAcceptsRoundTrips) {
  // The validation must not reject anything the writer produces.
  TaskGraph g;
  g.add_task(Task{.compute = 0.0});  // zero compute is legal
  g.add_task(Task{.compute = 2.5, .pinned = 0});
  g.add_edge(0, 1, 0.0);  // zero bytes is legal
  std::stringstream ss;
  write_task_graph(ss, g);
  const TaskGraph h = read_task_graph(ss);
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.task(1).pinned, 0);
}

TEST(Serialization, FileHelpersRoundTrip) {
  const std::string dir = testing::TempDir();
  std::mt19937_64 rng(7);
  TaskGraphParams gp;
  gp.num_tasks = 8;
  const TaskGraph g = generate_task_graph(gp, rng);
  save_task_graph(dir + "giph_g.txt", g);
  EXPECT_EQ(load_task_graph(dir + "giph_g.txt").num_edges(), g.num_edges());
  NetworkParams np;
  np.num_devices = 3;
  const DeviceNetwork n = generate_device_network(np, rng);
  save_device_network(dir + "giph_n.txt", n);
  EXPECT_EQ(load_device_network(dir + "giph_n.txt").num_devices(), 3);
  EXPECT_THROW(load_task_graph(dir + "does_not_exist.txt"), std::runtime_error);
  std::remove((dir + "giph_g.txt").c_str());
  std::remove((dir + "giph_n.txt").c_str());
}

}  // namespace
}  // namespace giph
