// Tests of the single-simulation evaluation core: workspace-based simulation,
// schedule-aware objectives, the per-device EST index, the
// one-simulation-per-step invariant, and determinism of the parallel
// evaluation layer.

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "baselines/random_policies.hpp"
#include "core/reinforce.hpp"
#include "eval/evaluation.hpp"
#include "gen/dataset.hpp"
#include "heft/heft.hpp"
#include "sim/schedule_index.hpp"
#include "testutil.hpp"

namespace giph {
namespace {

using testutil::expect_schedules_bitwise_equal;

const DefaultLatencyModel kLat;

Dataset varied_dataset(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TaskGraphParams small;
  small.num_tasks = 6;
  TaskGraphParams big;
  big.num_tasks = 18;
  NetworkParams tight;
  tight.num_devices = 3;
  NetworkParams wide;
  wide.num_devices = 8;
  return generate_dataset({small, big}, {tight, wide}, 6, 2, rng);
}

TEST(SimWorkspace, SimulateIntoMatchesSimulateBitwiseAcrossReuse) {
  const Dataset ds = varied_dataset(21);
  std::mt19937_64 rng(5);
  SimWorkspace ws;  // one workspace reused across all sizes, in mixed order
  Schedule out;
  for (int round = 0; round < 2; ++round) {
    for (const TaskGraph& g : ds.graphs) {
      for (const DeviceNetwork& n : ds.networks) {
        const Placement p = random_placement(g, n, rng);
        const Schedule fresh = simulate(g, n, p, kLat);
        simulate_into(g, n, p, kLat, ws, out);
        expect_schedules_bitwise_equal(fresh, out);
      }
    }
  }
}

TEST(SimWorkspace, NoisyAndContendedRunsMatchToo) {
  const Dataset ds = varied_dataset(22);
  const TaskGraph& g = ds.graphs.front();
  const DeviceNetwork& n = ds.networks.front();
  std::mt19937_64 prng(9);
  const Placement p = random_placement(g, n, prng);
  SimWorkspace ws;
  Schedule out;

  std::mt19937_64 a(77), b(77);
  SimOptions noisy_a{0.3, &a};
  SimOptions noisy_b{0.3, &b};
  const Schedule fresh = simulate(g, n, p, kLat, noisy_a);
  simulate_into(g, n, p, kLat, ws, out, noisy_b);
  expect_schedules_bitwise_equal(fresh, out);

  SimOptions contended;
  contended.serialize_transfers = true;
  const Schedule fresh2 = simulate(g, n, p, kLat, contended);
  simulate_into(g, n, p, kLat, ws, out, contended);
  expect_schedules_bitwise_equal(fresh2, out);
}

TEST(ScheduleIndexQuery, MatchesUnindexedEstExactly) {
  const Dataset ds = varied_dataset(23);
  std::mt19937_64 rng(31);
  for (const TaskGraph& g : ds.graphs) {
    for (const DeviceNetwork& n : ds.networks) {
      const Placement p = random_placement(g, n, rng);
      const Schedule sched = simulate(g, n, p, kLat);
      ScheduleIndex index;
      index.build(sched, p, n.num_devices());
      for (int v = 0; v < g.num_tasks(); ++v) {
        for (int d = 0; d < n.num_devices(); ++d) {
          EXPECT_EQ(earliest_start_on_queued(sched, g, n, p, kLat, index, v, d),
                    earliest_start_on_queued(sched, g, n, p, kLat, v, d))
              << "task " << v << " device " << d;
        }
        EXPECT_EQ(eft_select_device(g, n, p, kLat, sched, index, v),
                  eft_select_device(g, n, p, kLat, sched, v));
      }
    }
  }
}

TEST(ScheduleAwareObjective, SearchMatchesLegacyObjectiveExactly) {
  const Dataset ds = varied_dataset(24);
  const TaskGraph& g = ds.graphs[1];
  const DeviceNetwork& n = ds.networks[0];
  std::mt19937_64 prng(41);
  const Placement init = random_placement(g, n, prng);
  const double denom = slr_denominator(g, n, kLat);

  // Legacy 3-arg objective (re-simulates internally) vs the schedule-aware
  // factory: identical values, hence identical search trajectories.
  const Objective legacy = [](const TaskGraph& gg, const DeviceNetwork& nn,
                              const Placement& pp) {
    return makespan(gg, nn, pp, kLat);
  };
  PlacementSearchEnv legacy_env(g, n, kLat, legacy, init, denom);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat), init, denom);
  EXPECT_EQ(env.objective(), legacy_env.objective());

  RandomWalkPolicy policy;
  std::mt19937_64 ra(55), rb(55);
  const SearchTrace ta = run_search(policy, legacy_env, 2 * g.num_tasks(), ra);
  const SearchTrace tb = run_search(policy, env, 2 * g.num_tasks(), rb);
  EXPECT_EQ(ta.initial, tb.initial);
  EXPECT_EQ(ta.best_so_far, tb.best_so_far);
}

TEST(SearchEnvSimCount, ExactlyOneSimulationPerStep) {
  const Dataset ds = varied_dataset(25);
  const TaskGraph& g = ds.graphs[0];
  const DeviceNetwork& n = ds.networks[0];
  std::mt19937_64 rng(61);
  const Placement init = random_placement(g, n, rng);

  const std::uint64_t before = simulation_count();
  const std::uint64_t full_before = full_simulation_count();
  const std::uint64_t delta_before = delta_simulation_count();
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat), init,
                         slr_denominator(g, n, kLat));
  EXPECT_EQ(env.simulations_run(), 1u);  // construction simulates once (fully)
  EXPECT_EQ(env.delta_simulations_run(), 0u);
  EXPECT_EQ(env.delta_fallbacks(), 0u);

  RandomWalkPolicy policy;
  const int steps = 2 * g.num_tasks();
  run_search(policy, env, steps, rng);
  EXPECT_EQ(env.simulations_run(), 1u + static_cast<std::uint64_t>(steps));
  // Every apply() is exactly one simulation: an incremental delta replay or a
  // full-recompute fallback, never both.
  EXPECT_EQ(env.delta_simulations_run() + env.delta_fallbacks(),
            static_cast<std::uint64_t>(steps));
  // The process-wide counters agree with the env's split: nothing else
  // simulated behind our back (the makespan objective reads the env's
  // schedule instead of re-running), and fallbacks are the only steps that
  // re-ran the full simulator.
  EXPECT_EQ(simulation_count() - before, 1u + static_cast<std::uint64_t>(steps));
  EXPECT_EQ(full_simulation_count() - full_before, 1u + env.delta_fallbacks());
  EXPECT_EQ(delta_simulation_count() - delta_before, env.delta_simulations_run());
}

TEST(EvalParallel, PolicyFinalsBitwiseIdenticalForAnyThreadCount) {
  const Dataset ds = varied_dataset(26);
  std::vector<eval::Case> cases;
  for (const TaskGraph& g : ds.graphs) {
    cases.push_back(eval::Case{&g, &ds.networks[0]});
  }
  const eval::PolicyFactory factory = [] {
    return std::make_unique<RandomTaskEftPolicy>();
  };
  RandomTaskEftPolicy serial_policy;
  const auto reference = eval::policy_finals(serial_policy, cases, kLat, 0.2, 555);
  for (const int threads : {1, 2, 8}) {
    EXPECT_EQ(eval::policy_finals(factory, cases, kLat, 0.2, 555, threads), reference)
        << "threads = " << threads;
  }
}

TEST(EvalParallel, PolicyCurveBitwiseIdenticalForAnyThreadCount) {
  const Dataset ds = varied_dataset(27);
  std::vector<eval::Case> cases;
  for (const TaskGraph& g : ds.graphs) {
    cases.push_back(eval::Case{&g, &ds.networks[1]});
  }
  const eval::PolicyFactory factory = [] {
    return std::make_unique<RandomTaskEftPolicy>();
  };
  RandomTaskEftPolicy serial_policy;
  const eval::Curve reference = eval::policy_curve(serial_policy, cases, kLat, 0.0, 99);
  for (const int threads : {1, 2, 8}) {
    const eval::Curve c = eval::policy_curve(factory, cases, kLat, 0.0, 99, 9, threads);
    EXPECT_EQ(c.name, reference.name);
    EXPECT_EQ(c.values, reference.values) << "threads = " << threads;
  }
}

TEST(EvalParallel, HeftFinalsThreadIndependent) {
  const Dataset ds = varied_dataset(28);
  std::vector<eval::Case> cases;
  for (const TaskGraph& g : ds.graphs) {
    cases.push_back(eval::Case{&g, &ds.networks[0]});
  }
  EXPECT_EQ(eval::heft_finals(cases, kLat, 1), eval::heft_finals(cases, kLat, 4));
}

TEST(EvalGuard, ZeroStepSearchReportsInitialObjective) {
  // An empty graph gives run_search a 0-step budget; the evaluation layer
  // must still report a well-defined (initial) objective per case instead of
  // indexing an empty best-so-far trace.
  const TaskGraph empty;
  DeviceNetwork n(2);
  n.device(0).speed = 1.0;
  n.device(1).speed = 1.0;
  const std::vector<eval::Case> cases{{&empty, &n}};
  RandomWalkPolicy policy;
  const auto finals = eval::policy_finals(policy, cases, kLat, 0.0, 7);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0], 0.0);  // empty graph: makespan 0, no normalization
  const eval::Curve curve = eval::policy_curve(policy, cases, kLat, 0.0, 7, 4);
  ASSERT_EQ(curve.values.size(), 4u);
  for (const double v : curve.values) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace giph
