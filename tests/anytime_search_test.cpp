#include <gtest/gtest.h>

#include <random>

#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "sim/metrics.hpp"

namespace giph {
namespace {

struct Instance {
  TaskGraph graph;
  DeviceNetwork network;
  Placement initial;
};

Instance make_instance(std::uint64_t seed, int tasks = 16, int devices = 4) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = tasks;
  NetworkParams np;
  np.num_devices = devices;
  np.num_hw_kinds = gp.num_hw_kinds;
  Instance in;
  in.graph = generate_task_graph(gp, rng);
  in.network = generate_device_network(np, rng);
  ensure_feasible(in.graph, in.network, rng);
  in.initial = random_placement(in.graph, in.network, rng);
  return in;
}

void expect_traces_equal(const SearchTrace& a, const SearchTrace& b) {
  EXPECT_EQ(a.initial, b.initial);
  ASSERT_EQ(a.best_so_far.size(), b.best_so_far.size());
  for (std::size_t i = 0; i < a.best_so_far.size(); ++i) {
    EXPECT_EQ(a.best_so_far[i], b.best_so_far[i]) << "step " << i;
  }
  EXPECT_EQ(a.best_placement, b.best_placement);
  EXPECT_EQ(a.move_counts, b.move_counts);
}

// A stop that never fires must leave the anytime search bitwise identical to
// run_search: same trace, same best placement, same RNG consumption.
TEST(AnytimeSearch, NeverFiringStopIsBitwiseIdenticalToRunSearch) {
  const Instance in = make_instance(11);
  const DefaultLatencyModel lat;
  GiPHAgent a1(GiPHOptions{}), a2(GiPHOptions{});

  PlacementSearchEnv e1(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r1(99);
  const SearchTrace plain = run_search(a1, e1, 24, r1);

  PlacementSearchEnv e2(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r2(99);
  bool stopped = true;
  const SearchTrace anytime =
      run_search_anytime(a2, e2, 24, r2, /*greedy=*/false, [] { return false; },
                         &stopped);

  EXPECT_FALSE(stopped);
  expect_traces_equal(plain, anytime);
  EXPECT_EQ(e1.best_objective(), e2.best_objective());
  EXPECT_EQ(r1(), r2());  // identical draw counts: the streams stay in step
}

// A stop firing after exactly k evaluations must equal a plain run with
// steps = k: stopping truncates, it never perturbs the steps already taken.
TEST(AnytimeSearch, StopAfterKStepsEqualsShorterBudget) {
  const Instance in = make_instance(12);
  const DefaultLatencyModel lat;
  for (const int k : {0, 1, 5, 13}) {
    GiPHAgent a1(GiPHOptions{}), a2(GiPHOptions{});

    PlacementSearchEnv e1(in.graph, in.network, lat, makespan_objective(lat),
                          in.initial);
    std::mt19937_64 r1(7);
    const SearchTrace shorter = run_search(a1, e1, k, r1);

    PlacementSearchEnv e2(in.graph, in.network, lat, makespan_objective(lat),
                          in.initial);
    std::mt19937_64 r2(7);
    int calls = 0;
    bool stopped = false;
    const SearchTrace truncated = run_search_anytime(
        a2, e2, 40, r2, /*greedy=*/false, [&] { return calls++ >= k; }, &stopped);

    EXPECT_TRUE(stopped) << "k=" << k;
    ASSERT_EQ(truncated.best_so_far.size(), static_cast<std::size_t>(k));
    expect_traces_equal(shorter, truncated);
    EXPECT_EQ(r1(), r2()) << "k=" << k;
  }
}

// The deadline-bounded search is deterministic for a fixed step budget: two
// runs with the same seed and the same effective budget agree bitwise even
// though one was cut by the (counted, not timed) stop.
TEST(AnytimeSearch, FixedBudgetRunsAreReproducible) {
  const Instance in = make_instance(13);
  const DefaultLatencyModel lat;
  GiPHAgent a1(GiPHOptions{}), a2(GiPHOptions{});

  PlacementSearchEnv e1(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r1(5);
  int c1 = 0;
  const SearchTrace t1 =
      run_search_anytime(a1, e1, 64, r1, false, [&] { return c1++ >= 9; });

  PlacementSearchEnv e2(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r2(5);
  int c2 = 0;
  const SearchTrace t2 =
      run_search_anytime(a2, e2, 64, r2, false, [&] { return c2++ >= 9; });

  expect_traces_equal(t1, t2);
}

// Greedy decode consumes no RNG and must truncate just as cleanly.
TEST(AnytimeSearch, GreedyAnytimeMatchesGreedyRunSearch) {
  const Instance in = make_instance(14);
  const DefaultLatencyModel lat;
  GiPHAgent a1(GiPHOptions{}), a2(GiPHOptions{});

  PlacementSearchEnv e1(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r1(3);
  const SearchTrace plain = run_search(a1, e1, 10, r1, /*greedy=*/true);

  PlacementSearchEnv e2(in.graph, in.network, lat, makespan_objective(lat), in.initial);
  std::mt19937_64 r2(3);
  int calls = 0;
  const SearchTrace truncated = run_search_anytime(
      a2, e2, 30, r2, /*greedy=*/true, [&] { return calls++ >= 10; });

  expect_traces_equal(plain, truncated);
}

}  // namespace
}  // namespace giph
