// Property tests for iterated-graph (streaming) execution: the F = 1 bitwise
// reduction to simulate(), the Delta-t -> infinity collapse to one-shot
// makespans, throughput monotonicity in the arrival interval, steady-state
// detection determinism, the streaming objectives, thread-count invariance of
// streaming evaluation through the eval:: fan-out, and the exact-precision
// per-frame CSV export.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/random_policies.hpp"
#include "eval/evaluation.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/placement.hpp"
#include "sim/metrics.hpp"
#include "sim/stream.hpp"
#include "sim/trace.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

/// The golden-17 pipeline: chain t0 -> t1 across two unit-speed devices,
/// integer-friendly so streaming times are exact doubles.
struct Pipeline {
  TaskGraph g;
  DeviceNetwork n;
  Placement p{0};
  Pipeline() {
    Task a;
    a.compute = 4.0;
    Task b;
    b.compute = 4.0;
    g.add_task(a);
    g.add_task(b);
    g.add_edge(0, 1, 2.0);
    Device d;
    d.speed = 1.0;
    n.add_device(d);
    n.add_device(d);
    n.set_symmetric_link(0, 1, 2.0, 1.0);
    p = Placement(2);
    p.set(0, 0);
    p.set(1, 1);
  }
};

struct RandomInstance {
  TaskGraph g;
  DeviceNetwork n;
  Placement p{0};
  explicit RandomInstance(std::uint64_t seed, int tasks = 12, int devices = 3) {
    std::mt19937_64 rng(seed);
    TaskGraphParams gp;
    gp.num_tasks = tasks;
    NetworkParams np;
    np.num_devices = devices;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_feasible(g, n, rng);
    p = random_placement(g, n, rng);
  }
};

TEST(Streaming, SingleFrameIsBitwiseTheOneShotSimulator) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RandomInstance in(seed);
    StreamOptions opt;
    opt.frames = 1;
    opt.interval = 5.0;  // irrelevant with one frame
    opt.sim.serialize_transfers = seed % 2 == 0;
    std::mt19937_64 ra(seed), rb(seed);
    if (seed % 2 == 1) {
      opt.sim.noise = 0.2;
      opt.sim.rng = &ra;
    }
    const StreamResult r = simulate_streaming(in.g, in.n, in.p, kLat, opt);
    SimOptions one = opt.sim;
    if (one.noise > 0.0) one.rng = &rb;
    const Schedule flat = simulate(in.g, in.n, in.p, kLat, one);
    ASSERT_EQ(r.schedule.tasks.size(), flat.tasks.size());
    for (std::size_t v = 0; v < flat.tasks.size(); ++v) {
      EXPECT_EQ(r.schedule.tasks[v].start, flat.tasks[v].start);
      EXPECT_EQ(r.schedule.tasks[v].finish, flat.tasks[v].finish);
    }
    EXPECT_EQ(r.schedule.edge_start, flat.edge_start);
    EXPECT_EQ(r.schedule.edge_finish, flat.edge_finish);
    EXPECT_EQ(r.schedule.makespan, flat.makespan);
    EXPECT_EQ(r.frames, 1);
    EXPECT_EQ(r.frame_latency[0], r.p99_latency);
  }
}

TEST(Streaming, WideIntervalCollapsesToIndependentOneShots) {
  // Delta-t beyond the makespan: every frame sees an idle system, so each
  // frame's latency equals the one-shot makespan. Exact on the
  // integer-friendly pipeline; within relative tolerance on random instances
  // (frame times are offset by the arrival, so association differs).
  Pipeline pl;
  const double makespan = simulate(pl.g, pl.n, pl.p, kLat).makespan;  // 10
  StreamOptions opt;
  opt.frames = 4;
  opt.interval = 2.0 * makespan;
  const StreamResult r = simulate_streaming(pl.g, pl.n, pl.p, kLat, opt);
  for (double lat : r.frame_latency) EXPECT_EQ(lat, makespan);
  EXPECT_EQ(r.p50_latency, makespan);
  EXPECT_EQ(r.p99_latency, makespan);

  for (std::uint64_t seed : {11u, 12u, 13u}) {
    RandomInstance in(seed);
    const double m = simulate(in.g, in.n, in.p, kLat).makespan;
    StreamOptions o;
    o.frames = 3;
    o.interval = 3.0 * std::max(1.0, m);
    const StreamResult s = simulate_streaming(in.g, in.n, in.p, kLat, o);
    for (double lat : s.frame_latency) EXPECT_NEAR(lat, m, 1e-9 * std::max(1.0, m));
  }
}

TEST(Streaming, ThroughputIsMonotoneInTheArrivalInterval) {
  // On the two-stage pipeline, shrinking Delta-t never lowers throughput:
  // below the bottleneck stage time it saturates, above it tracks 1/Delta-t.
  Pipeline pl;
  double prev = 0.0;  // throughput at the widest interval, filled first
  const std::vector<double> intervals{20.0, 12.0, 8.0, 6.0, 4.0, 3.0, 2.0, 1.0};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    StreamOptions opt;
    opt.frames = 8;
    opt.interval = intervals[i];
    const StreamResult r = simulate_streaming(pl.g, pl.n, pl.p, kLat, opt);
    if (i > 0) {
      EXPECT_GE(r.throughput, prev - 1e-12)
          << "interval " << intervals[i] << " lowered throughput";
    }
    prev = r.throughput;
  }
  // And saturation is the bottleneck stage: at Delta-t = 1 the 4-time-unit
  // stages emit a frame every 4 time units, so the F / (last - first finish)
  // identity gives 8 frames over a 7-gap span of 28.
  EXPECT_NEAR(prev, 8.0 / 28.0, 1e-12);
}

TEST(Streaming, SteadyStateDetectionIsDeterministicAndLegitimate) {
  Pipeline pl;
  StreamOptions opt;
  opt.frames = 64;
  opt.interval = 4.0;
  opt.detect_steady_state = true;
  opt.steady_window = 4;
  const StreamResult a = simulate_streaming(pl.g, pl.n, pl.p, kLat, opt);
  const StreamResult b = simulate_streaming(pl.g, pl.n, pl.p, kLat, opt);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.steady_frame, b.steady_frame);
  EXPECT_EQ(a.frame_finish, b.frame_finish);
  ASSERT_LT(a.frames, opt.frames) << "pipeline reaches steady state quickly";
  EXPECT_EQ(a.steady_frame, a.frames - opt.steady_window);

  // The truncated run is the stream with that many frames, not a prefix of
  // the longer one: re-simulating without detection reproduces it bitwise.
  StreamOptions trunc = opt;
  trunc.frames = a.frames;
  trunc.detect_steady_state = false;
  const StreamResult c = simulate_streaming(pl.g, pl.n, pl.p, kLat, trunc);
  EXPECT_EQ(a.frame_finish, c.frame_finish);
  EXPECT_EQ(a.frame_latency, c.frame_latency);
  EXPECT_EQ(a.throughput, c.throughput);
  EXPECT_EQ(c.steady_frame, -1);

  // Noisy runs never truncate (convergence under noise is coincidence).
  StreamOptions noisy = opt;
  std::mt19937_64 rng(5);
  noisy.sim.noise = 0.1;
  noisy.sim.rng = &rng;
  EXPECT_EQ(simulate_streaming(pl.g, pl.n, pl.p, kLat, noisy).frames, noisy.frames);
}

TEST(Streaming, ObjectivesReportTailLatencyAndInverseThroughput) {
  Pipeline pl;
  StreamOptions opt;
  opt.frames = 6;
  opt.interval = 4.0;
  const StreamResult r = simulate_streaming(pl.g, pl.n, pl.p, kLat, opt);

  ScheduleObjective p99 = streaming_p99_objective(kLat, opt);
  ScheduleObjective tp = streaming_throughput_objective(kLat, opt);
  const Schedule unused;
  EXPECT_EQ(p99(pl.g, pl.n, pl.p, unused), r.p99_latency);
  EXPECT_EQ(tp(pl.g, pl.n, pl.p, unused), 1.0 / r.throughput);
  // Repeat evaluations reuse the captured workspace and stay identical.
  EXPECT_EQ(p99(pl.g, pl.n, pl.p, unused), r.p99_latency);
}

TEST(Streaming, EvalFanOutIsThreadCountInvariantWithStreamingObjectives) {
  // policy_finals with a streaming objective must be bitwise identical for
  // every thread count and across repeats (per-case rng seeding unchanged).
  std::vector<RandomInstance> instances;
  for (std::uint64_t s = 21; s < 27; ++s) instances.emplace_back(s, 10, 3);
  std::vector<eval::Case> cases;
  for (const auto& in : instances) cases.push_back(eval::Case{&in.g, &in.n});

  ObjectiveFactory objective = [](const TaskGraph&, const DeviceNetwork&,
                                  std::mt19937_64&) {
    StreamOptions opt;
    opt.frames = 4;
    opt.interval = 30.0;
    return streaming_p99_objective(kLat, opt);
  };
  const eval::PolicyFactory factory = [] {
    return std::unique_ptr<SearchPolicy>(new RandomWalkPolicy());
  };
  const auto serial = eval::policy_finals(factory, cases, kLat, 0.0, 7, 1, objective);
  const auto threaded = eval::policy_finals(factory, cases, kLat, 0.0, 7, 4, objective);
  EXPECT_EQ(serial, threaded);
  const auto repeat = eval::policy_finals(factory, cases, kLat, 0.0, 7, 4, objective);
  EXPECT_EQ(threaded, repeat);

  // Curves too: custom-objective curves are raw values, still monotone
  // (best-so-far) and thread-count invariant.
  const eval::Curve c1 = eval::policy_curve(factory, cases, kLat, 0.0, 7, 5, 1, objective);
  const eval::Curve c4 = eval::policy_curve(factory, cases, kLat, 0.0, 7, 5, 4, objective);
  EXPECT_EQ(c1.values, c4.values);
  for (std::size_t i = 1; i < c1.values.size(); ++i) {
    EXPECT_LE(c1.values[i], c1.values[i - 1] + 1e-12);
  }
}

TEST(Streaming, CsvExportRoundTripsEveryDoubleExactly) {
  RandomInstance in(31);
  StreamOptions opt;
  opt.frames = 5;
  opt.interval = 7.3;
  const StreamResult r = simulate_streaming(in.g, in.n, in.p, kLat, opt);

  std::ostringstream out;
  out.precision(3);  // the writer must restore this
  write_stream_csv(out, r);
  EXPECT_EQ(out.precision(), 3);

  std::istringstream is(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "frame,arrival,finish,latency");
  for (int f = 0; f < r.frames; ++f) {
    ASSERT_TRUE(std::getline(is, line));
    std::istringstream row(line);
    std::string cell;
    std::getline(row, cell, ',');
    EXPECT_EQ(std::stoi(cell), f);
    std::getline(row, cell, ',');
    EXPECT_EQ(std::stod(cell), r.frame_arrival[f]);  // bitwise round-trip
    std::getline(row, cell, ',');
    EXPECT_EQ(std::stod(cell), r.frame_finish[f]);
    std::getline(row, cell, ',');
    EXPECT_EQ(std::stod(cell), r.frame_latency[f]);
  }
  ASSERT_TRUE(std::getline(is, line));
  std::istringstream row(line);
  std::string cell;
  std::getline(row, cell, ',');
  EXPECT_EQ(cell, "summary");
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stoi(cell), r.frames);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stoi(cell), r.steady_frame);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stod(cell), r.throughput);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stod(cell), r.p50_latency);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stod(cell), r.p99_latency);
  std::getline(row, cell, ',');
  EXPECT_EQ(std::stod(cell), r.makespan);
}

TEST(Streaming, NearestRankPercentileConvention) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(nearest_rank_percentile(xs, 0.0), 1.0);
  EXPECT_EQ(nearest_rank_percentile(xs, 0.25), 1.0);
  EXPECT_EQ(nearest_rank_percentile(xs, 0.5), 2.0);
  EXPECT_EQ(nearest_rank_percentile(xs, 0.99), 4.0);
  EXPECT_EQ(nearest_rank_percentile(xs, 1.0), 4.0);
  EXPECT_EQ(nearest_rank_percentile({}, 0.5), 0.0);
}

TEST(Streaming, RejectsBadOptions) {
  Pipeline pl;
  StreamOptions opt;
  opt.frames = 0;
  EXPECT_THROW(simulate_streaming(pl.g, pl.n, pl.p, kLat, opt), std::invalid_argument);
  opt.frames = 2;
  opt.interval = -1.0;
  EXPECT_THROW(simulate_streaming(pl.g, pl.n, pl.p, kLat, opt), std::invalid_argument);
  opt.interval = 1.0;
  opt.arrival_jitter = 0.5;  // jitter needs an rng
  EXPECT_THROW(simulate_streaming(pl.g, pl.n, pl.p, kLat, opt), std::invalid_argument);
  opt.arrival_jitter = 1.5;
  std::mt19937_64 rng(1);
  opt.sim.rng = &rng;
  EXPECT_THROW(simulate_streaming(pl.g, pl.n, pl.p, kLat, opt), std::invalid_argument);
}

}  // namespace
}  // namespace giph
