#include "heft/heft.hpp"

#include <gtest/gtest.h>

#include "gen/dataset.hpp"
#include "gen/task_graph_gen.hpp"
#include "sim/metrics.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Fixture() {
    // Fork-join: 0 -> {1, 2} -> 3, heavy middle tasks.
    g.add_task(Task{.compute = 2.0});
    g.add_task(Task{.compute = 8.0});
    g.add_task(Task{.compute = 8.0});
    g.add_task(Task{.compute = 2.0});
    g.add_edge(0, 1, 4.0);
    g.add_edge(0, 2, 4.0);
    g.add_edge(1, 3, 4.0);
    g.add_edge(2, 3, 4.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 1.0});
    n.set_symmetric_link(0, 1, 4.0, 0.0);  // comm = 1 per 4-byte edge
  }
};

TEST(Heft, UpwardRanksDecreaseAlongPaths) {
  Fixture f;
  const auto rank = upward_ranks(f.g, f.n, kLat);
  for (const DataLink& e : f.g.edges()) EXPECT_GT(rank[e.src], rank[e.dst]);
  // Exit rank = its average compute cost.
  EXPECT_DOUBLE_EQ(rank[3], 2.0);
}

TEST(Heft, ParallelizesForkJoinAcrossDevices) {
  Fixture f;
  const HeftResult r = heft_schedule(f.g, f.n, kLat);
  // Running both middle tasks on one device costs >= 18; splitting them costs
  // ~2 + 1 + 8 + 1 + 2 = 14. HEFT must split.
  EXPECT_NE(r.placement.device_of(1), r.placement.device_of(2));
  EXPECT_LE(r.heft_makespan, 14.0 + 1e-9);
}

TEST(Heft, ScheduleRespectsPrecedence) {
  Fixture f;
  const HeftResult r = heft_schedule(f.g, f.n, kLat);
  for (const DataLink& e : f.g.edges()) {
    EXPECT_LE(r.timing[e.src].finish, r.timing[e.dst].start + 1e-9);
  }
}

TEST(Heft, SingleDeviceSerializesEverything) {
  Fixture f;
  DeviceNetwork n1;
  n1.add_device(Device{.speed = 2.0});
  const HeftResult r = heft_schedule(f.g, n1, kLat);
  EXPECT_DOUBLE_EQ(r.heft_makespan, 20.0 / 2.0);
  for (int v = 0; v < 4; ++v) EXPECT_EQ(r.placement.device_of(v), 0);
}

TEST(Heft, RespectsPlacementConstraints) {
  Fixture f;
  f.g.task(1).requires_hw = 0b1;
  f.n.device(0).supports_hw = 0;
  f.n.device(1).supports_hw = 0b1;
  const HeftResult r = heft_schedule(f.g, f.n, kLat);
  EXPECT_EQ(r.placement.device_of(1), 1);
  EXPECT_TRUE(is_feasible(f.g, f.n, r.placement));
}

TEST(Heft, RespectsPinnedTasks) {
  Fixture f;
  f.g.task(0).pinned = 1;
  const HeftResult r = heft_schedule(f.g, f.n, kLat);
  EXPECT_EQ(r.placement.device_of(0), 1);
}

TEST(Heft, InsertionPolicyFillsGaps) {
  // Device 1 idles until a slow transfer arrives; the lower-priority
  // independent task must be inserted into that gap, not appended.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .pinned = 0});   // 0: entry on d0
  g.add_task(Task{.compute = 10.0, .pinned = 1});  // 1: downstream on d1
  g.add_task(Task{.compute = 1.0, .pinned = 1});   // 2: independent on d1
  g.add_edge(0, 1, 100.0);  // comm = 100/4 = 25
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  n.add_device(Device{.speed = 1.0});
  n.set_symmetric_link(0, 1, 4.0, 0.0);
  const HeftResult r = heft_schedule(g, n, kLat);
  // Task 1 occupies [26, 36] on d1; task 2 is inserted at [0, 1].
  EXPECT_DOUBLE_EQ(r.timing[1].start, 26.0);
  EXPECT_DOUBLE_EQ(r.timing[2].start, 0.0);
  EXPECT_DOUBLE_EQ(r.heft_makespan, 36.0);
}

TEST(Heft, BeatsAverageRandomPlacementOnSyntheticInstances) {
  std::mt19937_64 rng(21);
  TaskGraphParams gp;
  gp.num_tasks = 16;
  NetworkParams np;
  np.num_devices = 6;
  int wins = 0;
  const int cases = 10;
  for (int i = 0; i < cases; ++i) {
    const TaskGraph g = generate_task_graph(gp, rng);
    DeviceNetwork n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    const double heft_ms = makespan(g, n, heft_schedule(g, n, kLat).placement, kLat);
    double random_ms = 0.0;
    for (int r = 0; r < 10; ++r) {
      random_ms += makespan(g, n, random_placement(g, n, rng), kLat);
    }
    if (heft_ms < random_ms / 10) ++wins;
  }
  EXPECT_GE(wins, 9);
}

TEST(Heft, EftSelectDevicePrefersParentLocality) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  g.add_task(Task{.compute = 1.0});
  g.add_edge(0, 1, 100.0);  // expensive to move
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  n.add_device(Device{.speed = 1.2});  // slightly faster but remote
  n.set_symmetric_link(0, 1, 1.0, 5.0);
  Placement p(2);
  p.set(0, 0);
  p.set(1, 1);
  const Schedule s = simulate(g, n, p, kLat);
  EXPECT_EQ(eft_select_device(g, n, p, kLat, s, 1), 0);
}

TEST(Heft, EftSelectDeviceHonorsConstraints) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b1});
  DeviceNetwork n;
  n.add_device(Device{.speed = 100.0, .supports_hw = 0});
  n.add_device(Device{.speed = 1.0, .supports_hw = 0b1});
  Placement p(1);
  p.set(0, 1);
  const Schedule s = simulate(g, n, p, kLat);
  EXPECT_EQ(eft_select_device(g, n, p, kLat, s, 0), 1);
}

}  // namespace
}  // namespace giph
