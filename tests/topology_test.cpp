#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace giph {
namespace {

DeviceNetwork four_devices() {
  DeviceNetwork n;
  for (int i = 0; i < 4; ++i) n.add_device(Device{.speed = 1.0});
  return n;
}

TEST(Topology, DirectLinksAreKept) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 2.0}, {1, 2, 20.0, 1.0}, {2, 3, 5.0, 0.5}});
  EXPECT_EQ(n.bandwidth(0, 1), 10.0);
  EXPECT_EQ(n.delay(0, 1), 2.0);
  EXPECT_EQ(n.bandwidth(1, 0), 10.0);  // bidirectional by default
}

TEST(Topology, MultiHopUsesBottleneckBandwidthAndSummedDelay) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 2.0}, {1, 2, 20.0, 1.0}, {2, 3, 5.0, 0.5}});
  // 0 -> 3 goes 0-1-2-3: delay 3.5, bottleneck bandwidth 5.
  EXPECT_DOUBLE_EQ(n.delay(0, 3), 3.5);
  EXPECT_DOUBLE_EQ(n.bandwidth(0, 3), 5.0);
}

TEST(Topology, PicksMinimumDelayRoute) {
  DeviceNetwork n = four_devices();
  // Two routes 0 -> 2: direct slow-delay link vs. two fast hops.
  apply_topology(n, {{0, 2, 100.0, 10.0}, {0, 1, 50.0, 1.0}, {1, 2, 50.0, 1.0}});
  EXPECT_DOUBLE_EQ(n.delay(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(n.bandwidth(0, 2), 50.0);
}

TEST(Topology, UnreachablePairsGetLossyLinks) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 1.0}});  // 2 and 3 are isolated
  EXPECT_EQ(n.bandwidth(0, 2), 1e-6);
  EXPECT_EQ(n.delay(0, 2), 1e9);
  EXPECT_EQ(n.bandwidth(2, 3), 1e-6);
}

TEST(Topology, DirectionalLinks) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 1.0, /*bidirectional=*/false}});
  EXPECT_EQ(n.bandwidth(0, 1), 10.0);
  EXPECT_EQ(n.bandwidth(1, 0), 1e-6);  // no reverse route
}

TEST(Topology, ParallelLinksKeepBest) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 5.0}, {0, 1, 8.0, 1.0}});
  EXPECT_DOUBLE_EQ(n.delay(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(n.bandwidth(0, 1), 8.0);
}

TEST(Topology, RejectsBadLinks) {
  DeviceNetwork n = four_devices();
  EXPECT_THROW(apply_topology(n, {{0, 0, 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(apply_topology(n, {{0, 9, 1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(apply_topology(n, {{0, 1, 0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(apply_topology(n, {{0, 1, 1.0, -1.0}}), std::invalid_argument);
}

TEST(Topology, SelfLinksRemainFree) {
  DeviceNetwork n = four_devices();
  apply_topology(n, {{0, 1, 10.0, 1.0}});
  EXPECT_TRUE(std::isinf(n.bandwidth(0, 0)));
  EXPECT_EQ(n.delay(1, 1), 0.0);
}

}  // namespace
}  // namespace giph
