#include "nn/matrix.hpp"

#include <gtest/gtest.h>

namespace giph::nn {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_EQ(m(0, 1), -2.0);
}

TEST(Matrix, Factories) {
  const Matrix z = Matrix::zeros(2, 2);
  EXPECT_EQ(z(0, 0), 0.0);
  const Matrix r = Matrix::from_row({1, 2, 3});
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_EQ(r(0, 2), 3.0);
  const Matrix c = Matrix::from_col({4, 5});
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c(1, 0), 5.0);
  EXPECT_EQ(Matrix::scalar(7.0)(0, 0), 7.0);
}

TEST(Matrix, Matmul) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int k = 1;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = k++;
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) b(i, j) = k++;
  }
  const Matrix c = matmul(a, b);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]]
  EXPECT_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ(c(0, 1), 1 * 8 + 2 * 10 + 3 * 12);
  EXPECT_EQ(c(1, 0), 4 * 7 + 5 * 9 + 6 * 11);
  EXPECT_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Matrix, MatmulVariantsMatchExplicitTranspose) {
  Matrix a(3, 2), b(3, 4), c(5, 2);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) a(i, j) = i * 2 + j + 1;
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) b(i, j) = i - j;
  }
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 2; ++j) c(i, j) = i * j + 1;
  }
  EXPECT_EQ(max_abs_diff(matmul_tn(a, b), matmul(transpose(a), b)), 0.0);
  EXPECT_EQ(max_abs_diff(matmul_nt(a, c), matmul(a, transpose(c))), 0.0);
}

TEST(Matrix, ElementwiseOps) {
  const Matrix a = Matrix::from_row({1, 2, 3});
  const Matrix b = Matrix::from_row({4, 5, 6});
  EXPECT_EQ((a + b)(0, 1), 7.0);
  EXPECT_EQ((b - a)(0, 2), 3.0);
  EXPECT_EQ(hadamard(a, b)(0, 0), 4.0);
  EXPECT_EQ((a * 2.0)(0, 2), 6.0);
}

TEST(Matrix, InPlaceOps) {
  Matrix a = Matrix::from_row({1, 2});
  a += Matrix::from_row({3, 4});
  EXPECT_EQ(a(0, 1), 6.0);
  a -= Matrix::from_row({1, 1});
  EXPECT_EQ(a(0, 0), 3.0);
  a *= 0.5;
  EXPECT_EQ(a(0, 1), 2.5);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::from_row({1, 2, 3});
  const Matrix b = Matrix::from_row({1, 2.5, 2});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

}  // namespace
}  // namespace giph::nn
