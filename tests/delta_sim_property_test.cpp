// Property test for simulate_delta(): across random cases and random
// single-task move sequences, the incremental path must stay bitwise
// identical to a fresh full simulation after every move — including under
// every dynamic-network configuration (NIC serialization, shared physical
// links, network traces, loss-aware latency) and across the fallback
// boundary cases (noise, entry-task moves, tiny prefixes, in-window trace
// breakpoints). It also pins the counter accounting simulate_delta shares
// with the full path.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "gen/device_network_gen.hpp"
#include "graph/topology.hpp"
#include "sim/latency_model.hpp"
#include "sim/network_trace.hpp"
#include "sim/simulator.hpp"
#include "testutil.hpp"

namespace giph {
namespace {

struct MoveStats {
  int replayed = 0;
  int fell_back = 0;
};

/// Exact (bitwise) schedule equality as a bool, for early-exit control flow;
/// testutil::expect_schedules_bitwise_equal reports the per-field details.
bool schedules_equal(const Schedule& a, const Schedule& b) {
  if (a.tasks.size() != b.tasks.size() ||
      a.edge_start.size() != b.edge_start.size() ||
      a.edge_finish.size() != b.edge_finish.size() || a.makespan != b.makespan) {
    return false;
  }
  for (std::size_t v = 0; v < a.tasks.size(); ++v) {
    if (a.tasks[v].start != b.tasks[v].start ||
        a.tasks[v].finish != b.tasks[v].finish) {
      return false;
    }
  }
  for (std::size_t e = 0; e < a.edge_start.size(); ++e) {
    if (a.edge_start[e] != b.edge_start[e] ||
        a.edge_finish[e] != b.edge_finish[e]) {
      return false;
    }
  }
  return true;
}

/// Drives `moves` random feasible single-task moves through simulate_delta
/// (chained: each replay's output becomes the next baseline) and checks the
/// result bitwise against an independent full simulate_into after every step.
/// opt_delta / opt_full are separate so the noise scenario can mirror two
/// identically seeded engines through the two paths.
MoveStats run_move_sequence(const TaskGraph& g, const DeviceNetwork& n,
                            Placement p, const LatencyModel& lat,
                            const SimOptions& opt_delta, const SimOptions& opt_full,
                            int moves, std::uint64_t seed,
                            double min_prefix_fraction = 0.05) {
  SimWorkspace ws_delta, ws_full;
  Schedule cur, nxt, full;
  DeltaSimState ds;
  ds.min_prefix_fraction = min_prefix_fraction;

  simulate_into(g, n, p, lat, ws_delta, cur, opt_delta, &ds);
  simulate_into(g, n, p, lat, ws_full, full, opt_full);
  testutil::expect_schedules_bitwise_equal(cur, full);

  MoveStats stats;
  std::mt19937_64 rng(seed);
  for (int m = 0; m < moves; ++m) {
    const int v = static_cast<int>(rng() % g.num_tasks());
    const std::vector<int> devs = feasible_devices(g, n, v);
    EXPECT_FALSE(devs.empty()) << "task " << v;
    if (devs.empty()) return stats;
    const int d = devs[rng() % devs.size()];  // may equal the current device
    p.set(v, d);

    const DeltaSimResult r =
        simulate_delta(g, n, p, v, lat, ws_delta, cur, ds, nxt, opt_delta);
    if (r == DeltaSimResult::kReplayed) {
      ++stats.replayed;
    } else {
      ++stats.fell_back;
    }
    EXPECT_TRUE(ds.valid) << "move " << m;

    simulate_into(g, n, p, lat, ws_full, full, opt_full);
    if (!schedules_equal(nxt, full)) {
      testutil::expect_schedules_bitwise_equal(nxt, full);
      ADD_FAILURE() << "diverged at move " << m << " (task " << v << " -> device "
                    << d << ", " << (r == DeltaSimResult::kReplayed ? "replayed"
                                                                    : "fell back")
                    << ")";
      return stats;
    }
    std::swap(cur, nxt);
  }
  return stats;
}

/// random_case() plus multi-core devices (cores 1..3), the configuration the
/// FIFO displacement logic is most sensitive to.
testutil::RandomCase multicore_case(std::uint64_t seed, int num_tasks,
                                    int num_devices) {
  testutil::RandomCase c = testutil::random_case(seed, num_tasks, num_devices);
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int d = 0; d < c.network.num_devices(); ++d) {
    c.network.device(d).cores = 1 + static_cast<int>(rng() % 3);
  }
  return c;
}

TEST(DeltaSimProperty, PlainBitwiseAcrossSeeds) {
  DefaultLatencyModel lat;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 101, 24, 5);
    const MoveStats s = run_move_sequence(c.graph, c.network, c.placement, lat,
                                          {}, {}, 40, seed);
    replayed += s.replayed;
  }
  // The whole point is that most single-task moves take the incremental path.
  EXPECT_GT(replayed, 60);
}

TEST(DeltaSimProperty, MultiCoreDevices) {
  DefaultLatencyModel lat;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = multicore_case(seed * 313, 30, 4);
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, {}, {},
                                  40, seed)
                    .replayed;
  }
  EXPECT_GT(replayed, 0);
}

TEST(DeltaSimProperty, SerializedTransfers) {
  DefaultLatencyModel lat;
  SimOptions opt;
  opt.serialize_transfers = true;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 211, 24, 5);
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, opt,
                                  opt, 40, seed)
                    .replayed;
  }
  EXPECT_GT(replayed, 0);
}

TEST(DeltaSimProperty, SharedLinkContention) {
  DefaultLatencyModel lat;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 401, 40, 5);
    // A sparse line topology plus one chord: every route crosses shared
    // physical links, so reservations actually interact.
    std::vector<PhysicalLink> links;
    for (int d = 1; d < c.network.num_devices(); ++d) {
      links.push_back(PhysicalLink{d - 1, d, 5.0 + d, 0.5});
    }
    links.push_back(PhysicalLink{0, c.network.num_devices() - 1, 3.0, 2.0});
    apply_topology(c.network, links);
    const SharedLinkMap shared =
        build_shared_link_map(c.network.num_devices(), links);
    SimOptions opt;
    opt.shared_links = &shared;
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, opt,
                                  opt, 30, seed)
                    .replayed;
    // Serialization and shared links together (both reservation timelines).
    opt.serialize_transfers = true;
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, opt,
                                  opt, 30, seed + 77)
                    .replayed;
  }
  EXPECT_GT(replayed, 0);
}

TEST(DeltaSimProperty, TraceWithPrefixBreakpointsReplays) {
  DefaultLatencyModel lat;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 503, 24, 5);
    // Conditions active from t = 0 (segments at time <= 0 seed state and are
    // never breakpoint events), so replay windows stay breakpoint-free.
    NetworkTrace tr;
    tr.link(0, 1).segments.push_back(TraceSegment{0.0, 0.5, 0.25, 0.1});
    tr.link(1, 0).segments.push_back(TraceSegment{0.0, 0.8, 0.0, 0.0});
    tr.link(2, 3).segments.push_back(TraceSegment{0.0, 2.0, 0.1, 0.05});
    SimOptions opt;
    opt.trace = &tr;
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, opt,
                                  opt, 30, seed)
                    .replayed;
  }
  EXPECT_GT(replayed, 0);
}

TEST(DeltaSimProperty, TraceWithMidRunBreakpoint) {
  // A breakpoint in the middle of the run: moves whose dirty window contains
  // it must fall back, earlier-dirty moves may too — equality must hold
  // either way, across the boundary both directions.
  DefaultLatencyModel lat;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 601, 24, 5);
    const double horizon =
        simulate(c.graph, c.network, c.placement, lat).makespan;
    NetworkTrace tr;
    auto& ls = tr.link(0, 1);
    ls.segments.push_back(TraceSegment{0.0, 1.0, 0.0, 0.0});
    ls.segments.push_back(TraceSegment{horizon * 0.4, 0.5, 0.5, 0.2});
    tr.link(1, 2).segments.push_back(TraceSegment{horizon * 0.6, 0.25, 0.0, 0.0});
    SimOptions opt;
    opt.trace = &tr;
    run_move_sequence(c.graph, c.network, c.placement, lat, opt, opt, 30, seed);
  }
}

TEST(DeltaSimProperty, TraceWithSerializationAlwaysFallsBack) {
  // Reservation timelines are not reconstructible once a trace is active:
  // the combination must take the full path — and still match bitwise.
  DefaultLatencyModel lat;
  testutil::RandomCase c = testutil::random_case(977, 20, 4);
  NetworkTrace tr;
  tr.link(0, 1).segments.push_back(TraceSegment{0.0, 0.5, 0.0, 0.0});
  SimOptions opt;
  opt.trace = &tr;
  opt.serialize_transfers = true;
  const MoveStats s =
      run_move_sequence(c.graph, c.network, c.placement, lat, opt, opt, 20, 3);
  EXPECT_EQ(s.replayed, 0);
  EXPECT_EQ(s.fell_back, 20);
}

TEST(DeltaSimProperty, LossAwareLatency) {
  DefaultLatencyModel base;
  int replayed = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    testutil::RandomCase c = testutil::random_case(seed * 701, 24, 5);
    LossAwareLatencyModel lat(base, c.network.num_devices());
    lat.set_drop(0, 1, 0.3);
    lat.set_drop(1, 0, 0.1);
    lat.set_drop(2, 4, 0.5);
    replayed += run_move_sequence(c.graph, c.network, c.placement, lat, {}, {},
                                  30, seed)
                    .replayed;
  }
  EXPECT_GT(replayed, 0);
}

TEST(DeltaSimProperty, NoiseAlwaysFallsBack) {
  // Realized durations are drawn in event order from one stream, so the delta
  // path must refuse and re-run fully. Two identically seeded engines are
  // mirrored through the two paths: the fallback's inner full run must
  // consume exactly one run's worth of draws, keeping the streams aligned
  // for the entire chain.
  DefaultLatencyModel lat;
  testutil::RandomCase c = testutil::random_case(811, 20, 4);
  std::mt19937_64 rng_delta(42), rng_full(42);
  SimOptions opt_delta, opt_full;
  opt_delta.noise = 0.2;
  opt_delta.rng = &rng_delta;
  opt_full.noise = 0.2;
  opt_full.rng = &rng_full;
  const MoveStats s = run_move_sequence(c.graph, c.network, c.placement, lat,
                                        opt_delta, opt_full, 20, 7);
  EXPECT_EQ(s.replayed, 0);
  EXPECT_EQ(s.fell_back, 20);
}

TEST(DeltaSimProperty, ForcedFallbackViaMinPrefixFraction) {
  // min_prefix_fraction > 1 can never be met: every move falls back, the
  // fallback re-records, and the chain keeps producing exact schedules.
  DefaultLatencyModel lat;
  testutil::RandomCase c = testutil::random_case(907, 20, 4);
  const MoveStats s = run_move_sequence(c.graph, c.network, c.placement, lat,
                                        {}, {}, 20, 11, /*min_prefix=*/1.1);
  EXPECT_EQ(s.replayed, 0);
  EXPECT_EQ(s.fell_back, 20);
}

TEST(DeltaSimProperty, EntryTaskMoveFallsBack) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  DefaultLatencyModel lat;
  SimWorkspace ws;
  Schedule prev, out;
  DeltaSimState ds;
  ds.min_prefix_fraction = 0.0;
  Placement p = testutil::alternating3();
  simulate_into(g, n, p, lat, ws, prev, {}, &ds);

  // Task 0 is an entry task: dirty from t = 0, nothing to reuse.
  p.set(0, 1);
  EXPECT_EQ(simulate_delta(g, n, p, 0, lat, ws, prev, ds, out),
            DeltaSimResult::kFellBack);
  testutil::expect_schedules_bitwise_equal(out, simulate(g, n, p, lat));

  // Task 2's dirty time is its parent's finish (t = 9): the prefix replays.
  std::swap(prev, out);
  p.set(2, 1);
  EXPECT_EQ(simulate_delta(g, n, p, 2, lat, ws, prev, ds, out),
            DeltaSimResult::kReplayed);
  testutil::expect_schedules_bitwise_equal(out, simulate(g, n, p, lat));
}

TEST(DeltaSimProperty, InvalidStateFallsBack) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  DefaultLatencyModel lat;
  SimWorkspace ws;
  Schedule prev, out;
  Placement p = testutil::alternating3();
  simulate_into(g, n, p, lat, ws, prev, {});  // no recording: ds stays invalid

  DeltaSimState ds;
  p.set(2, 1);
  EXPECT_EQ(simulate_delta(g, n, p, 2, lat, ws, prev, ds, out),
            DeltaSimResult::kFellBack);
  EXPECT_TRUE(ds.valid);  // the fallback re-recorded
  testutil::expect_schedules_bitwise_equal(out, simulate(g, n, p, lat));
}

TEST(DeltaSimProperty, CounterAccounting) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  DefaultLatencyModel lat;
  SimWorkspace ws;
  Schedule prev, out;
  DeltaSimState ds;
  ds.min_prefix_fraction = 0.0;
  Placement p = testutil::alternating3();

  const std::uint64_t full0 = full_simulation_count();
  const std::uint64_t delta0 = delta_simulation_count();
  const std::uint64_t fb0 = delta_fallback_count();

  simulate_into(g, n, p, lat, ws, prev, {}, &ds);
  EXPECT_EQ(full_simulation_count(), full0 + 1);

  p.set(2, 1);  // replays
  ASSERT_EQ(simulate_delta(g, n, p, 2, lat, ws, prev, ds, out),
            DeltaSimResult::kReplayed);
  EXPECT_EQ(full_simulation_count(), full0 + 1);
  EXPECT_EQ(delta_simulation_count(), delta0 + 1);
  EXPECT_EQ(delta_fallback_count(), fb0);

  std::swap(prev, out);
  p.set(0, 1);  // entry move: falls back, which runs one full simulation
  ASSERT_EQ(simulate_delta(g, n, p, 0, lat, ws, prev, ds, out),
            DeltaSimResult::kFellBack);
  EXPECT_EQ(full_simulation_count(), full0 + 2);
  EXPECT_EQ(delta_simulation_count(), delta0 + 1);
  EXPECT_EQ(delta_fallback_count(), fb0 + 1);

  EXPECT_EQ(simulation_count(),
            full_simulation_count() + delta_simulation_count());
}

TEST(DeltaSimProperty, RejectsAliasedOutput) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  DefaultLatencyModel lat;
  SimWorkspace ws;
  Schedule prev, out;
  DeltaSimState ds;
  Placement p = testutil::alternating3();
  simulate_into(g, n, p, lat, ws, prev, {}, &ds);
  EXPECT_THROW(simulate_delta(g, n, p, 2, lat, ws, prev, ds, prev),
               std::invalid_argument);
  EXPECT_THROW(simulate_delta(g, n, p, 99, lat, ws, prev, ds, out),
               std::invalid_argument);
}

}  // namespace
}  // namespace giph
