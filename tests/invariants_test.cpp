// Tests of the schedule invariant checker: real simulator output must pass,
// and each class of corruption must be caught with a violation naming it.

#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

bool mentions(const InvariantReport& r, const std::string& word) {
  return r.summary().find(word) != std::string::npos;
}

TEST(Invariants, AcceptsHandComputedSchedule) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  const Schedule s = simulate(g, n, p, kLat);
  const InvariantReport r = check_schedule(g, n, p, kLat, s);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Invariants, AcceptsRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto c = testutil::random_case(seed, 4 + static_cast<int>(seed) % 20,
                                         1 + static_cast<int>(seed) % 6);
    const Schedule s = simulate(c.graph, c.network, c.placement, kLat);
    const InvariantReport r = check_schedule(c.graph, c.network, c.placement, kLat, s);
    EXPECT_TRUE(r.ok()) << "seed " << seed << ":\n" << r.summary();
  }
}

TEST(Invariants, AcceptsNoisySchedulesWithNoiseBounds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto c = testutil::random_case(seed * 13, 16, 4);
    std::mt19937_64 rng(seed);
    const Schedule s =
        simulate(c.graph, c.network, c.placement, kLat, SimOptions{0.4, &rng});
    const InvariantReport r = check_schedule(c.graph, c.network, c.placement, kLat, s,
                                             CheckOptions{.noise = 0.4});
    EXPECT_TRUE(r.ok()) << "seed " << seed << ":\n" << r.summary();
  }
}

TEST(Invariants, NoisyScheduleFailsExactDurationCheck) {
  const auto c = testutil::random_case(3, 12, 3);
  std::mt19937_64 rng(8);
  const Schedule s =
      simulate(c.graph, c.network, c.placement, kLat, SimOptions{0.4, &rng});
  // Checking a noisy run as if it were noise-free must flag duration drift.
  const InvariantReport r = check_schedule(c.graph, c.network, c.placement, kLat, s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "duration"));
}

TEST(Invariants, AcceptsSerializedTransferSchedules) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto c = testutil::random_case(seed * 41, 14, 4);
    SimOptions opt;
    opt.serialize_transfers = true;
    const Schedule s = simulate(c.graph, c.network, c.placement, kLat, opt);
    const InvariantReport r =
        check_schedule(c.graph, c.network, c.placement, kLat, s,
                       CheckOptions{.serialize_transfers = true});
    EXPECT_TRUE(r.ok()) << "seed " << seed << ":\n" << r.summary();
  }
}

TEST(Invariants, SerializedScheduleFailsContentionFreeCheck) {
  // Find a case where NIC queueing actually delays a transfer; checked
  // without serialize_transfers that delay is an edge-start violation.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto c = testutil::random_case(seed * 101, 14, 4);
    SimOptions opt;
    opt.serialize_transfers = true;
    const Schedule serialized = simulate(c.graph, c.network, c.placement, kLat, opt);
    const Schedule plain = simulate(c.graph, c.network, c.placement, kLat);
    if (serialized.makespan == plain.makespan) continue;  // contention never bit
    const InvariantReport r =
        check_schedule(c.graph, c.network, c.placement, kLat, serialized);
    EXPECT_FALSE(r.ok());
    return;
  }
  FAIL() << "no case with NIC contention found in 50 seeds";
}

TEST(Invariants, DetectsPrecedenceViolation) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  Schedule s = simulate(g, n, p, kLat);
  // Pull task 1's execution before its input arrives.
  s.tasks[1].start = 1.0;
  s.tasks[1].finish = 3.0;
  const InvariantReport r = check_schedule(g, n, p, kLat, s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "before its"));
}

TEST(Invariants, DetectsDeviceOverlap) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  Schedule s = simulate(g, n, p, kLat);
  // Overlap tasks 1 and 2 on the single-core device 0 (and break the chain's
  // arrival times too - both should be reported).
  s.tasks[2].start = s.tasks[1].start;
  s.tasks[2].finish = s.tasks[1].start + 6.0;
  const InvariantReport r = check_schedule(g, n, p, kLat, s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "concurrently"));
}

TEST(Invariants, DetectsFifoViolation) {
  // Two independent chains funneling onto device 0: swap the service order of
  // the two queued tasks while keeping everything else consistent enough.
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});  // ready 0
  g.add_task(Task{.compute = 1.0});  // ready 0, queued behind 0
  g.add_task(Task{.compute = 1.0});  // ready 0, queued behind 1
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  Placement p(3);
  for (int v = 0; v < 3; ++v) p.set(v, 0);
  Schedule s = simulate(g, n, p, kLat);
  ASSERT_EQ(s.tasks[1].start, 1.0);
  ASSERT_EQ(s.tasks[2].start, 2.0);
  std::swap(s.tasks[1], s.tasks[2]);
  // Equal ready times are unordered, so nudge task 1's readiness via an edge:
  // instead corrupt directly - task 2 ready at 0 starting after task 1 is
  // legal; what is illegal is overlap-free swapped *finish* bookkeeping only
  // if durations break. Here durations still hold and FIFO cannot trigger on
  // equal ready times, so assert the checker still accepts it (documenting
  // the tie-break freedom)...
  EXPECT_TRUE(check_schedule(g, n, p, kLat, s).ok());

  // ...and build a real FIFO violation: distinct ready times via a remote
  // parent, then swap service order.
  TaskGraph g2;
  g2.add_task(Task{.compute = 1.0});  // on d1, feeds task 1
  g2.add_task(Task{.compute = 1.0});  // on d0, ready when its input arrives
  g2.add_task(Task{.compute = 8.0});  // on d0, entry, ready at 0
  g2.add_edge(0, 1, 2.0);
  const DeviceNetwork n2 = testutil::two_devices();
  Placement p2(3);
  p2.set(0, 1);
  p2.set(1, 0);
  p2.set(2, 0);
  Schedule s2 = simulate(g2, n2, p2, kLat);
  ASSERT_GT(s2.tasks[1].start, s2.tasks[2].start);  // task 2 (ready 0) served first
  // Claim task 1 ran first instead: ready(2)=0 < ready(1) but start(2) > start(1).
  s2.tasks[1].start = 0.5 + 2.0;  // after its input arrives at 2.5
  s2.tasks[1].finish = s2.tasks[1].start + 1.0;
  s2.tasks[2].start = s2.tasks[1].finish;
  s2.tasks[2].finish = s2.tasks[2].start + 8.0;
  s2.makespan = s2.tasks[2].finish;
  // Rebuild dependent edge-less fields consistent with durations: task 1's
  // input edge is unchanged; no outgoing edges exist.
  const InvariantReport r2 = check_schedule(g2, n2, p2, kLat, s2);
  EXPECT_FALSE(r2.ok());
  EXPECT_TRUE(mentions(r2, "FIFO"));
}

TEST(Invariants, DetectsIdleDeviceWithWaitingTask) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  Schedule s = simulate(g, n, p, kLat);
  // Delay task 1 past its ready time with no one occupying the device.
  s.tasks[1].start += 1.0;
  s.tasks[1].finish += 1.0;
  s.edge_start[1] += 1.0;
  s.edge_finish[1] += 1.0;
  s.tasks[2].start += 1.0;
  s.tasks[2].finish += 1.0;
  s.makespan += 1.0;
  const InvariantReport r = check_schedule(g, n, p, kLat, s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "idle"));
}

TEST(Invariants, DetectsWrongDurationAndMakespan) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  Schedule good = simulate(g, n, p, kLat);

  Schedule bad = good;
  bad.tasks[2].finish += 0.5;  // also desyncs the makespan
  const InvariantReport r = check_schedule(g, n, p, kLat, bad);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "duration"));
  EXPECT_TRUE(mentions(r, "makespan"));

  Schedule wrong_span = good;
  wrong_span.makespan *= 2.0;
  EXPECT_TRUE(mentions(check_schedule(g, n, p, kLat, wrong_span), "makespan"));
}

TEST(Invariants, DetectsInfeasiblePlacementAndShapeMismatch) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0, .requires_hw = 0b10});
  DeviceNetwork n;
  n.add_device(Device{.supports_hw = 0b01});
  Placement p(1);
  p.set(0, 0);
  Schedule s;
  s.tasks.assign(1, TaskTiming{0.0, 1.0});
  s.makespan = 1.0;
  const InvariantReport r = check_schedule(g, n, p, kLat, s);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "requires hw"));

  Schedule short_sched;  // wrong task count
  EXPECT_TRUE(mentions(check_schedule(g, n, p, kLat, short_sched), "shape"));
}

TEST(Invariants, AcceptsFaultResults) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  const FaultPlan plan = parse_fault_plan("crash:1@3");
  const FaultSimResult res = simulate_with_faults(g, n, p, kLat, plan);
  ASSERT_FALSE(res.completed());
  const InvariantReport r = check_fault_result(g, n, p, kLat, res);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Invariants, DetectsCorruptedStrandedBookkeeping) {
  const TaskGraph g = testutil::chain3();
  const DeviceNetwork n = testutil::two_devices();
  const Placement p = testutil::alternating3();
  FaultSimResult res = simulate_with_faults(g, n, p, kLat, parse_fault_plan("crash:1@3"));
  ASSERT_FALSE(res.stranded.empty());
  FaultSimResult missing = res;
  missing.stranded.clear();
  EXPECT_TRUE(mentions(check_fault_result(g, n, p, kLat, missing), "stranded"));

  // A completed child of a stranded parent is impossible.
  FaultSimResult impossible = res;
  const int child = res.stranded.front() == 1 ? 2 : 1;
  impossible.schedule.tasks[child] = TaskTiming{30.0, 33.0};
  EXPECT_TRUE(mentions(check_fault_result(g, n, p, kLat, impossible), "parent"));
}

}  // namespace
}  // namespace giph
