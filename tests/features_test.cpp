#include "core/features.hpp"

#include <gtest/gtest.h>

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Placement m;
  std::vector<std::vector<int>> feasible;
  Fixture() : m(2) {
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 8.0});
    g.add_edge(0, 1, 20.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 2.0});
    n.set_symmetric_link(0, 1, 10.0, 1.0);
    m.set(0, 0);
    m.set(1, 1);
    feasible = feasible_sets(g, n);
  }
};

TEST(FeatureScales, MatchHandComputation) {
  Fixture f;
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  EXPECT_DOUBLE_EQ(s.compute, 6.0);
  EXPECT_DOUBLE_EQ(s.speed, 1.5);
  // w over feasible pairs: {4, 2, 8, 4} -> 4.5.
  EXPECT_DOUBLE_EQ(s.w, 4.5);
  EXPECT_DOUBLE_EQ(s.bytes, 20.0);
  EXPECT_DOUBLE_EQ(s.bw, 10.0);
  EXPECT_DOUBLE_EQ(s.dl, 1.0);
  EXPECT_DOUBLE_EQ(s.c, 1.0 + 2.0);
}

TEST(FeatureScales, DegenerateInputsAreGuarded) {
  TaskGraph g;
  g.add_task(Task{.compute = 0.0});
  DeviceNetwork n(1);
  n.device(0).speed = 1.0;
  const FeatureScales s = compute_feature_scales(g, n, kLat);
  EXPECT_GT(s.compute, 0.0);
  EXPECT_GT(s.w, 0.0);
  EXPECT_GT(s.c, 0.0);
  EXPECT_GT(s.bw, 0.0);
}

TEST(GpNetFeatures, NodeFeatureValues) {
  Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const GpNetFeatures feats =
      build_gpnet_features(net, f.g, f.n, f.m, kLat, sched, s);
  ASSERT_EQ(feats.node.rows(), net.num_nodes());
  ASSERT_EQ(feats.node.cols(), kNodeFeatureDim);
  for (int u = 0; u < net.num_nodes(); ++u) {
    const int v = net.node_task[u];
    const int d = net.node_device[u];
    EXPECT_DOUBLE_EQ(feats.node(u, 0), f.g.task(v).compute / s.compute);
    EXPECT_DOUBLE_EQ(feats.node(u, 1), f.n.device(d).speed / s.speed);
    EXPECT_DOUBLE_EQ(feats.node(u, 2), kLat.compute_time(f.g, f.n, v, d) / s.w);
  }
}

TEST(GpNetFeatures, StartTimePotentialIdentifiesBetterDevice) {
  Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const GpNetFeatures feats =
      build_gpnet_features(net, f.g, f.n, f.m, kLat, sched, s);
  // Task 1 currently on d1 starts at 4 + 1 + 2 = 7; on d0 it could start at
  // 4. Its potential for (1, d0) is (7 - 4)/s.w > 0; for its pivot it is 0.
  for (int u = 0; u < net.num_nodes(); ++u) {
    if (net.node_task[u] != 1) continue;
    if (net.node_device[u] == 0) {
      EXPECT_NEAR(feats.node(u, 3), 3.0 / s.w, 1e-12);
    } else {
      EXPECT_NEAR(feats.node(u, 3), 0.0, 1e-12);
    }
  }
}

TEST(GpNetFeatures, PotentialCanBeDisabled) {
  Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const GpNetFeatures feats =
      build_gpnet_features(net, f.g, f.n, f.m, kLat, sched, s, false);
  for (int u = 0; u < net.num_nodes(); ++u) EXPECT_EQ(feats.node(u, 3), 0.0);
}

TEST(GpNetFeatures, EdgeFeatureValues) {
  Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const GpNetFeatures feats =
      build_gpnet_features(net, f.g, f.n, f.m, kLat, sched, s);
  ASSERT_EQ(feats.edge.rows(), net.num_edges());
  for (int e = 0; e < net.num_edges(); ++e) {
    const auto [u1, u2] = net.view.edges[e];
    const int dk = net.node_device[u1];
    const int dl = net.node_device[u2];
    EXPECT_DOUBLE_EQ(feats.edge(e, 0), 20.0 / s.bytes);
    if (dk == dl) {
      EXPECT_EQ(feats.edge(e, 1), 0.0);  // local: infinite bandwidth
      EXPECT_EQ(feats.edge(e, 3), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(feats.edge(e, 1), s.bw / f.n.bandwidth(dk, dl));
      EXPECT_DOUBLE_EQ(feats.edge(e, 3),
                       kLat.comm_time(f.g, f.n, 0, dk, dl) / s.c);
    }
  }
}

TEST(GpNetFeatures, MergedEdgeFeaturesAppendMeans) {
  Fixture f;
  const GpNet net = build_gpnet(f.g, f.n, f.m, f.feasible);
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const GpNetFeatures feats =
      build_gpnet_features(net, f.g, f.n, f.m, kLat, sched, s);
  const nn::Matrix merged = append_mean_out_edge_features(net, feats);
  ASSERT_EQ(merged.cols(), kNodeFeatureDim + kEdgeFeatureDim);
  for (int u = 0; u < net.num_nodes(); ++u) {
    for (int j = 0; j < kNodeFeatureDim; ++j) {
      EXPECT_EQ(merged(u, j), feats.node(u, j));
    }
    const auto& oes = net.view.out_edges[u];
    if (oes.empty()) {
      for (int j = 0; j < kEdgeFeatureDim; ++j) {
        EXPECT_EQ(merged(u, kNodeFeatureDim + j), 0.0);
      }
    } else {
      double sum0 = 0.0;
      for (int e : oes) sum0 += feats.edge(e, 0);
      EXPECT_NEAR(merged(u, kNodeFeatureDim), sum0 / oes.size(), 1e-12);
    }
  }
}

TEST(TaskGraphFeatures, ShapesAndBestImprovement) {
  Fixture f;
  const Schedule sched = simulate(f.g, f.n, f.m, kLat);
  const FeatureScales s = compute_feature_scales(f.g, f.n, kLat);
  const TaskGraphFeatures feats =
      build_task_graph_features(f.g, f.n, f.m, kLat, sched, f.feasible, s);
  ASSERT_EQ(feats.node.rows(), 2);
  ASSERT_EQ(feats.edge.rows(), 1);
  // Task 1's best start improvement is 3 (moving to d0), normalized by s.w.
  EXPECT_NEAR(feats.node(1, 3), 3.0 / s.w, 1e-12);
  // Task 0 is an entry: no improvement possible.
  EXPECT_EQ(feats.node(0, 3), 0.0);
}

}  // namespace
}  // namespace giph
