#include <gtest/gtest.h>

#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Instance {
  TaskGraph g;
  DeviceNetwork n;
  Instance() {
    std::mt19937_64 rng(55);
    TaskGraphParams gp;
    gp.num_tasks = 8;
    NetworkParams np;
    np.num_devices = 4;
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
  }
  InstanceSampler sampler() {
    return [this](std::mt19937_64&) { return ProblemInstance{&g, &n}; };
  }
};

TEST(TrainerOptions, NormalizedAdvantagesRun) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 5;
  t.normalize_advantages = true;
  EXPECT_NO_THROW(train_reinforce(agent, kLat, inst.sampler(), t));
}

TEST(TrainerOptions, BatchedEpisodesRun) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 6;
  t.batch_episodes = 3;
  EXPECT_NO_THROW(train_reinforce(agent, kLat, inst.sampler(), t));
}

TEST(TrainerOptions, LrDecaySmoke) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 8;
  t.lr = 0.01;
  t.lr_final = 0.001;
  EXPECT_NO_THROW(train_reinforce(agent, kLat, inst.sampler(), t));
}

TEST(TrainerOptions, NoisyTrainingRuns) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 4;
  t.noise = 0.2;
  const TrainStats stats = train_reinforce(agent, kLat, inst.sampler(), t);
  EXPECT_EQ(stats.episode_best.size(), 4u);
}

TEST(TrainerOptions, CustomObjectiveFactoryIsUsed) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 3;
  int factory_calls = 0;
  t.objective_factory = [&](const TaskGraph&, const DeviceNetwork&, std::mt19937_64&) {
    ++factory_calls;
    return total_cost_objective(kLat);
  };
  t.normalizer = [](const TaskGraph&, const DeviceNetwork&) { return 10.0; };
  const TrainStats stats = train_reinforce(agent, kLat, inst.sampler(), t);
  EXPECT_EQ(factory_calls, 3);
  // Objectives are total-cost / 10; initial values must be positive.
  for (double v : stats.episode_initial) EXPECT_GT(v, 0.0);
}

TEST(TrainerOptions, CustomNormalizerScalesObjective) {
  Instance inst;
  GiPHOptions o;
  GiPHAgent a1(o), a2(o);
  TrainOptions t1;
  t1.episodes = 2;
  const TrainStats s1 = train_reinforce(a1, kLat, inst.sampler(), t1);
  TrainOptions t2;
  t2.episodes = 2;
  t2.normalizer = [&](const TaskGraph& g, const DeviceNetwork& n) {
    return 2.0 * slr_denominator(g, n, kLat);
  };
  const TrainStats s2 = train_reinforce(a2, kLat, inst.sampler(), t2);
  EXPECT_NEAR(s1.episode_initial[0], 2.0 * s2.episode_initial[0], 1e-9);
}

TEST(ActorCritic, DecideProvidesValueEstimate) {
  Instance inst;
  GiPHOptions o;
  o.use_critic = true;
  GiPHAgent agent(o);
  std::mt19937_64 rng(3);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  const ActionDecision d = agent.decide(env, rng, false);
  ASSERT_TRUE(d.value);
  EXPECT_EQ(d.value->value.rows(), 1);
  EXPECT_EQ(d.value->value.cols(), 1);
  EXPECT_TRUE(std::isfinite(d.value->value(0, 0)));
}

TEST(ActorCritic, CriticAddsParameters) {
  GiPHOptions plain, with_critic;
  with_critic.use_critic = true;
  GiPHAgent a(plain), b(with_critic);
  EXPECT_GT(b.registry().num_scalars(), a.registry().num_scalars());
}

TEST(ActorCritic, TrainingRunsAndValuePredictionsImprove) {
  Instance inst;
  GiPHOptions o;
  o.use_critic = true;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 60;
  t.gamma = 0.1;
  t.lr = 0.003;
  t.discount_state_weight = false;
  EXPECT_NO_THROW(train_reinforce(agent, kLat, inst.sampler(), t));
  // The trained critic's value on a fresh state should be finite and of a
  // sane magnitude (returns are SLR-improvement scaled).
  std::mt19937_64 rng(5);
  const double denom = slr_denominator(inst.g, inst.n, kLat);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng), denom);
  const ActionDecision d = agent.decide(env, rng, false);
  ASSERT_TRUE(d.value);
  EXPECT_LT(std::abs(d.value->value(0, 0)), 100.0);
}

TEST(ActorCritic, TaskEftVariantAlsoSupportsCritic) {
  Instance inst;
  GiPHOptions o;
  o.use_critic = true;
  o.use_gpnet = false;
  GiPHAgent agent(o);
  std::mt19937_64 rng(7);
  PlacementSearchEnv env(inst.g, inst.n, kLat, makespan_objective(kLat),
                         random_placement(inst.g, inst.n, rng));
  EXPECT_TRUE(agent.decide(env, rng, false).value);
}

TEST(TrainerOptions, EpisodeLengthFactorControlsSteps) {
  Instance inst;
  // A counting policy to observe the number of decide() calls per episode.
  class Counting final : public SearchPolicy {
   public:
    int decides = 0;
    ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng, bool) override {
      ++decides;
      std::uniform_int_distribution<int> t(0, env.graph().num_tasks() - 1);
      const int task = t(rng);
      const auto& devs = env.feasible()[task];
      return ActionDecision{SearchAction{task, devs[0]}, nullptr, std::nullopt};
    }
    std::string name() const override { return "counting"; }
  } policy;
  TrainOptions t;
  t.episodes = 2;
  t.episode_len_factor = 3;
  train_reinforce(policy, kLat, inst.sampler(), t);
  EXPECT_EQ(policy.decides, 2 * 3 * inst.g.num_tasks());
}

}  // namespace
}  // namespace giph
