#include "core/search_env.hpp"

#include <gtest/gtest.h>

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Placement init;
  Fixture() : init(2) {
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, 1, 10.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 1.0});
    n.set_symmetric_link(0, 1, 1.0, 0.0);  // crossing costs 10
    init.set(0, 0);
    init.set(1, 1);  // initial: split, makespan = 4 + 10 + 4 = 18
  }
};

TEST(SearchEnv, InitialStateAndObjective) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  EXPECT_DOUBLE_EQ(env.objective(), 18.0);
  EXPECT_DOUBLE_EQ(env.best_objective(), 18.0);
  EXPECT_EQ(env.last_moved_task(), -1);
  EXPECT_EQ(env.steps_taken(), 0);
  EXPECT_EQ(env.placement(), f.init);
}

TEST(SearchEnv, NormalizerTurnsObjectiveIntoSlr) {
  Fixture f;
  const double denom = slr_denominator(f.g, f.n, kLat);
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init, denom);
  EXPECT_DOUBLE_EQ(env.objective(), 18.0 / denom);
}

TEST(SearchEnv, ApplyReturnsImprovementReward) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  // Moving task 1 next to task 0 removes the 10-cost transfer.
  const double r = env.apply(SearchAction{1, 0});
  EXPECT_DOUBLE_EQ(r, 18.0 - 8.0);
  EXPECT_DOUBLE_EQ(env.objective(), 8.0);
  EXPECT_EQ(env.last_moved_task(), 1);
  EXPECT_EQ(env.steps_taken(), 1);
}

TEST(SearchEnv, NegativeRewardOnDegradation) {
  Fixture f;
  f.init.set(1, 0);  // start co-located (makespan 8)
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  const double r = env.apply(SearchAction{1, 1});
  EXPECT_DOUBLE_EQ(r, 8.0 - 18.0);
  // Best is still the initial placement.
  EXPECT_DOUBLE_EQ(env.best_objective(), 8.0);
  EXPECT_EQ(env.best_placement().device_of(1), 0);
}

TEST(SearchEnv, BestTracksMinimumOverTrajectory) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  env.apply(SearchAction{1, 0});  // 8
  env.apply(SearchAction{1, 1});  // back to 18
  EXPECT_DOUBLE_EQ(env.objective(), 18.0);
  EXPECT_DOUBLE_EQ(env.best_objective(), 8.0);
}

TEST(SearchEnv, ApplyRejectsInfeasible) {
  Fixture f;
  f.g.task(0).requires_hw = 0b1;
  f.n.device(0).supports_hw = 0b1;
  f.n.device(1).supports_hw = 0;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  EXPECT_THROW(env.apply(SearchAction{0, 1}), std::invalid_argument);
  EXPECT_THROW(env.apply(SearchAction{5, 0}), std::invalid_argument);
}

TEST(SearchEnv, InfeasibleInitialPlacementRejected) {
  Fixture f;
  Placement bad(2);
  bad.set(0, 0);  // task 1 unplaced
  EXPECT_THROW(
      PlacementSearchEnv(f.g, f.n, kLat, makespan_objective(kLat), bad),
      std::invalid_argument);
}

TEST(SearchEnv, ApplyPlacementReplacesWholeState) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  Placement p(2);
  p.set(0, 1);
  p.set(1, 1);
  const double r = env.apply_placement(p);
  EXPECT_DOUBLE_EQ(r, 18.0 - 8.0);
  EXPECT_EQ(env.placement(), p);
  EXPECT_EQ(env.last_moved_task(), -1);
}

TEST(SearchEnv, ResetToInitialRestoresStateKeepsBest) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  env.apply(SearchAction{1, 0});
  env.reset_to_initial();
  EXPECT_EQ(env.placement(), f.init);
  EXPECT_DOUBLE_EQ(env.objective(), 18.0);
  EXPECT_EQ(env.last_moved_task(), -1);
  EXPECT_DOUBLE_EQ(env.best_objective(), 8.0);  // best survives the reset
}

TEST(SearchEnv, RebaseWarmStartsFromDamagedPlacement) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  env.apply(SearchAction{1, 0});  // best = 8 (co-located)
  ASSERT_DOUBLE_EQ(env.best_objective(), 8.0);

  // A fault forced task 0 onto device 1: rebase resumes from that placement.
  Placement damaged(2);
  damaged.set(0, 1);
  damaged.set(1, 1);
  env.rebase(damaged);
  EXPECT_EQ(env.placement(), damaged);
  EXPECT_DOUBLE_EQ(env.objective(), 8.0);  // co-located on device 1
  EXPECT_EQ(env.steps_taken(), 0);
  EXPECT_EQ(env.last_moved_task(), -1);
  // Best is re-anchored to the new episode, not the pre-fault history.
  EXPECT_DOUBLE_EQ(env.best_objective(), 8.0);
  EXPECT_EQ(env.best_placement(), damaged);

  // reset_to_initial now returns to the rebased placement.
  env.apply(SearchAction{1, 0});  // split: 18
  env.reset_to_initial();
  EXPECT_EQ(env.placement(), damaged);
}

TEST(SearchEnv, RebaseOntoNewNetwork) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);

  // Post-fault network: one surviving, twice-as-fast device.
  DeviceNetwork survivor;
  survivor.add_device(Device{.speed = 2.0});
  Placement all_on_0(2);
  all_on_0.set(0, 0);
  all_on_0.set(1, 0);
  env.rebase(survivor, all_on_0);
  EXPECT_DOUBLE_EQ(env.objective(), 4.0);  // (4 + 4) / speed 2
  EXPECT_DOUBLE_EQ(env.best_objective(), 4.0);
  // Device 1 no longer exists: moving there is infeasible.
  EXPECT_THROW(env.apply(SearchAction{1, 1}), std::invalid_argument);
}

TEST(SearchEnv, RebaseRejectsInfeasiblePlacement) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  Placement bad(2);
  bad.set(0, 0);  // task 1 unplaced
  EXPECT_THROW(env.rebase(bad), std::invalid_argument);
  // A failed rebase leaves the env usable with its previous state.
  EXPECT_DOUBLE_EQ(env.objective(), 18.0);
}

TEST(SearchEnv, ScheduleMatchesCurrentPlacement) {
  Fixture f;
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), f.init);
  EXPECT_DOUBLE_EQ(env.schedule().makespan, 18.0);
  env.apply(SearchAction{1, 0});
  EXPECT_DOUBLE_EQ(env.schedule().makespan, 8.0);
}

}  // namespace
}  // namespace giph
