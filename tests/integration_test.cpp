// Cross-module integration tests: full train -> persist -> reload -> place
// pipelines and compositions of substrates (topology + simulator + HEFT,
// contention + search, multi-core + gpNet policy).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

// The umbrella header must pull in the whole public API (this test is also
// its compile check).
#include "giph.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

TEST(Integration, TrainPersistReloadPlace) {
  std::mt19937_64 rng(77);
  TaskGraphParams gp;
  gp.num_tasks = 8;
  NetworkParams np;
  np.num_devices = 4;
  const Dataset ds = generate_dataset({gp}, {np}, 6, 2, rng);

  GiPHOptions o;
  o.seed = 5;
  GiPHAgent trained(o);
  TrainOptions t;
  t.episodes = 25;
  t.gamma = 0.1;
  t.discount_state_weight = false;
  train_reinforce(trained, kLat,
                  [&ds](std::mt19937_64& r) {
                    std::uniform_int_distribution<std::size_t> gi(0, ds.graphs.size() - 1);
                    std::uniform_int_distribution<std::size_t> ni(0, ds.networks.size() - 1);
                    return ProblemInstance{&ds.graphs[gi(r)], &ds.networks[ni(r)]};
                  },
                  t);

  const std::string model = testing::TempDir() + "giph_integration.params";
  trained.save(model);
  GiPHAgent reloaded(o);
  reloaded.load(model);
  std::remove(model.c_str());

  // Serialize a problem instance and round-trip it.
  std::stringstream gs, ns;
  write_task_graph(gs, ds.graphs[0]);
  write_device_network(ns, ds.networks[0]);
  const TaskGraph g = read_task_graph(gs);
  const DeviceNetwork n = read_device_network(ns);

  std::mt19937_64 er(9);
  const double denom = slr_denominator(g, n, kLat);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                         random_placement(g, n, er), denom);
  const SearchTrace trace = run_search(reloaded, env, 2 * g.num_tasks(), er);
  EXPECT_LE(trace.best_so_far.back(), trace.initial + 1e-12);
  EXPECT_TRUE(is_feasible(g, n, trace.best_placement));

  // The final placement renders to a schedule trace without issues.
  const Schedule sched = simulate(g, n, trace.best_placement, kLat);
  std::stringstream csv;
  write_schedule_csv(csv, g, n, trace.best_placement, sched);
  EXPECT_FALSE(ascii_gantt(g, n, trace.best_placement, sched).empty());
}

TEST(Integration, SparseTopologyFlowsThroughHeftAndSimulator) {
  // A line topology: d0 - d1 - d2 - d3. HEFT must respect the projected
  // multi-hop costs and the simulator agrees with its decisions.
  std::mt19937_64 rng(13);
  TaskGraphParams gp;
  gp.num_tasks = 10;
  const TaskGraph g = generate_task_graph(gp, rng);
  DeviceNetwork n;
  for (int i = 0; i < 4; ++i) n.add_device(Device{.speed = 2.0 + i});
  apply_topology(n, {{0, 1, 20.0, 0.5}, {1, 2, 20.0, 0.5}, {2, 3, 20.0, 0.5}});
  EXPECT_DOUBLE_EQ(n.delay(0, 3), 1.5);

  const HeftResult heft = heft_schedule(g, n, kLat);
  const CpopResult cpop = cpop_schedule(g, n, kLat);
  const double heft_ms = makespan(g, n, heft.placement, kLat);
  EXPECT_GT(heft_ms, 0.0);
  EXPECT_TRUE(is_feasible(g, n, cpop.placement));
  // Both heuristics beat the average random placement on this topology.
  double random_ms = 0.0;
  for (int i = 0; i < 10; ++i) {
    random_ms += makespan(g, n, random_placement(g, n, rng), kLat);
  }
  EXPECT_LT(heft_ms, random_ms / 10);
}

TEST(Integration, SearchUnderContentionModel) {
  // The search environment composes with the NIC-contention simulator via a
  // custom objective.
  std::mt19937_64 rng(17);
  TaskGraphParams gp;
  gp.num_tasks = 9;
  const TaskGraph g = generate_task_graph(gp, rng);
  NetworkParams np;
  np.num_devices = 4;
  DeviceNetwork n = generate_device_network(np, rng);
  ensure_all_kinds(n, np.num_hw_kinds, rng);

  const Objective contended = [](const TaskGraph& gg, const DeviceNetwork& nn,
                                 const Placement& p) {
    SimOptions opt;
    opt.serialize_transfers = true;
    static const DefaultLatencyModel lat;
    return simulate(gg, nn, p, lat, opt).makespan;
  };
  PlacementSearchEnv env(g, n, kLat, contended, random_placement(g, n, rng));
  RandomWalkPolicy walk;
  const SearchTrace trace = run_search(walk, env, 20, rng);
  EXPECT_LE(trace.best_so_far.back(), trace.initial + 1e-12);
}

TEST(Integration, MultiCoreDevicesInteractWithGiphPolicy) {
  std::mt19937_64 rng(19);
  TaskGraphParams gp;
  gp.num_tasks = 8;
  const TaskGraph g = generate_task_graph(gp, rng);
  DeviceNetwork n;
  n.add_device(Device{.speed = 4.0, .cores = 4, .name = "server"});
  n.add_device(Device{.speed = 1.0, .name = "edge0"});
  n.add_device(Device{.speed = 1.0, .name = "edge1"});
  n.set_symmetric_link(0, 1, 5.0, 1.0);
  n.set_symmetric_link(0, 2, 5.0, 1.0);
  n.set_symmetric_link(1, 2, 5.0, 1.0);

  GiPHOptions o;
  GiPHAgent agent(o);
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                         random_placement(g, n, rng));
  for (int t = 0; t < 10; ++t) {
    const ActionDecision d = agent.decide(env, rng, false);
    EXPECT_NO_THROW(env.apply(d.action));
  }
  // Everything on the 4-core fast server beats spreading across slow edges.
  Placement all_server(g.num_tasks());
  for (int v = 0; v < g.num_tasks(); ++v) all_server.set(v, 0);
  Placement all_edge(g.num_tasks());
  for (int v = 0; v < g.num_tasks(); ++v) all_edge.set(v, 1);
  EXPECT_LT(makespan(g, n, all_server, kLat), makespan(g, n, all_edge, kLat));
}

TEST(Integration, CostObjectiveTrainingViaFactory) {
  std::mt19937_64 rng(23);
  TaskGraphParams gp;
  gp.num_tasks = 6;
  NetworkParams np;
  np.num_devices = 3;
  const Dataset ds = generate_dataset({gp}, {np}, 3, 1, rng);
  GiPHOptions o;
  GiPHAgent agent(o);
  TrainOptions t;
  t.episodes = 10;
  t.objective_factory = [](const TaskGraph&, const DeviceNetwork&, std::mt19937_64&) {
    static const DefaultLatencyModel lat;
    return total_cost_objective(lat);
  };
  t.normalizer = [](const TaskGraph&, const DeviceNetwork&) { return 100.0; };
  const TrainStats stats = train_reinforce(
      agent, kLat,
      [&ds](std::mt19937_64&) { return ProblemInstance{&ds.graphs[0], &ds.networks[0]}; },
      t);
  for (double v : stats.episode_best) {
    EXPECT_GT(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace giph
