#pragma once

// Shared test fixtures: the hand-computed two-device network / three-task
// chain used across the simulator-layer tests, seeded random problem
// builders, and the bitwise schedule comparison. Kept header-only so every
// test file (and the sanitize subset) can use them without extra link deps.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/placement.hpp"
#include "sim/simulator.hpp"

namespace giph {
namespace testutil {

/// Two devices (speeds 1 and 2) joined by a bandwidth-2, delay-1 link. The
/// canonical hand-computable network of the simulator tests.
inline DeviceNetwork two_devices() {
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  n.add_device(Device{.speed = 2.0});
  n.set_symmetric_link(0, 1, 2.0, 1.0);  // bandwidth 2 bytes/time, delay 1
  return n;
}

/// Chain 0 -> 1 -> 2 (computes 2/4/6, edges 8/16 bytes). Placed with
/// alternating3() on two_devices(): t0 [0,2] d0, t1 [7,9] d1, t2 [18,24] d0,
/// makespan 24 (hand-derived in simulator_test.cpp).
inline TaskGraph chain3() {
  TaskGraph g;
  g.add_task(Task{.compute = 2.0});
  g.add_task(Task{.compute = 4.0});
  g.add_task(Task{.compute = 6.0});
  g.add_edge(0, 1, 8.0);
  g.add_edge(1, 2, 16.0);
  return g;
}

/// The d0 / d1 / d0 placement of chain3().
inline Placement alternating3() {
  Placement p(3);
  p.set(0, 0);
  p.set(1, 1);
  p.set(2, 0);
  return p;
}

/// A seeded random (graph, network, placement) triple. The network is patched
/// with ensure_feasible so the placement always exists.
struct RandomCase {
  TaskGraph graph;
  DeviceNetwork network;
  Placement placement;
};

inline RandomCase random_case(std::uint64_t seed, int num_tasks = 16,
                              int num_devices = 5) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = num_tasks;
  NetworkParams np;
  np.num_devices = num_devices;
  RandomCase c;
  c.graph = generate_task_graph(gp, rng);
  c.network = generate_device_network(np, rng);
  ensure_feasible(c.graph, c.network, rng);
  c.placement = random_placement(c.graph, c.network, rng);
  return c;
}

/// Asserts every field of the two schedules is bitwise identical (EXPECT_EQ
/// on doubles, not EXPECT_DOUBLE_EQ: the contract is exact equality).
inline void expect_schedules_bitwise_equal(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  ASSERT_EQ(a.edge_start.size(), b.edge_start.size());
  ASSERT_EQ(a.edge_finish.size(), b.edge_finish.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t v = 0; v < a.tasks.size(); ++v) {
    EXPECT_EQ(a.tasks[v].start, b.tasks[v].start) << "task " << v;
    EXPECT_EQ(a.tasks[v].finish, b.tasks[v].finish) << "task " << v;
  }
  for (std::size_t e = 0; e < a.edge_start.size(); ++e) {
    EXPECT_EQ(a.edge_start[e], b.edge_start[e]) << "edge " << e;
    EXPECT_EQ(a.edge_finish[e], b.edge_finish[e]) << "edge " << e;
  }
}

}  // namespace testutil
}  // namespace giph
