// Differential property test of the ScheduleIndex EST fast path: for every
// (task, device) query on ~200 seeded random schedules, the indexed
// earliest_start_on_queued must equal the naive O(V) scan bitwise. Before
// this test the index was only exercised indirectly through feature sweeps.

#include "sim/schedule_index.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

TEST(ScheduleIndexProperty, IndexedEstMatchesNaiveScanOnRandomSchedules) {
  SimWorkspace ws;
  Schedule sched;
  ScheduleIndex index;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const int nt = 2 + static_cast<int>(seed % 29);
    const int nd = 1 + static_cast<int>((seed * 7) % 8);
    const auto c = testutil::random_case(seed, nt, nd);
    simulate_into(c.graph, c.network, c.placement, kLat, ws, sched);
    index.build(sched, c.placement, c.network.num_devices());
    for (int v = 0; v < c.graph.num_tasks(); ++v) {
      for (int d = 0; d < c.network.num_devices(); ++d) {
        const double naive =
            earliest_start_on_queued(sched, c.graph, c.network, c.placement, kLat, v, d);
        const double fast = earliest_start_on_queued(sched, c.graph, c.network,
                                                     c.placement, kLat, index, v, d);
        ASSERT_EQ(fast, naive) << "seed " << seed << " task " << v << " device " << d;
      }
    }
  }
}

TEST(ScheduleIndexProperty, NoisySchedulesMatchToo) {
  // Noise produces irregular, non-representable start/finish values - the
  // worst case for any sorted-prefix-max bookkeeping.
  ScheduleIndex index;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto c = testutil::random_case(seed * 17, 20, 5);
    std::mt19937_64 rng(seed);
    const Schedule sched =
        simulate(c.graph, c.network, c.placement, kLat, SimOptions{0.5, &rng});
    index.build(sched, c.placement, c.network.num_devices());
    for (int v = 0; v < c.graph.num_tasks(); ++v) {
      for (int d = 0; d < c.network.num_devices(); ++d) {
        ASSERT_EQ(earliest_start_on_queued(sched, c.graph, c.network, c.placement, kLat,
                                           index, v, d),
                  earliest_start_on_queued(sched, c.graph, c.network, c.placement, kLat,
                                           v, d))
            << "seed " << seed << " task " << v << " device " << d;
      }
    }
  }
}

}  // namespace
}  // namespace giph
