#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Placement p;
  Schedule sched;
  Fixture() : p(3) {
    g.add_task(Task{.compute = 2.0, .name = "load"});
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 2.0});
    g.add_edge(0, 1, 8.0);
    g.add_edge(1, 2, 8.0);
    n.add_device(Device{.speed = 1.0, .name = "cpu"});
    n.add_device(Device{.speed = 2.0});
    n.set_symmetric_link(0, 1, 2.0, 1.0);
    p.set(0, 0);
    p.set(1, 1);
    p.set(2, 1);
    sched = simulate(g, n, p, kLat);
  }
};

TEST(Trace, CsvHasHeaderAndAllRows) {
  Fixture f;
  std::stringstream out;
  write_schedule_csv(out, f.g, f.n, f.p, f.sched);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "kind,id,name,device,peer_device,start,finish");
  int tasks = 0, edges = 0;
  while (std::getline(out, line)) {
    if (line.rfind("task,", 0) == 0) ++tasks;
    if (line.rfind("edge,", 0) == 0) ++edges;
  }
  EXPECT_EQ(tasks, 3);
  EXPECT_EQ(edges, 2);
}

TEST(Trace, CsvUsesNamesAndTimes) {
  Fixture f;
  std::stringstream out;
  write_schedule_csv(out, f.g, f.n, f.p, f.sched);
  const std::string text = out.str();
  EXPECT_NE(text.find("task,0,load,0,,0,2"), std::string::npos);
  EXPECT_NE(text.find("edge,0,0->1,0,1,"), std::string::npos);
}

TEST(Trace, GanttHasOneRowPerDevice) {
  Fixture f;
  const std::string gantt = ascii_gantt(f.g, f.n, f.p, f.sched, 40);
  EXPECT_NE(gantt.find("cpu"), std::string::npos);
  EXPECT_NE(gantt.find("d1"), std::string::npos);
  int rows = 0;
  for (char c : gantt) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 1 + f.n.num_devices());
}

TEST(Trace, GanttMarksTasksOnTheirDevices) {
  Fixture f;
  const std::string gantt = ascii_gantt(f.g, f.n, f.p, f.sched, 40);
  // Task 0 ('A') runs on device 0 (row "cpu..."), tasks 1/2 ('B'/'C') on d1.
  std::stringstream ss(gantt);
  std::string header, row0, row1;
  std::getline(ss, header);
  std::getline(ss, row0);
  std::getline(ss, row1);
  EXPECT_NE(row0.find('A'), std::string::npos);
  EXPECT_EQ(row0.find('B'), std::string::npos);
  EXPECT_NE(row1.find('B'), std::string::npos);
  EXPECT_NE(row1.find('C'), std::string::npos);
}

TEST(Trace, CsvTimesRoundTripToExactDoubles) {
  // Noisy runs produce non-representable times - exactly the values the old
  // default (6-digit) precision truncated. Every start/finish parsed back
  // from the CSV must equal the schedule's double bitwise.
  Fixture f;
  std::mt19937_64 rng(42);
  const Schedule noisy = simulate(f.g, f.n, f.p, kLat, SimOptions{0.37, &rng});
  std::stringstream out;
  write_schedule_csv(out, f.g, f.n, f.p, noisy);

  std::string line;
  std::getline(out, line);  // header
  int rows = 0;
  while (std::getline(out, line)) {
    // start and finish are the two last comma-separated fields.
    const auto last = line.rfind(',');
    const auto second_last = line.rfind(',', last - 1);
    const double finish = std::stod(line.substr(last + 1));
    const double start = std::stod(line.substr(second_last + 1, last - second_last - 1));
    const bool is_task = line.rfind("task,", 0) == 0;
    const int id = std::stoi(line.substr(5, line.find(',', 5) - 5));
    if (is_task) {
      EXPECT_EQ(start, noisy.tasks[id].start) << line;
      EXPECT_EQ(finish, noisy.tasks[id].finish) << line;
    } else {
      EXPECT_EQ(start, noisy.edge_start[id]) << line;
      EXPECT_EQ(finish, noisy.edge_finish[id]) << line;
    }
    ++rows;
  }
  EXPECT_EQ(rows, f.g.num_tasks() + f.g.num_edges());
}

TEST(Trace, CsvRestoresStreamPrecision) {
  Fixture f;
  std::stringstream out;
  out.precision(3);
  write_schedule_csv(out, f.g, f.n, f.p, f.sched);
  EXPECT_EQ(out.precision(), 3);
}

TEST(Trace, GanttHandlesSingleTask) {
  TaskGraph g;
  g.add_task(Task{.compute = 1.0});
  DeviceNetwork n;
  n.add_device(Device{.speed = 1.0});
  Placement p(1);
  p.set(0, 0);
  const Schedule s = simulate(g, n, p, kLat);
  const std::string gantt = ascii_gantt(g, n, p, s, 10);
  EXPECT_NE(gantt.find("AAAAAAAAAA"), std::string::npos);
}

}  // namespace
}  // namespace giph
