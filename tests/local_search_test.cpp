#include "baselines/local_search.hpp"

#include <gtest/gtest.h>

#include "core/reinforce.hpp"
#include "gen/dataset.hpp"

namespace giph {
namespace {

const DefaultLatencyModel kLat;

struct Fixture {
  TaskGraph g;
  DeviceNetwork n;
  Fixture() {
    g.add_task(Task{.compute = 4.0});
    g.add_task(Task{.compute = 4.0});
    g.add_edge(0, 1, 50.0);
    n.add_device(Device{.speed = 1.0});
    n.add_device(Device{.speed = 4.0});
    n.set_symmetric_link(0, 1, 1.0, 1.0);
  }
};

TEST(HillClimb, TakesTheBestImprovingMove) {
  Fixture f;
  Placement worst(2);
  worst.set(0, 0);
  worst.set(1, 1);  // split on a terrible link
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), worst);
  HillClimbPolicy policy;
  std::mt19937_64 rng(1);
  const ActionDecision d = policy.decide(env, rng, false);
  // The single best move: co-locate on the fast device (task 0 -> d1).
  EXPECT_EQ(d.action.task, 0);
  EXPECT_EQ(d.action.device, 1);
}

TEST(HillClimb, ConvergesToOptimumOnTinyInstance) {
  Fixture f;
  std::mt19937_64 rng(2);
  const double denom = slr_denominator(f.g, f.n, kLat);
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat),
                         random_placement(f.g, f.n, rng), denom);
  HillClimbPolicy policy;
  run_search(policy, env, 6, rng);
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  EXPECT_NEAR(env.best_objective(), makespan(f.g, f.n, opt, kLat) / denom, 1e-9);
}

TEST(HillClimb, EscapesLocalOptimaWithRandomMoves) {
  Fixture f;
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);  // already optimal: no improving move exists
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), opt);
  HillClimbPolicy policy;
  std::mt19937_64 rng(3);
  EXPECT_NO_THROW(env.apply(policy.decide(env, rng, false).action));
}

TEST(SimulatedAnnealing, FindsOptimumOnTinyInstance) {
  Fixture f;
  std::mt19937_64 rng(4);
  const double denom = slr_denominator(f.g, f.n, kLat);
  Placement worst(2);
  worst.set(0, 0);
  worst.set(1, 1);
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), worst, denom);
  // Reaching the optimum from the co-located local optimum requires crossing
  // a ~24-SLR barrier: start hot enough to accept it.
  AnnealingOptions opts;
  opts.initial_temperature = 50.0;
  opts.cooling = 0.95;
  SimulatedAnnealingPolicy policy(opts);
  policy.begin_episode();
  run_search(policy, env, 200, rng);
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  EXPECT_NEAR(env.best_objective(), makespan(f.g, f.n, opt, kLat) / denom, 1e-9);
}

TEST(SimulatedAnnealing, RevertsRejectedMovesAtLowTemperature) {
  Fixture f;
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  AnnealingOptions opts;
  opts.initial_temperature = 1e-9;  // effectively greedy: reject any worsening
  SimulatedAnnealingPolicy policy(opts);
  policy.begin_episode();
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), opt);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 40; ++i) env.apply(policy.decide(env, rng, false).action);
  // Any degrading move must have been undone on the following step, so the
  // final state is at most one move away from the optimum and the best
  // placement is the optimum itself.
  EXPECT_EQ(env.best_placement(), opt);
}

TEST(TabuSearch, MovesEvenWhenNoImprovementExists) {
  Fixture f;
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);  // optimum: every neighbor is worse, tabu still moves
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), opt);
  TabuSearchPolicy policy;
  policy.begin_episode();
  std::mt19937_64 rng(7);
  const ActionDecision d = policy.decide(env, rng, false);
  EXPECT_NE(d.action.device, opt.device_of(d.action.task));
}

TEST(TabuSearch, DoesNotImmediatelyUndoItsMoves) {
  Fixture f;
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), opt);
  TabuSearchPolicy policy;
  policy.begin_episode();
  std::mt19937_64 rng(8);
  const ActionDecision first = policy.decide(env, rng, false);
  env.apply(first.action);
  const ActionDecision second = policy.decide(env, rng, false);
  // Undoing `first` exactly (same task back to d1) is tabu; with two tasks
  // and two devices the only non-tabu steepest move touches something else.
  const bool undoes = second.action.task == first.action.task &&
                      second.action.device == 1;
  EXPECT_FALSE(undoes);
}

TEST(TabuSearch, EscapesLocalOptimumViaTenure) {
  Fixture f;
  // Start at the co-located local optimum on the slow device; the optimum on
  // the fast device requires crossing a bad intermediate state. Tabu's
  // accept-best-even-if-worse rule crosses it deterministically.
  Placement slow(2);
  slow.set(0, 0);
  slow.set(1, 0);
  const double denom = slr_denominator(f.g, f.n, kLat);
  PlacementSearchEnv env(f.g, f.n, kLat, makespan_objective(kLat), slow, denom);
  TabuSearchPolicy policy;
  policy.begin_episode();
  std::mt19937_64 rng(9);
  run_search(policy, env, 10, rng);
  Placement opt(2);
  opt.set(0, 1);
  opt.set(1, 1);
  EXPECT_NEAR(env.best_objective(), makespan(f.g, f.n, opt, kLat) / denom, 1e-9);
}

TEST(LocalSearch, BothBeatRandomWalkOnSyntheticInstances) {
  std::mt19937_64 rng(6);
  TaskGraphParams gp;
  gp.num_tasks = 10;
  NetworkParams np;
  np.num_devices = 5;
  const TaskGraph g = generate_task_graph(gp, rng);
  DeviceNetwork n = generate_device_network(np, rng);
  ensure_all_kinds(n, np.num_hw_kinds, rng);
  const double denom = slr_denominator(g, n, kLat);

  auto final_of = [&](SearchPolicy& p, std::uint64_t seed) {
    std::mt19937_64 r(seed);
    PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                           random_placement(g, n, r), denom);
    p.begin_episode();
    return run_search(p, env, 20, r).best_so_far.back();
  };
  HillClimbPolicy hill;
  SimulatedAnnealingPolicy anneal;
  double hc = 0.0, sa = 0.0, walk_obj = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    hc += final_of(hill, 100 + s);
    sa += final_of(anneal, 100 + s);
    std::mt19937_64 r(100 + s);
    walk_obj += makespan(g, n, random_placement(g, n, r), kLat) / denom;
  }
  EXPECT_LT(hc, walk_obj);
  EXPECT_LT(sa, walk_obj);
  EXPECT_LE(hc, sa + 0.3);  // greedy search is at least competitive here
}

}  // namespace
}  // namespace giph
