#include "gen/enas_gen.hpp"

#include <gtest/gtest.h>

namespace giph {
namespace {

TEST(Enas, CellDesignIsValid) {
  std::mt19937_64 rng(1);
  for (int nodes : {2, 5, 12}) {
    const CellDesign c = sample_cell_design(nodes, rng);
    ASSERT_EQ(static_cast<int>(c.prev.size()), nodes);
    for (int i = 1; i < nodes; ++i) {
      EXPECT_GE(c.prev[i], 0);
      EXPECT_LT(c.prev[i], i);
    }
    for (double cost : c.op_cost) EXPECT_GT(cost, 0.0);
  }
  EXPECT_THROW(sample_cell_design(1, rng), std::invalid_argument);
}

TEST(Enas, UnrolledGraphStructure) {
  std::mt19937_64 rng(2);
  const CellDesign c = sample_cell_design(6, rng);
  const TaskGraph g = unroll_cell(c, 10, 100, EnasParams{});
  // 2 shared nodes + per step: embed + 6 cell nodes + avg.
  EXPECT_EQ(g.num_tasks(), 2 + 10 * 8);
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Enas, ComputeScalesWithBatch) {
  std::mt19937_64 rng(3);
  const CellDesign c = sample_cell_design(6, rng);
  const TaskGraph small = unroll_cell(c, 5, 80, EnasParams{});
  const TaskGraph large = unroll_cell(c, 5, 160, EnasParams{});
  EXPECT_NEAR(large.total_compute() / small.total_compute(), 2.0, 1e-9);
}

TEST(Enas, GeneratedGraphsInPaperSizeRange) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 10; ++i) {
    const TaskGraph g = generate_enas_graph(EnasParams{}, rng);
    // Paper: each graph contains 200-300 operators.
    EXPECT_GE(g.num_tasks(), 150);
    EXPECT_LE(g.num_tasks(), 450);
    EXPECT_TRUE(g.is_dag());
  }
}

TEST(Enas, HwConstraintAppliedToOps) {
  std::mt19937_64 rng(5);
  EnasParams p;
  p.op_requires_hw = 0b1;
  const TaskGraph g = generate_enas_graph(p, rng);
  int constrained = 0;
  for (int v = 0; v < g.num_tasks(); ++v) {
    if (g.task(v).requires_hw == 0b1) ++constrained;
  }
  EXPECT_GT(constrained, g.num_tasks() / 2);
}

TEST(Enas, UnrollRejectsBadSteps) {
  std::mt19937_64 rng(6);
  const CellDesign c = sample_cell_design(4, rng);
  EXPECT_THROW(unroll_cell(c, 0, 100, EnasParams{}), std::invalid_argument);
}

}  // namespace
}  // namespace giph
