// giph_cli - command-line workflow mirroring the paper artifact's main.py:
// generate datasets, train a policy, evaluate it, and place a single
// application (optionally printing the schedule as a Gantt chart).
//
//   giph_cli generate --out DIR [--graphs N] [--networks M] [--tasks T]
//                     [--devices D] [--seed S]
//   giph_cli train    --data DIR --model FILE [--episodes E] [--variant V]
//                     [--noise X] [--seed S] [--checkpoint FILE]
//                     [--checkpoint-every K] [--resume]
//                     [--batch-episodes B] [--rollout-workers W]
//   giph_cli snapshot --out FILE [--model FILE] [--variant V] [--seed S]
//   giph_cli evaluate --data DIR --model FILE [--variant V] [--cases N]
//   giph_cli place    --graph FILE --network FILE [--model FILE] [--variant V]
//                     [--steps N] [--gantt] [--csv FILE]
//   giph_cli robustness [--seed S] [--tasks T] [--devices D]
//                     [--graph FILE --network FILE] [--model FILE] [--variant V]
//                     [--faults SPEC | --crashes N --leaves N --slowdowns N
//                      --degrades N --joins N] [--repair-budget N]
//   giph_cli dynamic  [--seed S] [--tasks T] [--graph FILE] [--model FILE]
//                     [--variant V] [--epochs N] [--vehicles N] [--bases N]
//                     [--range M] [--epoch-seconds S] [--repair-budget N]
//                     [--drift-budget N] [--threads N]
//   giph_cli scale    [--model FILE | --episodes E] [--variant V] [--seed S]
//                     [--train-tasks T] [--train-devices D] [--tasks T]
//                     [--devices D] [--clusters K] [--cases N] [--topk K]
//                     [--refine-rounds R]
//   giph_cli stream   [--seed S] [--graph FILE --network FILE] [--model FILE]
//                     [--variant V] [--frames F] [--hz H | --interval MS]
//                     [--jitter J] [--objective p99|throughput|makespan]
//                     [--steps N] [--csv FILE]
//
// The stream command runs the streaming (iterated-graph) scenario: F frames
// of the sensor-fusion pipeline (or an explicit --graph/--network instance)
// enter every 1000/--hz ms and pipeline through the devices. The selected
// --objective drives the placement search; the report compares the initial,
// makespan-optimized, and objective-optimized placements on one-shot makespan,
// steady-state throughput, and p50/p99 frame latency, and --csv exports the
// winning placement's per-frame latencies (write_stream_csv).
//
// The scale command is the generalization experiment of ROADMAP item 4: train
// a policy at paper scale (or load one with --model), then evaluate it
// ZERO-SHOT on 10x-100x larger instances (default 1000 tasks on a 100-device
// sparse topology) through the hierarchical tier - partition_tasks groups the
// graph into --clusters clusters, the policy places the coarse cluster graph
// with sparse (top-k) gpNet candidates, and per-cluster refinement polishes
// the expanded placement - against flat HEFT on the same instances.
//
// The robustness command measures fault recovery: each placer (the GiPH
// agent, Random-task-eft, and HEFT) places a seeded synthetic instance, the
// placement is replayed under an injected fault plan, and the placer repairs
// it on the post-fault network - search policies warm-start from the damaged
// placement while HEFT reschedules from scratch. --faults accepts a spec like
// "crash:2@30,slow:1@10x3:60,link:0-3@20x4,join@50"; without it a plan is
// generated from the --crashes/--slowdowns/... counts with event times seeded
// inside the fault-free makespan horizon.
//
// The dynamic command runs the continuous-churn protocol: grid mobility
// (casestudy/churn.hpp) turns vehicle movement into a stream of epochs -
// devices joining and leaving coverage, link bandwidths drifting with
// distance - and every placer re-places online after each epoch
// (PlacementSearchEnv::rebase) against the frozen epoch-0 placement and a
// full HEFT reschedule per epoch. The report is seed-reproducible and
// identical for every --threads value.
//
// Variants: giph (default), giph-3, giph-5, giph-ne, graphsage-ne, ne-pol,
// task-eft.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>

#include "baselines/random_policies.hpp"
#include "casestudy/churn.hpp"
#include "casestudy/sensor_fusion.hpp"
#include "core/giph_agent.hpp"
#include "core/hierarchical.hpp"
#include "core/reinforce.hpp"
#include "eval/robustness_eval.hpp"
#include "gen/dataset.hpp"
#include "gen/params_io.hpp"
#include "graph/serialization.hpp"
#include "graph/topology.hpp"
#include "heft/heft.hpp"
#include "serve/snapshot.hpp"
#include "sim/faults.hpp"
#include "sim/trace.hpp"

using namespace giph;
namespace fs = std::filesystem;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int get_int(const std::string& key, int fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoi(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --option, got: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

GiPHOptions variant_options(const std::string& variant, std::uint64_t seed) {
  GiPHOptions o;
  o.seed = seed;
  if (variant == "giph" || variant.empty()) {
    o.gnn = GnnKind::kGiPH;
  } else if (variant == "giph-3") {
    o.gnn = GnnKind::kGiPHK;
    o.k_steps = 3;
  } else if (variant == "giph-5") {
    o.gnn = GnnKind::kGiPHK;
    o.k_steps = 5;
  } else if (variant == "giph-ne") {
    o.gnn = GnnKind::kGiPHNE;
  } else if (variant == "graphsage-ne") {
    o.gnn = GnnKind::kGraphSAGE;
  } else if (variant == "ne-pol") {
    o.gnn = GnnKind::kNone;
  } else if (variant == "task-eft") {
    o.use_gpnet = false;
  } else {
    throw std::runtime_error("unknown variant: " + variant);
  }
  return o;
}

Dataset load_dataset(const std::string& dir) {
  Dataset ds;
  for (int i = 0;; ++i) {
    const fs::path p = fs::path(dir) / ("graph_" + std::to_string(i) + ".txt");
    if (!fs::exists(p)) break;
    ds.graphs.push_back(load_task_graph(p.string()));
  }
  for (int i = 0;; ++i) {
    const fs::path p = fs::path(dir) / ("network_" + std::to_string(i) + ".txt");
    if (!fs::exists(p)) break;
    ds.networks.push_back(load_device_network(p.string()));
  }
  if (ds.graphs.empty() || ds.networks.empty()) {
    throw std::runtime_error("no dataset found in " + dir +
                             " (expected graph_<i>.txt / network_<i>.txt)");
  }
  return ds;
}

int cmd_generate(const Args& args) {
  const std::string dir = args.get("out");
  if (dir.empty()) throw std::runtime_error("generate: --out DIR is required");
  fs::create_directories(dir);
  std::mt19937_64 rng(args.get_int("seed", 1));
  std::vector<TaskGraphParams> gps;
  std::vector<NetworkParams> nps;
  if (args.has("params")) {
    // Parameter file with (possibly multi-valued) generator settings, like
    // the paper artifact's parameters/ directory.
    const GeneratorConfig cfg = load_generator_config(args.get("params"));
    gps = cfg.graph_grid;
    nps = cfg.network_grid;
  } else {
    TaskGraphParams gp;
    gp.num_tasks = args.get_int("tasks", 14);
    NetworkParams np;
    np.num_devices = args.get_int("devices", 8);
    gps = {gp};
    nps = {np};
  }
  const Dataset ds = generate_dataset(gps, nps, args.get_int("graphs", 40),
                                      args.get_int("networks", 4), rng);
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    save_task_graph((fs::path(dir) / ("graph_" + std::to_string(i) + ".txt")).string(),
                    ds.graphs[i]);
  }
  for (std::size_t i = 0; i < ds.networks.size(); ++i) {
    save_device_network(
        (fs::path(dir) / ("network_" + std::to_string(i) + ".txt")).string(),
        ds.networks[i]);
  }
  std::cout << "wrote " << ds.graphs.size() << " graphs and " << ds.networks.size()
            << " networks to " << dir << "\n";
  return 0;
}

int cmd_train(const Args& args) {
  const Dataset ds = load_dataset(args.get("data"));
  const std::string model = args.get("model");
  if (model.empty()) throw std::runtime_error("train: --model FILE is required");

  GiPHOptions agent_options =
      variant_options(args.get("variant", "giph"), args.get_int("seed", 1));
  agent_options.use_critic = args.has("critic");
  GiPHAgent agent(agent_options);
  const DefaultLatencyModel lat;
  TrainOptions topt;
  topt.episodes = args.get_int("episodes", 300);
  topt.lr = args.get_double("lr", 0.003);
  topt.gamma = args.get_double("gamma", 0.1);
  topt.discount_state_weight = false;
  topt.noise = args.get_double("noise", 0.0);
  topt.batch_episodes = args.get_int("batch-episodes", 1);
  topt.rollout_workers = args.get_int("rollout-workers", 1);
  topt.seed = args.get_int("seed", 1) + 1;
  topt.checkpoint_path = args.get("checkpoint");
  topt.checkpoint_every = args.get_int("checkpoint-every", topt.checkpoint_path.empty() ? 0 : 25);
  topt.resume = args.has("resume");
  if (topt.resume && topt.checkpoint_path.empty()) {
    throw std::runtime_error("train: --resume requires --checkpoint FILE");
  }
  int last_percent = -1;
  topt.on_episode = [&](int ep) {
    const int percent = 100 * (ep + 1) / topt.episodes;
    if (percent / 10 != last_percent / 10) {
      std::cout << "trained " << percent << "%\n" << std::flush;
      last_percent = percent;
    }
  };
  train_reinforce(agent, lat,
                  [&ds](std::mt19937_64& r) {
                    std::uniform_int_distribution<std::size_t> gi(0, ds.graphs.size() - 1);
                    std::uniform_int_distribution<std::size_t> ni(0, ds.networks.size() - 1);
                    return ProblemInstance{&ds.graphs[gi(r)], &ds.networks[ni(r)]};
                  },
                  topt);
  agent.save(model);
  std::cout << "model (" << agent.name() << ", "
            << agent.registry().num_scalars() << " parameters) saved to " << model
            << "\n";
  return 0;
}

int cmd_snapshot(const Args& args) {
  GiPHAgent agent(variant_options(args.get("variant", "giph"), args.get_int("seed", 1)));
  if (args.has("model")) agent.load(args.get("model"));
  const std::string out = args.get("out");
  if (out.empty()) throw std::runtime_error("snapshot: --out FILE is required");
  serve::save_policy_snapshot(out, agent);
  std::cout << "policy snapshot (" << agent.name() << ", "
            << agent.registry().num_scalars() << " parameters) saved to " << out
            << "\n";
  return 0;
}

int cmd_evaluate(const Args& args) {
  const Dataset ds = load_dataset(args.get("data"));
  GiPHAgent agent(variant_options(args.get("variant", "giph"), 1));
  if (args.has("model")) agent.load(args.get("model"));
  const DefaultLatencyModel lat;

  const int cases = args.get_int("cases", 50);
  std::mt19937_64 rng(args.get_int("seed", 9));
  double agent_slr = 0.0, heft_slr = 0.0, init_slr = 0.0;
  for (int i = 0; i < cases; ++i) {
    const TaskGraph& g = ds.graphs[i % ds.graphs.size()];
    const DeviceNetwork& n = ds.networks[i % ds.networks.size()];
    const double denom = slr_denominator(g, n, lat);
    const Placement init = random_placement(g, n, rng);
    PlacementSearchEnv env(g, n, lat, makespan_objective(lat), init, denom);
    init_slr += env.objective();
    run_search(agent, env, 2 * g.num_tasks(), rng);
    agent_slr += env.best_objective();
    heft_slr += makespan(g, n, heft_schedule(g, n, lat).placement, lat) / denom;
  }
  std::cout << "cases: " << cases << "\n"
            << "average initial SLR: " << init_slr / cases << "\n"
            << "average " << agent.name() << " SLR: " << agent_slr / cases << "\n"
            << "average HEFT SLR: " << heft_slr / cases << "\n";
  return 0;
}

int cmd_place(const Args& args) {
  const TaskGraph g = load_task_graph(args.get("graph"));
  const DeviceNetwork n = load_device_network(args.get("network"));
  GiPHAgent agent(variant_options(args.get("variant", "giph"), 1));
  if (args.has("model")) agent.load(args.get("model"));
  const DefaultLatencyModel lat;

  std::mt19937_64 rng(args.get_int("seed", 9));
  const double denom = slr_denominator(g, n, lat);
  PlacementSearchEnv env(g, n, lat, makespan_objective(lat),
                         random_placement(g, n, rng), denom);
  const int steps = args.get_int("steps", 2 * g.num_tasks());
  run_search(agent, env, steps, rng);
  const Placement& best = env.best_placement();
  const Schedule sched = simulate(g, n, best, lat);
  std::cout << "makespan: " << sched.makespan << "  (SLR " << env.best_objective()
            << ")\nplacement:";
  for (int v = 0; v < g.num_tasks(); ++v) std::cout << " " << best.device_of(v);
  std::cout << "\n";
  if (args.has("gantt")) std::cout << ascii_gantt(g, n, best, sched);
  if (args.has("csv")) {
    std::ofstream out(args.get("csv"));
    write_schedule_csv(out, g, n, best, sched);
    std::cout << "schedule written to " << args.get("csv") << "\n";
  }
  return 0;
}

int cmd_robustness(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::mt19937_64 rng(seed);
  TaskGraph g;
  DeviceNetwork n;
  if (args.has("graph") && args.has("network")) {
    g = load_task_graph(args.get("graph"));
    n = load_device_network(args.get("network"));
  } else {
    TaskGraphParams gp;
    gp.num_tasks = args.get_int("tasks", 14);
    NetworkParams np;
    np.num_devices = args.get_int("devices", 8);
    g = generate_task_graph(gp, rng);
    n = generate_device_network(np, rng);
    ensure_feasible(g, n, rng);
  }
  const DefaultLatencyModel lat;

  GiPHAgent agent(variant_options(args.get("variant", "giph"), seed));
  if (args.has("model")) agent.load(args.get("model"));
  RandomTaskEftPolicy random_eft;

  FaultPlan plan;
  if (args.has("faults")) {
    plan = parse_fault_plan(args.get("faults"));
  } else {
    // Seed event times inside the fault-free horizon so the plan perturbs
    // the run regardless of the instance's time scale.
    FaultPlanParams fp;
    fp.horizon =
        std::max(makespan(g, n, heft_schedule(g, n, lat).placement, lat), 1e-9);
    fp.crashes = args.get_int("crashes", 1);
    fp.leaves = args.get_int("leaves", 0);
    fp.slowdowns = args.get_int("slowdowns", 1);
    fp.link_degrades = args.get_int("degrades", 1);
    fp.joins = args.get_int("joins", 0);
    plan = generate_fault_plan(n, fp, rng);
  }

  eval::RobustnessOptions ropt;
  ropt.seed = seed + 1;
  ropt.repair_budget = args.get_int("repair-budget", 0);
  const eval::RobustnessReport report = eval::evaluate_robustness(
      g, n, lat, plan, {{agent.name(), &agent}, {random_eft.name(), &random_eft}}, ropt);
  std::cout << "instance: " << g.num_tasks() << " tasks, " << n.num_devices()
            << " devices (seed " << seed << ")\n\n"
            << eval::format_report(report);
  return 0;
}

int cmd_dynamic(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::mt19937_64 rng(seed);
  TaskGraph g;
  if (args.has("graph")) {
    g = load_task_graph(args.get("graph"));
  } else {
    TaskGraphParams gp;
    gp.num_tasks = args.get_int("tasks", 12);
    g = generate_task_graph(gp, rng);
  }

  casestudy::ChurnScriptParams cp;
  cp.mobility.num_vehicles = args.get_int("vehicles", 6);
  cp.mobility.seed = seed;
  cp.base_devices = args.get_int("bases", 3);
  cp.range_m = args.get_double("range", 250.0);
  cp.epoch_s = args.get_double("epoch-seconds", 10.0);
  cp.epochs = args.get_int("epochs", 12);
  cp.seed = seed;
  const eval::ChurnScript script = casestudy::generate_churn_script(cp);
  int joins = 0, leaves = 0;
  for (std::size_t t = 1; t < script.epochs.size(); ++t) {
    for (std::size_t k = 0; k < script.epochs[t].up.size(); ++k) {
      if (script.epochs[t].up[k] && !script.epochs[t - 1].up[k]) ++joins;
      if (!script.epochs[t].up[k] && script.epochs[t - 1].up[k]) ++leaves;
    }
  }

  const DefaultLatencyModel lat;
  GiPHAgent agent(variant_options(args.get("variant", "giph"), seed));
  if (args.has("model")) agent.load(args.get("model"));
  RandomTaskEftPolicy random_eft;

  eval::ChurnOptions copt;
  copt.seed = seed + 1;
  copt.repair_budget = args.get_int("repair-budget", 0);
  copt.drift_budget = args.get_int("drift-budget", 0);
  copt.threads = args.get_int("threads", 1);
  const eval::ChurnReport report = eval::evaluate_churn(
      g, script, lat, {{agent.name(), &agent}, {random_eft.name(), &random_eft}}, copt);
  std::cout << "instance: " << g.num_tasks() << " tasks over a universe of "
            << script.epochs.front().network.num_devices() << " devices ("
            << cp.base_devices << " base + " << cp.mobility.num_vehicles
            << " mobile), " << report.num_epochs << " epochs, " << joins
            << " joins / " << leaves << " leaves (seed " << seed << ")\n\n"
            << eval::format_churn_report(report);
  return 0;
}

int cmd_scale(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const DefaultLatencyModel lat;

  // 1. A policy trained at paper scale (zero-shot transfer is the point:
  //    nothing below ever trains on the large instances).
  GiPHOptions aopt = variant_options(args.get("variant", "giph"), seed);
  aopt.gpnet_topk = args.get_int("topk", 8);
  GiPHAgent agent(aopt);
  if (args.has("model")) {
    agent.load(args.get("model"));
    std::cout << "loaded " << agent.name() << " from " << args.get("model") << "\n";
  } else {
    std::mt19937_64 rng(seed);
    TaskGraphParams gp;
    gp.num_tasks = args.get_int("train-tasks", 20);
    NetworkParams np;
    np.num_devices = args.get_int("train-devices", 8);
    const Dataset ds = generate_dataset({gp}, {np}, 20, 4, rng);
    TrainOptions topt;
    topt.episodes = args.get_int("episodes", 100);
    topt.lr = 0.003;
    topt.gamma = 0.1;
    topt.discount_state_weight = false;
    topt.seed = seed + 1;
    std::cout << "training " << agent.name() << " at paper scale (" << gp.num_tasks
              << " tasks, " << np.num_devices << " devices, " << topt.episodes
              << " episodes)...\n"
              << std::flush;
    train_reinforce(agent, lat,
                    [&ds](std::mt19937_64& r) {
                      std::uniform_int_distribution<std::size_t> gi(0, ds.graphs.size() - 1);
                      std::uniform_int_distribution<std::size_t> ni(0, ds.networks.size() - 1);
                      return ProblemInstance{&ds.graphs[gi(r)], &ds.networks[ni(r)]};
                    },
                    topt);
  }

  // 2. Zero-shot evaluation at 10x-100x scale on sparse topologies.
  const int tasks = args.get_int("tasks", 1000);
  const int devices = args.get_int("devices", 100);
  const int cases = args.get_int("cases", 3);
  HierarchicalOptions hopt;
  hopt.partition.num_clusters = args.get_int("clusters", std::max(8, tasks / 20));
  hopt.refine_rounds = args.get_int("refine-rounds", 3);
  std::cout << "zero-shot evaluation: " << cases << " instances of " << tasks
            << " tasks on " << devices << "-device sparse topologies, "
            << hopt.partition.num_clusters << " target clusters\n\n"
            << "  case   clusters   hier SLR   HEFT SLR   hier/HEFT   seconds\n";

  double sum_hier = 0.0, sum_heft = 0.0, sum_sec = 0.0;
  for (int i = 0; i < cases; ++i) {
    std::mt19937_64 rng(seed + 100 + i);
    TaskGraphParams gp;
    gp.num_tasks = tasks;
    gp.alpha = 0.8;
    gp.p_connect = 2.0 / tasks;  // sparse, dataflow-like
    const TaskGraph g = generate_task_graph(gp, rng);
    NetworkParams np;
    np.num_devices = devices;
    DeviceNetwork n = generate_device_network(np, rng);
    std::vector<PhysicalLink> links;
    std::uniform_real_distribution<double> bw(20.0, 80.0);
    std::uniform_real_distribution<double> dl(0.1, 2.0);
    for (int d = 1; d < devices; ++d) {
      links.push_back({static_cast<int>(rng() % static_cast<std::uint64_t>(d)), d,
                       bw(rng), dl(rng), true});
    }
    for (int c = 0; c < 2 * devices; ++c) {
      const int a = static_cast<int>(rng() % devices);
      const int b = static_cast<int>(rng() % devices);
      if (a != b) links.push_back({a, b, bw(rng), dl(rng), true});
    }
    apply_topology(n, links);
    ensure_feasible(g, n, rng);

    HierarchicalPlacer placer(g, n, lat, hopt);
    HierarchicalStats stats;
    std::mt19937_64 place_rng(seed + 200 + i);
    const auto t0 = std::chrono::steady_clock::now();
    const Placement hier = placer.place(agent, place_rng, &stats);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (!is_feasible(g, n, hier)) throw std::runtime_error("scale: infeasible result");
    const double heft_slr = placer.objective_of(heft_schedule(g, n, lat).placement);
    sum_hier += stats.refined_objective;
    sum_heft += heft_slr;
    sum_sec += sec;
    std::printf("  %4d %10d %10.3f %10.3f %11.3f %9.2f\n", i, stats.num_clusters,
                stats.refined_objective, heft_slr, stats.refined_objective / heft_slr,
                sec);
  }
  std::printf("  mean %10s %10.3f %10.3f %11.3f %9.2f\n", "", sum_hier / cases,
              sum_heft / cases, sum_hier / sum_heft, sum_sec / cases);
  std::cout << "\n(training scale -> evaluation scale: "
            << args.get_int("train-tasks", 20) << " -> " << tasks << " tasks, x"
            << tasks / std::max(1, args.get_int("train-tasks", 20)) << ")\n";
  return 0;
}

int cmd_stream(const Args& args) {
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const DefaultLatencyModel lat;

  // Instance: an explicit graph/network pair, or the first populated
  // sensor-fusion snapshot (the flagship streaming scenario).
  TaskGraph g;
  DeviceNetwork n;
  StreamOptions sopt;
  sopt.frames = args.get_int("frames", 32);
  if (args.has("graph") && args.has("network")) {
    g = load_task_graph(args.get("graph"));
    n = load_device_network(args.get("network"));
    sopt.interval = args.get_double("interval", 1000.0 / args.get_double("hz", 10.0));
  } else {
    casestudy::CaseStudyParams params;
    params.seed = seed;
    casestudy::SensorFusionWorld world(params);
    std::optional<casestudy::SensorFusionCase> c;
    for (int snap = 0; snap < 64 && !c; ++snap) c = world.next_case();
    if (!c) throw std::runtime_error("stream: no populated sensor-fusion snapshot");
    g = std::move(c->graph);
    n = std::move(c->network);
    sopt = casestudy::streaming_options(*c, sopt.frames);
    if (args.has("interval")) sopt.interval = args.get_double("interval", sopt.interval);
    if (args.has("hz")) sopt.interval = 1000.0 / args.get_double("hz", 10.0);
  }
  std::mt19937_64 jitter_rng(seed + 77);
  sopt.arrival_jitter = args.get_double("jitter", 0.0);
  if (sopt.arrival_jitter > 0.0) sopt.sim.rng = &jitter_rng;

  const std::string objective = args.get("objective", "p99");
  const auto make_objective = [&](const std::string& kind) -> ScheduleObjective {
    if (kind == "p99") return streaming_p99_objective(lat, sopt);
    if (kind == "throughput") return streaming_throughput_objective(lat, sopt);
    if (kind == "makespan") return makespan_objective(lat);
    throw std::runtime_error("stream: unknown --objective " + kind +
                             " (p99|throughput|makespan)");
  };

  GiPHAgent agent(variant_options(args.get("variant", "giph"), seed));
  if (args.has("model")) agent.load(args.get("model"));
  const int steps = args.get_int("steps", 2 * g.num_tasks());

  // Same initial placement for both searches, so the comparison isolates the
  // objective (raw values, denominator 1: SLR does not normalize a p99).
  std::mt19937_64 rng(seed + 9);
  const Placement init = random_placement(g, n, rng);
  const auto optimize = [&](const std::string& kind) {
    std::mt19937_64 search_rng(seed + 10);
    PlacementSearchEnv env(g, n, lat, make_objective(kind), init, 1.0);
    run_search(agent, env, steps, search_rng);
    return env.best_placement();
  };
  const Placement makespan_best = optimize("makespan");
  const Placement objective_best =
      objective == "makespan" ? makespan_best : optimize(objective);

  std::cout << "instance: " << g.num_tasks() << " tasks, " << n.num_devices()
            << " devices; " << sopt.frames << " frames every " << sopt.interval
            << " ms (jitter " << sopt.arrival_jitter << "), search objective "
            << objective << "\n\n"
            << "  placement            makespan  throughput     p50       p99\n";
  const auto report = [&](const char* name, const Placement& p) {
    StreamOptions eval_opt = sopt;  // fresh jitter stream per report row
    std::mt19937_64 eval_rng(seed + 78);
    if (eval_opt.arrival_jitter > 0.0) eval_opt.sim.rng = &eval_rng;
    const StreamResult r = simulate_streaming(g, n, p, lat, eval_opt);
    std::printf("  %-18s %10.3f %11.5f %8.3f %9.3f\n", name,
                simulate(g, n, p, lat).makespan, r.throughput, r.p50_latency,
                r.p99_latency);
    return r;
  };
  report("initial", init);
  report("makespan-search", makespan_best);
  const StreamResult best = report((objective + "-search").c_str(), objective_best);

  if (args.has("csv")) {
    std::ofstream out(args.get("csv"));
    write_stream_csv(out, best);
    std::cout << "\nper-frame latencies written to " << args.get("csv") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "snapshot") return cmd_snapshot(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "place") return cmd_place(args);
    if (args.command == "robustness") return cmd_robustness(args);
    if (args.command == "dynamic") return cmd_dynamic(args);
    if (args.command == "scale") return cmd_scale(args);
    if (args.command == "stream") return cmd_stream(args);
    std::cerr << "usage: giph_cli {generate|train|snapshot|evaluate|place|"
                 "robustness|dynamic|scale|stream} [--options]\n"
                 "see the header of tools/giph_cli.cpp for details\n";
    return args.command.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
