#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline.

Usage: check_bench.py BASELINE.json CURRENT.json [--tolerance 0.30]
       check_bench.py --self-test

Compares every throughput metric (keys ending in ``_per_sec``, recursively)
and every ratio metric (keys ending in ``_rate``, in [0, 1] by convention,
e.g. the delta-simulation hit rate) and fails when the current value has
regressed more than the tolerance below the baseline. Also fails when any
``bitwise_identical`` flag that is true in the baseline turned false, and
when a gated baseline metric is missing from the current run entirely — a
benchmark that silently stops emitting a metric must not pass the gate.

A baseline may override the global tolerance per metric with a sibling key
``<metric>_max_regress`` (e.g. ``"hier_tasks_per_sec": 290.0,
"hier_tasks_per_sec_max_regress": 0.5``): that metric then tolerates the
given fractional drop instead of ``--tolerance``. Override keys themselves
are never gated.

Only stdlib is used, and absolute wall times are deliberately ignored:
runner machines differ, so the gate is a relative one against numbers
measured on comparable hardware.

``--self-test`` runs the script's own unit tests (used by the bench-smoke CI
job to keep the gate itself from rotting).
"""

import argparse
import json
import sys

MAX_REGRESS_SUFFIX = "_max_regress"


def walk(obj, prefix=""):
    """Yields (dotted_path, value) for every leaf of a nested dict."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from walk(value, f"{prefix}{key}." if prefix else f"{key}.")
    else:
        yield prefix.rstrip("."), obj


def is_gated(path, base_value):
    """True when a baseline leaf participates in the gate."""
    if path.endswith(MAX_REGRESS_SUFFIX):
        return False  # per-metric tolerance overrides, not metrics
    return (
        path.endswith("_per_sec")
        or path.endswith("_rate")
        or (path.endswith("bitwise_identical") and base_value is True)
    )


def run_check(baseline, current, tolerance):
    """Pure gating core over flattened dicts.

    Returns (log_lines, failures, checked); the caller decides the exit code.
    """
    lines = []
    failures = []
    checked = 0
    for path, base_value in baseline.items():
        if not is_gated(path, base_value):
            continue
        if path not in current:
            # Descriptive baseline keys (notes, machine shape) are free-form,
            # but a gated metric the current run no longer emits is a failure:
            # a silently dropped metric must not read as "no regression".
            failures.append(f"{path}: gated in baseline but missing from current run")
            continue
        cur_value = current[path]
        if path.endswith("_per_sec") or path.endswith("_rate"):
            checked += 1
            tol = baseline.get(path + MAX_REGRESS_SUFFIX, tolerance)
            floor = (1.0 - tol) * base_value
            status = "ok" if cur_value >= floor else "REGRESSED"
            precision = 3 if path.endswith("_rate") else 1
            lines.append(
                f"{path}: {base_value:.{precision}f} -> {cur_value:.{precision}f} "
                f"(floor {floor:.{precision}f}, tol {tol:.0%}) {status}")
            if cur_value < floor:
                failures.append(
                    f"{path}: {cur_value:.{precision}f} is more than "
                    f"{tol:.0%} below baseline {base_value:.{precision}f}")
        else:  # bitwise_identical flag, true in baseline
            checked += 1
            lines.append(f"{path}: {cur_value}")
            if cur_value is not True:
                failures.append(
                    f"{path}: determinism check failed (was true in baseline)")
    return lines, failures, checked


def self_test():
    """Unit tests of the gating core; returns a process exit code."""
    import unittest

    class CheckBenchTest(unittest.TestCase):
        def check(self, baseline, current, tolerance=0.30):
            return run_check(dict(walk(baseline)), dict(walk(current)), tolerance)

        def test_within_tolerance_passes(self):
            _, failures, checked = self.check(
                {"x_per_sec": 100.0}, {"x_per_sec": 80.0})
            self.assertEqual(failures, [])
            self.assertEqual(checked, 1)

        def test_regression_fails(self):
            _, failures, _ = self.check({"x_per_sec": 100.0}, {"x_per_sec": 60.0})
            self.assertEqual(len(failures), 1)
            self.assertIn("x_per_sec", failures[0])

        def test_missing_gated_key_fails(self):
            _, failures, _ = self.check(
                {"x_per_sec": 100.0, "hit_rate": 0.9, "bitwise_identical": True},
                {"x_per_sec": 100.0})
            self.assertEqual(len(failures), 2)
            self.assertTrue(any("hit_rate" in f and "missing" in f for f in failures))
            self.assertTrue(
                any("bitwise_identical" in f and "missing" in f for f in failures))

        def test_descriptive_keys_are_free_form(self):
            _, failures, checked = self.check(
                {"x_per_sec": 100.0, "note": "measured on runner A", "tasks": 1000},
                {"x_per_sec": 100.0})
            self.assertEqual(failures, [])
            self.assertEqual(checked, 1)

        def test_max_regress_override_loosens(self):
            # 50% drop fails the default 30% gate but passes a 60% override.
            _, failures, _ = self.check(
                {"x_per_sec": 100.0, "x_per_sec_max_regress": 0.6},
                {"x_per_sec": 50.0})
            self.assertEqual(failures, [])

        def test_max_regress_override_tightens(self):
            # 20% drop passes the default gate but fails a 10% override.
            _, failures, _ = self.check(
                {"x_per_sec": 100.0, "x_per_sec_max_regress": 0.1},
                {"x_per_sec": 80.0})
            self.assertEqual(len(failures), 1)

        def test_max_regress_keys_are_not_gated(self):
            # The override key itself is neither checked nor required in the
            # current run, even though it ends in a gated-looking suffix.
            _, failures, checked = self.check(
                {"x_per_sec": 100.0, "x_per_sec_max_regress": 0.5},
                {"x_per_sec": 100.0})
            self.assertEqual(failures, [])
            self.assertEqual(checked, 1)

        def test_bitwise_flag_flip_fails(self):
            _, failures, _ = self.check(
                {"bitwise_identical": True}, {"bitwise_identical": False})
            self.assertEqual(len(failures), 1)
            self.assertIn("determinism", failures[0])

        def test_bitwise_flag_false_in_baseline_not_gated(self):
            _, failures, checked = self.check(
                {"bitwise_identical": False, "x_per_sec": 1.0}, {"x_per_sec": 1.0})
            self.assertEqual(failures, [])
            self.assertEqual(checked, 1)

        def test_rate_metrics_gated(self):
            _, failures, _ = self.check({"hit_rate": 0.9}, {"hit_rate": 0.5})
            self.assertEqual(len(failures), 1)

        def test_nested_paths(self):
            _, failures, checked = self.check(
                {"case": {"a": {"x_per_sec": 100.0, "x_per_sec_max_regress": 0.5}}},
                {"case": {"a": {"x_per_sec": 60.0}}})
            self.assertEqual(failures, [])
            self.assertEqual(checked, 1)

        def test_no_gated_metrics_is_reported(self):
            _, failures, checked = self.check({"note": "hi"}, {"note": "hi"})
            self.assertEqual(checked, 0)
            self.assertEqual(failures, [])

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(CheckBenchTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below baseline (default 0.30)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("BASELINE.json and CURRENT.json are required (or --self-test)")

    with open(args.baseline) as f:
        baseline = dict(walk(json.load(f)))
    with open(args.current) as f:
        current = dict(walk(json.load(f)))

    lines, failures, checked = run_check(baseline, current, args.tolerance)
    for line in lines:
        print(line)

    if checked == 0 and not failures:
        print("error: no gated metrics found in baseline", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated metrics within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
