#!/usr/bin/env python3
"""Gate benchmark results against a committed baseline.

Usage: check_bench.py BASELINE.json CURRENT.json [--tolerance 0.30]

Compares every throughput metric (keys ending in ``_per_sec``, recursively)
and every ratio metric (keys ending in ``_rate``, in [0, 1] by convention,
e.g. the delta-simulation hit rate) and fails when the current value has
regressed more than ``tolerance`` below the baseline. Also fails when any
``bitwise_identical`` flag that is true in the baseline turned false. Only
stdlib is used, and absolute wall times are deliberately ignored: runner
machines differ, so the gate is a relative one against numbers measured on
comparable hardware.
"""

import argparse
import json
import sys


def walk(obj, prefix=""):
    """Yields (dotted_path, value) for every leaf of a nested dict."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from walk(value, f"{prefix}{key}." if prefix else f"{key}.")
    else:
        yield prefix.rstrip("."), obj


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below baseline (default 0.30)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = dict(walk(json.load(f)))
    with open(args.current) as f:
        current = dict(walk(json.load(f)))

    failures = []
    checked = 0
    for path, base_value in baseline.items():
        gated = path.endswith("_per_sec") or path.endswith("_rate") or (
            path.endswith("bitwise_identical") and base_value is True)
        if path not in current:
            # Only gated metrics are required in the current run; descriptive
            # baseline keys (notes, baseline machine shape) are free-form.
            if gated:
                failures.append(
                    f"{path}: gated in baseline but missing from current run")
            continue
        cur_value = current[path]
        if path.endswith("_per_sec") or path.endswith("_rate"):
            checked += 1
            floor = (1.0 - args.tolerance) * base_value
            status = "ok" if cur_value >= floor else "REGRESSED"
            precision = 3 if path.endswith("_rate") else 1
            print(f"{path}: {base_value:.{precision}f} -> {cur_value:.{precision}f} "
                  f"(floor {floor:.{precision}f}) {status}")
            if cur_value < floor:
                failures.append(
                    f"{path}: {cur_value:.{precision}f} is more than "
                    f"{args.tolerance:.0%} below baseline {base_value:.{precision}f}")
        elif path.endswith("bitwise_identical") and base_value is True:
            checked += 1
            print(f"{path}: {cur_value}")
            if cur_value is not True:
                failures.append(f"{path}: determinism check failed (was true in baseline)")

    if checked == 0:
        print("error: no gated metrics found in baseline", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {checked} gated metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
