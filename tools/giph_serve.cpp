// giph_serve - placement-as-a-service daemon: reads giph-request frames from
// stdin, serves each against the resident policy snapshot (or the HEFT
// baseline in degraded mode), and writes giph-response frames to stdout.
// Serving statistics go to stderr on exit.
//
//   giph_serve [--policy FILE] [--workers N] [--queue-cap N]
//              [--max-steps N] [--steps-factor K] [--sample]
//
//   --policy FILE    policy snapshot (save_policy_snapshot format). A
//                    missing or corrupt snapshot does not abort: the daemon
//                    starts in degraded mode (HEFT answers, mode=heft) and
//                    reports the load failure on stderr.
//   --workers N      worker threads (default 1)
//   --queue-cap N    admission queue bound; above it requests shed (default 64)
//   --max-steps N    hard per-request search-step cap (default 4096)
//   --steps-factor K default budget K*|V| when a request leaves steps=0
//                    (default 2)
//   --sample         sample actions instead of greedy decode
//
// Exit status: 0 after a clean end-of-stream, 2 on bad usage. Malformed
// requests never abort the daemon; each produces a status=error response and
// the stream resynchronizes on the next request header.

#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.hpp"

using namespace giph::serve;

namespace {

int usage() {
  std::cerr << "usage: giph_serve [--policy FILE] [--workers N] [--queue-cap N]\n"
               "                  [--max-steps N] [--steps-factor K] [--sample]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_path;
  ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--policy" && has_value) {
      policy_path = argv[++i];
    } else if (arg == "--workers" && has_value) {
      opt.workers = std::atoi(argv[++i]);
    } else if (arg == "--queue-cap" && has_value) {
      opt.queue_capacity = std::atoi(argv[++i]);
    } else if (arg == "--max-steps" && has_value) {
      opt.max_steps = std::atoi(argv[++i]);
    } else if (arg == "--steps-factor" && has_value) {
      opt.default_steps_factor = std::atoi(argv[++i]);
    } else if (arg == "--sample") {
      opt.greedy = false;
    } else {
      std::cerr << "giph_serve: unknown or incomplete option '" << arg << "'\n";
      return usage();
    }
  }

  SnapshotStore store;
  if (!policy_path.empty()) {
    std::string error;
    if (store.load(policy_path, &error)) {
      std::cerr << "giph_serve: loaded policy snapshot " << policy_path << "\n";
    } else {
      std::cerr << "giph_serve: snapshot load failed (" << error
                << "); serving degraded (heft)\n";
    }
  } else {
    std::cerr << "giph_serve: no --policy given; serving degraded (heft)\n";
  }

  PlacementServer server(opt, store);
  const std::uint64_t served = serve_stream(std::cin, std::cout, server);

  const ServerStats s = server.stats();
  std::cerr << "giph_serve: served " << served << " requests"
            << " (ok " << s.ok << ", shed " << s.shed << ", errors " << s.errors
            << ", deadline_exceeded " << s.deadline_exceeded << ", policy "
            << s.served_policy << ", heft " << s.served_heft << ")\n";
  return 0;
}
