// Deterministic differential fuzz harness for the simulator stack.
//
// Each case derives a seeded random (task graph, device network, placement)
// triple from the existing generators, sweeping task counts, graph shape,
// device counts, hardware-constraint density, multi-core devices, noise,
// NIC contention, fault plans, and the dynamic-conditions stack: network
// traces (piecewise-constant bandwidth / delay / drop breakpoints), lossy
// links (LossAwareLatencyModel), and shared-link contention over random
// sparse topologies. On every case it asserts:
//   - simulate(), simulate_into() (with a reused workspace), and the
//     independent oracle_simulate() agree bitwise on every time;
//   - check_schedule() finds no invariant violation;
//   - simulate_with_faults() with an empty plan reduces bitwise to
//     simulate(), and with a generated plan is replay-deterministic and
//     passes the fault-aware invariant check;
//   - on a sampled subset, the inactive-config reductions: an empty
//     NetworkTrace and a zero-drop LossAwareLatencyModel must leave the
//     output bitwise identical to the plain run.
//
// Fault cases never carry a trace or shared links (simulate_with_faults
// rejects the combination by design); lossy links compose with everything.
//
// With --delta, every non-fault case additionally runs a chain of random
// one-task moves, asserting that simulate_delta() stays bitwise identical to
// a from-scratch simulation at each step (whether it replayed incrementally
// or fell back).
//
// Any failure prints the exact flags reproducing that single case. The CI
// smoke job runs >= 12k cases; `ctest -L property` runs a quick subset.
//
// With --parse the harness instead fuzzes the text parsers: each case builds
// a valid serving request (task graph + device network + optional warm-start
// placement) and a response, asserts writer -> reader -> writer is a byte
// identity, then applies random mutations (truncation, byte flips, token
// substitution, line deletion/duplication, garbage insertion) and asserts
// every parser entry point (read_request, read_response, and the checked-file
// frame unwrapper) either succeeds or throws std::exception with a message —
// never crashes, hangs, or aborts.
//
// With --stream the harness fuzzes iterated-graph execution: each case draws
// a (graph, network, placement) triple plus streaming options (frame count,
// inter-arrival interval scaled to the one-shot makespan, jitter, noise, NIC
// serialization, traces, shared links, lossy models, steady-state detection)
// and asserts that simulate_streaming(), simulate_streaming_into() (reused
// workspace), and the independent oracle_simulate_streaming() agree bitwise
// on every time and metric, that check_stream_result() finds no violation,
// that F = 1 reduces bitwise to simulate(), and that steady-state truncation
// is legitimate (re-simulating the truncated frame count without detection
// reproduces the run bitwise).
//
// With --hier the harness fuzzes the scale tier instead: each case partitions
// a random (graph, network) pair — including pinned tasks, which exercise the
// partitioner's forced cuts — and asserts the partition invariants (every
// task in exactly one cluster, coarse graph acyclic and feasible, compute and
// bytes conserved, repeat runs identical), that expanding a random feasible
// coarse placement yields a feasible fine placement constant on clusters,
// that a full HierarchicalPlacer run returns a feasible placement whose
// refined objective never exceeds the expanded one and agrees BITWISE with an
// independent flat simulation of the returned placement, that the sparse
// gpNet at k >= D is structurally identical to the dense one, and that the
// subset EST sweep reproduces the full sweep's rows bitwise.
//
// Usage: giph_fuzz [--cases N] [--seed S] [--start K] [--delta] [--parse]
//                  [--hier] [--stream] [--verbose]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <sstream>

#include "core/giph_agent.hpp"
#include "core/gpnet.hpp"
#include "core/hierarchical.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/grouping.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/placement.hpp"
#include "graph/topology.hpp"
#include "serve/protocol.hpp"
#include "sim/schedule_index.hpp"
#include "sim/faults.hpp"
#include "sim/network_trace.hpp"
#include "sim/simulator.hpp"
#include "util/checked_file.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace giph;

const DefaultLatencyModel kLat;

// splitmix64: decorrelates the per-case mt19937_64 streams of adjacent case
// indices (seeding mt19937_64 with nearby integers is not enough).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct FuzzCase {
  TaskGraph graph;
  DeviceNetwork network;
  Placement placement;
  double noise = 0.0;
  bool serialize_transfers = false;
  bool with_faults = false;
  FaultPlan plan;
  bool with_trace = false;
  NetworkTrace trace;
  bool with_shared = false;
  SharedLinkMap shared;
  bool with_loss = false;
  std::vector<std::pair<std::pair<int, int>, double>> drops;  // ((src, dst), p)
  bool check_reductions = false;  // sampled: verify inactive-config reductions
  std::uint64_t sim_seed = 0;  // seeds the noise engine of every replay
  std::string shape;           // one-line description for failure reports
};

double uniform(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

int uniform_int(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

FuzzCase build_case(std::uint64_t base_seed, std::uint64_t index) {
  std::mt19937_64 rng(mix(base_seed ^ mix(index)));
  FuzzCase c;

  TaskGraphParams gp;
  gp.num_tasks = uniform_int(rng, 2, 60);
  gp.alpha = uniform(rng, 0.5, 2.0);
  gp.p_connect = uniform(rng, 0.0, 0.6);
  gp.mean_compute = uniform(rng, 10.0, 200.0);
  gp.mean_bytes = uniform(rng, 10.0, 200.0);
  gp.het_compute = uniform(rng, 0.0, 0.9);
  gp.het_bytes = uniform(rng, 0.0, 0.9);
  gp.num_hw_kinds = uniform_int(rng, 1, 6);
  gp.p_task_requires = uniform(rng, 0.0, 0.6);

  NetworkParams np;
  np.num_devices = uniform_int(rng, 1, 12);
  np.mean_speed = uniform(rng, 1.0, 20.0);
  np.mean_bandwidth = uniform(rng, 5.0, 100.0);
  np.mean_delay = uniform(rng, 0.0, 3.0);
  np.het_speed = uniform(rng, 0.0, 0.9);
  np.het_bandwidth = uniform(rng, 0.0, 0.9);
  np.num_hw_kinds = gp.num_hw_kinds;
  np.p_hw_support = uniform(rng, 0.3, 1.0);

  c.graph = generate_task_graph(gp, rng);
  c.network = generate_device_network(np, rng);
  ensure_feasible(c.graph, c.network, rng);

  // A third of the cases get multi-core servers.
  if (uniform(rng, 0.0, 1.0) < 0.33) {
    for (int d = 0; d < c.network.num_devices(); ++d) {
      c.network.device(d).cores = uniform_int(rng, 1, 4);
    }
  }

  c.placement = random_placement(c.graph, c.network, rng);
  if (uniform(rng, 0.0, 1.0) < 0.5) c.noise = uniform(rng, 0.05, 0.5);
  c.serialize_transfers = uniform(rng, 0.0, 1.0) < 0.25;
  c.sim_seed = rng();

  c.with_faults = uniform(rng, 0.0, 1.0) < 0.25;
  if (c.with_faults) {
    // Scale the fault window to this instance's actual noise-free makespan so
    // events land inside the run instead of all firing after it ends.
    const double span = simulate(c.graph, c.network, c.placement, kLat).makespan;
    FaultPlanParams fp;
    fp.horizon = std::max(1e-6, span * uniform(rng, 0.1, 1.2));
    fp.crashes = uniform_int(rng, 0, 2);
    fp.leaves = uniform_int(rng, 0, 1);
    fp.slowdowns = uniform_int(rng, 0, 2);
    fp.link_degrades = uniform_int(rng, 0, 2);
    fp.joins = uniform_int(rng, 0, 1);
    fp.slowdown_factor = uniform(rng, 1.5, 5.0);
    fp.link_factor = uniform(rng, 1.5, 6.0);
    fp.transient_fraction = uniform(rng, 0.0, 1.0);
    c.plan = generate_fault_plan(c.network, fp, rng);
  }

  // Dynamic conditions. Fault cases never get a trace or shared links
  // (simulate_with_faults rejects the combination); lossy links compose with
  // everything.
  const int m = c.network.num_devices();
  if (!c.with_faults && m >= 2 && uniform(rng, 0.0, 1.0) < 0.35) {
    c.with_shared = true;
    // Random spanning tree (mostly bidirectional) plus a few chords, so most
    // pairs route through shared physical links and some may be one-way
    // unreachable (apply_topology punishes those with near-zero bandwidth).
    std::vector<PhysicalLink> phys;
    std::vector<int> order(m);
    for (int k = 0; k < m; ++k) order[k] = k;
    std::shuffle(order.begin(), order.end(), rng);
    for (int k = 1; k < m; ++k) {
      phys.push_back({order[uniform_int(rng, 0, k - 1)], order[k],
                      uniform(rng, 5.0, 100.0), uniform(rng, 0.0, 2.0),
                      uniform(rng, 0.0, 1.0) < 0.8});
    }
    for (int x = uniform_int(rng, 0, 2); x > 0; --x) {
      const int a = uniform_int(rng, 0, m - 1);
      const int b = uniform_int(rng, 0, m - 1);
      if (a == b) continue;
      phys.push_back({a, b, uniform(rng, 5.0, 100.0), uniform(rng, 0.0, 2.0), true});
    }
    apply_topology(c.network, phys);
    c.shared = build_shared_link_map(m, phys);
  }
  if (!c.with_faults && m >= 2 && uniform(rng, 0.0, 1.0) < 0.4) {
    c.with_trace = true;
    // Breakpoint times scaled to the instance's noise-free span so segments
    // land inside the run, not all after it.
    const double span =
        std::max(1e-6, simulate(c.graph, c.network, c.placement, kLat).makespan);
    const int nlinks = uniform_int(rng, 1, 3);
    for (int x = 0; x < nlinks; ++x) {
      const int src = uniform_int(rng, 0, m - 1);
      int dst = uniform_int(rng, 0, m - 2);
      if (dst >= src) ++dst;
      LinkSchedule& ls = c.trace.link(src, dst);
      if (!ls.segments.empty()) continue;  // pair drawn twice
      double t = uniform(rng, 0.0, span * 0.5);
      for (int s = uniform_int(rng, 1, 3); s > 0; --s) {
        TraceSegment seg;
        seg.time = t;
        seg.bandwidth_factor = uniform(rng, 0.3, 2.5);
        if (uniform(rng, 0.0, 1.0) < 0.5) seg.delay_add = uniform(rng, 0.0, 2.0);
        if (uniform(rng, 0.0, 1.0) < 0.5) seg.drop_prob = uniform(rng, 0.0, 0.6);
        ls.segments.push_back(seg);
        t += uniform(rng, span * 0.05, span * 0.5);
      }
    }
  }
  if (m >= 2 && uniform(rng, 0.0, 1.0) < 0.3) {
    c.with_loss = true;
    for (int x = uniform_int(rng, 1, 3); x > 0; --x) {
      const int src = uniform_int(rng, 0, m - 1);
      int dst = uniform_int(rng, 0, m - 2);
      if (dst >= src) ++dst;
      c.drops.push_back({{src, dst}, uniform(rng, 0.05, 0.7)});
    }
  }
  c.check_reductions = uniform(rng, 0.0, 1.0) < 0.125;

  char shape[200];
  std::snprintf(shape, sizeof(shape),
                "tasks=%d edges=%d devices=%d noise=%.3f serialize=%d faults=%zu "
                "trace=%d shared=%d loss=%zu",
                c.graph.num_tasks(), c.graph.num_edges(), c.network.num_devices(),
                c.noise, c.serialize_transfers ? 1 : 0, c.plan.events.size(),
                c.with_trace ? 1 : 0, c.with_shared ? 1 : 0, c.drops.size());
  c.shape = shape;
  return c;
}

/// Exact comparison; returns a human-readable mismatch description or "".
std::string diff_schedules(const Schedule& a, const Schedule& b, const char* what) {
  char buf[160];
  if (a.tasks.size() != b.tasks.size() || a.edge_start.size() != b.edge_start.size()) {
    std::snprintf(buf, sizeof(buf), "%s: shape mismatch", what);
    return buf;
  }
  for (std::size_t v = 0; v < a.tasks.size(); ++v) {
    if (a.tasks[v].start != b.tasks[v].start || a.tasks[v].finish != b.tasks[v].finish) {
      std::snprintf(buf, sizeof(buf),
                    "%s: task %zu differs ([%.17g, %.17g] vs [%.17g, %.17g])", what, v,
                    a.tasks[v].start, a.tasks[v].finish, b.tasks[v].start,
                    b.tasks[v].finish);
      return buf;
    }
  }
  for (std::size_t e = 0; e < a.edge_start.size(); ++e) {
    if (a.edge_start[e] != b.edge_start[e] || a.edge_finish[e] != b.edge_finish[e]) {
      std::snprintf(buf, sizeof(buf),
                    "%s: edge %zu differs ([%.17g, %.17g] vs [%.17g, %.17g])", what, e,
                    a.edge_start[e], a.edge_finish[e], b.edge_start[e],
                    b.edge_finish[e]);
      return buf;
    }
  }
  if (a.makespan != b.makespan) {
    std::snprintf(buf, sizeof(buf), "%s: makespan differs (%.17g vs %.17g)", what,
                  a.makespan, b.makespan);
    return buf;
  }
  return "";
}

/// The inactive-config reductions: configurations that encode "no dynamics"
/// explicitly (an empty trace, a zero-drop loss model, a shared map with no
/// physical links) must leave the output bitwise identical to the plain run.
std::string check_reductions(const FuzzCase& c) {
  SimOptions base;
  base.noise = c.noise;
  base.serialize_transfers = c.serialize_transfers;
  std::mt19937_64 r0(c.sim_seed), r1(c.sim_seed), r2(c.sim_seed), r3(c.sim_seed);
  base.rng = &r0;
  const Schedule plain = simulate(c.graph, c.network, c.placement, kLat, base);

  NetworkTrace empty_trace;
  SimOptions opt = base;
  opt.trace = &empty_trace;
  opt.rng = &r1;
  const Schedule et = simulate(c.graph, c.network, c.placement, kLat, opt);
  if (auto d = diff_schedules(plain, et, "empty-trace reduction"); !d.empty()) return d;

  const LossAwareLatencyModel zero(kLat, c.network.num_devices());
  base.rng = &r2;
  const Schedule zl = simulate(c.graph, c.network, c.placement, zero, base);
  if (auto d = diff_schedules(plain, zl, "zero-drop reduction"); !d.empty()) return d;

  const SharedLinkMap no_links =
      build_shared_link_map(c.network.num_devices(), {});
  opt = base;
  opt.shared_links = &no_links;
  opt.rng = &r3;
  const Schedule ns = simulate(c.graph, c.network, c.placement, kLat, opt);
  if (auto d = diff_schedules(plain, ns, "no-links shared reduction"); !d.empty()) {
    return d;
  }
  return "";
}

/// --delta: a chain of random one-task moves re-simulated incrementally must
/// stay bitwise identical to a from-scratch simulation at every step, and the
/// refreshed DeltaSimState must keep chaining. Runs with the case's options
/// minus noise (noise always falls back and its draw order depends on rng
/// history, so a from-scratch reference would need bespoke reseeding); traces,
/// shared links, NIC serialization, and lossy models are all covered.
std::string check_delta(const FuzzCase& c, std::uint64_t case_index,
                        std::uint64_t* replayed, std::uint64_t* fell_back) {
  LossAwareLatencyModel loss(kLat, c.network.num_devices());
  for (const auto& [link, prob] : c.drops) loss.set_drop(link.first, link.second, prob);
  const LatencyModel& lat = c.with_loss ? static_cast<const LatencyModel&>(loss) : kLat;
  SimOptions opt;
  opt.serialize_transfers = c.serialize_transfers;
  if (c.with_trace) opt.trace = &c.trace;
  if (c.with_shared) opt.shared_links = &c.shared;

  SimWorkspace ws, ws_ref;
  Schedule prev, cur, ref;
  DeltaSimState ds;
  Placement p = c.placement;
  simulate_into(c.graph, c.network, p, lat, ws, prev, opt, &ds);

  const auto feasible = feasible_sets(c.graph, c.network);
  std::mt19937_64 move_rng(mix(c.sim_seed ^ mix(case_index)));
  const int moves = uniform_int(move_rng, 1, 6);
  for (int s = 0; s < moves; ++s) {
    const int v = uniform_int(move_rng, 0, c.graph.num_tasks() - 1);
    const auto& devs = feasible[v];
    const int d = devs[uniform_int(move_rng, 0, static_cast<int>(devs.size()) - 1)];
    p.set(v, d);

    const DeltaSimResult dr =
        simulate_delta(c.graph, c.network, p, v, lat, ws, prev, ds, cur, opt);
    ++(dr == DeltaSimResult::kReplayed ? *replayed : *fell_back);
    simulate_into(c.graph, c.network, p, lat, ws_ref, ref, opt);
    char what[64];
    std::snprintf(what, sizeof(what), "delta move %d (task %d -> dev %d, %s)", s, v, d,
                  dr == DeltaSimResult::kReplayed ? "replayed" : "fell back");
    if (auto diff = diff_schedules(cur, ref, what); !diff.empty()) return diff;
    std::swap(prev, cur);
  }
  return "";
}

/// Runs all checks for one case; returns "" on success.
std::string run_case(const FuzzCase& c, SimWorkspace& ws, Schedule& reused) {
  LossAwareLatencyModel loss(kLat, c.network.num_devices());
  for (const auto& [link, p] : c.drops) loss.set_drop(link.first, link.second, p);
  const LatencyModel& lat = c.with_loss ? static_cast<const LatencyModel&>(loss) : kLat;

  SimOptions opt;
  opt.noise = c.noise;
  opt.serialize_transfers = c.serialize_transfers;
  if (c.with_trace) opt.trace = &c.trace;
  if (c.with_shared) opt.shared_links = &c.shared;
  std::mt19937_64 rng_a(c.sim_seed), rng_b(c.sim_seed), rng_c(c.sim_seed),
      rng_d(c.sim_seed);

  if (!c.with_faults) {
    opt.rng = &rng_a;
    const Schedule prod = simulate(c.graph, c.network, c.placement, lat, opt);
    opt.rng = &rng_b;
    simulate_into(c.graph, c.network, c.placement, lat, ws, reused, opt);
    opt.rng = &rng_c;
    const Schedule ref = oracle_simulate(c.graph, c.network, c.placement, lat, opt);

    if (auto d = diff_schedules(prod, reused, "simulate vs simulate_into"); !d.empty()) {
      return d;
    }
    if (auto d = diff_schedules(prod, ref, "simulate vs oracle"); !d.empty()) return d;

    const CheckOptions check{.noise = c.noise,
                             .serialize_transfers = c.serialize_transfers,
                             .trace = opt.trace,
                             .shared_links = opt.shared_links};
    const InvariantReport report =
        check_schedule(c.graph, c.network, c.placement, lat, prod, check);
    if (!report.ok()) return "invariant violation:\n" + report.summary();

    // The fault path with an empty plan is a strict superset of simulate()
    // (it rejects traces and shared links, so compare without them).
    if (!c.with_trace && !c.with_shared) {
      opt.rng = &rng_d;
      const FaultSimResult empty =
          simulate_with_faults(c.graph, c.network, c.placement, lat, FaultPlan{}, opt);
      if (!empty.completed()) return "empty fault plan stranded tasks";
      if (auto d = diff_schedules(prod, empty.schedule, "simulate vs empty fault plan");
          !d.empty()) {
        return d;
      }
    }
    if (c.check_reductions) {
      if (auto d = check_reductions(c); !d.empty()) return d;
    }
    return "";
  }

  // Fault cases: replay determinism plus fault-aware invariants.
  opt.rng = &rng_a;
  const FaultSimResult r1 =
      simulate_with_faults(c.graph, c.network, c.placement, lat, c.plan, opt);
  opt.rng = &rng_b;
  const FaultSimResult r2 =
      simulate_with_faults(c.graph, c.network, c.placement, lat, c.plan, opt);
  if (auto d = diff_schedules(r1.schedule, r2.schedule, "fault replay"); !d.empty()) {
    return d;
  }
  if (r1.stranded != r2.stranded || r1.failed_devices != r2.failed_devices) {
    return "fault replay: stranded/failed bookkeeping differs";
  }
  const CheckOptions check{.noise = c.noise,
                           .serialize_transfers = c.serialize_transfers};
  const InvariantReport report =
      check_fault_result(c.graph, c.network, c.placement, lat, r1, check);
  if (!report.ok()) return "fault invariant violation:\n" + report.summary();
  if (c.check_reductions) {
    if (auto d = check_reductions(c); !d.empty()) return d;
  }
  return "";
}

// ---------------------------------------------------------------------------
// --parse mode: the text parsers must survive arbitrary mutation.

/// One random mutation of a wire string. Mutations are cheap and local; the
/// guarantee under test is "no crash", not coverage of every grammar branch.
std::string mutate(const std::string& wire, std::mt19937_64& rng) {
  std::string m = wire;
  if (m.empty()) return m;
  switch (uniform_int(rng, 0, 5)) {
    case 0:  // truncate (a torn write)
      m.resize(static_cast<std::size_t>(
          uniform_int(rng, 0, static_cast<int>(m.size()) - 1)));
      break;
    case 1: {  // flip one byte
      const auto at = static_cast<std::size_t>(
          uniform_int(rng, 0, static_cast<int>(m.size()) - 1));
      m[at] = static_cast<char>(m[at] ^ (1 << uniform_int(rng, 0, 7)));
      break;
    }
    case 2: {  // replace a token with garbage
      static const char* kGarbage[] = {"nan",  "inf",     "-1e999", "banana",
                                       "1e-",  "0x7f",    "",       "9999999999999999999",
                                       "-2",   "\x01\x02"};
      const auto at = static_cast<std::size_t>(
          uniform_int(rng, 0, static_cast<int>(m.size()) - 1));
      const std::size_t sp = m.find(' ', at);
      const std::size_t end = sp == std::string::npos ? m.size() : sp;
      m = m.substr(0, at) + kGarbage[uniform_int(rng, 0, 9)] + m.substr(end);
      break;
    }
    case 3: {  // delete one line
      std::vector<std::string> lines;
      std::istringstream in(m);
      for (std::string l; std::getline(in, l);) lines.push_back(l);
      if (lines.empty()) break;
      lines.erase(lines.begin() +
                  uniform_int(rng, 0, static_cast<int>(lines.size()) - 1));
      std::string out;
      for (const auto& l : lines) out += l + "\n";
      m = out;
      break;
    }
    case 4: {  // duplicate one line
      std::vector<std::string> lines;
      std::istringstream in(m);
      for (std::string l; std::getline(in, l);) lines.push_back(l);
      if (lines.empty()) break;
      const int at = uniform_int(rng, 0, static_cast<int>(lines.size()) - 1);
      lines.insert(lines.begin() + at, lines[at]);
      std::string out;
      for (const auto& l : lines) out += l + "\n";
      m = out;
      break;
    }
    case 5: {  // insert random bytes
      const auto at = static_cast<std::size_t>(
          uniform_int(rng, 0, static_cast<int>(m.size()) - 1));
      std::string junk;
      for (int k = uniform_int(rng, 1, 8); k > 0; --k) {
        junk.push_back(static_cast<char>(uniform_int(rng, 1, 255)));
      }
      m.insert(at, junk);
      break;
    }
  }
  return m;
}

/// Builds a valid request/response pair for one parse-fuzz case.
serve::PlacementRequest build_request(std::mt19937_64& rng) {
  TaskGraphParams gp;
  gp.num_tasks = uniform_int(rng, 1, 20);
  gp.p_connect = uniform(rng, 0.0, 0.5);
  gp.num_hw_kinds = uniform_int(rng, 1, 3);
  gp.p_task_requires = uniform(rng, 0.0, 0.4);
  NetworkParams np;
  np.num_devices = uniform_int(rng, 1, 6);
  np.num_hw_kinds = gp.num_hw_kinds;
  np.p_hw_support = uniform(rng, 0.5, 1.0);

  serve::PlacementRequest req;
  req.graph = generate_task_graph(gp, rng);
  req.network = generate_device_network(np, rng);
  ensure_feasible(req.graph, req.network, rng);
  req.id = "case-" + std::to_string(uniform_int(rng, 0, 1 << 20));
  req.deadline_ms = uniform(rng, 0.0, 1.0) < 0.5 ? 0.0 : uniform(rng, 0.1, 500.0);
  req.steps = uniform_int(rng, 0, 200);
  req.seed = rng();
  if (uniform(rng, 0.0, 1.0) < 0.5) {
    req.initial = random_placement(req.graph, req.network, rng);
  }
  return req;
}

/// Round-trips the unmutated wire and hammers mutants; "" on success.
std::string run_parse_case(std::uint64_t base_seed, std::uint64_t index) {
  std::mt19937_64 rng(mix(base_seed ^ mix(index)));
  const serve::PlacementRequest req = build_request(rng);

  std::ostringstream os;
  serve::write_request(os, req);
  const std::string wire = os.str();

  // Writer -> reader -> writer must be a byte identity (no drift between the
  // two sides of the protocol).
  {
    std::istringstream is(wire);
    serve::PlacementRequest back;
    if (!serve::read_request(is, back)) return "round-trip: clean EOF on valid request";
    std::ostringstream os2;
    serve::write_request(os2, back);
    if (os2.str() != wire) return "round-trip: request re-serialization differs";
  }

  serve::PlacementResponse resp;
  resp.id = req.id;
  resp.status = serve::ResponseStatus::kOk;
  resp.mode = serve::ServeMode::kPolicy;
  resp.makespan = uniform(rng, 0.0, 1e6);
  resp.steps = uniform_int(rng, 0, 500);
  resp.queue_ms = uniform(rng, 0.0, 10.0);
  resp.search_ms = uniform(rng, 0.0, 100.0);
  if (uniform(rng, 0.0, 1.0) < 0.7) {
    resp.placement =
        req.initial.has_value() ? *req.initial : Placement(req.graph.num_tasks());
  }
  std::ostringstream ros;
  serve::write_response(ros, resp);
  const std::string rwire = ros.str();
  {
    std::istringstream is(rwire);
    serve::PlacementResponse back;
    if (!serve::read_response(is, back)) return "round-trip: clean EOF on valid response";
    std::ostringstream ros2;
    serve::write_response(ros2, back);
    if (ros2.str() != rwire) return "round-trip: response re-serialization differs";
  }

  const std::string framed = giph::util::wrap_checked("giph-params", wire);
  {
    const std::string payload = giph::util::unwrap_checked(framed, "giph-params", "fuzz");
    if (payload != wire) return "checked-frame: unwrap(wrap(x)) != x";
  }

  // Mutants: every parser entry point must return or throw, never crash.
  for (int k = 0; k < 8; ++k) {
    const std::string mreq = mutate(wire, rng);
    try {
      std::istringstream is(mreq);
      serve::PlacementRequest r2;
      (void)serve::read_request(is, r2);
    } catch (const std::exception&) {
      // expected for most mutants; the guarantee is "throws, never crashes"
    }
    const std::string mresp = mutate(rwire, rng);
    try {
      std::istringstream is(mresp);
      serve::PlacementResponse r2;
      (void)serve::read_response(is, r2);
    } catch (const std::exception&) {
    }
    const std::string mframe = mutate(framed, rng);
    try {
      (void)giph::util::unwrap_checked(mframe, "giph-params", "fuzz");
    } catch (const std::exception&) {
    }
  }
  return "";
}

int run_parse_mode(std::uint64_t cases, std::uint64_t seed, std::uint64_t start,
                   bool verbose) {
  for (std::uint64_t i = start; i < start + cases; ++i) {
    std::string failure;
    try {
      failure = run_parse_case(seed, i);
    } catch (const std::exception& e) {
      failure = std::string("exception escaped the harness: ") + e.what();
    }
    if (!failure.empty()) {
      std::fprintf(stderr,
                   "FUZZ FAILURE (parse) at case %llu (base seed %llu)\n  %s\n"
                   "  reproduce: giph_fuzz --parse --seed %llu --start %llu --cases 1\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed), failure.c_str(),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
    if (verbose && (i - start + 1) % 1000 == 0) {
      std::printf("giph_fuzz: %llu/%llu parse cases ok\n",
                  static_cast<unsigned long long>(i - start + 1),
                  static_cast<unsigned long long>(cases));
    }
  }
  std::printf(
      "giph_fuzz: %llu parse cases ok (seed %llu): request/response/frame "
      "round-trips are byte identities, no mutant crashed a parser\n",
      static_cast<unsigned long long>(cases), static_cast<unsigned long long>(seed));
  return 0;
}

// ---------------------------------------------------------------------------
// --hier mode: the scale tier (partition -> coarse place -> refine) must keep
// its invariants and agree bitwise with flat simulation.

/// Structural comparison of two gpNets; "" when identical.
std::string diff_gpnets(const GpNet& a, const GpNet& b) {
  if (a.node_task != b.node_task) return "sparse gpnet: node_task differs";
  if (a.node_device != b.node_device) return "sparse gpnet: node_device differs";
  if (a.is_pivot != b.is_pivot) return "sparse gpnet: is_pivot differs";
  if (a.options != b.options) return "sparse gpnet: per-task options differ";
  if (a.pivot_of_task != b.pivot_of_task) return "sparse gpnet: pivot_of_task differs";
  if (a.edge_task_edge != b.edge_task_edge) return "sparse gpnet: edge_task_edge differs";
  if (a.view.edges != b.view.edges) return "sparse gpnet: edge list differs";
  if (a.view.topo != b.view.topo) return "sparse gpnet: topological order differs";
  return "";
}

/// Per-case stats of the hier mode (for the summary line).
struct HierStats {
  std::uint64_t pinned_cases = 0;
  std::uint64_t forced_extra_clusters = 0;  ///< cases where cuts exceeded the target
  std::uint64_t refine_kept = 0;            ///< total moves kept across cases
};

std::string run_hier_case(std::uint64_t base_seed, std::uint64_t index, HierStats* hs) {
  std::mt19937_64 rng(mix(base_seed ^ mix(index)));

  TaskGraphParams gp;
  gp.num_tasks = uniform_int(rng, 2, 60);
  gp.alpha = uniform(rng, 0.5, 2.0);
  gp.p_connect = uniform(rng, 0.0, 0.6);
  gp.mean_compute = uniform(rng, 10.0, 200.0);
  gp.mean_bytes = uniform(rng, 10.0, 200.0);
  gp.het_compute = uniform(rng, 0.0, 0.9);
  gp.het_bytes = uniform(rng, 0.0, 0.9);
  gp.num_hw_kinds = uniform_int(rng, 1, 6);
  gp.p_task_requires = uniform(rng, 0.0, 0.6);

  NetworkParams np;
  np.num_devices = uniform_int(rng, 1, 12);
  np.mean_speed = uniform(rng, 1.0, 20.0);
  np.mean_bandwidth = uniform(rng, 5.0, 100.0);
  np.mean_delay = uniform(rng, 0.0, 3.0);
  np.het_speed = uniform(rng, 0.0, 0.9);
  np.het_bandwidth = uniform(rng, 0.0, 0.9);
  np.num_hw_kinds = gp.num_hw_kinds;
  np.p_hw_support = uniform(rng, 0.3, 1.0);

  TaskGraph g = generate_task_graph(gp, rng);
  DeviceNetwork n = generate_device_network(np, rng);
  ensure_feasible(g, n, rng);

  // Pins exercise the partitioner's forced cuts. Each pin targets a device
  // the task can already run on, so the instance stays feasible.
  if (uniform(rng, 0.0, 1.0) < 0.4) {
    const auto sets = feasible_sets(g, n);
    bool pinned = false;
    for (int v = 0; v < g.num_tasks(); ++v) {
      if (uniform(rng, 0.0, 1.0) < 0.15) {
        g.task(v).pinned =
            sets[v][uniform_int(rng, 0, static_cast<int>(sets[v].size()) - 1)];
        pinned = true;
      }
    }
    if (pinned && hs) ++hs->pinned_cases;
  }

  const int nt = g.num_tasks();
  const int nd = n.num_devices();
  char buf[200];

  PartitionOptions popt;
  popt.num_clusters = uniform_int(rng, 1, nt + 2);
  popt.balance = uniform(rng, 1.0, 2.5);
  const GraphPartition part = partition_tasks(g, n, popt);
  const int nc = part.num_clusters();
  if (hs && nc > std::min(popt.num_clusters, nt)) ++hs->forced_extra_clusters;

  // Membership is an exact partition, member lists ascending and consistent.
  if (static_cast<int>(part.cluster_of.size()) != nt) {
    return "partition: cluster_of size mismatch";
  }
  if (static_cast<int>(part.members.size()) != nc) {
    return "partition: members size mismatch";
  }
  std::vector<int> seen(nt, 0);
  for (int c = 0; c < nc; ++c) {
    int prev = -1;
    for (int v : part.members[c]) {
      if (v < 0 || v >= nt) return "partition: member id out of range";
      if (v <= prev) return "partition: member list not ascending";
      prev = v;
      if (part.cluster_of[v] != c) return "partition: cluster_of disagrees with members";
      ++seen[v];
    }
  }
  for (int v = 0; v < nt; ++v) {
    if (seen[v] != 1) {
      std::snprintf(buf, sizeof(buf), "partition: task %d in %d clusters", v, seen[v]);
      return buf;
    }
  }
  if (!part.coarse.is_dag()) return "partition: coarse graph has a cycle";

  // Conservation: coarse compute matches, coarse + internal bytes match.
  if (std::abs(part.coarse.total_compute() - g.total_compute()) >
      1e-6 * std::max(1.0, g.total_compute())) {
    return "partition: compute not conserved";
  }
  if (std::abs(part.coarse.total_bytes() + part.internal_bytes - g.total_bytes()) >
      1e-6 * std::max(1.0, g.total_bytes())) {
    return "partition: bytes not conserved";
  }

  // The fine instance is feasible, so the forced cuts must have kept the
  // coarse one feasible too (feasible_sets throws otherwise).
  try {
    (void)feasible_sets(part.coarse, n);
  } catch (const std::exception& e) {
    return std::string("partition: coarse instance infeasible: ") + e.what();
  }

  // Determinism: a repeat run is identical.
  if (partition_tasks(g, n, popt).cluster_of != part.cluster_of) {
    return "partition: repeat run differs";
  }

  // Expanding any feasible coarse placement gives a feasible fine placement
  // that is constant on every cluster.
  {
    const Placement coarse = random_placement(part.coarse, n, rng);
    const Placement fine = expand_placement(part, coarse);
    if (!is_feasible(g, n, fine)) return "expand: infeasible fine placement";
    for (int v = 0; v < nt; ++v) {
      if (fine.device_of(v) != coarse.device_of(part.cluster_of[v])) {
        return "expand: task not on its cluster's device";
      }
    }
  }

  // Full hierarchical run: feasible result, monotone refinement, and the
  // reported objective must be BITWISE the flat simulation of the returned
  // placement (the cross-check that the tier never reports a makespan the
  // fine simulator would not reproduce).
  HierarchicalOptions hopt;
  hopt.partition = popt;
  hopt.coarse_steps_factor = uniform_int(rng, 0, 2);
  hopt.coarse_greedy = uniform(rng, 0.0, 1.0) < 0.5;
  hopt.refine_rounds = uniform_int(rng, 0, 2);
  hopt.refine_topk = uniform_int(rng, 1, 4);

  GiPHOptions aopt;
  aopt.embed_dim = 4;
  aopt.gpnet_topk = uniform(rng, 0.0, 1.0) < 0.5 ? 0 : uniform_int(rng, 1, nd);
  GiPHAgent agent(aopt);

  HierarchicalPlacer placer(g, n, kLat, hopt);
  HierarchicalStats st;
  const Placement fine = placer.place(agent, rng, &st);
  if (hs) hs->refine_kept += st.refine_moves_kept;
  if (!is_feasible(g, n, fine)) return "hier: returned placement infeasible";
  if (st.refined_objective > st.expanded_objective) {
    std::snprintf(buf, sizeof(buf), "hier: refinement worsened (%.17g > %.17g)",
                  st.refined_objective, st.expanded_objective);
    return buf;
  }
  const double norm =
      placer.fine_normalizer() > 0.0 ? placer.fine_normalizer() : 1.0;
  const double flat = simulate(g, n, fine, kLat).makespan / norm;
  if (flat != st.refined_objective) {
    std::snprintf(buf, sizeof(buf),
                  "hier: reported objective %.17g != flat simulation %.17g",
                  st.refined_objective, flat);
    return buf;
  }
  if (placer.objective_of(fine) != st.refined_objective) {
    return "hier: objective_of differs from refine's report";
  }

  // Sparse gpNet at k >= D is node-for-node the dense gpNet, and the subset
  // EST sweep reproduces the full sweep's rows bitwise.
  {
    const Schedule sched = simulate(g, n, fine, kLat);
    EstSweepWorkspace full_ws, sub_ws;
    est_sweep(sched, g, n, fine, kLat, full_ws);
    const auto feas = feasible_sets(g, n);
    const GpNet dense = build_gpnet(g, n, fine, feas);
    const GpNet sparse =
        build_gpnet_topk(g, n, fine, feas, nd + uniform_int(rng, 0, 3), full_ws.est);
    if (auto d = diff_gpnets(dense, sparse); !d.empty()) return d;

    const std::vector<int>& subset = part.members[uniform_int(rng, 0, nc - 1)];
    est_sweep_subset(sched, g, n, fine, kLat, subset, sub_ws);
    for (int v : subset) {
      for (int d = 0; d < nd; ++d) {
        const std::size_t at = static_cast<std::size_t>(v) * nd + d;
        if (full_ws.est[at] != sub_ws.est[at]) {
          std::snprintf(buf, sizeof(buf),
                        "subset est sweep: task %d device %d differs (%.17g vs %.17g)",
                        v, d, full_ws.est[at], sub_ws.est[at]);
          return buf;
        }
      }
    }
  }
  return "";
}

int run_hier_mode(std::uint64_t cases, std::uint64_t seed, std::uint64_t start,
                  bool verbose) {
  HierStats hs;
  for (std::uint64_t i = start; i < start + cases; ++i) {
    std::string failure;
    try {
      failure = run_hier_case(seed, i, &hs);
    } catch (const std::exception& e) {
      failure = std::string("exception escaped the harness: ") + e.what();
    }
    if (!failure.empty()) {
      std::fprintf(stderr,
                   "FUZZ FAILURE (hier) at case %llu (base seed %llu)\n  %s\n"
                   "  reproduce: giph_fuzz --hier --seed %llu --start %llu --cases 1\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed), failure.c_str(),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
    if (verbose && (i - start + 1) % 1000 == 0) {
      std::printf("giph_fuzz: %llu/%llu hier cases ok\n",
                  static_cast<unsigned long long>(i - start + 1),
                  static_cast<unsigned long long>(cases));
    }
  }
  std::printf(
      "giph_fuzz: %llu hier cases ok (seed %llu, %llu with pins, %llu with forced "
      "extra clusters, %llu refine moves kept): partition invariants hold, "
      "hierarchical objectives match flat simulation bitwise, sparse gpNet (k >= D) "
      "== dense, subset EST sweep == full sweep\n",
      static_cast<unsigned long long>(cases), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(hs.pinned_cases),
      static_cast<unsigned long long>(hs.forced_extra_clusters),
      static_cast<unsigned long long>(hs.refine_kept));
  return 0;
}

// ---------------------------------------------------------------------------
// --stream mode: iterated-graph execution vs the independent streaming oracle.

struct StreamFuzzCase {
  TaskGraph graph;
  DeviceNetwork network;
  Placement placement;
  StreamOptions opt;  ///< sim.rng left null; each replay installs its own
  bool with_trace = false;
  NetworkTrace trace;
  bool with_shared = false;
  SharedLinkMap shared;
  bool with_loss = false;
  std::vector<std::pair<std::pair<int, int>, double>> drops;
  std::uint64_t sim_seed = 0;
  std::string shape;
};

StreamFuzzCase build_stream_case(std::uint64_t base_seed, std::uint64_t index) {
  std::mt19937_64 rng(mix(base_seed ^ mix(index)));
  StreamFuzzCase c;

  TaskGraphParams gp;
  gp.num_tasks = uniform_int(rng, 2, 40);
  gp.alpha = uniform(rng, 0.5, 2.0);
  gp.p_connect = uniform(rng, 0.0, 0.6);
  gp.mean_compute = uniform(rng, 10.0, 200.0);
  gp.mean_bytes = uniform(rng, 10.0, 200.0);
  gp.het_compute = uniform(rng, 0.0, 0.9);
  gp.het_bytes = uniform(rng, 0.0, 0.9);
  gp.num_hw_kinds = uniform_int(rng, 1, 6);
  gp.p_task_requires = uniform(rng, 0.0, 0.6);

  NetworkParams np;
  np.num_devices = uniform_int(rng, 1, 10);
  np.mean_speed = uniform(rng, 1.0, 20.0);
  np.mean_bandwidth = uniform(rng, 5.0, 100.0);
  np.mean_delay = uniform(rng, 0.0, 3.0);
  np.het_speed = uniform(rng, 0.0, 0.9);
  np.het_bandwidth = uniform(rng, 0.0, 0.9);
  np.num_hw_kinds = gp.num_hw_kinds;
  np.p_hw_support = uniform(rng, 0.3, 1.0);

  c.graph = generate_task_graph(gp, rng);
  c.network = generate_device_network(np, rng);
  ensure_feasible(c.graph, c.network, rng);
  if (uniform(rng, 0.0, 1.0) < 0.33) {
    for (int d = 0; d < c.network.num_devices(); ++d) {
      c.network.device(d).cores = uniform_int(rng, 1, 4);
    }
  }
  c.placement = random_placement(c.graph, c.network, rng);
  c.sim_seed = rng();

  // The interval is scaled to the one-shot makespan: below 1x the frames
  // pipeline (queueing across frame boundaries), above it they barely touch.
  const double span =
      std::max(1e-6, simulate(c.graph, c.network, c.placement, kLat).makespan);
  c.opt.frames = uniform_int(rng, 1, 12);
  c.opt.interval = span * uniform(rng, 0.05, 1.5);
  if (uniform(rng, 0.0, 1.0) < 0.3) c.opt.arrival_jitter = uniform(rng, 0.05, 0.8);
  if (uniform(rng, 0.0, 1.0) < 0.4) c.opt.sim.noise = uniform(rng, 0.05, 0.5);
  c.opt.sim.serialize_transfers = uniform(rng, 0.0, 1.0) < 0.3;
  if (uniform(rng, 0.0, 1.0) < 0.3) {
    c.opt.detect_steady_state = true;
    c.opt.steady_window = uniform_int(rng, 1, 6);
  }

  const int m = c.network.num_devices();
  if (m >= 2 && uniform(rng, 0.0, 1.0) < 0.3) {
    c.with_shared = true;
    std::vector<PhysicalLink> phys;
    std::vector<int> order(m);
    for (int k = 0; k < m; ++k) order[k] = k;
    std::shuffle(order.begin(), order.end(), rng);
    for (int k = 1; k < m; ++k) {
      phys.push_back({order[uniform_int(rng, 0, k - 1)], order[k],
                      uniform(rng, 5.0, 100.0), uniform(rng, 0.0, 2.0),
                      uniform(rng, 0.0, 1.0) < 0.8});
    }
    apply_topology(c.network, phys);
    c.shared = build_shared_link_map(m, phys);
  }
  if (m >= 2 && uniform(rng, 0.0, 1.0) < 0.3) {
    c.with_trace = true;
    // Breakpoints spread over the whole stream so some land mid-pipeline in
    // later frames, not just inside frame 0.
    const double stream_span = span + c.opt.interval * (c.opt.frames - 1);
    const int nlinks = uniform_int(rng, 1, 2);
    for (int x = 0; x < nlinks; ++x) {
      const int src = uniform_int(rng, 0, m - 1);
      int dst = uniform_int(rng, 0, m - 2);
      if (dst >= src) ++dst;
      LinkSchedule& ls = c.trace.link(src, dst);
      if (!ls.segments.empty()) continue;
      double t = uniform(rng, 0.0, stream_span * 0.5);
      for (int s = uniform_int(rng, 1, 3); s > 0; --s) {
        TraceSegment seg;
        seg.time = t;
        seg.bandwidth_factor = uniform(rng, 0.3, 2.5);
        if (uniform(rng, 0.0, 1.0) < 0.5) seg.delay_add = uniform(rng, 0.0, 2.0);
        if (uniform(rng, 0.0, 1.0) < 0.5) seg.drop_prob = uniform(rng, 0.0, 0.6);
        ls.segments.push_back(seg);
        t += uniform(rng, stream_span * 0.05, stream_span * 0.5);
      }
    }
  }
  if (m >= 2 && uniform(rng, 0.0, 1.0) < 0.25) {
    c.with_loss = true;
    for (int x = uniform_int(rng, 1, 3); x > 0; --x) {
      const int src = uniform_int(rng, 0, m - 1);
      int dst = uniform_int(rng, 0, m - 2);
      if (dst >= src) ++dst;
      c.drops.push_back({{src, dst}, uniform(rng, 0.05, 0.7)});
    }
  }

  char shape[220];
  std::snprintf(shape, sizeof(shape),
                "tasks=%d devices=%d frames=%d interval=%.3f jitter=%.3f noise=%.3f "
                "serialize=%d steady=%d trace=%d shared=%d loss=%zu",
                c.graph.num_tasks(), c.network.num_devices(), c.opt.frames,
                c.opt.interval, c.opt.arrival_jitter, c.opt.sim.noise,
                c.opt.sim.serialize_transfers ? 1 : 0, c.opt.detect_steady_state ? 1 : 0,
                c.with_trace ? 1 : 0, c.with_shared ? 1 : 0, c.drops.size());
  c.shape = shape;
  return c;
}

/// Exact comparison of two StreamResults; "" when bitwise identical.
std::string diff_stream_results(const StreamResult& a, const StreamResult& b,
                                const char* what) {
  char buf[160];
  if (auto d = diff_schedules(a.schedule, b.schedule, what); !d.empty()) return d;
  if (a.frames != b.frames || a.steady_frame != b.steady_frame) {
    std::snprintf(buf, sizeof(buf), "%s: frames %d/%d vs %d/%d", what, a.frames,
                  a.steady_frame, b.frames, b.steady_frame);
    return buf;
  }
  if (a.frame_arrival != b.frame_arrival) return std::string(what) + ": arrivals differ";
  if (a.frame_finish != b.frame_finish) return std::string(what) + ": finishes differ";
  if (a.frame_latency != b.frame_latency) return std::string(what) + ": latencies differ";
  if (a.throughput != b.throughput || a.p50_latency != b.p50_latency ||
      a.p99_latency != b.p99_latency || a.makespan != b.makespan) {
    std::snprintf(buf, sizeof(buf),
                  "%s: metrics differ (tp %.17g vs %.17g, p99 %.17g vs %.17g)", what,
                  a.throughput, b.throughput, a.p99_latency, b.p99_latency);
    return buf;
  }
  return "";
}

/// Runs all checks for one streaming case; returns "" on success.
std::string run_stream_case(const StreamFuzzCase& c, StreamWorkspace& ws,
                            StreamResult& reused) {
  LossAwareLatencyModel loss(kLat, c.network.num_devices());
  for (const auto& [link, p] : c.drops) loss.set_drop(link.first, link.second, p);
  const LatencyModel& lat = c.with_loss ? static_cast<const LatencyModel&>(loss) : kLat;

  StreamOptions opt = c.opt;
  if (c.with_trace) opt.sim.trace = &c.trace;
  if (c.with_shared) opt.sim.shared_links = &c.shared;
  std::mt19937_64 rng_a(c.sim_seed), rng_b(c.sim_seed), rng_c(c.sim_seed),
      rng_d(c.sim_seed), rng_e(c.sim_seed);

  opt.sim.rng = &rng_a;
  const StreamResult fast = simulate_streaming(c.graph, c.network, c.placement, lat, opt);
  opt.sim.rng = &rng_b;
  simulate_streaming_into(c.graph, c.network, c.placement, lat, ws, reused, opt);
  opt.sim.rng = &rng_c;
  const StreamResult ref =
      oracle_simulate_streaming(c.graph, c.network, c.placement, lat, opt);

  if (auto d = diff_stream_results(fast, reused, "streaming vs reused workspace");
      !d.empty()) {
    return d;
  }
  if (auto d = diff_stream_results(fast, ref, "streaming vs oracle"); !d.empty()) {
    return d;
  }

  const InvariantReport report =
      check_stream_result(c.graph, c.network, c.placement, lat, fast, opt);
  if (!report.ok()) return "stream invariant violation:\n" + report.summary();

  // F = 1 must be the one-shot simulator, bitwise (same draw sequence).
  if (c.opt.frames == 1) {
    SimOptions one = opt.sim;
    one.rng = &rng_d;
    const Schedule flat = simulate(c.graph, c.network, c.placement, lat, one);
    if (auto d = diff_schedules(fast.schedule, flat, "F=1 reduction"); !d.empty()) {
      return d;
    }
  }

  // Steady-state truncation must be legitimate: the truncated run IS the
  // stream with that many frames (not a prefix of the longer one), so
  // re-simulating result.frames without detection reproduces it bitwise.
  if (fast.frames < c.opt.frames) {
    StreamOptions trunc = opt;
    trunc.frames = fast.frames;
    trunc.detect_steady_state = false;
    trunc.sim.rng = &rng_e;
    const StreamResult again =
        simulate_streaming(c.graph, c.network, c.placement, lat, trunc);
    StreamResult expected = fast;
    expected.steady_frame = -1;  // the re-run does not detect
    if (auto d = diff_stream_results(expected, again, "steady-state truncation");
        !d.empty()) {
      return d;
    }
  }
  return "";
}

int run_stream_mode(std::uint64_t cases, std::uint64_t seed, std::uint64_t start,
                    bool verbose) {
  StreamWorkspace ws;
  StreamResult reused;
  std::uint64_t pipelined = 0, jittered = 0, noisy = 0, truncated = 0, single = 0;
  for (std::uint64_t i = start; i < start + cases; ++i) {
    StreamFuzzCase c;
    std::string failure;
    try {
      c = build_stream_case(seed, i);
      jittered += c.opt.arrival_jitter > 0.0 ? 1 : 0;
      noisy += c.opt.sim.noise > 0.0 ? 1 : 0;
      single += c.opt.frames == 1 ? 1 : 0;
      failure = run_stream_case(c, ws, reused);
      if (failure.empty()) {
        pipelined += c.opt.frames > 1 ? 1 : 0;
        truncated += reused.frames < c.opt.frames ? 1 : 0;
      }
    } catch (const std::exception& e) {
      failure = std::string("exception: ") + e.what();
    }
    if (!failure.empty()) {
      std::fprintf(stderr,
                   "FUZZ FAILURE (stream) at case %llu (base seed %llu)\n  %s\n  %s\n"
                   "  reproduce: giph_fuzz --stream --seed %llu --start %llu --cases 1\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed), c.shape.c_str(),
                   failure.c_str(), static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
    if (verbose && (i - start + 1) % 1000 == 0) {
      std::printf("giph_fuzz: %llu/%llu stream cases ok\n",
                  static_cast<unsigned long long>(i - start + 1),
                  static_cast<unsigned long long>(cases));
    }
  }
  std::printf(
      "giph_fuzz: %llu stream cases ok (seed %llu, %llu pipelined, %llu jittered, "
      "%llu noisy, %llu single-frame, %llu steady-state truncated): "
      "simulate_streaming == reused workspace == streaming oracle, invariants hold, "
      "F=1 == simulate bitwise, truncation legitimate\n",
      static_cast<unsigned long long>(cases), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(pipelined),
      static_cast<unsigned long long>(jittered), static_cast<unsigned long long>(noisy),
      static_cast<unsigned long long>(single), static_cast<unsigned long long>(truncated));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t cases = 1000;
  std::uint64_t seed = 20260806;
  std::uint64_t start = 0;
  bool verbose = false;
  bool delta = false;
  bool parse = false;
  bool hier = false;
  bool stream = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "giph_fuzz: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--cases") {
      cases = next();
    } else if (arg == "--seed") {
      seed = next();
    } else if (arg == "--start") {
      start = next();
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--delta") {
      delta = true;
    } else if (arg == "--parse") {
      parse = true;
    } else if (arg == "--hier") {
      hier = true;
    } else if (arg == "--stream") {
      stream = true;
    } else {
      std::fprintf(stderr,
                   "usage: giph_fuzz [--cases N] [--seed S] [--start K] [--delta] "
                   "[--parse] [--hier] [--stream] [--verbose]\n");
      return 2;
    }
  }
  if (parse) return run_parse_mode(cases, seed, start, verbose);
  if (hier) return run_hier_mode(cases, seed, start, verbose);
  if (stream) return run_stream_mode(cases, seed, start, verbose);

  SimWorkspace ws;
  Schedule reused;
  std::uint64_t fault_cases = 0, noisy_cases = 0, trace_cases = 0, shared_cases = 0,
                loss_cases = 0, delta_replayed = 0, delta_fell_back = 0;
  for (std::uint64_t i = start; i < start + cases; ++i) {
    FuzzCase c;
    std::string failure;
    try {
      c = build_case(seed, i);
      fault_cases += c.with_faults ? 1 : 0;
      noisy_cases += c.noise > 0.0 ? 1 : 0;
      trace_cases += c.with_trace ? 1 : 0;
      shared_cases += c.with_shared ? 1 : 0;
      loss_cases += c.with_loss ? 1 : 0;
      failure = run_case(c, ws, reused);
      // Fault plans are outside simulate_delta's contract; every other case
      // (including traced / shared / lossy ones) gets the one-move chain.
      if (failure.empty() && delta && !c.with_faults) {
        failure = check_delta(c, i, &delta_replayed, &delta_fell_back);
      }
    } catch (const std::exception& e) {
      failure = std::string("exception: ") + e.what();
    }
    if (!failure.empty()) {
      std::fprintf(stderr,
                   "FUZZ FAILURE at case %llu (base seed %llu)\n  %s\n  %s\n"
                   "  reproduce: giph_fuzz --seed %llu --start %llu --cases 1\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed), c.shape.c_str(),
                   failure.c_str(), static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
    if (verbose && (i - start + 1) % 1000 == 0) {
      std::printf("giph_fuzz: %llu/%llu cases ok\n",
                  static_cast<unsigned long long>(i - start + 1),
                  static_cast<unsigned long long>(cases));
    }
  }
  std::printf(
      "giph_fuzz: %llu cases ok (seed %llu, %llu noisy, %llu with fault plans, "
      "%llu traced, %llu shared-topology, %llu lossy): "
      "simulate == simulate_into == oracle, all invariants hold\n",
      static_cast<unsigned long long>(cases), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(noisy_cases),
      static_cast<unsigned long long>(fault_cases),
      static_cast<unsigned long long>(trace_cases),
      static_cast<unsigned long long>(shared_cases),
      static_cast<unsigned long long>(loss_cases));
  if (delta) {
    std::printf(
        "giph_fuzz: delta moves ok (%llu replayed incrementally, %llu fell back), "
        "all bitwise equal to from-scratch simulation\n",
        static_cast<unsigned long long>(delta_replayed),
        static_cast<unsigned long long>(delta_fell_back));
  }
  return 0;
}
