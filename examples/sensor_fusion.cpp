// Cooperative sensor fusion for connected autonomous vehicles (Section 5.3):
// extracts placement problems from a simulated traffic trace, trains a GiPH
// policy on the first half, then follows the trace - replacing each
// deployed placement only when the amortized relocation cost is worth it.
//
// Usage: sensor_fusion [episodes] [snapshots]

#include <cstdlib>
#include <iostream>

#include "casestudy/sensor_fusion.hpp"
#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::casestudy;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 100;
  const int max_snapshots = argc > 2 ? std::atoi(argv[2]) : 160;

  CaseStudyParams params;
  params.seed = 11;
  SensorFusionWorld world(params);
  std::vector<SensorFusionCase> trace;
  for (int s = 0; s < max_snapshots && static_cast<int>(trace.size()) < 24; ++s) {
    auto c = world.next_case();
    if (c && c->graph.num_tasks() >= 4) trace.push_back(std::move(*c));
  }
  std::cout << "collected " << trace.size() << " placement cases from the trace\n";
  if (trace.size() < 6) {
    std::cerr << "trace too sparse; increase snapshots\n";
    return 1;
  }

  const DefaultLatencyModel lat;
  const std::size_t split = trace.size() / 2;

  GiPHOptions options;
  options.seed = 3;
  GiPHAgent agent(options);
  TrainOptions topt;
  topt.episodes = episodes;
  topt.lr = 0.003;
  topt.gamma = 0.1;
  topt.discount_state_weight = false;
  std::cout << "training GiPH on " << split << " cases for " << episodes
            << " episodes...\n";
  train_reinforce(agent, lat,
                  [&trace, split](std::mt19937_64& r) {
                    std::uniform_int_distribution<std::size_t> pick(0, split - 1);
                    const SensorFusionCase& c = trace[pick(r)];
                    return ProblemInstance{&c.graph, &c.network};
                  },
                  topt);

  // Follow the rest of the trace: each snapshot, search from the currently
  // deployed placement under the relocation-aware objective.
  std::cout << "\nfollowing the trace (relocation amortized over "
            << params.pipeline_hz << " Hz pipeline runs):\n";
  std::cout << "snapshot  tasks  devs   SLR(GiPH)  SLR(HEFT)  reloc-cost(ms)\n";
  double total_reloc = 0.0;
  for (std::size_t i = split; i < trace.size(); ++i) {
    const SensorFusionCase& c = trace[i];
    std::mt19937_64 rng(100 + i);
    const Placement deployed = random_placement(c.graph, c.network, rng);
    const double denom = slr_denominator(c.graph, c.network, lat);
    PlacementSearchEnv env(c.graph, c.network, lat,
                           // Amortize relocation over a typical dwell time
                           // near an intersection (~60 s of pipeline runs).
                           relocation_aware_objective(c, lat, deployed, 60.0),
                           deployed, denom);
    run_search(agent, env, 2 * c.graph.num_tasks(), rng);
    const Placement& chosen = env.best_placement();
    const double reloc = total_relocation_cost_ms(c, deployed, chosen);
    total_reloc += reloc;
    const HeftResult heft = heft_schedule(c.graph, c.network, lat);
    std::cout << "  " << i - split << "\t" << c.graph.num_tasks() << "\t"
              << c.network.num_devices() << "\t"
              << makespan(c.graph, c.network, chosen, lat) / denom << "\t"
              << makespan(c.graph, c.network, heft.placement, lat) / denom << "\t"
              << reloc << "\n";
  }
  std::cout << "total relocation cost across the trace: " << total_reloc << " ms\n";
  return 0;
}
