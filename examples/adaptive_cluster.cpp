// Adapting to a changing device cluster without retraining (Section 5.1,
// "Adaptivity"): train a GiPH policy once, save it, then keep re-placing an
// application while devices leave and weaker replacements join. The same
// saved policy is reloaded into a fresh agent to demonstrate persistence.
//
// Usage: adaptive_cluster [episodes]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"
#include "heft/heft.hpp"

using namespace giph;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 200;

  std::mt19937_64 rng(13);
  TaskGraphParams gp;
  gp.num_tasks = 12;
  NetworkParams np;
  np.num_devices = 10;
  Dataset train = generate_dataset({gp}, {np}, 20, 3, rng);
  const DefaultLatencyModel lat;

  GiPHOptions options;
  options.seed = 9;
  GiPHAgent trained(options);
  TrainOptions topt;
  topt.episodes = episodes;
  topt.lr = 0.003;
  topt.gamma = 0.1;
  topt.discount_state_weight = false;
  std::cout << "training GiPH for " << episodes << " episodes...\n";
  train_reinforce(trained, lat,
                  [&train](std::mt19937_64& r) {
                    std::uniform_int_distribution<std::size_t> gi(0, train.graphs.size() - 1);
                    std::uniform_int_distribution<std::size_t> ni(0, train.networks.size() - 1);
                    return ProblemInstance{&train.graphs[gi(r)], &train.networks[ni(r)]};
                  },
                  topt);

  // Persist and reload the policy - a deployment would ship this file.
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "giph_policy.params").string();
  trained.save(model_path);
  GiPHOptions fresh_options;
  fresh_options.seed = 1234;  // different random init, overwritten by load
  GiPHAgent agent(fresh_options);
  agent.load(model_path);
  std::cout << "policy saved to and reloaded from " << model_path << "\n";

  // The application to keep placing, and a cluster that degrades over time.
  const TaskGraph app = generate_task_graph(gp, rng);
  DeviceNetwork cluster = train.networks[0];
  std::cout << "\nevent                         devices   SLR(GiPH)  SLR(HEFT)\n";
  std::mt19937_64 eval_rng(55);
  auto report = [&](const std::string& event) {
    const double denom = slr_denominator(app, cluster, lat);
    PlacementSearchEnv env(app, cluster, lat, makespan_objective(lat),
                           random_placement(app, cluster, eval_rng), denom);
    const SearchTrace t = run_search(agent, env, 2 * app.num_tasks(), eval_rng);
    const HeftResult h = heft_schedule(app, cluster, lat);
    std::cout << "  " << event << "\t" << cluster.num_devices() << "\t"
              << t.best_so_far.back() << "\t"
              << makespan(app, cluster, h.placement, lat) / denom << "\n";
  };

  report("initial cluster          ");
  cluster.remove_device(3);
  cluster.remove_device(6);
  report("two devices left         ");
  // A weak replacement joins: slow device, poor links.
  const int weak = cluster.add_device(Device{.speed = cluster.mean_speed() * 0.3,
                                             .name = "weak-replacement"});
  for (int k = 0; k < cluster.num_devices(); ++k) {
    if (k != weak) cluster.set_symmetric_link(k, weak, cluster.mean_bandwidth() * 0.4, 2.0);
  }
  report("weak replacement joined  ");
  for (int k = 0; k < cluster.num_devices(); ++k) cluster.device(k).speed *= 0.7;
  report("battery-saver slowdown   ");

  std::cout << "\nThe same policy handled 4 different clusters without retraining.\n";
  std::remove(model_path.c_str());
  return 0;
}
