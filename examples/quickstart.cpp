// Quickstart: train a GiPH placement policy on small synthetic problems and
// compare the placements it finds against random sampling and HEFT.
//
// Usage: quickstart [episodes]

#include <cstdlib>
#include <iostream>

#include "baselines/random_policies.hpp"
#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"
#include "heft/heft.hpp"

using namespace giph;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 80;

  // 1. Generate a dataset: random task graphs and device networks.
  std::mt19937_64 rng(42);
  TaskGraphParams gp;
  gp.num_tasks = 12;
  NetworkParams np;
  np.num_devices = 6;
  Dataset train = generate_dataset({gp}, {np}, /*graphs=*/20, /*networks=*/4, rng);
  Dataset test = generate_dataset({gp}, {np}, /*graphs=*/10, /*networks=*/2, rng);

  const DefaultLatencyModel lat;

  // 2. Train GiPH with REINFORCE.
  GiPHOptions options;
  options.seed = 7;
  GiPHAgent agent(options);

  InstanceSampler sampler = [&train](std::mt19937_64& r) {
    std::uniform_int_distribution<std::size_t> gi(0, train.graphs.size() - 1);
    std::uniform_int_distribution<std::size_t> ni(0, train.networks.size() - 1);
    return ProblemInstance{&train.graphs[gi(r)], &train.networks[ni(r)]};
  };
  TrainOptions topt;
  topt.episodes = episodes;
  // Tuned training settings (see DESIGN.md "Training configuration").
  topt.lr = 0.003;
  topt.gamma = 0.1;
  topt.discount_state_weight = false;
  std::cout << "training GiPH for " << episodes << " episodes...\n";
  const TrainStats stats = train_reinforce(agent, lat, sampler, topt);
  std::cout << "  first-10-episode mean best SLR: ";
  double early = 0.0, late = 0.0;
  const int k = std::min<std::size_t>(10, stats.episode_best.size());
  for (int i = 0; i < k; ++i) {
    early += stats.episode_best[i];
    late += stats.episode_best[stats.episode_best.size() - 1 - i];
  }
  std::cout << early / k << "  last-10: " << late / k << "\n";

  // 3. Evaluate on unseen problems against the baselines.
  RandomSamplingPolicy random_policy;
  double giph_slr = 0.0, rand_slr = 0.0, heft_slr = 0.0, init_slr = 0.0;
  int cases = 0;
  std::mt19937_64 eval_rng(123);
  for (const TaskGraph& g : test.graphs) {
    for (const DeviceNetwork& n : test.networks) {
      const double denom = slr_denominator(g, n, lat);
      const Placement init = random_placement(g, n, eval_rng);
      const int steps = 2 * g.num_tasks();

      PlacementSearchEnv env_giph(g, n, lat, makespan_objective(lat), init, denom);
      giph_slr += run_search(agent, env_giph, steps, eval_rng).best_so_far.back();

      PlacementSearchEnv env_rand(g, n, lat, makespan_objective(lat), init, denom);
      rand_slr += run_search(random_policy, env_rand, steps, eval_rng).best_so_far.back();

      heft_slr += makespan(g, n, heft_schedule(g, n, lat).placement, lat) / denom;
      init_slr += env_giph.objective() >= 0 ? makespan(g, n, init, lat) / denom : 0.0;
      ++cases;
    }
  }
  std::cout << "test cases: " << cases << "\n"
            << "  initial placement SLR: " << init_slr / cases << "\n"
            << "  GiPH   best SLR      : " << giph_slr / cases << "\n"
            << "  Random best SLR      : " << rand_slr / cases << "\n"
            << "  HEFT   SLR           : " << heft_slr / cases << "\n";
  return 0;
}
