// Deep-learning graph placement (Section 5.2): generate an ENAS-style
// recurrent computation graph, coarsen it to operator groups, and place the
// groups on a simulated 8-device cluster with GiPH, comparing against HEFT
// and random placement.
//
// Usage: dl_placement [episodes] [group_target]

#include <cstdlib>
#include <iostream>

#include "core/giph_agent.hpp"
#include "core/reinforce.hpp"
#include "gen/dataset.hpp"
#include "gen/enas_gen.hpp"
#include "gen/grouping.hpp"
#include "heft/heft.hpp"

using namespace giph;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 120;
  const int group_target = argc > 2 ? std::atoi(argv[2]) : 24;

  std::mt19937_64 rng(7);
  EnasParams ep;
  const TaskGraph full = generate_enas_graph(ep, rng);
  const GroupedGraph grouped = group_operators(full, group_target);
  std::cout << "generated DL graph: " << full.num_tasks() << " operators, depth "
            << full.depth() << "\n"
            << "grouped to " << grouped.graph.num_tasks() << " groups, depth "
            << grouped.graph.depth() << "\n";

  NetworkParams np;
  np.num_devices = 8;
  DeviceNetwork cluster = generate_device_network(np, rng);

  // A small training set of similar DL graphs (fresh cell designs).
  Dataset train;
  for (int i = 0; i < 10; ++i) {
    train.graphs.push_back(group_operators(generate_enas_graph(ep, rng), group_target).graph);
  }
  train.networks.push_back(cluster);

  const DefaultLatencyModel lat;
  GiPHOptions options;
  options.seed = 5;
  GiPHAgent agent(options);
  TrainOptions topt;
  topt.episodes = episodes;
  topt.lr = 0.003;
  topt.gamma = 0.1;
  topt.discount_state_weight = false;
  std::cout << "training GiPH on " << train.graphs.size() << " DL graphs for "
            << episodes << " episodes...\n";
  train_reinforce(agent, lat,
                  [&train](std::mt19937_64& r) {
                    std::uniform_int_distribution<std::size_t> gi(0, train.graphs.size() - 1);
                    return ProblemInstance{&train.graphs[gi(r)], &train.networks[0]};
                  },
                  topt);

  // Place the held-out grouped graph.
  const TaskGraph& g = grouped.graph;
  const double denom = slr_denominator(g, cluster, lat);
  std::mt19937_64 eval_rng(99);
  const Placement init = random_placement(g, cluster, eval_rng);
  PlacementSearchEnv env(g, cluster, lat, makespan_objective(lat), init, denom);
  const SearchTrace trace = run_search(agent, env, 2 * g.num_tasks(), eval_rng);

  const HeftResult heft = heft_schedule(g, cluster, lat);
  std::cout << "\nresults (SLR = makespan / lower bound):\n"
            << "  random initial placement: " << makespan(g, cluster, init, lat) / denom
            << "\n  GiPH after " << 2 * g.num_tasks()
            << " search steps: " << trace.best_so_far.back() << "\n  HEFT: "
            << makespan(g, cluster, heft.placement, lat) / denom << "\n";

  std::cout << "\nGiPH's placement (group -> device):\n";
  for (int v = 0; v < g.num_tasks(); ++v) {
    std::cout << "  group " << v << " (work " << g.task(v).compute << ") -> "
              << cluster.device(trace.best_placement.device_of(v)).name << "\n";
  }
  return 0;
}
