// Microbenchmark of the single-simulation evaluation core (not a paper
// figure). Three measurements on one 50-task / 20-device instance:
//
//  1. sims/sec  - simulate() (allocating) vs simulate_into() with a reused
//                 SimWorkspace, plus simulate_delta() over chained random
//                 one-task moves (the incremental search hot path, with its
//                 replay hit rate and a bitwise spot check);
//  2. steps/sec - search steps through the refactored environment (one
//                 incremental re-simulation per step, batched est_sweep) vs a
//                 pre-refactor cost emulation (legacy (g,n,p) makespan
//                 objective that re-simulates inside the objective, plus
//                 unindexed O(V)-scan EST queries). Measured for two
//                 policies: Random-task-eft (D est queries per step) and a
//                 sweep policy that performs the full per-(task, device) est
//                 sweep gpNet feature construction performs, with the NN
//                 forward excluded — the NN is untouched by the refactor and
//                 would only dilute the measurement;
//  3. parallel  - eval::policy_finals over a batch of cases, serial vs all
//                 hardware threads, with a bitwise-equality check.
//
// Results go to BENCH_eval.json in the working directory. The refactor's
// acceptance bar is steps/sec speedup >= 2x.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "heft/heft.hpp"
#include "util/parallel_for.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pre-refactor cost model of Random-task-eft: identical decisions, but EFT
/// device selection pays the unindexed O(V) est scan per candidate device.
class UnindexedRandomTaskEft final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng, bool) override {
    std::uniform_int_distribution<int> pick(0, env.graph().num_tasks() - 1);
    const int task = pick(rng);
    const int device = eft_select_device(env.graph(), env.network(), env.placement(),
                                         env.latency(), env.schedule(), task);
    return ActionDecision{SearchAction{task, device}, nullptr, std::nullopt};
  }
  std::string name() const override { return "Random-task-eft(unindexed)"; }
};

/// The evaluation-core work of a GiPH search step with the NN excluded: per
/// step, compute est(v, d) for every feasible (task, device) pair — the
/// start-time-potential sweep gpNet feature construction performs — and move
/// the pair minimizing est + compute time. `batched` selects the refactored
/// (est_sweep, one batched pass per step) or pre-refactor (per-pair O(V)
/// scan) est path.
class GreedySweepPolicy final : public SearchPolicy {
 public:
  explicit GreedySweepPolicy(bool batched) : batched_(batched) {}

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64&, bool) override {
    const TaskGraph& g = env.graph();
    const DeviceNetwork& n = env.network();
    const Placement& p = env.placement();
    const LatencyModel& lat = env.latency();
    const Schedule& sched = env.schedule();
    const int nd = n.num_devices();
    const double* compute_tbl = nullptr;
    if (batched_) {
      est_sweep(sched, g, n, p, lat, sweep_);
      compute_tbl = compute_sweep(g, n, lat, sweep_).data();
    }
    SearchAction best{0, p.device_of(0)};
    double best_eft = std::numeric_limits<double>::infinity();
    for (int v = 0; v < g.num_tasks(); ++v) {
      const std::size_t off = static_cast<std::size_t>(v) * nd;
      const double* est_row = batched_ ? sweep_.est.data() + off : nullptr;
      for (const int d : env.feasible()[v]) {
        const double est = batched_ ? est_row[d]
                                    : earliest_start_on_queued(sched, g, n, p,
                                                               lat, v, d);
        const double eft =
            est + (batched_ ? compute_tbl[off + d] : lat.compute_time(g, n, v, d));
        if (d != p.device_of(v) && eft < best_eft) {
          best_eft = eft;
          best = SearchAction{v, d};
        }
      }
    }
    return ActionDecision{best, nullptr, std::nullopt};
  }
  std::string name() const override { return batched_ ? "sweep" : "sweep(unindexed)"; }

 private:
  bool batched_;
  EstSweepWorkspace sweep_;
};

/// Total search steps/sec of `policy` on fresh environments built with
/// `objective`, `rounds` searches of 2|V| steps each. When `delta_hits` /
/// `delta_total` are non-null they accumulate the environments' incremental
/// re-simulation counters (replayed applies / all applies).
///
/// The rounds are split into a few equal repetitions and the fastest one is
/// reported: scheduler preemptions and frequency dips are strictly additive
/// noise, so the minimum-time repetition is the stable estimate of what the
/// code actually costs (same convention as timeit's min-of-repeats).
template <typename MakeEnv>
double measure_steps_per_sec(SearchPolicy& policy, const TaskGraph& g,
                             const MakeEnv& make_env, int rounds,
                             std::uint64_t* delta_hits = nullptr,
                             std::uint64_t* delta_total = nullptr) {
  const int steps = 2 * g.num_tasks();
  // Warmup round: touch caches, size workspaces.
  {
    std::mt19937_64 rng(99);
    PlacementSearchEnv env = make_env(rng);
    run_search(policy, env, steps, rng);
  }
  const int reps = std::min(40, rounds);
  const int per_rep = rounds / reps;
  double best = 0.0;
  int r = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    for (int k = 0; k < per_rep; ++k, ++r) {
      std::mt19937_64 rng(100 + r);
      PlacementSearchEnv env = make_env(rng);
      run_search(policy, env, steps, rng);
      if (delta_hits != nullptr) *delta_hits += env.delta_simulations_run();
      if (delta_total != nullptr) {
        *delta_total += env.delta_simulations_run() + env.delta_fallbacks();
      }
    }
    best = std::max(best, static_cast<double>(per_rep) * steps / seconds_since(t0));
  }
  return best;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Evaluation-core microbenchmark (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 gen_rng(4242);
  TaskGraphParams gp;
  gp.num_tasks = 50;
  NetworkParams np;
  np.num_devices = 20;
  const Dataset single = generate_dataset({gp}, {np}, 1, 1, gen_rng);
  const TaskGraph& g = single.graphs.front();
  const DeviceNetwork& n = single.networks.front();
  const double denom = slr_denominator(g, n, lat);

  // ---- 1. raw simulator throughput ---------------------------------------
  const int sim_reps = scale.full ? 40000 : 8000;
  std::mt19937_64 prng(7);
  const Placement p = random_placement(g, n, prng);
  double guard = 0.0;  // keep the loops observable

  // Fastest of a few equal repetitions (noise is additive; see
  // measure_steps_per_sec).
  const auto best_of = [](int total, auto&& body) {
    const int reps = 5;
    const int per = total / reps;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      body(per);
      best = std::max(best, per / seconds_since(start));
    }
    return best;
  };

  for (int i = 0; i < 200; ++i) guard += simulate(g, n, p, lat).makespan;  // warmup
  const double alloc_sps = best_of(sim_reps, [&](int per) {
    for (int i = 0; i < per; ++i) guard += simulate(g, n, p, lat).makespan;
  });

  SimWorkspace ws;
  Schedule out;
  for (int i = 0; i < 200; ++i) simulate_into(g, n, p, lat, ws, out);
  const double ws_sps = best_of(sim_reps, [&](int per) {
    for (int i = 0; i < per; ++i) {
      simulate_into(g, n, p, lat, ws, out);
      guard += out.makespan;
    }
  });

  // Incremental path: chained random one-task moves, each re-simulated with
  // simulate_delta against the previous schedule (the search hot path of
  // PlacementSearchEnv::apply). A spot check every 64 moves keeps the run
  // honest about bitwise equality with the full path.
  const auto run_delta_moves = [&](Placement& pd, Schedule& prev, Schedule& next,
                                   DeltaSimState& dstate, std::mt19937_64& mrng,
                                   int reps, std::uint64_t* hits, bool* bitwise) {
    const std::vector<std::vector<int>> feas = feasible_sets(g, n);
    SimWorkspace check_ws;
    Schedule check;
    for (int i = 0; i < reps; ++i) {
      const int v = static_cast<int>(mrng() % g.num_tasks());
      const int d = feas[v][mrng() % feas[v].size()];
      pd.set(v, d);
      if (simulate_delta(g, n, pd, v, lat, ws, prev, dstate, next) ==
              DeltaSimResult::kReplayed &&
          hits != nullptr) {
        ++*hits;
      }
      guard += next.makespan;
      if (bitwise != nullptr && i % 64 == 0) {
        simulate_into(g, n, pd, lat, check_ws, check, {});
        for (std::size_t t = 0; t < check.tasks.size(); ++t) {
          *bitwise = *bitwise && next.tasks[t].start == check.tasks[t].start &&
                     next.tasks[t].finish == check.tasks[t].finish;
        }
      }
      std::swap(prev, next);
    }
  };
  Placement pd = p;
  Schedule prev, next;
  DeltaSimState dstate;
  std::mt19937_64 mrng(11);
  simulate_into(g, n, pd, lat, ws, prev, {}, &dstate);
  run_delta_moves(pd, prev, next, dstate, mrng, 200, nullptr, nullptr);  // warmup
  std::uint64_t delta_hits = 0;
  bool delta_bitwise = true;
  const double delta_sps = best_of(sim_reps, [&](int per) {
    run_delta_moves(pd, prev, next, dstate, mrng, per, &delta_hits, &delta_bitwise);
  });
  const double delta_hit_rate =
      static_cast<double>(delta_hits) / (5 * (sim_reps / 5));

  print_header("simulator throughput (50 tasks, 20 devices)");
  std::printf("%-32s %14.0f sims/sec\n", "simulate (allocating)", alloc_sps);
  std::printf("%-32s %14.0f sims/sec\n", "simulate_into (workspace)", ws_sps);
  std::printf("%-32s %13.2fx\n", "workspace speedup", ws_sps / alloc_sps);
  std::printf("%-32s %14.0f moves/sec\n", "simulate_delta (incremental)", delta_sps);
  std::printf("%-32s %13.2fx\n", "delta speedup vs simulate_into", delta_sps / ws_sps);
  std::printf("%-32s %14.3f\n", "delta hit rate", delta_hit_rate);
  std::printf("%-32s %14s\n", "delta bitwise identical", delta_bitwise ? "yes" : "NO");

  // ---- 2. search steps/sec: refactored vs pre-refactor emulation ---------
  const int rounds = scale.full ? 200 : 40;
  const Objective legacy_makespan = [&lat](const TaskGraph& gg, const DeviceNetwork& nn,
                                           const Placement& pp) {
    return makespan(gg, nn, pp, lat);  // re-simulates: the pre-refactor cost
  };
  const auto make_new_env = [&](std::mt19937_64& rng) {
    return PlacementSearchEnv(g, n, lat, makespan_objective(lat),
                              random_placement(g, n, rng), denom);
  };
  const auto make_legacy_env = [&](std::mt19937_64& rng) {
    return PlacementSearchEnv(g, n, lat, legacy_makespan,
                              random_placement(g, n, rng), denom);
  };
  RandomTaskEftPolicy eft_policy;
  UnindexedRandomTaskEft legacy_eft_policy;
  const double eft_steps = measure_steps_per_sec(eft_policy, g, make_new_env, rounds);
  const double legacy_eft_steps =
      measure_steps_per_sec(legacy_eft_policy, g, make_legacy_env, rounds);

  GreedySweepPolicy sweep_policy(/*batched=*/true);
  GreedySweepPolicy legacy_sweep_policy(/*batched=*/false);
  std::uint64_t env_delta_hits = 0, env_delta_total = 0;
  const double sweep_steps = measure_steps_per_sec(sweep_policy, g, make_new_env,
                                                   rounds, &env_delta_hits,
                                                   &env_delta_total);
  const double legacy_sweep_steps =
      measure_steps_per_sec(legacy_sweep_policy, g, make_legacy_env, rounds);
  const double step_speedup = sweep_steps / legacy_sweep_steps;
  const double eft_speedup = eft_steps / legacy_eft_steps;
  const double env_hit_rate =
      env_delta_total > 0
          ? static_cast<double>(env_delta_hits) / static_cast<double>(env_delta_total)
          : 0.0;

  print_header("search steps/sec (2|V| steps per search)");
  std::printf("%-34s %12.0f steps/sec\n", "Random-task-eft, pre-refactor", legacy_eft_steps);
  std::printf("%-34s %12.0f steps/sec\n", "Random-task-eft, single-sim+index", eft_steps);
  std::printf("%-34s %11.2fx\n", "  speedup", eft_speedup);
  std::printf("%-34s %12.0f steps/sec\n", "feature sweep, pre-refactor", legacy_sweep_steps);
  std::printf("%-34s %12.0f steps/sec\n", "feature sweep, delta+batched-est", sweep_steps);
  std::printf("%-34s %11.2fx %s\n", "  speedup", step_speedup,
              step_speedup >= 2.0 ? "(>= 2x target met)" : "(BELOW 2x target)");
  std::printf("%-34s %12.3f (env applies taking the delta path)\n",
              "  delta hit rate", env_hit_rate);

  // ---- 3. parallel evaluation layer --------------------------------------
  const Dataset batch = generate_dataset({gp}, {np}, scale.full ? 24 : 12, 2, gen_rng);
  const std::vector<Case> cases = make_cases(batch, scale.full ? 32 : 16);
  const eval::PolicyFactory factory = [] {
    return std::make_unique<RandomTaskEftPolicy>();
  };
  // Warmup: size every worker's buffers and fault in the case data before
  // either timed run (first-touch costs otherwise land on the serial leg).
  eval::policy_finals(factory, cases, lat, 0.0, 555, /*threads=*/1);
  eval::policy_finals(factory, cases, lat, 0.0, 555, /*threads=*/0);
  auto t0 = Clock::now();
  const std::vector<double> serial = eval::policy_finals(factory, cases, lat, 0.0, 555,
                                                         /*threads=*/1);
  const double serial_sec = seconds_since(t0);
  t0 = Clock::now();
  const std::vector<double> parallel = eval::policy_finals(factory, cases, lat, 0.0, 555,
                                                           /*threads=*/0);
  const double parallel_sec = seconds_since(t0);
  bool bitwise = serial.size() == parallel.size();
  for (std::size_t i = 0; bitwise && i < serial.size(); ++i) {
    bitwise = serial[i] == parallel[i];
  }
  const int threads = util::resolve_threads(0);

  print_header("parallel policy_finals");
  std::printf("%-32s %14.3f s\n", "serial (1 thread)", serial_sec);
  char label[64];
  std::snprintf(label, sizeof(label), "parallel (%d threads)", threads);
  std::printf("%-32s %14.3f s\n", label, parallel_sec);
  std::printf("%-32s %13.2fx\n", "speedup", serial_sec / parallel_sec);
  std::printf("%-32s %14s\n", "bitwise identical", bitwise ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_eval.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d},\n"
                 "  \"simulate_sims_per_sec\": %.1f,\n"
                 "  \"simulate_into_sims_per_sec\": %.1f,\n"
                 "  \"workspace_speedup\": %.3f,\n"
                 "  \"delta_steps_per_sec\": %.1f,\n"
                 "  \"delta_hit_rate\": %.4f,\n"
                 "  \"delta_bitwise_identical\": %s,\n"
                 "  \"env_delta_hit_rate\": %.4f,\n"
                 "  \"eft_legacy_steps_per_sec\": %.1f,\n"
                 "  \"eft_steps_per_sec\": %.1f,\n"
                 "  \"eft_steps_speedup\": %.3f,\n"
                 "  \"legacy_steps_per_sec\": %.1f,\n"
                 "  \"steps_per_sec\": %.1f,\n"
                 "  \"steps_speedup\": %.3f,\n"
                 "  \"parallel_finals\": {\n"
                 "    \"cases\": %d,\n"
                 "    \"threads\": %d,\n"
                 "    \"serial_sec\": %.4f,\n"
                 "    \"parallel_sec\": %.4f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"bitwise_identical\": %s\n"
                 "  }\n"
                 "}\n",
                 g.num_tasks(), n.num_devices(), alloc_sps, ws_sps, ws_sps / alloc_sps,
                 delta_sps, delta_hit_rate, delta_bitwise ? "true" : "false",
                 env_hit_rate, legacy_eft_steps, eft_steps, eft_speedup,
                 legacy_sweep_steps, sweep_steps, step_speedup,
                 static_cast<int>(cases.size()), threads, serial_sec, parallel_sec,
                 serial_sec / parallel_sec, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_eval.json\n");
  }
  if (!std::isfinite(guard)) std::printf("guard %f\n", guard);
  return bitwise && delta_bitwise && step_speedup >= 2.0 ? 0 : 1;
}
