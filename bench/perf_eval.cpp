// Microbenchmark of the single-simulation evaluation core (not a paper
// figure). Three measurements on one 50-task / 20-device instance:
//
//  1. sims/sec  - simulate() (allocating) vs simulate_into() with a reused
//                 SimWorkspace;
//  2. steps/sec - search steps through the refactored environment (one
//                 simulation per step, indexed EST queries) vs a pre-refactor
//                 cost emulation (legacy (g,n,p) makespan objective that
//                 re-simulates inside the objective, plus unindexed O(V)-scan
//                 EST queries). Measured for two policies: Random-task-eft
//                 (D est queries per step) and a sweep policy that performs
//                 the full per-(task, device) est sweep gpNet feature
//                 construction performs, with the NN forward excluded — the
//                 NN is untouched by the refactor and would only dilute the
//                 measurement (it costs ~100x the evaluation core per step);
//  3. parallel  - eval::policy_finals over a batch of cases, serial vs all
//                 hardware threads, with a bitwise-equality check.
//
// Results go to BENCH_eval.json in the working directory. The refactor's
// acceptance bar is steps/sec speedup >= 2x.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "heft/heft.hpp"
#include "util/parallel_for.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pre-refactor cost model of Random-task-eft: identical decisions, but EFT
/// device selection pays the unindexed O(V) est scan per candidate device.
class UnindexedRandomTaskEft final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng, bool) override {
    std::uniform_int_distribution<int> pick(0, env.graph().num_tasks() - 1);
    const int task = pick(rng);
    const int device = eft_select_device(env.graph(), env.network(), env.placement(),
                                         env.latency(), env.schedule(), task);
    return ActionDecision{SearchAction{task, device}, nullptr, std::nullopt};
  }
  std::string name() const override { return "Random-task-eft(unindexed)"; }
};

/// The evaluation-core work of a GiPH search step with the NN excluded: per
/// step, compute est(v, d) for every feasible (task, device) pair — the
/// start-time-potential sweep gpNet feature construction performs — and move
/// the pair minimizing est + compute time. `indexed` selects the refactored
/// (ScheduleIndex) or pre-refactor (O(V) scan) est path.
class GreedySweepPolicy final : public SearchPolicy {
 public:
  explicit GreedySweepPolicy(bool indexed) : indexed_(indexed) {}

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64&, bool) override {
    const TaskGraph& g = env.graph();
    const DeviceNetwork& n = env.network();
    const Placement& p = env.placement();
    const LatencyModel& lat = env.latency();
    const Schedule& sched = env.schedule();
    SearchAction best{0, p.device_of(0)};
    double best_eft = std::numeric_limits<double>::infinity();
    for (int v = 0; v < g.num_tasks(); ++v) {
      for (const int d : env.feasible()[v]) {
        const double est =
            indexed_ ? earliest_start_on_queued(sched, g, n, p, lat,
                                                env.schedule_index(), v, d)
                     : earliest_start_on_queued(sched, g, n, p, lat, v, d);
        const double eft = est + lat.compute_time(g, n, v, d);
        if (d != p.device_of(v) && eft < best_eft) {
          best_eft = eft;
          best = SearchAction{v, d};
        }
      }
    }
    return ActionDecision{best, nullptr, std::nullopt};
  }
  std::string name() const override { return indexed_ ? "sweep" : "sweep(unindexed)"; }

 private:
  bool indexed_;
};

/// Total search steps/sec of `policy` on fresh environments built with
/// `objective`, `rounds` searches of 2|V| steps each.
template <typename MakeEnv>
double measure_steps_per_sec(SearchPolicy& policy, const TaskGraph& g,
                             const MakeEnv& make_env, int rounds) {
  const int steps = 2 * g.num_tasks();
  // Warmup round: touch caches, size workspaces.
  {
    std::mt19937_64 rng(99);
    PlacementSearchEnv env = make_env(rng);
    run_search(policy, env, steps, rng);
  }
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    std::mt19937_64 rng(100 + r);
    PlacementSearchEnv env = make_env(rng);
    run_search(policy, env, steps, rng);
  }
  return static_cast<double>(rounds) * steps / seconds_since(t0);
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Evaluation-core microbenchmark (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 gen_rng(4242);
  TaskGraphParams gp;
  gp.num_tasks = 50;
  NetworkParams np;
  np.num_devices = 20;
  const Dataset single = generate_dataset({gp}, {np}, 1, 1, gen_rng);
  const TaskGraph& g = single.graphs.front();
  const DeviceNetwork& n = single.networks.front();
  const double denom = slr_denominator(g, n, lat);

  // ---- 1. raw simulator throughput ---------------------------------------
  const int sim_reps = scale.full ? 40000 : 8000;
  std::mt19937_64 prng(7);
  const Placement p = random_placement(g, n, prng);
  double guard = 0.0;  // keep the loops observable

  for (int i = 0; i < 200; ++i) guard += simulate(g, n, p, lat).makespan;  // warmup
  auto t0 = Clock::now();
  for (int i = 0; i < sim_reps; ++i) guard += simulate(g, n, p, lat).makespan;
  const double alloc_sps = sim_reps / seconds_since(t0);

  SimWorkspace ws;
  Schedule out;
  for (int i = 0; i < 200; ++i) simulate_into(g, n, p, lat, ws, out);
  t0 = Clock::now();
  for (int i = 0; i < sim_reps; ++i) {
    simulate_into(g, n, p, lat, ws, out);
    guard += out.makespan;
  }
  const double ws_sps = sim_reps / seconds_since(t0);

  print_header("simulator throughput (50 tasks, 20 devices)");
  std::printf("%-32s %14.0f sims/sec\n", "simulate (allocating)", alloc_sps);
  std::printf("%-32s %14.0f sims/sec\n", "simulate_into (workspace)", ws_sps);
  std::printf("%-32s %13.2fx\n", "workspace speedup", ws_sps / alloc_sps);

  // ---- 2. search steps/sec: refactored vs pre-refactor emulation ---------
  const int rounds = scale.full ? 200 : 40;
  const Objective legacy_makespan = [&lat](const TaskGraph& gg, const DeviceNetwork& nn,
                                           const Placement& pp) {
    return makespan(gg, nn, pp, lat);  // re-simulates: the pre-refactor cost
  };
  const auto make_new_env = [&](std::mt19937_64& rng) {
    return PlacementSearchEnv(g, n, lat, makespan_objective(lat),
                              random_placement(g, n, rng), denom);
  };
  const auto make_legacy_env = [&](std::mt19937_64& rng) {
    return PlacementSearchEnv(g, n, lat, legacy_makespan,
                              random_placement(g, n, rng), denom);
  };
  RandomTaskEftPolicy eft_policy;
  UnindexedRandomTaskEft legacy_eft_policy;
  const double eft_steps = measure_steps_per_sec(eft_policy, g, make_new_env, rounds);
  const double legacy_eft_steps =
      measure_steps_per_sec(legacy_eft_policy, g, make_legacy_env, rounds);

  GreedySweepPolicy sweep_policy(/*indexed=*/true);
  GreedySweepPolicy legacy_sweep_policy(/*indexed=*/false);
  const double sweep_steps = measure_steps_per_sec(sweep_policy, g, make_new_env, rounds);
  const double legacy_sweep_steps =
      measure_steps_per_sec(legacy_sweep_policy, g, make_legacy_env, rounds);
  const double step_speedup = sweep_steps / legacy_sweep_steps;
  const double eft_speedup = eft_steps / legacy_eft_steps;

  print_header("search steps/sec (2|V| steps per search)");
  std::printf("%-34s %12.0f steps/sec\n", "Random-task-eft, pre-refactor", legacy_eft_steps);
  std::printf("%-34s %12.0f steps/sec\n", "Random-task-eft, single-sim+index", eft_steps);
  std::printf("%-34s %11.2fx\n", "  speedup", eft_speedup);
  std::printf("%-34s %12.0f steps/sec\n", "feature sweep, pre-refactor", legacy_sweep_steps);
  std::printf("%-34s %12.0f steps/sec\n", "feature sweep, single-sim+index", sweep_steps);
  std::printf("%-34s %11.2fx %s\n", "  speedup", step_speedup,
              step_speedup >= 2.0 ? "(>= 2x target met)" : "(BELOW 2x target)");

  // ---- 3. parallel evaluation layer --------------------------------------
  const Dataset batch = generate_dataset({gp}, {np}, scale.full ? 24 : 12, 2, gen_rng);
  const std::vector<Case> cases = make_cases(batch, scale.full ? 32 : 16);
  const eval::PolicyFactory factory = [] {
    return std::make_unique<RandomTaskEftPolicy>();
  };
  t0 = Clock::now();
  const std::vector<double> serial = eval::policy_finals(factory, cases, lat, 0.0, 555,
                                                         /*threads=*/1);
  const double serial_sec = seconds_since(t0);
  t0 = Clock::now();
  const std::vector<double> parallel = eval::policy_finals(factory, cases, lat, 0.0, 555,
                                                           /*threads=*/0);
  const double parallel_sec = seconds_since(t0);
  bool bitwise = serial.size() == parallel.size();
  for (std::size_t i = 0; bitwise && i < serial.size(); ++i) {
    bitwise = serial[i] == parallel[i];
  }
  const int threads = util::resolve_threads(0);

  print_header("parallel policy_finals");
  std::printf("%-32s %14.3f s\n", "serial (1 thread)", serial_sec);
  char label[64];
  std::snprintf(label, sizeof(label), "parallel (%d threads)", threads);
  std::printf("%-32s %14.3f s\n", label, parallel_sec);
  std::printf("%-32s %13.2fx\n", "speedup", serial_sec / parallel_sec);
  std::printf("%-32s %14s\n", "bitwise identical", bitwise ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_eval.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d},\n"
                 "  \"simulate_sims_per_sec\": %.1f,\n"
                 "  \"simulate_into_sims_per_sec\": %.1f,\n"
                 "  \"workspace_speedup\": %.3f,\n"
                 "  \"eft_legacy_steps_per_sec\": %.1f,\n"
                 "  \"eft_steps_per_sec\": %.1f,\n"
                 "  \"eft_steps_speedup\": %.3f,\n"
                 "  \"legacy_steps_per_sec\": %.1f,\n"
                 "  \"steps_per_sec\": %.1f,\n"
                 "  \"steps_speedup\": %.3f,\n"
                 "  \"parallel_finals\": {\n"
                 "    \"cases\": %d,\n"
                 "    \"threads\": %d,\n"
                 "    \"serial_sec\": %.4f,\n"
                 "    \"parallel_sec\": %.4f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"bitwise_identical\": %s\n"
                 "  }\n"
                 "}\n",
                 g.num_tasks(), n.num_devices(), alloc_sps, ws_sps, ws_sps / alloc_sps,
                 legacy_eft_steps, eft_steps, eft_speedup,
                 legacy_sweep_steps, sweep_steps, step_speedup,
                 static_cast<int>(cases.size()), threads, serial_sec, parallel_sec,
                 serial_sec / parallel_sec, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_eval.json\n");
  }
  if (!std::isfinite(guard)) std::printf("guard %f\n", guard);
  return bitwise && step_speedup >= 2.0 ? 0 : 1;
}
