// Scale-tier benchmark (ROADMAP item 4): hierarchical placement on 1k-5k-task
// graphs over 100+ device sparse topologies. Quick mode (CI bench-smoke) runs
// 1000 tasks / 100 devices; GIPH_BENCH_SCALE=full (nightly) runs 5000 tasks /
// 150 devices. Measurements:
//
//  1. partitioner  - partition_tasks throughput plus in-run invariant checks
//                    (every task in exactly one cluster, coarse DAG, conserved
//                    compute/bytes totals);
//  2. sparse gpNet - build_gpnet_topk build rate at scale (dense would
//                    materialize |V| x |D| nodes and |E| x |D|^2 edges), and a
//                    bitwise dense-equality check at k >= D on a paper-scale
//                    instance;
//  3. subset EST   - est_sweep_subset vs the full est_sweep on one cluster
//                    (the refinement inner loop's query);
//  4. end-to-end   - HierarchicalPlacer::place with an untrained GiPHAgent
//                    (sparse gpNet on the coarse stage), reporting tasks/sec
//                    and the makespan ratio vs flat HEFT, with the
//                    never-worsen refinement contract checked in-run.
//
// Results go to BENCH_scale.json (gated in bench-smoke via check_bench.py;
// the noisy end-to-end key carries a per-key _max_regress override).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>

#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "core/gpnet.hpp"
#include "core/hierarchical.hpp"
#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"
#include "graph/topology.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Sparse topology: random spanning tree + 2m chords projected onto the full
/// link model (unreachable pairs get punitive links inside apply_topology).
DeviceNetwork make_sparse_network(int num_devices, std::mt19937_64& rng) {
  NetworkParams np;
  np.num_devices = num_devices;
  DeviceNetwork n = generate_device_network(np, rng);
  std::vector<PhysicalLink> links;
  std::uniform_real_distribution<double> bw(20.0, 80.0);
  std::uniform_real_distribution<double> dl(0.1, 2.0);
  for (int i = 1; i < num_devices; ++i) {
    const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(i));
    links.push_back({j, i, bw(rng), dl(rng), true});
  }
  for (int c = 0; c < 2 * num_devices; ++c) {
    const int a = static_cast<int>(rng() % num_devices);
    const int b = static_cast<int>(rng() % num_devices);
    if (a == b) continue;
    links.push_back({a, b, bw(rng), dl(rng), true});
  }
  apply_topology(n, links);
  return n;
}

bool check_partition_invariants(const TaskGraph& g, const GraphPartition& part) {
  const int nt = g.num_tasks();
  if (static_cast<int>(part.cluster_of.size()) != nt) return false;
  std::vector<int> seen(nt, 0);
  for (int c = 0; c < part.num_clusters(); ++c) {
    for (int v : part.members[c]) {
      if (part.cluster_of[v] != c) return false;
      ++seen[v];
    }
  }
  for (int v = 0; v < nt; ++v) {
    if (seen[v] != 1) return false;  // exactly one cluster each
  }
  if (!part.coarse.is_dag()) return false;
  const double compute_err =
      std::abs(part.coarse.total_compute() - g.total_compute());
  const double bytes_err =
      std::abs(part.coarse.total_bytes() + part.internal_bytes - g.total_bytes());
  return compute_err <= 1e-6 * (1.0 + g.total_compute()) &&
         bytes_err <= 1e-6 * (1.0 + g.total_bytes());
}

bool gpnets_identical(const GpNet& a, const GpNet& b) {
  return a.node_task == b.node_task && a.node_device == b.node_device &&
         a.is_pivot == b.is_pivot && a.options == b.options &&
         a.pivot_of_task == b.pivot_of_task && a.edge_task_edge == b.edge_task_edge &&
         a.view.edges == b.view.edges && a.view.topo == b.view.topo;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const int num_tasks = scale.full ? 5000 : 1000;
  const int num_devices = scale.full ? 150 : 100;
  const DefaultLatencyModel lat;
  std::printf("Scale-tier benchmark (%d tasks, %d devices, %s)\n", num_tasks,
              num_devices, scale.full ? "full" : "quick");
  bool ok = true;

  std::mt19937_64 rng(20260808);
  TaskGraphParams gp;
  gp.num_tasks = num_tasks;
  gp.alpha = 0.8;
  // Realistic dataflow graphs are sparse; the default p_connect adds an extra
  // edge per task PAIR across levels, which at 1000+ tasks yields a 100k+
  // edge near-clique nothing in the scale tier (or reality) resembles.
  gp.p_connect = 2.0 / num_tasks;
  const TaskGraph g = generate_task_graph(gp, rng);
  DeviceNetwork n = make_sparse_network(num_devices, rng);
  ensure_feasible(g, n, rng);

  // ---- 1. partitioner ------------------------------------------------------
  PartitionOptions popt;
  popt.num_clusters = std::max(8, num_tasks / 20);
  const GraphPartition part = partition_tasks(g, n, popt);
  const bool part_ok = check_partition_invariants(g, part);
  ok = ok && part_ok;
  const int part_reps = scale.full ? 10 : 20;
  double part_best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < part_reps; ++i) {
      const GraphPartition p2 = partition_tasks(g, n, popt);
      if (p2.cluster_of != part.cluster_of) ok = false;  // determinism
    }
    part_best = std::max(
        part_best, static_cast<double>(part_reps) * num_tasks / seconds_since(t0));
  }
  print_header("partitioner");
  std::printf("%-36s %12d\n", "clusters (target)", popt.num_clusters);
  std::printf("%-36s %12d\n", "clusters (actual)", part.num_clusters());
  std::printf("%-36s %12.0f tasks/sec\n", "partition_tasks throughput", part_best);
  std::printf("%-36s %12s\n", "invariants hold", part_ok ? "yes" : "NO");

  // ---- 2. sparse gpNet -----------------------------------------------------
  // Equality at paper scale with k >= D: sparse must be bitwise-identical.
  bool sparse_equal = false;
  {
    std::mt19937_64 eq_rng(17);
    TaskGraphParams sgp;
    sgp.num_tasks = 60;
    NetworkParams snp;
    snp.num_devices = 12;
    TaskGraph sg = generate_task_graph(sgp, eq_rng);
    DeviceNetwork sn = generate_device_network(snp, eq_rng);
    ensure_feasible(sg, sn, eq_rng);
    const Placement sp = random_placement(sg, sn, eq_rng);
    const auto feas = feasible_sets(sg, sn);
    const Schedule ssched = simulate(sg, sn, sp, lat);
    EstSweepWorkspace ws;
    est_sweep(ssched, sg, sn, sp, lat, ws);
    const GpNet dense = build_gpnet(sg, sn, sp, feas);
    const GpNet sparse = build_gpnet_topk(sg, sn, sp, feas, sn.num_devices(), ws.est);
    sparse_equal = gpnets_identical(dense, sparse);
    ok = ok && sparse_equal;
    std::printf("%-36s %12s\n", "sparse == dense at k >= D",
                sparse_equal ? "yes" : "NO");
  }
  // Build rate at scale with small k (dense is intractable here by design).
  const auto feasible = feasible_sets(g, n);
  const Placement p0 = heft_schedule(g, n, lat).placement;
  const Schedule sched0 = simulate(g, n, p0, lat);
  EstSweepWorkspace sweep;
  est_sweep(sched0, g, n, p0, lat, sweep);
  const int topk = 4;
  const int gp_reps = scale.full ? 3 : 10;
  double gpnet_best = 0.0;
  std::size_t sparse_nodes = 0, sparse_edges = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < gp_reps; ++i) {
      const GpNet net = build_gpnet_topk(g, n, p0, feasible, topk, sweep.est);
      sparse_nodes = static_cast<std::size_t>(net.num_nodes());
      sparse_edges = static_cast<std::size_t>(net.num_edges());
    }
    gpnet_best = std::max(gpnet_best, gp_reps / seconds_since(t0));
  }
  print_header("sparse gpNet (k = 4)");
  std::printf("%-36s %12zu nodes, %zu edges\n", "sparse size", sparse_nodes,
              sparse_edges);
  std::printf("%-36s %12zu nodes (not materialized)\n", "dense would be",
              static_cast<std::size_t>(num_tasks) * num_devices);
  std::printf("%-36s %12.2f builds/sec\n", "build_gpnet_topk", gpnet_best);

  // ---- 3. subset EST sweep -------------------------------------------------
  const std::vector<int>& probe = part.members[part.num_clusters() / 2];
  const int est_reps = scale.full ? 5 : 20;
  double full_sec = 0.0, subset_sec = 0.0;
  {
    EstSweepWorkspace w2;
    est_sweep(sched0, g, n, p0, lat, w2);  // warm the comm-row cache
    auto t0 = Clock::now();
    for (int i = 0; i < est_reps; ++i) est_sweep(sched0, g, n, p0, lat, w2);
    full_sec = seconds_since(t0) / est_reps;
    est_sweep_subset(sched0, g, n, p0, lat, probe, w2);
    t0 = Clock::now();
    for (int i = 0; i < est_reps; ++i) {
      est_sweep_subset(sched0, g, n, p0, lat, probe, w2);
    }
    subset_sec = seconds_since(t0) / est_reps;
  }
  print_header("subset EST sweep (one cluster)");
  std::printf("%-36s %12zu tasks\n", "cluster size", probe.size());
  std::printf("%-36s %12.2f ms\n", "full est_sweep", 1e3 * full_sec);
  std::printf("%-36s %12.2f ms\n", "est_sweep_subset", 1e3 * subset_sec);
  std::printf("%-36s %11.2fx\n", "speedup", full_sec / subset_sec);

  // ---- 4. end-to-end hierarchical placement --------------------------------
  GiPHOptions gopt;
  gopt.gpnet_topk = 8;
  GiPHAgent agent(gopt);
  HierarchicalOptions hopt;
  hopt.partition = popt;
  hopt.refine_rounds = scale.full ? 2 : 3;
  HierarchicalPlacer placer(g, n, lat, hopt);
  HierarchicalStats stats;
  std::mt19937_64 place_rng(5);
  const auto t0 = Clock::now();
  const Placement hier = placer.place(agent, place_rng, &stats);
  const double hier_sec = seconds_since(t0);
  const bool monotone = stats.refined_objective <= stats.expanded_objective;
  const bool hier_feasible = is_feasible(g, n, hier);
  ok = ok && monotone && hier_feasible;
  const double heft_slr = placer.objective_of(p0);
  const double vs_heft = stats.refined_objective / heft_slr;
  print_header("end-to-end hierarchical placement");
  std::printf("%-36s %12.3f s (%0.0f tasks/sec)\n", "partition+place+refine",
              hier_sec, num_tasks / hier_sec);
  std::printf("%-36s %12.4f SLR\n", "coarse (cluster graph)", stats.coarse_objective);
  std::printf("%-36s %12.4f SLR\n", "expanded", stats.expanded_objective);
  std::printf("%-36s %12.4f SLR\n", "refined", stats.refined_objective);
  std::printf("%-36s %12lld kept / %lld tried\n", "refinement moves",
              static_cast<long long>(stats.refine_moves_kept),
              static_cast<long long>(stats.refine_moves_tried));
  std::printf("%-36s %12.4f SLR\n", "flat HEFT", heft_slr);
  std::printf("%-36s %12.3f (< 1 beats HEFT)\n", "hier / HEFT", vs_heft);
  std::printf("%-36s %12s\n", "refinement monotone", monotone ? "yes" : "NO");
  std::printf("%-36s %12s\n", "placement feasible", hier_feasible ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d, \"clusters\": %d},\n"
                 "  \"partition_tasks_per_sec\": %.1f,\n"
                 "  \"partition_tasks_per_sec_max_regress\": 0.5,\n"
                 "  \"partition_invariants_ok\": %s,\n"
                 "  \"sparse_gpnet_builds_per_sec\": %.3f,\n"
                 "  \"sparse_gpnet_builds_per_sec_max_regress\": 0.5,\n"
                 "  \"sparse_gpnet_bitwise_identical\": %s,\n"
                 "  \"subset_est_speedup\": %.2f,\n"
                 "  \"hier_tasks_per_sec\": %.1f,\n"
                 "  \"hier_tasks_per_sec_max_regress\": 0.5,\n"
                 "  \"hier_refined_slr\": %.4f,\n"
                 "  \"hier_vs_heft_ratio\": %.4f,\n"
                 "  \"refine_monotone_bitwise_identical\": %s\n"
                 "}\n",
                 num_tasks, num_devices, part.num_clusters(), part_best,
                 part_ok ? "true" : "false", gpnet_best,
                 sparse_equal ? "true" : "false", full_sec / subset_sec,
                 num_tasks / hier_sec, stats.refined_objective, vs_heft,
                 monotone ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_scale.json\n");
  }
  return ok ? 0 : 1;
}
