// Reproduces Table 1 and the Appendix B.4 latency-model fit: the measured
// running times of the four sensor-fusion tasks on device types A/B/C are
// embedded as constants, and the affine model C_i * T_j + S_j is fit to them
// by alternating least squares.

#include <cstdio>

#include "casestudy/device_profiles.hpp"

using namespace giph::casestudy;

int main() {
  static const char* kTaskNames[] = {"CAMERA", "LIDAR", "CAV DATA FUSION",
                                     "RSU DATA FUSION"};
  static const char* kTypeNames[] = {"TYPE A", "TYPE B", "TYPE C"};

  std::printf("=== Table 1: measured running times (ms) ===\n");
  std::printf("%-18s%14s%14s%14s\n", "", kTypeNames[0], kTypeNames[1], kTypeNames[2]);
  for (int i = 0; i < kNumFusionTasks; ++i) {
    std::printf("%-18s", kTaskNames[i]);
    for (int j = 0; j < kNumDeviceTypes; ++j) {
      const Measurement m =
          measured_runtime(static_cast<FusionTask>(i), static_cast<DeviceType>(j));
      char cell[24];
      std::snprintf(cell, sizeof(cell), "%.0f+-%.0f", m.mean_ms, m.std_ms);
      std::printf("%14s", cell);
    }
    std::printf("\n");
  }

  const LatencyFit fit = fit_latency_model();
  std::printf("\n=== Appendix B.4 affine fit: mu_ij ~= C_i * T_j + S_j ===\n");
  std::printf("%-18s", "task compute C_i:");
  for (int i = 0; i < kNumFusionTasks; ++i) std::printf("%10.2f", fit.task_compute[i]);
  std::printf("\n%-18s", "type T_j:");
  for (int j = 0; j < kNumDeviceTypes; ++j) std::printf("%10.3f", fit.time_per_unit[j]);
  std::printf("\n%-18s", "type S_j (ms):");
  for (int j = 0; j < kNumDeviceTypes; ++j) std::printf("%10.2f", fit.startup[j]);
  std::printf("\nRMS residual: %.2f ms\n", fit.rms_residual_ms);

  std::printf("\npredicted (fitted) runtimes vs measured:\n");
  std::printf("%-18s%22s%22s%22s\n", "", kTypeNames[0], kTypeNames[1], kTypeNames[2]);
  for (int i = 0; i < kNumFusionTasks; ++i) {
    std::printf("%-18s", kTaskNames[i]);
    for (int j = 0; j < kNumDeviceTypes; ++j) {
      const double pred =
          fit.predict_ms(static_cast<FusionTask>(i), static_cast<DeviceType>(j));
      const double meas =
          measured_runtime(static_cast<FusionTask>(i), static_cast<DeviceType>(j)).mean_ms;
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.1f (meas %.0f)", pred, meas);
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }

  std::printf("\n=== Table 2: relocation overhead measurements ===\n");
  std::printf("%-18s%14s%14s%14s%14s\n", "", "migr (B)", "static (KB)", "startup A",
              "startup C");
  for (int i = 0; i < kNumFusionTasks; ++i) {
    const RelocationProfile p = relocation_profile(static_cast<FusionTask>(i));
    std::printf("%-18s%14.0f%14.3f%14.2f%14.2f\n", kTaskNames[i], p.migration_bytes,
                p.static_init_kb, p.startup_ms_type_a, p.startup_ms_type_c);
  }
  std::printf(
      "\nExpectation: Type C has the smallest T and S; the fit reproduces the\n"
      "ordering of every row of Table 1 (the affine model cannot be exact).\n");
  return 0;
}
