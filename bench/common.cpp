#include "bench/common.hpp"

#include <cstdio>
#include <cstdlib>

namespace giph::bench {

Scale Scale::from_env() {
  Scale s;
  const char* env = std::getenv("GIPH_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    s.full = true;
    s.train_episodes = 600;
    s.train_graphs = 150;
    s.train_networks = 10;
    s.test_cases = 150;
    s.eval_every = 10;
    s.eval_cases = 20;
  }
  return s;
}

TrainOptions train_options(const Scale& scale) {
  TrainOptions t;
  t.episodes = scale.train_episodes;
  t.lr = 0.003;
  t.gamma = 0.1;
  t.discount_state_weight = false;
  return t;
}

std::vector<Case> make_cases(const Dataset& ds, int max_cases) {
  std::vector<Case> cases;
  const int total = static_cast<int>(ds.graphs.size() * ds.networks.size());
  for (int i = 0; i < std::min(max_cases, total); ++i) {
    const int gi = i % static_cast<int>(ds.graphs.size());
    const int ni = (i / static_cast<int>(ds.graphs.size()) + i) %
                   static_cast<int>(ds.networks.size());
    cases.push_back(Case{&ds.graphs[gi], &ds.networks[ni]});
  }
  return cases;
}

InstanceSampler dataset_sampler(const Dataset& ds) {
  return [&ds](std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> gi(0, ds.graphs.size() - 1);
    std::uniform_int_distribution<std::size_t> ni(0, ds.networks.size() - 1);
    return ProblemInstance{&ds.graphs[gi(rng)], &ds.networks[ni(rng)]};
  };
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_curves(const std::string& title, const std::vector<Curve>& curves) {
  print_header(title);
  std::printf("%-12s", "step/2|V|");
  for (const Curve& c : curves) std::printf("%16s", c.name.c_str());
  std::printf("\n");
  const auto fractions = curve_fractions(static_cast<int>(curves[0].values.size()));
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    std::printf("%-12.2f", fractions[i]);
    for (const Curve& c : curves) std::printf("%16.4f", c.values[i]);
    std::printf("\n");
  }
  std::vector<eval::Series> series;
  for (const Curve& c : curves) {
    series.push_back(eval::Series{c.name, c.values, fractions});
  }
  eval::ChartOptions opts;
  opts.x_label = "fraction of 2|V| search steps";
  opts.y_label = "avg SLR";
  std::fputs(eval::ascii_chart(series, opts).c_str(), stdout);
}

}  // namespace giph::bench
