// Microbenchmark of the placement-serving daemon (not a paper figure):
// placements/sec and request latency through the full PlacementServer path
// (admission -> per-worker arena -> anytime policy search -> response) at 1,
// 4, and 8 workers, plus two robustness scenarios with exact, machine-
// independent expectations:
//
//   - determinism: the same request served twice must return bitwise-equal
//     placements and makespans (greedy decode, seeded search);
//   - overload: with a worker parked on an injected stall and the admission
//     queue at capacity Q, submitting 2Q further requests must shed exactly
//     2Q - (Q - 1) of them — the shed rate is a deterministic function of the
//     queue bound, not of machine speed.
//
// Results go to BENCH_serve.json. CI gates the single-worker throughput, the
// overload shed rate, and the determinism flag via tools/ci/check_bench.py;
// multi-worker throughput and latency percentiles are reported for
// information only (runner thread counts differ).

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "serve/serve_faults.hpp"
#include "serve/server.hpp"

using namespace giph;
using namespace giph::bench;
using namespace giph::serve;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<PlacementRequest> make_requests(int count, int tasks, int devices,
                                            int steps) {
  std::mt19937_64 rng(20260808);
  TaskGraphParams gp;
  gp.num_tasks = tasks;
  NetworkParams np;
  np.num_devices = devices;
  np.num_hw_kinds = gp.num_hw_kinds;
  // A small pool of distinct instances, cycled across requests: realistic
  // variety without regenerating per request.
  const int kPool = 8;
  std::vector<PlacementRequest> pool;
  for (int i = 0; i < kPool; ++i) {
    PlacementRequest req;
    req.graph = generate_task_graph(gp, rng);
    req.network = generate_device_network(np, rng);
    ensure_feasible(req.graph, req.network, rng);
    req.steps = steps;
    req.seed = 77 + static_cast<std::uint64_t>(i);
    pool.push_back(std::move(req));
  }
  std::vector<PlacementRequest> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    PlacementRequest req = pool[i % kPool];
    req.id = "req-" + std::to_string(i);
    out.push_back(std::move(req));
  }
  return out;
}

std::shared_ptr<PolicySnapshot> make_snapshot() {
  GiPHOptions o;
  o.seed = 33;
  auto snap = std::make_shared<PolicySnapshot>();
  snap->options = o;
  snap->agent = std::make_shared<GiPHAgent>(o);
  snap->source = "(in-memory)";
  return snap;
}

struct ThroughputResult {
  double placements_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

ThroughputResult run_throughput(SnapshotStore& store,
                                const std::vector<PlacementRequest>& requests,
                                int workers) {
  ServerOptions opt;
  opt.workers = workers;
  opt.queue_capacity = static_cast<int>(requests.size()) + 1;  // never shed here
  PlacementServer server(opt, store);

  std::mutex mu;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests.size());
  int failures = 0;

  const auto t0 = Clock::now();
  for (const PlacementRequest& req : requests) {
    const auto submitted = Clock::now();
    server.submit(req, [&, submitted](const PlacementResponse& resp) {
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - submitted).count();
      std::lock_guard<std::mutex> lock(mu);
      latencies_ms.push_back(ms);
      if (resp.status != ResponseStatus::kOk) ++failures;
    });
  }
  server.stop_and_drain();
  const double seconds = seconds_since(t0);

  if (failures != 0) {
    std::printf("unexpected non-ok responses in throughput run: %d\n", failures);
  }
  ThroughputResult r;
  r.placements_per_sec = static_cast<double>(requests.size()) / seconds;
  r.p50_ms = percentile(latencies_ms, 0.50);
  r.p99_ms = percentile(latencies_ms, 0.99);
  return r;
}

bool check_determinism(SnapshotStore& store, const PlacementRequest& req) {
  PlacementServer server(ServerOptions{}, store);
  const PlacementResponse a = server.handle(req);
  const PlacementResponse b = server.handle(req);
  return a.status == ResponseStatus::kOk && b.status == ResponseStatus::kOk &&
         a.placement.has_value() && b.placement.has_value() &&
         *a.placement == *b.placement && a.makespan == b.makespan &&
         a.steps == b.steps;
}

struct OverloadResult {
  int submitted = 0;
  int shed = 0;
  double shed_rate = 0.0;
  bool exact = false;  ///< shed count matched the closed-form expectation
};

OverloadResult run_overload(SnapshotStore& store,
                            const std::vector<PlacementRequest>& requests) {
  const int kCapacity = 8;
  FaultInjector faults;
  faults.hold_request("stall");
  ServerOptions opt;
  opt.workers = 2;  // one background worker to park on the stall
  opt.queue_capacity = kCapacity;
  PlacementServer server(opt, store, faults.hooks());

  std::mutex mu;
  int delivered = 0;
  const auto sink = [&](const PlacementResponse&) {
    std::lock_guard<std::mutex> lock(mu);
    ++delivered;
  };

  PlacementRequest stall = requests.front();
  stall.id = "stall";
  server.submit(std::move(stall), sink);
  faults.wait_for_awaiting(1);  // the worker is parked; the queue is empty

  // 2x overload: twice the queue capacity arrives while nothing drains.
  OverloadResult r;
  r.submitted = 2 * kCapacity;
  for (int i = 0; i < r.submitted; ++i) {
    PlacementRequest req = requests[static_cast<std::size_t>(i) % requests.size()];
    req.id = "ov-" + std::to_string(i);
    if (!server.submit(std::move(req), sink)) ++r.shed;
  }
  faults.release_all();
  server.stop_and_drain();

  r.shed_rate = static_cast<double>(r.shed) / r.submitted;
  // Closed form: one request in flight, so capacity admits kCapacity - 1 and
  // sheds the rest. Every submit (admitted or shed) delivers one response.
  r.exact = r.shed == r.submitted - (kCapacity - 1) &&
            delivered == r.submitted + 1 &&
            server.stats().shed == static_cast<std::uint64_t>(r.shed);
  return r;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("Placement-serving benchmark (scale: %s)\n", scale.full ? "full" : "quick");

  const int kRequests = scale.full ? 2000 : 400;
  const int kTasks = 16;
  const int kDevices = 6;
  const int kSteps = 16;
  const std::vector<PlacementRequest> requests =
      make_requests(kRequests, kTasks, kDevices, kSteps);

  SnapshotStore store;
  store.install(make_snapshot());

  // Warmup: pay first-touch allocations and lazy caches before the clock.
  run_throughput(store, make_requests(32, kTasks, kDevices, kSteps), 1);

  print_header("serving throughput (policy mode)");
  std::printf("%-28s %d requests, %d tasks, %d devices, %d steps each\n", "config",
              kRequests, kTasks, kDevices, kSteps);
  ThroughputResult results[3];
  const int worker_counts[3] = {1, 4, 8};
  for (int i = 0; i < 3; ++i) {
    results[i] = run_throughput(store, requests, worker_counts[i]);
    std::printf("%d worker(s): %10.1f placements/sec   p50 %7.3f ms   p99 %7.3f ms\n",
                worker_counts[i], results[i].placements_per_sec, results[i].p50_ms,
                results[i].p99_ms);
  }

  const bool bitwise = check_determinism(store, requests.front());
  std::printf("%-28s %s\n", "bitwise identical", bitwise ? "yes" : "NO");

  print_header("overload shedding (2x capacity behind a stalled worker)");
  const OverloadResult overload = run_overload(store, requests);
  std::printf("submitted %d, shed %d (rate %.4f), %s\n", overload.submitted,
              overload.shed, overload.shed_rate,
              overload.exact ? "exactly as predicted" : "UNEXPECTED COUNT");

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"case\": {\"requests\": %d, \"tasks\": %d, \"devices\": %d,"
        " \"steps\": %d},\n"
        "  \"hardware_threads\": %d,\n"
        "  \"serve_placements_per_sec\": %.1f,\n"
        "  \"workers4_throughput\": %.1f,\n"
        "  \"workers8_throughput\": %.1f,\n"
        "  \"p50_ms\": %.3f,\n"
        "  \"p99_ms\": %.3f,\n"
        "  \"overload_shed_rate\": %.4f,\n"
        "  \"bitwise_identical\": %s\n"
        "}\n",
        kRequests, kTasks, kDevices, kSteps,
        static_cast<int>(std::thread::hardware_concurrency()),
        results[0].placements_per_sec, results[1].placements_per_sec,
        results[2].placements_per_sec, results[0].p50_ms, results[0].p99_ms,
        overload.shed_rate, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
  }
  return bitwise && overload.exact ? 0 : 1;
}
