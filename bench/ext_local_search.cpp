// Extension (beyond the paper): GiPH versus classical local-search
// metaheuristics - greedy hill climbing, simulated annealing, and tabu
// search - plus the CPOP scheduling heuristic (Topcuoglu et al. 2002).
// Local search evaluates O(|V| |D|) candidate placements per step while GiPH
// needs a single GNN forward, so the per-step wall time is reported next to
// the quality.

#include <chrono>
#include <cstdio>

#include "baselines/local_search.hpp"
#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "heft/cpop.hpp"

using namespace giph;
using namespace giph::bench;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Extension: local-search comparison (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 rng(222);
  TaskGraphParams gp;
  gp.num_tasks = 14;
  NetworkParams np;
  np.num_devices = 8;
  const Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 2, rng);
  const Dataset test = generate_dataset({gp}, {np}, 16, 2, rng);
  const std::vector<Case> cases = make_cases(test, scale.test_cases);

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, dataset_sampler(train), train_options(scale));

  HillClimbPolicy hill;
  SimulatedAnnealingPolicy anneal;
  TabuSearchPolicy tabu;
  RandomSamplingPolicy random;

  std::vector<Curve> curves;
  std::vector<double> seconds;
  for (SearchPolicy* p : std::initializer_list<SearchPolicy*>{
           &giph, &hill, &anneal, &tabu, &random}) {
    const auto t0 = std::chrono::steady_clock::now();
    curves.push_back(evaluate_policy_curve(*p, cases, lat, 0.0, 444));
    const auto t1 = std::chrono::steady_clock::now();
    seconds.push_back(std::chrono::duration<double>(t1 - t0).count() /
                      static_cast<double>(cases.size()));
  }
  print_curves("GiPH vs local search: avg SLR vs search steps", curves);

  print_header("final SLR and wall time per 2|V|-step search");
  std::printf("%-14s%12s%16s\n", "policy", "final SLR", "sec/search");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::printf("%-14s%12.4f%16.4f\n", curves[i].name.c_str(),
                curves[i].values.back(), seconds[i]);
  }
  const std::vector<double> heft = heft_final(cases, lat);
  std::vector<double> cpop;
  for (const Case& c : cases) {
    const double denom = slr_denominator(*c.graph, *c.network, lat);
    cpop.push_back(
        makespan(*c.graph, *c.network, cpop_schedule(*c.graph, *c.network, lat).placement,
                 lat) /
        denom);
  }
  std::printf("%-14s%12.4f%16s\n", "HEFT", mean(heft), "-");
  std::printf("%-14s%12.4f%16s\n", "CPOP", mean(cpop), "-");
  std::printf(
      "\nExpectation: tabu/hill-climb match or slightly beat GiPH on quality but\n"
      "evaluate |V||D| candidate placements per step, versus one per step for\n"
      "GiPH. With this in-process simulator an evaluation costs microseconds,\n"
      "so their wall time stays small; in the deployments the paper targets an\n"
      "evaluation is a real profiled run, making the per-step evaluation count\n"
      "(not CPU time here) the relevant cost.\n");
  return 0;
}
