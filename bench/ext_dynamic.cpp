// Extension bench (not a paper figure): throughput and determinism of the
// dynamic-conditions machinery.
//
//  1. sims/sec  - simulate() on one instance, plain vs with the full dynamic
//                 stack enabled (a NetworkTrace with per-link breakpoints plus
//                 shared-link contention over a sparse ring topology), to keep
//                 the dynamic paths' overhead honest;
//  2. churn     - evaluate_churn over a mobility-driven script: epochs/sec,
//                 plus the determinism contract checked twice - the same seed
//                 run twice must match bitwise, and a 4-thread run must match
//                 the serial one bitwise.
//
// Results go to BENCH_dynamic.json in the working directory; CI gates the
// *_per_sec keys and the bitwise flag against the committed baseline.

#include <chrono>
#include <cstdio>
#include <random>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "casestudy/churn.hpp"
#include "eval/robustness_eval.hpp"
#include "graph/topology.hpp"
#include "heft/heft.hpp"
#include "sim/network_trace.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool cells_equal(const eval::ChurnReport& a, const eval::ChurnReport& b) {
  if (a.rows.size() != b.rows.size() || a.num_epochs != b.num_epochs) return false;
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    const eval::ChurnRow& x = a.rows[r];
    const eval::ChurnRow& y = b.rows[r];
    if (x.placer != y.placer || x.cells.size() != y.cells.size()) return false;
    for (std::size_t t = 0; t < x.cells.size(); ++t) {
      const eval::ChurnCell& c = x.cells[t];
      const eval::ChurnCell& d = y.cells[t];
      if (c.makespan_before != d.makespan_before ||
          c.makespan_after != d.makespan_after || c.stranded != d.stranded ||
          c.moved != d.moved || c.repair_steps != d.repair_steps ||
          c.recoverable != d.recoverable) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::mt19937_64 rng(7);

  // --- 1. simulation throughput, plain vs dynamic ---------------------------
  TaskGraphParams gp;
  gp.num_tasks = 50;
  const TaskGraph g = generate_task_graph(gp, rng);
  const int nd = 8;

  // Sparse ring + chords: every pair routes through shared physical links.
  std::vector<PhysicalLink> phys;
  for (int k = 0; k < nd; ++k) {
    phys.push_back({k, (k + 1) % nd, 2000.0, 0.05, true});
  }
  phys.push_back({0, nd / 2, 4000.0, 0.02, true});
  NetworkParams np;
  np.num_devices = nd;
  DeviceNetwork n = generate_device_network(np, rng);
  apply_topology(n, phys);
  const SharedLinkMap shared = build_shared_link_map(nd, phys);
  ensure_feasible(g, n, rng);

  NetworkTrace trace;
  std::uniform_real_distribution<double> factor(0.4, 1.6);
  for (int k = 0; k < nd; ++k) {
    LinkSchedule& ls = trace.link(k, (k + 1) % nd);
    for (int s = 0; s < 4; ++s) {
      ls.segments.push_back({2.0 + 3.0 * s, factor(rng), 0.01 * s, 0.02 * s});
    }
  }

  const Placement p = heft_schedule(g, n, lat).placement;
  const int sims = scale.full ? 40000 : 8000;
  double guard = 0.0;

  Clock::time_point t0 = Clock::now();
  for (int i = 0; i < sims; ++i) guard += simulate(g, n, p, lat).makespan;
  const double plain_sps = sims / seconds_since(t0);

  SimOptions dyn;
  dyn.trace = &trace;
  dyn.shared_links = &shared;
  t0 = Clock::now();
  for (int i = 0; i < sims; ++i) guard += simulate(g, n, p, lat, dyn).makespan;
  const double dyn_sps = sims / seconds_since(t0);

  std::printf("simulate() on %d tasks / %d devices\n", g.num_tasks(), nd);
  std::printf("%-32s %14.0f sims/s\n", "plain", plain_sps);
  std::printf("%-32s %14.0f sims/s\n", "trace + shared links", dyn_sps);
  std::printf("%-32s %13.1f%%\n", "dynamic overhead",
              100.0 * (plain_sps / dyn_sps - 1.0));

  // --- 2. churn protocol ----------------------------------------------------
  TaskGraphParams cgp;
  cgp.num_tasks = scale.full ? 20 : 12;
  std::mt19937_64 crng(11);
  const TaskGraph churn_g = generate_task_graph(cgp, crng);

  casestudy::ChurnScriptParams cp;
  cp.mobility.num_vehicles = 6;
  cp.epochs = scale.full ? 16 : 8;
  const eval::ChurnScript script = casestudy::generate_churn_script(cp);

  RandomTaskEftPolicy eft;
  RandomWalkPolicy walk;
  const std::vector<std::pair<std::string, SearchPolicy*>> placers = {
      {eft.name(), &eft}, {walk.name(), &walk}};
  eval::ChurnOptions copt;
  copt.seed = 21;

  t0 = Clock::now();
  const eval::ChurnReport serial = eval::evaluate_churn(churn_g, script, lat, placers, copt);
  const double churn_sec = seconds_since(t0);
  const eval::ChurnReport again = eval::evaluate_churn(churn_g, script, lat, placers, copt);
  copt.threads = 4;
  const eval::ChurnReport threaded = eval::evaluate_churn(churn_g, script, lat, placers, copt);

  const bool bitwise = cells_equal(serial, again) && cells_equal(serial, threaded);
  const double epochs_per_sec =
      static_cast<double>(serial.num_epochs) * serial.rows.size() / churn_sec;

  std::printf("\nchurn: %d tasks, %d epochs, %zu rows\n", churn_g.num_tasks(),
              serial.num_epochs, serial.rows.size());
  std::printf("%-32s %14.1f epoch-rows/s\n", "throughput", epochs_per_sec);
  std::printf("%-32s %14s\n", "bitwise identical (rerun, 4 thr)", bitwise ? "yes" : "NO");
  std::printf("\n%s\n", eval::format_churn_report(serial).c_str());

  std::FILE* f = std::fopen("BENCH_dynamic.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d, \"physical_links\": %zu},\n"
                 "  \"plain_sims_per_sec\": %.1f,\n"
                 "  \"dynamic_sims_per_sec\": %.1f,\n"
                 "  \"dynamic_overhead\": %.3f,\n"
                 "  \"churn\": {\n"
                 "    \"tasks\": %d,\n"
                 "    \"epochs\": %d,\n"
                 "    \"rows\": %zu,\n"
                 "    \"epoch_rows_per_sec\": %.1f,\n"
                 "    \"bitwise_identical\": %s\n"
                 "  }\n"
                 "}\n",
                 g.num_tasks(), nd, phys.size(), plain_sps, dyn_sps,
                 plain_sps / dyn_sps - 1.0, churn_g.num_tasks(), serial.num_epochs,
                 serial.rows.size(), epochs_per_sec, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_dynamic.json\n");
  }
  if (guard < 0.0) std::printf("guard %f\n", guard);
  return bitwise ? 0 : 1;
}
