// Extension (beyond the paper): fault recovery. A trained GiPH agent, the
// Random-task-eft baseline, and HEFT each place a batch of instances; every
// placement is then hit by a seeded fault plan of increasing severity
// (crashes + stragglers + link degradation) and repaired on the post-fault
// network. Search policies warm-start from the damaged placement
// (PlacementSearchEnv::rebase) with a budget proportional to the damage,
// while HEFT reschedules all |V| tasks from scratch.
//
// Expectation: GiPH's incremental repair approaches HEFT's full-reschedule
// recovery quality at a fraction of the repair cost - the paper's adaptivity
// claim (Section 5) made measurable.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "eval/robustness_eval.hpp"
#include "heft/heft.hpp"
#include "sim/faults.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

struct Severity {
  const char* name;
  int crashes;
  int slowdowns;
  int link_degrades;
};

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Extension: fault recovery (scale: %s)\n", scale.full ? "full" : "quick");

  std::mt19937_64 rng(555);
  TaskGraphParams gp;
  gp.num_tasks = 14;
  NetworkParams np;
  np.num_devices = 8;
  const Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 2, rng);
  const Dataset test = generate_dataset({gp}, {np}, 12, 2, rng);
  const std::vector<Case> cases = make_cases(test, scale.full ? 16 : 8);

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, dataset_sampler(train), train_options(scale));
  RandomTaskEftPolicy random_eft;

  const Severity severities[] = {
      {"light (1 straggler)", 0, 1, 1},
      {"medium (1 crash)", 1, 1, 1},
      {"heavy (2 crashes)", 2, 2, 2},
  };

  std::printf("\n%-22s %-16s %10s %10s %10s %8s\n", "severity", "placer", "recovery",
              "degrade", "repair", "moved");
  for (const Severity& sev : severities) {
    // name -> {sum recovery, sum degradation, sum repair steps, sum moved, count}
    struct Acc {
      double recovery = 0.0, degrade = 0.0, repair = 0.0, moved = 0.0;
      int count = 0;
    };
    std::map<std::string, Acc> acc;
    int skipped = 0;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      std::mt19937_64 fault_rng(1000 + 13 * i);
      FaultPlanParams fp;
      fp.horizon = std::max(
          makespan(*cases[i].graph, *cases[i].network,
                   heft_schedule(*cases[i].graph, *cases[i].network, lat).placement, lat),
          1e-9);
      fp.crashes = sev.crashes;
      fp.slowdowns = sev.slowdowns;
      fp.link_degrades = sev.link_degrades;
      const FaultPlan plan =
          generate_fault_plan(*cases[i].network, fp, fault_rng);

      eval::RobustnessOptions ropt;
      ropt.seed = 100 + i;
      ropt.threads = 0;  // fan repair rows out over all cores (bitwise identical)
      const eval::RobustnessReport report = eval::evaluate_robustness(
          *cases[i].graph, *cases[i].network, lat, plan,
          {{giph.name(), &giph}, {random_eft.name(), &random_eft}}, ropt);
      for (const eval::RepairOutcome& row : report.rows) {
        if (!row.recoverable) {
          ++skipped;
          continue;
        }
        Acc& a = acc[row.placer];
        a.recovery += row.recovery_makespan;
        a.degrade += row.degradation_ratio;
        a.repair += row.repair_fraction;
        a.moved += row.tasks_moved;
        ++a.count;
      }
    }
    for (const auto& [name, a] : acc) {
      if (a.count == 0) continue;
      std::printf("%-22s %-16s %10.2f %9.2fx %9.2f%% %8.1f\n", sev.name, name.c_str(),
                  a.recovery / a.count, a.degrade / a.count, 100.0 * a.repair / a.count,
                  a.moved / a.count);
    }
    if (skipped > 0) {
      std::printf("%-22s (%d unrecoverable placer-case pairs skipped)\n", sev.name,
                  skipped);
    }
  }
  return 0;
}
