// Microbenchmark of the streaming (iterated-graph) simulator — not a paper
// figure. Three measurements on one 50-task / 20-device reference instance:
//
//  1. frames/sec  - simulate_streaming() (allocating) vs
//                   simulate_streaming_into() with a reused StreamWorkspace
//                   (the objective-evaluation hot path), at a pipelining
//                   interval of one quarter of the one-shot makespan so
//                   frames genuinely overlap on the devices;
//  2. reduction   - frames == 1 must be bitwise identical to simulate()
//                   (schedule, edges, makespan), and the reused-workspace
//                   path bitwise identical to the allocating one;
//  3. steady state - detect_steady_state on a long deterministic run must
//                   truncate, and re-simulating the truncated frame count
//                   without detection must reproduce the run bitwise.
//
// Results go to BENCH_stream.json in the working directory; the bitwise
// checks gate the exit code.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "sim/stream.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool same_schedule(const Schedule& a, const Schedule& b) {
  if (a.tasks.size() != b.tasks.size() ||
      a.edge_start.size() != b.edge_start.size() || a.makespan != b.makespan) {
    return false;
  }
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    if (a.tasks[t].start != b.tasks[t].start ||
        a.tasks[t].finish != b.tasks[t].finish) {
      return false;
    }
  }
  for (std::size_t e = 0; e < a.edge_start.size(); ++e) {
    if (a.edge_start[e] != b.edge_start[e] ||
        a.edge_finish[e] != b.edge_finish[e]) {
      return false;
    }
  }
  return true;
}

bool same_stream_result(const StreamResult& a, const StreamResult& b) {
  return same_schedule(a.schedule, b.schedule) && a.frames == b.frames &&
         a.steady_frame == b.steady_frame && a.frame_arrival == b.frame_arrival &&
         a.frame_finish == b.frame_finish && a.frame_latency == b.frame_latency &&
         a.throughput == b.throughput && a.p50_latency == b.p50_latency &&
         a.p99_latency == b.p99_latency && a.makespan == b.makespan;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Streaming-simulator microbenchmark (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 gen_rng(4242);
  TaskGraphParams gp;
  gp.num_tasks = 50;
  NetworkParams np;
  np.num_devices = 20;
  const Dataset single = generate_dataset({gp}, {np}, 1, 1, gen_rng);
  const TaskGraph& g = single.graphs.front();
  const DeviceNetwork& n = single.networks.front();

  std::mt19937_64 prng(7);
  const Placement p = random_placement(g, n, prng);
  const Schedule one_shot = simulate(g, n, p, lat);

  StreamOptions opt;
  opt.frames = scale.full ? 64 : 32;
  opt.interval = one_shot.makespan / 4.0;  // frames overlap on the devices

  // Fastest of a few equal repetitions (noise is additive, so the minimum-time
  // repetition is the stable cost estimate; same convention as perf_eval).
  const auto best_of = [](int total, auto&& body) {
    const int reps = 5;
    const int per = total / reps;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      body(per);
      best = std::max(best, per / seconds_since(start));
    }
    return best;
  };

  // ---- 1. streaming throughput -------------------------------------------
  const int stream_reps = scale.full ? 4000 : 800;
  double guard = 0.0;  // keep the loops observable

  for (int i = 0; i < 50; ++i) {
    guard += simulate_streaming(g, n, p, lat, opt).makespan;  // warmup
  }
  const double alloc_rps = best_of(stream_reps, [&](int per) {
    for (int i = 0; i < per; ++i) {
      guard += simulate_streaming(g, n, p, lat, opt).makespan;
    }
  });

  StreamWorkspace ws;
  StreamResult out;
  for (int i = 0; i < 50; ++i) simulate_streaming_into(g, n, p, lat, ws, out, opt);
  const double ws_rps = best_of(stream_reps, [&](int per) {
    for (int i = 0; i < per; ++i) {
      simulate_streaming_into(g, n, p, lat, ws, out, opt);
      guard += out.makespan;
    }
  });
  const double frames = static_cast<double>(opt.frames);

  // ---- 2. bitwise reduction & workspace checks ---------------------------
  StreamOptions one;
  one.frames = 1;
  const StreamResult reduced = simulate_streaming(g, n, p, lat, one);
  bool bitwise = same_schedule(reduced.schedule, one_shot);

  const StreamResult fresh = simulate_streaming(g, n, p, lat, opt);
  simulate_streaming_into(g, n, p, lat, ws, out, opt);
  bitwise = bitwise && same_stream_result(fresh, out);

  // ---- 3. steady-state truncation ----------------------------------------
  StreamOptions steady = opt;
  steady.frames = scale.full ? 512 : 256;
  steady.interval = one_shot.makespan;  // pipeline keeps up -> converges
  steady.detect_steady_state = true;
  const StreamResult truncated = simulate_streaming(g, n, p, lat, steady);
  const bool detected =
      truncated.frames < steady.frames && truncated.steady_frame >= 0;
  StreamOptions replay = steady;
  replay.frames = truncated.frames;
  replay.detect_steady_state = false;
  StreamResult replayed = simulate_streaming(g, n, p, lat, replay);
  replayed.steady_frame = truncated.steady_frame;  // only detection sets it
  bitwise = bitwise && detected && same_stream_result(truncated, replayed);
  const double steady_saved_rate =
      1.0 - static_cast<double>(truncated.frames) / steady.frames;

  print_header("streaming simulator (50 tasks, 20 devices)");
  std::printf("%-34s %12d frames @ interval %.3f\n", "pipelined run", opt.frames,
              opt.interval);
  std::printf("%-34s %12.0f frames/sec\n", "simulate_streaming (allocating)",
              alloc_rps * frames);
  std::printf("%-34s %12.0f frames/sec\n", "simulate_streaming_into (reuse)",
              ws_rps * frames);
  std::printf("%-34s %11.2fx\n", "workspace speedup", ws_rps / alloc_rps);
  std::printf("%-34s %12.4f frames per simulated time\n",
              "pipeline throughput (simulated)", out.throughput);
  std::printf("%-34s %12d of %d requested (saved %.0f%%)\n",
              "steady-state truncation", truncated.frames, steady.frames,
              100.0 * steady_saved_rate);
  std::printf("%-34s %12s\n", "bitwise checks", bitwise ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_stream.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d, \"frames\": %d,\n"
                 "           \"interval\": %.6f},\n"
                 "  \"note\": \"frames/sec keys and bitwise_identical are gated"
                 " by check_bench.py; the rest is descriptive\",\n"
                 "  \"stream_frames_per_sec\": %.1f,\n"
                 "  \"stream_frames_per_sec_max_regress\": 0.5,\n"
                 "  \"stream_alloc_frames_per_sec\": %.1f,\n"
                 "  \"stream_alloc_frames_per_sec_max_regress\": 0.5,\n"
                 "  \"workspace_speedup\": %.3f,\n"
                 "  \"sim_pipeline_throughput\": %.6f,\n"
                 "  \"steady\": {\"requested\": %d, \"simulated\": %d,\n"
                 "             \"steady_frame\": %d},\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 g.num_tasks(), n.num_devices(), opt.frames, opt.interval,
                 ws_rps * frames, alloc_rps * frames, ws_rps / alloc_rps,
                 out.throughput, steady.frames, truncated.frames,
                 truncated.steady_frame, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_stream.json\n");
  }
  if (!std::isfinite(guard)) std::printf("guard %f\n", guard);
  return bitwise ? 0 : 1;
}
