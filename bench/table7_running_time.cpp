// Reproduces Table 7 and Fig. 17 with google-benchmark: per-placement-sample
// policy running time (one decide + apply step) and per-sample training time
// (episode time / steps, including the gradient update), for each GNN
// variant and as a function of the application graph size.
//
// Paper expectation: GiPH-NE-Pol (no GNN) is the fastest; full-depth
// sequential message passing (GiPH, GiPH-NE) is the slowest and grows with
// graph size; limiting the passing to k steps (GiPH-3 / GiPH-5) sits in
// between and flattens the size scaling.

#include <benchmark/benchmark.h>

#include "baselines/placeto.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

const DefaultLatencyModel kLat;

struct Instance {
  Dataset ds;
  Instance(int tasks, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    TaskGraphParams gp;
    gp.num_tasks = tasks;
    NetworkParams np;
    np.num_devices = 8;
    ds = generate_dataset({gp}, {np}, 4, 1, rng);
  }
};

std::unique_ptr<SearchPolicy> make_policy(int variant) {
  GiPHOptions o;
  o.seed = 33;
  switch (variant) {
    case 0: o.gnn = GnnKind::kGiPH; break;
    case 1: o.gnn = GnnKind::kGiPHK; o.k_steps = 3; break;
    case 2: o.gnn = GnnKind::kGiPHK; o.k_steps = 5; break;
    case 3: o.gnn = GnnKind::kGiPHNE; break;
    case 4: o.gnn = GnnKind::kNone; break;
    case 5: o.gnn = GnnKind::kGraphSAGE; break;
    case 6: {
      PlacetoOptions po;
      po.num_devices = 8;
      po.seed = 33;
      return std::make_unique<PlacetoPolicy>(po);
    }
    default: break;
  }
  return std::make_unique<GiPHAgent>(o);
}

const char* variant_name(int variant) {
  static const char* kNames[] = {"GiPH",        "GiPH-3",       "GiPH-5", "GiPH-NE",
                                 "GiPH-NE-Pol", "GraphSAGE-NE", "Placeto"};
  return kNames[variant];
}

// Table 7 / Fig. 17 right: running time per placement sample.
void BM_PolicyRunning(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const int tasks = static_cast<int>(state.range(1));
  Instance inst(tasks, 1000 + tasks);
  const auto policy = make_policy(variant);
  std::mt19937_64 rng(7);
  const TaskGraph& g = inst.ds.graphs[0];
  const DeviceNetwork& n = inst.ds.networks[0];
  PlacementSearchEnv env(g, n, kLat, makespan_objective(kLat),
                         random_placement(g, n, rng));
  policy->begin_episode();
  int since = 0;
  const int limit = policy->episode_limit(g);
  for (auto _ : state) {
    if (limit > 0 && since >= limit) {
      env.reset_to_initial();
      policy->begin_episode();
      since = 0;
    }
    ActionDecision d = policy->decide(env, rng, false);
    benchmark::DoNotOptimize(env.apply(d.action));
    ++since;
  }
  state.SetLabel(variant_name(variant));
}

// Table 7: training time per placement sample (episode incl. update / steps).
void BM_TrainingSample(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const int tasks = static_cast<int>(state.range(1));
  Instance inst(tasks, 2000 + tasks);
  const auto policy = make_policy(variant);
  const InstanceSampler sampler = dataset_sampler(inst.ds);
  TrainOptions topt;
  topt.episodes = 1;
  int samples_per_episode = 0;
  for (auto _ : state) {
    topt.seed += 1;  // fresh episode stream each iteration
    train_reinforce(*policy, kLat, sampler, topt);
    samples_per_episode =
        policy->episode_limit(inst.ds.graphs[0]) > 0 ? tasks : 2 * tasks;
  }
  state.SetLabel(variant_name(variant));
  state.counters["samples/episode"] = samples_per_episode;
}

}  // namespace

BENCHMARK(BM_PolicyRunning)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {16}})
    ->Unit(benchmark::kMillisecond);
// Fig. 17: size scaling for full-depth vs k-step passing.
BENCHMARK(BM_PolicyRunning)
    ->ArgsProduct({{0, 1, 2}, {8, 24, 40}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainingSample)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {16}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
