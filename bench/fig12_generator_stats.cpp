// Reproduces Fig. 12 (Appendix B.2): the effect of the task-graph generator
// parameters. A larger shape parameter alpha yields visibly wider and
// shallower graphs; larger heterogeneity factors yield more variable compute
// requirements and data volumes.

#include <cstdio>

#include "bench/common.hpp"
#include "gen/task_graph_gen.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

struct Stats {
  double depth = 0.0;
  double max_width = 0.0;
  double edges = 0.0;
  double compute_cv = 0.0;  ///< coefficient of variation of task compute
  double bytes_cv = 0.0;
};

Stats measure(const TaskGraphParams& p, int reps, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Stats s;
  for (int i = 0; i < reps; ++i) {
    const TaskGraph g = generate_task_graph(p, rng);
    s.depth += g.depth();
    std::vector<int> width(g.depth(), 0);
    for (int v = 0; v < g.num_tasks(); ++v) ++width[g.levels()[v]];
    s.max_width += *std::max_element(width.begin(), width.end());
    s.edges += g.num_edges();
    std::vector<double> compute, bytes;
    for (int v = 0; v < g.num_tasks(); ++v) compute.push_back(g.task(v).compute);
    for (const DataLink& e : g.edges()) bytes.push_back(e.bytes);
    s.compute_cv += stdev(compute) / mean(compute);
    if (!bytes.empty()) s.bytes_cv += stdev(bytes) / mean(bytes);
  }
  s.depth /= reps;
  s.max_width /= reps;
  s.edges /= reps;
  s.compute_cv /= reps;
  s.bytes_cv /= reps;
  return s;
}

}  // namespace

int main() {
  const int reps = 60;
  print_header("Fig.12 generator statistics (M = 24 tasks, 60 samples per row)");
  std::printf("%-8s%-8s%10s%12s%10s%12s%12s\n", "alpha", "eps", "depth", "max width",
              "edges", "compute CV", "bytes CV");
  for (const double alpha : {0.5, 1.0, 2.0}) {
    for (const double eps : {0.1, 0.5, 0.9}) {
      TaskGraphParams p;
      p.num_tasks = 24;
      p.alpha = alpha;
      p.het_compute = eps;
      p.het_bytes = eps;
      const Stats s = measure(p, reps, 99);
      std::printf("%-8.1f%-8.1f%10.2f%12.2f%10.2f%12.3f%12.3f\n", alpha, eps, s.depth,
                  s.max_width, s.edges, s.compute_cv, s.bytes_cv);
    }
  }
  std::printf(
      "\nExpectation (Fig. 12): alpha = 1 graphs are wider and shallower than\n"
      "alpha = 0.5; larger heterogeneity factors raise the compute/bytes CV\n"
      "while leaving the structure unchanged.\n");
  return 0;
}
