// Reproduces Fig. 6: adaptivity to device network changes. A 20-device
// network degrades over time: devices are replaced by lower-capacity ones
// (modeling battery-saving modes), and each policy - trained only on the
// original network distribution - must keep placing 20 application graphs.
//
// Paper expectation: the SLR of random sampling grows as capacity drops;
// Placeto does worse than random; GiPH-task-eft fails to adapt; the
// RNN-based placer stays low only because it is retrained per change; GiPH
// maintains stable, near-HEFT SLR without any retraining.

#include <cstdio>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "baselines/rnn_placer.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

/// Replaces `changed` devices of `base` with lower-capacity versions: slower
/// compute and weaker links (the paper replaces removed devices with new
/// devices of higher cost).
DeviceNetwork degrade(const DeviceNetwork& base, int changed, std::mt19937_64& rng) {
  DeviceNetwork n = base;
  std::vector<int> ids(n.num_devices());
  for (int i = 0; i < n.num_devices(); ++i) ids[i] = i;
  std::shuffle(ids.begin(), ids.end(), rng);
  for (int c = 0; c < changed && c < n.num_devices(); ++c) {
    const int k = ids[c];
    n.device(k).speed *= 0.4;
    for (int l = 0; l < n.num_devices(); ++l) {
      if (l == k) continue;
      n.set_link(k, l, n.bandwidth(k, l) * 0.5, n.delay(k, l) * 1.5);
      n.set_link(l, k, n.bandwidth(l, k) * 0.5, n.delay(l, k) * 1.5);
    }
  }
  return n;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 6 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  std::mt19937_64 rng(303);
  TaskGraphParams gp;
  gp.num_tasks = 14;
  NetworkParams np;
  np.num_devices = scale.full ? 20 : 12;
  Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 2, rng);
  Dataset eval_graphs = generate_dataset({gp}, {np}, 20, 1, rng);
  // The multiple-device-network training distribution also covers degraded
  // capacity profiles (the policies never see the *evaluation* networks).
  {
    std::mt19937_64 aug_rng(909);
    const std::size_t base_count = train.networks.size();
    for (std::size_t i = 0; i < base_count; ++i) {
      DeviceNetwork weak = train.networks[i];
      for (int k = 0; k < weak.num_devices(); ++k) {
        std::bernoulli_distribution degrade_this(0.4);
        if (!degrade_this(aug_rng)) continue;
        weak.device(k).speed *= 0.4;
        for (int l = 0; l < weak.num_devices(); ++l) {
          if (l == k) continue;
          weak.set_link(k, l, weak.bandwidth(k, l) * 0.5, weak.delay(k, l) * 1.5);
          weak.set_link(l, k, weak.bandwidth(l, k) * 0.5, weak.delay(l, k) * 1.5);
        }
      }
      train.networks.push_back(std::move(weak));
    }
  }

  const TrainOptions topt = train_options(scale);
  const InstanceSampler sampler = dataset_sampler(train);

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, sampler, topt);

  GiPHOptions to;
  to.use_gpnet = false;
  to.seed = 18;
  GiPHAgent giph_task_eft(to);
  train_reinforce(giph_task_eft, lat, sampler, topt);

  PlacetoOptions po;
  po.num_devices = np.num_devices;
  po.seed = 19;
  PlacetoPolicy placeto(po);
  train_reinforce(placeto, lat, sampler, topt);

  RandomSamplingPolicy random;

  print_header("Fig.6 average SLR vs number of changed (degraded) devices");
  std::printf("%-9s%12s%12s%12s%12s%12s%12s\n", "changed", "GiPH", "task-eft",
              "Placeto", "Random", "RNN(retr.)", "HEFT");

  const DeviceNetwork& base = train.networks[0];
  std::mt19937_64 change_rng(11);
  const int max_changed = scale.full ? 8 : 6;
  const int eval_count = scale.full ? 20 : 10;
  for (int changed = 0; changed <= max_changed; changed += 2) {
    const DeviceNetwork net = degrade(base, changed, change_rng);
    std::vector<Case> cases;
    for (int i = 0; i < eval_count; ++i) {
      cases.push_back(Case{&eval_graphs.graphs[i], &net});
    }
    const double giph_slr = mean(evaluate_policy_final(giph, cases, lat, 0.0, 41));
    const double te_slr =
        mean(evaluate_policy_final(giph_task_eft, cases, lat, 0.0, 41));
    const double pl_slr = mean(evaluate_policy_final(placeto, cases, lat, 0.0, 41));
    const double rnd_slr = mean(evaluate_policy_final(random, cases, lat, 0.0, 41));
    const double heft_slr = mean(heft_final(cases, lat));

    // RNN placer: retrained from scratch on every (graph, changed network).
    std::vector<double> rnn;
    for (const Case& c : cases) {
      RnnPlacerOptions ro;
      ro.max_updates = scale.full ? 30 : 10;
      ro.seed = 5 + changed;
      RnnPlacer placer(*c.graph, *c.network, lat, ro);
      rnn.push_back(placer.train());
    }
    std::printf("%-9d%12.4f%12.4f%12.4f%12.4f%12.4f%12.4f\n", changed, giph_slr,
                te_slr, pl_slr, rnd_slr, mean(rnn), heft_slr);
  }
  std::printf(
      "\nPaper expectation: GiPH stays flat and near HEFT as devices degrade;\n"
      "Random/Placeto/GiPH-task-eft drift upward; the RNN placer stays low only\n"
      "through per-change retraining.\n");
  return 0;
}
