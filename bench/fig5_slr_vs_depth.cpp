// Reproduces Fig. 5: average SLR of the final placements as a function of
// task-graph depth, for all search policies plus HEFT.
//
// Paper expectation: SLR grows with depth for every method (longer critical
// paths); GiPH outperforms the other search-based methods in most buckets and
// is comparable to HEFT.

#include <cstdio>
#include <map>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 5 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  // Graphs spanning a range of depths: like the paper's dataset, deeper
  // graphs are also larger (depth grows with sqrt(M)/alpha), and
  // communication is expensive enough that every extra level of depth puts
  // more transfer time on the critical path.
  std::vector<TaskGraphParams> gps;
  for (int m : {8, 12, 16, 22, 28}) {
    for (double alpha : {0.4, 0.8, 1.5}) {
      TaskGraphParams gp;
      gp.num_tasks = m;
      gp.alpha = alpha;
      gp.mean_bytes = 500.0;
      gps.push_back(gp);
    }
  }
  NetworkParams np;
  np.num_devices = 8;
  std::mt19937_64 rng(202);
  const Dataset train = generate_dataset(gps, {np}, scale.train_graphs, 1, rng);
  const Dataset test = generate_dataset(gps, {np}, scale.test_cases * 2, 1, rng);
  const std::vector<Case> cases = make_cases(test, scale.test_cases * 2);

  const TrainOptions topt = train_options(scale);
  const InstanceSampler sampler = dataset_sampler(train);

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, sampler, topt);

  GiPHOptions to;
  to.use_gpnet = false;
  to.seed = 18;
  GiPHAgent giph_task_eft(to);
  train_reinforce(giph_task_eft, lat, sampler, topt);

  PlacetoOptions po;
  po.num_devices = np.num_devices;
  po.seed = 19;
  PlacetoPolicy placeto(po);
  train_reinforce(placeto, lat, sampler, topt);

  RandomTaskEftPolicy random_task_eft;
  RandomSamplingPolicy random;

  struct Row {
    std::map<std::string, std::vector<double>> by_policy;
  };
  std::map<int, Row> buckets;  // depth -> SLRs

  std::vector<std::pair<std::string, SearchPolicy*>> policies{
      {"GiPH", &giph},
      {"GiPH-task-eft", &giph_task_eft},
      {"Random-task-eft", &random_task_eft},
      {"Placeto", &placeto},
      {"Random", &random},
  };
  for (auto& [name, policy] : policies) {
    const std::vector<double> finals =
        evaluate_policy_final(*policy, cases, lat, 0.0, 987);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      buckets[cases[i].graph->depth()].by_policy[name].push_back(finals[i]);
    }
  }
  const std::vector<double> heft = heft_final(cases, lat);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    buckets[cases[i].graph->depth()].by_policy["HEFT"].push_back(heft[i]);
  }

  print_header("Fig.5 average final SLR (+- std) by task-graph depth");
  std::printf("%-7s%6s", "depth", "n");
  const std::vector<std::string> order{"GiPH",    "GiPH-task-eft", "Random-task-eft",
                                       "Placeto", "Random",        "HEFT"};
  for (const auto& name : order) std::printf("%18s", name.c_str());
  std::printf("\n");
  for (const auto& [depth, row] : buckets) {
    const std::size_t count = row.by_policy.begin()->second.size();
    if (count < 2) continue;  // skip nearly-empty buckets
    std::printf("%-7d%6zu", depth, count);
    for (const auto& name : order) {
      const auto& xs = row.by_policy.at(name);
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.3f+-%.2f", mean(xs), stdev(xs));
      std::printf("%18s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper expectation: SLR increases with depth for all methods; GiPH beats\n"
      "the other search policies in most buckets and is comparable to HEFT.\n");
  return 0;
}
