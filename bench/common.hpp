#pragma once

#include <string>
#include <vector>

#include "core/reinforce.hpp"
#include "core/search_policy.hpp"
#include "eval/ascii_chart.hpp"
#include "eval/evaluation.hpp"
#include "gen/dataset.hpp"

namespace giph::bench {

// The generic evaluation machinery lives in src/eval; the benches use it
// through these aliases.
using eval::Case;
using eval::Curve;
using eval::curve_fractions;
using eval::mean;
using eval::percentile;
using eval::stdev;

/// Benchmark scale. Default is sized for a quick single-core run of the whole
/// bench suite; set GIPH_BENCH_SCALE=full for paper-scale episode counts and
/// dataset sizes (the paper trains 200 episodes and tests on hundreds of
/// cases).
struct Scale {
  bool full = false;
  int train_episodes = 300;   ///< paper: 200 (our REINFORCE needs more, see DESIGN.md)
  int train_graphs = 30;      ///< paper: 150 (single-network case)
  int train_networks = 5;
  int test_cases = 24;        ///< paper: 150-500
  int eval_every = 20;        ///< convergence-curve sampling (paper: 5)
  int eval_cases = 8;         ///< paper: 20

  static Scale from_env();
};

/// Training hyperparameters used across the benches. The paper trains with
/// Adam lr 0.01 and gamma 0.97; our from-scratch REINFORCE is most stable
/// with a slightly lower lr and stronger discounting (documented in
/// EXPERIMENTS.md) - the qualitative results are the reproduction target.
TrainOptions train_options(const Scale& scale);

/// Cartesian product of dataset graphs x networks, truncated to max_cases
/// (round-robin over networks for variety).
std::vector<Case> make_cases(const Dataset& ds, int max_cases);

/// Uniform sampler over a dataset (training).
InstanceSampler dataset_sampler(const Dataset& ds);

inline Curve evaluate_policy_curve(SearchPolicy& policy, const std::vector<Case>& cases,
                                   const LatencyModel& lat, double noise,
                                   std::uint64_t seed, int curve_points = 9) {
  return eval::policy_curve(policy, cases, lat, noise, seed, curve_points);
}

inline std::vector<double> evaluate_policy_final(SearchPolicy& policy,
                                                 const std::vector<Case>& cases,
                                                 const LatencyModel& lat, double noise,
                                                 std::uint64_t seed) {
  return eval::policy_finals(policy, cases, lat, noise, seed);
}

inline std::vector<double> heft_final(const std::vector<Case>& cases,
                                      const LatencyModel& lat) {
  return eval::heft_finals(cases, lat);
}

/// Parallel variants: a factory makes one fresh policy per case so the
/// evaluation can fan out over util::parallel_for. Results are bitwise
/// identical for any thread count (see eval/evaluation.hpp).
inline Curve evaluate_policy_curve(const eval::PolicyFactory& make_policy,
                                   const std::vector<Case>& cases,
                                   const LatencyModel& lat, double noise,
                                   std::uint64_t seed, int curve_points = 9,
                                   int threads = 0) {
  return eval::policy_curve(make_policy, cases, lat, noise, seed, curve_points,
                            threads);
}

inline std::vector<double> evaluate_policy_final(const eval::PolicyFactory& make_policy,
                                                 const std::vector<Case>& cases,
                                                 const LatencyModel& lat, double noise,
                                                 std::uint64_t seed, int threads = 0) {
  return eval::policy_finals(make_policy, cases, lat, noise, seed, threads);
}

/// Prints a curve table (one row per sampled step fraction, one column per
/// policy) followed by an ASCII chart of the same series.
void print_curves(const std::string& title, const std::vector<Curve>& curves);

/// Prints "=== title ===".
void print_header(const std::string& title);

}  // namespace giph::bench
