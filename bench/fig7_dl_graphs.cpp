// Reproduces Fig. 7: (a) placement quality on deep-learning computation
// graphs generated ENAS-style, grouped to 40 operator groups, on a single
// 8-device network; (b) the distribution of per-task relocation counts
// during GiPH's search.
//
// Paper expectation: GiPH outperforms all search baselines by relocating
// "critical" groups more often - the relocation-count distribution is
// heavy-tailed (a few groups moved many times, most moved rarely).

#include <cstdio>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "gen/enas_gen.hpp"
#include "gen/grouping.hpp"

using namespace giph;
using namespace giph::bench;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 7 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  // DL graphs: ENAS-style recurrent cells, unrolled, grouped to 40 nodes.
  const int group_target = scale.full ? 40 : 24;
  const int num_graphs = scale.full ? 60 : 16;
  std::mt19937_64 rng(404);
  EnasParams ep;
  Dataset ds;
  for (int i = 0; i < num_graphs; ++i) {
    const TaskGraph full = generate_enas_graph(ep, rng);
    ds.graphs.push_back(group_operators(full, group_target).graph);
  }
  NetworkParams np;
  np.num_devices = 8;
  ds.networks.push_back(generate_device_network(np, rng));

  Dataset train, test;
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    (i % 2 == 0 ? train : test).graphs.push_back(ds.graphs[i]);
  }
  train.networks = ds.networks;
  test.networks = ds.networks;
  const std::vector<Case> cases = make_cases(test, static_cast<int>(test.graphs.size()));

  const TrainOptions topt = train_options(scale);
  const InstanceSampler sampler = dataset_sampler(train);

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, sampler, topt);

  GiPHOptions to;
  to.use_gpnet = false;
  to.seed = 18;
  GiPHAgent giph_task_eft(to);
  train_reinforce(giph_task_eft, lat, sampler, topt);

  PlacetoOptions po;
  po.num_devices = np.num_devices;
  po.seed = 19;
  PlacetoPolicy placeto(po);
  train_reinforce(placeto, lat, sampler, topt);

  RandomTaskEftPolicy random_task_eft;
  RandomSamplingPolicy random;

  std::vector<Curve> curves;
  for (SearchPolicy* p : std::initializer_list<SearchPolicy*>{
           &giph, &giph_task_eft, &random_task_eft, &placeto, &random}) {
    curves.push_back(evaluate_policy_curve(*p, cases, lat, 0.0, 666));
  }
  print_curves("Fig.7(a) DL graphs: avg SLR vs search steps", curves);

  // (b) relocation-count distribution over GiPH searches.
  std::vector<int> histogram(9, 0);  // counts 1..8+, zero counts excluded
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    std::mt19937_64 case_rng(666 + ci);
    const TaskGraph& g = *cases[ci].graph;
    const DeviceNetwork& n = *cases[ci].network;
    const double denom = slr_denominator(g, n, lat);
    PlacementSearchEnv env(g, n, lat, makespan_objective(lat),
                           random_placement(g, n, case_rng), denom);
    const SearchTrace trace = run_search(giph, env, 2 * g.num_tasks(), case_rng);
    for (int c : trace.move_counts) {
      if (c > 0) ++histogram[std::min(c, 8)];
    }
  }
  print_header("Fig.7(b) relocation-count distribution (GiPH, non-zero counts)");
  for (int c = 1; c <= 8; ++c) {
    std::printf("moved %d%s times: %d tasks\n", c, c == 8 ? "+" : "", histogram[c]);
  }
  std::printf(
      "\nPaper expectation: GiPH best on DL graphs; relocation counts are\n"
      "heavy-tailed (GiPH revisits critical groups instead of sweeping all).\n");
  return 0;
}
