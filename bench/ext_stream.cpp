// Extension experiment (no paper figure): streaming sensor fusion with a
// tail-latency reward. A GiPH agent is trained with the default makespan
// reward on sensor-fusion snapshots; a second agent is trained from scratch
// with a streaming-tail reward, log(p99 * makespan) (objective_factory
// swap, the Fig. 16 recipe applied to the streaming tier; see the comments
// at the factory for why the log, the makespan shaping, and the
// from-scratch start are each load-bearing). Both use the critic baseline.
// Both are compared on held-out snapshots under both search objectives
// (a 2x2), every cell scored by simulate_streaming of its best placement
// (p99 frame latency, steady-state throughput); HEFT is the heuristic
// reference.
//
// Expectation: the p99-trained pipeline (p99 reward + p99 search) finds
// lower p99 frame latency than the makespan-trained pipeline on a majority
// of cases - one-shot makespan ignores the cross-frame queueing that
// dominates the tail once frames pipeline every 1000/pipeline_hz ms.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "casestudy/sensor_fusion.hpp"
#include "core/giph_agent.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::bench;
using giph::casestudy::SensorFusionCase;
using giph::casestudy::SensorFusionWorld;

namespace {

std::vector<SensorFusionCase> collect_cases(std::uint64_t seed, int wanted) {
  casestudy::CaseStudyParams params;
  params.seed = seed;
  SensorFusionWorld world(params);
  std::vector<SensorFusionCase> cases;
  for (int snap = 0; snap < wanted * 8 && static_cast<int>(cases.size()) < wanted;
       ++snap) {
    if (auto c = world.next_case()) cases.push_back(std::move(*c));
  }
  return cases;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Streaming sensor fusion: p99-trained vs makespan-trained (scale: %s)\n",
              scale.full ? "full" : "quick");

  const std::vector<SensorFusionCase> train = collect_cases(42, scale.full ? 48 : 20);
  const std::vector<SensorFusionCase> test = collect_cases(1043, scale.full ? 32 : 12);
  if (train.empty() || test.empty()) {
    std::printf("no populated sensor-fusion snapshots\n");
    return 1;
  }
  // The pipeline period is a scenario constant (pipeline_hz), so one
  // StreamOptions serves every case; deterministic streaming (no jitter)
  // keeps training and evaluation seed-reproducible.
  const StreamOptions sopt =
      casestudy::streaming_options(train.front(), scale.full ? 16 : 8);

  const InstanceSampler sampler = [&train](std::mt19937_64& rng) {
    const SensorFusionCase& c = train[rng() % train.size()];
    return ProblemInstance{&c.graph, &c.network};
  };

  GiPHOptions go;
  go.seed = 17;
  // Critic baseline (the ext_critic_ablation variant) instead of the
  // running average-reward baseline. Under pipelined overload nearly all of
  // the tail improvement lands in the first few moves of an episode, so the
  // average-reward baseline stays large and every later near-zero-reward
  // step gets a persistent negative advantage - fine-tuning then steadily
  // unlearns the warm-started policy (measured: the episode-best curve
  // *worsens* and held-out p99 degrades 1.3-2.6x). A learned V(s_t) assigns
  // converged states ~zero expected return, removing that bias.
  go.use_critic = true;
  GiPHAgent makespan_agent(go);
  const TrainStats mk_stats =
      train_reinforce(makespan_agent, lat, sampler, train_options(scale));

  GiPHAgent p99_agent(go);
  TrainOptions topt = train_options(scale);
  // Tail reward: log(p99 * makespan), i.e. the streaming p99 shaped by the
  // one-shot makespan the environment's schedule already carries. Three
  // choices here are load-bearing, each pinned down by a measured failure:
  //  - log, not raw: a random initial placement's queue-dominated tail is
  //    ~30x the reachable optimum, so raw rewards span two orders of
  //    magnitude within one episode, swamp the baseline, and REINFORCE
  //    unlearns mid-episode actions (raw-p99 training lands ~2.6x worse
  //    than the makespan agent). The log makes per-step rewards relative
  //    tail improvements and scale-free across instances (denominator 1).
  //  - makespan shaping: the pure p99 reward is flat under overload (only
  //    moves touching the bottleneck queue change the tail), and a policy
  //    trained on it alone converges ~2x worse held-out than the makespan
  //    agent; the dense makespan term teaches general placement competence
  //    while the tail term specializes it. log(p99) + log(mk) keeps both
  //    terms commensurable as relative improvements.
  //  - from scratch, not warm-started from the makespan parameters: a
  //    warm-started policy concentrates its reward in the first few moves,
  //    exactly the regime where the within-episode baselines misassign
  //    credit to the remaining steps - across four fine-tune
  //    configurations (raw/log reward, lower lr + episode batching,
  //    critic), fine-tuning always *degraded* the warm start. Cold start
  //    keeps rewards spread across the episode while the policy is still
  //    learning, the same regime where makespan training succeeds.
  topt.objective_factory = [&lat, &sopt](const TaskGraph&, const DeviceNetwork&,
                                         std::mt19937_64&) {
    ScheduleObjective base = streaming_p99_objective(lat, sopt);
    return [base = std::move(base)](const TaskGraph& g, const DeviceNetwork& n,
                                    const Placement& p, const Schedule& s) {
      return std::log(std::max(base(g, n, p, s), 1e-300)) +
             std::log(std::max(s.makespan, 1e-300));
    };
  };
  topt.normalizer = [](const TaskGraph&, const DeviceNetwork&) { return 1.0; };
  const TrainStats p99_stats = train_reinforce(p99_agent, lat, sampler, topt);

  const auto tail_mean = [](const std::vector<double>& xs, bool head) {
    const std::size_t k = std::max<std::size_t>(1, xs.size() / 4);
    double s = 0.0;
    for (std::size_t i = 0; i < k; ++i) s += xs[head ? i : xs.size() - 1 - i];
    return s / static_cast<double>(k);
  };
  print_header("training (normalized episode-best, first vs last quartile)");
  std::printf("%-22s %10.3f -> %10.3f\n", "makespan reward",
              tail_mean(mk_stats.episode_best, true),
              tail_mean(mk_stats.episode_best, false));
  std::printf("%-22s %10.3f -> %10.3f\n", "p99 reward (log p99*mk)",
              tail_mean(p99_stats.episode_best, true),
              tail_mean(p99_stats.episode_best, false));

  // Held-out 2x2: both trained agents under both search objectives, same
  // initial placement and budget per case; every cell scored by the
  // streaming p99 of its best placement.
  struct Cell {
    double sum_p99 = 0.0;
    double sum_tp = 0.0;
  };
  Cell cells[2][2];  // [agent: 0=makespan,1=p99][search: 0=makespan,1=p99]
  double sum_heft_p99 = 0.0, sum_init_p99 = 0.0;
  int p99_wins = 0, ties = 0;
  GiPHAgent* agents[2] = {&makespan_agent, &p99_agent};
  for (std::size_t ci = 0; ci < test.size(); ++ci) {
    const TaskGraph& g = test[ci].graph;
    const DeviceNetwork& n = test[ci].network;
    const double denom = slr_denominator(g, n, lat);
    std::mt19937_64 case_rng(999 + ci);
    const Placement init = random_placement(g, n, case_rng);
    const int steps = 2 * g.num_tasks();

    double case_p99[2][2];
    for (int a = 0; a < 2; ++a) {
      for (int s = 0; s < 2; ++s) {
        std::mt19937_64 rng(5000 + ci);
        PlacementSearchEnv env(g, n, lat,
                               s == 0 ? makespan_objective(lat)
                                      : streaming_p99_objective(lat, sopt),
                               init, denom);
        run_search(*agents[a], env, steps, rng);
        const StreamResult r =
            simulate_streaming(g, n, env.best_placement(), lat, sopt);
        cells[a][s].sum_p99 += r.p99_latency;
        cells[a][s].sum_tp += r.throughput;
        case_p99[a][s] = r.p99_latency;
      }
    }
    sum_heft_p99 +=
        simulate_streaming(g, n, heft_schedule(g, n, lat).placement, lat, sopt)
            .p99_latency;
    sum_init_p99 += simulate_streaming(g, n, init, lat, sopt).p99_latency;
    if (case_p99[1][1] < case_p99[0][0]) {
      ++p99_wins;
    } else if (case_p99[1][1] == case_p99[0][0]) {
      ++ties;
    }
  }

  const double nt = static_cast<double>(test.size());
  print_header("held-out streaming snapshots (mean p99 / mean throughput)");
  std::printf("cases: %zu, frames: %d every %.1f ms\n\n", test.size(), sopt.frames,
              sopt.interval);
  std::printf("%-22s %20s %20s\n", "", "makespan search", "p99 search");
  for (int a = 0; a < 2; ++a) {
    std::printf("%-22s %12.3f %7.5f %12.3f %7.5f\n",
                a == 0 ? "makespan-trained" : "p99-trained",
                cells[a][0].sum_p99 / nt, cells[a][0].sum_tp / nt,
                cells[a][1].sum_p99 / nt, cells[a][1].sum_tp / nt);
  }
  std::printf("%-22s %12.3f\n", "initial placement", sum_init_p99 / nt);
  std::printf("%-22s %12.3f\n", "HEFT", sum_heft_p99 / nt);
  std::printf("\np99 pipeline wins %d / %zu (ties %d), p99 improvement %.1f%%\n",
              p99_wins, test.size(), ties,
              100.0 * (1.0 - cells[1][1].sum_p99 / cells[0][0].sum_p99));

  const bool beats = cells[1][1].sum_p99 < cells[0][0].sum_p99 &&
                     2 * p99_wins > static_cast<int>(test.size());
  std::printf("acceptance (p99-trained beats makespan-trained): %s\n",
              beats ? "yes" : "NO");
  return beats ? 0 : 1;
}
