// Reproduces Fig. 11 using the Table 2 relocation-cost measurements:
//  left  - total relocation cost GiPH's policy incurs when optimizing the
//          amortized objective, as a function of pipeline frequency;
//  right - total energy cost of the placements found by GiPH (trained with
//          the energy reward), HEFT, and random sampling.
//
// Paper expectation: at higher pipeline frequencies the policy relocates
// more aggressively (higher incurred relocation cost, because each move is
// amortized over more future runs); for energy, GiPH beats both random and
// HEFT by simply switching the reward function.

#include <cstdio>
#include <unordered_map>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "casestudy/sensor_fusion.hpp"
#include "core/giph_agent.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::bench;
using namespace giph::casestudy;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 11 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  CaseStudyParams params;
  params.seed = 42;
  SensorFusionWorld world(params);
  const int wanted = scale.full ? 60 : 16;
  std::vector<SensorFusionCase> trace;
  for (int snap = 0; snap < wanted * 8 && static_cast<int>(trace.size()) < wanted;
       ++snap) {
    auto c = world.next_case();
    if (c && c.value().graph.num_tasks() >= 4) trace.push_back(std::move(*c));
  }
  std::vector<const SensorFusionCase*> train_cases, test_cases;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    (i % 2 == 0 ? train_cases : test_cases).push_back(&trace[i]);
  }

  const InstanceSampler sampler = [&train_cases](std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> pick(0, train_cases.size() - 1);
    const SensorFusionCase* c = train_cases[pick(rng)];
    return ProblemInstance{&c->graph, &c->network};
  };
  TrainOptions topt = train_options(scale);
  topt.episodes = std::max(50, scale.train_episodes / 3);

  // A single makespan-trained GiPH policy; relocation is handled by the
  // objective the search optimizes at deployment time.
  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, sampler, topt);

  print_header("Fig.11(left) incurred relocation cost vs pipeline frequency");
  std::printf("%-12s%18s%18s\n", "freq (Hz)", "reloc cost (ms)", "tasks moved");
  // Amortization window: how long a placement persists before the next
  // change (a CAV dwells near an intersection for about a minute).
  const double window_s = 60.0;
  for (const double hz : {0.1, 1.0, 10.0, 100.0}) {
    double total_cost = 0.0;
    double total_moves = 0.0;
    for (const SensorFusionCase* cp : test_cases) {
      SensorFusionCase c = *cp;
      c.pipeline_hz = hz;
      std::mt19937_64 rng(900);
      // The currently deployed placement the search starts from.
      const Placement deployed = random_placement(c.graph, c.network, rng);
      const double denom = slr_denominator(c.graph, c.network, lat);
      PlacementSearchEnv env(c.graph, c.network, lat,
                             relocation_aware_objective(c, lat, deployed, window_s),
                             deployed, denom);
      const SearchTrace trace2 =
          run_search(giph, env, 2 * c.graph.num_tasks(), rng);
      total_cost += total_relocation_cost_ms(c, deployed, env.best_placement());
      for (int v = 0; v < c.graph.num_tasks(); ++v) {
        if (env.best_placement().device_of(v) != deployed.device_of(v)) {
          total_moves += 1.0;
        }
      }
    }
    std::printf("%-12.1f%18.1f%18.1f\n", hz,
                total_cost / static_cast<double>(test_cases.size()),
                total_moves / static_cast<double>(test_cases.size()));
  }

  // Right panel: energy-cost objective. Retrain GiPH with the energy reward
  // (the paper: "by simply switching to a different reward function").
  GiPHOptions eo;
  eo.seed = 21;
  GiPHAgent giph_energy(eo);
  {
    // Energy-objective training: switch the reward via the objective factory
    // and normalize by each case's random-placement energy.
    std::unordered_map<const TaskGraph*, const SensorFusionCase*> by_graph;
    std::unordered_map<const TaskGraph*, double> norm;
    for (const SensorFusionCase* c : train_cases) {
      by_graph[&c->graph] = c;
      std::mt19937_64 r(7);
      norm[&c->graph] =
          evaluate_objective(energy_objective(*c, lat), c->graph, c->network,
                             random_placement(c->graph, c->network, r), lat);
    }
    TrainOptions et = topt;
    et.objective_factory = [&](const TaskGraph& g, const DeviceNetwork&,
                               std::mt19937_64&) {
      return energy_objective(*by_graph.at(&g), lat);
    };
    et.normalizer = [&](const TaskGraph& g, const DeviceNetwork&) {
      return std::max(norm.at(&g), 1e-9);
    };
    train_reinforce(giph_energy, lat, sampler, et);
  }

  print_header("Fig.11(right) total energy cost (J), mean over test cases");
  double e_giph = 0.0, e_heft = 0.0, e_rand = 0.0;
  for (const SensorFusionCase* cp : test_cases) {
    const SensorFusionCase& c = *cp;
    const ScheduleObjective energy = energy_objective(c, lat);
    std::mt19937_64 rng(901);
    const Placement init = random_placement(c.graph, c.network, rng);
    PlacementSearchEnv env(c.graph, c.network, lat, energy, init, 1.0);
    run_search(giph_energy, env, 2 * c.graph.num_tasks(), rng);
    e_giph += env.best_objective();
    e_heft += evaluate_objective(energy, c.graph, c.network,
                                 heft_schedule(c.graph, c.network, lat).placement, lat);
    e_rand += evaluate_objective(energy, c.graph, c.network, init, lat);
  }
  const double nc = static_cast<double>(test_cases.size());
  std::printf("%-12s%12.3f\n%-12s%12.3f\n%-12s%12.3f\n", "GiPH", e_giph / nc, "HEFT",
              e_heft / nc, "Random", e_rand / nc);
  std::printf(
      "\nPaper expectation: relocation spending grows with pipeline frequency;\n"
      "energy-trained GiPH beats both HEFT (which optimizes makespan only) and\n"
      "random placement on total energy.\n");
  return 0;
}
