// Reproduces Figs. 14-15 (Appendix B.6): policy convergence of the GNN
// implementation alternatives, evaluated on held-out cases every few training
// episodes, in three regimes (single network / fixed-size networks /
// various-size networks); then the multi-size regime repeated without the
// start-time-potential node feature.
//
// Paper expectation: GiPH, GiPH-3, GiPH-5 and GiPH-NE-Pol converge;
// GiPH-task-eft and GraphSAGE-NE do not (or diverge); removing the
// start-time potential hurts everyone, GiPH the least, and GiPH-NE-Pol (no
// GNN) stops improving at all.

#include <cstdio>

#include "baselines/placeto.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

struct VariantSpec {
  std::string label;
  GiPHOptions options;
};

std::vector<VariantSpec> variants(bool include_potential) {
  std::vector<VariantSpec> out;
  auto add = [&](const std::string& label, GnnKind kind, int k, bool use_gpnet) {
    GiPHOptions o;
    o.gnn = kind;
    o.k_steps = k;
    o.use_gpnet = use_gpnet;
    o.include_potential = include_potential;
    o.seed = 17 + out.size();
    out.push_back(VariantSpec{label, o});
  };
  add("GiPH", GnnKind::kGiPH, 3, true);
  add("GiPH-3", GnnKind::kGiPHK, 3, true);
  add("GiPH-5", GnnKind::kGiPHK, 5, true);
  if (include_potential) {
    add("GiPH-NE", GnnKind::kGiPHNE, 3, true);
    add("GraphSAGE-NE", GnnKind::kGraphSAGE, 3, true);
  }
  add("GiPH-NE-Pol", GnnKind::kNone, 3, true);
  if (include_potential) add("GiPH-task-eft", GnnKind::kGiPH, 3, false);
  return out;
}

void run_regime(const std::string& title, const Dataset& train, const Dataset& eval,
                const Scale& scale, bool include_potential) {
  const DefaultLatencyModel lat;
  const std::vector<Case> eval_cases = make_cases(eval, scale.eval_cases);
  const InstanceSampler sampler = dataset_sampler(train);

  std::vector<std::string> labels;
  std::vector<std::vector<double>> traces;  // per variant: eval SLR checkpoints
  for (const VariantSpec& spec : variants(include_potential)) {
    GiPHAgent agent(spec.options);
    TrainOptions topt = train_options(scale);
    topt.episodes = std::max(scale.train_episodes / 2, 2 * scale.eval_every);
    std::vector<double> trace;
    topt.on_episode = [&](int ep) {
      if (ep % scale.eval_every != 0 && ep != topt.episodes - 1) return;
      trace.push_back(
          mean(evaluate_policy_final(agent, eval_cases, lat, 0.0, 4242)));
    };
    train_reinforce(agent, lat, sampler, topt);
    labels.push_back(spec.label);
    traces.push_back(std::move(trace));
  }

  print_header(title);
  std::printf("%-10s", "episode");
  for (const auto& l : labels) std::printf("%15s", l.c_str());
  std::printf("\n");
  for (std::size_t row = 0; row < traces[0].size(); ++row) {
    std::printf("%-10zu", row * scale.eval_every);
    for (const auto& t : traces) std::printf("%15.4f", row < t.size() ? t[row] : 0.0);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("Figs. 14-15 reproduction (scale: %s)\n", scale.full ? "full" : "quick");
  std::mt19937_64 rng(505);

  TaskGraphParams gp;
  gp.num_tasks = 12;

  {  // Regime 1: one single device network.
    NetworkParams np;
    np.num_devices = 8;
    const Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 1, rng);
    Dataset eval = generate_dataset({gp}, {np}, scale.eval_cases, 0, rng);
    eval.networks = train.networks;
    run_regime("Fig.14(left) single network: eval SLR vs training episode", train,
               eval, scale, true);
  }
  {  // Regime 2: fixed-size device networks.
    NetworkParams np;
    np.num_devices = 8;
    const Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 4, rng);
    const Dataset eval = generate_dataset({gp}, {np}, scale.eval_cases, 2, rng);
    run_regime("Fig.14(middle) fixed-size networks: eval SLR vs training episode",
               train, eval, scale, true);
  }
  std::vector<NetworkParams> sized;
  for (int m : {5, 8, 11}) {
    NetworkParams np;
    np.num_devices = m;
    sized.push_back(np);
  }
  const Dataset train = generate_dataset({gp}, sized, scale.train_graphs, 6, rng);
  const Dataset eval = generate_dataset({gp}, sized, scale.eval_cases, 3, rng);
  run_regime("Fig.14(right) various-size networks: eval SLR vs training episode",
             train, eval, scale, true);
  run_regime("Fig.15 various-size networks WITHOUT start-time potential", train, eval,
             scale, false);

  std::printf(
      "\nPaper expectation: GiPH/GiPH-3/GiPH-5/GiPH-NE-Pol converge;\n"
      "GraphSAGE-NE and GiPH-task-eft fail to converge; without the start-time\n"
      "potential GiPH still improves while GiPH-NE-Pol does not.\n");
  return 0;
}
