// Reproduces Fig. 4: placement quality (average SLR) of search-based
// policies as a function of search steps, in four regimes:
// {single device network, multiple device networks} x {noise 0, noise 0.2}.
//
// Paper expectation: GiPH consistently reaches the lowest SLR fastest;
// GiPH-task-EFT beats Random-task-EFT; Placeto degrades under noise and
// drops to (or below) the random baseline when multiple device networks are
// involved.

#include <cstdio>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "util/parallel_for.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

Dataset make_dataset(bool multi_network, int graphs, int networks, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  TaskGraphParams gp;
  gp.num_tasks = 14;
  if (multi_network) {
    // Varying compute/communication capacities and sizes per network.
    std::vector<NetworkParams> nps;
    for (int m : {5, 7, 9}) {
      for (double sp : {6.0, 12.0}) {
        NetworkParams np;
        np.num_devices = m;
        np.mean_speed = sp;
        nps.push_back(np);
      }
    }
    return generate_dataset({gp}, nps, graphs, networks, rng);
  }
  NetworkParams np;
  np.num_devices = 8;
  return generate_dataset({gp}, {np}, graphs, /*num_networks=*/1, rng);
}

void run_panel(bool multi_network, double noise, const Scale& scale) {
  const DefaultLatencyModel lat;
  const Dataset train = make_dataset(multi_network, scale.train_graphs,
                                     multi_network ? scale.train_networks : 1, 101);
  const Dataset test = make_dataset(multi_network, scale.train_graphs / 2 + 4,
                                    multi_network ? 3 : 1, 707);
  const std::vector<Case> cases = make_cases(test, scale.test_cases);

  TrainOptions topt = train_options(scale);
  topt.noise = noise;
  const InstanceSampler sampler = dataset_sampler(train);

  GiPHOptions giph_opts;
  giph_opts.seed = 17;
  GiPHAgent giph(giph_opts);
  train_reinforce(giph, lat, sampler, topt);

  GiPHOptions te_opts;
  te_opts.use_gpnet = false;
  te_opts.seed = 18;
  GiPHAgent giph_task_eft(te_opts);
  train_reinforce(giph_task_eft, lat, sampler, topt);

  int max_devices = 0;
  for (const DeviceNetwork& n : train.networks) {
    max_devices = std::max(max_devices, n.num_devices());
  }
  PlacetoOptions po;
  po.num_devices = max_devices;
  po.seed = 19;
  PlacetoPolicy placeto(po);
  train_reinforce(placeto, lat, sampler, topt);

  RandomTaskEftPolicy random_task_eft;
  RandomSamplingPolicy random;

  // Each curve is evaluated serially (the policies are stateful, trained
  // objects), but the five policies run concurrently; per-policy results are
  // independent of the fan-out.
  std::vector<SearchPolicy*> policies{&giph, &giph_task_eft, &random_task_eft,
                                      &placeto, &random};
  std::vector<Curve> curves(policies.size());
  util::parallel_for(static_cast<int>(policies.size()), /*threads=*/0, [&](int i) {
    curves[i] = evaluate_policy_curve(*policies[i], cases, lat, noise, 555);
  });
  char title[128];
  std::snprintf(title, sizeof(title), "Fig.4 %s, noise=%.1f (avg SLR vs search steps)",
                multi_network ? "multiple-device-network" : "single-device-network",
                noise);
  print_curves(title, curves);
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  std::printf("Fig. 4 reproduction (scale: %s)\n", scale.full ? "full" : "quick");
  for (const bool multi : {false, true}) {
    for (const double noise : {0.0, 0.2}) run_panel(multi, noise, scale);
  }
  std::printf(
      "\nPaper expectation: GiPH lowest SLR in all panels; Placeto degrades with\n"
      "noise and falls to/below Random with multiple networks; GiPH-task-EFT\n"
      "between GiPH and Random-task-EFT.\n");
  return 0;
}
