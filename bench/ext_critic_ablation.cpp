// Extension ablation (beyond the paper): REINFORCE with the paper's
// average-past-reward baseline vs. an actor-critic variant where a value head
// over the mean gpNet embedding provides the baseline. The paper lists
// richer training as future work; this bench quantifies one such upgrade on
// identical data.

#include <cstdio>

#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Extension: actor-critic ablation (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 rng(111);
  TaskGraphParams gp;
  gp.num_tasks = 14;
  NetworkParams np;
  np.num_devices = 8;
  const Dataset train = generate_dataset({gp}, {np}, scale.train_graphs, 2, rng);
  const Dataset test = generate_dataset({gp}, {np}, 16, 2, rng);
  const std::vector<Case> cases = make_cases(test, scale.test_cases);
  const InstanceSampler sampler = dataset_sampler(train);

  std::vector<Curve> curves;
  for (const bool critic : {false, true}) {
    // Two seeds per config to average out REINFORCE run-to-run variance.
    std::vector<double> acc;
    std::string name = critic ? "GiPH+critic" : "GiPH";
    for (const unsigned seed : {17u, 29u}) {
      GiPHOptions o;
      o.seed = seed;
      o.use_critic = critic;
      GiPHAgent agent(o);
      TrainOptions topt = train_options(scale);
      topt.seed = seed + 1;
      train_reinforce(agent, lat, sampler, topt);
      const Curve c = evaluate_policy_curve(agent, cases, lat, 0.0, 321);
      if (acc.empty()) acc.assign(c.values.size(), 0.0);
      for (std::size_t i = 0; i < c.values.size(); ++i) acc[i] += c.values[i] / 2.0;
    }
    curves.push_back(Curve{name, acc});
  }
  print_curves("Actor-critic ablation: avg SLR vs search steps (2-seed mean)", curves);
  std::printf(
      "\nExpectation: the critic baseline matches or slightly improves the\n"
      "paper's average-past-reward baseline, with lower seed variance.\n");
  return 0;
}
