// Reproduces Table 6: pairwise placement-quality comparison. Each cell
// reports the percentage of test cases where the row method's final SLR is
// better than / equal to / worse than the column method's.
//
// Paper expectation: GiPH beats every ablated variant on a majority of
// cases (GiPH-task-eft by the widest margin) and is roughly even with HEFT.

#include <cstdio>

#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Table 6 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  std::mt19937_64 rng(606);
  TaskGraphParams gp;
  gp.num_tasks = 12;
  std::vector<NetworkParams> nps;
  for (int m : {5, 8, 11}) {
    NetworkParams np;
    np.num_devices = m;
    nps.push_back(np);
  }
  const Dataset train = generate_dataset({gp}, nps, scale.train_graphs, 6, rng);
  const Dataset test = generate_dataset({gp}, nps, scale.test_cases, 3, rng);
  const std::vector<Case> cases = make_cases(test, scale.test_cases);
  const InstanceSampler sampler = dataset_sampler(train);

  struct Entry {
    std::string label;
    std::vector<double> finals;
  };
  std::vector<Entry> entries;

  auto add_variant = [&](const std::string& label, GnnKind kind, int k,
                         bool use_gpnet) {
    GiPHOptions o;
    o.gnn = kind;
    o.k_steps = k;
    o.use_gpnet = use_gpnet;
    o.seed = 17 + entries.size();
    GiPHAgent agent(o);
    const TrainOptions topt = train_options(scale);
    train_reinforce(agent, lat, sampler, topt);
    entries.push_back(Entry{label, evaluate_policy_final(agent, cases, lat, 0.0, 31)});
    std::printf("trained %s\n", label.c_str());
  };
  add_variant("GiPH", GnnKind::kGiPH, 3, true);
  add_variant("GiPH-3", GnnKind::kGiPHK, 3, true);
  add_variant("GiPH-5", GnnKind::kGiPHK, 5, true);
  add_variant("GiPH-NE", GnnKind::kGiPHNE, 3, true);
  add_variant("GiPH-NE-Pol", GnnKind::kNone, 3, true);
  add_variant("GiPH-task-eft", GnnKind::kGiPH, 3, false);
  entries.push_back(Entry{"HEFT", heft_final(cases, lat)});

  print_header("Table 6: row better/equal/worse than column (% of test cases)");
  std::printf("%-15s", "");
  for (const Entry& e : entries) std::printf("%20s", e.label.c_str());
  std::printf("\n");
  const double tol = 1e-9;
  for (const Entry& row : entries) {
    std::printf("%-15s", row.label.c_str());
    for (const Entry& col : entries) {
      if (&row == &col) {
        std::printf("%20s", "-");
        continue;
      }
      int better = 0, equal = 0, worse = 0;
      for (std::size_t i = 0; i < cases.size(); ++i) {
        if (row.finals[i] < col.finals[i] - tol) {
          ++better;
        } else if (row.finals[i] > col.finals[i] + tol) {
          ++worse;
        } else {
          ++equal;
        }
      }
      const double nc = static_cast<double>(cases.size());
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.0f/%.0f/%.0f", 100.0 * better / nc,
                    100.0 * equal / nc, 100.0 * worse / nc);
      std::printf("%20s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper expectation: the GiPH row dominates its variants (largest margin\n"
      "over GiPH-task-eft) and splits roughly evenly against HEFT.\n");
  return 0;
}
