// Reproduces Fig. 16 (Appendix B.8): total-cost minimization. GiPH is
// retrained with the cost-reduction reward (sum of computation plus
// communication time) on the multi-network dataset; the resulting placements
// are compared with random sampling and HEFT as a function of graph depth.
//
// Paper expectation: GiPH transfers to the new objective by switching the
// reward only, finds lower total cost than random sampling at every depth,
// and beats HEFT (which optimizes makespan, not cost).

#include <cstdio>
#include <map>

#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "core/giph_agent.hpp"
#include "heft/heft.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

double min_compute_sum(const TaskGraph& g, const DeviceNetwork& n,
                       const LatencyModel& lat) {
  double total = 0.0;
  for (int v = 0; v < g.num_tasks(); ++v) {
    double best = 1e300;
    for (int d : feasible_devices(g, n, v)) {
      best = std::min(best, lat.compute_time(g, n, v, d));
    }
    total += best;
  }
  return std::max(total, 1e-9);
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 16 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  std::mt19937_64 rng(808);
  std::vector<TaskGraphParams> gps;
  for (double alpha : {0.5, 1.0, 1.8}) {
    TaskGraphParams gp;
    gp.num_tasks = 12;
    gp.alpha = alpha;
    gps.push_back(gp);
  }
  std::vector<NetworkParams> nps;
  for (int m : {5, 8, 11}) {
    NetworkParams np;
    np.num_devices = m;
    nps.push_back(np);
  }
  const Dataset train = generate_dataset(gps, nps, scale.train_graphs, 6, rng);
  const Dataset test = generate_dataset(gps, nps, scale.test_cases * 2, 3, rng);
  const std::vector<Case> cases = make_cases(test, scale.test_cases * 2);

  // Train with the cost reward (B.8: "simply replace the reward with the
  // cost reduction at each step").
  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  TrainOptions topt = train_options(scale);
  topt.objective_factory = [&lat](const TaskGraph&, const DeviceNetwork&,
                                  std::mt19937_64&) {
    return total_cost_objective(lat);
  };
  topt.normalizer = [&lat](const TaskGraph& g, const DeviceNetwork& n) {
    return min_compute_sum(g, n, lat);
  };
  train_reinforce(giph, lat, dataset_sampler(train), topt);

  RandomSamplingPolicy random;

  // Search-efficiency comparison (cost normalized by the compute lower
  // bound), plus per-depth final-cost table.
  const int points = 9;
  std::vector<double> giph_curve(points, 0.0), rand_curve(points, 0.0);
  std::map<int, std::array<std::vector<double>, 3>> by_depth;  // giph, rand, heft
  const auto fractions = curve_fractions(points);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const TaskGraph& g = *cases[ci].graph;
    const DeviceNetwork& n = *cases[ci].network;
    const double norm = min_compute_sum(g, n, lat);
    std::mt19937_64 case_rng(999 + ci);
    const Placement init = random_placement(g, n, case_rng);
    const int steps = 2 * g.num_tasks();

    PlacementSearchEnv env_g(g, n, lat, total_cost_objective(lat), init, norm);
    const SearchTrace tg = run_search(giph, env_g, steps, case_rng);
    PlacementSearchEnv env_r(g, n, lat, total_cost_objective(lat), init, norm);
    const SearchTrace tr = run_search(random, env_r, steps, case_rng);
    for (int i = 0; i < points; ++i) {
      const int idx = std::min<int>(
          steps - 1, static_cast<int>(fractions[i] * steps) - 1);
      giph_curve[i] += tg.best_so_far[std::max(idx, 0)];
      rand_curve[i] += tr.best_so_far[std::max(idx, 0)];
    }
    auto& bucket = by_depth[g.depth()];
    bucket[0].push_back(total_cost(g, n, tg.best_placement, lat));
    bucket[1].push_back(total_cost(g, n, tr.best_placement, lat));
    bucket[2].push_back(
        total_cost(g, n, heft_schedule(g, n, lat).placement, lat));
  }
  print_header("Fig.16(left) normalized total cost vs search steps");
  std::printf("%-12s%14s%14s\n", "step/2|V|", "GiPH(cost)", "Random");
  for (int i = 0; i < points; ++i) {
    std::printf("%-12.2f%14.4f%14.4f\n", fractions[i],
                giph_curve[i] / static_cast<double>(cases.size()),
                rand_curve[i] / static_cast<double>(cases.size()));
  }

  print_header("Fig.16(right) final total cost by task-graph depth");
  std::printf("%-8s%6s%14s%14s%14s\n", "depth", "n", "GiPH(cost)", "Random", "HEFT");
  for (const auto& [depth, bucket] : by_depth) {
    if (bucket[0].size() < 3) continue;
    std::printf("%-8d%6zu%14.2f%14.2f%14.2f\n", depth, bucket[0].size(),
                mean(bucket[0]), mean(bucket[1]), mean(bucket[2]));
  }
  std::printf(
      "\nPaper expectation: GiPH-with-cost-reward achieves the lowest total cost\n"
      "across depths, below both random sampling and HEFT.\n");
  return 0;
}
