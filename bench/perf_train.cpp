// Microbenchmark of the REINFORCE rollout engine (not a paper figure). One
// GiPH agent is trained twice on the same options - sequentially and with 8
// rollout workers - measuring episodes/sec for each and checking that the
// per-episode stats and the final parameters are bitwise identical, the
// trainer's determinism contract (reinforce.hpp).
//
// Results go to BENCH_train.json in the working directory. Parallel
// throughput is gated *within-run* by the speedup ratio, which is
// machine-shape-independent: >= 2x on 8+-thread hardware (the ISSUE target),
// >= 1.3x on 4-7 threads (GitHub's standard runners have 4 vCPUs),
// informational below that. The bitwise check is enforced everywhere. CI
// additionally gates the sequential episodes/sec against the committed
// baseline via tools/ci/check_bench.py.

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TrainRun {
  TrainStats stats;
  std::vector<nn::Matrix> params;
  double seconds = 0.0;
};

TrainRun run_training(const TrainOptions& topt, const Dataset& train,
                      const LatencyModel& lat) {
  GiPHOptions go;
  go.seed = 17;
  GiPHAgent agent(go);
  const auto t0 = Clock::now();
  TrainRun run;
  run.stats = train_reinforce(agent, lat, dataset_sampler(train), topt);
  run.seconds = seconds_since(t0);
  for (const nn::Var& p : agent.parameters()) run.params.push_back(p->value);
  return run;
}

bool bitwise_equal(const TrainRun& a, const TrainRun& b) {
  if (a.stats.episode_final != b.stats.episode_final ||
      a.stats.episode_initial != b.stats.episode_initial ||
      a.stats.episode_best != b.stats.episode_best) {
    return false;
  }
  if (a.params.size() != b.params.size()) return false;
  for (std::size_t k = 0; k < a.params.size(); ++k) {
    const nn::Matrix& ma = a.params[k];
    const nn::Matrix& mb = b.params[k];
    if (ma.rows() != mb.rows() || ma.cols() != mb.cols()) return false;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      if (ma.data()[i] != mb.data()[i]) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Rollout-engine microbenchmark (scale: %s)\n",
              scale.full ? "full" : "quick");

  std::mt19937_64 gen_rng(4242);
  TaskGraphParams gp;
  gp.num_tasks = scale.full ? 50 : 20;
  NetworkParams np;
  np.num_devices = scale.full ? 20 : 8;
  const Dataset train = generate_dataset({gp}, {np}, 8, 2, gen_rng);

  TrainOptions topt = train_options(scale);
  topt.episodes = scale.full ? 48 : 16;
  topt.batch_episodes = 8;
  topt.seed = 91;

  // Warmup: one tiny run so first-touch allocations and code paths are paid
  // before the clock starts.
  {
    TrainOptions w = topt;
    w.episodes = 2;
    w.batch_episodes = 2;
    run_training(w, train, lat);
  }

  topt.rollout_workers = 1;
  const TrainRun sequential = run_training(topt, train, lat);
  topt.rollout_workers = 8;
  const TrainRun parallel = run_training(topt, train, lat);

  const bool bitwise = bitwise_equal(sequential, parallel);
  const double seq_eps = topt.episodes / sequential.seconds;
  const double par_eps = topt.episodes / parallel.seconds;
  const double speedup = par_eps / seq_eps;
  const int threads = static_cast<int>(std::thread::hardware_concurrency());

  print_header("REINFORCE training throughput");
  std::printf("%-32s %d tasks, %d devices, %d episodes, batch %d\n", "config",
              gp.num_tasks, np.num_devices, topt.episodes, topt.batch_episodes);
  std::printf("%-32s %14.2f episodes/sec\n", "sequential (1 worker)", seq_eps);
  std::printf("%-32s %14.2f episodes/sec\n", "parallel (8 workers)", par_eps);
  std::printf("%-32s %13.2fx (%d hardware threads)\n", "speedup", speedup, threads);
  std::printf("%-32s %14s\n", "bitwise identical", bitwise ? "yes" : "NO");
  const double speedup_floor = threads >= 8 ? 2.0 : (threads >= 4 ? 1.3 : 0.0);
  if (speedup_floor > 0.0 && speedup < speedup_floor) {
    std::printf("speedup BELOW the %.1fx floor on %d-thread hardware\n",
                speedup_floor, threads);
  }

  std::FILE* f = std::fopen("BENCH_train.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"case\": {\"tasks\": %d, \"devices\": %d, \"episodes\": %d,"
                 " \"batch_episodes\": %d},\n"
                 "  \"hardware_threads\": %d,\n"
                 "  \"sequential_episodes_per_sec\": %.3f,\n"
                 "  \"parallel_episodes_per_sec\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"bitwise_identical\": %s\n"
                 "}\n",
                 gp.num_tasks, np.num_devices, topt.episodes, topt.batch_episodes,
                 threads, seq_eps, par_eps, speedup, bitwise ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_train.json\n");
  }
  return bitwise && (speedup_floor == 0.0 || speedup >= speedup_floor) ? 0 : 1;
}
