// Reproduces Fig. 9: the cooperative-sensor-fusion case study. Placement
// cases are extracted from a simulated traffic trace (grid mobility stands in
// for the paper's SUMO trace, Appendix B.4); policies are trained on half the
// cases and evaluated on the rest.
//
// Paper expectation: GiPH finds better placements faster than the other
// search policies and its final-SLR distribution is comparable to HEFT's.

#include <cstdio>

#include "baselines/placeto.hpp"
#include "baselines/random_policies.hpp"
#include "bench/common.hpp"
#include "casestudy/sensor_fusion.hpp"
#include "core/giph_agent.hpp"

using namespace giph;
using namespace giph::bench;
using giph::casestudy::CaseStudyParams;
using giph::casestudy::SensorFusionCase;
using giph::casestudy::SensorFusionWorld;

int main() {
  const Scale scale = Scale::from_env();
  const DefaultLatencyModel lat;
  std::printf("Fig. 9 reproduction (scale: %s)\n", scale.full ? "full" : "quick");

  CaseStudyParams params;
  if (scale.full) params = giph::casestudy::paper_scale_params();
  params.seed = 42;
  SensorFusionWorld world(params);

  const int wanted = scale.full ? 120 : 30;
  std::vector<SensorFusionCase> trace;
  for (int snap = 0; snap < wanted * 8 && static_cast<int>(trace.size()) < wanted;
       ++snap) {
    auto c = world.next_case();
    if (c && c->graph.num_tasks() >= 4) trace.push_back(std::move(*c));
  }
  std::printf("extracted %zu placement cases from the trace\n", trace.size());

  std::vector<const SensorFusionCase*> train_cases, test_cases;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    (i % 2 == 0 ? train_cases : test_cases).push_back(&trace[i]);
  }
  std::vector<Case> cases;
  for (const SensorFusionCase* c : test_cases) {
    cases.push_back(Case{&c->graph, &c->network});
  }

  const InstanceSampler sampler = [&train_cases](std::mt19937_64& rng) {
    std::uniform_int_distribution<std::size_t> pick(0, train_cases.size() - 1);
    const SensorFusionCase* c = train_cases[pick(rng)];
    return ProblemInstance{&c->graph, &c->network};
  };
  TrainOptions topt = train_options(scale);
  topt.episodes = std::max(60, scale.train_episodes / 2);  // cases are large

  GiPHOptions go;
  go.seed = 17;
  GiPHAgent giph(go);
  train_reinforce(giph, lat, sampler, topt);

  GiPHOptions to;
  to.use_gpnet = false;
  to.seed = 18;
  GiPHAgent giph_task_eft(to);
  train_reinforce(giph_task_eft, lat, sampler, topt);

  int max_devices = 0;
  for (const auto& c : trace) max_devices = std::max(max_devices, c.network.num_devices());
  PlacetoOptions po;
  po.num_devices = max_devices;
  po.seed = 19;
  PlacetoPolicy placeto(po);
  train_reinforce(placeto, lat, sampler, topt);

  RandomTaskEftPolicy random_task_eft;
  RandomSamplingPolicy random;

  std::vector<Curve> curves;
  for (SearchPolicy* p : std::initializer_list<SearchPolicy*>{
           &giph, &giph_task_eft, &random_task_eft, &placeto, &random}) {
    curves.push_back(evaluate_policy_curve(*p, cases, lat, 0.0, 777));
  }
  print_curves("Fig.9(a) case study: avg SLR vs search steps", curves);

  print_header("Fig.9(b) final-SLR distribution across test cases");
  std::printf("%-18s%10s%10s%10s%10s%10s\n", "policy", "mean", "p25", "p50", "p75",
              "p95");
  auto report = [&](const std::string& name, std::vector<double> finals) {
    std::printf("%-18s%10.3f%10.3f%10.3f%10.3f%10.3f\n", name.c_str(), mean(finals),
                percentile(finals, 25), percentile(finals, 50), percentile(finals, 75),
                percentile(finals, 95));
  };
  report("GiPH", evaluate_policy_final(giph, cases, lat, 0.0, 777));
  report("GiPH-task-eft", evaluate_policy_final(giph_task_eft, cases, lat, 0.0, 777));
  report("Random-task-eft",
         evaluate_policy_final(random_task_eft, cases, lat, 0.0, 777));
  report("Placeto", evaluate_policy_final(placeto, cases, lat, 0.0, 777));
  report("Random", evaluate_policy_final(random, cases, lat, 0.0, 777));
  report("HEFT", heft_final(cases, lat));

  std::printf(
      "\nPaper expectation: GiPH's distribution is the tightest/lowest among the\n"
      "search policies and comparable to HEFT.\n");
  return 0;
}
