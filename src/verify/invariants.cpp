#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

namespace giph {
namespace {

constexpr double kUnset = -1.0;

/// Collects violations with printf-free formatting; every check funnels
/// through fail() so the report carries all findings, not just the first.
class Collector {
 public:
  explicit Collector(InvariantReport& report) : report_(report) {}

  template <typename... Parts>
  void fail(const Parts&... parts) {
    std::ostringstream out;
    out.precision(17);
    (out << ... << parts);
    report_.violations.push_back(out.str());
  }

 private:
  InvariantReport& report_;
};

bool completed(const Schedule& s, int v) { return s.tasks[v].finish >= 0.0; }

/// First-principles id tiling for the checker's replicated streaming
/// instance: virtual ids map back to the base graph as v % V / e % E before
/// the real model is consulted (independent of the simulator's adapter).
class ReplicatedLatencyModel final : public LatencyModel {
 public:
  ReplicatedLatencyModel(const LatencyModel& base, const TaskGraph& base_graph)
      : base_(base),
        g_(base_graph),
        nv_(base_graph.num_tasks()),
        ne_(base_graph.num_edges()) {}

  double compute_time(const TaskGraph&, const DeviceNetwork& n, int v,
                      int k) const override {
    return base_.compute_time(g_, n, v % nv_, k);
  }

  double comm_time(const TaskGraph&, const DeviceNetwork& n, int e, int k,
                   int l) const override {
    return base_.comm_time(g_, n, e % ne_, k, l);
  }

  double comm_startup(const TaskGraph&, const DeviceNetwork& n, int e, int k,
                      int l) const override {
    return base_.comm_startup(g_, n, e % ne_, k, l);
  }

 private:
  const LatencyModel& base_;
  const TaskGraph& g_;
  int nv_;
  int ne_;
};

/// The checker's own nearest-rank percentile (no interpolation), mirrored
/// from the documented StreamResult convention, not from the implementation.
double checker_nearest_rank(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::ceil(q * static_cast<double>(xs.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

}  // namespace

std::string InvariantReport::summary() const {
  std::string out;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += '\n';
    out += violations[i];
  }
  return out;
}

InvariantReport check_schedule(const TaskGraph& g, const DeviceNetwork& n,
                               const Placement& p, const LatencyModel& lat,
                               const Schedule& sched, const CheckOptions& opt) {
  InvariantReport report;
  Collector c(report);
  const int nv = g.num_tasks();
  const int ne = g.num_edges();

  // Dynamic-network context: an empty trace is no trace. traced_pair() says
  // whether a directed device pair has time-varying conditions (its durations
  // are then unpredictable from the latency model alone); routed_pair() says
  // whether the pair's transfers queue on shared physical links.
  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  auto traced_pair = [&](int k, int l) {
    if (trace == nullptr) return false;
    for (const LinkSchedule& ls : trace->links) {
      if (ls.src == k && ls.dst == l && !ls.segments.empty()) return true;
    }
    return false;
  };
  auto routed_pair = [&](int k, int l) {
    return opt.shared_links != nullptr && k != l &&
           !opt.shared_links->links_on(k, l).empty();
  };

  if (static_cast<int>(sched.tasks.size()) != nv ||
      static_cast<int>(sched.edge_start.size()) != ne ||
      static_cast<int>(sched.edge_finish.size()) != ne || p.num_tasks() != nv ||
      (opt.release_times != nullptr &&
       static_cast<int>(opt.release_times->size()) != nv)) {
    c.fail("shape: schedule/placement/release arrays do not match the graph (",
           sched.tasks.size(), " tasks, ", sched.edge_start.size(), " edges for a ", nv,
           "-task ", ne, "-edge graph)");
    return report;  // everything below indexes by task/edge id
  }

  // Placement feasibility: in-range device honoring pin and hw mask.
  for (int v = 0; v < nv; ++v) {
    const int d = p.device_of(v);
    if (d < 0 || d >= n.num_devices()) {
      c.fail("placement: task ", v, " on out-of-range device ", d);
      return report;
    }
    const Task& t = g.task(v);
    if (t.pinned >= 0 && d != t.pinned) {
      c.fail("placement: task ", v, " pinned to device ", t.pinned, " but placed on ", d);
    } else if (t.pinned < 0 &&
               (t.requires_hw & n.device(d).supports_hw) != t.requires_hw) {
      c.fail("placement: task ", v, " requires hw ", t.requires_hw,
             " unsupported by device ", d);
    }
  }

  // Per-task sanity. In complete mode every task ran; in incomplete (fault)
  // mode unfinished tasks must be fully unset, never half-recorded.
  for (int v = 0; v < nv; ++v) {
    const TaskTiming& t = sched.tasks[v];
    if (!completed(sched, v)) {
      if (!opt.allow_incomplete) {
        c.fail("task ", v, ": never completed (finish ", t.finish, ")");
      } else if (t.start != kUnset || t.finish != kUnset) {
        c.fail("task ", v, ": stranded but has recorded times (start ", t.start,
               ", finish ", t.finish, ")");
      }
      continue;
    }
    if (!std::isfinite(t.start) || !std::isfinite(t.finish)) {
      c.fail("task ", v, ": non-finite times (start ", t.start, ", finish ", t.finish,
             ")");
    }
    if (t.start < 0.0) c.fail("task ", v, ": starts before t=0 (", t.start, ")");
    if (t.finish < t.start) {
      c.fail("task ", v, ": finish ", t.finish, " precedes start ", t.start);
    }
  }
  if (!report.ok()) return report;  // timing checks below assume sane values

  // Task durations against the latency model. Noise-free runs must reproduce
  // finish == start + w with the exact same rounding; noisy runs must land in
  // the draw interval (addition is monotone, so the bounds are exact too).
  if (!opt.allow_incomplete) {
    for (int v = 0; v < nv; ++v) {
      const TaskTiming& t = sched.tasks[v];
      const double w = lat.compute_time(g, n, v, p.device_of(v));
      if (opt.noise <= 0.0) {
        if (t.finish != t.start + w) {
          c.fail("task ", v, ": duration mismatch, finish ", t.finish, " != start ",
                 t.start, " + expected ", w);
        }
      } else if (t.finish < t.start + w * (1.0 - opt.noise) ||
                 t.finish > t.start + w * (1.0 + opt.noise)) {
        c.fail("task ", v, ": noisy duration outside [", w * (1.0 - opt.noise), ", ",
               w * (1.0 + opt.noise), "]: start ", t.start, " finish ", t.finish);
      }
    }
  }

  // Edge checks: a transfer exists iff its producer finished, starts at the
  // producer's finish (or later, behind the NIC, for remote sends under
  // contention), and its consumer waits for it.
  for (int e = 0; e < ne; ++e) {
    const DataLink& link = g.edge(e);
    const double es = sched.edge_start[e];
    const double ef = sched.edge_finish[e];
    if (!completed(sched, link.src)) {
      if (es != kUnset || ef != kUnset) {
        c.fail("edge ", e, ": producer ", link.src, " never finished but transfer has ",
               "times (start ", es, ", finish ", ef, ")");
      }
      continue;
    }
    if (es < 0.0 || ef < 0.0 || !std::isfinite(es) || !std::isfinite(ef)) {
      c.fail("edge ", e, ": producer finished but transfer times invalid (start ", es,
             ", finish ", ef, ")");
      continue;
    }
    if (ef < es) c.fail("edge ", e, ": finish ", ef, " precedes start ", es);
    const double src_finish = sched.tasks[link.src].finish;
    const int du = p.device_of(link.src);
    const int dv = p.device_of(link.dst);
    const bool queued = (opt.serialize_transfers && du != dv) || routed_pair(du, dv);
    if (queued ? es < src_finish : es != src_finish) {
      c.fail("edge ", e, ": transfer starts at ", es, " but producer ", link.src,
             " finishes at ", src_finish);
    }
    if (!opt.allow_incomplete && !traced_pair(du, dv)) {
      const double comm = lat.comm_time(g, n, e, du, dv);
      if (opt.noise <= 0.0) {
        if (ef != es + comm) {
          c.fail("edge ", e, ": duration mismatch, finish ", ef, " != start ", es,
                 " + expected ", comm);
        }
      } else if (ef < es + comm * (1.0 - opt.noise) ||
                 ef > es + comm * (1.0 + opt.noise)) {
        c.fail("edge ", e, ": noisy duration outside bounds: start ", es, " finish ", ef,
               " expected ", comm, " sigma ", opt.noise);
      }
    }
    if (completed(sched, link.dst) && sched.tasks[link.dst].start < ef) {
      c.fail("edge ", e, ": consumer ", link.dst, " starts at ",
             sched.tasks[link.dst].start, " before its input arrives at ", ef);
    }
  }

  // Ready time of each completed task: the arrival of its last input, but no
  // earlier than its release time (entry tasks are ready at release, 0 by
  // default). Unset when an input never arrived, which is itself a violation
  // for a completed task.
  std::vector<double> ready(nv, kUnset);
  for (int v = 0; v < nv; ++v) {
    if (!completed(sched, v)) continue;
    double r = opt.release_times != nullptr ? (*opt.release_times)[v] : 0.0;
    bool known = true;
    for (int e : g.in_edges(v)) {
      if (sched.edge_finish[e] < 0.0) {
        known = false;
        break;
      }
      r = std::max(r, sched.edge_finish[e]);
    }
    if (!known) {
      c.fail("task ", v, ": completed but an input transfer never arrived");
      continue;
    }
    ready[v] = r;
    if (sched.tasks[v].start < r) {
      c.fail("task ", v, ": starts at ", sched.tasks[v].start,
             " before its last input arrives at ", r);
    }
  }

  // Per-device checks: capacity, FIFO service order, start-time provenance,
  // and NIC serialization.
  for (int d = 0; d < n.num_devices(); ++d) {
    std::vector<int> on_device;
    for (int v = 0; v < nv; ++v) {
      if (p.device_of(v) == d && completed(sched, v)) on_device.push_back(v);
    }

    // Capacity: sweep starts (+1) and finishes (-1); a finish and a start at
    // the same instant do not overlap, so finishes sort first.
    std::vector<std::pair<double, int>> sweep;
    for (int v : on_device) {
      sweep.emplace_back(sched.tasks[v].start, +1);
      sweep.emplace_back(sched.tasks[v].finish, -1);
    }
    std::sort(sweep.begin(), sweep.end());
    int concurrent = 0, peak = 0;
    for (const auto& [time, delta] : sweep) {
      concurrent += delta;
      peak = std::max(peak, concurrent);
    }
    if (peak > n.device(d).cores) {
      c.fail("device ", d, ": runs ", peak, " tasks concurrently but has ",
             n.device(d).cores, " core(s)");
    }

    // FIFO: a strictly earlier ready time must not start later.
    for (int u : on_device) {
      for (int v : on_device) {
        if (u == v || ready[u] == kUnset || ready[v] == kUnset) continue;
        if (ready[u] < ready[v] && sched.tasks[u].start > sched.tasks[v].start) {
          c.fail("device ", d, ": FIFO violated, task ", u, " ready at ", ready[u],
                 " starts at ", sched.tasks[u].start, " after task ", v, " (ready ",
                 ready[v], ", start ", sched.tasks[v].start, ")");
        }
      }
    }

    // Work conservation (complete runs): a task starts the moment it became
    // ready, or the moment a task on its device finished and freed a core.
    if (!opt.allow_incomplete) {
      for (int v : on_device) {
        const double s = sched.tasks[v].start;
        if (s == ready[v]) continue;
        bool freed = false;
        for (int u : on_device) {
          if (u != v && sched.tasks[u].finish == s) {
            freed = true;
            break;
          }
        }
        if (!freed) {
          c.fail("device ", d, ": task ", v, " starts at ", s, " though it was ready at ",
                 ready[v], " and no task finished then (idle device, waiting task)");
        }
      }
    }

    // NIC serialization: remote sends of one device must not overlap. Only
    // checkable for benign runs without a trace: a link degrade or trace
    // breakpoint firing mid-transfer stretches sends that were already
    // dispatched on the pre-change NIC timeline.
    if (opt.serialize_transfers && !opt.allow_incomplete && trace == nullptr) {
      std::vector<std::pair<double, double>> sends;
      for (int e = 0; e < ne; ++e) {
        if (p.device_of(g.edge(e).src) != d || p.device_of(g.edge(e).dst) == d) continue;
        if (sched.edge_start[e] < 0.0) continue;
        sends.emplace_back(sched.edge_start[e], sched.edge_finish[e]);
      }
      std::sort(sends.begin(), sends.end());
      for (std::size_t i = 1; i < sends.size(); ++i) {
        if (sends[i].first < sends[i - 1].second) {
          c.fail("device ", d, ": NIC overlap, remote send [", sends[i].first, ", ",
                 sends[i].second, ") overlaps [", sends[i - 1].first, ", ",
                 sends[i - 1].second, ")");
        }
      }
    }
  }

  // Shared-link contention: transfers whose routes cross a common physical
  // link must not overlap on it (each reserves its whole route for its whole
  // duration). Like the NIC check, only meaningful when no trace / fault
  // stretched transfers past their dispatch-time reservations.
  if (opt.shared_links != nullptr && !opt.allow_incomplete && trace == nullptr) {
    for (int li = 0; li < opt.shared_links->num_links; ++li) {
      std::vector<std::pair<double, double>> uses;
      for (int e = 0; e < ne; ++e) {
        if (sched.edge_start[e] < 0.0) continue;
        const int du = p.device_of(g.edge(e).src);
        const int dv = p.device_of(g.edge(e).dst);
        if (du == dv) continue;
        const std::vector<int>& route = opt.shared_links->links_on(du, dv);
        if (std::find(route.begin(), route.end(), li) == route.end()) continue;
        uses.emplace_back(sched.edge_start[e], sched.edge_finish[e]);
      }
      std::sort(uses.begin(), uses.end());
      for (std::size_t i = 1; i < uses.size(); ++i) {
        if (uses[i].first < uses[i - 1].second) {
          c.fail("physical link ", li, ": transfer [", uses[i].first, ", ",
                 uses[i].second, ") overlaps [", uses[i - 1].first, ", ",
                 uses[i - 1].second, ")");
        }
      }
    }
  }

  // Makespan spans (completed) tasks exactly.
  double first_start = std::numeric_limits<double>::infinity();
  double last_finish = -std::numeric_limits<double>::infinity();
  for (int v = 0; v < nv; ++v) {
    if (!completed(sched, v)) continue;
    first_start = std::min(first_start, sched.tasks[v].start);
    last_finish = std::max(last_finish, sched.tasks[v].finish);
  }
  const double expected_makespan =
      last_finish >= first_start ? last_finish - first_start : 0.0;
  if (sched.makespan != expected_makespan) {
    c.fail("makespan ", sched.makespan, " != max finish - min start = ",
           expected_makespan);
  }

  return report;
}

InvariantReport check_fault_result(const TaskGraph& g, const DeviceNetwork& n,
                                   const Placement& p, const LatencyModel& lat,
                                   const FaultSimResult& result,
                                   const CheckOptions& opt) {
  CheckOptions relaxed = opt;
  relaxed.allow_incomplete = true;
  InvariantReport report = check_schedule(g, n, p, lat, result.schedule, relaxed);
  Collector c(report);
  if (static_cast<int>(result.schedule.tasks.size()) != g.num_tasks()) {
    return report;  // shape violation already recorded; the rest indexes by id
  }

  // `stranded` must list exactly the unfinished tasks, ascending.
  std::vector<int> unfinished;
  for (int v = 0; v < g.num_tasks(); ++v) {
    if (result.schedule.tasks[v].finish < 0.0) unfinished.push_back(v);
  }
  if (result.stranded != unfinished) {
    c.fail("stranded list does not match unfinished tasks (", result.stranded.size(),
           " listed, ", unfinished.size(), " unfinished)");
  }

  // A completed task implies completed parents with delivered transfers
  // (check_schedule already flags missing arrivals; flag the parent relation
  // explicitly for a better message).
  for (int e = 0; e < g.num_edges(); ++e) {
    const DataLink& link = g.edge(e);
    if (result.schedule.tasks[link.dst].finish >= 0.0 &&
        result.schedule.tasks[link.src].finish < 0.0) {
      c.fail("task ", link.dst, " completed though parent ", link.src, " is stranded");
    }
  }

  return report;
}

InvariantReport check_stream_result(const TaskGraph& g, const DeviceNetwork& n,
                                    const Placement& p, const LatencyModel& lat,
                                    const StreamResult& result,
                                    const StreamOptions& opt) {
  InvariantReport report;
  Collector c(report);
  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int frames = result.frames;

  if (frames < 1 || frames > opt.frames) {
    c.fail("stream: simulated ", frames, " frames, outside [1, ", opt.frames, "]");
    return report;
  }
  if (static_cast<int>(result.frame_arrival.size()) != frames ||
      static_cast<int>(result.frame_finish.size()) != frames ||
      static_cast<int>(result.frame_latency.size()) != frames ||
      static_cast<int>(result.schedule.tasks.size()) != frames * nv ||
      static_cast<int>(result.schedule.edge_start.size()) != frames * ne ||
      static_cast<int>(result.schedule.edge_finish.size()) != frames * ne) {
    c.fail("stream: result arrays do not match ", frames, " frames of a ", nv,
           "-task ", ne, "-edge graph");
    return report;  // everything below indexes per frame
  }

  // Arrivals: frame 0 at t = 0, then one interval (or jittered gap) apart.
  if (result.frame_arrival[0] != 0.0) {
    c.fail("stream: frame 0 arrives at ", result.frame_arrival[0], ", not 0");
  }
  if (opt.arrival_jitter <= 0.0) {
    double expected = 0.0;
    for (int f = 1; f < frames; ++f) {
      expected += opt.interval;
      if (result.frame_arrival[f] != expected) {
        c.fail("stream: frame ", f, " arrives at ", result.frame_arrival[f],
               " but frames enter every ", opt.interval, " (expected ", expected, ")");
      }
    }
  } else {
    const double lo = opt.interval * (1.0 - opt.arrival_jitter);
    const double hi = opt.interval * (1.0 + opt.arrival_jitter);
    // The recovered gap carries one subtraction of rounding; allow for it.
    const double slack = 1e-9 * std::max(1.0, hi);
    for (int f = 1; f < frames; ++f) {
      const double gap = result.frame_arrival[f] - result.frame_arrival[f - 1];
      if (gap < lo - slack || gap > hi + slack) {
        c.fail("stream: frame ", f, " gap ", gap, " outside jitter bounds [", lo,
               ", ", hi, "]");
      }
    }
  }

  // Rebuild the frame-replicated instance from first principles and hold the
  // schedule to every one-shot invariant over it, with per-task release =
  // frame arrival feeding the ready-time computation.
  TaskGraph rep;
  for (int f = 0; f < frames; ++f) {
    for (int v = 0; v < nv; ++v) rep.add_task(g.task(v));
  }
  for (int f = 0; f < frames; ++f) {
    for (int e = 0; e < ne; ++e) {
      const DataLink& link = g.edge(e);
      rep.add_edge(f * nv + link.src, f * nv + link.dst, link.bytes);
    }
  }
  Placement rp(frames * nv);
  std::vector<double> release(static_cast<std::size_t>(frames) * nv, 0.0);
  for (int f = 0; f < frames; ++f) {
    for (int v = 0; v < nv; ++v) {
      rp.set(f * nv + v, p.num_tasks() == nv ? p.device_of(v) : -1);
      release[static_cast<std::size_t>(f) * nv + v] = result.frame_arrival[f];
    }
  }
  const ReplicatedLatencyModel rep_lat(lat, g);
  CheckOptions co;
  co.noise = opt.sim.noise;
  co.serialize_transfers = opt.sim.serialize_transfers;
  co.trace = opt.sim.trace;
  co.shared_links = opt.sim.shared_links;
  co.release_times = &release;
  const InvariantReport inner = check_schedule(rep, n, rp, rep_lat, result.schedule, co);
  report.violations.insert(report.violations.end(), inner.violations.begin(),
                           inner.violations.end());

  // Per-frame finish/latency bookkeeping, bitwise.
  const bool traced = opt.sim.trace != nullptr && !opt.sim.trace->empty();
  for (int f = 0; f < frames; ++f) {
    double fin = result.frame_arrival[f];
    for (int v = 0; v < nv; ++v) {
      fin = std::max(fin, result.schedule.tasks[f * nv + v].finish);
    }
    if (result.frame_finish[f] != fin) {
      c.fail("stream: frame ", f, " finish ", result.frame_finish[f],
             " != max task finish ", fin);
    }
    if (result.frame_latency[f] != result.frame_finish[f] - result.frame_arrival[f]) {
      c.fail("stream: frame ", f, " latency ", result.frame_latency[f],
             " != finish - arrival = ",
             result.frame_finish[f] - result.frame_arrival[f]);
    }
    // Monotone frame completion: identical frames entering later cannot
    // finish earlier — unless noise re-draws durations per frame or a trace
    // changes link conditions between dispatches.
    if (f > 0 && opt.sim.noise <= 0.0 && !traced &&
        result.frame_finish[f] < result.frame_finish[f - 1]) {
      c.fail("stream: frame ", f, " finishes at ", result.frame_finish[f],
             " before frame ", f - 1, " at ", result.frame_finish[f - 1]);
    }
  }

  // Throughput identity and percentile conventions, bitwise.
  double expected_throughput;
  if (frames > 1) {
    const double span = result.frame_finish[frames - 1] - result.frame_finish[0];
    expected_throughput = span > 0.0 ? frames / span
                                     : std::numeric_limits<double>::infinity();
  } else {
    expected_throughput = result.frame_latency[0] > 0.0
                              ? 1.0 / result.frame_latency[0]
                              : std::numeric_limits<double>::infinity();
  }
  if (result.throughput != expected_throughput) {
    c.fail("stream: throughput ", result.throughput,
           " != frames / (last finish - first finish) = ", expected_throughput);
  }
  if (result.p50_latency != checker_nearest_rank(result.frame_latency, 0.50)) {
    c.fail("stream: p50 ", result.p50_latency, " is not the nearest-rank median");
  }
  if (result.p99_latency != checker_nearest_rank(result.frame_latency, 0.99)) {
    c.fail("stream: p99 ", result.p99_latency,
           " is not the nearest-rank 99th percentile");
  }
  if (result.makespan != result.schedule.makespan) {
    c.fail("stream: makespan ", result.makespan, " != schedule makespan ",
           result.schedule.makespan);
  }

  // Early termination is only legitimate via steady-state detection, and a
  // claimed steady frame must name a tail window that actually converged.
  const bool detectable = opt.detect_steady_state && opt.sim.noise <= 0.0 &&
                          opt.arrival_jitter <= 0.0;
  if (!detectable && (frames != opt.frames || result.steady_frame != -1)) {
    c.fail("stream: run truncated to ", frames, " frames (steady_frame ",
           result.steady_frame, ") without steady-state detection");
  }
  if (result.steady_frame >= 0) {
    if (result.steady_frame != frames - opt.steady_window || frames < opt.steady_window + 1) {
      c.fail("stream: steady_frame ", result.steady_frame,
             " does not name the last ", opt.steady_window, "-frame window of ",
             frames, " frames");
    } else {
      const double gap_ref =
          result.frame_finish[frames - 1] - result.frame_finish[frames - 2];
      const double lat_ref = result.frame_latency[frames - 1];
      const double gap_tol = opt.steady_tol * std::max(1.0, std::abs(gap_ref));
      const double lat_tol = opt.steady_tol * std::max(1.0, std::abs(lat_ref));
      for (int f = frames - opt.steady_window; f < frames; ++f) {
        const double gap = result.frame_finish[f] - result.frame_finish[f - 1];
        if (std::abs(gap - gap_ref) > gap_tol ||
            std::abs(result.frame_latency[f] - lat_ref) > lat_tol) {
          c.fail("stream: steady_frame ", result.steady_frame,
                 " claimed but frame ", f, " had not converged");
        }
      }
    }
  } else if (detectable && frames < opt.frames) {
    c.fail("stream: run truncated to ", frames, " frames without a steady window");
  }

  return report;
}

}  // namespace giph
