#include "verify/oracle.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace giph {
namespace {

// One pending event in the oracle's flat event list. `order` is the creation
// index; (time, order) totally orders events, so a linear scan for the
// minimum reproduces exactly the pop sequence any correct priority queue
// would produce.
struct OracleEvent {
  double time = 0.0;
  long order = 0;
  int kind = 0;  // 0 = task completion, 1 = edge arrival, 2 = trace breakpoint
  int id = -1;   // task id, edge id, or breakpoint index
};

constexpr int kTaskEvent = 0;
constexpr int kTransferEvent = 1;
constexpr int kBreakpointEvent = 2;

double draw(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> u(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return u(*opt.rng);
}

// First-principles feasibility: every task sits on an in-range device that is
// either its pinned device or supports its hardware-requirement mask.
bool placement_feasible(const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
  if (p.num_tasks() != g.num_tasks()) return false;
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int d = p.device_of(v);
    if (d < 0 || d >= n.num_devices()) return false;
    const Task& t = g.task(v);
    if (t.pinned >= 0) {
      if (d != t.pinned) return false;
    } else if ((t.requires_hw & n.device(d).supports_hw) != t.requires_hw) {
      return false;
    }
  }
  return true;
}

// Own acyclicity check (Kahn's algorithm on a scratch in-degree array), so the
// oracle does not depend on TaskGraph's cached topological order.
bool acyclic(const TaskGraph& g) {
  const int nv = g.num_tasks();
  std::vector<int> indeg(nv, 0);
  for (const DataLink& e : g.edges()) ++indeg[e.dst];
  std::vector<int> frontier;
  for (int v = 0; v < nv; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    ++visited;
    for (int e : g.out_edges(v)) {
      if (--indeg[g.edge(e).dst] == 0) frontier.push_back(g.edge(e).dst);
    }
  }
  return visited == nv;
}

}  // namespace

Schedule oracle_simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, const SimOptions& opt) {
  validate_sim_options(opt, "oracle_simulate");
  if (!placement_feasible(g, n, p)) {
    throw std::invalid_argument("oracle_simulate: infeasible placement");
  }
  if (!acyclic(g)) {
    throw std::logic_error("oracle_simulate: cyclic task graph");
  }

  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  // Dynamic-network configuration, interpreted independently of the
  // production simulator: only the NetworkTrace / SharedLinkMap *data* is
  // shared. An empty trace is no trace at all.
  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  if (trace != nullptr) validate_network_trace(*trace, n, "oracle_simulate");
  const SharedLinkMap* shared = opt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        "oracle_simulate: shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  Schedule out;
  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return out;

  std::vector<OracleEvent> pending;
  long next_order = 0;
  std::vector<std::vector<int>> waiting(nd);  // FIFO of runnable-but-queued tasks
  std::vector<double> nic_busy_until(nd, 0.0);
  std::vector<double> link_busy_until(shared != nullptr ? shared->num_links : 0, 0.0);

  // Per traced link: the segment currently in force (identity before the
  // first segment) and its wire-time factor. Breakpoint entries are created
  // before anything else, so a breakpoint sorts before same-time sim events.
  const int ntl = trace != nullptr ? static_cast<int>(trace->links.size()) : 0;
  std::vector<TraceSegment> link_state(ntl);
  std::vector<double> link_factor(ntl, 1.0);
  std::vector<std::pair<int, int>> breakpoints;  // (trace link, segment)
  if (trace != nullptr) {
    for (int li = 0; li < ntl; ++li) {
      const LinkSchedule& ls = trace->links[li];
      for (int si = 0; si < static_cast<int>(ls.segments.size()); ++si) {
        if (ls.segments[si].time <= 0.0) {
          link_state[li] = ls.segments[si];
          link_factor[li] = (1.0 / ls.segments[si].bandwidth_factor) /
                            (1.0 - ls.segments[si].drop_prob);
        } else {
          pending.push_back(OracleEvent{ls.segments[si].time, next_order++,
                                        kBreakpointEvent,
                                        static_cast<int>(breakpoints.size())});
          breakpoints.emplace_back(li, si);
        }
      }
    }
  }

  // The traced-link index of a device pair, found by scanning the trace
  // (links with no segments are plain links).
  auto traced_link_of = [&](int src, int dst) {
    if (trace == nullptr) return -1;
    for (int li = 0; li < ntl; ++li) {
      if (trace->links[li].src == src && trace->links[li].dst == dst &&
          !trace->links[li].segments.empty()) {
        return li;
      }
    }
    return -1;
  };

  // Per edge: when its wire (bandwidth-proportional) portion starts and the
  // factor its current finish time was computed with. An edge is in flight
  // exactly when it has started but not finished.
  std::vector<double> wire_begin(ne, 0.0);
  std::vector<double> wire_factor_of(ne, 1.0);

  // Occupancy is re-derived on demand instead of kept in a counter: a device
  // is running exactly its placed tasks that have started but not finished.
  auto tasks_running_on = [&](int d) {
    int count = 0;
    for (int v = 0; v < nv; ++v) {
      if (p.device_of(v) == d && out.tasks[v].start >= 0.0 && out.tasks[v].finish < 0.0) {
        ++count;
      }
    }
    return count;
  };

  auto begin_execution = [&](int v, double t) {
    const int d = p.device_of(v);
    out.tasks[v].start = t;
    const double w = draw(lat.compute_time(g, n, v, d), opt);
    pending.push_back(OracleEvent{t + w, next_order++, kTaskEvent, v});
  };

  // A task whose inputs have all arrived either begins immediately (free core,
  // nobody queued ahead) or joins its device's FIFO.
  auto on_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
      begin_execution(v, t);
    } else {
      waiting[d].push_back(v);
    }
  };

  // Entry tasks are runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (g.in_degree(v) == 0) on_runnable(v, 0.0);
  }

  while (!pending.empty()) {
    // Earliest (time, creation order) event, found by plain linear scan.
    std::size_t at = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].time < pending[at].time ||
          (pending[i].time == pending[at].time && pending[i].order < pending[at].order)) {
        at = i;
      }
    }
    const OracleEvent ev = pending[at];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(at));

    if (ev.kind == kTaskEvent) {
      const int v = ev.id;
      out.tasks[v].finish = ev.time;
      const int d = p.device_of(v);
      // Outputs go out to every child's device, in out-edge order:
      // contention-free and concurrent in the paper's model, back-to-back
      // through the sender's NIC when serialize_transfers is on, and behind
      // every busy physical link of the route under shared-link contention.
      for (int e : g.out_edges(v)) {
        const int dst_dev = p.device_of(g.edge(e).dst);
        const double c = draw(lat.comm_time(g, n, e, d, dst_dev), opt);
        double start = ev.time;
        if (dst_dev != d) {
          if (opt.serialize_transfers) start = std::max(start, nic_busy_until[d]);
          if (shared != nullptr) {
            for (const int li : shared->links_on(d, dst_dev)) {
              start = std::max(start, link_busy_until[li]);
            }
          }
        }
        double dur = c;
        const int tl = traced_link_of(d, dst_dev);
        if (tl >= 0) {
          // Startup (delay) portion of the realized time keeps the expected
          // startup fraction; only the wire remainder scales with the link
          // conditions in force at dispatch.
          const double ce = lat.comm_time(g, n, e, d, dst_dev);
          const double de = lat.comm_startup(g, n, e, d, dst_dev);
          const double dr = ce > 0.0 ? de * (c / ce) : 0.0;
          const double startup = dr + link_state[tl].delay_add;
          dur = startup + (c - dr) * link_factor[tl];
          wire_begin[e] = start + startup;
          wire_factor_of[e] = link_factor[tl];
        } else if (trace != nullptr) {
          wire_begin[e] = start;
          wire_factor_of[e] = 1.0;
        }
        if (dst_dev != d) {
          if (opt.serialize_transfers) nic_busy_until[d] = start + dur;
          if (shared != nullptr) {
            for (const int li : shared->links_on(d, dst_dev)) {
              link_busy_until[li] = start + dur;
            }
          }
        }
        out.edge_start[e] = start;
        pending.push_back(OracleEvent{start + dur, next_order++, kTransferEvent, e});
      }
      // The freed core serves the next queued task, if any.
      if (!waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
        const int next = waiting[d].front();
        waiting[d].erase(waiting[d].begin());
        begin_execution(next, ev.time);
      }
    } else if (ev.kind == kTransferEvent) {
      const int e = ev.id;
      out.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      // Re-scan the child's inputs from scratch: it becomes runnable exactly
      // when its last input arrives.
      bool all_arrived = true;
      for (int in_e : g.in_edges(child)) {
        if (out.edge_finish[in_e] < 0.0) {
          all_arrived = false;
          break;
        }
      }
      if (all_arrived) on_runnable(child, ev.time);
    } else {  // kBreakpointEvent
      const int li = breakpoints[ev.id].first;
      const TraceSegment& seg = trace->links[li].segments[breakpoints[ev.id].second];
      link_state[li] = seg;
      const double f_new = (1.0 / seg.bandwidth_factor) / (1.0 - seg.drop_prob);
      link_factor[li] = f_new;
      const int src = trace->links[li].src;
      const int dst = trace->links[li].dst;
      // Rescale the remaining wire time of every transfer in flight on this
      // link, in ascending edge-id order: remove its pending arrival and
      // append the rescaled one (matching the simulator's fresh event).
      for (int e = 0; e < ne; ++e) {
        if (out.edge_start[e] < 0.0 || out.edge_finish[e] >= 0.0) continue;
        if (p.device_of(g.edge(e).src) != src || p.device_of(g.edge(e).dst) != dst) {
          continue;
        }
        if (wire_factor_of[e] == f_new) continue;
        std::size_t slot = pending.size();
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (pending[i].kind == kTransferEvent && pending[i].id == e) {
            slot = i;
            break;
          }
        }
        if (slot == pending.size()) {
          throw std::logic_error("oracle_simulate: in-flight edge has no pending event");
        }
        const double anchor = std::max(ev.time, wire_begin[e]);
        const double remaining = pending[slot].time - anchor;
        if (remaining <= 0.0) {
          // Wire already done (zero wire time, or finishing this instant):
          // keep the pending arrival as-is.
          wire_factor_of[e] = f_new;
          continue;
        }
        const double finish = anchor + remaining * (f_new / wire_factor_of[e]);
        wire_factor_of[e] = f_new;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(slot));
        pending.push_back(OracleEvent{finish, next_order++, kTransferEvent, e});
      }
    }
  }

  for (int v = 0; v < nv; ++v) {
    if (out.tasks[v].finish < 0.0) {
      throw std::logic_error("oracle_simulate: not all tasks completed");
    }
  }

  double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
  for (const TaskTiming& t : out.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  out.makespan = last_finish - first_start;
  return out;
}

}  // namespace giph
