#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace giph {
namespace {

// One pending event in the oracle's flat event list. `order` is the creation
// index; (time, order) totally orders events, so a linear scan for the
// minimum reproduces exactly the pop sequence any correct priority queue
// would produce.
struct OracleEvent {
  double time = 0.0;
  long order = 0;
  int kind = 0;  // 0 = task completion, 1 = edge arrival, 2 = trace breakpoint
  int id = -1;   // task id, edge id, or breakpoint index
};

constexpr int kTaskEvent = 0;
constexpr int kTransferEvent = 1;
constexpr int kBreakpointEvent = 2;

double draw(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> u(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return u(*opt.rng);
}

// First-principles feasibility: every task sits on an in-range device that is
// either its pinned device or supports its hardware-requirement mask.
bool placement_feasible(const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
  if (p.num_tasks() != g.num_tasks()) return false;
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int d = p.device_of(v);
    if (d < 0 || d >= n.num_devices()) return false;
    const Task& t = g.task(v);
    if (t.pinned >= 0) {
      if (d != t.pinned) return false;
    } else if ((t.requires_hw & n.device(d).supports_hw) != t.requires_hw) {
      return false;
    }
  }
  return true;
}

// Own acyclicity check (Kahn's algorithm on a scratch in-degree array), so the
// oracle does not depend on TaskGraph's cached topological order.
bool acyclic(const TaskGraph& g) {
  const int nv = g.num_tasks();
  std::vector<int> indeg(nv, 0);
  for (const DataLink& e : g.edges()) ++indeg[e.dst];
  std::vector<int> frontier;
  for (int v = 0; v < nv; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    ++visited;
    for (int e : g.out_edges(v)) {
      if (--indeg[g.edge(e).dst] == 0) frontier.push_back(g.edge(e).dst);
    }
  }
  return visited == nv;
}

}  // namespace

Schedule oracle_simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, const SimOptions& opt) {
  validate_sim_options(opt, "oracle_simulate");
  if (!placement_feasible(g, n, p)) {
    throw std::invalid_argument("oracle_simulate: infeasible placement");
  }
  if (!acyclic(g)) {
    throw std::logic_error("oracle_simulate: cyclic task graph");
  }

  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  // Dynamic-network configuration, interpreted independently of the
  // production simulator: only the NetworkTrace / SharedLinkMap *data* is
  // shared. An empty trace is no trace at all.
  const NetworkTrace* trace =
      (opt.trace != nullptr && !opt.trace->empty()) ? opt.trace : nullptr;
  if (trace != nullptr) validate_network_trace(*trace, n, "oracle_simulate");
  const SharedLinkMap* shared = opt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        "oracle_simulate: shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  Schedule out;
  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return out;

  std::vector<OracleEvent> pending;
  long next_order = 0;
  std::vector<std::vector<int>> waiting(nd);  // FIFO of runnable-but-queued tasks
  std::vector<double> nic_busy_until(nd, 0.0);
  std::vector<double> link_busy_until(shared != nullptr ? shared->num_links : 0, 0.0);

  // Per traced link: the segment currently in force (identity before the
  // first segment) and its wire-time factor. Breakpoint entries are created
  // before anything else, so a breakpoint sorts before same-time sim events.
  const int ntl = trace != nullptr ? static_cast<int>(trace->links.size()) : 0;
  std::vector<TraceSegment> link_state(ntl);
  std::vector<double> link_factor(ntl, 1.0);
  std::vector<std::pair<int, int>> breakpoints;  // (trace link, segment)
  if (trace != nullptr) {
    for (int li = 0; li < ntl; ++li) {
      const LinkSchedule& ls = trace->links[li];
      for (int si = 0; si < static_cast<int>(ls.segments.size()); ++si) {
        if (ls.segments[si].time <= 0.0) {
          link_state[li] = ls.segments[si];
          link_factor[li] = (1.0 / ls.segments[si].bandwidth_factor) /
                            (1.0 - ls.segments[si].drop_prob);
        } else {
          pending.push_back(OracleEvent{ls.segments[si].time, next_order++,
                                        kBreakpointEvent,
                                        static_cast<int>(breakpoints.size())});
          breakpoints.emplace_back(li, si);
        }
      }
    }
  }

  // The traced-link index of a device pair, found by scanning the trace
  // (links with no segments are plain links).
  auto traced_link_of = [&](int src, int dst) {
    if (trace == nullptr) return -1;
    for (int li = 0; li < ntl; ++li) {
      if (trace->links[li].src == src && trace->links[li].dst == dst &&
          !trace->links[li].segments.empty()) {
        return li;
      }
    }
    return -1;
  };

  // Per edge: when its wire (bandwidth-proportional) portion starts and the
  // factor its current finish time was computed with. An edge is in flight
  // exactly when it has started but not finished.
  std::vector<double> wire_begin(ne, 0.0);
  std::vector<double> wire_factor_of(ne, 1.0);

  // Occupancy is re-derived on demand instead of kept in a counter: a device
  // is running exactly its placed tasks that have started but not finished.
  auto tasks_running_on = [&](int d) {
    int count = 0;
    for (int v = 0; v < nv; ++v) {
      if (p.device_of(v) == d && out.tasks[v].start >= 0.0 && out.tasks[v].finish < 0.0) {
        ++count;
      }
    }
    return count;
  };

  auto begin_execution = [&](int v, double t) {
    const int d = p.device_of(v);
    out.tasks[v].start = t;
    const double w = draw(lat.compute_time(g, n, v, d), opt);
    pending.push_back(OracleEvent{t + w, next_order++, kTaskEvent, v});
  };

  // A task whose inputs have all arrived either begins immediately (free core,
  // nobody queued ahead) or joins its device's FIFO.
  auto on_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
      begin_execution(v, t);
    } else {
      waiting[d].push_back(v);
    }
  };

  // Entry tasks are runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (g.in_degree(v) == 0) on_runnable(v, 0.0);
  }

  while (!pending.empty()) {
    // Earliest (time, creation order) event, found by plain linear scan.
    std::size_t at = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].time < pending[at].time ||
          (pending[i].time == pending[at].time && pending[i].order < pending[at].order)) {
        at = i;
      }
    }
    const OracleEvent ev = pending[at];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(at));

    if (ev.kind == kTaskEvent) {
      const int v = ev.id;
      out.tasks[v].finish = ev.time;
      const int d = p.device_of(v);
      // Outputs go out to every child's device, in out-edge order:
      // contention-free and concurrent in the paper's model, back-to-back
      // through the sender's NIC when serialize_transfers is on, and behind
      // every busy physical link of the route under shared-link contention.
      for (int e : g.out_edges(v)) {
        const int dst_dev = p.device_of(g.edge(e).dst);
        const double c = draw(lat.comm_time(g, n, e, d, dst_dev), opt);
        double start = ev.time;
        if (dst_dev != d) {
          if (opt.serialize_transfers) start = std::max(start, nic_busy_until[d]);
          if (shared != nullptr) {
            for (const int li : shared->links_on(d, dst_dev)) {
              start = std::max(start, link_busy_until[li]);
            }
          }
        }
        double dur = c;
        const int tl = traced_link_of(d, dst_dev);
        if (tl >= 0) {
          // Startup (delay) portion of the realized time keeps the expected
          // startup fraction; only the wire remainder scales with the link
          // conditions in force at dispatch.
          const double ce = lat.comm_time(g, n, e, d, dst_dev);
          const double de = lat.comm_startup(g, n, e, d, dst_dev);
          const double dr = ce > 0.0 ? de * (c / ce) : 0.0;
          const double startup = dr + link_state[tl].delay_add;
          dur = startup + (c - dr) * link_factor[tl];
          wire_begin[e] = start + startup;
          wire_factor_of[e] = link_factor[tl];
        } else if (trace != nullptr) {
          wire_begin[e] = start;
          wire_factor_of[e] = 1.0;
        }
        if (dst_dev != d) {
          if (opt.serialize_transfers) nic_busy_until[d] = start + dur;
          if (shared != nullptr) {
            for (const int li : shared->links_on(d, dst_dev)) {
              link_busy_until[li] = start + dur;
            }
          }
        }
        out.edge_start[e] = start;
        pending.push_back(OracleEvent{start + dur, next_order++, kTransferEvent, e});
      }
      // The freed core serves the next queued task, if any.
      if (!waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
        const int next = waiting[d].front();
        waiting[d].erase(waiting[d].begin());
        begin_execution(next, ev.time);
      }
    } else if (ev.kind == kTransferEvent) {
      const int e = ev.id;
      out.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      // Re-scan the child's inputs from scratch: it becomes runnable exactly
      // when its last input arrives.
      bool all_arrived = true;
      for (int in_e : g.in_edges(child)) {
        if (out.edge_finish[in_e] < 0.0) {
          all_arrived = false;
          break;
        }
      }
      if (all_arrived) on_runnable(child, ev.time);
    } else {  // kBreakpointEvent
      const int li = breakpoints[ev.id].first;
      const TraceSegment& seg = trace->links[li].segments[breakpoints[ev.id].second];
      link_state[li] = seg;
      const double f_new = (1.0 / seg.bandwidth_factor) / (1.0 - seg.drop_prob);
      link_factor[li] = f_new;
      const int src = trace->links[li].src;
      const int dst = trace->links[li].dst;
      // Rescale the remaining wire time of every transfer in flight on this
      // link, in ascending edge-id order: remove its pending arrival and
      // append the rescaled one (matching the simulator's fresh event).
      for (int e = 0; e < ne; ++e) {
        if (out.edge_start[e] < 0.0 || out.edge_finish[e] >= 0.0) continue;
        if (p.device_of(g.edge(e).src) != src || p.device_of(g.edge(e).dst) != dst) {
          continue;
        }
        if (wire_factor_of[e] == f_new) continue;
        std::size_t slot = pending.size();
        for (std::size_t i = 0; i < pending.size(); ++i) {
          if (pending[i].kind == kTransferEvent && pending[i].id == e) {
            slot = i;
            break;
          }
        }
        if (slot == pending.size()) {
          throw std::logic_error("oracle_simulate: in-flight edge has no pending event");
        }
        const double anchor = std::max(ev.time, wire_begin[e]);
        const double remaining = pending[slot].time - anchor;
        if (remaining <= 0.0) {
          // Wire already done (zero wire time, or finishing this instant):
          // keep the pending arrival as-is.
          wire_factor_of[e] = f_new;
          continue;
        }
        const double finish = anchor + remaining * (f_new / wire_factor_of[e]);
        wire_factor_of[e] = f_new;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(slot));
        pending.push_back(OracleEvent{finish, next_order++, kTransferEvent, e});
      }
    }
  }

  for (int v = 0; v < nv; ++v) {
    if (out.tasks[v].finish < 0.0) {
      throw std::logic_error("oracle_simulate: not all tasks completed");
    }
  }

  double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
  for (const TaskTiming& t : out.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  out.makespan = last_finish - first_start;
  return out;
}

namespace {

constexpr int kArrivalEvent = 3;

// The oracle's own nearest-rank percentile, written from the documented
// convention (the ceil(q * n)-th smallest observation, no interpolation).
double oracle_percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = std::ceil(q * static_cast<double>(xs.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

// One naive streaming replay of exactly `frames` frames: oracle_simulate's
// flat event list generalized to virtual ids (task f * V + v, edge f * E + e)
// with the base latency model consulted through id mapping, plus arrival
// entries releasing each later frame's entry copies.
StreamResult oracle_stream_frames(const TaskGraph& g, const DeviceNetwork& n,
                                  const Placement& p, const LatencyModel& lat,
                                  const StreamOptions& opt, int frames) {
  const int bv = g.num_tasks();
  const int be = g.num_edges();
  const int nd = n.num_devices();
  const int nv = frames * bv;
  const int ne = frames * be;
  const SimOptions& sopt = opt.sim;

  StreamResult r;
  // Inter-arrival gaps are drawn before any simulation draw, in frame order.
  r.frame_arrival.assign(frames, 0.0);
  for (int f = 1; f < frames; ++f) {
    double gap = opt.interval;
    if (opt.arrival_jitter > 0.0) {
      std::uniform_real_distribution<double> u(
          opt.interval * (1.0 - opt.arrival_jitter),
          opt.interval * (1.0 + opt.arrival_jitter));
      gap = u(*sopt.rng);
    }
    r.frame_arrival[f] = r.frame_arrival[f - 1] + gap;
  }

  const NetworkTrace* trace =
      (sopt.trace != nullptr && !sopt.trace->empty()) ? sopt.trace : nullptr;
  if (trace != nullptr) validate_network_trace(*trace, n, "oracle_simulate_streaming");
  const SharedLinkMap* shared = sopt.shared_links;
  if (shared != nullptr && shared->num_devices != nd) {
    throw std::invalid_argument(
        "oracle_simulate_streaming: shared_links was built for " +
        std::to_string(shared->num_devices) + " devices but the network has " +
        std::to_string(nd));
  }

  Schedule& out = r.schedule;
  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;

  if (bv > 0) {
    const auto dev_of = [&](int t) { return p.device_of(t % bv); };

    std::vector<OracleEvent> pending;
    long next_order = 0;
    std::vector<std::vector<int>> waiting(nd);
    std::vector<double> nic_busy_until(nd, 0.0);
    std::vector<double> link_busy_until(shared != nullptr ? shared->num_links : 0, 0.0);

    const int ntl = trace != nullptr ? static_cast<int>(trace->links.size()) : 0;
    std::vector<TraceSegment> link_state(ntl);
    std::vector<double> link_factor(ntl, 1.0);
    std::vector<std::pair<int, int>> breakpoints;
    if (trace != nullptr) {
      for (int li = 0; li < ntl; ++li) {
        const LinkSchedule& ls = trace->links[li];
        for (int si = 0; si < static_cast<int>(ls.segments.size()); ++si) {
          if (ls.segments[si].time <= 0.0) {
            link_state[li] = ls.segments[si];
            link_factor[li] = (1.0 / ls.segments[si].bandwidth_factor) /
                              (1.0 - ls.segments[si].drop_prob);
          } else {
            pending.push_back(OracleEvent{ls.segments[si].time, next_order++,
                                          kBreakpointEvent,
                                          static_cast<int>(breakpoints.size())});
            breakpoints.emplace_back(li, si);
          }
        }
      }
    }

    auto traced_link_of = [&](int src, int dst) {
      if (trace == nullptr) return -1;
      for (int li = 0; li < ntl; ++li) {
        if (trace->links[li].src == src && trace->links[li].dst == dst &&
            !trace->links[li].segments.empty()) {
          return li;
        }
      }
      return -1;
    };

    std::vector<double> wire_begin(ne, 0.0);
    std::vector<double> wire_factor_of(ne, 1.0);

    auto tasks_running_on = [&](int d) {
      int count = 0;
      for (int t = 0; t < nv; ++t) {
        if (dev_of(t) == d && out.tasks[t].start >= 0.0 && out.tasks[t].finish < 0.0) {
          ++count;
        }
      }
      return count;
    };

    auto begin_execution = [&](int t, double time) {
      const int d = dev_of(t);
      out.tasks[t].start = time;
      const double w = draw(lat.compute_time(g, n, t % bv, d), sopt);
      pending.push_back(OracleEvent{time + w, next_order++, kTaskEvent, t});
    };

    auto on_runnable = [&](int t, double time) {
      const int d = dev_of(t);
      if (waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
        begin_execution(t, time);
      } else {
        waiting[d].push_back(t);
      }
    };

    // Arrival entries for frames >= 1 are created right after the breakpoint
    // entries — before any simulation event — so an arrival at the instant a
    // task finishes takes effect first, exactly like the production core.
    for (int f = 1; f < frames; ++f) {
      pending.push_back(OracleEvent{r.frame_arrival[f], next_order++, kArrivalEvent, f});
    }

    // Frame 0's entry copies are runnable at t = 0 in task-id order.
    for (int v = 0; v < bv; ++v) {
      if (g.in_degree(v) == 0) on_runnable(v, 0.0);
    }

    while (!pending.empty()) {
      std::size_t at = 0;
      for (std::size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].time < pending[at].time ||
            (pending[i].time == pending[at].time && pending[i].order < pending[at].order)) {
          at = i;
        }
      }
      const OracleEvent ev = pending[at];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(at));

      if (ev.kind == kTaskEvent) {
        const int t = ev.id;
        out.tasks[t].finish = ev.time;
        const int d = dev_of(t);
        const int f = t / bv;
        for (int e : g.out_edges(t % bv)) {
          const int ve = f * be + e;  // frame f's copy of base edge e
          const int dst_dev = p.device_of(g.edge(e).dst);
          const double c = draw(lat.comm_time(g, n, e, d, dst_dev), sopt);
          double start = ev.time;
          if (dst_dev != d) {
            if (sopt.serialize_transfers) start = std::max(start, nic_busy_until[d]);
            if (shared != nullptr) {
              for (const int li : shared->links_on(d, dst_dev)) {
                start = std::max(start, link_busy_until[li]);
              }
            }
          }
          double dur = c;
          const int tl = traced_link_of(d, dst_dev);
          if (tl >= 0) {
            const double ce = lat.comm_time(g, n, e, d, dst_dev);
            const double de = lat.comm_startup(g, n, e, d, dst_dev);
            const double dr = ce > 0.0 ? de * (c / ce) : 0.0;
            const double startup = dr + link_state[tl].delay_add;
            dur = startup + (c - dr) * link_factor[tl];
            wire_begin[ve] = start + startup;
            wire_factor_of[ve] = link_factor[tl];
          } else if (trace != nullptr) {
            wire_begin[ve] = start;
            wire_factor_of[ve] = 1.0;
          }
          if (dst_dev != d) {
            if (sopt.serialize_transfers) nic_busy_until[d] = start + dur;
            if (shared != nullptr) {
              for (const int li : shared->links_on(d, dst_dev)) {
                link_busy_until[li] = start + dur;
              }
            }
          }
          out.edge_start[ve] = start;
          pending.push_back(OracleEvent{start + dur, next_order++, kTransferEvent, ve});
        }
        if (!waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
          const int next = waiting[d].front();
          waiting[d].erase(waiting[d].begin());
          begin_execution(next, ev.time);
        }
      } else if (ev.kind == kTransferEvent) {
        const int ve = ev.id;
        out.edge_finish[ve] = ev.time;
        const int f = ve / be;
        const int child = f * bv + g.edge(ve % be).dst;
        bool all_arrived = true;
        for (int in_e : g.in_edges(child % bv)) {
          if (out.edge_finish[f * be + in_e] < 0.0) {
            all_arrived = false;
            break;
          }
        }
        if (all_arrived) on_runnable(child, ev.time);
      } else if (ev.kind == kArrivalEvent) {
        // Frame ev.id enters: its entry copies become runnable in base order.
        for (int v = 0; v < bv; ++v) {
          if (g.in_degree(v) == 0) on_runnable(ev.id * bv + v, ev.time);
        }
      } else {  // kBreakpointEvent
        const int li = breakpoints[ev.id].first;
        const TraceSegment& seg = trace->links[li].segments[breakpoints[ev.id].second];
        link_state[li] = seg;
        const double f_new = (1.0 / seg.bandwidth_factor) / (1.0 - seg.drop_prob);
        link_factor[li] = f_new;
        const int src = trace->links[li].src;
        const int dst = trace->links[li].dst;
        // Ascending virtual-edge-id order matches the production rescale.
        for (int ve = 0; ve < ne; ++ve) {
          if (out.edge_start[ve] < 0.0 || out.edge_finish[ve] >= 0.0) continue;
          const DataLink& bl = g.edge(ve % be);
          if (p.device_of(bl.src) != src || p.device_of(bl.dst) != dst) continue;
          if (wire_factor_of[ve] == f_new) continue;
          std::size_t slot = pending.size();
          for (std::size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].kind == kTransferEvent && pending[i].id == ve) {
              slot = i;
              break;
            }
          }
          if (slot == pending.size()) {
            throw std::logic_error(
                "oracle_simulate_streaming: in-flight edge has no pending event");
          }
          const double anchor = std::max(ev.time, wire_begin[ve]);
          const double remaining = pending[slot].time - anchor;
          if (remaining <= 0.0) {
            wire_factor_of[ve] = f_new;
            continue;
          }
          const double finish = anchor + remaining * (f_new / wire_factor_of[ve]);
          wire_factor_of[ve] = f_new;
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(slot));
          pending.push_back(OracleEvent{finish, next_order++, kTransferEvent, ve});
        }
      }
    }

    for (int t = 0; t < nv; ++t) {
      if (out.tasks[t].finish < 0.0) {
        throw std::logic_error("oracle_simulate_streaming: not all tasks completed");
      }
    }
    double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
    for (const TaskTiming& tt : out.tasks) {
      first_start = std::min(first_start, tt.start);
      last_finish = std::max(last_finish, tt.finish);
    }
    out.makespan = last_finish - first_start;
  }

  // Per-frame metrics, re-derived with the oracle's own arithmetic.
  r.frames = frames;
  r.steady_frame = -1;
  r.frame_finish.assign(frames, 0.0);
  r.frame_latency.assign(frames, 0.0);
  for (int f = 0; f < frames; ++f) {
    double fin = r.frame_arrival[f];
    for (int v = 0; v < bv; ++v) {
      fin = std::max(fin, out.tasks[f * bv + v].finish);
    }
    r.frame_finish[f] = fin;
    r.frame_latency[f] = fin - r.frame_arrival[f];
  }
  r.makespan = out.makespan;
  if (frames > 1) {
    const double span = r.frame_finish[frames - 1] - r.frame_finish[0];
    r.throughput = span > 0.0 ? frames / span
                              : std::numeric_limits<double>::infinity();
  } else {
    r.throughput = r.frame_latency[0] > 0.0
                       ? 1.0 / r.frame_latency[0]
                       : std::numeric_limits<double>::infinity();
  }
  r.p50_latency = oracle_percentile(r.frame_latency, 0.50);
  r.p99_latency = oracle_percentile(r.frame_latency, 0.99);
  return r;
}

// The oracle's reading of "converged": the last steady_window inter-finish
// gaps and steady_window + 1 latencies agree with the final ones within
// steady_tol relative.
int oracle_steady_frame(const StreamResult& r, const StreamOptions& opt) {
  const int m = r.frames;
  const int w = opt.steady_window;
  if (m < w + 1) return -1;
  const double gap_ref = r.frame_finish[m - 1] - r.frame_finish[m - 2];
  const double lat_ref = r.frame_latency[m - 1];
  const double gap_tol = opt.steady_tol * std::max(1.0, std::abs(gap_ref));
  const double lat_tol = opt.steady_tol * std::max(1.0, std::abs(lat_ref));
  for (int f = m - w; f < m; ++f) {
    const double gap = r.frame_finish[f] - r.frame_finish[f - 1];
    if (std::abs(gap - gap_ref) > gap_tol) return -1;
    if (std::abs(r.frame_latency[f] - lat_ref) > lat_tol) return -1;
  }
  if (std::abs(r.frame_latency[m - w - 1] - lat_ref) > lat_tol) return -1;
  return m - w;
}

}  // namespace

StreamResult oracle_simulate_streaming(const TaskGraph& g, const DeviceNetwork& n,
                                       const Placement& p, const LatencyModel& lat,
                                       const StreamOptions& opt) {
  validate_stream_options(opt, "oracle_simulate_streaming");
  if (!placement_feasible(g, n, p)) {
    throw std::invalid_argument("oracle_simulate_streaming: infeasible placement");
  }
  if (!acyclic(g)) {
    throw std::logic_error("oracle_simulate_streaming: cyclic task graph");
  }
  const bool deterministic = opt.sim.noise <= 0.0 && opt.arrival_jitter <= 0.0;
  if (!opt.detect_steady_state || !deterministic) {
    return oracle_stream_frames(g, n, p, lat, opt, opt.frames);
  }
  int prefix = std::min(opt.frames, std::max(2 * opt.steady_window, 8));
  for (;;) {
    StreamResult r = oracle_stream_frames(g, n, p, lat, opt, prefix);
    const int sf = oracle_steady_frame(r, opt);
    if (sf >= 0) {
      r.steady_frame = sf;
      return r;
    }
    if (prefix >= opt.frames) return r;
    prefix = std::min(opt.frames, 2 * prefix);
  }
}

}  // namespace giph
