#include "verify/oracle.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace giph {
namespace {

// One pending event in the oracle's flat event list. `order` is the creation
// index; (time, order) totally orders events, so a linear scan for the
// minimum reproduces exactly the pop sequence any correct priority queue
// would produce.
struct OracleEvent {
  double time = 0.0;
  long order = 0;
  bool transfer = false;  // false = task completion, true = edge arrival
  int id = -1;            // task id or edge id
};

double draw(double expected, const SimOptions& opt) {
  if (opt.noise <= 0.0) return expected;
  std::uniform_real_distribution<double> u(expected * (1.0 - opt.noise),
                                           expected * (1.0 + opt.noise));
  return u(*opt.rng);
}

// First-principles feasibility: every task sits on an in-range device that is
// either its pinned device or supports its hardware-requirement mask.
bool placement_feasible(const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
  if (p.num_tasks() != g.num_tasks()) return false;
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int d = p.device_of(v);
    if (d < 0 || d >= n.num_devices()) return false;
    const Task& t = g.task(v);
    if (t.pinned >= 0) {
      if (d != t.pinned) return false;
    } else if ((t.requires_hw & n.device(d).supports_hw) != t.requires_hw) {
      return false;
    }
  }
  return true;
}

// Own acyclicity check (Kahn's algorithm on a scratch in-degree array), so the
// oracle does not depend on TaskGraph's cached topological order.
bool acyclic(const TaskGraph& g) {
  const int nv = g.num_tasks();
  std::vector<int> indeg(nv, 0);
  for (const DataLink& e : g.edges()) ++indeg[e.dst];
  std::vector<int> frontier;
  for (int v = 0; v < nv; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    ++visited;
    for (int e : g.out_edges(v)) {
      if (--indeg[g.edge(e).dst] == 0) frontier.push_back(g.edge(e).dst);
    }
  }
  return visited == nv;
}

}  // namespace

Schedule oracle_simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, const SimOptions& opt) {
  validate_sim_options(opt, "oracle_simulate");
  if (!placement_feasible(g, n, p)) {
    throw std::invalid_argument("oracle_simulate: infeasible placement");
  }
  if (!acyclic(g)) {
    throw std::logic_error("oracle_simulate: cyclic task graph");
  }

  const int nv = g.num_tasks();
  const int ne = g.num_edges();
  const int nd = n.num_devices();

  Schedule out;
  out.tasks.assign(nv, TaskTiming{-1.0, -1.0});
  out.edge_start.assign(ne, -1.0);
  out.edge_finish.assign(ne, -1.0);
  out.makespan = 0.0;
  if (nv == 0) return out;

  std::vector<OracleEvent> pending;
  long next_order = 0;
  std::vector<std::vector<int>> waiting(nd);  // FIFO of runnable-but-queued tasks
  std::vector<double> nic_busy_until(nd, 0.0);

  // Occupancy is re-derived on demand instead of kept in a counter: a device
  // is running exactly its placed tasks that have started but not finished.
  auto tasks_running_on = [&](int d) {
    int count = 0;
    for (int v = 0; v < nv; ++v) {
      if (p.device_of(v) == d && out.tasks[v].start >= 0.0 && out.tasks[v].finish < 0.0) {
        ++count;
      }
    }
    return count;
  };

  auto begin_execution = [&](int v, double t) {
    const int d = p.device_of(v);
    out.tasks[v].start = t;
    const double w = draw(lat.compute_time(g, n, v, d), opt);
    pending.push_back(OracleEvent{t + w, next_order++, false, v});
  };

  // A task whose inputs have all arrived either begins immediately (free core,
  // nobody queued ahead) or joins its device's FIFO.
  auto on_runnable = [&](int v, double t) {
    const int d = p.device_of(v);
    if (waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
      begin_execution(v, t);
    } else {
      waiting[d].push_back(v);
    }
  };

  // Entry tasks are runnable at t = 0 in task-id order.
  for (int v = 0; v < nv; ++v) {
    if (g.in_degree(v) == 0) on_runnable(v, 0.0);
  }

  while (!pending.empty()) {
    // Earliest (time, creation order) event, found by plain linear scan.
    std::size_t at = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      if (pending[i].time < pending[at].time ||
          (pending[i].time == pending[at].time && pending[i].order < pending[at].order)) {
        at = i;
      }
    }
    const OracleEvent ev = pending[at];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(at));

    if (!ev.transfer) {
      const int v = ev.id;
      out.tasks[v].finish = ev.time;
      const int d = p.device_of(v);
      // Outputs go out to every child's device, in out-edge order:
      // contention-free and concurrent in the paper's model, back-to-back
      // through the sender's NIC when serialize_transfers is on.
      for (int e : g.out_edges(v)) {
        const int dst_dev = p.device_of(g.edge(e).dst);
        const double c = draw(lat.comm_time(g, n, e, d, dst_dev), opt);
        double start = ev.time;
        if (opt.serialize_transfers && dst_dev != d) {
          start = std::max(start, nic_busy_until[d]);
          nic_busy_until[d] = start + c;
        }
        out.edge_start[e] = start;
        pending.push_back(OracleEvent{start + c, next_order++, true, e});
      }
      // The freed core serves the next queued task, if any.
      if (!waiting[d].empty() && tasks_running_on(d) < n.device(d).cores) {
        const int next = waiting[d].front();
        waiting[d].erase(waiting[d].begin());
        begin_execution(next, ev.time);
      }
    } else {
      const int e = ev.id;
      out.edge_finish[e] = ev.time;
      const int child = g.edge(e).dst;
      // Re-scan the child's inputs from scratch: it becomes runnable exactly
      // when its last input arrives.
      bool all_arrived = true;
      for (int in_e : g.in_edges(child)) {
        if (out.edge_finish[in_e] < 0.0) {
          all_arrived = false;
          break;
        }
      }
      if (all_arrived) on_runnable(child, ev.time);
    }
  }

  for (int v = 0; v < nv; ++v) {
    if (out.tasks[v].finish < 0.0) {
      throw std::logic_error("oracle_simulate: not all tasks completed");
    }
  }

  double first_start = out.tasks[0].start, last_finish = out.tasks[0].finish;
  for (const TaskTiming& t : out.tasks) {
    first_start = std::min(first_start, t.start);
    last_finish = std::max(last_finish, t.finish);
  }
  out.makespan = last_finish - first_start;
  return out;
}

}  // namespace giph
