#pragma once

#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "sim/stream.hpp"

namespace giph {

/// Result of validating a Schedule against first principles. Empty violations
/// means the schedule is consistent with the Appendix B.5 execution model.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const noexcept { return violations.empty(); }
  /// All violations joined into one newline-separated string ("" when ok).
  std::string summary() const;
};

/// What check_schedule is allowed to assume about how the schedule was
/// produced. Mirrors the SimOptions the simulation ran with.
struct CheckOptions {
  /// Noise sigma the run used. 0 demands exact Eq. 2-3 durations; sigma > 0
  /// relaxes every duration to the draw interval [x(1-sigma), x(1+sigma)].
  double noise = 0.0;
  /// The run serialized remote sends through per-device NICs: transfers may
  /// start after the producer finished, but a device's remote sends must not
  /// overlap each other.
  bool serialize_transfers = false;
  /// Fault-injection runs: tasks with finish < 0 are stranded, not missing.
  /// Completed tasks are still held to precedence / capacity / FIFO rules,
  /// but duration checks and start-time provenance are skipped (faults
  /// rescale in-flight work).
  bool allow_incomplete = false;
  /// The run used this NetworkTrace (SimOptions::trace). Duration checks are
  /// skipped for edges on traced links (breakpoints rescale in-flight wire
  /// time), and NIC / shared-link non-overlap checks are skipped entirely (a
  /// rescale can stretch a transfer past its dispatch-time reservation).
  /// Everything else - precedence, capacity, FIFO, makespan - still holds.
  const NetworkTrace* trace = nullptr;
  /// The run used shared-link contention (SimOptions::shared_links):
  /// transfers whose route is non-empty may start after their producer
  /// finishes (queued behind a busy physical link), and transfers crossing a
  /// common physical link must not overlap (checked unless a trace or
  /// allow_incomplete forbids it).
  const SharedLinkMap* shared_links = nullptr;
  /// Optional per-task release times (streaming: the frame arrival of each
  /// replicated task). A task's ready time starts from its release instead of
  /// 0 — entry tasks must not start before it, and FIFO / work-conservation
  /// provenance is judged against it. Size must equal the graph's task count;
  /// nullptr means every task is releasable at t = 0 (the one-shot model).
  const std::vector<double>* release_times = nullptr;
};

/// Validates `sched` for (g, n, p, lat) against first principles, sharing no
/// logic with the simulator:
///   - shape: per-task and per-edge arrays sized to the graph;
///   - placement: every task on an in-range device satisfying its pin and
///     hardware-requirement mask;
///   - sanity: starts/finishes finite, start <= finish, nothing before t = 0;
///   - precedence: each transfer starts at (without contention: exactly at)
///     its producer's finish, finishes after it starts, and its consumer
///     starts no earlier than the arrival of every input;
///   - durations: noise-free runs must reproduce the latency model exactly
///     (finish == start + w bitwise, same for edges); noisy runs must stay
///     inside the draw interval;
///   - capacity: at no time does a device run more tasks than it has cores
///     (a finish and a start at the same instant do not overlap);
///   - FIFO: tasks on one device start in the order their inputs arrived
///     (strictly earlier ready time implies no later start);
///   - work conservation: a task starts either the moment it became ready or
///     the moment another task on its device finished (complete runs only);
///   - NIC: under serialize_transfers, a device's remote sends are pairwise
///     non-overlapping;
///   - makespan equals max finish - min start over (completed) tasks.
///
/// Reports every violation found, not just the first.
InvariantReport check_schedule(const TaskGraph& g, const DeviceNetwork& n,
                               const Placement& p, const LatencyModel& lat,
                               const Schedule& sched, const CheckOptions& opt = {});

/// Validates a fault-injection run: runs check_schedule in allow_incomplete
/// mode (durations unchecked - faults rescale in-flight work) and additionally
/// checks the stranded bookkeeping: `stranded` lists exactly the unfinished
/// tasks in ascending order, stranded tasks have no recorded start, and every
/// completed task's parents all completed with their transfers delivered.
InvariantReport check_fault_result(const TaskGraph& g, const DeviceNetwork& n,
                                   const Placement& p, const LatencyModel& lat,
                                   const FaultSimResult& result,
                                   const CheckOptions& opt = {});

/// Validates a streaming run from first principles: rebuilds the
/// frame-replicated instance itself (F copies of g, same device per frame,
/// latency model consulted with base ids, per-task release = frame arrival),
/// runs check_schedule over it with the release-aware ready times, and then
/// checks the streaming contract proper:
///   - bookkeeping: frames within [1, opt.frames], per-frame arrays sized to
///     it, schedule arrays sized frames * V / frames * E;
///   - arrivals: start at 0, non-decreasing, each gap equal to the interval
///     (jitter-free) or inside [interval(1-j), interval(1+j)];
///   - per-frame finish = max(arrival, task finishes of the frame) and
///     latency = finish - arrival, bitwise;
///   - monotone frame completion (noise-free runs only: noise can let a later
///     frame overtake an earlier one);
///   - throughput = frames / (last finish - first finish) bitwise (frames > 1;
///     1 / latency for a single frame), p50/p99 = nearest-rank percentiles of
///     the frame latencies, makespan = the replicated schedule's makespan;
///   - steady_frame, when set, names a tail window that converged within
///     steady_tol.
InvariantReport check_stream_result(const TaskGraph& g, const DeviceNetwork& n,
                                    const Placement& p, const LatencyModel& lat,
                                    const StreamResult& result,
                                    const StreamOptions& opt);

}  // namespace giph
