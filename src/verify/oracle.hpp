#pragma once

#include "sim/simulator.hpp"

namespace giph {

/// Reference oracle simulator: an independent, deliberately naive
/// re-implementation of the Appendix B.5 execution model, used only to
/// cross-check the production simulator (differential testing).
///
/// Semantics implemented from first principles, sharing nothing with
/// simulate() beyond the data types:
///   - each device runs at most `cores` tasks at a time, non-preemptively,
///     serving runnable tasks in the order they became runnable (FIFO);
///   - a task is runnable once every parent output has arrived at its device;
///     entry tasks are runnable at t = 0 in task-id order;
///   - transfers are contention-free and overlap with computation
///     (opt.serialize_transfers queues a device's remote sends at its NIC);
///   - latencies follow the LatencyModel (Eqs. 2-3 for the default model);
///   - with opt.noise > 0, every realized duration is drawn uniformly from
///     [x(1-sigma), x(1+sigma)], one draw per task start and per transfer;
///   - opt.trace applies piecewise-constant link conditions: breakpoints act
///     before same-time sim events and rescale the remaining wire time of
///     in-flight transfers (startup exempt), exactly like the simulator;
///   - opt.shared_links queues transfers behind every busy physical link of
///     their projected route.
///
/// Implementation is a direct event-list interpretation: pending events live
/// in a flat list scanned linearly for the earliest (time, creation order)
/// entry; runnability is re-derived by scanning a task's in-edges; device
/// occupancy is re-counted by scanning started-but-unfinished tasks. No event
/// heap, no dependency counters, no workspace reuse, no index structures -
/// O(V * E * D)-ish and proud of it. The output is bitwise identical to
/// simulate() for every input, including the noise draw sequence.
///
/// Throws std::invalid_argument for bad options or infeasible placements and
/// std::logic_error for cyclic graphs, like simulate(). Does not count toward
/// simulation_count(): the oracle is a verifier, not a production code path.
Schedule oracle_simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, const SimOptions& opt = {});

}  // namespace giph
