#pragma once

#include "sim/simulator.hpp"
#include "sim/stream.hpp"

namespace giph {

/// Reference oracle simulator: an independent, deliberately naive
/// re-implementation of the Appendix B.5 execution model, used only to
/// cross-check the production simulator (differential testing).
///
/// Semantics implemented from first principles, sharing nothing with
/// simulate() beyond the data types:
///   - each device runs at most `cores` tasks at a time, non-preemptively,
///     serving runnable tasks in the order they became runnable (FIFO);
///   - a task is runnable once every parent output has arrived at its device;
///     entry tasks are runnable at t = 0 in task-id order;
///   - transfers are contention-free and overlap with computation
///     (opt.serialize_transfers queues a device's remote sends at its NIC);
///   - latencies follow the LatencyModel (Eqs. 2-3 for the default model);
///   - with opt.noise > 0, every realized duration is drawn uniformly from
///     [x(1-sigma), x(1+sigma)], one draw per task start and per transfer;
///   - opt.trace applies piecewise-constant link conditions: breakpoints act
///     before same-time sim events and rescale the remaining wire time of
///     in-flight transfers (startup exempt), exactly like the simulator;
///   - opt.shared_links queues transfers behind every busy physical link of
///     their projected route.
///
/// Implementation is a direct event-list interpretation: pending events live
/// in a flat list scanned linearly for the earliest (time, creation order)
/// entry; runnability is re-derived by scanning a task's in-edges; device
/// occupancy is re-counted by scanning started-but-unfinished tasks. No event
/// heap, no dependency counters, no workspace reuse, no index structures -
/// O(V * E * D)-ish and proud of it. The output is bitwise identical to
/// simulate() for every input, including the noise draw sequence.
///
/// Throws std::invalid_argument for bad options or infeasible placements and
/// std::logic_error for cyclic graphs, like simulate(). Does not count toward
/// simulation_count(): the oracle is a verifier, not a production code path.
Schedule oracle_simulate(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                         const LatencyModel& lat, const SimOptions& opt = {});

/// Reference streaming simulator: the oracle's flat event replay generalized
/// to iterated-graph execution, independent of simulate_streaming(). Frame f
/// of task v is the virtual task f * V + v (virtual edge f * E + e); the
/// oracle keeps flat per-virtual-id arrays, maps ids back to the base
/// instance when consulting the latency model, and interprets the streaming
/// semantics from first principles:
///   - all F - 1 inter-arrival gaps are drawn up front in frame order
///     (uniform [interval(1-j), interval(1+j)] when jittered), before any
///     simulation draw;
///   - frame 0's entries are runnable at t = 0 in task-id order; frame f's
///     copies become runnable at its arrival time, via arrival entries
///     created at init (so an arrival beats same-time sim events, exactly
///     like the production event core);
///   - devices serve one FIFO across frames; NIC serialization, shared-link
///     reservations, traces, and noise span frame boundaries;
///   - per-frame finish/latency, throughput, nearest-rank p50/p99, and the
///     steady-state doubling detection are re-derived with the oracle's own
///     arithmetic.
/// Output is bitwise identical to simulate_streaming() for every input,
/// including the draw sequence; throws like it.
StreamResult oracle_simulate_streaming(const TaskGraph& g, const DeviceNetwork& n,
                                       const Placement& p, const LatencyModel& lat,
                                       const StreamOptions& opt = {});

}  // namespace giph
