#pragma once

#include "casestudy/mobility.hpp"
#include "eval/robustness_eval.hpp"

namespace giph::casestudy {

/// Parameters of the mobility-driven churn scenario (Section 5.3 flavor):
/// base stations sit at grid intersections and are always up; vehicles carry
/// mobile devices that join the network when they drive within `range_m` of a
/// base station and leave when they drive out. Links drift every epoch with
/// the Appendix B.4 distance model, BW = bw0 * exp(-d / bw_decay) Mbps.
struct ChurnScriptParams {
  MobilityParams mobility{};
  /// Base (always-up) devices, placed round-robin over the intersections.
  int base_devices = 3;
  /// A vehicle's device is up iff it is within range_m of some base device.
  double range_m = 250.0;
  double epoch_s = 10.0;  ///< mobility time between epochs
  int epochs = 12;
  double base_speed = 2.0;    ///< compute speed of base devices
  double mobile_speed = 1.0;  ///< mean compute speed of vehicle devices
  /// Per-device multiplicative speed jitter, uniform in [1-j, 1+j], drawn
  /// once from `seed` (heterogeneity, not noise).
  double speed_jitter = 0.25;
  int base_cores = 2;  ///< base devices are small servers
  double bw0_mbps = 60.0;  ///< wireless BW = max(min_bw, bw0 * exp(-d/decay))
  double bw_decay_m = 100.0;
  double min_bw_mbps = 2.0;
  double wireless_delay_ms = 2.0;
  double wired_bw_mbps = 100.0;  ///< base <-> base backhaul
  double wired_delay_ms = 0.1;
  std::uint64_t seed = 1;
};

/// Builds a deterministic churn scenario from grid mobility: one epoch every
/// epoch_s seconds over a fixed universe of base_devices + num_vehicles
/// devices. Base devices are always up with wired links among themselves;
/// vehicle devices are up while in range, with wireless links (to every other
/// up device) whose bandwidth follows the distance model of the epoch's
/// positions. The same params always yield the same script.
eval::ChurnScript generate_churn_script(const ChurnScriptParams& params);

}  // namespace giph::casestudy
