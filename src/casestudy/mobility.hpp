#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace giph::casestudy {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

inline double distance_m(const Vec2& a, const Vec2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Parameters of the grid-mobility substitute for the paper's SUMO traces: a
/// rows x cols grid of intersections spaced block_m apart, with vehicles
/// driving Manhattan routes between random intersections at constant speed.
struct MobilityParams {
  int grid_rows = 3;
  int grid_cols = 3;
  double block_m = 150.0;
  double speed_mps = 12.0;
  int num_vehicles = 12;
  std::uint64_t seed = 1;
};

/// Deterministic (seeded) vehicle mobility on a city grid. Preserves what the
/// placement problem depends on: CAV-to-RSU distances changing smoothly over
/// time as vehicles move through the area.
class GridMobility {
 public:
  explicit GridMobility(const MobilityParams& params);

  /// Advances all vehicles by `seconds`.
  void advance(double seconds);

  const std::vector<Vec2>& positions() const noexcept { return positions_; }
  int num_vehicles() const noexcept { return static_cast<int>(positions_.size()); }

  /// World coordinates of intersection (r, c).
  Vec2 intersection(int r, int c) const;
  int num_intersections() const noexcept {
    return params_.grid_rows * params_.grid_cols;
  }
  /// Intersection index -> coordinates (row-major).
  Vec2 intersection(int index) const;

 private:
  void pick_new_target(int vehicle);

  MobilityParams params_;
  std::vector<Vec2> positions_;
  std::vector<Vec2> targets_;
  std::mt19937_64 rng_;
};

}  // namespace giph::casestudy
