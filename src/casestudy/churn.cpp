#include "casestudy/churn.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "casestudy/sensor_fusion.hpp"

namespace giph::casestudy {

eval::ChurnScript generate_churn_script(const ChurnScriptParams& params) {
  if (params.base_devices < 1) {
    throw std::invalid_argument("generate_churn_script: base_devices must be >= 1 (got " +
                                std::to_string(params.base_devices) +
                                "); an epoch with every vehicle out of range would "
                                "otherwise have no device up");
  }
  if (params.epochs < 1) {
    throw std::invalid_argument("generate_churn_script: epochs must be >= 1 (got " +
                                std::to_string(params.epochs) + ")");
  }

  GridMobility mobility(params.mobility);
  const int nb = params.base_devices;
  const int nv = mobility.num_vehicles();
  const int m = nb + nv;

  // The fixed universe: heterogeneity is drawn once, up front, so every
  // epoch's network differs only in membership and link quality.
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> jitter(1.0 - params.speed_jitter,
                                                1.0 + params.speed_jitter);
  DeviceNetwork universe;
  std::vector<Vec2> base_pos;
  for (int b = 0; b < nb; ++b) {
    Device d;
    d.speed = params.base_speed * jitter(rng);
    d.cores = params.base_cores;
    d.name = "base" + std::to_string(b);
    universe.add_device(d);
    base_pos.push_back(mobility.intersection(b % mobility.num_intersections()));
  }
  for (int v = 0; v < nv; ++v) {
    Device d;
    d.speed = params.mobile_speed * jitter(rng);
    d.name = "cav" + std::to_string(v);
    universe.add_device(d);
  }

  const double wired_bw = params.wired_bw_mbps * kMbpsToBytesPerMs;
  const auto wireless_bw = [&](const Vec2& a, const Vec2& b) {
    const double mbps = std::max(
        params.min_bw_mbps, params.bw0_mbps * std::exp(-distance_m(a, b) / params.bw_decay_m));
    return mbps * kMbpsToBytesPerMs;
  };

  eval::ChurnScript script;
  for (int t = 0; t < params.epochs; ++t) {
    if (t > 0) mobility.advance(params.epoch_s);
    eval::ChurnEpoch epoch;
    epoch.time = t * params.epoch_s;
    epoch.network = universe;
    epoch.up.assign(m, 0);
    for (int b = 0; b < nb; ++b) epoch.up[b] = 1;
    const std::vector<Vec2>& pos = mobility.positions();
    for (int v = 0; v < nv; ++v) {
      for (const Vec2& bp : base_pos) {
        if (distance_m(pos[v], bp) <= params.range_m) {
          epoch.up[nb + v] = 1;
          break;
        }
      }
    }
    // Links over the whole universe (compaction ignores down devices):
    // base <-> base is wired backhaul, anything touching a vehicle is
    // wireless with the distance model at this epoch's positions.
    const auto pos_of = [&](int k) { return k < nb ? base_pos[k] : pos[k - nb]; };
    for (int k = 0; k < m; ++k) {
      for (int l = k + 1; l < m; ++l) {
        if (k < nb && l < nb) {
          epoch.network.set_symmetric_link(k, l, wired_bw, params.wired_delay_ms);
        } else {
          epoch.network.set_symmetric_link(k, l, wireless_bw(pos_of(k), pos_of(l)),
                                           params.wireless_delay_ms);
        }
      }
    }
    script.epochs.push_back(std::move(epoch));
  }
  return script;
}

}  // namespace giph::casestudy
