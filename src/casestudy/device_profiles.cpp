#include "casestudy/device_profiles.hpp"

#include <cmath>
#include <stdexcept>

namespace giph::casestudy {
namespace {

// Table 1: mean +- std running time (ms) per (task, device type).
constexpr Measurement kRuntimes[kNumFusionTasks][kNumDeviceTypes] = {
    /* CAMERA     */ {{53.0, 22.0}, {36.0, 8.0}, {9.0, 4.0}},
    /* LIDAR      */ {{14.0, 3.0}, {7.0, 3.0}, {3.0, 2.0}},
    /* CAV FUSION */ {{35.0, 9.0}, {35.0, 4.0}, {11.0, 9.0}},
    /* RSU FUSION */ {{250.0, 430.0}, {250.0, 370.0}, {28.0, 22.0}},
};

// Table 2: relocation overhead measurements.
constexpr RelocationProfile kRelocation[kNumFusionTasks] = {
    /* CAMERA     */ {11494.0, 72173.525, 4273.73, 794.66},
    /* LIDAR      */ {560.0, 24.576, 60.98, 9.26},
    /* CAV FUSION */ {11796.0, 38.110, 0.39, 0.11},
    /* RSU FUSION */ {20907.0, 38.950, 2.83, 1.00},
};

}  // namespace

Measurement measured_runtime(FusionTask task, DeviceType type) {
  return kRuntimes[static_cast<int>(task)][static_cast<int>(type)];
}

RelocationProfile relocation_profile(FusionTask task) {
  return kRelocation[static_cast<int>(task)];
}

double startup_ms(FusionTask task, DeviceType type) {
  const RelocationProfile& p = kRelocation[static_cast<int>(task)];
  switch (type) {
    case DeviceType::kTypeA: return p.startup_ms_type_a;
    case DeviceType::kTypeC: return p.startup_ms_type_c;
    case DeviceType::kTypeB:
      return std::sqrt(p.startup_ms_type_a * p.startup_ms_type_c);
  }
  throw std::invalid_argument("startup_ms: unknown device type");
}

double relocation_cost_ms(FusionTask task, DeviceType type, double bw_bytes_per_ms) {
  if (bw_bytes_per_ms <= 0.0) {
    throw std::invalid_argument("relocation_cost_ms: bandwidth must be positive");
  }
  const RelocationProfile& p = kRelocation[static_cast<int>(task)];
  const double bytes = p.migration_bytes + p.static_init_kb * 1024.0;
  return bytes / bw_bytes_per_ms + startup_ms(task, type);
}

LatencyFit fit_latency_model(int iterations) {
  LatencyFit fit;
  fit.time_per_unit = {1.0, 1.0, 1.0};
  fit.startup = {0.0, 0.0, 0.0};
  for (int i = 0; i < kNumFusionTasks; ++i) fit.task_compute[i] = 1.0;

  for (int it = 0; it < iterations; ++it) {
    // Given (T, S), each C_i has a closed-form least-squares solution.
    for (int i = 0; i < kNumFusionTasks; ++i) {
      double num = 0.0, den = 0.0;
      for (int j = 0; j < kNumDeviceTypes; ++j) {
        const double mu = kRuntimes[i][j].mean_ms;
        num += fit.time_per_unit[j] * (mu - fit.startup[j]);
        den += fit.time_per_unit[j] * fit.time_per_unit[j];
      }
      fit.task_compute[i] = std::max(1e-9, num / den);
    }
    // Given C, each column (T_j, S_j) is a 1-D linear regression of mu on C,
    // constrained to non-negative values.
    for (int j = 0; j < kNumDeviceTypes; ++j) {
      double sc = 0.0, sm = 0.0, scc = 0.0, scm = 0.0;
      for (int i = 0; i < kNumFusionTasks; ++i) {
        const double c = fit.task_compute[i];
        const double mu = kRuntimes[i][j].mean_ms;
        sc += c;
        sm += mu;
        scc += c * c;
        scm += c * mu;
      }
      const int n = kNumFusionTasks;
      const double den = n * scc - sc * sc;
      double t = den != 0.0 ? (n * scm - sc * sm) / den : 1.0;
      t = std::max(t, 1e-9);
      double s = (sm - t * sc) / n;
      s = std::max(s, 0.0);
      fit.time_per_unit[j] = t;
      fit.startup[j] = s;
    }
    // Fix the scale: mean T = 1.
    const double mean_t =
        (fit.time_per_unit[0] + fit.time_per_unit[1] + fit.time_per_unit[2]) / 3.0;
    for (double& t : fit.time_per_unit) t /= mean_t;
    for (double& c : fit.task_compute) c *= mean_t;
  }

  double sq = 0.0;
  for (int i = 0; i < kNumFusionTasks; ++i) {
    for (int j = 0; j < kNumDeviceTypes; ++j) {
      const double r = fit.predict_ms(static_cast<FusionTask>(i),
                                      static_cast<DeviceType>(j)) -
                       kRuntimes[i][j].mean_ms;
      sq += r * r;
    }
  }
  fit.rms_residual_ms = std::sqrt(sq / (kNumFusionTasks * kNumDeviceTypes));
  return fit;
}

double device_power_w(DeviceType type) {
  switch (type) {
    case DeviceType::kTypeA: return 10.0;   // Jetson Nano class
    case DeviceType::kTypeB: return 15.0;   // Jetson TX2 class
    case DeviceType::kTypeC: return 180.0;  // desktop CPU + GTX 1080
  }
  throw std::invalid_argument("device_power_w: unknown device type");
}

}  // namespace giph::casestudy
