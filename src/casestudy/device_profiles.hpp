#pragma once

#include <array>

namespace giph::casestudy {

/// Device types measured in the paper's case study (Section 5.3).
enum class DeviceType : int {
  kTypeA = 0,  ///< NVIDIA Jetson Nano
  kTypeB = 1,  ///< NVIDIA Jetson TX2
  kTypeC = 2,  ///< Core i7 7700K + GTX 1080
};

/// Tasks of the cooperative sensor-fusion pipeline (Andert & Shrivastava 2022).
enum class FusionTask : int {
  kCamera = 0,     ///< camera object detection
  kLidar = 1,      ///< LIDAR object detection
  kCavFusion = 2,  ///< per-CAV data fusion
  kRsuFusion = 3,  ///< per-RSU data fusion / trajectory planning
};

inline constexpr int kNumDeviceTypes = 3;
inline constexpr int kNumFusionTasks = 4;

/// One profiled running-time entry (milliseconds).
struct Measurement {
  double mean_ms = 0.0;
  double std_ms = 0.0;
};

/// Measured running time of `task` on `type` (the paper's Table 1).
Measurement measured_runtime(FusionTask task, DeviceType type);

/// Per-task relocation overhead measurements (the paper's Table 2).
struct RelocationProfile {
  double migration_bytes = 0.0;   ///< dynamic state migrated on relocation
  double static_init_kb = 0.0;    ///< static initialization data (KB)
  double startup_ms_type_a = 0.0; ///< measured startup time on Type A
  double startup_ms_type_c = 0.0; ///< measured startup time on Type C
};

RelocationProfile relocation_profile(FusionTask task);

/// Startup time of `task` on `type`. Types A and C are measured; Type B is
/// interpolated geometrically between them (its compute capability sits
/// between the two Jetson-class extremes in Table 1).
double startup_ms(FusionTask task, DeviceType type);

/// Relocation cost of moving `task` to a device of `type` over a link with
/// bandwidth `bw_bytes_per_ms`: migration + static-data transfer time plus
/// the startup time on the destination (Section 5.3).
double relocation_cost_ms(FusionTask task, DeviceType type, double bw_bytes_per_ms);

/// Affine latency model mu_ij ~= C_i * T_j + S_j fit from Table 1 (Appendix
/// B.4): task compute requirements C, per-type time-per-unit-compute T and
/// startup S.
struct LatencyFit {
  std::array<double, kNumFusionTasks> task_compute{};   ///< C_i
  std::array<double, kNumDeviceTypes> time_per_unit{};  ///< T_j
  std::array<double, kNumDeviceTypes> startup{};        ///< S_j
  double rms_residual_ms = 0.0;

  double predict_ms(FusionTask task, DeviceType type) const {
    return task_compute[static_cast<int>(task)] * time_per_unit[static_cast<int>(type)] +
           startup[static_cast<int>(type)];
  }
};

/// Fits the affine model with alternating least squares (the scale ambiguity
/// is fixed by normalizing T over types to mean 1). Deterministic.
LatencyFit fit_latency_model(int iterations = 200);

/// Nominal compute power draw (watts) per device type, used by the
/// energy-cost objective of Fig. 11 (right).
double device_power_w(DeviceType type);

/// Nominal radio transmit power (watts) for communication energy.
inline constexpr double kTxPowerW = 2.0;

}  // namespace giph::casestudy
