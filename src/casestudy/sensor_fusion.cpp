#include "casestudy/sensor_fusion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace giph::casestudy {
namespace {

// Inter-task data volumes (bytes), estimated from the Table 2 deployment
// measurements (a task's migration payload approximates its working output).
double output_bytes(FusionTask task) {
  switch (task) {
    case FusionTask::kCamera: return 11494.0;
    case FusionTask::kLidar: return 560.0;
    case FusionTask::kCavFusion: return 11796.0;
    case FusionTask::kRsuFusion: return 20907.0;
  }
  return 0.0;
}

}  // namespace

CaseStudyParams paper_scale_params() {
  CaseStudyParams p;
  p.mobility.grid_rows = 6;
  p.mobility.grid_cols = 6;
  p.mobility.block_m = 300.0;  // 1.5 km span; RSU coverage overlaps like Tempe's
  p.mobility.num_vehicles = 40;
  p.edge_devices_a = 10;
  p.edge_devices_b = 10;
  p.edge_devices_c = 20;
  p.cis_per_rsu = 4;
  return p;
}

SensorFusionWorld::SensorFusionWorld(const CaseStudyParams& params)
    : params_(params),
      mobility_(params.mobility),
      fit_(fit_latency_model()),
      rng_(params.seed ^ 0x5f5f5f5fULL) {
  const double width = (params.mobility.grid_cols - 1) * params.mobility.block_m;
  const double height = (params.mobility.grid_rows - 1) * params.mobility.block_m;
  std::uniform_real_distribution<double> ux(0.0, std::max(width, 1.0));
  std::uniform_real_distribution<double> uy(0.0, std::max(height, 1.0));
  auto place = [&](int count, DeviceType t) {
    for (int i = 0; i < count; ++i) {
      edge_pos_.push_back(Vec2{ux(rng_), uy(rng_)});
      edge_type_.push_back(t);
    }
  };
  place(params.edge_devices_a, DeviceType::kTypeA);
  place(params.edge_devices_b, DeviceType::kTypeB);
  place(params.edge_devices_c, DeviceType::kTypeC);

  std::bernoulli_distribution is_tx2(0.5);
  cav_type_.resize(params.mobility.num_vehicles);
  for (auto& t : cav_type_) t = is_tx2(rng_) ? DeviceType::kTypeB : DeviceType::kTypeA;
}

std::optional<SensorFusionCase> SensorFusionWorld::next_case() {
  mobility_.advance(params_.snapshot_period_s);
  const auto& cavs = mobility_.positions();

  // Active RSUs: at least one CAV within range; each CAV reports to its
  // nearest in-range RSU.
  const int num_rsus = mobility_.num_intersections();
  std::vector<int> cav_rsu(cavs.size(), -1);
  std::vector<bool> active(num_rsus, false);
  for (std::size_t v = 0; v < cavs.size(); ++v) {
    double best = params_.rsu_range_m;
    for (int r = 0; r < num_rsus; ++r) {
      const double d = distance_m(cavs[v], mobility_.intersection(r));
      if (d <= best) {
        best = d;
        cav_rsu[v] = r;
      }
    }
    if (cav_rsu[v] >= 0) active[cav_rsu[v]] = true;
  }
  if (std::none_of(active.begin(), active.end(), [](bool b) { return b; })) {
    return std::nullopt;
  }

  SensorFusionCase c;
  c.pipeline_hz = params_.pipeline_hz;

  // ---- devices: RSUs, edge devices, active CAVs, CIS cameras -------------
  std::vector<Vec2> dev_pos;
  std::vector<bool> dev_wired;  // wired backhaul (RSUs and CIS cameras)
  auto add_device = [&](DeviceType t, HwMask supports, const Vec2& pos, bool wired,
                        std::string name) {
    Device d;
    const int ti = static_cast<int>(t);
    d.speed = 1.0 / fit_.time_per_unit[ti];
    d.startup = fit_.startup[ti];
    d.supports_hw = supports;
    d.type = ti;
    d.name = std::move(name);
    const int id = c.network.add_device(std::move(d));
    c.device_type.push_back(t);
    dev_pos.push_back(pos);
    dev_wired.push_back(wired);
    return id;
  };

  // Infrastructure devices participate only near the action (device_radius_m
  // of an active RSU); remote infrastructure is irrelevant to this case.
  const auto near_active = [&](const Vec2& pos) {
    for (int r = 0; r < num_rsus; ++r) {
      if (active[r] && distance_m(pos, mobility_.intersection(r)) <= params_.device_radius_m) {
        return true;
      }
    }
    return false;
  };
  std::vector<int> rsu_dev(num_rsus, -1);
  for (int r = 0; r < num_rsus; ++r) {
    if (!active[r] && !near_active(mobility_.intersection(r))) continue;
    rsu_dev[r] = add_device(DeviceType::kTypeC, kGpuBit | kCpuBit,
                            mobility_.intersection(r), true, "rsu" + std::to_string(r));
  }
  for (std::size_t i = 0; i < edge_pos_.size(); ++i) {
    if (!near_active(edge_pos_[i])) continue;
    add_device(edge_type_[i], kGpuBit | kCpuBit, edge_pos_[i], false,
               "edge" + std::to_string(i));
  }
  std::vector<int> cav_dev(cavs.size(), -1);
  for (std::size_t v = 0; v < cavs.size(); ++v) {
    if (cav_rsu[v] < 0) continue;  // out of range: not part of this case
    cav_dev[v] = add_device(cav_type_[v], kGpuBit | kCpuBit, cavs[v], false,
                            "cav" + std::to_string(v));
  }
  // CIS cameras of active intersections: pure sensor hosts (no compute
  // capability bits), wired to their RSU.
  std::vector<std::vector<int>> cis_dev(num_rsus);
  for (int r = 0; r < num_rsus; ++r) {
    if (!active[r]) continue;
    for (int k = 0; k < params_.cis_per_rsu; ++k) {
      Vec2 pos = mobility_.intersection(r);
      pos.x += (k % 2 == 0 ? 20.0 : -20.0);
      pos.y += (k < 2 ? 20.0 : -20.0);
      cis_dev[r].push_back(add_device(DeviceType::kTypeA, 0, pos, true,
                                      "cis" + std::to_string(r) + "_" +
                                          std::to_string(k)));
    }
  }

  // ---- links: wired for co-located infrastructure, RF decaying with
  // distance otherwise (B.4) ---------------------------------------------
  const int m = c.network.num_devices();
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b) {
      const double d = distance_m(dev_pos[a], dev_pos[b]);
      double bw_mbps, delay;
      if (dev_wired[a] && dev_wired[b] && d <= 2.0 * params_.mobility.block_m) {
        bw_mbps = params_.wired_bw_mbps;
        delay = params_.wired_delay_ms;
      } else {
        bw_mbps = std::max(params_.min_bw_mbps,
                           params_.bw0_mbps * std::exp(-d / params_.bw_decay_m));
        delay = params_.wireless_delay_ms;
      }
      c.network.set_symmetric_link(a, b, bw_mbps * kMbpsToBytesPerMs, delay);
    }
  }

  // ---- tasks --------------------------------------------------------------
  auto add_task = [&](double compute, HwMask hw, int pinned, int kind,
                      std::string name) {
    Task t;
    t.compute = compute;
    t.requires_hw = hw;
    t.pinned = pinned;
    t.name = std::move(name);
    const int id = c.graph.add_task(std::move(t));
    c.task_kind.push_back(kind);
    return id;
  };
  const auto C = [&](FusionTask t) { return fit_.task_compute[static_cast<int>(t)]; };

  std::vector<int> rsu_fusion(num_rsus, -1);
  for (int r = 0; r < num_rsus; ++r) {
    if (!active[r]) continue;
    rsu_fusion[r] = add_task(C(FusionTask::kRsuFusion), kCpuBit, -1,
                             static_cast<int>(FusionTask::kRsuFusion),
                             "rsu_fusion" + std::to_string(r));
    for (int cis : cis_dev[r]) {
      const int src = add_task(0.01, 0, cis, -1, "cis_src");
      const int det = add_task(C(FusionTask::kCamera), kGpuBit, -1,
                               static_cast<int>(FusionTask::kCamera), "cis_detect");
      c.graph.add_edge(src, det, params_.camera_raw_bytes);
      c.graph.add_edge(det, rsu_fusion[r], output_bytes(FusionTask::kCamera));
    }
  }
  for (std::size_t v = 0; v < cavs.size(); ++v) {
    const int r = cav_rsu[v];
    if (r < 0) continue;
    const std::string sv = std::to_string(v);
    const int cam_src = add_task(0.01, 0, cav_dev[v], -1, "cam_src" + sv);
    const int cam_det = add_task(C(FusionTask::kCamera), kGpuBit, -1,
                                 static_cast<int>(FusionTask::kCamera),
                                 "cam_detect" + sv);
    const int lid_src = add_task(0.01, 0, cav_dev[v], -1, "lidar_src" + sv);
    const int lid_det = add_task(C(FusionTask::kLidar), kGpuBit, -1,
                                 static_cast<int>(FusionTask::kLidar),
                                 "lidar_detect" + sv);
    const int fusion = add_task(C(FusionTask::kCavFusion), kCpuBit, -1,
                                static_cast<int>(FusionTask::kCavFusion),
                                "cav_fusion" + sv);
    c.graph.add_edge(cam_src, cam_det, params_.camera_raw_bytes);
    c.graph.add_edge(lid_src, lid_det, params_.lidar_raw_bytes);
    c.graph.add_edge(cam_det, fusion, output_bytes(FusionTask::kCamera));
    c.graph.add_edge(lid_det, fusion, output_bytes(FusionTask::kLidar));
    c.graph.add_edge(fusion, rsu_fusion[r], output_bytes(FusionTask::kCavFusion));
  }
  return c;
}

double total_relocation_cost_ms(const SensorFusionCase& c, const Placement& from,
                                const Placement& to) {
  double cost = 0.0;
  for (int v = 0; v < c.graph.num_tasks(); ++v) {
    if (c.task_kind[v] < 0) continue;  // pinned sources never move
    const int a = from.device_of(v);
    const int b = to.device_of(v);
    if (a == b) continue;
    const double bw = c.network.bandwidth(a, b);
    cost += relocation_cost_ms(static_cast<FusionTask>(c.task_kind[v]),
                               c.device_type[b], bw);
  }
  return cost;
}

ScheduleObjective energy_objective(const SensorFusionCase& c, const LatencyModel& lat) {
  return [&c, &lat](const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                    const Schedule&) {
    double joules = 0.0;
    for (int v = 0; v < g.num_tasks(); ++v) {
      const int d = p.device_of(v);
      joules += lat.compute_time(g, n, v, d) / 1000.0 *
                device_power_w(c.device_type[d]);
    }
    for (int e = 0; e < g.num_edges(); ++e) {
      const int a = p.device_of(g.edge(e).src);
      const int b = p.device_of(g.edge(e).dst);
      if (a == b) continue;
      joules += lat.comm_time(g, n, e, a, b) / 1000.0 * kTxPowerW;
    }
    return joules;
  };
}

StreamOptions streaming_options(const SensorFusionCase& c, int frames,
                                double arrival_jitter) {
  StreamOptions opt;
  opt.frames = frames;
  opt.interval = 1000.0 / c.pipeline_hz;  // pipeline period in ms
  opt.arrival_jitter = arrival_jitter;
  return opt;
}

ScheduleObjective relocation_aware_objective(const SensorFusionCase& c,
                                             const LatencyModel& lat, Placement reference,
                                             double amortization_window_s) {
  const double runs = std::max(1.0, c.pipeline_hz * amortization_window_s);
  (void)lat;
  return [&c, reference = std::move(reference), runs](
             const TaskGraph& g, const DeviceNetwork&, const Placement& p,
             const Schedule& sched) {
    (void)g;
    return sched.makespan + total_relocation_cost_ms(c, reference, p) / runs;
  };
}

}  // namespace giph::casestudy
