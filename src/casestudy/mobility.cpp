#include "casestudy/mobility.hpp"

#include <algorithm>
#include <stdexcept>

namespace giph::casestudy {

GridMobility::GridMobility(const MobilityParams& params)
    : params_(params), rng_(params.seed) {
  if (params.grid_rows < 1 || params.grid_cols < 1 || params.num_vehicles < 0) {
    throw std::invalid_argument("GridMobility: bad parameters");
  }
  std::uniform_int_distribution<int> rr(0, params.grid_rows - 1);
  std::uniform_int_distribution<int> cc(0, params.grid_cols - 1);
  positions_.resize(params.num_vehicles);
  targets_.resize(params.num_vehicles);
  for (int v = 0; v < params.num_vehicles; ++v) {
    positions_[v] = intersection(rr(rng_), cc(rng_));
    pick_new_target(v);
  }
}

Vec2 GridMobility::intersection(int r, int c) const {
  if (r < 0 || r >= params_.grid_rows || c < 0 || c >= params_.grid_cols) {
    throw std::out_of_range("GridMobility::intersection");
  }
  return Vec2{c * params_.block_m, r * params_.block_m};
}

Vec2 GridMobility::intersection(int index) const {
  return intersection(index / params_.grid_cols, index % params_.grid_cols);
}

void GridMobility::pick_new_target(int vehicle) {
  std::uniform_int_distribution<int> rr(0, params_.grid_rows - 1);
  std::uniform_int_distribution<int> cc(0, params_.grid_cols - 1);
  targets_[vehicle] = intersection(rr(rng_), cc(rng_));
}

void GridMobility::advance(double seconds) {
  for (int v = 0; v < num_vehicles(); ++v) {
    double budget = seconds * params_.speed_mps;  // distance to cover
    while (budget > 0.0) {
      Vec2& p = positions_[v];
      const Vec2& t = targets_[v];
      // Manhattan route: close the x gap first, then the y gap.
      const double dx = t.x - p.x;
      const double dy = t.y - p.y;
      if (dx == 0.0 && dy == 0.0) {
        pick_new_target(v);
        // A vehicle may draw its own intersection as target; treat that as
        // parking for the remainder of this step.
        if (targets_[v].x == p.x && targets_[v].y == p.y) break;
        continue;
      }
      if (dx != 0.0) {
        const double step = std::min(budget, std::abs(dx));
        p.x += step * (dx > 0 ? 1.0 : -1.0);
        budget -= step;
      } else {
        const double step = std::min(budget, std::abs(dy));
        p.y += step * (dy > 0 ? 1.0 : -1.0);
        budget -= step;
      }
    }
  }
}

}  // namespace giph::casestudy
