#pragma once

#include <optional>

#include "casestudy/device_profiles.hpp"
#include "casestudy/mobility.hpp"
#include "sim/metrics.hpp"

namespace giph::casestudy {

/// Hardware capability bits used by the case study.
inline constexpr HwMask kGpuBit = HwMask{1} << 0;  ///< object detection needs a GPU
inline constexpr HwMask kCpuBit = HwMask{1} << 1;  ///< general compute (fusion tasks)

/// Scenario parameters (Section 5.3 / Appendix B.4). Defaults are scaled
/// down from the paper's 36-RSU Tempe scenario to keep single-core benches
/// fast; `paper_scale_params()` returns the full-size configuration.
struct CaseStudyParams {
  /// Grid of intersections (1 RSU each). The default blocks are 400 m so the
  /// 400 m RSU range creates locality: a CAV interacts with the nearest
  /// intersection or two, not the whole map (keeping case sizes moderate).
  MobilityParams mobility{.block_m = 400.0, .num_vehicles = 6};
  int edge_devices_a = 1;         ///< extra edge devices of Type A
  int edge_devices_b = 1;
  int edge_devices_c = 2;
  int cis_per_rsu = 2;            ///< infrastructure cameras per intersection
  double rsu_range_m = 400.0;     ///< CAV <-> RSU interaction radius
  /// Only infrastructure devices within this distance of an *active* RSU
  /// participate in a case (placement candidates near the action); keeps the
  /// device set - and hence the gpNet - proportional to local activity.
  double device_radius_m = 800.0;
  double bw0_mbps = 60.0;         ///< BW = bw0 * exp(-d / bw_decay) Mbps (B.4)
  double bw_decay_m = 100.0;
  double min_bw_mbps = 2.0;       ///< floor so far links stay finite (LTE-class)
  double wireless_delay_ms = 2.0;
  double wired_bw_mbps = 100.0;   ///< CIS cameras are wired to their RSU
  double wired_delay_ms = 0.1;
  double camera_raw_bytes = 300e3;  ///< compressed camera frame
  double lidar_raw_bytes = 100e3;   ///< LIDAR scan
  double snapshot_period_s = 10.0;  ///< trace sampling interval (paper: 10 s)
  double pipeline_hz = 10.0;        ///< sensor pipeline run frequency
  std::uint64_t seed = 1;
};

/// The paper-scale configuration: 6x6 intersections (36 RSUs), 40 edge
/// devices (10 A / 10 B / 20 C), 4 CIS per RSU.
CaseStudyParams paper_scale_params();

/// One placement problem extracted from the trace: the sensor-fusion task
/// graph of every active intersection at a snapshot, the reachable device
/// network, and metadata for the relocation/energy models.
struct SensorFusionCase {
  TaskGraph graph;
  DeviceNetwork network;
  std::vector<int> task_kind;    ///< per task: FusionTask as int, or -1 for pinned sources
  std::vector<DeviceType> device_type;  ///< per device
  double pipeline_hz = 10.0;
};

inline constexpr double kMbpsToBytesPerMs = 125.0;  // 1 Mbps = 125 bytes/ms

/// Simulated world: a grid of RSU-equipped intersections with wired CIS
/// cameras, statically placed edge compute devices, and CAVs moving on the
/// grid. Each call to next_case() advances time by one snapshot period and
/// extracts the placement problem, mirroring the paper's trace collection at
/// 10-second intervals.
class SensorFusionWorld {
 public:
  explicit SensorFusionWorld(const CaseStudyParams& params);

  /// Advances the traffic one snapshot and builds the placement case; empty
  /// when no CAV is within range of any RSU.
  std::optional<SensorFusionCase> next_case();

  const CaseStudyParams& params() const noexcept { return params_; }
  const LatencyFit& latency_fit() const noexcept { return fit_; }
  const GridMobility& mobility() const noexcept { return mobility_; }

 private:
  CaseStudyParams params_;
  GridMobility mobility_;
  LatencyFit fit_;
  std::vector<Vec2> edge_pos_;
  std::vector<DeviceType> edge_type_;
  std::vector<DeviceType> cav_type_;  ///< onboard computer type per vehicle
  std::mt19937_64 rng_;
};

/// Total relocation cost (ms) of switching `from` -> `to`: for every
/// non-source task whose device changed, the Table 2 migration time over the
/// link between old and new device plus the startup time on the destination.
double total_relocation_cost_ms(const SensorFusionCase& c, const Placement& from,
                                const Placement& to);

/// Energy-cost objective (Fig. 11 right): sum of computation energy
/// (time x device power) and communication energy (time x radio power), in
/// joules. Closed-form — the provided schedule is unused.
ScheduleObjective energy_objective(const SensorFusionCase& c, const LatencyModel& lat);

/// Streaming configuration of the sensor pipeline: one frame enters every
/// 1000 / pipeline_hz ms (the paper's pipeline run frequency) for `frames`
/// iterations, with optional arrival jitter (fraction of the interval; needs
/// StreamOptions::sim.rng when > 0, supplied by the caller). This is the
/// flagship streaming scenario: devices pipeline successive sensor frames, so
/// sustained throughput and tail latency - not one-shot makespan - are what a
/// deployment experiences.
StreamOptions streaming_options(const SensorFusionCase& c, int frames,
                                double arrival_jitter = 0.0);

/// Makespan objective augmented with the amortized relocation cost relative
/// to `reference` (the placement currently deployed): relocation cost is
/// divided by the number of pipeline runs it benefits,
/// runs = pipeline_hz * amortization_window_s (Section 5.3, Fig. 11 left).
/// The makespan term reads the caller's schedule; no extra simulation.
ScheduleObjective relocation_aware_objective(const SensorFusionCase& c,
                                             const LatencyModel& lat, Placement reference,
                                             double amortization_window_s);

}  // namespace giph::casestudy
