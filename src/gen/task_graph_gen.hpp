#pragma once

#include <random>

#include "graph/task_graph.hpp"

namespace giph {

/// Parameters of the parametric random task-graph generator (Appendix B.2,
/// following Topcuoglu et al. 2002). Generates single-entry / single-exit
/// DAGs arranged in levels.
struct TaskGraphParams {
  int num_tasks = 20;        ///< M
  double alpha = 1.0;        ///< shape: mean depth = sqrt(M)/alpha
  double p_connect = 0.25;   ///< probability of an extra higher->lower level edge
  double mean_compute = 100.0;  ///< C-bar
  double mean_bytes = 100.0;    ///< B-bar
  double het_compute = 0.5;  ///< epsilon_C in [0,1)
  double het_bytes = 0.5;    ///< epsilon_B in [0,1)
  int num_hw_kinds = 4;      ///< distinct hardware capability kinds
  double p_task_requires = 0.3;  ///< probability a task carries a hw requirement
};

/// Generates a random task graph. Guarantees: exactly params.num_tasks nodes,
/// acyclic, a single entry and a single exit (for num_tasks >= 2), all nodes
/// on a path from entry towards the exit level structure described in B.2.
TaskGraph generate_task_graph(const TaskGraphParams& params, std::mt19937_64& rng);

}  // namespace giph
