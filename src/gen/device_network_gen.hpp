#pragma once

#include <random>

#include "graph/device_network.hpp"
#include "graph/task_graph.hpp"

namespace giph {

/// Parameters of the random device-network generator (Appendix B.2).
struct NetworkParams {
  int num_devices = 8;       ///< m
  double mean_speed = 10.0;  ///< SP-bar
  double mean_bandwidth = 50.0;  ///< BW-bar
  double mean_delay = 1.0;   ///< DL-bar: DL_kl ~ U[0, 2*DL-bar]
  double het_speed = 0.5;    ///< epsilon_SP
  double het_bandwidth = 0.5;  ///< epsilon_BW
  int num_hw_kinds = 4;      ///< must match the task-graph generator
  double p_hw_support = 0.5; ///< per-kind probability a device supports it
};

/// Generates a random fully-connected device network with symmetric links.
DeviceNetwork generate_device_network(const NetworkParams& params, std::mt19937_64& rng);

/// Ensures every task of g has at least one feasible device in n by granting
/// missing hardware support bits to randomly chosen devices. Returns the
/// number of support bits added.
int ensure_feasible(const TaskGraph& g, DeviceNetwork& n, std::mt19937_64& rng);

}  // namespace giph
