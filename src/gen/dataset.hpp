#pragma once

#include <random>
#include <vector>

#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"

namespace giph {

/// A dataset of task graphs and device networks; problem instances (G, N) are
/// drawn from the cartesian product, mirroring the paper's train/test split
/// over independently generated graph and network sets.
struct Dataset {
  std::vector<TaskGraph> graphs;
  std::vector<DeviceNetwork> networks;
};

/// Grants every hardware kind at least one supporting device so that any task
/// generated with a single-kind requirement is placeable on any network of the
/// dataset. Returns the number of support bits added.
int ensure_all_kinds(DeviceNetwork& n, int num_hw_kinds, std::mt19937_64& rng);

/// Generates `num_graphs` task graphs and `num_networks` device networks,
/// cycling through the supplied parameter sets (Appendix B.2 "a specific
/// combination of parameter values is used to generate data"). Every network
/// is post-processed with ensure_all_kinds so all (G, N) pairs are feasible.
Dataset generate_dataset(const std::vector<TaskGraphParams>& graph_params,
                         const std::vector<NetworkParams>& network_params,
                         int num_graphs, int num_networks, std::mt19937_64& rng);

/// The default parameter grid used by the benches: a range of graph sizes,
/// shapes and heterogeneity factors (roughly matching parameters/ in the
/// paper artifact).
std::vector<TaskGraphParams> default_graph_parameter_grid();
std::vector<NetworkParams> default_network_parameter_grid();

}  // namespace giph
