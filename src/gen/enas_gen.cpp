#include "gen/enas_gen.hpp"

#include <stdexcept>

namespace giph {

CellDesign sample_cell_design(int nodes, std::mt19937_64& rng) {
  if (nodes < 2) throw std::invalid_argument("sample_cell_design: nodes must be >= 2");
  CellDesign cell;
  cell.prev.assign(nodes, 0);
  cell.op_cost.assign(nodes, 1.0);
  // Relative op costs model different activation / transform kinds, as in the
  // ENAS PTB search space (identity, tanh, relu, sigmoid have different cost).
  static constexpr double kOpCosts[] = {0.5, 1.0, 1.5, 2.0};
  std::uniform_int_distribution<int> op(0, 3);
  cell.op_cost[0] = 2.0;  // input transform (matmul-heavy)
  for (int i = 1; i < nodes; ++i) {
    std::uniform_int_distribution<int> pick(0, i - 1);
    cell.prev[i] = pick(rng);
    cell.op_cost[i] = kOpCosts[op(rng)];
  }
  return cell;
}

TaskGraph unroll_cell(const CellDesign& cell, int steps, int batch,
                      const EnasParams& params) {
  if (steps < 1) throw std::invalid_argument("unroll_cell: steps must be >= 1");
  const int nodes = static_cast<int>(cell.prev.size());
  const double bytes = params.base_bytes * batch;
  const double work = params.base_compute * batch;

  TaskGraph g;
  const int entry = g.add_task(Task{.compute = 0.5 * work, .name = "input"});
  int exit_accum = g.add_task(Task{.compute = 0.5 * work, .name = "output"});

  int prev_output = -1;
  for (int t = 0; t < steps; ++t) {
    const std::string st = "s" + std::to_string(t) + ":";
    const int embed = g.add_task(Task{.compute = work, .requires_hw = params.op_requires_hw, .name = st + "embed"});
    g.add_edge(entry, embed, bytes);

    std::vector<int> cell_ids(nodes);
    std::vector<bool> has_child(nodes, false);
    cell_ids[0] =
        g.add_task(Task{.compute = cell.op_cost[0] * work, .requires_hw = params.op_requires_hw, .name = st + "n0"});
    g.add_edge(embed, cell_ids[0], bytes);
    if (prev_output >= 0) g.add_edge(prev_output, cell_ids[0], bytes);
    for (int i = 1; i < nodes; ++i) {
      cell_ids[i] = g.add_task(
          Task{.compute = cell.op_cost[i] * work, .requires_hw = params.op_requires_hw, .name = st + "n" + std::to_string(i)});
      g.add_edge(cell_ids[cell.prev[i]], cell_ids[i], bytes);
      has_child[cell.prev[i]] = true;
    }
    // Output = average over loose ends (cell nodes without in-cell children).
    const int avg = g.add_task(Task{.compute = 0.5 * work, .name = st + "avg"});
    for (int i = 0; i < nodes; ++i) {
      if (!has_child[i]) g.add_edge(cell_ids[i], avg, bytes);
    }
    g.add_edge(avg, exit_accum, bytes);
    prev_output = avg;
  }
  return g;
}

TaskGraph generate_enas_graph(const EnasParams& params, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> cell_n(params.min_cell_nodes, params.max_cell_nodes);
  std::uniform_int_distribution<int> unroll(params.min_unroll, params.max_unroll);
  std::uniform_int_distribution<int> batch(params.min_batch, params.max_batch);
  const CellDesign cell = sample_cell_design(cell_n(rng), rng);
  return unroll_cell(cell, unroll(rng), batch(rng), params);
}

}  // namespace giph
