#pragma once

#include <random>

#include "graph/task_graph.hpp"

namespace giph {

/// Parameters of the ENAS-style deep-learning computation-graph generator
/// (Section 5.2 / Appendix B.3). Random recurrent cell designs (each non-input
/// cell node connects to one random previous node, loose ends are averaged)
/// are unrolled over a sampled number of steps; per-operator compute scales
/// with the sampled batch size. The result is a single-entry / single-exit
/// DAG with 200-300 operators for default parameters.
struct EnasParams {
  int min_cell_nodes = 8;
  int max_cell_nodes = 11;
  int min_unroll = 20;   ///< unrolled steps, sampled uniformly
  int max_unroll = 30;
  int min_batch = 80;    ///< batch size, sampled uniformly
  int max_batch = 150;
  double base_compute = 1.0;  ///< per-op work per batch element
  double base_bytes = 4.0;    ///< activation bytes per batch element
  HwMask op_requires_hw = 0;  ///< optional hw constraint on compute-heavy ops
};

/// A sampled recurrent cell design: node i >= 1 reads from prev[i] < i.
struct CellDesign {
  std::vector<int> prev;          ///< prev[0] unused; prev[i] in [0, i)
  std::vector<double> op_cost;    ///< relative cost of each cell node's op
};

/// Samples a random cell design with `nodes` internal nodes.
CellDesign sample_cell_design(int nodes, std::mt19937_64& rng);

/// Unrolls `cell` into a full computation graph: per step, an embedding op, the
/// cell nodes, and an output-average op; step t's cell reads step t-1's output;
/// a single entry feeds all embeddings and a single exit collects all outputs.
TaskGraph unroll_cell(const CellDesign& cell, int steps, int batch, const EnasParams& params);

/// Samples a cell design and unroll/batch parameters, returning the graph.
TaskGraph generate_enas_graph(const EnasParams& params, std::mt19937_64& rng);

}  // namespace giph
