#include "gen/params_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace giph {
namespace {

using Setter = std::function<void(double)>;

std::map<std::string, Setter> graph_setters(TaskGraphParams& p) {
  return {
      {"graph.num_tasks", [&p](double v) { p.num_tasks = static_cast<int>(v); }},
      {"graph.alpha", [&p](double v) { p.alpha = v; }},
      {"graph.p_connect", [&p](double v) { p.p_connect = v; }},
      {"graph.mean_compute", [&p](double v) { p.mean_compute = v; }},
      {"graph.mean_bytes", [&p](double v) { p.mean_bytes = v; }},
      {"graph.het_compute", [&p](double v) { p.het_compute = v; }},
      {"graph.het_bytes", [&p](double v) { p.het_bytes = v; }},
      {"graph.num_hw_kinds", [&p](double v) { p.num_hw_kinds = static_cast<int>(v); }},
      {"graph.p_task_requires", [&p](double v) { p.p_task_requires = v; }},
  };
}

std::map<std::string, Setter> network_setters(NetworkParams& p) {
  return {
      {"network.num_devices", [&p](double v) { p.num_devices = static_cast<int>(v); }},
      {"network.mean_speed", [&p](double v) { p.mean_speed = v; }},
      {"network.mean_bandwidth", [&p](double v) { p.mean_bandwidth = v; }},
      {"network.mean_delay", [&p](double v) { p.mean_delay = v; }},
      {"network.het_speed", [&p](double v) { p.het_speed = v; }},
      {"network.het_bandwidth", [&p](double v) { p.het_bandwidth = v; }},
      {"network.num_hw_kinds",
       [&p](double v) { p.num_hw_kinds = static_cast<int>(v); }},
      {"network.p_hw_support", [&p](double v) { p.p_hw_support = v; }},
  };
}

/// Expands the per-key value lists into the cartesian-product grid of
/// parameter structs.
template <typename Params, typename SettersOf>
std::vector<Params> expand(const std::map<std::string, std::vector<double>>& values,
                           SettersOf setters_of, std::size_t max_grid) {
  std::vector<Params> grid{Params{}};
  for (const auto& [key, list] : values) {
    if (list.empty()) continue;
    std::vector<Params> next;
    if (grid.size() * list.size() > max_grid) {
      throw std::runtime_error("parameter grid exceeds " + std::to_string(max_grid) +
                               " combinations");
    }
    next.reserve(grid.size() * list.size());
    for (const Params& base : grid) {
      for (double v : list) {
        Params p = base;
        auto setters = setters_of(p);
        setters.at(key)(v);
        next.push_back(p);
      }
    }
    grid = std::move(next);
  }
  return grid;
}

}  // namespace

GeneratorConfig parse_generator_config(std::istream& in, std::size_t max_grid) {
  std::map<std::string, std::vector<double>> graph_values, network_values;
  {
    // Key validation tables.
    TaskGraphParams gp;
    NetworkParams np;
    const auto gs = graph_setters(gp);
    const auto ns = network_setters(np);

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string key;
      if (!(ls >> key)) continue;  // blank line
      std::string eq;
      if (!(ls >> eq) || eq != "=") {
        throw std::runtime_error("parameter file line " + std::to_string(lineno) +
                                 ": expected 'key = values'");
      }
      std::vector<double> vals;
      double v = 0.0;
      while (ls >> v) vals.push_back(v);
      if (vals.empty()) {
        throw std::runtime_error("parameter file line " + std::to_string(lineno) +
                                 ": no values for " + key);
      }
      if (gs.count(key) != 0) {
        graph_values[key] = vals;
      } else if (ns.count(key) != 0) {
        network_values[key] = vals;
      } else {
        throw std::runtime_error("parameter file line " + std::to_string(lineno) +
                                 ": unknown key " + key);
      }
    }
  }
  GeneratorConfig cfg;
  cfg.graph_grid = expand<TaskGraphParams>(
      graph_values, [](TaskGraphParams& p) { return graph_setters(p); }, max_grid);
  cfg.network_grid = expand<NetworkParams>(
      network_values, [](NetworkParams& p) { return network_setters(p); }, max_grid);
  return cfg;
}

GeneratorConfig load_generator_config(const std::string& path, std::size_t max_grid) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open parameter file: " + path);
  return parse_generator_config(in, max_grid);
}

void write_generator_config(std::ostream& out, const TaskGraphParams& gp,
                            const NetworkParams& np) {
  out << "# GiPH generator parameters (values may be lists: the dataset is the\n"
         "# cartesian product per prefix)\n";
  out << "graph.num_tasks = " << gp.num_tasks << "\n";
  out << "graph.alpha = " << gp.alpha << "\n";
  out << "graph.p_connect = " << gp.p_connect << "\n";
  out << "graph.mean_compute = " << gp.mean_compute << "\n";
  out << "graph.mean_bytes = " << gp.mean_bytes << "\n";
  out << "graph.het_compute = " << gp.het_compute << "\n";
  out << "graph.het_bytes = " << gp.het_bytes << "\n";
  out << "graph.num_hw_kinds = " << gp.num_hw_kinds << "\n";
  out << "graph.p_task_requires = " << gp.p_task_requires << "\n";
  out << "network.num_devices = " << np.num_devices << "\n";
  out << "network.mean_speed = " << np.mean_speed << "\n";
  out << "network.mean_bandwidth = " << np.mean_bandwidth << "\n";
  out << "network.mean_delay = " << np.mean_delay << "\n";
  out << "network.het_speed = " << np.het_speed << "\n";
  out << "network.het_bandwidth = " << np.het_bandwidth << "\n";
  out << "network.num_hw_kinds = " << np.num_hw_kinds << "\n";
  out << "network.p_hw_support = " << np.p_hw_support << "\n";
}

}  // namespace giph
