#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace giph {

/// Result of operator grouping: the reduced graph plus, for each original
/// task id, the id of the group node that absorbed it.
struct GroupedGraph {
  TaskGraph graph;
  std::vector<int> group_of;  ///< original task id -> grouped task id
};

/// Coarsens `g` by iteratively merging the node with in-degree one and lowest
/// compute cost into its sole predecessor until at most `target_nodes` nodes
/// remain (Section 5.2). Merging sums compute costs, unions hardware
/// requirements, reroutes the merged node's out-edges to the predecessor, and
/// accumulates data volumes of collapsed parallel edges. Stops early when no
/// in-degree-one node remains.
GroupedGraph group_operators(const TaskGraph& g, int target_nodes);

}  // namespace giph
