#pragma once

#include <vector>

#include "graph/device_network.hpp"
#include "graph/placement.hpp"
#include "graph/task_graph.hpp"

namespace giph {

/// Result of operator grouping: the reduced graph plus, for each original
/// task id, the id of the group node that absorbed it.
struct GroupedGraph {
  TaskGraph graph;
  std::vector<int> group_of;  ///< original task id -> grouped task id
};

/// Coarsens `g` by iteratively merging the node with in-degree one and lowest
/// compute cost into its sole predecessor until at most `target_nodes` nodes
/// remain (Section 5.2). Merging sums compute costs, unions hardware
/// requirements, reroutes the merged node's out-edges to the predecessor, and
/// accumulates data volumes of collapsed parallel edges. Stops early when no
/// in-degree-one node remains.
GroupedGraph group_operators(const TaskGraph& g, int target_nodes);

/// Knobs of the general DAG partitioner (the scale tier's grouper; see
/// DESIGN.md "Hierarchical placement").
struct PartitionOptions {
  /// Target cluster count (>= 1). Clamped to the task count; forced cuts
  /// (conflicting pins, hardware-infeasible unions) may exceed it.
  int num_clusters = 8;
  /// Balance knob: no cluster's compute weight may exceed
  /// `balance * total_compute / num_clusters` unless a single task already
  /// does. Must be >= 1.
  double balance = 1.25;
};

/// A partition of a task graph into clusters plus the coarse cluster graph.
/// Cluster ids follow the affinity order, so every coarse edge points from a
/// lower to a strictly higher cluster id: the coarse graph is acyclic by
/// construction.
struct GraphPartition {
  std::vector<int> cluster_of;            ///< fine task id -> cluster id
  std::vector<std::vector<int>> members;  ///< cluster -> fine task ids (ascending)
  /// One node per cluster: compute = sum of member computes, requires_hw =
  /// union of member masks, pinned = the members' common pin (or -1). One
  /// edge per cluster pair connected by at least one fine cross edge,
  /// carrying the summed bytes of those edges.
  TaskGraph coarse;
  /// Bytes of fine edges absorbed inside clusters; coarse.total_bytes() plus
  /// this equals the fine graph's total (up to summation order).
  double internal_bytes = 0.0;

  int num_clusters() const noexcept { return coarse.num_tasks(); }
};

/// Deterministic multilevel-style DAG partitioner: tasks are laid out in a
/// communication-affinity-guided topological order (ready tasks with the most
/// bytes attached to already-ordered tasks go first), then the order is cut
/// into up to `opt.num_clusters` contiguous intervals of balanced compute
/// weight. Interval cuts are additionally forced where merging would create a
/// cluster with conflicting pinned devices or a hardware-requirement union no
/// device of `n` supports, so the coarse problem is feasible whenever the
/// fine one is. Pure function of (g, n, opt): repeated runs, any thread.
/// Throws std::invalid_argument on num_clusters < 1 or balance < 1.
GraphPartition partition_tasks(const TaskGraph& g, const DeviceNetwork& n,
                               const PartitionOptions& opt);

/// Expands a coarse (per-cluster) placement to a fine (per-task) placement:
/// every task gets its cluster's device. Feasibility of the result follows
/// from the union-mask/pin cuts of partition_tasks whenever `coarse` is
/// feasible on the coarse graph (a cluster containing pinned members has a
/// pinned coarse node, so a feasible coarse placement already lands its
/// members on the pin).
Placement expand_placement(const GraphPartition& part, const Placement& coarse);

/// Variant that additionally snaps pinned tasks of `g` back to their pin,
/// tolerating coarse placements that ignore coarse pins.
Placement expand_placement(const GraphPartition& part, const TaskGraph& g,
                           const Placement& coarse);

}  // namespace giph
