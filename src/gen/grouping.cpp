#include "gen/grouping.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>

namespace giph {

GroupedGraph group_operators(const TaskGraph& g, int target_nodes) {
  if (target_nodes < 1) {
    throw std::invalid_argument("group_operators: target_nodes must be >= 1");
  }
  const int n = g.num_tasks();

  // Working representation: per-node parent/child byte maps over "alive" ids.
  std::vector<Task> task(n);
  std::vector<std::map<int, double>> out(n);  // v -> {child: bytes}
  std::vector<std::set<int>> in(n);           // v -> parents
  std::vector<bool> alive(n, true);
  std::vector<int> root(n);  // union-find style: original -> representative
  for (int v = 0; v < n; ++v) {
    task[v] = g.task(v);
    root[v] = v;
  }
  for (const DataLink& e : g.edges()) {
    out[e.src][e.dst] += e.bytes;
    in[e.dst].insert(e.src);
  }

  int count = n;
  while (count > target_nodes) {
    // Find the alive node with in-degree exactly 1 and minimum compute.
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (alive[v] && in[v].size() == 1 && task[v].compute < best_cost) {
        best = v;
        best_cost = task[v].compute;
      }
    }
    if (best < 0) break;  // nothing mergeable
    const int p = *in[best].begin();

    task[p].compute += task[best].compute;
    task[p].requires_hw |= task[best].requires_hw;
    // Reroute best's out-edges to p (self-edge p->p from the original p->best
    // link never arises: that link lives in out[p], not out[best]).
    for (const auto& [c, bytes] : out[best]) {
      out[p][c] += bytes;
      in[c].erase(best);
      in[c].insert(p);
    }
    out[p].erase(best);
    alive[best] = false;
    root[best] = p;
    out[best].clear();
    in[best].clear();
    --count;
  }

  // Path-compress representatives.
  auto find = [&](int v) {
    while (root[v] != v) v = root[v];
    return v;
  };

  GroupedGraph result;
  std::vector<int> new_id(n, -1);
  for (int v = 0; v < n; ++v) {
    if (alive[v]) new_id[v] = result.graph.add_task(task[v]);
  }
  for (int v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    for (const auto& [c, bytes] : out[v]) {
      result.graph.add_edge(new_id[v], new_id[c], bytes);
    }
  }
  result.group_of.resize(n);
  for (int v = 0; v < n; ++v) result.group_of[v] = new_id[find(v)];
  return result;
}

namespace {

/// Affinity-guided topological order: Kahn's algorithm where, among ready
/// tasks, the one with the most incoming bytes from already-ordered tasks is
/// emitted first (ties -> smaller task id). A task's affinity only changes
/// while its parents are being emitted, so it is final by the time the task
/// becomes ready and each task is pushed exactly once.
std::vector<int> affinity_order(const TaskGraph& g) {
  const int n = g.num_tasks();
  std::vector<int> indeg(n, 0);
  std::vector<double> affinity(n, 0.0);
  for (const DataLink& e : g.edges()) ++indeg[e.dst];

  struct Entry {
    double affinity;
    int id;
  };
  auto worse = [](const Entry& a, const Entry& b) {
    if (a.affinity != b.affinity) return a.affinity < b.affinity;
    return a.id > b.id;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> ready(worse);
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push({0.0, v});
  }

  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int v = ready.top().id;
    ready.pop();
    order.push_back(v);
    for (int e : g.out_edges(v)) {
      const DataLink& link = g.edge(e);
      affinity[link.dst] += link.bytes;
      if (--indeg[link.dst] == 0) ready.push({affinity[link.dst], link.dst});
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw std::invalid_argument("partition_tasks: graph is not a DAG");
  }
  return order;
}

/// True when some device of n can host a task with this requirement mask and
/// pin (pin < 0 = unpinned).
bool cluster_feasible(const DeviceNetwork& n, HwMask requires_hw, int pin) {
  if (pin >= 0) {
    return pin < n.num_devices() && hw_compatible(requires_hw, n.device(pin).supports_hw);
  }
  for (int d = 0; d < n.num_devices(); ++d) {
    if (hw_compatible(requires_hw, n.device(d).supports_hw)) return true;
  }
  return false;
}

}  // namespace

GraphPartition partition_tasks(const TaskGraph& g, const DeviceNetwork& n,
                               const PartitionOptions& opt) {
  if (opt.num_clusters < 1) {
    throw std::invalid_argument("partition_tasks: num_clusters must be >= 1");
  }
  if (!(opt.balance >= 1.0)) {
    throw std::invalid_argument("partition_tasks: balance must be >= 1");
  }
  GraphPartition part;
  const int nt = g.num_tasks();
  if (nt == 0) return part;

  const std::vector<int> order = affinity_order(g);
  const int k = std::min(opt.num_clusters, nt);
  const double ideal = g.total_compute() / k;
  const double cap = opt.balance * ideal;

  // Cut the order into contiguous intervals. A cut is taken on balance
  // grounds (current weight reached the ideal share, or adding the next task
  // would blow the cap) while target clusters remain, and is forced when
  // absorbing the next task would make the cluster unplaceable: two members
  // pinned to different devices, or a hardware-requirement union no device
  // supports (only when the task alone is placeable — otherwise the fine
  // problem is infeasible too and cutting cannot help).
  part.cluster_of.assign(nt, -1);
  int cluster = 0;
  double weight = 0.0;
  HwMask mask = 0;
  int pin = -1;
  bool empty = true;
  for (int idx = 0; idx < nt; ++idx) {
    const int v = order[idx];
    const Task& t = g.task(v);
    if (!empty) {
      const int merged_pin = pin >= 0 ? pin : t.pinned;
      const bool pin_conflict = pin >= 0 && t.pinned >= 0 && t.pinned != pin;
      const bool hw_conflict = !pin_conflict &&
                               !cluster_feasible(n, mask | t.requires_hw, merged_pin) &&
                               cluster_feasible(n, t.requires_hw, t.pinned);
      const bool balance_cut =
          cluster < k - 1 && (weight >= ideal || weight + t.compute > cap);
      const bool cap_cut = weight + t.compute > cap && t.compute <= cap;
      if (pin_conflict || hw_conflict || balance_cut || cap_cut) {
        ++cluster;
        weight = 0.0;
        mask = 0;
        pin = -1;
        empty = true;
      }
    }
    part.cluster_of[v] = cluster;
    weight += t.compute;
    mask |= t.requires_hw;
    if (t.pinned >= 0) pin = t.pinned;
    empty = false;
  }
  const int nc = cluster + 1;

  part.members.assign(nc, {});
  for (int v = 0; v < nt; ++v) part.members[part.cluster_of[v]].push_back(v);

  // Coarse nodes: aggregate members (ascending id order keeps the sums
  // deterministic). Coarse edges go low -> high cluster id because intervals
  // are contiguous in a topological order, so the coarse graph is a DAG.
  for (int c = 0; c < nc; ++c) {
    Task agg;
    agg.compute = 0.0;
    agg.requires_hw = 0;
    agg.name = "cluster" + std::to_string(c);
    for (int v : part.members[c]) {
      const Task& t = g.task(v);
      agg.compute += t.compute;
      agg.requires_hw |= t.requires_hw;
      if (t.pinned >= 0) agg.pinned = t.pinned;
    }
    part.coarse.add_task(agg);
  }
  std::map<std::pair<int, int>, double> cross;
  for (const DataLink& e : g.edges()) {
    const int cs = part.cluster_of[e.src];
    const int cd = part.cluster_of[e.dst];
    if (cs == cd) {
      part.internal_bytes += e.bytes;
    } else {
      cross[{cs, cd}] += e.bytes;
    }
  }
  for (const auto& [key, bytes] : cross) {
    part.coarse.add_edge(key.first, key.second, bytes);
  }
  return part;
}

Placement expand_placement(const GraphPartition& part, const Placement& coarse) {
  if (coarse.num_tasks() != part.num_clusters()) {
    throw std::invalid_argument("expand_placement: coarse placement size mismatch");
  }
  const int nt = static_cast<int>(part.cluster_of.size());
  Placement fine(nt);
  for (int c = 0; c < part.num_clusters(); ++c) {
    for (int v : part.members[c]) fine.set(v, coarse.device_of(c));
  }
  return fine;
}

Placement expand_placement(const GraphPartition& part, const TaskGraph& g,
                           const Placement& coarse) {
  Placement fine = expand_placement(part, coarse);
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int pin = g.task(v).pinned;
    if (pin >= 0) fine.set(v, pin);
  }
  return fine;
}

}  // namespace giph
