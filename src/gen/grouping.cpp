#include "gen/grouping.hpp"

#include <limits>
#include <map>
#include <set>
#include <stdexcept>

namespace giph {

GroupedGraph group_operators(const TaskGraph& g, int target_nodes) {
  if (target_nodes < 1) {
    throw std::invalid_argument("group_operators: target_nodes must be >= 1");
  }
  const int n = g.num_tasks();

  // Working representation: per-node parent/child byte maps over "alive" ids.
  std::vector<Task> task(n);
  std::vector<std::map<int, double>> out(n);  // v -> {child: bytes}
  std::vector<std::set<int>> in(n);           // v -> parents
  std::vector<bool> alive(n, true);
  std::vector<int> root(n);  // union-find style: original -> representative
  for (int v = 0; v < n; ++v) {
    task[v] = g.task(v);
    root[v] = v;
  }
  for (const DataLink& e : g.edges()) {
    out[e.src][e.dst] += e.bytes;
    in[e.dst].insert(e.src);
  }

  int count = n;
  while (count > target_nodes) {
    // Find the alive node with in-degree exactly 1 and minimum compute.
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int v = 0; v < n; ++v) {
      if (alive[v] && in[v].size() == 1 && task[v].compute < best_cost) {
        best = v;
        best_cost = task[v].compute;
      }
    }
    if (best < 0) break;  // nothing mergeable
    const int p = *in[best].begin();

    task[p].compute += task[best].compute;
    task[p].requires_hw |= task[best].requires_hw;
    // Reroute best's out-edges to p (self-edge p->p from the original p->best
    // link never arises: that link lives in out[p], not out[best]).
    for (const auto& [c, bytes] : out[best]) {
      out[p][c] += bytes;
      in[c].erase(best);
      in[c].insert(p);
    }
    out[p].erase(best);
    alive[best] = false;
    root[best] = p;
    out[best].clear();
    in[best].clear();
    --count;
  }

  // Path-compress representatives.
  auto find = [&](int v) {
    while (root[v] != v) v = root[v];
    return v;
  };

  GroupedGraph result;
  std::vector<int> new_id(n, -1);
  for (int v = 0; v < n; ++v) {
    if (alive[v]) new_id[v] = result.graph.add_task(task[v]);
  }
  for (int v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    for (const auto& [c, bytes] : out[v]) {
      result.graph.add_edge(new_id[v], new_id[c], bytes);
    }
  }
  result.group_of.resize(n);
  for (int v = 0; v < n; ++v) result.group_of[v] = new_id[find(v)];
  return result;
}

}  // namespace giph
