#include "gen/device_network_gen.hpp"

#include <stdexcept>

namespace giph {

DeviceNetwork generate_device_network(const NetworkParams& params, std::mt19937_64& rng) {
  if (params.num_devices <= 0) {
    throw std::invalid_argument("generate_device_network: num_devices must be > 0");
  }
  DeviceNetwork n;
  std::uniform_real_distribution<double> speed(
      params.mean_speed * (1.0 - params.het_speed),
      params.mean_speed * (1.0 + params.het_speed));
  std::bernoulli_distribution supports(params.p_hw_support);
  for (int k = 0; k < params.num_devices; ++k) {
    Device d;
    d.speed = speed(rng);
    d.supports_hw = 0;
    for (int b = 0; b < params.num_hw_kinds; ++b) {
      if (supports(rng)) d.supports_hw |= HwMask{1} << b;
    }
    d.name = "d" + std::to_string(k);
    n.add_device(std::move(d));
  }
  std::uniform_real_distribution<double> bw(
      params.mean_bandwidth * (1.0 - params.het_bandwidth),
      params.mean_bandwidth * (1.0 + params.het_bandwidth));
  std::uniform_real_distribution<double> dl(0.0, 2.0 * params.mean_delay);
  for (int k = 0; k < params.num_devices; ++k) {
    for (int l = k + 1; l < params.num_devices; ++l) {
      n.set_symmetric_link(k, l, bw(rng), dl(rng));
    }
  }
  return n;
}

int ensure_feasible(const TaskGraph& g, DeviceNetwork& n, std::mt19937_64& rng) {
  int added = 0;
  std::uniform_int_distribution<int> pick(0, n.num_devices() - 1);
  for (int v = 0; v < g.num_tasks(); ++v) {
    const HwMask req = g.task(v).requires_hw;
    if (req == 0) continue;
    if (n.feasible_devices(req).empty()) {
      n.device(pick(rng)).supports_hw |= req;
      ++added;
    }
  }
  return added;
}

}  // namespace giph
