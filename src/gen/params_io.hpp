#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gen/device_network_gen.hpp"
#include "gen/task_graph_gen.hpp"

namespace giph {

/// Generator configuration parsed from a parameter file - the equivalent of
/// the paper artifact's parameters/ directory (its README: "Our simulator
/// allows for assigning multiple values to each parameter used by the
/// generators. A specific combination of parameter values is used to
/// generate data").
///
/// File format: `key = v1 v2 ...` lines, `#` comments. Keys are prefixed by
/// `graph.` or `network.` (e.g. `graph.num_tasks = 12 16 20`). Every key may
/// list several values; the grids are the cartesian products of the listed
/// values within each prefix.
struct GeneratorConfig {
  std::vector<TaskGraphParams> graph_grid;
  std::vector<NetworkParams> network_grid;
};

/// Parses a configuration; unknown keys and malformed lines throw
/// std::runtime_error, as does a grid larger than `max_grid` combinations.
GeneratorConfig parse_generator_config(std::istream& in, std::size_t max_grid = 10000);

GeneratorConfig load_generator_config(const std::string& path,
                                      std::size_t max_grid = 10000);

/// Writes the full key set with the given single values (a template users
/// can edit); parse(write(config)) uses the first grid entry of each side.
void write_generator_config(std::ostream& out, const TaskGraphParams& gp,
                            const NetworkParams& np);

}  // namespace giph
