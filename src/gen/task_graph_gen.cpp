#include "gen/task_graph_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace giph {
namespace {

double uniform_around(double mean, double het, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> d(mean * (1.0 - het), mean * (1.0 + het));
  return d(rng);
}

int sample_depth(int m, double alpha, std::mt19937_64& rng) {
  // Uniform with mean sqrt(M)/alpha, clamped to [1, M].
  const double mean = std::sqrt(static_cast<double>(m)) / alpha;
  std::uniform_real_distribution<double> d(0.5, 2.0 * mean - 0.5);
  const int depth = static_cast<int>(std::lround(std::max(1.0, d(rng))));
  return std::clamp(depth, 1, m);
}

}  // namespace

TaskGraph generate_task_graph(const TaskGraphParams& params, std::mt19937_64& rng) {
  const int m = params.num_tasks;
  if (m <= 0) throw std::invalid_argument("generate_task_graph: num_tasks must be > 0");
  if (params.alpha <= 0.0) throw std::invalid_argument("generate_task_graph: alpha must be > 0");

  TaskGraph g;
  auto sample_hw = [&]() -> HwMask {
    if (params.num_hw_kinds <= 0) return 0;
    std::bernoulli_distribution has_req(params.p_task_requires);
    if (!has_req(rng)) return 0;
    std::uniform_int_distribution<int> kind(0, params.num_hw_kinds - 1);
    return HwMask{1} << kind(rng);
  };
  for (int i = 0; i < m; ++i) {
    Task t;
    t.compute = uniform_around(params.mean_compute, params.het_compute, rng);
    t.requires_hw = sample_hw();
    t.name = "t" + std::to_string(i);
    g.add_task(std::move(t));
  }
  if (m == 1) return g;

  // Level layout: single entry, single exit, middle levels absorb the rest.
  int depth = sample_depth(m, params.alpha, rng);
  if (m > 2 && depth < 3) depth = 3;
  if (m == 2) depth = 2;
  depth = std::min(depth, m);

  std::vector<int> width(depth, 1);
  int extra = m - depth;
  std::uniform_int_distribution<int> mid(1, std::max(1, depth - 2));
  while (extra > 0) {
    width[mid(rng)]++;
    --extra;
  }

  // Assign node ids to levels in order: ids are contiguous per level, so the
  // level of node v can be recovered by construction.
  std::vector<std::vector<int>> level_nodes(depth);
  {
    int next = 0;
    for (int l = 0; l < depth; ++l) {
      for (int k = 0; k < width[l]; ++k) level_nodes[l].push_back(next++);
    }
  }

  auto bytes = [&]() { return uniform_around(params.mean_bytes, params.het_bytes, rng); };

  // Every node at level l > 0 receives one edge from a random node at level
  // l-1 (fixes its level and leaves the entry as the unique parentless node).
  for (int l = 1; l < depth; ++l) {
    std::uniform_int_distribution<std::size_t> pick(0, level_nodes[l - 1].size() - 1);
    for (int v : level_nodes[l]) {
      g.add_edge(level_nodes[l - 1][pick(rng)], v, bytes());
    }
  }

  // Extra forward edges from any higher level to any strictly lower level.
  std::bernoulli_distribution connect(params.p_connect);
  for (int lu = 0; lu < depth - 1; ++lu) {
    for (int lv = lu + 1; lv < depth; ++lv) {
      for (int u : level_nodes[lu]) {
        for (int v : level_nodes[lv]) {
          if (!g.has_edge(u, v) && connect(rng)) g.add_edge(u, v, bytes());
        }
      }
    }
  }

  // Every non-exit node must reach the exit: childless nodes (other than the
  // exit) get an edge to a random node at a later level.
  const int exit_node = level_nodes[depth - 1][0];
  for (int l = 0; l < depth - 1; ++l) {
    for (int v : level_nodes[l]) {
      if (g.out_degree(v) == 0) {
        std::uniform_int_distribution<int> later(l + 1, depth - 1);
        const int tl = later(rng);
        std::uniform_int_distribution<std::size_t> pick(0, level_nodes[tl].size() - 1);
        const int child = level_nodes[tl][pick(rng)];
        g.add_edge(v, child == v ? exit_node : child, bytes());
      }
    }
  }
  return g;
}

}  // namespace giph
