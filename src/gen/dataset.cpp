#include "gen/dataset.hpp"

namespace giph {

int ensure_all_kinds(DeviceNetwork& n, int num_hw_kinds, std::mt19937_64& rng) {
  int added = 0;
  std::uniform_int_distribution<int> pick(0, n.num_devices() - 1);
  for (int b = 0; b < num_hw_kinds; ++b) {
    const HwMask kind = HwMask{1} << b;
    bool supported = false;
    for (int k = 0; k < n.num_devices() && !supported; ++k) {
      supported = (n.device(k).supports_hw & kind) != 0;
    }
    if (!supported) {
      n.device(pick(rng)).supports_hw |= kind;
      ++added;
    }
  }
  return added;
}

Dataset generate_dataset(const std::vector<TaskGraphParams>& graph_params,
                         const std::vector<NetworkParams>& network_params,
                         int num_graphs, int num_networks, std::mt19937_64& rng) {
  Dataset ds;
  ds.graphs.reserve(num_graphs);
  ds.networks.reserve(num_networks);
  for (int i = 0; i < num_graphs; ++i) {
    ds.graphs.push_back(generate_task_graph(graph_params[i % graph_params.size()], rng));
  }
  for (int i = 0; i < num_networks; ++i) {
    const NetworkParams& np = network_params[i % network_params.size()];
    DeviceNetwork n = generate_device_network(np, rng);
    ensure_all_kinds(n, np.num_hw_kinds, rng);
    ds.networks.push_back(std::move(n));
  }
  return ds;
}

std::vector<TaskGraphParams> default_graph_parameter_grid() {
  std::vector<TaskGraphParams> grid;
  for (int m : {12, 16, 20, 24}) {
    for (double alpha : {0.6, 1.0, 1.6}) {
      for (double het : {0.3, 0.6}) {
        TaskGraphParams p;
        p.num_tasks = m;
        p.alpha = alpha;
        p.het_compute = het;
        p.het_bytes = het;
        grid.push_back(p);
      }
    }
  }
  return grid;
}

std::vector<NetworkParams> default_network_parameter_grid() {
  std::vector<NetworkParams> grid;
  for (int m : {6, 8, 10}) {
    for (double het : {0.3, 0.6}) {
      NetworkParams p;
      p.num_devices = m;
      p.het_speed = het;
      p.het_bandwidth = het;
      grid.push_back(p);
    }
  }
  return grid;
}

}  // namespace giph
