#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/reinforce.hpp"
#include "core/search_policy.hpp"

namespace giph::eval {

/// A placement problem instance by reference (graph + network must outlive
/// the evaluation).
struct Case {
  const TaskGraph* graph = nullptr;
  const DeviceNetwork* network = nullptr;
};

/// Fractions of the 2|V| search budget at which curves are sampled.
std::vector<double> curve_fractions(int points = 9);

/// Average best-so-far SLR of one policy over `cases`, sampled at
/// curve_fractions(points) of each case's 2|V| search budget. Every policy
/// evaluated with the same `seed` sees the same per-case initial placements,
/// making curves directly comparable (the paper's protocol).
struct Curve {
  std::string name;
  std::vector<double> values;
};

/// Optional custom search objective (streaming p99, throughput, energy...):
/// called once per case with the case's instance and per-case rng, like
/// TrainOptions::objective_factory. Null keeps the default protocol -
/// makespan SLR, noisy when `noise` > 0. With a custom objective the SLR
/// denominator is dropped (denominator 1): curves and finals report raw
/// objective values, which stay comparable across policies because every
/// policy sees the same per-case objective.
Curve policy_curve(SearchPolicy& policy, const std::vector<Case>& cases,
                   const LatencyModel& lat, double noise, std::uint64_t seed,
                   int points = 9, const ObjectiveFactory& objective = {});

/// Creates a fresh, identically-configured policy instance. Parallel
/// evaluation needs one policy object per case: most policies carry mutable
/// per-episode state (Placeto's traversal cursor, Tabu lists, workspaces)
/// that must not be shared across threads. For learned policies the factory
/// must reproduce the trained parameters (e.g. save once, load per instance).
using PolicyFactory = std::function<std::unique_ptr<SearchPolicy>()>;

/// Parallel variant: cases fan out over `threads` worker threads (<= 0 = one
/// per hardware thread), one factory-made policy per case. Per-case seeding
/// (`seed + ci`) is unchanged and per-case results are reduced in case order,
/// so the curve is bitwise identical for every thread count.
Curve policy_curve(const PolicyFactory& make_policy, const std::vector<Case>& cases,
                   const LatencyModel& lat, double noise, std::uint64_t seed,
                   int points = 9, int threads = 0, const ObjectiveFactory& objective = {});

/// Final best SLR per case (same protocol as policy_curve). A 0-step search
/// (empty graph) reports the initial objective.
std::vector<double> policy_finals(SearchPolicy& policy, const std::vector<Case>& cases,
                                  const LatencyModel& lat, double noise,
                                  std::uint64_t seed,
                                  const ObjectiveFactory& objective = {});

/// Parallel variant; bitwise identical for every thread count (see
/// policy_curve).
std::vector<double> policy_finals(const PolicyFactory& make_policy,
                                  const std::vector<Case>& cases,
                                  const LatencyModel& lat, double noise,
                                  std::uint64_t seed, int threads = 0,
                                  const ObjectiveFactory& objective = {});

/// SLR of the HEFT placement per case, evaluated by the same simulator.
/// Cases fan out over `threads` worker threads (1 = serial, <= 0 = one per
/// hardware thread); results are per-case, so thread count never changes
/// them.
std::vector<double> heft_finals(const std::vector<Case>& cases, const LatencyModel& lat,
                                int threads = 1);

// ---- statistics ------------------------------------------------------------

double mean(const std::vector<double>& xs);
double stdev(const std::vector<double>& xs);
double percentile(std::vector<double> xs, double p);

/// Bootstrap confidence interval of the mean (seeded, `resamples` draws).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval bootstrap_mean_ci(const std::vector<double>& xs, double confidence = 0.95,
                           int resamples = 1000, std::uint64_t seed = 17);

/// Pairwise comparison of per-case finals: fraction of cases where a < b,
/// a == b (within tol), a > b.
struct WinRate {
  double better = 0.0;
  double equal = 0.0;
  double worse = 0.0;
};
WinRate win_rate(const std::vector<double>& a, const std::vector<double>& b,
                 double tol = 1e-9);

}  // namespace giph::eval
