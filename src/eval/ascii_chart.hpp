#pragma once

#include <string>
#include <vector>

namespace giph::eval {

/// One named series for plotting; x values are implicit equally-spaced
/// sample positions unless `x` is provided.
struct Series {
  std::string name;
  std::vector<double> y;
  std::vector<double> x;  ///< optional; same length as y when non-empty
};

struct ChartOptions {
  int width = 64;    ///< plot columns (excluding the axis gutter)
  int height = 16;   ///< plot rows
  std::string x_label;
  std::string y_label;
};

/// Renders a multi-series ASCII line chart. Each series is drawn with its own
/// marker (per-series letter); overlapping points show the later series.
/// A legend line maps markers to names, and the y-axis is annotated with the
/// min/max of the plotted range.
std::string ascii_chart(const std::vector<Series>& series, const ChartOptions& options = {});

}  // namespace giph::eval
