#include "eval/robustness_eval.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "heft/heft.hpp"
#include "util/parallel_for.hpp"

namespace giph::eval {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when remapping leaves every pinned device id unchanged, i.e. the
/// remapped graph is structurally identical to `g` and an existing search
/// environment can be rebased instead of rebuilt.
bool pins_unchanged(const TaskGraph& g, const std::vector<int>& old_to_new) {
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int pin = g.task(v).pinned;
    if (pin < 0) continue;
    if (pin >= static_cast<int>(old_to_new.size()) || old_to_new[pin] != pin) return false;
  }
  return true;
}

/// Patches every unplaced task (its device died) onto its fastest feasible
/// device of the post-fault network, in topological order. Deterministic.
/// Returns false when some task has no feasible device left.
bool patch_damaged(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                   Placement& p) {
  for (int v : g.topological_order()) {
    if (p.device_of(v) >= 0) continue;
    int best = -1;
    double best_w = kInf;
    for (int d : feasible_devices(g, n, v)) {
      const double w = lat.compute_time(g, n, v, d);
      if (w < best_w) {
        best_w = w;
        best = d;
      }
    }
    if (best < 0) return false;
    p.set(v, best);
  }
  return true;
}

int count_moves(const Placement& before_remapped, const Placement& after) {
  int moves = 0;
  for (int v = 0; v < after.num_tasks(); ++v) {
    if (before_remapped.device_of(v) != after.device_of(v)) ++moves;
  }
  return moves;
}

/// Steps 2-4 of the protocol, common to every placer: replay the pre-fault
/// placement under the plan, then fill in the repair fields from the
/// placer-specific repaired placement.
void replay_faults(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                   const FaultPlan& plan, const Placement& pre_fault, RepairOutcome& row) {
  const FaultSimResult faulted = simulate_with_faults(g, n, pre_fault, lat, plan);
  row.stranded_tasks = static_cast<int>(faulted.stranded.size());
  row.faulted_makespan = faulted.completed() ? faulted.schedule.makespan : kInf;
}

void finish_row(const TaskGraph& g, RepairOutcome& row) {
  row.degradation_ratio = row.fault_free_makespan > 0.0
                              ? row.recovery_makespan / row.fault_free_makespan
                              : kInf;
  row.repair_fraction =
      g.num_tasks() > 0 ? static_cast<double>(row.repair_steps) / g.num_tasks() : 0.0;
}

void mark_unrecoverable(RepairOutcome& row) {
  row.recoverable = false;
  row.recovery_makespan = kInf;
  row.degradation_ratio = kInf;
  row.tasks_moved = 0;
  row.repair_steps = 0;
  row.repair_fraction = 0.0;
}

}  // namespace

RobustnessReport evaluate_robustness(
    const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
    const FaultPlan& plan,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const RobustnessOptions& opt) {
  validate_fault_plan(plan, n);
  RobustnessReport report;
  report.faults = plan.events;
  std::stable_sort(report.faults.begin(), report.faults.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });

  const PostFaultNetwork pf = post_fault_network(n, plan);
  const TaskGraph remapped_g = remap_pinned(g, pf.old_to_new);
  const bool can_rebase = pins_unchanged(g, pf.old_to_new);
  bool hosts_graph = pf.network.num_devices() > 0;
  if (hosts_graph) {
    try {
      (void)feasible_sets(remapped_g, pf.network);
    } catch (const std::runtime_error&) {
      hosts_graph = false;  // pinned device lost or no surviving host
    }
  }

  // One row per non-null placer, computed independently (each with its own
  // environment and RNG) and collected in placer order, so the report is the
  // same for every thread count. Policies must be distinct objects - they
  // carry per-episode search state.
  std::vector<int> active;
  for (std::size_t i = 0; i < placers.size(); ++i) {
    if (placers[i].second != nullptr) active.push_back(static_cast<int>(i));
  }
  std::vector<RepairOutcome> rows(active.size());
  util::parallel_for(static_cast<int>(active.size()), opt.threads, [&](int ri) {
    const auto& [name, policy] = placers[active[ri]];
    RepairOutcome row;
    row.placer = name;

    // 1. Fault-free baseline: every placer starts from the same seeded
    // initial placement (the paper's comparability protocol).
    std::mt19937_64 rng(opt.seed);
    PlacementSearchEnv env(g, n, lat, makespan_objective(lat), random_placement(g, n, rng));
    run_search(*policy, env, opt.baseline_steps_factor * g.num_tasks(), rng);
    const Placement pre_fault = env.best_placement();
    row.fault_free_makespan = env.best_objective();

    // 2. Replay the placement against the fault plan.
    replay_faults(g, n, lat, plan, pre_fault, row);

    // 3. Incremental repair: patch stranded tasks, resume search warm.
    if (!hosts_graph) {
      mark_unrecoverable(row);
    } else {
      const Placement damaged = remap_placement(pre_fault, pf.old_to_new);
      int affected = 0;
      for (int v = 0; v < damaged.num_tasks(); ++v) {
        if (damaged.device_of(v) < 0) ++affected;
      }
      Placement patched = damaged;
      if (!patch_damaged(remapped_g, pf.network, lat, patched)) {
        mark_unrecoverable(row);
      } else {
        const int budget =
            opt.repair_budget > 0 ? opt.repair_budget : std::max(2, 2 * affected);
        // Resume the same environment from the damaged placement when the
        // graph is unchanged (the warm start the GiPH story needs); rebuild
        // only when pinned ids had to be remapped.
        std::optional<PlacementSearchEnv> repair_env;
        if (can_rebase) {
          env.rebase(pf.network, patched);
        } else {
          repair_env.emplace(remapped_g, pf.network, lat, makespan_objective(lat),
                             patched);
        }
        PlacementSearchEnv& renv = can_rebase ? env : *repair_env;
        run_search(*policy, renv, budget, rng);
        row.recovery_makespan = renv.best_objective();
        row.tasks_moved = count_moves(damaged, renv.best_placement());
        row.repair_steps = budget;
      }
    }
    finish_row(g, row);
    rows[ri] = std::move(row);
  });
  for (RepairOutcome& row : rows) report.rows.push_back(std::move(row));

  // HEFT: schedule once fault-free, full reschedule on the damaged network.
  {
    RepairOutcome row;
    row.placer = "HEFT";
    const Placement pre_fault = heft_schedule(g, n, lat).placement;
    row.fault_free_makespan = makespan(g, n, pre_fault, lat);
    replay_faults(g, n, lat, plan, pre_fault, row);
    if (!hosts_graph) {
      mark_unrecoverable(row);
    } else {
      const Placement repaired = heft_schedule(remapped_g, pf.network, lat).placement;
      row.recovery_makespan = makespan(remapped_g, pf.network, repaired, lat);
      row.tasks_moved = count_moves(remap_placement(pre_fault, pf.old_to_new), repaired);
      row.repair_steps = g.num_tasks();
    }
    finish_row(g, row);
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string format_report(const RobustnessReport& report) {
  std::ostringstream out;
  out << "injected faults:\n";
  if (report.faults.empty()) out << "  (none)\n";
  for (const FaultEvent& e : report.faults) out << "  " << describe(e) << "\n";
  out << "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %12s %12s %9s %12s %8s %7s %7s\n", "placer",
                "fault-free", "faulted", "stranded", "recovery", "degrade", "moved",
                "repair");
  out << line;
  const auto num_or = [](double x, const char* word, char* buf, std::size_t size) {
    if (x == std::numeric_limits<double>::infinity()) {
      std::snprintf(buf, size, "%12s", word);
    } else {
      std::snprintf(buf, size, "%12.4g", x);
    }
    return buf;
  };
  for (const RepairOutcome& r : report.rows) {
    char faulted[32], recovery[32];
    num_or(r.faulted_makespan, "stranded", faulted, sizeof(faulted));
    num_or(r.recovery_makespan, "unrecoverable", recovery, sizeof(recovery));
    if (!r.recoverable) {
      std::snprintf(line, sizeof(line), "%-16s %12.4g %s %9d %s\n", r.placer.c_str(),
                    r.fault_free_makespan, faulted, r.stranded_tasks, recovery);
    } else {
      std::snprintf(line, sizeof(line), "%-16s %12.4g %s %9d %s %7.2fx %7d %6d\n",
                    r.placer.c_str(), r.fault_free_makespan, faulted, r.stranded_tasks,
                    recovery, r.degradation_ratio, r.tasks_moved, r.repair_steps);
    }
    out << line;
  }
  return out.str();
}

}  // namespace giph::eval
