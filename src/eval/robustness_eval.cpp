#include "eval/robustness_eval.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "heft/heft.hpp"
#include "util/parallel_for.hpp"

namespace giph::eval {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when remapping leaves every pinned device id unchanged, i.e. the
/// remapped graph is structurally identical to `g` and an existing search
/// environment can be rebased instead of rebuilt.
bool pins_unchanged(const TaskGraph& g, const std::vector<int>& old_to_new) {
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int pin = g.task(v).pinned;
    if (pin < 0) continue;
    if (pin >= static_cast<int>(old_to_new.size()) || old_to_new[pin] != pin) return false;
  }
  return true;
}

/// Patches every unplaced task (its device died) onto its fastest feasible
/// device of the post-fault network, in topological order. Deterministic.
/// Returns false when some task has no feasible device left.
bool patch_damaged(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                   Placement& p) {
  for (int v : g.topological_order()) {
    if (p.device_of(v) >= 0) continue;
    int best = -1;
    double best_w = kInf;
    for (int d : feasible_devices(g, n, v)) {
      const double w = lat.compute_time(g, n, v, d);
      if (w < best_w) {
        best_w = w;
        best = d;
      }
    }
    if (best < 0) return false;
    p.set(v, best);
  }
  return true;
}

int count_moves(const Placement& before_remapped, const Placement& after) {
  int moves = 0;
  for (int v = 0; v < after.num_tasks(); ++v) {
    if (before_remapped.device_of(v) != after.device_of(v)) ++moves;
  }
  return moves;
}

/// Steps 2-4 of the protocol, common to every placer: replay the pre-fault
/// placement under the plan, then fill in the repair fields from the
/// placer-specific repaired placement.
void replay_faults(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                   const FaultPlan& plan, const Placement& pre_fault, RepairOutcome& row) {
  const FaultSimResult faulted = simulate_with_faults(g, n, pre_fault, lat, plan);
  row.stranded_tasks = static_cast<int>(faulted.stranded.size());
  row.faulted_makespan = faulted.completed() ? faulted.schedule.makespan : kInf;
}

void finish_row(const TaskGraph& g, RepairOutcome& row) {
  row.degradation_ratio = row.fault_free_makespan > 0.0
                              ? row.recovery_makespan / row.fault_free_makespan
                              : kInf;
  row.repair_fraction =
      g.num_tasks() > 0 ? static_cast<double>(row.repair_steps) / g.num_tasks() : 0.0;
}

void mark_unrecoverable(RepairOutcome& row) {
  row.recoverable = false;
  row.recovery_makespan = kInf;
  row.degradation_ratio = kInf;
  row.tasks_moved = 0;
  row.repair_steps = 0;
  row.repair_fraction = 0.0;
}

}  // namespace

RobustnessReport evaluate_robustness(
    const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
    const FaultPlan& plan,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const RobustnessOptions& opt) {
  validate_fault_plan(plan, n);
  RobustnessReport report;
  report.faults = plan.events;
  std::stable_sort(report.faults.begin(), report.faults.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });

  const PostFaultNetwork pf = post_fault_network(n, plan);
  const TaskGraph remapped_g = remap_pinned(g, pf.old_to_new);
  const bool can_rebase = pins_unchanged(g, pf.old_to_new);
  bool hosts_graph = pf.network.num_devices() > 0;
  if (hosts_graph) {
    try {
      (void)feasible_sets(remapped_g, pf.network);
    } catch (const std::runtime_error&) {
      hosts_graph = false;  // pinned device lost or no surviving host
    }
  }

  // One row per non-null placer, computed independently (each with its own
  // environment and RNG) and collected in placer order, so the report is the
  // same for every thread count. Policies must be distinct objects - they
  // carry per-episode search state.
  std::vector<int> active;
  for (std::size_t i = 0; i < placers.size(); ++i) {
    if (placers[i].second != nullptr) active.push_back(static_cast<int>(i));
  }
  std::vector<RepairOutcome> rows(active.size());
  util::parallel_for(static_cast<int>(active.size()), opt.threads, [&](int ri) {
    const auto& [name, policy] = placers[active[ri]];
    RepairOutcome row;
    row.placer = name;

    // 1. Fault-free baseline: every placer starts from the same seeded
    // initial placement (the paper's comparability protocol).
    std::mt19937_64 rng(opt.seed);
    PlacementSearchEnv env(g, n, lat, makespan_objective(lat), random_placement(g, n, rng));
    run_search(*policy, env, opt.baseline_steps_factor * g.num_tasks(), rng);
    const Placement pre_fault = env.best_placement();
    row.fault_free_makespan = env.best_objective();

    // 2. Replay the placement against the fault plan.
    replay_faults(g, n, lat, plan, pre_fault, row);

    // 3. Incremental repair: patch stranded tasks, resume search warm.
    if (!hosts_graph) {
      mark_unrecoverable(row);
    } else {
      const Placement damaged = remap_placement(pre_fault, pf.old_to_new);
      int affected = 0;
      for (int v = 0; v < damaged.num_tasks(); ++v) {
        if (damaged.device_of(v) < 0) ++affected;
      }
      Placement patched = damaged;
      if (!patch_damaged(remapped_g, pf.network, lat, patched)) {
        mark_unrecoverable(row);
      } else {
        const int budget =
            opt.repair_budget > 0 ? opt.repair_budget : std::max(2, 2 * affected);
        // Resume the same environment from the damaged placement when the
        // graph is unchanged (the warm start the GiPH story needs); rebuild
        // only when pinned ids had to be remapped.
        std::optional<PlacementSearchEnv> repair_env;
        if (can_rebase) {
          env.rebase(pf.network, patched);
        } else {
          repair_env.emplace(remapped_g, pf.network, lat, makespan_objective(lat),
                             patched);
        }
        PlacementSearchEnv& renv = can_rebase ? env : *repair_env;
        run_search(*policy, renv, budget, rng);
        row.recovery_makespan = renv.best_objective();
        row.tasks_moved = count_moves(damaged, renv.best_placement());
        row.repair_steps = budget;
      }
    }
    finish_row(g, row);
    rows[ri] = std::move(row);
  });
  for (RepairOutcome& row : rows) report.rows.push_back(std::move(row));

  // HEFT: schedule once fault-free, full reschedule on the damaged network.
  {
    RepairOutcome row;
    row.placer = "HEFT";
    const Placement pre_fault = heft_schedule(g, n, lat).placement;
    row.fault_free_makespan = makespan(g, n, pre_fault, lat);
    replay_faults(g, n, lat, plan, pre_fault, row);
    if (!hosts_graph) {
      mark_unrecoverable(row);
    } else {
      const Placement repaired = heft_schedule(remapped_g, pf.network, lat).placement;
      row.recovery_makespan = makespan(remapped_g, pf.network, repaired, lat);
      row.tasks_moved = count_moves(remap_placement(pre_fault, pf.old_to_new), repaired);
      row.repair_steps = g.num_tasks();
    }
    finish_row(g, row);
    report.rows.push_back(std::move(row));
  }
  return report;
}

namespace {

/// One churn epoch compacted to its surviving devices: the network the
/// placers actually see, the universe <-> compact id maps, the pin-remapped
/// graph, and whether the epoch can host the graph at all.
struct CompactEpoch {
  DeviceNetwork net;
  std::vector<int> old_to_new;
  std::vector<int> new_to_old;
  TaskGraph remapped_g;
  bool can_rebase = true;  ///< pins keep their ids under the compaction
  bool hosts = false;
};

CompactEpoch compact_epoch(const TaskGraph& g, const ChurnEpoch& e) {
  CompactEpoch c;
  const int m = e.network.num_devices();
  c.old_to_new.assign(m, -1);
  for (int k = 0; k < m; ++k) {
    if (!e.up[k]) continue;
    c.old_to_new[k] = c.net.add_device(e.network.device(k));
    c.new_to_old.push_back(k);
  }
  for (int a = 0; a < static_cast<int>(c.new_to_old.size()); ++a) {
    for (int b = 0; b < static_cast<int>(c.new_to_old.size()); ++b) {
      if (a == b) continue;
      c.net.set_link(a, b, e.network.bandwidth(c.new_to_old[a], c.new_to_old[b]),
                     e.network.delay(c.new_to_old[a], c.new_to_old[b]));
    }
  }
  c.remapped_g = remap_pinned(g, c.old_to_new);
  c.can_rebase = pins_unchanged(g, c.old_to_new);
  c.hosts = c.net.num_devices() > 0;
  if (c.hosts) {
    try {
      (void)feasible_sets(c.remapped_g, c.net);
    } catch (const std::runtime_error&) {
      c.hosts = false;
    }
  }
  return c;
}

void mark_unrecoverable(ChurnCell& cell) {
  cell.recoverable = false;
  cell.makespan_before = kInf;
  cell.makespan_after = kInf;
}

void summarize_row(ChurnRow& row) {
  double sum = 0.0;
  int finite = 0;
  long step_sum = 0;
  for (std::size_t t = 0; t < row.cells.size(); ++t) {
    const ChurnCell& cell = row.cells[t];
    if (cell.recoverable && cell.makespan_after < kInf) {
      sum += cell.makespan_after;
      ++finite;
    }
    row.total_stranded += cell.stranded;
    if (t >= 1 && cell.stranded > 0) {
      ++row.disruptions;
      step_sum += cell.repair_steps;
    }
  }
  row.mean_makespan = finite > 0 ? sum / finite : kInf;
  row.mean_recovery_steps =
      row.disruptions > 0 ? static_cast<double>(step_sum) / row.disruptions : 0.0;
}

/// The inherited universe placement mapped onto an epoch; cell.stranded is
/// filled with the tasks whose device is gone.
Placement inherit(const Placement& universe_p, const CompactEpoch& c, ChurnCell& cell) {
  Placement p = remap_placement(universe_p, c.old_to_new);
  for (int v = 0; v < p.num_tasks(); ++v) {
    if (p.device_of(v) < 0) ++cell.stranded;
  }
  return p;
}

}  // namespace

void validate_churn_script(const ChurnScript& script) {
  if (script.epochs.empty()) {
    throw std::invalid_argument("churn script: no epochs");
  }
  const int m = script.epochs.front().network.num_devices();
  double prev_time = -kInf;
  for (std::size_t t = 0; t < script.epochs.size(); ++t) {
    const ChurnEpoch& e = script.epochs[t];
    const std::string where = "churn script epoch " + std::to_string(t) + ": ";
    if (!std::isfinite(e.time)) {
      throw std::invalid_argument(where + "time must be finite");
    }
    if (e.time < prev_time) {
      throw std::invalid_argument(where + "time " + std::to_string(e.time) +
                                  " precedes epoch " + std::to_string(t - 1));
    }
    prev_time = e.time;
    if (e.network.num_devices() != m) {
      throw std::invalid_argument(
          where + "universe changed size (" + std::to_string(e.network.num_devices()) +
          " devices, epoch 0 has " + std::to_string(m) +
          "); model churn with the up mask, not by resizing the network");
    }
    if (static_cast<int>(e.up.size()) != m) {
      throw std::invalid_argument(where + "up mask has " + std::to_string(e.up.size()) +
                                  " entries for " + std::to_string(m) + " devices");
    }
    if (std::find(e.up.begin(), e.up.end(), char(1)) == e.up.end()) {
      throw std::invalid_argument(where + "no device is up");
    }
  }
}

ChurnReport evaluate_churn(
    const TaskGraph& g, const ChurnScript& script, const LatencyModel& lat,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const ChurnOptions& opt) {
  validate_churn_script(script);
  const int nv = g.num_tasks();
  const int T = static_cast<int>(script.epochs.size());
  ChurnReport report;
  report.num_epochs = T;

  // Compact every epoch once, up front; the epochs outlive every environment
  // rebased onto them (rebase() keeps a pointer to the network).
  std::vector<CompactEpoch> eps;
  eps.reserve(script.epochs.size());
  for (const ChurnEpoch& e : script.epochs) eps.push_back(compact_epoch(g, e));
  bool all_rebase = true;
  for (const CompactEpoch& c : eps) all_rebase = all_rebase && c.can_rebase;

  const int baseline_budget = std::max(2, opt.baseline_steps_factor * nv);
  const int drift_budget = opt.drift_budget > 0 ? opt.drift_budget : std::max(2, nv / 2);

  // Search-policy rows, computed independently (own policy object, RNG, and
  // environment chain) and collected in placer order: the report is the same
  // for every thread count.
  std::vector<int> active;
  for (std::size_t i = 0; i < placers.size(); ++i) {
    if (placers[i].second != nullptr) active.push_back(static_cast<int>(i));
  }
  std::vector<ChurnRow> rows(active.size());
  util::parallel_for(static_cast<int>(active.size()), opt.threads, [&](int ri) {
    const auto& [name, policy] = placers[active[ri]];
    ChurnRow row;
    row.placer = name;
    row.cells.resize(T);
    std::mt19937_64 rng(opt.seed);
    Placement universe_p(nv);  // all -1 until first placement
    bool placed = false;
    std::optional<PlacementSearchEnv> env;

    for (int t = 0; t < T; ++t) {
      const CompactEpoch& c = eps[t];
      ChurnCell& cell = row.cells[t];
      if (!c.hosts) {
        mark_unrecoverable(cell);
        continue;  // carry the previous placement into the next epoch
      }
      const TaskGraph& eg = all_rebase ? g : c.remapped_g;
      if (!placed) {
        // First hostable epoch (normally epoch 0): seeded fresh placement
        // plus the fault-free baseline budget.
        const Placement initial = random_placement(eg, c.net, rng);
        cell.makespan_before = t == 0 ? makespan(eg, c.net, initial, lat) : kInf;
        env.emplace(eg, c.net, lat, makespan_objective(lat), initial);
        run_search(*policy, *env, baseline_budget, rng);
        cell.repair_steps = baseline_budget;
        placed = true;
      } else {
        const Placement damaged = inherit(universe_p, c, cell);
        cell.makespan_before =
            cell.stranded == 0 ? makespan(eg, c.net, damaged, lat) : kInf;
        Placement patched = damaged;
        if (!patch_damaged(eg, c.net, lat, patched)) {
          mark_unrecoverable(cell);
          continue;
        }
        const int budget =
            cell.stranded > 0
                ? (opt.repair_budget > 0 ? opt.repair_budget
                                         : std::max(2, 2 * cell.stranded))
                : drift_budget;
        if (all_rebase) {
          env->rebase(c.net, patched);
        } else {
          env.emplace(eg, c.net, lat, makespan_objective(lat), patched);
        }
        run_search(*policy, *env, budget, rng);
        cell.repair_steps = budget;
        cell.moved = count_moves(damaged, env->best_placement());
      }
      cell.makespan_after = env->best_objective();
      const Placement best = env->best_placement();
      universe_p = Placement(nv);
      for (int v = 0; v < nv; ++v) universe_p.set(v, c.new_to_old[best.device_of(v)]);
    }
    summarize_row(row);
    rows[ri] = std::move(row);
  });
  for (ChurnRow& row : rows) report.rows.push_back(std::move(row));

  // "static": the epoch-0 HEFT placement frozen forever - what not adapting
  // costs. "HEFT": a full reschedule every epoch - what adapting by brute
  // force costs.
  Placement static_universe(nv);
  bool static_placed = false;
  {
    ChurnRow row;
    row.placer = "static";
    row.cells.resize(T);
    for (int t = 0; t < T; ++t) {
      const CompactEpoch& c = eps[t];
      ChurnCell& cell = row.cells[t];
      if (!c.hosts) {
        mark_unrecoverable(cell);
        continue;
      }
      if (!static_placed) {
        const Placement p = heft_schedule(c.remapped_g, c.net, lat).placement;
        cell.makespan_before = cell.makespan_after = makespan(c.remapped_g, c.net, p, lat);
        cell.repair_steps = nv;
        static_universe = Placement(nv);
        for (int v = 0; v < nv; ++v) {
          static_universe.set(v, c.new_to_old[p.device_of(v)]);
        }
        static_placed = true;
        continue;
      }
      const Placement frozen = inherit(static_universe, c, cell);
      cell.makespan_before = cell.makespan_after =
          cell.stranded == 0 ? makespan(c.remapped_g, c.net, frozen, lat) : kInf;
    }
    summarize_row(row);
    report.rows.push_back(std::move(row));
  }
  {
    ChurnRow row;
    row.placer = "HEFT";
    row.cells.resize(T);
    Placement universe_p(nv);
    bool placed = false;
    for (int t = 0; t < T; ++t) {
      const CompactEpoch& c = eps[t];
      ChurnCell& cell = row.cells[t];
      if (!c.hosts) {
        mark_unrecoverable(cell);
        continue;
      }
      Placement damaged(nv);
      if (placed) {
        damaged = inherit(universe_p, c, cell);
        cell.makespan_before =
            cell.stranded == 0 ? makespan(c.remapped_g, c.net, damaged, lat) : kInf;
      } else {
        cell.makespan_before = kInf;
      }
      const Placement p = heft_schedule(c.remapped_g, c.net, lat).placement;
      cell.makespan_after = makespan(c.remapped_g, c.net, p, lat);
      cell.repair_steps = nv;
      if (placed) cell.moved = count_moves(damaged, p);
      universe_p = Placement(nv);
      for (int v = 0; v < nv; ++v) universe_p.set(v, c.new_to_old[p.device_of(v)]);
      placed = true;
    }
    if (placed && T > 0 && eps[0].hosts) {
      row.cells[0].makespan_before = row.cells[0].makespan_after;
    }
    summarize_row(row);
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string format_churn_report(const ChurnReport& report) {
  std::ostringstream out;
  char line[256];
  out << "makespan over time (one column per placer; * = stranded tasks that "
         "epoch, x = unrecoverable):\n";
  std::snprintf(line, sizeof(line), "%-7s", "epoch");
  out << line;
  for (const ChurnRow& r : report.rows) {
    std::snprintf(line, sizeof(line), " %14s", r.placer.c_str());
    out << line;
  }
  out << "\n";
  for (int t = 0; t < report.num_epochs; ++t) {
    std::snprintf(line, sizeof(line), "%-7d", t);
    out << line;
    for (const ChurnRow& r : report.rows) {
      const ChurnCell& cell = r.cells[t];
      char value[32];
      if (!cell.recoverable) {
        std::snprintf(value, sizeof(value), "%13s", "x");
      } else if (cell.makespan_after == kInf) {
        std::snprintf(value, sizeof(value), "%13s", "stranded");
      } else {
        std::snprintf(value, sizeof(value), "%13.4g", cell.makespan_after);
      }
      std::snprintf(line, sizeof(line), " %s%c", value, cell.stranded > 0 ? '*' : ' ');
      out << line;
    }
    out << "\n";
  }
  out << "\n";
  std::snprintf(line, sizeof(line), "%-16s %13s %11s %9s %15s\n", "placer",
                "mean makespan", "disruptions", "stranded", "recovery steps");
  out << line;
  for (const ChurnRow& r : report.rows) {
    char mean[32];
    if (r.mean_makespan == kInf) {
      std::snprintf(mean, sizeof(mean), "%13s", "-");
    } else {
      std::snprintf(mean, sizeof(mean), "%13.4g", r.mean_makespan);
    }
    std::snprintf(line, sizeof(line), "%-16s %s %11d %9d %15.1f\n", r.placer.c_str(),
                  mean, r.disruptions, r.total_stranded, r.mean_recovery_steps);
    out << line;
  }
  return out.str();
}

std::string format_report(const RobustnessReport& report) {
  std::ostringstream out;
  out << "injected faults:\n";
  if (report.faults.empty()) out << "  (none)\n";
  for (const FaultEvent& e : report.faults) out << "  " << describe(e) << "\n";
  out << "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %12s %12s %9s %12s %8s %7s %7s\n", "placer",
                "fault-free", "faulted", "stranded", "recovery", "degrade", "moved",
                "repair");
  out << line;
  const auto num_or = [](double x, const char* word, char* buf, std::size_t size) {
    if (x == std::numeric_limits<double>::infinity()) {
      std::snprintf(buf, size, "%12s", word);
    } else {
      std::snprintf(buf, size, "%12.4g", x);
    }
    return buf;
  };
  for (const RepairOutcome& r : report.rows) {
    char faulted[32], recovery[32];
    num_or(r.faulted_makespan, "stranded", faulted, sizeof(faulted));
    num_or(r.recovery_makespan, "unrecoverable", recovery, sizeof(recovery));
    if (!r.recoverable) {
      std::snprintf(line, sizeof(line), "%-16s %12.4g %s %9d %s\n", r.placer.c_str(),
                    r.fault_free_makespan, faulted, r.stranded_tasks, recovery);
    } else {
      std::snprintf(line, sizeof(line), "%-16s %12.4g %s %9d %s %7.2fx %7d %6d\n",
                    r.placer.c_str(), r.fault_free_makespan, faulted, r.stranded_tasks,
                    recovery, r.degradation_ratio, r.tasks_moved, r.repair_steps);
    }
    out << line;
  }
  return out.str();
}

}  // namespace giph::eval
