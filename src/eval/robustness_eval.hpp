#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/reinforce.hpp"
#include "sim/faults.hpp"

namespace giph::eval {

/// Options of the robustness protocol. All randomness is derived from `seed`,
/// and every placer sees the same seeded initial placement, so a report is
/// bitwise reproducible for a fixed (instance, plan, seed).
struct RobustnessOptions {
  std::uint64_t seed = 1;
  /// Fault-free search budget = factor * |V| steps (the paper's 2|V|).
  int baseline_steps_factor = 2;
  /// Search budget of the post-fault repair; 0 = 2 * (tasks forced to move),
  /// at least 2. HEFT always pays a full reschedule of |V| tasks instead.
  int repair_budget = 0;
  /// Worker threads for the per-placer rows (1 = serial, <= 0 = one per
  /// hardware thread). Each row already has its own policy object, RNG, and
  /// environment, so the report is identical for every thread count.
  int threads = 1;
};

/// One placer's journey through the fault scenario.
struct RepairOutcome {
  std::string placer;
  /// False when the post-fault network cannot host the graph at all (a
  /// pinned task's device died, or no device remains for some requirement);
  /// repair fields are then meaningless (infinity / zero).
  bool recoverable = true;
  double fault_free_makespan = 0.0;
  /// Makespan of replaying the pre-fault placement against the fault plan;
  /// infinity when tasks were stranded (the placement is broken, not slow).
  double faulted_makespan = 0.0;
  int stranded_tasks = 0;  ///< tasks stranded before any repair
  /// Makespan of the repaired placement on the post-fault network.
  double recovery_makespan = 0.0;
  /// recovery_makespan / fault_free_makespan (>= ~1 means full recovery cost).
  double degradation_ratio = 0.0;
  /// Tasks whose device changed between the pre-fault and repaired placement.
  int tasks_moved = 0;
  /// Repair cost: search node-visits for search policies, |V| for HEFT's
  /// full reschedule.
  int repair_steps = 0;
  /// repair_steps / |V| - below 1.0 means the repair was cheaper than a full
  /// reschedule (the paper's incremental-repair claim).
  double repair_fraction = 0.0;
};

struct RobustnessReport {
  std::vector<FaultEvent> faults;  ///< the injected plan, time-ordered
  std::vector<RepairOutcome> rows;
};

/// The fault-recovery protocol, measuring the paper's adaptivity claim:
/// 1. each placer produces a fault-free placement of (g, n) - search policies
///    run baseline_steps_factor * |V| seeded search steps, HEFT schedules
///    once - and its fault-free makespan is recorded;
/// 2. the placement is replayed under `plan` with simulate_with_faults(),
///    yielding the degraded makespan or the stranded-task count;
/// 3. the network is rolled past all faults (post_fault_network()); each
///    search policy repairs incrementally: stranded tasks are patched onto
///    their fastest feasible surviving device and the policy resumes search
///    from that damaged placement (PlacementSearchEnv::rebase) for a small
///    budget, while HEFT reschedules from scratch;
/// 4. recovery makespan, degradation ratio, and repair cost are reported.
///
/// `placers` maps display names to search policies (nullptr entries are
/// skipped); a "HEFT" row is always appended.
RobustnessReport evaluate_robustness(
    const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
    const FaultPlan& plan,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const RobustnessOptions& opt = {});

/// Fixed-width text rendering of a report (CLI / bench output).
std::string format_report(const RobustnessReport& report);

// ---------------------------------------------------------------------------
// Continuous churn: the dynamic-conditions protocol. Where the fault protocol
// above injects one plan and repairs once, churn streams a whole scenario -
// epochs of devices joining, leaving, and links drifting (e.g. from the
// grid-mobility simulator, casestudy/churn.hpp) - and policies re-place
// online after every epoch.

/// One epoch of a churn scenario: the state of a fixed device *universe* at
/// `time`. `up[k]` says whether universe device k currently participates;
/// `network` carries the whole universe (links touching down devices are
/// ignored). The universe - device count, ids, capabilities - never changes
/// across epochs; only membership and link quality do.
struct ChurnEpoch {
  double time = 0.0;
  std::vector<char> up;
  DeviceNetwork network;
};

/// A deterministic churn scenario: epochs in non-decreasing time order over
/// one device universe.
struct ChurnScript {
  std::vector<ChurnEpoch> epochs;
};

/// Throws std::invalid_argument (naming the epoch and field) when the script
/// is malformed: no epochs, inconsistent universe size, non-finite or
/// decreasing times, or an epoch with no device up.
void validate_churn_script(const ChurnScript& script);

struct ChurnOptions {
  std::uint64_t seed = 1;
  /// Epoch-0 search budget = factor * |V| (the paper's 2|V|).
  int baseline_steps_factor = 2;
  /// Budget of an epoch whose churn stranded tasks; 0 = 2 * stranded count,
  /// at least 2.
  int repair_budget = 0;
  /// Budget of an epoch with no stranding (links drifted, nothing broke);
  /// 0 = max(2, |V| / 2).
  int drift_budget = 0;
  /// Worker threads over placer rows; any value yields the same report.
  int threads = 1;
};

/// One placer's state at one epoch.
struct ChurnCell {
  /// Makespan of the *inherited* placement on this epoch's network (infinity
  /// when tasks were stranded or the epoch is unrecoverable). For epoch 0:
  /// the seeded initial placement.
  double makespan_before = 0.0;
  /// Makespan after this epoch's online re-placement.
  double makespan_after = 0.0;
  int stranded = 0;      ///< tasks whose device left this epoch
  int moved = 0;         ///< tasks moved by the re-placement
  int repair_steps = 0;  ///< search steps spent this epoch
  /// False when the epoch's surviving devices cannot host the graph; the
  /// placer carries its previous placement into the next epoch.
  bool recoverable = true;
};

struct ChurnRow {
  std::string placer;
  std::vector<ChurnCell> cells;  ///< one per epoch
  double mean_makespan = 0.0;    ///< mean makespan_after over recoverable epochs
  int disruptions = 0;           ///< epochs (t >= 1) with stranded tasks
  int total_stranded = 0;
  /// Recovery latency in search steps: mean repair_steps over disrupted
  /// epochs (0 when nothing was ever disrupted). Deterministic by design -
  /// wall-clock recovery time would not be seed-reproducible.
  double mean_recovery_steps = 0.0;
};

struct ChurnReport {
  int num_epochs = 0;
  std::vector<ChurnRow> rows;
};

/// The continuous-churn protocol. Per placer row:
/// - epoch 0: seeded random initial placement, baseline_steps_factor * |V|
///   search steps on the epoch-0 network;
/// - every later epoch: the inherited placement is remapped onto the epoch's
///   surviving devices (tasks on departed devices count as stranded and are
///   patched onto their fastest feasible device), then the policy resumes
///   search warm via PlacementSearchEnv::rebase for the repair / drift
///   budget.
/// Two reference rows are appended: "static" (the epoch-0 HEFT placement
/// frozen forever - stranded epochs stay broken) and "HEFT" (full |V|-task
/// reschedule every epoch). Deterministic: seed-reproducible and identical
/// for every opt.threads value.
ChurnReport evaluate_churn(
    const TaskGraph& g, const ChurnScript& script, const LatencyModel& lat,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const ChurnOptions& opt = {});

/// Fixed-width makespan-over-time table plus per-placer summary.
std::string format_churn_report(const ChurnReport& report);

}  // namespace giph::eval
