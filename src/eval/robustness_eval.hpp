#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/reinforce.hpp"
#include "sim/faults.hpp"

namespace giph::eval {

/// Options of the robustness protocol. All randomness is derived from `seed`,
/// and every placer sees the same seeded initial placement, so a report is
/// bitwise reproducible for a fixed (instance, plan, seed).
struct RobustnessOptions {
  std::uint64_t seed = 1;
  /// Fault-free search budget = factor * |V| steps (the paper's 2|V|).
  int baseline_steps_factor = 2;
  /// Search budget of the post-fault repair; 0 = 2 * (tasks forced to move),
  /// at least 2. HEFT always pays a full reschedule of |V| tasks instead.
  int repair_budget = 0;
  /// Worker threads for the per-placer rows (1 = serial, <= 0 = one per
  /// hardware thread). Each row already has its own policy object, RNG, and
  /// environment, so the report is identical for every thread count.
  int threads = 1;
};

/// One placer's journey through the fault scenario.
struct RepairOutcome {
  std::string placer;
  /// False when the post-fault network cannot host the graph at all (a
  /// pinned task's device died, or no device remains for some requirement);
  /// repair fields are then meaningless (infinity / zero).
  bool recoverable = true;
  double fault_free_makespan = 0.0;
  /// Makespan of replaying the pre-fault placement against the fault plan;
  /// infinity when tasks were stranded (the placement is broken, not slow).
  double faulted_makespan = 0.0;
  int stranded_tasks = 0;  ///< tasks stranded before any repair
  /// Makespan of the repaired placement on the post-fault network.
  double recovery_makespan = 0.0;
  /// recovery_makespan / fault_free_makespan (>= ~1 means full recovery cost).
  double degradation_ratio = 0.0;
  /// Tasks whose device changed between the pre-fault and repaired placement.
  int tasks_moved = 0;
  /// Repair cost: search node-visits for search policies, |V| for HEFT's
  /// full reschedule.
  int repair_steps = 0;
  /// repair_steps / |V| - below 1.0 means the repair was cheaper than a full
  /// reschedule (the paper's incremental-repair claim).
  double repair_fraction = 0.0;
};

struct RobustnessReport {
  std::vector<FaultEvent> faults;  ///< the injected plan, time-ordered
  std::vector<RepairOutcome> rows;
};

/// The fault-recovery protocol, measuring the paper's adaptivity claim:
/// 1. each placer produces a fault-free placement of (g, n) - search policies
///    run baseline_steps_factor * |V| seeded search steps, HEFT schedules
///    once - and its fault-free makespan is recorded;
/// 2. the placement is replayed under `plan` with simulate_with_faults(),
///    yielding the degraded makespan or the stranded-task count;
/// 3. the network is rolled past all faults (post_fault_network()); each
///    search policy repairs incrementally: stranded tasks are patched onto
///    their fastest feasible surviving device and the policy resumes search
///    from that damaged placement (PlacementSearchEnv::rebase) for a small
///    budget, while HEFT reschedules from scratch;
/// 4. recovery makespan, degradation ratio, and repair cost are reported.
///
/// `placers` maps display names to search policies (nullptr entries are
/// skipped); a "HEFT" row is always appended.
RobustnessReport evaluate_robustness(
    const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
    const FaultPlan& plan,
    const std::vector<std::pair<std::string, SearchPolicy*>>& placers,
    const RobustnessOptions& opt = {});

/// Fixed-width text rendering of a report (CLI / bench output).
std::string format_report(const RobustnessReport& report);

}  // namespace giph::eval
