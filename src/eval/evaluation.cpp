#include "eval/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "heft/heft.hpp"
#include "util/parallel_for.hpp"

namespace giph::eval {

std::vector<double> curve_fractions(int points) {
  std::vector<double> f(points);
  for (int i = 0; i < points; ++i) f[i] = static_cast<double>(i + 1) / points;
  return f;
}

namespace {

SearchTrace run_case(SearchPolicy& policy, const Case& c, const LatencyModel& lat,
                     double noise, std::uint64_t case_seed,
                     const ObjectiveFactory& objective) {
  const TaskGraph& g = *c.graph;
  const DeviceNetwork& n = *c.network;
  std::mt19937_64 rng(case_seed);
  const Placement init = random_placement(g, n, rng);
  // A custom objective reports raw values (denominator 1): SLR is a makespan
  // concept and a lower-bound schedule does not normalize e.g. a p99 latency.
  const double denom = objective ? 1.0 : slr_denominator(g, n, lat);
  ScheduleObjective obj =
      objective ? objective(g, n, rng)
                : (noise > 0.0 ? noisy_makespan_objective(lat, noise, rng)
                               : makespan_objective(lat));
  PlacementSearchEnv env(g, n, lat, std::move(obj), init, denom);
  SearchTrace trace = run_search(policy, env, 2 * g.num_tasks(), rng);
  // A 0-step search (empty graph) leaves best_so_far empty; report the
  // initial objective so downstream .back()/index lookups stay defined.
  if (trace.best_so_far.empty()) trace.best_so_far.push_back(trace.initial);
  return trace;
}

/// Sums per-case curve contributions into `values` (sized `points`).
void add_curve_contribution(std::vector<double>& values, const SearchTrace& trace,
                            const std::vector<double>& fractions) {
  const int points = static_cast<int>(values.size());
  const int steps = static_cast<int>(trace.best_so_far.size());
  for (int i = 0; i < points; ++i) {
    const int idx = std::clamp(
        static_cast<int>(std::lround(fractions[i] * steps)) - 1, 0, steps - 1);
    values[i] += trace.best_so_far[idx];
  }
}

}  // namespace

Curve policy_curve(SearchPolicy& policy, const std::vector<Case>& cases,
                   const LatencyModel& lat, double noise, std::uint64_t seed,
                   int points, const ObjectiveFactory& objective) {
  Curve curve;
  curve.name = policy.name();
  curve.values.assign(points, 0.0);
  const auto fractions = curve_fractions(points);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    add_curve_contribution(
        curve.values, run_case(policy, cases[ci], lat, noise, seed + ci, objective),
        fractions);
  }
  for (double& v : curve.values) v /= static_cast<double>(std::max<std::size_t>(1, cases.size()));
  return curve;
}

Curve policy_curve(const PolicyFactory& make_policy, const std::vector<Case>& cases,
                   const LatencyModel& lat, double noise, std::uint64_t seed,
                   int points, int threads, const ObjectiveFactory& objective) {
  Curve curve;
  curve.values.assign(points, 0.0);
  const auto fractions = curve_fractions(points);
  // Per-case slots written concurrently, reduced sequentially in case order:
  // the floating-point sum is the same for every thread count.
  std::vector<std::vector<double>> slots(cases.size());
  std::vector<std::string> names(cases.size());
  util::parallel_for(static_cast<int>(cases.size()), threads, [&](int ci) {
    auto policy = make_policy();
    names[ci] = policy->name();
    slots[ci].assign(points, 0.0);
    add_curve_contribution(
        slots[ci],
        run_case(*policy, cases[ci], lat, noise, seed + static_cast<std::uint64_t>(ci),
                 objective),
        fractions);
  });
  for (const auto& slot : slots) {
    for (int i = 0; i < points; ++i) curve.values[i] += slot[i];
  }
  for (double& v : curve.values) v /= static_cast<double>(std::max<std::size_t>(1, cases.size()));
  curve.name = cases.empty() ? make_policy()->name() : names.front();
  return curve;
}

std::vector<double> policy_finals(SearchPolicy& policy, const std::vector<Case>& cases,
                                  const LatencyModel& lat, double noise,
                                  std::uint64_t seed, const ObjectiveFactory& objective) {
  std::vector<double> finals;
  finals.reserve(cases.size());
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    finals.push_back(
        run_case(policy, cases[ci], lat, noise, seed + ci, objective).best_so_far.back());
  }
  return finals;
}

std::vector<double> policy_finals(const PolicyFactory& make_policy,
                                  const std::vector<Case>& cases,
                                  const LatencyModel& lat, double noise,
                                  std::uint64_t seed, int threads,
                                  const ObjectiveFactory& objective) {
  std::vector<double> finals(cases.size(), 0.0);
  util::parallel_for(static_cast<int>(cases.size()), threads, [&](int ci) {
    auto policy = make_policy();
    finals[ci] = run_case(*policy, cases[ci], lat, noise,
                          seed + static_cast<std::uint64_t>(ci), objective)
                     .best_so_far.back();
  });
  return finals;
}

std::vector<double> heft_finals(const std::vector<Case>& cases, const LatencyModel& lat,
                                int threads) {
  std::vector<double> finals(cases.size(), 0.0);
  util::parallel_for(static_cast<int>(cases.size()), threads, [&](int ci) {
    const Case& c = cases[ci];
    const double denom = slr_denominator(*c.graph, *c.network, lat);
    const HeftResult r = heft_schedule(*c.graph, *c.network, lat);
    finals[ci] = makespan(*c.graph, *c.network, r.placement, lat) / denom;
  });
  return finals;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stdev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * (static_cast<double>(xs.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Interval bootstrap_mean_ci(const std::vector<double>& xs, double confidence,
                           int resamples, std::uint64_t seed) {
  if (xs.empty()) return {};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, xs.size() - 1);
  std::vector<double> means(resamples);
  for (int r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) s += xs[pick(rng)];
    means[r] = s / static_cast<double>(xs.size());
  }
  const double alpha = (1.0 - confidence) / 2.0;
  return Interval{percentile(means, 100.0 * alpha), percentile(means, 100.0 * (1.0 - alpha))};
}

WinRate win_rate(const std::vector<double>& a, const std::vector<double>& b,
                 double tol) {
  WinRate w;
  if (a.size() != b.size() || a.empty()) return w;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - tol) {
      w.better += 1.0;
    } else if (a[i] > b[i] + tol) {
      w.worse += 1.0;
    } else {
      w.equal += 1.0;
    }
  }
  const double n = static_cast<double>(a.size());
  w.better /= n;
  w.equal /= n;
  w.worse /= n;
  return w;
}

}  // namespace giph::eval
