#include "eval/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace giph::eval {

std::string ascii_chart(const std::vector<Series>& series, const ChartOptions& options) {
  if (series.empty()) throw std::invalid_argument("ascii_chart: no series");
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const Series& s : series) {
    if (s.y.empty()) throw std::invalid_argument("ascii_chart: empty series");
    if (!s.x.empty() && s.x.size() != s.y.size()) {
      throw std::invalid_argument("ascii_chart: x/y size mismatch");
    }
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      const double x = s.x.empty() ? static_cast<double>(i) : s.x[i];
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
    }
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(h, std::string(w, ' '));
  auto col_of = [&](double x) {
    return std::clamp(static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (w - 1))),
                      0, w - 1);
  };
  auto row_of = [&](double y) {
    const int r = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (h - 1)));
    return std::clamp(h - 1 - r, 0, h - 1);  // row 0 is the top
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    const char mark = static_cast<char>('a' + si % 26);
    int prev_c = -1, prev_r = -1;
    for (std::size_t i = 0; i < s.y.size(); ++i) {
      const double x = s.x.empty() ? static_cast<double>(i) : s.x[i];
      const int c = col_of(x);
      const int r = row_of(s.y[i]);
      if (prev_c >= 0) {
        // Linear interpolation between consecutive samples.
        const int steps = std::max(std::abs(c - prev_c), std::abs(r - prev_r));
        for (int k = 1; k < steps; ++k) {
          const int ic = prev_c + (c - prev_c) * k / steps;
          const int ir = prev_r + (r - prev_r) * k / steps;
          grid[ir][ic] = mark;
        }
      }
      grid[r][c] = mark;
      prev_c = c;
      prev_r = r;
    }
  }

  std::ostringstream out;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4g", ymax);
  out << buf << " +" << std::string(w, '-') << "+\n";
  for (int r = 0; r < h; ++r) {
    out << std::string(11, ' ') << '|' << grid[r] << "|\n";
  }
  std::snprintf(buf, sizeof(buf), "%10.4g", ymin);
  out << buf << " +" << std::string(w, '-') << "+\n";
  std::snprintf(buf, sizeof(buf), "%.4g", xmin);
  std::string footer = std::string(12, ' ') + buf;
  std::snprintf(buf, sizeof(buf), "%.4g", xmax);
  const std::string xmax_s = buf;
  const std::size_t target = 12 + w - xmax_s.size();
  if (footer.size() < target) footer += std::string(target - footer.size(), ' ');
  footer += xmax_s;
  out << footer;
  if (!options.x_label.empty()) out << "  (" << options.x_label << ")";
  out << "\n";
  out << "legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << " " << static_cast<char>('a' + si % 26) << "=" << series[si].name;
  }
  if (!options.y_label.empty()) out << "   [y: " << options.y_label << "]";
  out << "\n";
  return out.str();
}

}  // namespace giph::eval
