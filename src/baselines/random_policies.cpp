#include "baselines/random_policies.hpp"

#include "heft/heft.hpp"

namespace giph {

ActionDecision RandomSamplingPolicy::decide(PlacementSearchEnv& env,
                                            std::mt19937_64& rng, bool) {
  ActionDecision d;
  d.full = random_placement(env.graph(), env.network(), rng);
  return d;
}

ActionDecision RandomTaskEftPolicy::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                           bool) {
  std::uniform_int_distribution<int> pick(0, env.graph().num_tasks() - 1);
  const int task = pick(rng);
  const int device = eft_select_device(env.graph(), env.network(), env.placement(),
                                       env.latency(), env.schedule(),
                                       env.schedule_index(), task);
  return ActionDecision{SearchAction{task, device}, nullptr, std::nullopt};
}

ActionDecision RandomWalkPolicy::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                        bool) {
  std::uniform_int_distribution<int> pick_task(0, env.graph().num_tasks() - 1);
  const int task = pick_task(rng);
  const auto& devs = env.feasible()[task];
  std::uniform_int_distribution<std::size_t> pick_dev(0, devs.size() - 1);
  return ActionDecision{SearchAction{task, devs[pick_dev(rng)]}, nullptr, std::nullopt};
}

}  // namespace giph
