#include "baselines/rnn_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/optimizer.hpp"

namespace giph {

using nn::Var;
using nn::concat_cols;
using nn::concat_rows;
using nn::log_softmax_col;
using nn::pick;
using nn::row;

namespace {

nn::Matrix build_inputs(const TaskGraph& g, const std::vector<int>& order,
                        int num_hw_kinds) {
  const int nv = g.num_tasks();
  int max_out = 0;
  double mean_compute = 0.0, mean_bytes = 0.0;
  int edge_count = 0;
  for (int v = 0; v < nv; ++v) {
    max_out = std::max(max_out, g.out_degree(v));
    mean_compute += g.task(v).compute;
  }
  for (const DataLink& e : g.edges()) {
    mean_bytes += e.bytes;
    ++edge_count;
  }
  mean_compute = std::max(mean_compute / std::max(1, nv), 1e-12);
  mean_bytes = edge_count > 0 ? std::max(mean_bytes / edge_count, 1e-12) : 1.0;

  // [hw one-hot (kinds + 1) | compute | out bytes (max_out) | adjacency (nv)]
  const int dim = num_hw_kinds + 1 + 1 + max_out + nv;
  nn::Matrix m(nv, dim);
  std::vector<int> pos(nv);  // task id -> position in order
  for (int i = 0; i < nv; ++i) pos[order[i]] = i;
  for (int i = 0; i < nv; ++i) {
    const int v = order[i];
    const HwMask req = g.task(v).requires_hw;
    int kind = 0;  // 0 = unconstrained
    for (int b = 0; b < num_hw_kinds; ++b) {
      if (req & (HwMask{1} << b)) kind = b + 1;
    }
    m(i, kind) = 1.0;
    m(i, num_hw_kinds + 1) = g.task(v).compute / mean_compute;
    int slot = 0;
    for (int e : g.out_edges(v)) {
      m(i, num_hw_kinds + 2 + slot) = g.edge(e).bytes / mean_bytes;
      m(i, num_hw_kinds + 2 + max_out + pos[g.edge(e).dst]) = 1.0;
      ++slot;
    }
  }
  return m;
}

}  // namespace

RnnPlacer::RnnPlacer(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                     const RnnPlacerOptions& options)
    : g_(g),
      n_(n),
      lat_(lat),
      options_(options),
      denom_(slr_denominator(g, n, lat)),
      order_(g.topological_order()),
      feasible_(feasible_sets(g, n)),
      rng_(options.seed) {
  inputs_ = build_inputs(g, order_, options.num_hw_kinds);
  const int in_dim = inputs_.cols();
  const int h = options.hidden_dim;
  std::mt19937_64 init_rng(options.seed + 1);
  enc_fwd_ = std::make_unique<nn::LSTMCell>(reg_, "enc_fwd", in_dim, h, init_rng);
  enc_bwd_ = std::make_unique<nn::LSTMCell>(reg_, "enc_bwd", in_dim, h, init_rng);
  // Decoder consumes the encoder output of the operator being placed.
  dec_ = std::make_unique<nn::LSTMCell>(reg_, "dec", 2 * h, 2 * h, init_rng);
  attn_enc_ = std::make_unique<nn::Linear>(reg_, "attn_enc", 2 * h, h, init_rng);
  attn_dec_ = std::make_unique<nn::Linear>(reg_, "attn_dec", 2 * h, h, init_rng);
  attn_v_ = std::make_unique<nn::Linear>(reg_, "attn_v", h, 1, init_rng);
  out_ = std::make_unique<nn::Linear>(reg_, "out", 4 * h, n.num_devices(), init_rng);
}

RnnPlacer::Rollout RnnPlacer::sample_placement(std::mt19937_64& rng) {
  const int nv = g_.num_tasks();
  const Var x = nn::constant(inputs_);

  // Bidirectional encoder over the operator sequence.
  std::vector<Var> enc(nv);
  {
    std::vector<Var> fwd(nv), bwd(nv);
    nn::LSTMCell::State sf = enc_fwd_->initial_state();
    for (int i = 0; i < nv; ++i) {
      sf = (*enc_fwd_)(row(x, i), sf);
      fwd[i] = sf.h;
    }
    nn::LSTMCell::State sb = enc_bwd_->initial_state();
    for (int i = nv - 1; i >= 0; --i) {
      sb = (*enc_bwd_)(row(x, i), sb);
      bwd[i] = sb.h;
    }
    for (int i = 0; i < nv; ++i) enc[i] = concat_cols({fwd[i], bwd[i]});
  }
  const Var enc_mat = concat_rows(enc);              // nv x 2h
  const Var enc_proj = (*attn_enc_)(enc_mat);        // nv x h

  Rollout rollout;
  rollout.placement = Placement(nv);
  nn::LSTMCell::State sd = dec_->initial_state();
  for (int i = 0; i < nv; ++i) {
    sd = (*dec_)(enc[i], sd);
    // Additive attention over the encoder outputs.
    const Var dec_proj = (*attn_dec_)(sd.h);  // 1 x h
    const Var scores = (*attn_v_)(nn::tanh_act(nn::add_rowvec(enc_proj, dec_proj)));
    const Var alpha = nn::softmax_col(scores);                 // nv x 1
    const Var context = nn::matmul(nn::transpose_of(alpha), enc_mat);  // 1 x 2h
    const Var logits = (*out_)(concat_cols({sd.h, context}));  // 1 x n_dev

    const int v = order_[i];
    const std::vector<int>& devs = feasible_[v];
    std::vector<Var> cand;
    cand.reserve(devs.size());
    for (int d : devs) cand.push_back(pick(logits, 0, d));
    const Var logp = log_softmax_col(concat_rows(cand));

    std::uniform_real_distribution<double> unif(0.0, 1.0);
    double u = unif(rng);
    int idx = static_cast<int>(devs.size()) - 1;
    for (int k = 0; k < static_cast<int>(devs.size()); ++k) {
      u -= std::exp(logp->value(k, 0));
      if (u <= 0.0) {
        idx = k;
        break;
      }
    }
    rollout.placement.set(v, devs[idx]);
    rollout.log_probs.push_back(pick(logp, idx, 0));
  }
  simulate_into(g_, n_, rollout.placement, lat_, ws_, rollout_sched_);
  rollout.objective = rollout_sched_.makespan / denom_;
  return rollout;
}

double RnnPlacer::train() {
  nn::Adam adam(reg_.params(), options_.lr);
  best_obj_ = std::numeric_limits<double>::infinity();
  int stale = 0;
  double baseline = 0.0;
  bool baseline_set = false;

  for (int update = 0; update < options_.max_updates && stale < options_.patience;
       ++update) {
    std::vector<Rollout> rollouts;
    rollouts.reserve(options_.samples_per_update);
    double mean_obj = 0.0;
    for (int s = 0; s < options_.samples_per_update; ++s) {
      rollouts.push_back(sample_placement(rng_));
      mean_obj += rollouts.back().objective;
      if (rollouts.back().objective < best_obj_) {
        best_obj_ = rollouts.back().objective;
        best_ = rollouts.back().placement;
        stale = -1;  // reset below
      }
    }
    mean_obj /= options_.samples_per_update;
    if (!baseline_set) {
      baseline = mean_obj;
      baseline_set = true;
    } else {
      baseline = 0.8 * baseline + 0.2 * mean_obj;
    }

    // Loss = sum over samples of (objective - baseline) * sum log pi.
    std::vector<Var> scalars;
    std::vector<double> weights;
    for (const Rollout& r : rollouts) {
      const double adv = r.objective - baseline;  // minimize objective
      for (const Var& lp : r.log_probs) {
        scalars.push_back(lp);
        weights.push_back(adv / options_.samples_per_update);
      }
    }
    const Var loss = nn::weighted_sum(scalars, weights);
    nn::backward(loss);
    nn::clip_grad_norm(reg_.params(), options_.grad_clip);
    adam.step();

    trace_.push_back(best_obj_);
    ++stale;
  }
  return best_obj_;
}

}  // namespace giph
