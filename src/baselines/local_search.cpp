#include "baselines/local_search.hpp"

#include <cmath>
#include <limits>

namespace giph {

ActionDecision HillClimbPolicy::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                       bool) {
  const TaskGraph& g = env.graph();
  const DeviceNetwork& n = env.network();
  Placement trial = env.placement();

  SearchAction best{};
  // env.schedule() is the noise-free schedule of the current placement, so
  // the baseline makespan is already known.
  double best_obj = env.schedule().makespan;
  bool found = false;
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int original = trial.device_of(v);
    for (int d : env.feasible()[v]) {
      if (d == original) continue;
      trial.set(v, d);
      // Evaluate with the expected (noise-free) latency model: the climber
      // needs a deterministic landscape even if the env objective is noisy.
      simulate_into(g, n, trial, env.latency(), ws_, trial_sched_);
      const double obj = trial_sched_.makespan;
      if (obj < best_obj) {
        best_obj = obj;
        best = SearchAction{v, d};
        found = true;
      }
    }
    trial.set(v, original);
  }
  if (found) return ActionDecision{best, nullptr, std::nullopt};

  // Local optimum: take a random move to keep exploring.
  std::uniform_int_distribution<int> pick_task(0, g.num_tasks() - 1);
  const int v = pick_task(rng);
  const auto& devs = env.feasible()[v];
  std::uniform_int_distribution<std::size_t> pick_dev(0, devs.size() - 1);
  return ActionDecision{SearchAction{v, devs[pick_dev(rng)]}, nullptr, std::nullopt};
}

void TabuSearchPolicy::begin_episode() {
  tabu_until_.clear();
  step_ = 0;
  has_best_ = false;
}

ActionDecision TabuSearchPolicy::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                        bool) {
  const TaskGraph& g = env.graph();
  const DeviceNetwork& n = env.network();
  if (static_cast<int>(tabu_until_.size()) != g.num_tasks()) {
    tabu_until_.assign(g.num_tasks(), std::vector<int>(n.num_devices(), -1));
  }
  const double current = env.schedule().makespan;
  if (!has_best_ || current < best_seen_) {
    best_seen_ = current;
    has_best_ = true;
  }

  Placement trial = env.placement();
  SearchAction best{};
  double best_obj = std::numeric_limits<double>::infinity();
  for (int v = 0; v < g.num_tasks(); ++v) {
    const int original = trial.device_of(v);
    for (int d : env.feasible()[v]) {
      if (d == original) continue;
      trial.set(v, d);
      simulate_into(g, n, trial, env.latency(), ws_, trial_sched_);
      const double obj = trial_sched_.makespan;
      const bool tabu = tabu_until_[v][d] > step_;
      // Aspiration: a tabu move that beats the best makespan ever seen is
      // always admissible.
      if ((!tabu || obj < best_seen_) && obj < best_obj) {
        best_obj = obj;
        best = SearchAction{v, d};
      }
      trial.set(v, original);
    }
  }
  ++step_;
  if (best.task < 0) {
    // Everything tabu (tiny instances): fall back to a random move.
    std::uniform_int_distribution<int> pick_task(0, g.num_tasks() - 1);
    const int v = pick_task(rng);
    const auto& devs = env.feasible()[v];
    std::uniform_int_distribution<std::size_t> pick_dev(0, devs.size() - 1);
    return ActionDecision{SearchAction{v, devs[pick_dev(rng)]}, nullptr, std::nullopt};
  }
  // Forbid undoing this move (returning the task to its old device).
  tabu_until_[best.task][env.placement().device_of(best.task)] =
      step_ + options_.tenure;
  return ActionDecision{best, nullptr, std::nullopt};
}

void SimulatedAnnealingPolicy::begin_episode() {
  temperature_ = options_.initial_temperature;
  has_pending_ = false;
}

ActionDecision SimulatedAnnealingPolicy::decide(PlacementSearchEnv& env,
                                                std::mt19937_64& rng, bool) {
  if (temperature_ <= 0.0) temperature_ = options_.initial_temperature;

  if (has_pending_) {
    has_pending_ = false;
    if (env.objective() > accept_threshold_) {
      // Reject: undo the previous move.
      return ActionDecision{undo_, nullptr, std::nullopt};
    }
  }

  const TaskGraph& g = env.graph();
  std::uniform_int_distribution<int> pick_task(0, g.num_tasks() - 1);
  const int v = pick_task(rng);
  const auto& devs = env.feasible()[v];
  std::uniform_int_distribution<std::size_t> pick_dev(0, devs.size() - 1);
  const int d = devs[pick_dev(rng)];

  // Metropolis criterion: accept any improvement, or a degradation of Delta
  // with probability exp(-Delta / T) - expressed as an acceptance threshold
  // on the post-move objective, checked on the next call.
  std::uniform_real_distribution<double> unif(1e-12, 1.0);
  accept_threshold_ = env.objective() - temperature_ * std::log(unif(rng));
  undo_ = SearchAction{v, env.placement().device_of(v)};
  has_pending_ = true;
  temperature_ *= options_.cooling;
  return ActionDecision{SearchAction{v, d}, nullptr, std::nullopt};
}

}  // namespace giph
