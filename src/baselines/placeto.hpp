#pragma once

#include <memory>

#include "core/features.hpp"
#include "core/gnn.hpp"
#include "core/search_policy.hpp"

namespace giph {

/// Placeto-style baseline (Addanki et al. 2019), as characterized in the
/// paper: incremental placement via graph embedding + RL, but (1) it
/// traverses the task graph in a fixed order visiting each node exactly once
/// per episode, (2) its node features describe the task graph and the current
/// placement only — no device-network features — and (3) its policy head
/// outputs a fixed number of device logits, tying the model to the device
/// count it was built for. These are precisely the properties that hurt its
/// generalization to new device networks (Section 5.1).
struct PlacetoOptions {
  int num_devices = 8;  ///< fixed output dimension of the policy head
  int embed_dim = 5;    ///< per-direction embedding dim (Table 4: dim 5)
  int k_steps = 8;      ///< message-passing rounds (Table 5)
  std::uint64_t seed = 1;
};

class PlacetoPolicy final : public SearchPolicy {
 public:
  explicit PlacetoPolicy(const PlacetoOptions& options);

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::vector<nn::Var> parameters() override { return reg_.params(); }
  void begin_episode() override;
  /// Placeto visits each node once: its natural episode is |V| steps.
  int episode_limit(const TaskGraph& g) const override { return g.num_tasks(); }
  /// Same-architecture clone (private parameters, traversal cursor, caches)
  /// with current parameter values copied over; enables parallel rollouts.
  std::unique_ptr<SearchPolicy> clone_for_rollout() const override;
  std::string name() const override { return "Placeto"; }

  nn::ParamRegistry& registry() noexcept { return reg_; }

 private:
  nn::Matrix node_features(const PlacementSearchEnv& env) const;

  PlacetoOptions options_;
  nn::ParamRegistry reg_;
  std::unique_ptr<GraphEncoder> encoder_;
  std::unique_ptr<nn::MLP> head_;  ///< [2*embed*2, 32, num_devices]
  int cursor_ = 0;                 ///< position in the topological traversal
  std::vector<bool> visited_;      ///< "already placed in this episode" flag
  /// Per-episode cache of normalization scales: they depend only on
  /// (G, N, lat), fixed within an episode. begin_episode() and an instance
  /// change invalidate.
  FeatureScales scales_;
  const void* scales_graph_ = nullptr;
  const void* scales_net_ = nullptr;
};

}  // namespace giph
