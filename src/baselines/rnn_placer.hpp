#pragma once

#include <memory>
#include <random>

#include "nn/layers.hpp"
#include "sim/metrics.hpp"

namespace giph {

/// RNN-based placer following the hierarchical device placement model (HDP,
/// Mirhoseini et al. 2018), as used in the paper's baselines: a
/// sequence-to-sequence policy with a bidirectional-LSTM encoder over the
/// operator sequence (topological order) and a unidirectional LSTM decoder
/// with additive attention that emits a device per operator.
///
/// As in the paper, the placer does not aim to generalize: it is trained
/// from scratch on each problem instance, drawing `samples_per_update`
/// placements per policy-gradient update until the best latency stops
/// improving.
struct RnnPlacerOptions {
  int hidden_dim = 16;          ///< LSTM hidden size (encoder per direction)
  int samples_per_update = 4;   ///< Placer samples per update (HDP setting)
  int max_updates = 50;
  int patience = 8;             ///< stop after this many non-improving updates
  double lr = 0.01;
  double grad_clip = 10.0;
  int num_hw_kinds = 4;         ///< size of the hw one-hot block
  std::uint64_t seed = 1;
};

class RnnPlacer {
 public:
  /// Builds a placer specialized to one problem instance (G, N). The input
  /// embedding of each operator concatenates: a one-hot of its hardware
  /// requirement, its compute requirement, its outgoing data volumes (padded
  /// to the maximum out-degree), and its adjacency row (Appendix B.7).
  RnnPlacer(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
            const RnnPlacerOptions& options);

  /// Trains with REINFORCE until convergence; returns the best objective
  /// (SLR) found. Deterministic given the constructor seed.
  double train();

  const Placement& best_placement() const noexcept { return best_; }
  double best_objective() const noexcept { return best_obj_; }
  /// Best SLR after each update (for convergence traces).
  const std::vector<double>& update_trace() const noexcept { return trace_; }

 private:
  struct Rollout {
    Placement placement;
    std::vector<nn::Var> log_probs;
    double objective = 0.0;
  };
  Rollout sample_placement(std::mt19937_64& rng);

  const TaskGraph& g_;
  const DeviceNetwork& n_;
  const LatencyModel& lat_;
  RnnPlacerOptions options_;
  double denom_;  ///< SLR normalizer

  nn::ParamRegistry reg_;
  nn::Matrix inputs_;  ///< |V| x input_dim, row i = embedding of topo[i]
  std::vector<int> order_;
  std::vector<std::vector<int>> feasible_;

  std::unique_ptr<nn::LSTMCell> enc_fwd_, enc_bwd_, dec_;
  std::unique_ptr<nn::Linear> attn_enc_, attn_dec_, attn_v_, out_;

  Placement best_;
  double best_obj_ = 0.0;
  std::vector<double> trace_;
  std::mt19937_64 rng_;
  SimWorkspace ws_;        ///< reused across per-rollout makespan sims
  Schedule rollout_sched_;  ///< scratch output of the rollout sims
};

}  // namespace giph
