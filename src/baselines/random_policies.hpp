#pragma once

#include "core/search_policy.hpp"

namespace giph {

/// The paper's "Random placement sampling" baseline: every step draws a fresh
/// uniformly-random feasible placement of the whole graph; best-so-far tracks
/// the average placement quality attainable without intelligent search.
class RandomSamplingPolicy final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::unique_ptr<SearchPolicy> clone_for_rollout() const override {
    return std::make_unique<RandomSamplingPolicy>();
  }
  std::string name() const override { return "Random"; }
};

/// "Random task selection + EFT device selection": a direct adaptation of
/// HEFT as a search policy — a uniformly random task is relocated to its
/// earliest-finish-time device given the current schedule.
class RandomTaskEftPolicy final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::unique_ptr<SearchPolicy> clone_for_rollout() const override {
    return std::make_unique<RandomTaskEftPolicy>();
  }
  std::string name() const override { return "Random-task-eft"; }
};

/// Uniformly random walk over feasible relocation actions (one task moved per
/// step, no learning). Not a paper baseline but useful as a test control.
class RandomWalkPolicy final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::unique_ptr<SearchPolicy> clone_for_rollout() const override {
    return std::make_unique<RandomWalkPolicy>();
  }
  std::string name() const override { return "RandomWalk"; }
};

}  // namespace giph
