#include "baselines/placeto.hpp"

#include <cmath>

#include "nn/optimizer.hpp"

namespace giph {

using nn::Var;
using nn::concat_cols;
using nn::concat_rows;
using nn::log_softmax_col;
using nn::mean_rows;
using nn::pick;
using nn::row;

PlacetoPolicy::PlacetoPolicy(const PlacetoOptions& options) : options_(options) {
  std::mt19937_64 rng(options.seed);
  GnnConfig cfg;
  cfg.kind = GnnKind::kGiPHK;  // k-round synchronous two-way message passing
  cfg.node_dim = 5;
  cfg.edge_dim = 0;  // Placeto has no edge features
  cfg.embed_dim = options.embed_dim;
  cfg.k_steps = options.k_steps;
  encoder_ = std::make_unique<GraphEncoder>(reg_, cfg, rng);
  // Node summary: current node embedding || graph mean embedding.
  const int summary = 2 * encoder_->out_dim();
  head_ = std::make_unique<nn::MLP>(reg_, "placeto.head",
                                    std::vector<int>{summary, 32, options.num_devices},
                                    rng, nn::Activation::kRelu, nn::Activation::kNone);
}

std::unique_ptr<SearchPolicy> PlacetoPolicy::clone_for_rollout() const {
  auto clone = std::make_unique<PlacetoPolicy>(options_);
  nn::copy_values(reg_.params(), clone->reg_.params());
  return clone;
}

void PlacetoPolicy::begin_episode() {
  cursor_ = 0;
  visited_.clear();
  scales_graph_ = scales_net_ = nullptr;
}

nn::Matrix PlacetoPolicy::node_features(const PlacementSearchEnv& env) const {
  const TaskGraph& g = env.graph();
  const int nv = g.num_tasks();
  const int current = g.topological_order()[cursor_ % nv];
  nn::Matrix f(nv, 5);
  for (int v = 0; v < nv; ++v) {
    double out_bytes = 0.0;
    for (int e : g.out_edges(v)) out_bytes += g.edge(e).bytes;
    f(v, 0) = g.task(v).compute / scales_.compute;
    f(v, 1) = g.out_degree(v) > 0 ? out_bytes / (g.out_degree(v) * scales_.bytes) : 0.0;
    f(v, 2) = static_cast<double>(env.placement().device_of(v)) /
              std::max(1, options_.num_devices);
    f(v, 3) = v == current ? 1.0 : 0.0;
    f(v, 4) = (v < static_cast<int>(visited_.size()) && visited_[v]) ? 1.0 : 0.0;
  }
  return f;
}

ActionDecision PlacetoPolicy::decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                                     bool greedy) {
  const TaskGraph& g = env.graph();
  const int nv = g.num_tasks();
  if (static_cast<int>(visited_.size()) != nv) visited_.assign(nv, false);
  if (scales_graph_ != &env.graph() || scales_net_ != &env.network()) {
    scales_ = compute_feature_scales(env.graph(), env.network(), env.latency());
    scales_graph_ = &env.graph();
    scales_net_ = &env.network();
  }
  const int node = g.topological_order()[cursor_ % nv];

  // Devices Placeto can address: feasible devices with id below its fixed
  // output dimension. Devices beyond that are invisible to the policy.
  std::vector<int> candidates;
  for (int d : env.feasible()[node]) {
    if (d < options_.num_devices) candidates.push_back(d);
  }
  ++cursor_;
  visited_[node] = true;

  if (candidates.empty()) {
    // The policy head cannot express any feasible device (the network grew
    // past its training size): fall back to a random feasible device with no
    // gradient.
    const auto& devs = env.feasible()[node];
    std::uniform_int_distribution<std::size_t> pick(0, devs.size() - 1);
    return ActionDecision{SearchAction{node, devs[pick(rng)]}, nullptr, std::nullopt};
  }

  const GraphView view = graph_view_of(g);
  const Var emb = encoder_->encode(view, node_features(env), nn::Matrix());
  const Var summary = concat_cols({row(emb, node), mean_rows(emb)});
  const Var logits = (*head_)(summary);  // 1 x num_devices

  std::vector<Var> cand_scores;
  cand_scores.reserve(candidates.size());
  for (int d : candidates) cand_scores.push_back(pick(logits, 0, d));
  const Var scores = concat_rows(cand_scores);
  const Var logp = log_softmax_col(scores);

  int idx = 0;
  if (greedy) {
    for (int i = 1; i < logp->value.rows(); ++i) {
      if (logp->value(i, 0) > logp->value(idx, 0)) idx = i;
    }
  } else {
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    double u = unif(rng);
    idx = logp->value.rows() - 1;
    for (int i = 0; i < logp->value.rows(); ++i) {
      u -= std::exp(logp->value(i, 0));
      if (u <= 0.0) {
        idx = i;
        break;
      }
    }
  }
  ActionDecision d;
  d.action = SearchAction{node, candidates[idx]};
  d.log_prob = pick(logp, idx, 0);
  return d;
}

}  // namespace giph
