#pragma once

#include "core/search_policy.hpp"

namespace giph {

/// Greedy hill climbing: each step evaluates every feasible single-task
/// relocation and takes the one with the largest objective improvement;
/// when no move improves, it takes a random move to escape the local optimum
/// (best-so-far tracking in the environment keeps the optimum). A classical
/// non-learned search baseline, much more expensive per step than GiPH
/// (O(|V| |D|) simulations versus one GNN forward).
class HillClimbPolicy final : public SearchPolicy {
 public:
  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  std::string name() const override { return "HillClimb"; }

 private:
  SimWorkspace ws_;       ///< reused across the O(|V| |D|) neighbor sims
  Schedule trial_sched_;  ///< scratch output of the neighbor sims
};

/// Simulated annealing over single-task relocations with a geometric
/// temperature schedule. Rejected moves are undone on the next decide() call
/// (the environment applies every emitted action, so rejection is expressed
/// as a reverting move).
struct AnnealingOptions {
  double initial_temperature = 0.3;  ///< in objective (SLR) units
  double cooling = 0.97;             ///< per-step multiplicative decay
};

class SimulatedAnnealingPolicy final : public SearchPolicy {
 public:
  explicit SimulatedAnnealingPolicy(const AnnealingOptions& options = {})
      : options_(options) {}

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  void begin_episode() override;
  std::string name() const override { return "SimAnneal"; }

 private:
  AnnealingOptions options_;
  double temperature_ = 0.0;
  bool has_pending_ = false;
  SearchAction undo_{};        ///< action restoring the pre-move placement
  double accept_threshold_ = 0.0;  ///< objective above which the move is undone
};

/// Tabu search: steepest single-task move each step - accepting the best
/// non-tabu neighbor even when it worsens the objective - with recently
/// undone (task, device) assignments forbidden for `tenure` steps.
/// Aspiration: a tabu move is allowed when it beats the best makespan seen.
struct TabuOptions {
  int tenure = 7;
};

class TabuSearchPolicy final : public SearchPolicy {
 public:
  explicit TabuSearchPolicy(const TabuOptions& options = {}) : options_(options) {}

  ActionDecision decide(PlacementSearchEnv& env, std::mt19937_64& rng,
                        bool greedy) override;
  void begin_episode() override;
  std::string name() const override { return "TabuSearch"; }

 private:
  TabuOptions options_;
  std::vector<std::vector<int>> tabu_until_;  ///< [task][device] -> step id
  int step_ = 0;
  double best_seen_ = 0.0;
  bool has_best_ = false;
  SimWorkspace ws_;       ///< reused across the O(|V| |D|) neighbor sims
  Schedule trial_sched_;  ///< scratch output of the neighbor sims
};

}  // namespace giph
