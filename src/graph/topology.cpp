#include "graph/topology.hpp"

#include <limits>
#include <stdexcept>

namespace giph {

void apply_topology(DeviceNetwork& n, const std::vector<PhysicalLink>& links,
                    double unreachable_bw, double unreachable_delay) {
  const int m = n.num_devices();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> delay(static_cast<std::size_t>(m) * m, inf);
  std::vector<double> bw(static_cast<std::size_t>(m) * m, 0.0);
  auto at = [m](int i, int j) { return static_cast<std::size_t>(i) * m + j; };

  for (int k = 0; k < m; ++k) {
    delay[at(k, k)] = 0.0;
    bw[at(k, k)] = inf;
  }
  auto add_dir = [&](int a, int b, double link_bw, double link_dl) {
    if (a < 0 || a >= m || b < 0 || b >= m || a == b) {
      throw std::invalid_argument("apply_topology: bad link endpoints");
    }
    if (!(link_bw > 0.0) || link_dl < 0.0) {
      throw std::invalid_argument("apply_topology: bad link parameters");
    }
    // Keep the better (lower-delay, then higher-bandwidth) parallel link.
    if (link_dl < delay[at(a, b)] ||
        (link_dl == delay[at(a, b)] && link_bw > bw[at(a, b)])) {
      delay[at(a, b)] = link_dl;
      bw[at(a, b)] = link_bw;
    }
  };
  for (const PhysicalLink& l : links) {
    add_dir(l.a, l.b, l.bandwidth, l.delay);
    if (l.bidirectional) add_dir(l.b, l.a, l.bandwidth, l.delay);
  }

  // Floyd-Warshall on total delay; the path bandwidth is the bottleneck.
  for (int k = 0; k < m; ++k) {
    for (int i = 0; i < m; ++i) {
      if (delay[at(i, k)] == inf) continue;
      for (int j = 0; j < m; ++j) {
        if (delay[at(k, j)] == inf) continue;
        const double via = delay[at(i, k)] + delay[at(k, j)];
        const double via_bw = std::min(bw[at(i, k)], bw[at(k, j)]);
        if (via < delay[at(i, j)] ||
            (via == delay[at(i, j)] && via_bw > bw[at(i, j)])) {
          delay[at(i, j)] = via;
          bw[at(i, j)] = via_bw;
        }
      }
    }
  }

  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      if (delay[at(i, j)] == inf) {
        n.set_link(i, j, unreachable_bw, unreachable_delay);
      } else {
        n.set_link(i, j, bw[at(i, j)], delay[at(i, j)]);
      }
    }
  }
}

}  // namespace giph
