#include "graph/topology.hpp"

#include <limits>
#include <stdexcept>

namespace giph {
namespace {

/// Shared Floyd-Warshall core: minimum-total-delay routes with ties broken
/// toward higher bottleneck bandwidth. Tracked per ordered pair: projected
/// delay/bandwidth, the physical link id of the winning direct edge, and the
/// intermediate device of the last relaxation (-1 = direct). apply_topology
/// and build_shared_link_map both derive from these tables, so the projected
/// link values and the contention routes can never disagree.
struct RouteTables {
  int m = 0;
  std::vector<double> delay;
  std::vector<double> bw;
  std::vector<int> direct_link;  ///< physical link id of the direct edge, -1 none
  std::vector<int> via;          ///< intermediate device of the route, -1 direct

  std::size_t at(int i, int j) const { return static_cast<std::size_t>(i) * m + j; }
};

RouteTables compute_routes(int m, const std::vector<PhysicalLink>& links) {
  const double inf = std::numeric_limits<double>::infinity();
  RouteTables t;
  t.m = m;
  t.delay.assign(static_cast<std::size_t>(m) * m, inf);
  t.bw.assign(static_cast<std::size_t>(m) * m, 0.0);
  t.direct_link.assign(static_cast<std::size_t>(m) * m, -1);
  t.via.assign(static_cast<std::size_t>(m) * m, -1);

  for (int k = 0; k < m; ++k) {
    t.delay[t.at(k, k)] = 0.0;
    t.bw[t.at(k, k)] = inf;
  }
  auto add_dir = [&](int a, int b, double link_bw, double link_dl, int id) {
    if (a < 0 || a >= m || b < 0 || b >= m || a == b) {
      throw std::invalid_argument("apply_topology: bad link endpoints");
    }
    if (!(link_bw > 0.0) || link_dl < 0.0) {
      throw std::invalid_argument("apply_topology: bad link parameters");
    }
    // Keep the better (lower-delay, then higher-bandwidth) parallel link.
    if (link_dl < t.delay[t.at(a, b)] ||
        (link_dl == t.delay[t.at(a, b)] && link_bw > t.bw[t.at(a, b)])) {
      t.delay[t.at(a, b)] = link_dl;
      t.bw[t.at(a, b)] = link_bw;
      t.direct_link[t.at(a, b)] = id;
      t.via[t.at(a, b)] = -1;
    }
  };
  for (std::size_t i = 0; i < links.size(); ++i) {
    const PhysicalLink& l = links[i];
    add_dir(l.a, l.b, l.bandwidth, l.delay, static_cast<int>(i));
    if (l.bidirectional) add_dir(l.b, l.a, l.bandwidth, l.delay, static_cast<int>(i));
  }

  // Floyd-Warshall on total delay; the path bandwidth is the bottleneck.
  for (int k = 0; k < m; ++k) {
    for (int i = 0; i < m; ++i) {
      if (t.delay[t.at(i, k)] == inf) continue;
      for (int j = 0; j < m; ++j) {
        if (t.delay[t.at(k, j)] == inf) continue;
        const double via = t.delay[t.at(i, k)] + t.delay[t.at(k, j)];
        const double via_bw = std::min(t.bw[t.at(i, k)], t.bw[t.at(k, j)]);
        if (via < t.delay[t.at(i, j)] ||
            (via == t.delay[t.at(i, j)] && via_bw > t.bw[t.at(i, j)])) {
          t.delay[t.at(i, j)] = via;
          t.bw[t.at(i, j)] = via_bw;
          t.via[t.at(i, j)] = k;
        }
      }
    }
  }
  return t;
}

void append_route(const RouteTables& t, int i, int j, std::vector<int>& out) {
  if (i == j) return;
  const int k = t.via[t.at(i, j)];
  if (k < 0) {
    out.push_back(t.direct_link[t.at(i, j)]);
    return;
  }
  append_route(t, i, k, out);
  append_route(t, k, j, out);
}

}  // namespace

void apply_topology(DeviceNetwork& n, const std::vector<PhysicalLink>& links,
                    double unreachable_bw, double unreachable_delay) {
  const int m = n.num_devices();
  const double inf = std::numeric_limits<double>::infinity();
  const RouteTables t = compute_routes(m, links);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) continue;
      if (t.delay[t.at(i, j)] == inf) {
        n.set_link(i, j, unreachable_bw, unreachable_delay);
      } else {
        n.set_link(i, j, t.bw[t.at(i, j)], t.delay[t.at(i, j)]);
      }
    }
  }
}

SharedLinkMap build_shared_link_map(int num_devices,
                                    const std::vector<PhysicalLink>& links) {
  const double inf = std::numeric_limits<double>::infinity();
  const RouteTables t = compute_routes(num_devices, links);
  SharedLinkMap map;
  map.num_devices = num_devices;
  map.num_links = static_cast<int>(links.size());
  map.routes.assign(static_cast<std::size_t>(num_devices) * num_devices, {});
  for (int i = 0; i < num_devices; ++i) {
    for (int j = 0; j < num_devices; ++j) {
      if (i == j || t.delay[t.at(i, j)] == inf) continue;
      append_route(t, i, j, map.routes[t.at(i, j)]);
    }
  }
  return map;
}

}  // namespace giph
