#pragma once

#include <random>
#include <vector>

#include "graph/device_network.hpp"
#include "graph/task_graph.hpp"

namespace giph {

/// A placement M : V -> D, stored as device id per task id (-1 = unplaced).
class Placement {
 public:
  Placement() = default;
  explicit Placement(int num_tasks) : assign_(num_tasks, -1) {}

  int num_tasks() const noexcept { return static_cast<int>(assign_.size()); }
  int device_of(int v) const { return assign_.at(v); }
  void set(int v, int d) { assign_.at(v) = d; }

  const std::vector<int>& assignments() const noexcept { return assign_; }

  bool operator==(const Placement&) const = default;

 private:
  std::vector<int> assign_;
};

/// Feasible devices of task v in (g, n): the pinned device if the task is
/// pinned, otherwise all devices whose hardware support covers the task's
/// requirement mask.
std::vector<int> feasible_devices(const TaskGraph& g, const DeviceNetwork& n, int v);

/// True when device d can host task v.
bool device_feasible(const TaskGraph& g, const DeviceNetwork& n, int v, int d);

/// True when every task is placed on a feasible device of N.
bool is_feasible(const TaskGraph& g, const DeviceNetwork& n, const Placement& p);

/// Per-task feasible device sets D_i for (g, n). Throws std::runtime_error if
/// some task has no feasible device.
std::vector<std::vector<int>> feasible_sets(const TaskGraph& g, const DeviceNetwork& n);

/// Size of the search state space prod_i |D_i| (saturates at +infinity).
double state_space_size(const TaskGraph& g, const DeviceNetwork& n);

/// Uniformly random feasible placement (the paper's random baseline and the
/// episode initial state).
Placement random_placement(const TaskGraph& g, const DeviceNetwork& n, std::mt19937_64& rng);

}  // namespace giph
