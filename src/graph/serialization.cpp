#include "graph/serialization.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace giph {
namespace {

void expect_header(std::istream& in, const std::string& kind) {
  std::string k, v;
  in >> k >> v;
  if (!in || k != kind || v != "v1") {
    throw std::runtime_error("deserialize: expected '" + kind + " v1' header");
  }
}

std::string encode_name(const std::string& name) {
  if (name.empty()) return "-";
  std::string out = name;
  for (char& c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

std::string decode_name(const std::string& token) {
  return token == "-" ? std::string{} : token;
}

void check(std::istream& in, const char* what) {
  if (!in) throw std::runtime_error(std::string("deserialize: truncated ") + what);
}

}  // namespace

void write_task_graph(std::ostream& out, const TaskGraph& g) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "task-graph v1\n" << g.num_tasks() << " " << g.num_edges() << "\n";
  for (int v = 0; v < g.num_tasks(); ++v) {
    const Task& t = g.task(v);
    out << t.compute << " " << t.requires_hw << " " << t.pinned << " "
        << encode_name(t.name) << "\n";
  }
  for (const DataLink& e : g.edges()) {
    out << e.src << " " << e.dst << " " << e.bytes << "\n";
  }
}

TaskGraph read_task_graph(std::istream& in) {
  expect_header(in, "task-graph");
  int nv = 0, ne = 0;
  in >> nv >> ne;
  check(in, "task graph counts");
  if (nv < 0 || ne < 0) throw std::runtime_error("deserialize: negative counts");
  TaskGraph g;
  for (int v = 0; v < nv; ++v) {
    Task t;
    std::string name;
    in >> t.compute >> t.requires_hw >> t.pinned >> name;
    check(in, "task row");
    t.name = decode_name(name);
    g.add_task(std::move(t));
  }
  for (int e = 0; e < ne; ++e) {
    int src = 0, dst = 0;
    double bytes = 0.0;
    in >> src >> dst >> bytes;
    check(in, "edge row");
    g.add_edge(src, dst, bytes);
  }
  return g;
}

void write_device_network(std::ostream& out, const DeviceNetwork& n) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "device-network v1\n" << n.num_devices() << "\n";
  for (int k = 0; k < n.num_devices(); ++k) {
    const Device& d = n.device(k);
    out << d.speed << " " << d.supports_hw << " " << d.type << " " << d.startup << " "
        << d.cores << " " << encode_name(d.name) << "\n";
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.bandwidth(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.delay(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
}

DeviceNetwork read_device_network(std::istream& in) {
  expect_header(in, "device-network");
  int m = 0;
  in >> m;
  check(in, "device count");
  if (m < 0) throw std::runtime_error("deserialize: negative device count");
  DeviceNetwork n;
  for (int k = 0; k < m; ++k) {
    Device d;
    std::string name;
    in >> d.speed >> d.supports_hw >> d.type >> d.startup >> d.cores >> name;
    check(in, "device row");
    d.name = decode_name(name);
    n.add_device(std::move(d));
  }
  std::vector<double> bw(static_cast<std::size_t>(m) * m), dl(bw.size());
  for (double& x : bw) in >> x;
  for (double& x : dl) in >> x;
  check(in, "link matrices");
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      if (k != l) n.set_link(k, l, bw[static_cast<std::size_t>(k) * m + l],
                             dl[static_cast<std::size_t>(k) * m + l]);
    }
  }
  return n;
}

void write_placement(std::ostream& out, const Placement& p) {
  out << "placement v1\n" << p.num_tasks() << "\n";
  for (int v = 0; v < p.num_tasks(); ++v) {
    out << p.device_of(v) << (v + 1 == p.num_tasks() ? '\n' : ' ');
  }
}

Placement read_placement(std::istream& in) {
  expect_header(in, "placement");
  int nv = 0;
  in >> nv;
  check(in, "placement count");
  Placement p(nv);
  for (int v = 0; v < nv; ++v) {
    int d = 0;
    in >> d;
    p.set(v, d);
  }
  check(in, "placement row");
  return p;
}

namespace {

template <typename WriteFn>
void save_to(const std::string& path, WriteFn fn) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  fn(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void save_task_graph(const std::string& path, const TaskGraph& g) {
  save_to(path, [&](std::ostream& out) { write_task_graph(out, g); });
}

TaskGraph load_task_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_task_graph(in);
}

void save_device_network(const std::string& path, const DeviceNetwork& n) {
  save_to(path, [&](std::ostream& out) { write_device_network(out, n); });
}

DeviceNetwork load_device_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_device_network(in);
}

}  // namespace giph
