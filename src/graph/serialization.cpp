#include "graph/serialization.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace giph {
namespace {

void expect_header(std::istream& in, const std::string& kind) {
  std::string k, v;
  in >> k >> v;
  if (!in || k != kind || v != "v1") {
    throw std::runtime_error("deserialize: expected '" + kind + " v1' header");
  }
}

std::string encode_name(const std::string& name) {
  if (name.empty()) return "-";
  std::string out = name;
  for (char& c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

std::string decode_name(const std::string& token) {
  return token == "-" ? std::string{} : token;
}

void check(std::istream& in, const char* what) {
  if (!in) throw std::runtime_error(std::string("deserialize: truncated ") + what);
}

/// Reads one double via strtod. Stream extraction refuses "nan"/"inf"
/// tokens outright (a confusing "truncated" error for a hand-edited file);
/// strtod parses them, so the finite-value checks below can name the field.
double read_double(std::istream& in, const char* what) {
  std::string token;
  in >> token;
  check(in, what);
  char* end = nullptr;
  const double x = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw std::runtime_error(std::string("deserialize: ") + what +
                             " is not a number: '" + token + "'");
  }
  return x;
}

// Input files may be hand-edited or hostile; reject values that would poison
// every downstream computation (NaN/Inf propagate silently through the
// simulator) or crash it (bad indices), each with a message naming the field.
void check_finite_nonneg(double x, const char* what) {
  if (!std::isfinite(x) || x < 0.0) {
    throw std::runtime_error(std::string("deserialize: ") + what +
                             " must be finite and >= 0, got " + std::to_string(x));
  }
}

void check_finite_positive(double x, const char* what) {
  if (!std::isfinite(x) || x <= 0.0) {
    throw std::runtime_error(std::string("deserialize: ") + what +
                             " must be finite and > 0, got " + std::to_string(x));
  }
}

}  // namespace

void write_task_graph(std::ostream& out, const TaskGraph& g) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "task-graph v1\n" << g.num_tasks() << " " << g.num_edges() << "\n";
  for (int v = 0; v < g.num_tasks(); ++v) {
    const Task& t = g.task(v);
    out << t.compute << " " << t.requires_hw << " " << t.pinned << " "
        << encode_name(t.name) << "\n";
  }
  for (const DataLink& e : g.edges()) {
    out << e.src << " " << e.dst << " " << e.bytes << "\n";
  }
}

TaskGraph read_task_graph(std::istream& in) {
  expect_header(in, "task-graph");
  int nv = 0, ne = 0;
  in >> nv >> ne;
  check(in, "task graph counts");
  if (nv < 0 || ne < 0) throw std::runtime_error("deserialize: negative counts");
  TaskGraph g;
  for (int v = 0; v < nv; ++v) {
    Task t;
    std::string name;
    t.compute = read_double(in, "task compute");
    in >> t.requires_hw >> t.pinned >> name;
    check(in, "task row");
    check_finite_nonneg(t.compute, "task compute");
    if (t.pinned < -1) {
      throw std::runtime_error("deserialize: task pinned device must be >= -1");
    }
    t.name = decode_name(name);
    g.add_task(std::move(t));
  }
  for (int e = 0; e < ne; ++e) {
    int src = 0, dst = 0;
    in >> src >> dst;
    check(in, "edge row");
    const double bytes = read_double(in, "edge bytes");
    if (src < 0 || src >= nv || dst < 0 || dst >= nv) {
      throw std::runtime_error("deserialize: edge endpoint out of range: " +
                               std::to_string(src) + " -> " + std::to_string(dst));
    }
    if (src == dst) {
      throw std::runtime_error("deserialize: self-loop edge at task " +
                               std::to_string(src));
    }
    if (g.has_edge(src, dst)) {
      throw std::runtime_error("deserialize: duplicate edge " + std::to_string(src) +
                               " -> " + std::to_string(dst));
    }
    check_finite_nonneg(bytes, "edge bytes");
    g.add_edge(src, dst, bytes);
  }
  return g;
}

void write_device_network(std::ostream& out, const DeviceNetwork& n) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "device-network v1\n" << n.num_devices() << "\n";
  for (int k = 0; k < n.num_devices(); ++k) {
    const Device& d = n.device(k);
    out << d.speed << " " << d.supports_hw << " " << d.type << " " << d.startup << " "
        << d.cores << " " << encode_name(d.name) << "\n";
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.bandwidth(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.delay(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
}

DeviceNetwork read_device_network(std::istream& in) {
  expect_header(in, "device-network");
  int m = 0;
  in >> m;
  check(in, "device count");
  if (m < 0) throw std::runtime_error("deserialize: negative device count");
  DeviceNetwork n;
  for (int k = 0; k < m; ++k) {
    Device d;
    std::string name;
    d.speed = read_double(in, "device speed");
    in >> d.supports_hw >> d.type;
    d.startup = read_double(in, "device startup");
    in >> d.cores >> name;
    check(in, "device row");
    check_finite_positive(d.speed, "device speed");
    check_finite_nonneg(d.startup, "device startup");
    if (d.cores < 1) {
      throw std::runtime_error("deserialize: device cores must be >= 1, got " +
                               std::to_string(d.cores));
    }
    d.name = decode_name(name);
    n.add_device(std::move(d));
  }
  std::vector<double> bw(static_cast<std::size_t>(m) * m), dl(bw.size());
  for (double& x : bw) x = read_double(in, "link bandwidth");
  for (double& x : dl) x = read_double(in, "link delay");
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      if (k == l) continue;
      check_finite_positive(bw[static_cast<std::size_t>(k) * m + l], "link bandwidth");
      check_finite_nonneg(dl[static_cast<std::size_t>(k) * m + l], "link delay");
      n.set_link(k, l, bw[static_cast<std::size_t>(k) * m + l],
                 dl[static_cast<std::size_t>(k) * m + l]);
    }
  }
  return n;
}

void write_placement(std::ostream& out, const Placement& p) {
  out << "placement v1\n" << p.num_tasks() << "\n";
  for (int v = 0; v < p.num_tasks(); ++v) {
    out << p.device_of(v) << (v + 1 == p.num_tasks() ? '\n' : ' ');
  }
}

Placement read_placement(std::istream& in) {
  expect_header(in, "placement");
  int nv = 0;
  in >> nv;
  check(in, "placement count");
  Placement p(nv);
  for (int v = 0; v < nv; ++v) {
    int d = 0;
    in >> d;
    p.set(v, d);
  }
  check(in, "placement row");
  return p;
}

namespace {

template <typename WriteFn>
void save_to(const std::string& path, WriteFn fn) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  fn(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void save_task_graph(const std::string& path, const TaskGraph& g) {
  save_to(path, [&](std::ostream& out) { write_task_graph(out, g); });
}

TaskGraph load_task_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_task_graph(in);
}

void save_device_network(const std::string& path, const DeviceNetwork& n) {
  save_to(path, [&](std::ostream& out) { write_device_network(out, n); });
}

DeviceNetwork load_device_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_device_network(in);
}

}  // namespace giph
