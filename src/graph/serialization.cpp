#include "graph/serialization.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace giph {

ParseError::ParseError(const std::string& kind, int line, const std::string& detail)
    : std::runtime_error("deserialize " + kind + ": line " + std::to_string(line) +
                         ": " + detail),
      kind_(kind),
      detail_(detail),
      line_(line) {}

LineReader::LineReader(std::istream& in, int start_line) : in_(&in), line_(start_line) {}

bool LineReader::at_end() {
  for (;;) {
    const int c = in_->peek();
    if (c == std::char_traits<char>::eof()) return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
    if (c == '\n') ++line_;
    in_->get();
  }
}

std::string LineReader::token(const std::string& kind, const std::string& field) {
  if (at_end()) {
    throw ParseError(kind, line_, "unexpected end of input, expected " + field);
  }
  std::string tok;
  for (;;) {
    const int c = in_->peek();
    if (c == std::char_traits<char>::eof() ||
        std::isspace(static_cast<unsigned char>(c))) {
      break;
    }
    tok.push_back(static_cast<char>(in_->get()));
  }
  return tok;
}

long LineReader::read_int(const std::string& kind, const std::string& field) {
  const int at = line_;
  const std::string tok = token(kind, field);
  errno = 0;
  char* end = nullptr;
  const long x = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
    throw ParseError(kind, at, field + " is not an integer: '" + tok + "'");
  }
  return x;
}

double LineReader::read_double(const std::string& kind, const std::string& field) {
  const int at = line_;
  const std::string tok = token(kind, field);
  // strtod (not stream extraction) so "nan"/"inf" tokens parse and the
  // finite-value checks below can name the field instead of reporting a
  // confusing truncation.
  char* end = nullptr;
  const double x = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    throw ParseError(kind, at, field + " is not a number: '" + tok + "'");
  }
  return x;
}

std::string LineReader::rest_of_line() {
  std::string out;
  std::getline(*in_, out);
  ++line_;
  std::size_t b = 0;
  while (b < out.size() && std::isspace(static_cast<unsigned char>(out[b]))) ++b;
  std::size_t e = out.size();
  while (e > b && std::isspace(static_cast<unsigned char>(out[e - 1]))) --e;
  return out.substr(b, e - b);
}

namespace {

void expect_header(LineReader& r, const std::string& kind) {
  const int at = r.line();
  const std::string k = r.token(kind, "header");
  const std::string v = r.token(kind, "header version");
  if (k != kind || v != "v1") {
    throw ParseError(kind, at,
                     "expected '" + kind + " v1' header, got '" + k + " " + v + "'");
  }
}

std::string encode_name(const std::string& name) {
  if (name.empty()) return "-";
  std::string out = name;
  for (char& c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

std::string decode_name(const std::string& token) {
  return token == "-" ? std::string{} : token;
}

int read_count(LineReader& r, const std::string& kind, const std::string& field,
               long max_value) {
  const int at = r.line();
  const long x = r.read_int(kind, field);
  if (x < 0) throw ParseError(kind, at, "negative counts: " + field);
  if (x > max_value) {
    throw ParseError(kind, at,
                     field + " " + std::to_string(x) + " exceeds the sanity limit " +
                         std::to_string(max_value));
  }
  return static_cast<int>(x);
}

// Input files may be hand-edited or hostile; reject values that would poison
// every downstream computation (NaN/Inf propagate silently through the
// simulator) or crash it (bad indices), each with a message naming the field.
void check_finite_nonneg(const std::string& kind, int line, double x,
                         const std::string& what) {
  if (!std::isfinite(x) || x < 0.0) {
    throw ParseError(kind, line,
                     what + " must be finite and >= 0, got " + std::to_string(x));
  }
}

void check_finite_positive(const std::string& kind, int line, double x,
                           const std::string& what) {
  if (!std::isfinite(x) || x <= 0.0) {
    throw ParseError(kind, line,
                     what + " must be finite and > 0, got " + std::to_string(x));
  }
}

// Caps on the declared element counts: large enough for any real problem
// instance, small enough that a hostile header cannot make the reader
// allocate unbounded memory before the (truncated) body fails to parse.
constexpr long kMaxTasks = 10'000'000;
constexpr long kMaxEdges = 100'000'000;
constexpr long kMaxDevices = 1'000'000;

}  // namespace

void write_task_graph(std::ostream& out, const TaskGraph& g) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "task-graph v1\n" << g.num_tasks() << " " << g.num_edges() << "\n";
  for (int v = 0; v < g.num_tasks(); ++v) {
    const Task& t = g.task(v);
    out << t.compute << " " << t.requires_hw << " " << t.pinned << " "
        << encode_name(t.name) << "\n";
  }
  for (const DataLink& e : g.edges()) {
    out << e.src << " " << e.dst << " " << e.bytes << "\n";
  }
}

TaskGraph read_task_graph(LineReader& r) {
  const std::string kind = "task-graph";
  expect_header(r, kind);
  const int nv = read_count(r, kind, "task count", kMaxTasks);
  const int ne = read_count(r, kind, "edge count", kMaxEdges);
  TaskGraph g;
  for (int v = 0; v < nv; ++v) {
    const int at = r.line();
    Task t;
    t.compute = r.read_double(kind, "task compute");
    const long hw = r.read_int(kind, "task requires_hw");
    const long pinned = r.read_int(kind, "task pinned");
    const std::string name = r.token(kind, "task name");
    check_finite_nonneg(kind, at, t.compute, "task compute");
    if (hw < 0 || hw > static_cast<long>(std::numeric_limits<HwMask>::max())) {
      throw ParseError(kind, at,
                       "task requires_hw out of range: " + std::to_string(hw));
    }
    if (pinned < -1 || pinned > kMaxDevices) {
      throw ParseError(kind, at, "task pinned device must be >= -1, got " +
                                     std::to_string(pinned));
    }
    t.requires_hw = static_cast<HwMask>(hw);
    t.pinned = static_cast<int>(pinned);
    t.name = decode_name(name);
    g.add_task(std::move(t));
  }
  for (int e = 0; e < ne; ++e) {
    const int at = r.line();
    const long src = r.read_int(kind, "edge src");
    const long dst = r.read_int(kind, "edge dst");
    const double bytes = r.read_double(kind, "edge bytes");
    if (src < 0 || src >= nv || dst < 0 || dst >= nv) {
      throw ParseError(kind, at,
                       "edge endpoint out of range: " + std::to_string(src) + " -> " +
                           std::to_string(dst));
    }
    if (src == dst) {
      throw ParseError(kind, at, "self-loop edge at task " + std::to_string(src));
    }
    if (g.has_edge(static_cast<int>(src), static_cast<int>(dst))) {
      throw ParseError(kind, at, "duplicate edge " + std::to_string(src) + " -> " +
                                     std::to_string(dst));
    }
    check_finite_nonneg(kind, at, bytes, "edge bytes");
    g.add_edge(static_cast<int>(src), static_cast<int>(dst), bytes);
  }
  return g;
}

TaskGraph read_task_graph(std::istream& in) {
  LineReader r(in);
  return read_task_graph(r);
}

void write_device_network(std::ostream& out, const DeviceNetwork& n) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "device-network v1\n" << n.num_devices() << "\n";
  for (int k = 0; k < n.num_devices(); ++k) {
    const Device& d = n.device(k);
    out << d.speed << " " << d.supports_hw << " " << d.type << " " << d.startup << " "
        << d.cores << " " << encode_name(d.name) << "\n";
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.bandwidth(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
  for (int k = 0; k < n.num_devices(); ++k) {
    for (int l = 0; l < n.num_devices(); ++l) {
      out << (k == l ? 0.0 : n.delay(k, l)) << (l + 1 == n.num_devices() ? '\n' : ' ');
    }
  }
}

DeviceNetwork read_device_network(LineReader& r) {
  const std::string kind = "device-network";
  expect_header(r, kind);
  const int m = read_count(r, kind, "device count", kMaxDevices);
  DeviceNetwork n;
  for (int k = 0; k < m; ++k) {
    const int at = r.line();
    Device d;
    d.speed = r.read_double(kind, "device speed");
    const long hw = r.read_int(kind, "device supports_hw");
    const long type = r.read_int(kind, "device type");
    d.startup = r.read_double(kind, "device startup");
    const long cores = r.read_int(kind, "device cores");
    const std::string name = r.token(kind, "device name");
    check_finite_positive(kind, at, d.speed, "device speed");
    check_finite_nonneg(kind, at, d.startup, "device startup");
    if (hw < 0 || hw > static_cast<long>(std::numeric_limits<HwMask>::max())) {
      throw ParseError(kind, at,
                       "device supports_hw out of range: " + std::to_string(hw));
    }
    if (type < std::numeric_limits<int>::min() ||
        type > std::numeric_limits<int>::max()) {
      throw ParseError(kind, at, "device type out of range: " + std::to_string(type));
    }
    if (cores < 1 || cores > kMaxDevices) {
      throw ParseError(kind, at,
                       "device cores must be >= 1, got " + std::to_string(cores));
    }
    d.supports_hw = static_cast<HwMask>(hw);
    d.type = static_cast<int>(type);
    d.cores = static_cast<int>(cores);
    d.name = decode_name(name);
    n.add_device(std::move(d));
  }
  std::vector<double> bw(static_cast<std::size_t>(m) * m), dl(bw.size());
  std::vector<int> bw_line(bw.size()), dl_line(bw.size());
  for (std::size_t i = 0; i < bw.size(); ++i) {
    bw_line[i] = r.line();
    bw[i] = r.read_double(kind, "link bandwidth");
  }
  for (std::size_t i = 0; i < dl.size(); ++i) {
    dl_line[i] = r.line();
    dl[i] = r.read_double(kind, "link delay");
  }
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      if (k == l) continue;
      const std::size_t i = static_cast<std::size_t>(k) * m + l;
      check_finite_positive(kind, bw_line[i], bw[i], "link bandwidth");
      check_finite_nonneg(kind, dl_line[i], dl[i], "link delay");
      n.set_link(k, l, bw[i], dl[i]);
    }
  }
  return n;
}

DeviceNetwork read_device_network(std::istream& in) {
  LineReader r(in);
  return read_device_network(r);
}

void write_placement(std::ostream& out, const Placement& p) {
  out << "placement v1\n" << p.num_tasks() << "\n";
  for (int v = 0; v < p.num_tasks(); ++v) {
    out << p.device_of(v) << (v + 1 == p.num_tasks() ? '\n' : ' ');
  }
}

Placement read_placement(LineReader& r) {
  const std::string kind = "placement";
  expect_header(r, kind);
  const int nv = read_count(r, kind, "placement count", kMaxTasks);
  Placement p(nv);
  for (int v = 0; v < nv; ++v) {
    const int at = r.line();
    const long d = r.read_int(kind, "placement device");
    if (d < -1 || d > kMaxDevices) {
      throw ParseError(kind, at,
                       "placement device must be >= -1, got " + std::to_string(d));
    }
    p.set(v, static_cast<int>(d));
  }
  return p;
}

Placement read_placement(std::istream& in) {
  LineReader r(in);
  return read_placement(r);
}

namespace {

template <typename WriteFn>
void save_to(const std::string& path, WriteFn fn) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  fn(out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void save_task_graph(const std::string& path, const TaskGraph& g) {
  save_to(path, [&](std::ostream& out) { write_task_graph(out, g); });
}

TaskGraph load_task_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_task_graph(in);
}

void save_device_network(const std::string& path, const DeviceNetwork& n) {
  save_to(path, [&](std::ostream& out) { write_device_network(out, n); });
}

DeviceNetwork load_device_network(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_device_network(in);
}

}  // namespace giph
