#pragma once

#include <cstdint>

namespace giph {

/// Bitmask of hardware capabilities. Bit i set in a task's requirement mask
/// means the task can only run on devices whose support mask also has bit i.
/// A zero requirement mask means "runs anywhere".
using HwMask = std::uint32_t;

/// All-capabilities mask (a device that supports everything).
inline constexpr HwMask kHwAll = ~HwMask{0};

/// True when a device with support mask `supports` can host a task whose
/// requirement mask is `requires_hw`.
constexpr bool hw_compatible(HwMask requires_hw, HwMask supports) noexcept {
  return (requires_hw & supports) == requires_hw;
}

}  // namespace giph
