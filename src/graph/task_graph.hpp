#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/hardware.hpp"
#include "graph/stamp.hpp"

namespace giph {

/// A computation task (node of the application DAG).
struct Task {
  double compute = 0.0;    ///< compute requirement C_i (abstract work units)
  HwMask requires_hw = 0;  ///< hardware-requirement property (0 = any device)
  int pinned = -1;         ///< if >= 0, the only feasible device (e.g. a sensor source)
  std::string name;        ///< optional human-readable label
};

/// A directed data link (u -> v): v consumes `bytes` of u's output.
struct DataLink {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;  ///< amount of data transferred B_ij
};

/// Directed acyclic task graph G = (V, E) with per-node compute requirements,
/// per-edge data volumes, and hardware placement constraints.
///
/// Nodes are dense integer ids [0, num_tasks). Edges are stored in insertion
/// order with per-node incoming/outgoing adjacency (edge-index lists).
/// Structural queries (topological order, depth, levels) are computed lazily
/// and cached; any mutation invalidates the cache.
///
/// Thread safety: concurrent *const* access is safe, including the first
/// access that builds the lazy cache (double-checked lock in build_order) —
/// parallel evaluation and rollout workers share const graphs freely.
/// Mutation is not synchronized and must not overlap any other access.
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph& other);
  TaskGraph(TaskGraph&& other) noexcept;
  TaskGraph& operator=(const TaskGraph& other);
  TaskGraph& operator=(TaskGraph&& other) noexcept;

  /// Adds a task, returning its id.
  int add_task(Task t);

  /// Adds a data link u -> v. Throws std::invalid_argument on out-of-range
  /// ids, self-loops, or duplicate edges.
  int add_edge(int u, int v, double bytes);

  int num_tasks() const noexcept { return static_cast<int>(tasks_.size()); }
  int num_edges() const noexcept { return static_cast<int>(edges_.size()); }

  const Task& task(int v) const { return tasks_.at(v); }
  Task& task(int v) {
    bump();  // mutable access: assume the caller writes through the reference
    return tasks_.at(v);
  }
  const DataLink& edge(int e) const { return edges_.at(e); }
  DataLink& edge(int e) {
    bump();
    return edges_.at(e);
  }
  std::span<const DataLink> edges() const noexcept { return edges_; }

  /// Modification stamp: changes on every mutating call (add_task, add_edge,
  /// non-const task()/edge()), never repeats process-wide, shared by copies.
  /// Same caveat as DeviceNetwork::stamp(): writes through a retained
  /// non-const reference after other calls are not tracked.
  std::uint64_t stamp() const noexcept { return stamp_; }

  /// Edge ids entering / leaving node v.
  std::span<const int> in_edges(int v) const { return in_edges_.at(v); }
  std::span<const int> out_edges(int v) const { return out_edges_.at(v); }

  /// Parent / child task ids of v (in adjacency order).
  std::vector<int> parents(int v) const;
  std::vector<int> children(int v) const;

  int in_degree(int v) const { return static_cast<int>(in_edges_.at(v).size()); }
  int out_degree(int v) const { return static_cast<int>(out_edges_.at(v).size()); }
  /// Total degree |E_i| of node v (used by the gpNet edge-count formula).
  int degree(int v) const { return in_degree(v) + out_degree(v); }

  /// True iff there is an edge u -> v.
  bool has_edge(int u, int v) const;
  /// Edge id of u -> v, or -1.
  int find_edge(int u, int v) const;

  /// Tasks with no parents / no children.
  std::vector<int> entry_tasks() const;
  std::vector<int> exit_tasks() const;

  /// True when the edge set is acyclic (always true unless edges were added
  /// forming a cycle; add_edge does not eagerly check reachability).
  bool is_dag() const;

  /// Topological order of all tasks. Throws std::logic_error if cyclic.
  const std::vector<int>& topological_order() const;

  /// Level of each task: entry tasks are level 0, otherwise 1 + max parent
  /// level. Throws if cyclic.
  const std::vector<int>& levels() const;

  /// Depth = number of levels = length (in nodes) of the longest path.
  int depth() const;

  /// Longest entry->exit path weight using per-node cost(v) and per-edge
  /// cost(e) callables; also known as the static critical path.
  template <typename NodeCost, typename EdgeCost>
  double critical_path_cost(NodeCost node_cost, EdgeCost edge_cost) const {
    double best = 0.0;
    std::vector<double> dist(tasks_.size(), 0.0);
    for (int v : topological_order()) {
      double d = 0.0;
      for (int e : in_edges_[v]) {
        d = std::max(d, dist[edges_[e].src] + edge_cost(e));
      }
      dist[v] = d + node_cost(v);
      best = std::max(best, dist[v]);
    }
    return best;
  }

  /// Nodes on the critical path when only node costs are counted (CP_MIN of
  /// the SLR definition uses this with the per-node minimum compute cost).
  template <typename NodeCost>
  std::vector<int> critical_path_nodes(NodeCost node_cost) const {
    std::vector<double> dist(tasks_.size(), 0.0);
    std::vector<int> pred(tasks_.size(), -1);
    int best_node = -1;
    double best = -1.0;
    for (int v : topological_order()) {
      double d = 0.0;
      int p = -1;
      for (int e : in_edges_[v]) {
        if (dist[edges_[e].src] > d) {
          d = dist[edges_[e].src];
          p = edges_[e].src;
        }
      }
      dist[v] = d + node_cost(v);
      pred[v] = p;
      if (dist[v] > best) {
        best = dist[v];
        best_node = v;
      }
    }
    std::vector<int> path;
    for (int v = best_node; v != -1; v = pred[v]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;
  }

  /// Sum of data volumes over all edges.
  double total_bytes() const;
  /// Sum of compute requirements over all tasks.
  double total_compute() const;

 private:
  void invalidate_cache() const;
  void build_order() const;
  void bump() noexcept { stamp_ = detail::next_structure_stamp(); }

  std::uint64_t stamp_ = detail::next_structure_stamp();
  std::vector<Task> tasks_;
  std::vector<DataLink> edges_;
  std::vector<std::vector<int>> in_edges_;
  std::vector<std::vector<int>> out_edges_;

  // Lazy-cache state. cache_valid_ is the double-checked-lock flag: readers
  // fast-path on an acquire load; the builder publishes topo_/levels_/cyclic_
  // with a release store while holding cache_mutex_.
  mutable std::mutex cache_mutex_;
  mutable std::atomic<bool> cache_valid_{false};
  mutable bool cyclic_ = false;
  mutable std::vector<int> topo_;
  mutable std::vector<int> levels_;
};

}  // namespace giph
