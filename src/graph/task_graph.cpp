#include "graph/task_graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace giph {

// The mutex member deletes the defaulted copy/move operations, so they are
// spelled out: structural data transfers as usual, and the cache comes along
// when valid (locking the source excludes a concurrent build_order on it).
// The destination is never visible to other threads mid-construction, so its
// own flag can be stored relaxed.
TaskGraph::TaskGraph(const TaskGraph& other) { *this = other; }

TaskGraph::TaskGraph(TaskGraph&& other) noexcept { *this = std::move(other); }

TaskGraph& TaskGraph::operator=(const TaskGraph& other) {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  stamp_ = other.stamp_;  // equal content: copies validate the same caches
  tasks_ = other.tasks_;
  edges_ = other.edges_;
  in_edges_ = other.in_edges_;
  out_edges_ = other.out_edges_;
  cyclic_ = other.cyclic_;
  topo_ = other.topo_;
  levels_ = other.levels_;
  cache_valid_.store(other.cache_valid_.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
  return *this;
}

TaskGraph& TaskGraph::operator=(TaskGraph&& other) noexcept {
  if (this == &other) return *this;
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  stamp_ = other.stamp_;
  other.bump();  // moved-from content changed
  tasks_ = std::move(other.tasks_);
  edges_ = std::move(other.edges_);
  in_edges_ = std::move(other.in_edges_);
  out_edges_ = std::move(other.out_edges_);
  cyclic_ = other.cyclic_;
  topo_ = std::move(other.topo_);
  levels_ = std::move(other.levels_);
  cache_valid_.store(other.cache_valid_.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
  other.cache_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

int TaskGraph::add_task(Task t) {
  bump();
  tasks_.push_back(std::move(t));
  in_edges_.emplace_back();
  out_edges_.emplace_back();
  invalidate_cache();
  return static_cast<int>(tasks_.size()) - 1;
}

int TaskGraph::add_edge(int u, int v, double bytes) {
  if (u < 0 || u >= num_tasks() || v < 0 || v >= num_tasks()) {
    throw std::invalid_argument("TaskGraph::add_edge: node id out of range");
  }
  if (u == v) {
    throw std::invalid_argument("TaskGraph::add_edge: self-loop");
  }
  if (has_edge(u, v)) {
    throw std::invalid_argument("TaskGraph::add_edge: duplicate edge");
  }
  bump();
  const int e = static_cast<int>(edges_.size());
  edges_.push_back(DataLink{u, v, bytes});
  out_edges_[u].push_back(e);
  in_edges_[v].push_back(e);
  invalidate_cache();
  return e;
}

std::vector<int> TaskGraph::parents(int v) const {
  std::vector<int> out;
  out.reserve(in_edges_.at(v).size());
  for (int e : in_edges_[v]) out.push_back(edges_[e].src);
  return out;
}

std::vector<int> TaskGraph::children(int v) const {
  std::vector<int> out;
  out.reserve(out_edges_.at(v).size());
  for (int e : out_edges_[v]) out.push_back(edges_[e].dst);
  return out;
}

bool TaskGraph::has_edge(int u, int v) const { return find_edge(u, v) >= 0; }

int TaskGraph::find_edge(int u, int v) const {
  for (int e : out_edges_.at(u)) {
    if (edges_[e].dst == v) return e;
  }
  return -1;
}

std::vector<int> TaskGraph::entry_tasks() const {
  std::vector<int> out;
  for (int v = 0; v < num_tasks(); ++v) {
    if (in_edges_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<int> TaskGraph::exit_tasks() const {
  std::vector<int> out;
  for (int v = 0; v < num_tasks(); ++v) {
    if (out_edges_[v].empty()) out.push_back(v);
  }
  return out;
}

void TaskGraph::invalidate_cache() const {
  cache_valid_.store(false, std::memory_order_relaxed);
}

void TaskGraph::build_order() const {
  // Double-checked lock: once a release store published the cache, readers
  // take the lock-free fast path; a cold cache is built by exactly one
  // thread while late arrivals wait on the mutex. This is what lets rollout
  // and evaluation workers share const graphs without a warmup pass.
  if (cache_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (cache_valid_.load(std::memory_order_relaxed)) return;
  const int n = num_tasks();
  topo_.clear();
  topo_.reserve(n);
  levels_.assign(n, 0);
  std::vector<int> indeg(n);
  for (int v = 0; v < n; ++v) indeg[v] = in_degree(v);
  // Kahn's algorithm; the frontier is kept sorted by node id for determinism.
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  std::size_t head = 0;
  while (head < frontier.size()) {
    const int v = frontier[head++];
    topo_.push_back(v);
    for (int e : out_edges_[v]) {
      const int c = edges_[e].dst;
      levels_[c] = std::max(levels_[c], levels_[v] + 1);
      if (--indeg[c] == 0) frontier.push_back(c);
    }
  }
  cyclic_ = static_cast<int>(topo_.size()) != n;
  cache_valid_.store(true, std::memory_order_release);
}

bool TaskGraph::is_dag() const {
  build_order();
  return !cyclic_;
}

const std::vector<int>& TaskGraph::topological_order() const {
  build_order();
  if (cyclic_) throw std::logic_error("TaskGraph: graph is cyclic");
  return topo_;
}

const std::vector<int>& TaskGraph::levels() const {
  build_order();
  if (cyclic_) throw std::logic_error("TaskGraph: graph is cyclic");
  return levels_;
}

int TaskGraph::depth() const {
  if (num_tasks() == 0) return 0;
  const auto& lv = levels();
  return *std::max_element(lv.begin(), lv.end()) + 1;
}

double TaskGraph::total_bytes() const {
  return std::accumulate(edges_.begin(), edges_.end(), 0.0,
                         [](double s, const DataLink& e) { return s + e.bytes; });
}

double TaskGraph::total_compute() const {
  return std::accumulate(tasks_.begin(), tasks_.end(), 0.0,
                         [](double s, const Task& t) { return s + t.compute; });
}

}  // namespace giph
