#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/hardware.hpp"
#include "graph/stamp.hpp"

namespace giph {

/// A compute device (node of the target network).
struct Device {
  double speed = 1.0;          ///< compute speed SP_k (work units / time)
  HwMask supports_hw = kHwAll; ///< hardware-support property
  int type = 0;                ///< device type tag (e.g. case-study type A/B/C)
  double startup = 0.0;        ///< per-task startup time S_k (case-study model)
  /// Number of tasks the device can execute concurrently. The paper's model
  /// is 1 (at most one task per device); higher values model multi-core
  /// servers, each core running at full `speed`.
  int cores = 1;
  std::string name;            ///< optional human-readable label
};

/// Fully-connected heterogeneous device network N = (D, b^n, b^e).
///
/// Each ordered device pair (k, l) has a communication bandwidth BW_kl and a
/// startup delay DL_kl. Local transfers are free: BW_kk = infinity, DL_kk = 0
/// (enforced, not stored). Topologies with missing links are modelled by
/// near-zero bandwidth, as the paper suggests.
class DeviceNetwork {
 public:
  DeviceNetwork() = default;
  explicit DeviceNetwork(int num_devices) { resize(num_devices); }

  /// Adds a device with default (infinite-cost) links; returns its id.
  /// New links default to bandwidth 1 and delay 0 until set explicitly.
  int add_device(Device d);

  /// Removes device k, compacting ids (device m-1 keeps its relative order:
  /// all ids > k shift down by one). Invalidates existing placements.
  void remove_device(int k);

  int num_devices() const noexcept { return static_cast<int>(devices_.size()); }

  const Device& device(int k) const { return devices_.at(k); }
  Device& device(int k) {
    bump();  // mutable access: assume the caller writes through the reference
    return devices_.at(k);
  }

  /// Modification stamp: changes on every mutating call (set_link,
  /// add/remove_device, non-const device()), never repeats process-wide, and
  /// is shared by copies. Caches keyed on it (see EstSweepWorkspace) stay
  /// exact as long as mutation goes through the class interface — holding a
  /// non-const Device& across other calls and writing it later is not
  /// tracked.
  std::uint64_t stamp() const noexcept { return stamp_; }

  /// Bandwidth of the (k -> l) link; infinity when k == l.
  double bandwidth(int k, int l) const {
    check(k); check(l);
    if (k == l) return std::numeric_limits<double>::infinity();
    return bw_[idx(k, l)];
  }

  /// Startup delay of the (k -> l) link; 0 when k == l.
  double delay(int k, int l) const {
    check(k); check(l);
    if (k == l) return 0.0;
    return dl_[idx(k, l)];
  }

  /// Raw row-major bandwidth / delay rows for source device k, for batched
  /// sweeps that touch every destination (LatencyModel::comm_time_row). The
  /// diagonal slot holds a placeholder (1.0 / 0.0), NOT the implicit
  /// infinite-bandwidth self link — callers must overwrite the l == k result
  /// themselves. Off-diagonal entries are the exact stored doubles that
  /// bandwidth() / delay() return.
  const double* bandwidth_row(int k) const { check(k); return bw_.data() + idx(k, 0); }
  const double* delay_row(int k) const { check(k); return dl_.data() + idx(k, 0); }

  /// Sets the directed link k -> l. Throws on k == l or non-positive bandwidth.
  void set_link(int k, int l, double bandwidth, double delay);
  /// Sets both directions of the link.
  void set_symmetric_link(int k, int l, double bandwidth, double delay);

  /// Device ids able to host a task with requirement mask `requires_hw`.
  std::vector<int> feasible_devices(HwMask requires_hw) const;

  /// Mean of off-diagonal bandwidths / delays and of device speeds; used by
  /// HEFT's averaged cost model and by feature normalization.
  double mean_bandwidth() const;
  double mean_delay() const;
  double mean_speed() const;

 private:
  void resize(int m);
  std::size_t idx(int k, int l) const {
    return static_cast<std::size_t>(k) * devices_.size() + static_cast<std::size_t>(l);
  }
  // Hot path inline; the throw stays out of line so the compare is all the
  // per-element accessors pay.
  void check(int k) const {
    if (k < 0 || k >= num_devices()) throw_bad_device();
  }
  [[noreturn]] static void throw_bad_device();
  void bump() noexcept { stamp_ = detail::next_structure_stamp(); }

  std::vector<Device> devices_;
  std::vector<double> bw_;  // row-major m x m, diagonal unused
  std::vector<double> dl_;
  std::uint64_t stamp_ = detail::next_structure_stamp();
};

}  // namespace giph
