#include "graph/device_network.hpp"

#include <stdexcept>

namespace giph {

void DeviceNetwork::resize(int m) {
  bump();
  devices_.resize(m);
  bw_.assign(static_cast<std::size_t>(m) * m, 1.0);
  dl_.assign(static_cast<std::size_t>(m) * m, 0.0);
}

int DeviceNetwork::add_device(Device d) {
  const int m = num_devices();
  std::vector<double> bw(static_cast<std::size_t>(m + 1) * (m + 1), 1.0);
  std::vector<double> dl(static_cast<std::size_t>(m + 1) * (m + 1), 0.0);
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      bw[static_cast<std::size_t>(k) * (m + 1) + l] = bw_[idx(k, l)];
      dl[static_cast<std::size_t>(k) * (m + 1) + l] = dl_[idx(k, l)];
    }
  }
  bump();
  devices_.push_back(std::move(d));
  bw_ = std::move(bw);
  dl_ = std::move(dl);
  return m;
}

void DeviceNetwork::remove_device(int k) {
  check(k);
  const int m = num_devices();
  std::vector<double> bw(static_cast<std::size_t>(m - 1) * (m - 1));
  std::vector<double> dl(static_cast<std::size_t>(m - 1) * (m - 1));
  for (int a = 0, na = 0; a < m; ++a) {
    if (a == k) continue;
    for (int b = 0, nb = 0; b < m; ++b) {
      if (b == k) continue;
      bw[static_cast<std::size_t>(na) * (m - 1) + nb] = bw_[idx(a, b)];
      dl[static_cast<std::size_t>(na) * (m - 1) + nb] = dl_[idx(a, b)];
      ++nb;
    }
    ++na;
  }
  bump();
  devices_.erase(devices_.begin() + k);
  bw_ = std::move(bw);
  dl_ = std::move(dl);
}

void DeviceNetwork::set_link(int k, int l, double bandwidth, double delay) {
  check(k);
  check(l);
  if (k == l) throw std::invalid_argument("DeviceNetwork::set_link: self link is implicit");
  if (!(bandwidth > 0.0)) {
    throw std::invalid_argument("DeviceNetwork::set_link: bandwidth must be positive");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("DeviceNetwork::set_link: delay must be non-negative");
  }
  bump();
  bw_[idx(k, l)] = bandwidth;
  dl_[idx(k, l)] = delay;
}

void DeviceNetwork::set_symmetric_link(int k, int l, double bandwidth, double delay) {
  set_link(k, l, bandwidth, delay);
  set_link(l, k, bandwidth, delay);
}

std::vector<int> DeviceNetwork::feasible_devices(HwMask requires_hw) const {
  std::vector<int> out;
  for (int k = 0; k < num_devices(); ++k) {
    if (hw_compatible(requires_hw, devices_[k].supports_hw)) out.push_back(k);
  }
  return out;
}

double DeviceNetwork::mean_bandwidth() const {
  const int m = num_devices();
  if (m < 2) return 0.0;
  double s = 0.0;
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      if (k != l) s += bw_[idx(k, l)];
    }
  }
  return s / (static_cast<double>(m) * (m - 1));
}

double DeviceNetwork::mean_delay() const {
  const int m = num_devices();
  if (m < 2) return 0.0;
  double s = 0.0;
  for (int k = 0; k < m; ++k) {
    for (int l = 0; l < m; ++l) {
      if (k != l) s += dl_[idx(k, l)];
    }
  }
  return s / (static_cast<double>(m) * (m - 1));
}

double DeviceNetwork::mean_speed() const {
  if (devices_.empty()) return 0.0;
  double s = 0.0;
  for (const Device& d : devices_) s += d.speed;
  return s / static_cast<double>(devices_.size());
}

void DeviceNetwork::throw_bad_device() {
  throw std::out_of_range("DeviceNetwork: device id out of range");
}

}  // namespace giph
