#pragma once

#include <vector>

#include "graph/device_network.hpp"

namespace giph {

/// A physical (sparse) communication link between two devices.
struct PhysicalLink {
  int a = -1;
  int b = -1;
  double bandwidth = 1.0;  ///< bytes per time unit
  double delay = 0.0;
  bool bidirectional = true;
};

/// Projects a sparse physical topology onto the fully-connected link model
/// the rest of the library uses (Section 3 notes that complex topologies are
/// handled "by attaching very high communication losses to links that do not
/// exist"). Every device pair's effective link is the minimum-total-delay
/// route through the physical links, with the path bandwidth equal to the
/// bottleneck link's bandwidth. Unreachable pairs get `unreachable_bw` /
/// `unreachable_delay`.
void apply_topology(DeviceNetwork& n, const std::vector<PhysicalLink>& links,
                    double unreachable_bw = 1e-6, double unreachable_delay = 1e9);

/// Which physical links each device pair's traffic crosses, for the same
/// routes apply_topology projects (minimum total delay, ties broken toward
/// higher bottleneck bandwidth). Feed to SimOptions::shared_links so
/// concurrent flows crossing the same physical link queue on it instead of
/// magically sharing infinite capacity.
struct SharedLinkMap {
  int num_devices = 0;
  int num_links = 0;  ///< physical link count == links.size() passed at build
  /// routes[k * num_devices + l]: ids (indices into the build links vector) of
  /// the physical links the k -> l route crosses, in path order. Empty for
  /// k == l and for unreachable pairs (which apply_topology punishes with
  /// near-zero bandwidth instead). A bidirectional physical link keeps one id
  /// for both directions, so opposing flows contend for it too.
  std::vector<std::vector<int>> routes;

  const std::vector<int>& links_on(int k, int l) const {
    return routes[static_cast<std::size_t>(k) * num_devices + l];
  }
};

/// Builds the route map matching apply_topology's projection over the same
/// `links` vector (same tie-breaking, so the projected delay/bandwidth of
/// every pair equals the sum/bottleneck over its mapped route). Throws
/// std::invalid_argument on the same malformed links apply_topology rejects.
SharedLinkMap build_shared_link_map(int num_devices,
                                    const std::vector<PhysicalLink>& links);

}  // namespace giph
