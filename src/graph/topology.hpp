#pragma once

#include <vector>

#include "graph/device_network.hpp"

namespace giph {

/// A physical (sparse) communication link between two devices.
struct PhysicalLink {
  int a = -1;
  int b = -1;
  double bandwidth = 1.0;  ///< bytes per time unit
  double delay = 0.0;
  bool bidirectional = true;
};

/// Projects a sparse physical topology onto the fully-connected link model
/// the rest of the library uses (Section 3 notes that complex topologies are
/// handled "by attaching very high communication losses to links that do not
/// exist"). Every device pair's effective link is the minimum-total-delay
/// route through the physical links, with the path bandwidth equal to the
/// bottleneck link's bandwidth. Unreachable pairs get `unreachable_bw` /
/// `unreachable_delay`.
void apply_topology(DeviceNetwork& n, const std::vector<PhysicalLink>& links,
                    double unreachable_bw = 1e-6, double unreachable_delay = 1e9);

}  // namespace giph
