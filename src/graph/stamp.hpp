#pragma once

#include <atomic>
#include <cstdint>

namespace giph::detail {

/// Process-unique, monotonically increasing modification stamps.
///
/// TaskGraph, DeviceNetwork, and LatencyModel carry one of these and draw a
/// fresh value on every mutation, so a cache keyed on an object's stamp can
/// prove "nothing I depend on changed" with one integer compare — without
/// risking the ABA problem of pointer identity (a freed object's address can
/// be reused, its stamp never is). Copies keep the source's stamp: equal
/// content validates the same cache entries. Never returns 0, so 0 is a safe
/// "no cache yet" sentinel.
inline std::uint64_t next_structure_stamp() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace giph::detail
