#include "graph/placement.hpp"

#include <stdexcept>

namespace giph {

std::vector<int> feasible_devices(const TaskGraph& g, const DeviceNetwork& n, int v) {
  const Task& t = g.task(v);
  if (t.pinned >= 0) {
    if (t.pinned >= n.num_devices()) return {};
    return {t.pinned};
  }
  return n.feasible_devices(t.requires_hw);
}

bool device_feasible(const TaskGraph& g, const DeviceNetwork& n, int v, int d) {
  if (d < 0 || d >= n.num_devices()) return false;
  const Task& t = g.task(v);
  if (t.pinned >= 0) return d == t.pinned;
  return hw_compatible(t.requires_hw, n.device(d).supports_hw);
}

bool is_feasible(const TaskGraph& g, const DeviceNetwork& n, const Placement& p) {
  if (p.num_tasks() != g.num_tasks()) return false;
  for (int v = 0; v < g.num_tasks(); ++v) {
    if (!device_feasible(g, n, v, p.device_of(v))) return false;
  }
  return true;
}

std::vector<std::vector<int>> feasible_sets(const TaskGraph& g, const DeviceNetwork& n) {
  std::vector<std::vector<int>> sets(g.num_tasks());
  for (int v = 0; v < g.num_tasks(); ++v) {
    sets[v] = feasible_devices(g, n, v);
    if (sets[v].empty()) {
      throw std::runtime_error("feasible_sets: task " + std::to_string(v) +
                               " has no feasible device");
    }
  }
  return sets;
}

double state_space_size(const TaskGraph& g, const DeviceNetwork& n) {
  double size = 1.0;
  for (const auto& s : feasible_sets(g, n)) size *= static_cast<double>(s.size());
  return size;
}

Placement random_placement(const TaskGraph& g, const DeviceNetwork& n, std::mt19937_64& rng) {
  Placement p(g.num_tasks());
  const auto sets = feasible_sets(g, n);
  for (int v = 0; v < g.num_tasks(); ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, sets[v].size() - 1);
    p.set(v, sets[v][pick(rng)]);
  }
  return p;
}

}  // namespace giph
