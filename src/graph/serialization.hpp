#pragma once

#include <iosfwd>
#include <string>

#include "graph/placement.hpp"

namespace giph {

/// Plain-text serialization of the problem-domain types. The format is
/// line-oriented and versioned; it round-trips exactly (doubles are written
/// with max_digits10 precision). Used by the CLI for dataset persistence.
///
/// task-graph v1
/// <num_tasks> <num_edges>
/// <compute> <requires_hw> <pinned> <name-or-dash>   (per task)
/// <src> <dst> <bytes>                               (per edge)
void write_task_graph(std::ostream& out, const TaskGraph& g);
TaskGraph read_task_graph(std::istream& in);

/// device-network v1
/// <num_devices>
/// <speed> <supports_hw> <type> <startup> <name-or-dash>  (per device)
/// <bandwidth> ... / <delay> ...    (two m x m row-major matrices, diag = 0)
void write_device_network(std::ostream& out, const DeviceNetwork& n);
DeviceNetwork read_device_network(std::istream& in);

/// placement v1
/// <num_tasks>
/// <device ids...>
void write_placement(std::ostream& out, const Placement& p);
Placement read_placement(std::istream& in);

// File-path conveniences (throw std::runtime_error on I/O failure).
void save_task_graph(const std::string& path, const TaskGraph& g);
TaskGraph load_task_graph(const std::string& path);
void save_device_network(const std::string& path, const DeviceNetwork& n);
DeviceNetwork load_device_network(const std::string& path);

}  // namespace giph
