#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/placement.hpp"

namespace giph {

/// Structured deserialization failure. what() reads
/// "deserialize <kind>: line <L>: <detail>", where <detail> names the
/// offending field ("task compute must be finite and >= 0, got -2") and <L>
/// is the 1-based line of the stream the reader was on. Every malformed-input
/// path of the readers below throws this (never abort(), never an uncaught
/// std::stoi/stod exception), so a serving daemon can turn hostile input into
/// an actionable error response.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& kind, int line, const std::string& detail);

  int line() const noexcept { return line_; }
  const std::string& kind() const noexcept { return kind_; }
  const std::string& detail() const noexcept { return detail_; }

 private:
  std::string kind_;
  std::string detail_;
  int line_;
};

/// Whitespace-token reader over an istream that tracks 1-based line numbers,
/// giving every parse error a location. One reader may be shared across
/// consecutive read_* calls (e.g. the serve protocol embedding a task graph
/// and a device network in one request) so reported line numbers stay global
/// to the enclosing stream.
class LineReader {
 public:
  explicit LineReader(std::istream& in, int start_line = 1);

  /// Next whitespace-delimited token. Throws ParseError(kind, line,
  /// "unexpected end of input ...") when the stream is exhausted.
  std::string token(const std::string& kind, const std::string& field);

  /// Typed variants: parse the next token fully (trailing garbage rejected)
  /// or throw a ParseError naming `field`.
  long read_int(const std::string& kind, const std::string& field);
  double read_double(const std::string& kind, const std::string& field);

  /// Rest of the current line with leading spaces trimmed (may be empty);
  /// positions the reader at the start of the next line.
  std::string rest_of_line();

  /// Skips whitespace; true when the stream is exhausted.
  bool at_end();

  int line() const noexcept { return line_; }

 private:
  std::istream* in_;
  int line_;
};

/// Plain-text serialization of the problem-domain types. The format is
/// line-oriented and versioned; it round-trips exactly (doubles are written
/// with max_digits10 precision). Used by the CLI for dataset persistence and
/// by the serve protocol (serve/protocol.hpp) for request payloads.
///
/// task-graph v1
/// <num_tasks> <num_edges>
/// <compute> <requires_hw> <pinned> <name-or-dash>   (per task)
/// <src> <dst> <bytes>                               (per edge)
void write_task_graph(std::ostream& out, const TaskGraph& g);
TaskGraph read_task_graph(std::istream& in);
TaskGraph read_task_graph(LineReader& r);

/// device-network v1
/// <num_devices>
/// <speed> <supports_hw> <type> <startup> <name-or-dash>  (per device)
/// <bandwidth> ... / <delay> ...    (two m x m row-major matrices, diag = 0)
void write_device_network(std::ostream& out, const DeviceNetwork& n);
DeviceNetwork read_device_network(std::istream& in);
DeviceNetwork read_device_network(LineReader& r);

/// placement v1
/// <num_tasks>
/// <device ids...>                 (each >= -1; -1 = unplaced)
void write_placement(std::ostream& out, const Placement& p);
Placement read_placement(std::istream& in);
Placement read_placement(LineReader& r);

// File-path conveniences (throw std::runtime_error on I/O failure).
void save_task_graph(const std::string& path, const TaskGraph& g);
TaskGraph load_task_graph(const std::string& path);
void save_device_network(const std::string& path, const DeviceNetwork& n);
DeviceNetwork load_device_network(const std::string& path);

}  // namespace giph
