#include "heft/cpop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace giph {
namespace {

/// Same per-device busy-interval structure as HEFT's scheduler.
class DeviceTimeline {
 public:
  double earliest_slot(double ready, double dur) const {
    double t = ready;
    for (const auto& [s, f] : busy_) {
      if (t + dur <= s) return t;
      t = std::max(t, f);
    }
    return t;
  }
  void occupy(double start, double finish) {
    auto it = std::lower_bound(busy_.begin(), busy_.end(), std::pair{start, finish});
    busy_.insert(it, {start, finish});
  }

 private:
  std::vector<std::pair<double, double>> busy_;
};

std::vector<double> averaged_compute(const TaskGraph& g, const DeviceNetwork& n,
                                     const LatencyModel& lat) {
  std::vector<double> wbar(g.num_tasks(), 0.0);
  for (int v = 0; v < g.num_tasks(); ++v) {
    const auto devs = feasible_devices(g, n, v);
    double s = 0.0;
    for (int d : devs) s += lat.compute_time(g, n, v, d);
    wbar[v] = devs.empty() ? 0.0 : s / static_cast<double>(devs.size());
  }
  return wbar;
}

}  // namespace

std::vector<double> downward_ranks(const TaskGraph& g, const DeviceNetwork& n,
                                   const LatencyModel& lat) {
  const std::vector<double> wbar = averaged_compute(g, n, lat);
  const double mean_bw = n.mean_bandwidth();
  const double mean_dl = n.mean_delay();
  auto cbar = [&](int e) {
    if (n.num_devices() < 2) return 0.0;
    return mean_dl + g.edge(e).bytes / mean_bw;
  };
  std::vector<double> rank(g.num_tasks(), 0.0);
  for (int v : g.topological_order()) {
    double best = 0.0;
    for (int e : g.in_edges(v)) {
      const int p = g.edge(e).src;
      best = std::max(best, rank[p] + wbar[p] + cbar(e));
    }
    rank[v] = best;
  }
  return rank;
}

CpopResult cpop_schedule(const TaskGraph& g, const DeviceNetwork& n,
                         const LatencyModel& lat) {
  const int nv = g.num_tasks();
  CpopResult res;
  res.placement = Placement(nv);
  res.timing.assign(nv, TaskTiming{});

  const std::vector<double> up = upward_ranks(g, n, lat);
  const std::vector<double> down = downward_ranks(g, n, lat);
  res.priority.resize(nv);
  for (int v = 0; v < nv; ++v) res.priority[v] = up[v] + down[v];

  // Critical path: walk from the highest-priority entry through the
  // highest-priority children (ties broken by id via max_element semantics).
  double cp_priority = 0.0;
  for (int v = 0; v < nv; ++v) {
    if (g.in_degree(v) == 0) cp_priority = std::max(cp_priority, res.priority[v]);
  }
  const double tol = 1e-9 * std::max(1.0, cp_priority);
  for (int v : g.topological_order()) {
    if (std::abs(res.priority[v] - cp_priority) <= tol) res.critical_path.push_back(v);
  }

  // Critical-path processor: feasible for every CP task, minimizing their
  // total execution time.
  double best_total = std::numeric_limits<double>::infinity();
  for (int d = 0; d < n.num_devices(); ++d) {
    bool ok = true;
    double total = 0.0;
    for (int v : res.critical_path) {
      if (!device_feasible(g, n, v, d)) {
        ok = false;
        break;
      }
      total += lat.compute_time(g, n, v, d);
    }
    if (ok && total < best_total) {
      best_total = total;
      res.cp_device = d;
    }
  }

  std::vector<bool> on_cp(nv, false);
  for (int v : res.critical_path) on_cp[v] = true;

  // Priority queue of ready tasks (highest priority first, id tie-break).
  auto cmp = [&](int a, int b) {
    if (res.priority[a] != res.priority[b]) return res.priority[a] < res.priority[b];
    return a > b;
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> ready(cmp);
  std::vector<int> pending(nv);
  for (int v = 0; v < nv; ++v) {
    pending[v] = g.in_degree(v);
    if (pending[v] == 0) ready.push(v);
  }

  std::vector<DeviceTimeline> timeline(n.num_devices());
  auto eft_on = [&](int v, int d, double* est_out) {
    double ready_t = 0.0;
    for (int e : g.in_edges(v)) {
      const int p = g.edge(e).src;
      ready_t = std::max(ready_t, res.timing[p].finish +
                                      lat.comm_time(g, n, e, res.placement.device_of(p), d));
    }
    const double w = lat.compute_time(g, n, v, d);
    const double est = timeline[d].earliest_slot(ready_t, w);
    *est_out = est;
    return est + w;
  };

  while (!ready.empty()) {
    const int v = ready.top();
    ready.pop();
    int dev = -1;
    double est = 0.0, eft = 0.0;
    if (on_cp[v] && res.cp_device >= 0) {
      dev = res.cp_device;
      eft = eft_on(v, dev, &est);
    } else {
      double best_eft = std::numeric_limits<double>::infinity();
      for (int d : feasible_devices(g, n, v)) {
        double e0 = 0.0;
        const double f = eft_on(v, d, &e0);
        if (f < best_eft) {
          best_eft = f;
          dev = d;
          est = e0;
        }
      }
      eft = best_eft;
    }
    res.placement.set(v, dev);
    res.timing[v] = TaskTiming{est, eft};
    timeline[dev].occupy(est, eft);
    res.cpop_makespan = std::max(res.cpop_makespan, eft);
    for (int e : g.out_edges(v)) {
      if (--pending[g.edge(e).dst] == 0) ready.push(g.edge(e).dst);
    }
  }
  return res;
}

}  // namespace giph
