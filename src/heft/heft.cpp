#include "heft/heft.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace giph {
namespace {

/// Per-device busy intervals kept sorted by start time, supporting
/// insertion-based earliest-start queries.
class DeviceTimeline {
 public:
  /// Earliest time >= ready at which a gap of length `dur` exists.
  double earliest_slot(double ready, double dur) const {
    double t = ready;
    for (const auto& [s, f] : busy_) {
      if (t + dur <= s) return t;  // fits before this interval
      t = std::max(t, f);
    }
    return t;
  }

  void occupy(double start, double finish) {
    auto it = std::lower_bound(busy_.begin(), busy_.end(), std::pair{start, finish});
    busy_.insert(it, {start, finish});
  }

 private:
  std::vector<std::pair<double, double>> busy_;
};

}  // namespace

std::vector<double> upward_ranks(const TaskGraph& g, const DeviceNetwork& n,
                                 const LatencyModel& lat) {
  const int nv = g.num_tasks();
  // Averaged computation cost over feasible devices.
  std::vector<double> wbar(nv, 0.0);
  for (int v = 0; v < nv; ++v) {
    const auto devs = feasible_devices(g, n, v);
    double s = 0.0;
    for (int d : devs) s += lat.compute_time(g, n, v, d);
    wbar[v] = devs.empty() ? 0.0 : s / static_cast<double>(devs.size());
  }
  // Averaged communication cost per edge using network-wide means.
  const double mean_bw = n.mean_bandwidth();
  const double mean_dl = n.mean_delay();
  auto cbar = [&](int e) {
    if (n.num_devices() < 2) return 0.0;
    return mean_dl + g.edge(e).bytes / mean_bw;
  };

  std::vector<double> rank(nv, 0.0);
  const auto& topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int v = *it;
    double best_child = 0.0;
    for (int e : g.out_edges(v)) {
      best_child = std::max(best_child, cbar(e) + rank[g.edge(e).dst]);
    }
    rank[v] = wbar[v] + best_child;
  }
  return rank;
}

HeftResult heft_schedule(const TaskGraph& g, const DeviceNetwork& n,
                         const LatencyModel& lat) {
  const int nv = g.num_tasks();
  HeftResult res;
  res.placement = Placement(nv);
  res.timing.assign(nv, TaskTiming{});
  res.upward_rank = upward_ranks(g, n, lat);

  // Descending upward rank, with topological order as the tie-break so the
  // precedence constraint holds even for zero-cost tasks.
  std::vector<int> order = g.topological_order();
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return res.upward_rank[a] > res.upward_rank[b];
  });

  std::vector<DeviceTimeline> timeline(n.num_devices());

  for (int v : order) {
    double best_eft = std::numeric_limits<double>::infinity();
    double best_est = 0.0;
    int best_dev = -1;
    for (int d : feasible_devices(g, n, v)) {
      double ready = 0.0;
      for (int e : g.in_edges(v)) {
        const int parent = g.edge(e).src;
        const int pd = res.placement.device_of(parent);
        ready = std::max(ready, res.timing[parent].finish + lat.comm_time(g, n, e, pd, d));
      }
      const double w = lat.compute_time(g, n, v, d);
      const double est = timeline[d].earliest_slot(ready, w);
      const double eft = est + w;
      if (eft < best_eft) {
        best_eft = eft;
        best_est = est;
        best_dev = d;
      }
    }
    res.placement.set(v, best_dev);
    res.timing[v] = TaskTiming{best_est, best_eft};
    timeline[best_dev].occupy(best_est, best_eft);
    res.heft_makespan = std::max(res.heft_makespan, best_eft);
  }
  return res;
}

int eft_select_device(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                      const LatencyModel& lat, const Schedule& sched, int v) {
  double best_eft = std::numeric_limits<double>::infinity();
  int best_dev = -1;
  for (int d : feasible_devices(g, n, v)) {
    const double est = earliest_start_on_queued(sched, g, n, p, lat, v, d);
    const double eft = est + lat.compute_time(g, n, v, d);
    if (eft < best_eft) {
      best_eft = eft;
      best_dev = d;
    }
  }
  return best_dev;
}

int eft_select_device(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                      const LatencyModel& lat, const Schedule& sched,
                      const ScheduleIndex& index, int v) {
  double best_eft = std::numeric_limits<double>::infinity();
  int best_dev = -1;
  for (int d : feasible_devices(g, n, v)) {
    const double est = earliest_start_on_queued(sched, g, n, p, lat, index, v, d);
    const double eft = est + lat.compute_time(g, n, v, d);
    if (eft < best_eft) {
      best_eft = eft;
      best_dev = d;
    }
  }
  return best_dev;
}

}  // namespace giph
