#pragma once

#include <vector>

#include "graph/placement.hpp"
#include "sim/schedule_index.hpp"
#include "sim/simulator.hpp"

namespace giph {

/// Output of the HEFT scheduler.
struct HeftResult {
  Placement placement;              ///< the task -> device mapping
  std::vector<TaskTiming> timing;   ///< HEFT's own (insertion-based) schedule
  double heft_makespan = 0.0;       ///< makespan of HEFT's internal schedule
  std::vector<double> upward_rank;  ///< rank_u per task (priority)
};

/// Heterogeneous Earliest Finish Time (Topcuoglu et al. 2002): tasks are
/// prioritized by upward rank computed from averaged computation and
/// communication costs, then assigned in priority order to the feasible
/// device minimizing the earliest finish time under an insertion-based
/// scheduling policy. Placement constraints restrict both the rank averages
/// and the candidate devices.
HeftResult heft_schedule(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat);

/// Upward ranks only: rank_u(i) = w-bar_i + max_j (c-bar_ij + rank_u(j)) over
/// children j, with averaged costs.
std::vector<double> upward_ranks(const TaskGraph& g, const DeviceNetwork& n,
                                 const LatencyModel& lat);

/// EFT device selection for search-based policies (Random-task-EFT and
/// GiPH-task-EFT): the feasible device minimizing est(v, d) + w(v, d), where
/// est comes from the parents' finish times of the current FIFO schedule.
int eft_select_device(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                      const LatencyModel& lat, const Schedule& sched, int v);

/// Indexed variant: answers each est query through `index` (which must be
/// built from (`sched`, `p`), e.g. PlacementSearchEnv::schedule_index()).
/// Selects exactly the same device as the unindexed overload.
int eft_select_device(const TaskGraph& g, const DeviceNetwork& n, const Placement& p,
                      const LatencyModel& lat, const Schedule& sched,
                      const ScheduleIndex& index, int v);

}  // namespace giph
