#pragma once

#include "heft/heft.hpp"

namespace giph {

/// Critical-Path-on-a-Processor (CPOP, Topcuoglu et al. 2002) - the companion
/// algorithm to HEFT in the original paper and an additional non-learned
/// baseline here. Task priority is rank_u + rank_d; the tasks on the critical
/// path (priority equal to the entry task's) are all assigned to the single
/// feasible device minimizing their total execution time, while the remaining
/// tasks are assigned by insertion-based earliest finish time in priority
/// order.
struct CpopResult {
  Placement placement;
  std::vector<TaskTiming> timing;
  double cpop_makespan = 0.0;
  std::vector<double> priority;    ///< rank_u + rank_d per task
  std::vector<int> critical_path;  ///< tasks on the critical path
  int cp_device = -1;              ///< the critical-path processor (-1 if none fits)
};

CpopResult cpop_schedule(const TaskGraph& g, const DeviceNetwork& n,
                         const LatencyModel& lat);

/// Downward ranks: rank_d(entry) = 0, rank_d(j) = max over parents i of
/// (rank_d(i) + w-bar_i + c-bar_ij) using the same averaged costs as
/// upward_ranks.
std::vector<double> downward_ranks(const TaskGraph& g, const DeviceNetwork& n,
                                   const LatencyModel& lat);

}  // namespace giph
