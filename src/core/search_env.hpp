#pragma once

#include <cstdint>
#include <random>

#include "sim/metrics.hpp"
#include "sim/schedule_index.hpp"
#include "sim/simulator.hpp"

namespace giph {

/// An action of the placement-search MDP: relocate `task` to `device`
/// (Section 4.1). Feasible iff device is in the task's feasible set.
struct SearchAction {
  int task = -1;
  int device = -1;
};

/// The placement-search MDP for one problem instance (G, N): states are
/// feasible placements, actions relocate one task, the reward is the
/// objective improvement rho(s_t) - rho(s_{t+1}).
///
/// The environment also maintains the expected (noise-free) schedule of the
/// current placement, which feeds the gpNet start-time-potential feature, and
/// tracks the best placement seen so far (search policies report
/// best-so-far).
///
/// When `normalizer` > 0, objective values are divided by it; passing the SLR
/// denominator makes objective() the SLR directly and keeps rewards on a
/// comparable scale across problem instances.
class PlacementSearchEnv {
 public:
  PlacementSearchEnv(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                     ScheduleObjective objective, Placement initial,
                     double normalizer = 0.0);

  /// Legacy-objective convenience: the (g, n, p) functor is adapted to the
  /// schedule-aware signature (it keeps whatever simulation cost it carries).
  PlacementSearchEnv(const TaskGraph& g, const DeviceNetwork& n, const LatencyModel& lat,
                     Objective objective, Placement initial, double normalizer = 0.0)
      : PlacementSearchEnv(g, n, lat, schedule_objective(std::move(objective)),
                           std::move(initial), normalizer) {}

  const TaskGraph& graph() const noexcept { return *g_; }
  const DeviceNetwork& network() const noexcept { return *n_; }
  const LatencyModel& latency() const noexcept { return *lat_; }
  const std::vector<std::vector<int>>& feasible() const noexcept { return feasible_; }

  const Placement& placement() const noexcept { return current_; }
  const Schedule& schedule() const noexcept { return sched_; }

  /// Per-device EST index over schedule(), built lazily on first access after
  /// each state change (feature construction batches ESTs through est_sweep
  /// and never asks; EFT device selection still does). Feeds the O(log V)
  /// earliest_start_on_queued overload.
  const ScheduleIndex& schedule_index() const {
    if (index_dirty_) {
      index_.build(sched_, current_, n_->num_devices());
      index_dirty_ = false;
    }
    return index_;
  }

  double objective() const noexcept { return obj_; }

  /// Number of noise-free simulations this environment has run (construction,
  /// apply, reset, rebase). The core invariant is one per apply(); objectives
  /// that deliberately re-simulate (noisy makespan) are not counted here —
  /// use giph::simulation_count() for the process-wide total.
  std::uint64_t simulations_run() const noexcept { return sims_; }

  /// Of simulations_run(), how many were incremental delta replays (apply()
  /// routes one-task moves through simulate_delta). The remainder ran the
  /// full event loop: construction / reset / rebase / apply_placement
  /// refreshes plus delta fallbacks.
  std::uint64_t delta_simulations_run() const noexcept { return delta_sims_; }

  /// apply() calls whose simulate_delta fell back to a full simulation.
  std::uint64_t delta_fallbacks() const noexcept { return delta_fallbacks_; }

  /// Tuning knob forwarded to simulate_delta (see
  /// DeltaSimState::min_prefix_fraction); mainly for tests and benchmarks.
  void set_delta_min_prefix_fraction(double f) { delta_.min_prefix_fraction = f; }

  const Placement& best_placement() const noexcept { return best_; }
  double best_objective() const noexcept { return best_obj_; }

  /// Task moved by the previous apply(), or -1 (used by the action mask).
  int last_moved_task() const noexcept { return last_moved_; }

  int steps_taken() const noexcept { return steps_; }

  /// Applies a feasible action and returns the reward
  /// rho(s_t) - rho(s_{t+1}) (positive = improvement). Throws on infeasible
  /// actions.
  double apply(const SearchAction& a);

  /// Replaces the whole placement (used by the random-sampling baseline,
  /// which draws a fresh placement per step). Returns the reward.
  double apply_placement(Placement p);

  /// Restores the initial placement and clears per-episode state (used when a
  /// policy restarts its search, e.g. Placeto every |V| steps). The
  /// best-so-far record is kept.
  void reset_to_initial();

  /// Re-anchors the search on a changed device network and/or a damaged
  /// placement (the fault-recovery warm start): `n` becomes the environment's
  /// network, feasible sets are recomputed, `p` becomes both the current and
  /// the initial placement, and the best-so-far record and step counter are
  /// reset - the pre-fault best may no longer be feasible, so it must not be
  /// reported. The graph, objective, and normalizer are kept, which lets a
  /// trained agent resume search from the repaired state instead of starting
  /// a fresh episode from scratch. `n` must outlive the environment and keep
  /// the graph placeable; throws std::invalid_argument when `p` is infeasible
  /// on it.
  void rebase(const DeviceNetwork& n, Placement p);

  /// Same-network warm start (slowdowns / link degrades only).
  void rebase(Placement p) { rebase(*n_, std::move(p)); }

  /// Re-targets the environment at a new problem instance, reusing the
  /// already-allocated simulation workspace, schedule, and index buffers:
  /// the cheap per-episode reset that lets a long-lived environment (e.g. a
  /// rollout worker's) avoid reallocating per episode. Equivalent to
  /// constructing a fresh environment with the same arguments — simulation
  /// results are bitwise identical either way — except that the latency
  /// model is kept and simulations_run() keeps accumulating across reinits
  /// (steps_taken() resets). `g` and `n` must outlive the environment;
  /// throws std::invalid_argument when `initial` is infeasible.
  void reinit(const TaskGraph& g, const DeviceNetwork& n, ScheduleObjective objective,
              Placement initial, double normalizer = 0.0);

 private:
  void refresh();

  const TaskGraph* g_;
  const DeviceNetwork* n_;
  const LatencyModel* lat_;
  ScheduleObjective objective_;
  double normalizer_;
  std::vector<std::vector<int>> feasible_;

  Placement initial_;
  Placement current_;
  SimWorkspace ws_;
  Schedule sched_;
  Schedule sched_prev_;  ///< double buffer: previous schedule, feeds the delta
  DeltaSimState delta_;
  mutable ScheduleIndex index_;
  mutable bool index_dirty_ = true;
  std::uint64_t sims_ = 0;
  std::uint64_t delta_sims_ = 0;
  std::uint64_t delta_fallbacks_ = 0;
  double obj_ = 0.0;
  Placement best_;
  double best_obj_ = 0.0;
  int last_moved_ = -1;
  int steps_ = 0;
};

}  // namespace giph
